// Command serve runs the multi-camera edge serving runtime: one process
// scoring N simulated camera streams over one shared frozen detector,
// with per-stream continuous KG adaptation. Each camera's anomaly trend
// drifts at a staggered frame index, so the streams exercise independent
// adaptation trajectories; a periodic stats dump shows per-stream frames,
// recent mean score and adaptation activity, and the run ends with
// per-stream deployment statistics and test AUC on the final trend.
//
// With -checkpoint-dir the deployment is checkpointed (atomic
// temp-then-rename write of checkpoint.json) every -checkpoint-every
// frames and at the end of the run; -resume warm-restarts from the saved
// checkpoint — the backbone is retrained deterministically from the seed,
// every stream's adapted state is restored, and serving continues from
// the recorded per-stream frame counts toward the (possibly larger)
// -frames target.
//
// Usage:
//
//	serve -streams 4 -frames 512 -initial Stealing -shifted Robbery -drift-at 192 -stagger 64
//	serve -frames 256 -checkpoint-dir /tmp/ck            (checkpointed run)
//	serve -frames 512 -checkpoint-dir /tmp/ck -resume    (continue it warm)
//	serve -smoke    (tiny CI configuration)
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"edgekg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		streams      = flag.Int("streams", 4, "camera stream count")
		frames       = flag.Int("frames", 256, "frames per stream")
		rate         = flag.Float64("rate", 0.5, "anomaly rate of each stream")
		initial      = flag.String("initial", "Stealing", "anomaly class every stream starts on")
		shifted      = flag.String("shifted", "Robbery", "anomaly class streams drift to")
		driftAt      = flag.Int("drift-at", 96, "frame index at which stream 0's trend shifts")
		stagger      = flag.Int("stagger", 32, "extra drift delay per stream index")
		adaptEvery   = flag.Int("adapt-every", 32, "adaptation cadence in frames (0 disables)")
		adaptLag     = flag.Int("adapt-lag", 8, "frames a stream keeps scoring on its previous KG while adapting (0 = synchronous)")
		trainSteps   = flag.Int("train-steps", 0, "override training steps (0 = preset)")
		seed         = flag.Int64("seed", 42, "seed")
		statsEvery   = flag.Duration("stats-every", 2*time.Second, "interval between stats dumps (0 disables)")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for warm-restart checkpoints (empty disables)")
		ckptEvery    = flag.Int("checkpoint-every", 64, "checkpoint cadence in frames per stream (requires -checkpoint-dir)")
		resume       = flag.Bool("resume", false, "warm-restart from -checkpoint-dir's checkpoint before serving")
		smoke        = flag.Bool("smoke", false, "tiny CI configuration: 2 streams, 48 frames, short training")
		memBudget    = flag.String("mem-budget", "", "per-process resident-memory budget, e.g. 64K, 2M, 1G (empty disables eviction)")
		spillDir     = flag.String("spill-dir", "", "directory for evicted-stream spill files (default: a temp dir when -mem-budget is set)")
		eagerClone   = flag.Bool("eager-clone", false, "deep-copy per-stream state at deployment instead of copy-on-write sharing")
		precision    = flag.String("precision", "", "scoring width: auto (EDGEKG_PRECISION, default f64), f64, or f32 (reduced-precision engine + float32 monitor frames)")
		listen       = flag.String("listen", "", "serve the HTTP/JSON API on this address (e.g. 127.0.0.1:9701) instead of self-driving synthetic cameras; cmd/loadgen is the driver")
		maxPending   = flag.Int("max-pending", 8, "with -listen: frame submits queued per stream slot before shedding with 429")
		ckptInterval = flag.Duration("checkpoint-interval", 0, "with -listen and -checkpoint-dir: wall-clock cadence for periodic worker checkpoints (0 disables)")
	)
	flag.Parse()

	if *smoke {
		// Apply the smoke preset without clobbering explicitly set flags,
		// so CI can run e.g. `-smoke -frames 24` then `-smoke -frames 48
		// -resume` for a checkpoint round trip.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		preset := func(name string, apply func()) {
			if !set[name] {
				apply()
			}
		}
		preset("streams", func() { *streams = 2 })
		preset("frames", func() { *frames = 48 })
		preset("drift-at", func() { *driftAt = 16 })
		preset("stagger", func() { *stagger = 8 })
		preset("adapt-every", func() { *adaptEvery = 8 })
		preset("adapt-lag", func() { *adaptLag = 2 })
		preset("train-steps", func() { *trainSteps = 120 })
		preset("stats-every", func() { *statsEvery = 0 })
		preset("checkpoint-every", func() { *ckptEvery = 16 })
	}

	// Validate before building anything: a bad flag combination should be
	// one clear error, not a downstream panic.
	switch {
	case *streams < 1:
		log.Fatalf("-streams %d: stream count must be ≥1", *streams)
	case *frames < 1:
		log.Fatalf("-frames %d: frame count must be ≥1", *frames)
	case *rate < 0 || *rate > 1:
		log.Fatalf("-rate %v: anomaly rate must be in [0,1]", *rate)
	case *driftAt < 0:
		log.Fatalf("-drift-at %d: drift frame must be ≥0", *driftAt)
	case *stagger < 0:
		log.Fatalf("-stagger %d: stagger must be ≥0", *stagger)
	case *adaptEvery < 0:
		log.Fatalf("-adapt-every %d: adaptation cadence must be ≥0 (0 disables)", *adaptEvery)
	case *adaptLag < 0:
		log.Fatalf("-adapt-lag %d: adaptation lag must be ≥0 (0 = synchronous)", *adaptLag)
	case *trainSteps < 0:
		log.Fatalf("-train-steps %d: training steps must be ≥0 (0 = preset)", *trainSteps)
	case *ckptEvery < 1:
		log.Fatalf("-checkpoint-every %d: checkpoint cadence must be ≥1", *ckptEvery)
	case *resume && *ckptDir == "":
		log.Fatal("-resume requires -checkpoint-dir")
	case *precision != "" && *precision != "auto" && *precision != "f64" && *precision != "float64" && *precision != "64" &&
		*precision != "f32" && *precision != "float32" && *precision != "32":
		log.Fatalf("-precision %q: want auto, f64 or f32", *precision)
	case *maxPending < 1:
		log.Fatalf("-max-pending %d: must be ≥1", *maxPending)
	case *ckptInterval < 0:
		log.Fatalf("-checkpoint-interval %v: must be ≥0", *ckptInterval)
	case *ckptInterval > 0 && (*listen == "" || *ckptDir == ""):
		log.Fatal("-checkpoint-interval requires -listen and -checkpoint-dir")
	}
	if *adaptEvery > 0 && *adaptLag >= *adaptEvery {
		// Supported (the engine force-joins an overdue round at the next
		// trigger, still frame-deterministic) but rarely what you want.
		log.Printf("warning: -adapt-lag %d ≥ -adapt-every %d: each round is force-joined at the next trigger", *adaptLag, *adaptEvery)
	}
	ckptPath := ""
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			log.Fatalf("-checkpoint-dir: %v", err)
		}
		ckptPath = filepath.Join(*ckptDir, "checkpoint.json")
	}
	budgetBytes, err := parseBytes(*memBudget)
	if err != nil {
		log.Fatalf("-mem-budget %q: %v", *memBudget, err)
	}
	if budgetBytes > 0 && *spillDir == "" {
		dir, err := os.MkdirTemp("", "edgekg-spill-*")
		if err != nil {
			log.Fatalf("-mem-budget: creating default spill dir: %v", err)
		}
		defer os.RemoveAll(dir)
		*spillDir = dir
	}
	if *spillDir != "" {
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			log.Fatalf("-spill-dir: %v", err)
		}
	}

	opts := edgekg.DefaultOptions()
	opts.Seed = *seed
	if *trainSteps > 0 {
		opts.TrainSteps = *trainSteps
	}
	sys, err := edgekg.NewSystem(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training backbone on %s...\n", *initial)
	if err := sys.Train(*initial); err != nil {
		log.Fatal(err)
	}

	// Synthesise every camera's frame schedule up front (deterministic,
	// and keeps the shared master RNG out of the camera goroutines): the
	// trend starts at -initial and shifts to -shifted at a staggered
	// per-stream frame index. Each segment draws from its own per-stream
	// seed — not the shared master RNG — so a schedule is a pure function
	// of (class, seed) and a longer -frames target extends a shorter one
	// frame-for-frame, which is what lets -resume replay the exact frames
	// the checkpointed run served and continue past them.
	var schedules [][][]float64
	if *listen == "" {
		schedules = synthSchedules(sys, *streams, *frames, *rate, *initial, *shifted, *driftAt, *stagger, *seed)
	}
	srv, err := sys.Serve(edgekg.ServeOptions{
		Streams:          *streams,
		Adaptive:         *adaptEvery > 0,
		AdaptEveryFrames: *adaptEvery,
		AdaptLagFrames:   *adaptLag,
		ScoreHistory:     64,
		EagerClone:       *eagerClone,
		MemBudgetBytes:   budgetBytes,
		SpillDir:         *spillDir,
		Precision:        *precision,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Warm restart: restore every stream's adapted state over the freshly
	// retrained backbone and continue from the recorded frame counts. The
	// counts come from the checkpoint (not a Stats probe, whose barrier
	// would join a restored in-flight round early and move its swap frame).
	startAt := make([]int, *streams)
	if *resume {
		counts, err := srv.LoadCheckpoint(ckptPath)
		if err != nil {
			log.Fatalf("resume: %v", err)
		}
		if len(counts) != *streams {
			log.Fatalf("resume: checkpoint has %d streams, want %d", len(counts), *streams)
		}
		for i, n := range counts {
			if n > *frames {
				log.Fatalf("resume: stream %d checkpointed at frame %d, beyond the -frames %d target", i, n, *frames)
			}
			startAt[i] = n
		}
		fmt.Printf("resumed from %s (stream frame counts %v)\n", ckptPath, startAt)
	}

	start := time.Now()
	// Stats dumper, time-based, across the whole serving phase.
	stopStats := make(chan struct{})
	var statsWG sync.WaitGroup
	if *statsEvery > 0 {
		statsWG.Add(1)
		go func() {
			defer statsWG.Done()
			ticker := time.NewTicker(*statsEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stopStats:
					return
				case <-ticker.C:
					for i := 0; i < *streams; i++ {
						st, err := srv.Stats(i)
						if err != nil {
							continue
						}
						scores, _ := srv.RecentScores(i)
						mean := 0.0
						for _, s := range scores {
							mean += s
						}
						if len(scores) > 0 {
							mean /= float64(len(scores))
						}
						fmt.Printf("[t+%5.1fs] stream %d: frames %4d, recent mean score %.3f, rounds %d (%d triggered)\n",
							time.Since(start).Seconds(), i, st.Frames, mean, st.AdaptRounds, st.TriggeredRounds)
					}
				}
			}
		}()
	}

	// Networked mode: expose the HTTP/JSON API and let remote drivers
	// (cmd/loadgen, a shard router) submit frames, poll stats, trigger
	// checkpoints and migrate streams. Blocks until a client POSTs
	// /v1/shutdown; there is no fixed frame target, so the final dump
	// reports whatever the drivers pushed.
	if *listen != "" {
		// Periodic worker checkpoints: a wall-clock ticker snapshots the
		// whole deployment so a crashed worker's last-known state survives
		// on disk (the router-side failover cache is what rebuilds live
		// keys bit-exactly; these checkpoints are the warm-restart path
		// for bringing a replacement worker back up).
		stopCkpt := make(chan struct{})
		var ckptWG sync.WaitGroup
		if *ckptInterval > 0 {
			ckptWG.Add(1)
			go func() {
				defer ckptWG.Done()
				ticker := time.NewTicker(*ckptInterval)
				defer ticker.Stop()
				for {
					select {
					case <-stopCkpt:
						return
					case <-ticker.C:
						if err := srv.SaveCheckpoint(ckptPath); err != nil {
							log.Printf("periodic checkpoint: %v", err)
						} else {
							fmt.Printf("periodic checkpoint to %s\n", ckptPath)
						}
					}
				}
			}()
		}
		err := srv.NetListen(*listen, edgekg.NetServeOptions{
			MaxPending:     *maxPending,
			CheckpointPath: ckptPath,
			Ready:          func(addr string) { fmt.Printf("listening on %s (%d streams)\n", addr, *streams) },
		})
		close(stopCkpt)
		ckptWG.Wait()
		close(stopStats)
		statsWG.Wait()
		if errors.Is(err, edgekg.ErrKilled) {
			// A requested crash (fault drill): stop abruptly — no stats
			// epilogue, no final checkpoint, exit clean so the harness can
			// tell a drill from a real fault.
			fmt.Printf("\n--- killed after %.2fs (abrupt stop, no drain) ---\n", time.Since(start).Seconds())
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- shutdown after %.2fs ---\n", time.Since(start).Seconds())
		dumpStats(srv, *streams)
		srv.Close()
		return
	}

	// Serve in synchronized segments of -checkpoint-every frames: all
	// cameras run a segment concurrently, then (when checkpointing is on)
	// the quiescent deployment is checkpointed before the next segment.
	// Without -checkpoint-dir the segments only add a few barriers.
	served := 0
	for seg := 0; ; seg++ {
		segActive := false
		var wg sync.WaitGroup
		for i := 0; i < *streams; i++ {
			lo := startAt[i] + seg**ckptEvery
			hi := lo + *ckptEvery
			if lo >= *frames {
				continue
			}
			if hi > *frames {
				hi = *frames
			}
			segActive = true
			served += hi - lo
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				for k := lo; k < hi; k++ {
					res, err := srv.ProcessFrame(i, schedules[i][k])
					if err != nil {
						log.Fatalf("stream %d frame %d: %v", i, k, err)
					}
					if res.Adapted {
						fmt.Printf("  stream %d frame %4d: adaptation triggered (pruned %d, created %d)\n",
							i, k, res.PrunedNodes, res.CreatedNodes)
					}
				}
			}(i, lo, hi)
		}
		if !segActive {
			break
		}
		wg.Wait()
		if ckptPath != "" {
			if err := srv.SaveCheckpoint(ckptPath); err != nil {
				log.Fatalf("checkpoint: %v", err)
			}
			fmt.Printf("checkpointed to %s after segment %d\n", ckptPath, seg)
		}
	}
	for i := 0; i < *streams; i++ {
		srv.CloseStream(i)
	}
	close(stopStats)
	statsWG.Wait()
	srv.Close()
	elapsed := time.Since(start)

	fmt.Printf("\n--- served %d streams × %d frames (%d this run) in %.2fs (%.0f frames/s aggregate) ---\n",
		*streams, *frames, served, elapsed.Seconds(), float64(served)/elapsed.Seconds())
	evictions := 0
	for i := 0; i < *streams; i++ {
		st, err := srv.Stats(i)
		if err != nil {
			log.Fatal(err)
		}
		auc, err := srv.TestAUC(i, *shifted)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stream %d: frames=%d rounds=%d triggered=%d pruned=%d created=%d scoringFLOPs=%.2e resident=%s evictions=%d AUC(%s)=%.4f%s\n",
			i, st.Frames, st.AdaptRounds, st.TriggeredRounds, st.PrunedNodes, st.CreatedNodes,
			float64(st.ScoringFLOPs), fmtBytes(st.ResidentBytes), st.Evictions, *shifted, auc, fmtLastErr(st.LastErr))
		if st.Frames != *frames {
			log.Fatalf("stream %d processed %d frames, want %d", i, st.Frames, *frames)
		}
		evictions += st.Evictions
	}
	resident, budget := srv.MemStats()
	if budget > 0 {
		fmt.Printf("memory: resident %s of %s budget, %d evictions\n", fmtBytes(resident), fmtBytes(budget), evictions)
		if evictions == 0 {
			fmt.Println("memory: budget never exceeded (no evictions exercised)")
		}
	} else {
		fmt.Printf("memory: resident %s (unbudgeted)\n", fmtBytes(resident))
	}
}

// synthSchedules synthesises every camera's frame schedule up front
// (deterministic, and keeps the shared master RNG out of the camera
// goroutines): the trend starts at initial and shifts to shifted at a
// staggered per-stream frame index. Each segment draws from its own
// per-stream seed — not the shared master RNG — so a schedule is a pure
// function of (class, seed) and a longer frames target extends a shorter
// one frame-for-frame, which is what lets -resume replay the exact frames
// the checkpointed run served and continue past them. cmd/loadgen uses
// the same derivation, so a networked run scores the same frames a
// self-driving one does.
func synthSchedules(sys *edgekg.System, streams, frames int, rate float64, initial, shifted string, driftAt, stagger int, seed int64) [][][]float64 {
	fmt.Printf("synthesising %d streams × %d frames (drift at %d + %d·i)...\n", streams, frames, driftAt, stagger)
	schedules := make([][][]float64, streams)
	for i := range schedules {
		shift := driftAt + i*stagger
		if shift > frames {
			shift = frames
		}
		pre, err := sys.NextStreamFramesSeeded(initial, shift, rate, seed+1000+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		post, err := sys.NextStreamFramesSeeded(shifted, frames-shift, rate, seed+2000+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		sched := make([][]float64, 0, frames)
		for _, f := range pre {
			sched = append(sched, f.Frame)
		}
		for _, f := range post {
			sched = append(sched, f.Frame)
		}
		schedules[i] = sched
	}
	return schedules
}

// dumpStats prints the per-stream deployment statistics and the memory
// report — the network-mode epilogue, with no fixed frame target to check
// against and no AUC probe (the drivers own the trend schedule).
func dumpStats(srv *edgekg.StreamServer, streams int) {
	evictions := 0
	for i := 0; i < streams; i++ {
		st, err := srv.Stats(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stream %d: frames=%d rounds=%d triggered=%d pruned=%d created=%d scoringFLOPs=%.2e resident=%s evictions=%d%s\n",
			i, st.Frames, st.AdaptRounds, st.TriggeredRounds, st.PrunedNodes, st.CreatedNodes,
			float64(st.ScoringFLOPs), fmtBytes(st.ResidentBytes), st.Evictions, fmtLastErr(st.LastErr))
		evictions += st.Evictions
	}
	resident, budget := srv.MemStats()
	if budget > 0 {
		fmt.Printf("memory: resident %s of %s budget, %d evictions\n", fmtBytes(resident), fmtBytes(budget), evictions)
	} else {
		fmt.Printf("memory: resident %s (unbudgeted)\n", fmtBytes(resident))
	}
}

// fmtLastErr renders a stream's retained error for the stats dump: empty
// when the stream never failed, loud when a background eviction did.
func fmtLastErr(s string) string {
	if s == "" {
		return ""
	}
	return fmt.Sprintf(" lastErr=%q", s)
}

// parseBytes reads a byte count with an optional K/M/G binary suffix.
func parseBytes(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("want an integer with optional K/M/G suffix")
	}
	if n < 0 {
		return 0, fmt.Errorf("must be ≥0")
	}
	return n * mult, nil
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
