// Command serve runs the multi-camera edge serving runtime: one process
// scoring N simulated camera streams over one shared frozen detector,
// with per-stream continuous KG adaptation. Each camera's anomaly trend
// drifts at a staggered frame index, so the streams exercise independent
// adaptation trajectories; a periodic stats dump shows per-stream frames,
// recent mean score and adaptation activity, and the run ends with
// per-stream deployment statistics and test AUC on the final trend.
//
// Usage:
//
//	serve -streams 4 -frames 512 -initial Stealing -shifted Robbery -drift-at 192 -stagger 64
//	serve -smoke    (tiny CI configuration)
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"edgekg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	var (
		streams    = flag.Int("streams", 4, "camera stream count")
		frames     = flag.Int("frames", 256, "frames per stream")
		rate       = flag.Float64("rate", 0.5, "anomaly rate of each stream")
		initial    = flag.String("initial", "Stealing", "anomaly class every stream starts on")
		shifted    = flag.String("shifted", "Robbery", "anomaly class streams drift to")
		driftAt    = flag.Int("drift-at", 96, "frame index at which stream 0's trend shifts")
		stagger    = flag.Int("stagger", 32, "extra drift delay per stream index")
		adaptEvery = flag.Int("adapt-every", 32, "adaptation cadence in frames (0 disables)")
		adaptLag   = flag.Int("adapt-lag", 8, "frames a stream keeps scoring on its previous KG while adapting (0 = synchronous)")
		trainSteps = flag.Int("train-steps", 0, "override training steps (0 = preset)")
		seed       = flag.Int64("seed", 42, "seed")
		statsEvery = flag.Duration("stats-every", 2*time.Second, "interval between stats dumps (0 disables)")
		smoke      = flag.Bool("smoke", false, "tiny CI configuration: 2 streams, 48 frames, short training")
	)
	flag.Parse()

	if *smoke {
		*streams, *frames = 2, 48
		*driftAt, *stagger = 16, 8
		*adaptEvery, *adaptLag = 8, 2
		*trainSteps = 120
		*statsEvery = 0
	}

	opts := edgekg.DefaultOptions()
	opts.Seed = *seed
	if *trainSteps > 0 {
		opts.TrainSteps = *trainSteps
	}
	sys, err := edgekg.NewSystem(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training backbone on %s...\n", *initial)
	if err := sys.Train(*initial); err != nil {
		log.Fatal(err)
	}

	// Synthesise every camera's frame schedule up front (deterministic,
	// and keeps the shared master RNG out of the camera goroutines): the
	// trend starts at -initial and shifts to -shifted at a staggered
	// per-stream frame index.
	fmt.Printf("synthesising %d streams × %d frames (drift at %d + %d·i)...\n", *streams, *frames, *driftAt, *stagger)
	schedules := make([][][]float64, *streams)
	for i := range schedules {
		shift := *driftAt + i**stagger
		if shift > *frames {
			shift = *frames
		}
		pre, err := sys.NextStreamFrames(*initial, shift, *rate)
		if err != nil {
			log.Fatal(err)
		}
		post, err := sys.NextStreamFrames(*shifted, *frames-shift, *rate)
		if err != nil {
			log.Fatal(err)
		}
		sched := make([][]float64, 0, *frames)
		for _, f := range pre {
			sched = append(sched, f.Frame)
		}
		for _, f := range post {
			sched = append(sched, f.Frame)
		}
		schedules[i] = sched
	}

	srv, err := sys.Serve(edgekg.ServeOptions{
		Streams:          *streams,
		Adaptive:         *adaptEvery > 0,
		AdaptEveryFrames: *adaptEvery,
		AdaptLagFrames:   *adaptLag,
		ScoreHistory:     64,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *streams; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k, frame := range schedules[i] {
				res, err := srv.ProcessFrame(i, frame)
				if err != nil {
					log.Fatalf("stream %d frame %d: %v", i, k, err)
				}
				if res.Adapted {
					fmt.Printf("  stream %d frame %4d: adaptation triggered (pruned %d, created %d)\n",
						i, k, res.PrunedNodes, res.CreatedNodes)
				}
			}
			srv.CloseStream(i)
		}()
	}

	// Periodic stats dump from the main goroutine while cameras run.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
	dump:
		for {
			select {
			case <-done:
				ticker.Stop()
				break dump
			case <-ticker.C:
				for i := 0; i < *streams; i++ {
					st, err := srv.Stats(i)
					if err != nil {
						continue
					}
					scores, _ := srv.RecentScores(i)
					mean := 0.0
					for _, s := range scores {
						mean += s
					}
					if len(scores) > 0 {
						mean /= float64(len(scores))
					}
					fmt.Printf("[t+%5.1fs] stream %d: frames %4d, recent mean score %.3f, rounds %d (%d triggered)\n",
						time.Since(start).Seconds(), i, st.Frames, mean, st.AdaptRounds, st.TriggeredRounds)
				}
			}
		}
	} else {
		<-done
	}
	srv.Close()
	elapsed := time.Since(start)

	total := float64(*streams) * float64(*frames)
	fmt.Printf("\n--- served %d streams × %d frames in %.2fs (%.0f frames/s aggregate) ---\n",
		*streams, *frames, elapsed.Seconds(), total/elapsed.Seconds())
	for i := 0; i < *streams; i++ {
		st, err := srv.Stats(i)
		if err != nil {
			log.Fatal(err)
		}
		auc, err := srv.TestAUC(i, *shifted)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stream %d: frames=%d rounds=%d triggered=%d pruned=%d created=%d scoringFLOPs=%.2e AUC(%s)=%.4f\n",
			i, st.Frames, st.AdaptRounds, st.TriggeredRounds, st.PrunedNodes, st.CreatedNodes,
			float64(st.ScoringFLOPs), *shifted, auc)
		if st.Frames != *frames {
			log.Fatalf("stream %d processed %d frames, want %d", i, st.Frames, *frames)
		}
	}
}
