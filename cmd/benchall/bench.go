package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"edgekg/internal/autograd"
	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/experiments"
	"edgekg/internal/flops"
	"edgekg/internal/netserve"
	"edgekg/internal/parallel"
	"edgekg/internal/retrieval"
	"edgekg/internal/serve"
	"edgekg/internal/shard"
	"edgekg/internal/tensor"
	"edgekg/internal/tensor/kernels"
)

// The micro-benchmark harness mirrors the hot-path benchmarks of
// bench_test.go (GNN forward, frame scoring, train step, adaptation step)
// and writes a machine-readable report so successive PRs accumulate a
// perf trajectory that scripts can diff: ns/op, allocs/op, bytes/op and
// measured FLOPs per operation for each path, plus the parallelism the
// run had available.

// benchResult is one benchmark's measurements.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	FLOPsPerOp  int64   `json:"flops_per_op"`
	// MemBytesPerStream is the memory-ledger resident bytes charged per
	// stream (StreamServeMem benches only): the copy-on-write vs. eager
	// clone density comparison.
	MemBytesPerStream int64 `json:"mem_bytes_per_stream,omitempty"`
	// HeapBytesPerStream is the measured process heap growth per stream
	// for the same deployment (GC-settled delta; noisier than the ledger
	// figure but ledger-independent).
	HeapBytesPerStream int64 `json:"heap_bytes_per_stream,omitempty"`
	// Fleet figures (NetServe bench only): end-to-end per-frame latency
	// percentiles through the HTTP API and shard router, fleet
	// throughput, and how many submits admission control shed.
	ThroughputFPS float64 `json:"throughput_fps,omitempty"`
	P50Ms         float64 `json:"p50_ms,omitempty"`
	P99Ms         float64 `json:"p99_ms,omitempty"`
	P999Ms        float64 `json:"p999_ms,omitempty"`
	Shed          int64   `json:"shed,omitempty"`
	// Failover figures (FailoverRecovery bench only): time from the first
	// failed health probe to the shard being declared dead, time to
	// restore + replay its keys onto survivors, and how many frames the
	// replay re-scored.
	DetectionMs    float64 `json:"detection_ms,omitempty"`
	RecoveryMs     float64 `json:"recovery_ms,omitempty"`
	FramesReplayed int64   `json:"frames_replayed,omitempty"`
}

// benchReport is the BENCH_<n>.json schema.
type benchReport struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Scale      string `json:"scale"`
	// Backend is the kernel backend the unsuffixed benches ran under (the
	// one selected at init: best available, or the EDGEKG_BACKEND
	// override). The "<bench>/<backend>" variants pin their own.
	Backend string `json:"backend"`
	// CPUFeatures records the SIMD extensions detected on this host, so a
	// perf trajectory shows what hardware produced each number.
	CPUFeatures []string `json:"cpu_features"`
	// Precision is the scoring width the unsuffixed benches ran under
	// (EDGEKG_PRECISION resolution; f64 unless overridden). The F32/Int8
	// variants pin their own reduced-precision paths regardless.
	Precision string        `json:"precision"`
	Results   []benchResult `json:"results"`
}

// runMicroBenches executes the hot-path benchmarks against env and writes
// the JSON report to path. In smoke mode every benchmark body runs exactly
// once with no timing loop — CI uses it to keep the bench code compiling
// and executing without paying for stable measurements.
func runMicroBenches(env *experiments.Env, scale, path string, smoke bool) error {
	det, _, err := env.BuildTrainedDetector(concept.Stealing, 1001)
	if err != nil {
		return fmt.Errorf("bench fixture: %w", err)
	}

	report := benchReport{
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     parallel.Workers(),
		Scale:       scale,
		Backend:     kernels.Active().Name(),
		CPUFeatures: kernels.CPUFeatures(),
		Precision:   core.PrecisionAuto.Resolve().String(),
	}

	add := func(name string, fn func()) {
		// FLOPs are measured on a single warm invocation; the timing loop
		// runs without the meter so accounting does not skew ns/op.
		ops, _ := flops.Count(fn)
		if smoke {
			report.Results = append(report.Results, benchResult{Name: name, Iterations: 1, FLOPsPerOp: ops})
			fmt.Printf("%-20s smoke ok %12d FLOPs\n", name, ops)
			return
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		report.Results = append(report.Results, benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			FLOPsPerOp:  ops,
		})
		fmt.Printf("%-20s %12.0f ns/op %8d allocs/op %10d B/op %12d FLOPs\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp(), r.AllocedBytesPerOp(), ops)
	}

	rng := rand.New(rand.NewSource(1))
	det.SetTraining(false)
	frames := tensor.New(8, env.Space.PixDim())
	for i := 0; i < 8; i++ {
		copy(frames.Row(i), env.Gen.Frame(rng, concept.Stealing).Data())
	}
	add("GNNForward", func() { det.EmbedFrames(frames) })

	frame := env.Gen.Frame(rng, concept.Robbery).Reshape(1, env.Space.PixDim())
	add("ScoreFrame", func() { det.ScoreVideo(frame) })
	// The reduced-precision engine on the identical workload, called
	// directly so the shared fixture's config stays untouched: the
	// ScoreFrame → ScoreFrameF32 delta is the float32 latency win.
	add("ScoreFrameF32", func() { det.ScoreVideoF32(frame) })

	// The batched temporal pass in isolation: 8 windows through one tape,
	// the granularity ScoreVideo and TrainStep see per clip.
	const winBatch = 8
	wins := tensor.RandN(rng, 1, winBatch*det.Window(), det.ReasoningDim())
	add("TemporalForwardBatch", func() { det.Temporal().ForwardBatch(autograd.Constant(wins), winBatch) })

	// Token-bank decode retrieval: the float64 token table versus its
	// int8-quantized twin on the same query — the RetrievalNearest →
	// RetrievalNearestInt8 delta is the quantized-lookup latency, and the
	// tables' footprints are reported by the retrieval suite's bounds.
	retr := retrieval.New(env.Space)
	qretr := retrieval.NewQuantized(env.Space)
	query := env.Space.TextEncode("gun mask robbery")
	add("RetrievalNearest", func() { retr.Nearest(query, 5, retrieval.Euclidean) })
	add("RetrievalNearestInt8", func() { qretr.Nearest(query, 5, retrieval.Euclidean) })

	video := tensor.New(24, env.Space.PixDim())
	for i := 0; i < video.Rows(); i++ {
		copy(video.Row(i), env.Gen.Frame(rng, concept.Robbery).Data())
	}
	add("ScoreVideo24", func() { det.ScoreVideo(video) })

	trainDet, _, err := env.BuildTrainedDetector(concept.Stealing, 1002)
	if err != nil {
		return fmt.Errorf("train fixture: %w", err)
	}
	vids := env.Gen.TaskVideos(rng, concept.Stealing, 3, 3)
	src, err := dataset.NewClipSource(vids, trainDet.Window(), 8)
	if err != nil {
		return fmt.Errorf("clip source: %w", err)
	}
	bsrc := src.WithLabelMap(dataset.BinaryLabelMap)
	tr := core.NewTrainer(trainDet, core.DefaultTrainConfig())
	add("TrainStep", func() { tr.Step(rng, bsrc) })

	// Per-backend variants of the three headline benches: the same
	// workloads pinned to each registered kernel backend, in one report, so
	// the scalar → unrolled → avx2 trajectory is measured on the same host
	// in the same run. The forward benches reuse the scoring fixtures (no
	// mutation); TrainStep gets a fresh same-seed fixture per backend so
	// every backend trains from identical starting weights.
	for _, bkName := range kernels.Names() {
		restore, err := kernels.Use(bkName)
		if err != nil {
			return fmt.Errorf("backend %s: %w", bkName, err)
		}
		add("GNNForward/"+bkName, func() { det.EmbedFrames(frames) })
		add("TemporalForwardBatch/"+bkName, func() { det.Temporal().ForwardBatch(autograd.Constant(wins), winBatch) })
		bkDet, _, berr := env.BuildTrainedDetector(concept.Stealing, 1002)
		if berr != nil {
			restore()
			return fmt.Errorf("train fixture (%s): %w", bkName, berr)
		}
		bkTr := core.NewTrainer(bkDet, core.DefaultTrainConfig())
		add("TrainStep/"+bkName, func() { bkTr.Step(rng, bsrc) })
		restore()
	}

	// The 4-clip microbatch pair: the sequential-accumulation reference
	// versus the data-parallel sharded step, same semantics (equivalence
	// suite: ≤1e-12), different execution. Separate fixtures so neither
	// bench trains the other's detector.
	const microK = 4
	mbCfg := core.DefaultTrainConfig()
	mbCfg.Microbatch = microK
	seqDet, _, err := env.BuildTrainedDetector(concept.Stealing, 1004)
	if err != nil {
		return fmt.Errorf("seq microbatch fixture: %w", err)
	}
	trSeq := core.NewTrainer(seqDet, mbCfg)
	add("TrainStepSeqAccum", func() { trSeq.StepSequential(rng, bsrc) })

	parDet, _, err := env.BuildTrainedDetector(concept.Stealing, 1005)
	if err != nil {
		return fmt.Errorf("parallel microbatch fixture: %w", err)
	}
	trPar := core.NewTrainer(parDet, mbCfg)
	add("TrainStepParallel", func() { trPar.Step(rng, bsrc) })

	primedMonitor := func() (*core.Monitor, error) {
		mon, err := core.NewMonitor(32, 16)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 32; i++ {
			mon.Push(env.Gen.Frame(rng, concept.Stealing).Reshape(1, env.Space.PixDim()), 0.9)
		}
		for i := 0; i < 32; i++ {
			mon.Push(env.Gen.Frame(rng, concept.Robbery).Reshape(1, env.Space.PixDim()), 0.2)
		}
		return mon, nil
	}
	adaptDet, _, err := env.BuildTrainedDetector(concept.Stealing, 1003)
	if err != nil {
		return fmt.Errorf("adapt fixture: %w", err)
	}
	acfg := core.DefaultAdaptConfig()
	acfg.Shards = 1 // single-tape baseline, the pre-data-parallel path
	adapter, err := core.NewAdapter(adaptDet, acfg, rng)
	if err != nil {
		return fmt.Errorf("adapter: %w", err)
	}
	mon, err := primedMonitor()
	if err != nil {
		return fmt.Errorf("monitor: %w", err)
	}
	add("AdaptationStep", func() {
		if _, err := adapter.Step(mon); err != nil {
			panic(err)
		}
	})

	adaptParDet, _, err := env.BuildTrainedDetector(concept.Stealing, 1003)
	if err != nil {
		return fmt.Errorf("parallel adapt fixture: %w", err)
	}
	adapterPar, err := core.NewAdapter(adaptParDet, core.DefaultAdaptConfig(), rng)
	if err != nil {
		return fmt.Errorf("parallel adapter: %w", err)
	}
	monPar, err := primedMonitor()
	if err != nil {
		return fmt.Errorf("parallel monitor: %w", err)
	}
	add("AdaptationStepParallel", func() {
		if _, err := adapterPar.Step(monPar); err != nil {
			panic(err)
		}
	})

	// Multi-stream serving throughput: one frame submitted to every stream
	// per iteration (so ns/op is the latency of one serving "tick" across
	// n cameras), scoring-only for stable timing. The servers share one
	// backbone fixture — serving clones per-stream state and leaves the
	// backbone untouched.
	serveDet, _, err := env.BuildTrainedDetector(concept.Stealing, 1006)
	if err != nil {
		return fmt.Errorf("serve fixture: %w", err)
	}
	for _, nStreams := range []int{1, 4, 8} {
		scfg := serve.DefaultConfig()
		scfg.Stream.AdaptEveryFrames = 0
		// Unmetered, like every other timed path here: the stream ledgers
		// stay silent during the timing loop, and the one-shot FLOPs
		// measurement (add's flops.Count wrapper) still sees the kernels.
		scfg.Unmetered = true
		srv, err := serve.NewServer(serveDet, nStreams, scfg)
		if err != nil {
			return fmt.Errorf("serve bench (%d streams): %w", nStreams, err)
		}
		sframes := make([]*tensor.Tensor, nStreams)
		for i := range sframes {
			sframes[i] = env.Gen.Frame(rng, concept.Robbery)
		}
		n := nStreams
		add(fmt.Sprintf("StreamServe%d", n), func() {
			for i := 0; i < n; i++ {
				if err := srv.Submit(i, sframes[i]); err != nil {
					panic(err)
				}
			}
			for i := 0; i < n; i++ {
				ch, err := srv.Results(i)
				if err != nil {
					panic(err)
				}
				if res, ok := <-ch; !ok || res.Err != nil {
					panic(fmt.Sprintf("stream %d: ok=%v err=%v", i, ok, res.Err))
				}
			}
		})
		srv.Shutdown()
	}

	// Stream memory density: bytes/stream (memory ledger + GC-settled heap
	// delta) and the cost of one serving tick, copy-on-write versus eager
	// deep-copy per-stream clones. Unadapted streams under COW alias the
	// backbone's graphs and token banks, so their charged bytes collapse to
	// the monitor window — the 10-100× streams-per-process headroom.
	sframe := env.Gen.Frame(rng, concept.Robbery)
	memBench := func(nStreams int, eager bool, prec core.Precision) error {
		mode := "COW"
		if eager {
			mode = "Eager"
		}
		name := fmt.Sprintf("StreamServeMem%s%d", mode, nStreams)
		if prec.Resolve() == core.PrecisionF32 {
			// The reduced-precision fleet: COW clones scoring through the
			// float32 engine with float32 monitor frames — compare against
			// StreamServeMemCOW<n> for the bytes/stream win.
			name = fmt.Sprintf("StreamServeMemF32%d", nStreams)
		}
		scfg := serve.DefaultConfig()
		scfg.Stream.AdaptEveryFrames = 0
		scfg.Stream.EagerClone = eager
		scfg.Stream.Precision = prec
		scfg.Unmetered = true
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		srv, err := serve.NewServer(serveDet, nStreams, scfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		defer srv.Shutdown()
		tick := func() {
			for i := 0; i < nStreams; i++ {
				if err := srv.Submit(i, sframe); err != nil {
					panic(err)
				}
			}
			for i := 0; i < nStreams; i++ {
				ch, err := srv.Results(i)
				if err != nil {
					panic(err)
				}
				if res, ok := <-ch; !ok || res.Err != nil {
					panic(fmt.Sprintf("stream %d: ok=%v err=%v", i, ok, res.Err))
				}
			}
		}
		tick()
		runtime.GC()
		runtime.ReadMemStats(&m1)
		heap := (int64(m1.HeapAlloc) - int64(m0.HeapAlloc)) / int64(nStreams)
		if heap < 0 {
			heap = 0
		}
		// Resident bytes via the on-demand per-stream breakdown (the shared
		// ledger only refreshes per frame on budgeted servers).
		var ledger int64
		for i := 0; i < nStreams; i++ {
			stats, err := srv.StreamStats(i)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			ledger += stats.ResidentBytes
		}
		ledger /= int64(nStreams)
		res := benchResult{Name: name, Iterations: 1, MemBytesPerStream: ledger, HeapBytesPerStream: heap}
		if smoke {
			fmt.Printf("%-20s smoke ok %12d ledger B/stream %10d heap B/stream\n", name, ledger, heap)
		} else {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tick()
				}
			})
			res.Iterations = r.N
			res.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
			res.AllocsPerOp = r.AllocsPerOp()
			res.BytesPerOp = r.AllocedBytesPerOp()
			fmt.Printf("%-20s %12.0f ns/op %8d allocs/op %12d ledger B/stream %10d heap B/stream\n",
				name, res.NsPerOp, res.AllocsPerOp, ledger, heap)
		}
		report.Results = append(report.Results, res)
		return nil
	}
	for _, nStreams := range []int{8, 64} {
		for _, eager := range []bool{false, true} {
			if err := memBench(nStreams, eager, core.PrecisionAuto); err != nil {
				return err
			}
		}
		if err := memBench(nStreams, false, core.PrecisionF32); err != nil {
			return err
		}
	}

	// The networked serving tier end to end: a 2-shard fleet (two
	// serve.Servers behind the HTTP/JSON API on loopback TCP) driven
	// through the shard router by the closed-loop load generator — 8
	// camera streams submitting concurrently, scoring only. One run is
	// the measurement (percentiles need the whole latency population,
	// not a timing loop): per-frame latency through HTTP round trip +
	// scoring, and fleet throughput.
	netServeBench := func() error {
		const nshards, nkeys = 2, 8
		nframes := 128
		if smoke {
			nframes = 8
		}
		var cleanup []func()
		defer func() {
			for _, f := range cleanup {
				f()
			}
		}()
		backends := make([]shard.Backend, nshards)
		for s := 0; s < nshards; s++ {
			scfg := serve.DefaultConfig()
			scfg.Stream.AdaptEveryFrames = 0
			scfg.Unmetered = true
			srv, err := serve.NewServer(serveDet, nkeys, scfg)
			if err != nil {
				return fmt.Errorf("NetServe shard %d: %w", s, err)
			}
			cleanup = append(cleanup, srv.Shutdown)
			h, err := netserve.NewHandler(srv, netserve.Options{FrameSize: env.Space.PixDim()})
			if err != nil {
				return fmt.Errorf("NetServe shard %d: %w", s, err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fmt.Errorf("NetServe shard %d: %w", s, err)
			}
			hs := &http.Server{Handler: h}
			go hs.Serve(ln)
			cleanup = append(cleanup, func() { hs.Close() })
			backends[s] = shard.NetBackend(netserve.NewClient("http://"+ln.Addr().String()), nkeys)
		}
		router, err := shard.New(backends, shard.Config{})
		if err != nil {
			return err
		}
		keys := make([]string, nkeys)
		schedules := make(map[string][][]float64, nkeys)
		for i := range keys {
			keys[i] = fmt.Sprintf("cam-%d", i)
			sched := make([][]float64, nframes)
			for j := range sched {
				sched[j] = env.Gen.Frame(rng, concept.Robbery).Data()
			}
			schedules[keys[i]] = sched
		}
		rep, err := shard.Run(context.Background(), router, shard.Scenario{
			Keys:   keys,
			Frames: nframes,
			Frame:  func(key string, seq int) []float64 { return schedules[key][seq] },
		})
		if err != nil {
			return fmt.Errorf("NetServe run: %w", err)
		}
		name := fmt.Sprintf("NetServe%dx%d", nshards, nkeys)
		report.Results = append(report.Results, benchResult{
			Name:          name,
			Iterations:    rep.OK,
			ThroughputFPS: rep.Throughput,
			P50Ms:         rep.P50Ms,
			P99Ms:         rep.P99Ms,
			P999Ms:        rep.P999Ms,
			Shed:          int64(rep.Shed),
		})
		fmt.Printf("%-20s %12.0f frames/s p50=%.2fms p99=%.2fms p999=%.2fms (%d frames, shed %d)\n",
			name, rep.Throughput, rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.OK, rep.Shed)
		return nil
	}
	if err := netServeBench(); err != nil {
		return err
	}

	// Fault tolerance end to end: the same 2-shard loopback fleet with the
	// router's failover cache armed, one worker killed abruptly mid-run
	// (in-flight connections severed, nothing drains). The health monitor
	// detects the death, failover rehomes the dead shard's cameras onto
	// the survivor from cached snapshots and replays the frames scored
	// since, and the drivers retry through the outage — the measurement is
	// detection latency, recovery (restore + replay) time, and replay
	// volume. One run is the measurement: a crash drill has no timing loop.
	failoverBench := func() error {
		const nshards, nkeys = 2, 8
		nframes := 64
		if smoke {
			nframes = 16
		}
		var cleanup []func()
		defer func() {
			for _, f := range cleanup {
				f()
			}
		}()
		backends := make([]shard.Backend, nshards)
		for s := 0; s < nshards; s++ {
			scfg := serve.DefaultConfig()
			scfg.Stream.AdaptEveryFrames = 0
			scfg.Unmetered = true
			srv, err := serve.NewServer(serveDet, nkeys, scfg)
			if err != nil {
				return fmt.Errorf("FailoverRecovery shard %d: %w", s, err)
			}
			cleanup = append(cleanup, srv.Shutdown)
			h, err := netserve.NewHandler(srv, netserve.Options{FrameSize: env.Space.PixDim()})
			if err != nil {
				return fmt.Errorf("FailoverRecovery shard %d: %w", s, err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fmt.Errorf("FailoverRecovery shard %d: %w", s, err)
			}
			hs := &http.Server{Handler: h}
			go hs.Serve(ln)
			go func() {
				// A die request is an abrupt stop: sever every connection.
				<-h.KillRequested()
				hs.Close()
			}()
			cleanup = append(cleanup, func() { hs.Close() })
			backends[s] = shard.NetBackend(netserve.NewClient("http://"+ln.Addr().String()), nkeys)
		}
		router, err := shard.New(backends, shard.Config{SnapshotEvery: 8})
		if err != nil {
			return err
		}
		monitor := shard.NewHealthMonitor(router, shard.HealthConfig{
			Interval:  20 * time.Millisecond,
			Timeout:   500 * time.Millisecond,
			Threshold: 2,
		})
		monitor.Start()
		defer monitor.Stop()
		keys := make([]string, nkeys)
		schedules := make(map[string][][]float64, nkeys)
		for i := range keys {
			keys[i] = fmt.Sprintf("cam-%d", i)
			sched := make([][]float64, nframes)
			for j := range sched {
				sched[j] = env.Gen.Frame(rng, concept.Robbery).Data()
			}
			schedules[keys[i]] = sched
		}
		rep, err := shard.Run(context.Background(), router, shard.Scenario{
			Keys:   keys,
			Frames: nframes,
			Frame:  func(key string, seq int) []float64 { return schedules[key][seq] },
			Kill:   &shard.Kill{Shard: 1, At: nframes / 2},
		})
		if err != nil {
			return fmt.Errorf("FailoverRecovery run: %w", err)
		}
		monitor.Stop()
		reports := monitor.Reports()
		if len(reports) == 0 {
			return fmt.Errorf("FailoverRecovery: the killed shard was never detected")
		}
		fo := reports[0]
		name := fmt.Sprintf("FailoverRecovery%dx%d", nshards, nkeys)
		res := benchResult{
			Name:           name,
			Iterations:     rep.OK,
			ThroughputFPS:  rep.Throughput,
			DetectionMs:    float64(fo.Detection.Microseconds()) / 1e3,
			RecoveryMs:     float64(fo.Recovery.Microseconds()) / 1e3,
			FramesReplayed: int64(fo.FramesReplayed),
		}
		report.Results = append(report.Results, res)
		fmt.Printf("%-20s detect=%.0fms recover=%.0fms replayed=%d cameras rehomed=%d (%d frames ok, %d retried)\n",
			name, res.DetectionMs, res.RecoveryMs, fo.FramesReplayed, len(fo.Rehomed), rep.OK, rep.Retried)
		return nil
	}
	if err := failoverBench(); err != nil {
		return err
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
