// Command benchall regenerates every table and figure of the paper's
// evaluation section: Fig. 5(A) both weak-shift panels, Fig. 5(B) the
// strong shift, Fig. 6's interpretable-retrieval trajectory, and Table I's
// edge-vs-cloud cost comparison.
//
// It also runs the pipeline's hot-path micro benchmarks (GNN forward,
// frame and video scoring, batched temporal forward, train steps —
// single-clip, 4-clip sequential accumulation and 4-clip data-parallel —
// adaptation steps, single-tape and sharded, the multi-stream serving
// tick at 1/4/8 cameras, the stream memory-density comparison —
// copy-on-write versus eager per-stream clones at 8/64 cameras, reporting
// ledger and heap bytes per stream — and the networked serving tier end
// to end: 8 camera streams over a 2-shard fleet behind the HTTP API,
// reporting fleet throughput and p50/p99/p999 per-frame latency, plus a
// failover drill killing one of the two workers mid-run and reporting
// detection latency, recovery time and frames replayed) and emits a
// machine-readable JSON report (-json, default BENCH_9.json) recording
// ns/op, allocs/op, bytes/op and FLOPs per operation, so successive PRs
// have a comparable performance trajectory. The report header records the
// selected kernel backend and the host's detected CPU features, and the
// GNN forward, batched temporal forward and train-step benches also run
// once per registered backend ("GNNForward/scalar", ".../unrolled",
// ".../avx2") so one run measures the dispatch speedup. -smoke runs each
// benchmark body once without the timing loop, which is how CI keeps the
// bench code from rotting.
//
// Usage:
//
//	benchall -exp all -scale quick
//	benchall -exp fig5b -scale full -csv out/
//	benchall -exp bench -json BENCH_9.json
//	benchall -exp bench -smoke -json /tmp/bench-smoke.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"edgekg/internal/concept"
	"edgekg/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchall: ")
	var (
		exp      = flag.String("exp", "all", "experiment: fig5a1 | fig5a2 | fig5b | fig6 | table1 | bench | all")
		scale    = flag.String("scale", "quick", "preset sizing: quick | full")
		csvDir   = flag.String("csv", "", "directory to also write CSV series into")
		jsonPath = flag.String("json", "BENCH_9.json", "micro-benchmark JSON report path (empty disables)")
		smoke    = flag.Bool("smoke", false, "bench smoke mode: run each benchmark body once, no timing loop (CI)")
	)
	flag.Parse()

	valid := map[string]bool{"fig5a1": true, "fig5a2": true, "fig5b": true, "fig6": true, "table1": true, "bench": true, "all": true}
	if !valid[*exp] {
		log.Fatalf("unknown experiment %q (want fig5a1|fig5a2|fig5b|fig6|table1|bench|all)", *exp)
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	env, err := experiments.NewEnv(sc)
	if err != nil {
		log.Fatal(err)
	}

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	runFig5 := func(tag string, a, b concept.Class) {
		res, err := experiments.RunFig5(env, a, b)
		if err != nil {
			log.Fatalf("%s: %v", tag, err)
		}
		fmt.Println(res.Render())
		writeCSV(tag+".csv", res.CSV())
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig5a1") {
		runFig5("fig5a1", concept.Stealing, concept.Robbery)
	}
	if want("fig5a2") {
		runFig5("fig5a2", concept.Robbery, concept.Stealing)
	}
	if want("fig5b") {
		runFig5("fig5b", concept.Stealing, concept.Explosion)
	}
	if want("fig6") {
		res, err := experiments.RunFig6(env, "sneaky", "firearm")
		if err != nil {
			log.Fatalf("fig6: %v", err)
		}
		fmt.Println(res.Render())
		writeCSV("fig6.csv", res.CSV())
	}
	if want("table1") {
		res, err := experiments.RunTableI(env, experiments.DefaultTableIConfig())
		if err != nil {
			log.Fatalf("table1: %v", err)
		}
		fmt.Println(res.Render())
	}
	// The micro benches are opt-in (not part of "all"): they build extra
	// trained fixtures and overwrite the JSON trajectory file, which the
	// figure-regeneration workflow should not do as a side effect.
	if *exp == "bench" {
		if *jsonPath == "" {
			log.Fatal("bench: -json must name an output path")
		}
		if err := runMicroBenches(env, *scale, *jsonPath, *smoke); err != nil {
			log.Fatalf("bench: %v", err)
		}
	}
}
