// Command edgesim simulates the deployed edge device of Fig. 2(C): a
// trained detector processes a frame stream whose anomaly trend shifts
// mid-run, the continuous KG adaptation loop keeps the model aligned, and
// the tool prints the score/AUC timeline plus the cost ledger.
//
// Usage:
//
//	edgesim -initial Stealing -shifted Robbery -segment 256 -static=false
package main

import (
	"flag"
	"fmt"
	"log"

	"edgekg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("edgesim: ")
	var (
		initial = flag.String("initial", "Stealing", "anomaly class the detector is trained on")
		shifted = flag.String("shifted", "Robbery", "anomaly class the trend shifts to")
		segment = flag.Int("segment", 256, "frames per trend segment")
		rate    = flag.Float64("rate", 0.5, "anomaly rate of the stream")
		static  = flag.Bool("static", false, "disable adaptation (the baseline arm)")
		seed    = flag.Int64("seed", 42, "seed")
		every   = flag.Int("report-every", 32, "frames between AUC reports")
	)
	flag.Parse()

	opts := edgekg.DefaultOptions()
	opts.Seed = *seed
	sys, err := edgekg.NewSystem(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training on %s...\n", *initial)
	if err := sys.Train(*initial); err != nil {
		log.Fatal(err)
	}
	if *static {
		err = sys.DeployStatic()
	} else {
		err = sys.DeployAdaptive()
	}
	if err != nil {
		log.Fatal(err)
	}

	run := func(class string, phase int) error {
		frames, err := sys.NextStreamFrames(class, *segment, *rate)
		if err != nil {
			return err
		}
		for i, f := range frames {
			res, err := sys.ProcessFrame(f.Frame)
			if err != nil {
				return err
			}
			if res.Adapted {
				fmt.Printf("  frame %4d: adaptation triggered (pruned %d, created %d)\n",
					i, res.PrunedNodes, res.CreatedNodes)
			}
			if (i+1)%*every == 0 {
				auc, err := sys.TestAUC(class)
				if err != nil {
					return err
				}
				fmt.Printf("phase %d frame %4d: score %.3f, test AUC on %-10s %.4f\n",
					phase, i+1, res.Score, class, auc)
			}
		}
		return nil
	}

	fmt.Printf("phase 0: anomaly trend = %s\n", *initial)
	if err := run(*initial, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: anomaly trend shifts to %s\n", *shifted)
	if err := run(*shifted, 1); err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("\ndeployment stats: frames=%d adaptRounds=%d triggered=%d pruned=%d created=%d\n",
		st.Frames, st.AdaptRounds, st.TriggeredRounds, st.PrunedNodes, st.CreatedNodes)
	fmt.Printf("cost ledger: scoring=%d FLOPs, adaptation=%d FLOPs, energy/adapt=%.2f J\n",
		st.ScoringFLOPs, st.AdaptFLOPs, st.EnergyPerAdaptJ)

	interp, err := sys.InterpretKG()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninterpretable KG after adaptation:")
	for _, n := range interp {
		marker := ""
		if n.Created {
			marker = " (created)"
		}
		if n.Decoded != n.Concept {
			marker += " (drifted)"
		}
		fmt.Printf("  L%d node %d: %q → %q%s\n", n.Level, n.NodeID, n.Concept, n.Decoded, marker)
	}
}
