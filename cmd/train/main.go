// Command train runs the pre-deployment pipeline (Fig. 2 A+B): generate
// the mission KG, train the hierarchical-GNN detector on synthetic task
// data, and report test AUC.
//
// Usage:
//
//	train -mission Stealing -scale quick -steps 300
package main

import (
	"flag"
	"fmt"
	"log"

	"edgekg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	var (
		mission    = flag.String("mission", "Stealing", "target anomaly class")
		scale      = flag.String("scale", "quick", "preset sizing: quick | full")
		steps      = flag.Int("steps", 0, "override training steps (0 = preset)")
		microbatch = flag.Int("microbatch", 0, "clips per step K for the data-parallel trainer (0 = preset, 1 = sequential)")
		seed       = flag.Int64("seed", 42, "seed")
		evalAll    = flag.Bool("eval-all", false, "also report AUC against every other anomaly class")
	)
	flag.Parse()

	opts := edgekg.DefaultOptions()
	opts.Scale = *scale
	opts.Seed = *seed
	opts.TrainSteps = *steps
	opts.TrainMicrobatch = *microbatch
	sys, err := edgekg.NewSystem(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training detector for mission %q (%s scale)...\n", *mission, *scale)
	if err := sys.Train(*mission); err != nil {
		log.Fatal(err)
	}
	kgStats, err := sys.KG()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KG: depth=%d nodes=%d edges=%d per-level=%v\n",
		kgStats.Depth, kgStats.Nodes, kgStats.Edges, kgStats.NodesPerLevel)

	auc, err := sys.TestAUC(*mission)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test AUC on %s: %.4f\n", *mission, auc)

	if *evalAll {
		for _, m := range edgekg.Missions() {
			if m == *mission {
				continue
			}
			a, err := sys.TestAUC(m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  transfer AUC on %-14s %.4f\n", m+":", a)
		}
	}
}
