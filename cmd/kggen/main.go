// Command kggen generates a mission-specific reasoning knowledge graph
// with the simulated LLM (Fig. 3) and prints it as JSON, Graphviz dot, or
// a statistics summary.
//
// Usage:
//
//	kggen -mission Stealing -depth 3 -fanout 5 -format dot
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/kggen"
	"edgekg/internal/oracle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kggen: ")
	var (
		mission = flag.String("mission", "Stealing", "target anomaly class (see -list)")
		depth   = flag.Int("depth", 3, "reasoning levels")
		initial = flag.Int("initial-fanout", 6, "level-1 node count")
		fanout  = flag.Int("fanout", 5, "nodes per expansion level")
		format  = flag.String("format", "stats", "output format: json | dot | stats")
		seed    = flag.Int64("seed", 42, "generation seed")
		errRate = flag.Float64("error-rate", 0.05, "LLM error injection rate (exercises the correction loop)")
		list    = flag.Bool("list", false, "list available missions and exit")
	)
	flag.Parse()

	if *list {
		for _, c := range concept.AnomalyClasses() {
			fmt.Println(c)
		}
		return
	}
	if _, ok := concept.ClassByName(*mission); !ok {
		log.Fatalf("unknown mission %q (use -list)", *mission)
	}

	ont := concept.Builtin()
	tok := bpe.Train(ont.Concepts(), 800)
	rng := rand.New(rand.NewSource(*seed))
	llm := oracle.NewSim(ont, rng, oracle.Config{
		DupErrorRate:        *errRate,
		EdgeErrorRate:       *errRate,
		CorrectionErrorRate: *errRate,
		EdgeProb:            0.9,
	})
	opts := kggen.Options{
		Depth:              *depth,
		InitialFanout:      *initial,
		Fanout:             *fanout,
		MaxCorrectionIters: 4,
		Tokenize:           tok.Encode,
	}
	g, report, err := kggen.Generate(llm, *mission, opts, rng)
	if err != nil {
		log.Fatal(err)
	}

	switch *format {
	case "json":
		data, err := g.MarshalJSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	case "dot":
		fmt.Print(g.DOT())
	case "stats":
		fmt.Println(report)
		fmt.Println(g.ComputeStats())
		for l := 1; l <= g.Depth(); l++ {
			fmt.Printf("level %d:", l)
			for _, n := range g.NodesAtLevel(l) {
				fmt.Printf(" %s", n.Concept)
			}
			fmt.Println()
		}
	default:
		log.Fatalf("unknown format %q", *format)
	}
}
