// Command loadgen drives a fleet of cmd/serve -listen workers through the
// shard router: it synthesises per-camera frame schedules with the same
// seed derivation cmd/serve's self-driving mode uses, hashes the camera
// keys across the workers, and submits frames either open-loop (a fixed
// arrival rate per camera, with optional bursts — latency is measured
// from each frame's scheduled arrival, so queueing delay counts and
// coordinated omission does not hide overload) or closed-loop (-rate 0:
// lockstep submit/receive, nothing shed — the mode deterministic
// continuity checks use).
//
// A run can migrate one camera between shards mid-stream via the
// checkpoint path (-migrate key@frame:shard); with -out the per-camera
// score traces land in a JSON report, and -expect compares a later run's
// traces against such a report bit-exactly — which is how CI asserts that
// a migrated stream's trajectory is identical to one that never moved.
//
// It is also the failure-drill harness: -snapshot-every arms the router's
// per-key snapshot/replay cache and a health monitor (-probe-every,
// -probe-timeout, -down-after), and -kill shard@frame crashes a worker
// mid-run — the monitor detects the death, failover rehomes the dead
// shard's cameras onto survivors and replays the frames scored since
// their snapshots, the drivers retry through the outage, and the report
// carries detection latency, recovery time and frames replayed. Combined
// with -expect, that is how CI asserts failed-over trajectories stay
// bit-exact.
//
// Usage:
//
//	loadgen -workers http://127.0.0.1:9701,http://127.0.0.1:9702 \
//	        -streams 8 -frames 48 -out baseline.json
//	loadgen -workers ... -streams 8 -frames 48 \
//	        -migrate cam-0@17:1 -expect baseline.json -shutdown
//	loadgen -workers ... -streams 8 -frames 48 \
//	        -snapshot-every 8 -kill 1@17 -expect baseline.json -shutdown
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"edgekg"
	"edgekg/internal/netserve"
	"edgekg/internal/shard"
)

// report is the JSON artifact a run writes with -out and checks with
// -expect.
type report struct {
	Workers       int                  `json:"workers"`
	Streams       int                  `json:"streams"`
	Frames        int                  `json:"frames"`
	Sent          int                  `json:"sent"`
	OK            int                  `json:"ok"`
	Shed          int                  `json:"shed"`
	Failed        int                  `json:"failed"`
	Retried       int                  `json:"retried,omitempty"`
	ElapsedS      float64              `json:"elapsed_s"`
	ThroughputFPS float64              `json:"throughput_fps"`
	P50Ms         float64              `json:"p50_ms"`
	P99Ms         float64              `json:"p99_ms"`
	P999Ms        float64              `json:"p999_ms"`
	MaxMs         float64              `json:"max_ms"`
	DetectionMs   float64              `json:"detection_ms,omitempty"`
	RecoveryMs    float64              `json:"recovery_ms,omitempty"`
	FramesReplay  int                  `json:"frames_replayed,omitempty"`
	KeysRehomed   []string             `json:"keys_rehomed,omitempty"`
	Traces        map[string][]float64 `json:"traces,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		workers     = flag.String("workers", "http://127.0.0.1:9701", "comma-separated worker base URLs (one per shard)")
		streams     = flag.Int("streams", 8, "camera stream count across the fleet")
		frames      = flag.Int("frames", 48, "frames per camera")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate per camera in frames/s (0 = closed-loop lockstep)")
		burstEvery  = flag.Int("burst-every", 0, "every Nth open-loop arrival starts a burst (0 disables)")
		burstSize   = flag.Int("burst-size", 0, "arrivals sharing the burst instant")
		initial     = flag.String("initial", "Stealing", "anomaly class every camera starts on")
		shifted     = flag.String("shifted", "Robbery", "anomaly class cameras drift to")
		driftAt     = flag.Int("drift-at", 16, "frame index at which camera 0's trend shifts")
		stagger     = flag.Int("stagger", 8, "extra drift delay per camera index")
		anomalyRate = flag.Float64("anomaly-rate", 0.5, "anomaly rate of each camera")
		seed        = flag.Int64("seed", 42, "seed (must match the workers' -seed for comparable runs)")
		migrate     = flag.String("migrate", "", "migrate one camera mid-run: key@frame:toshard (e.g. cam-0@17:1)")
		maxInflight = flag.Int("max-inflight", 0, "router admission bound per shard (0 = 2× the shard's slots)")
		snapEvery   = flag.Int("snapshot-every", 0, "arm failover: refresh each camera's router-side state snapshot every N scored frames (0 disables)")
		kill        = flag.String("kill", "", "crash one worker mid-run: shard@frame (e.g. 1@17, before cam-0's frame 17; requires -snapshot-every)")
		probeEvery  = flag.Duration("probe-every", 100*time.Millisecond, "health probe interval per shard")
		probeLimit  = flag.Duration("probe-timeout", time.Second, "health probe timeout")
		downAfter   = flag.Int("down-after", 3, "consecutive failed probes before a shard is declared dead")
		out         = flag.String("out", "", "write the run report (counters, latency percentiles, score traces) to this JSON file")
		expect      = flag.String("expect", "", "compare this run's score traces bit-exactly against a previous -out report")
		wait        = flag.Duration("wait", 120*time.Second, "how long to wait for every worker to become ready")
		checkpoint  = flag.Bool("checkpoint", false, "ask every worker for a full-deployment checkpoint after the run")
		shutdown    = flag.Bool("shutdown", false, "ask every worker to shut down after the run")
	)
	flag.Parse()

	switch {
	case *streams < 1:
		log.Fatalf("-streams %d: camera count must be ≥1", *streams)
	case *frames < 1:
		log.Fatalf("-frames %d: frame count must be ≥1", *frames)
	case *anomalyRate < 0 || *anomalyRate > 1:
		log.Fatalf("-anomaly-rate %v: must be in [0,1]", *anomalyRate)
	case *expect != "" && *rate > 0:
		log.Fatal("-expect needs a closed-loop run (-rate 0): open-loop sheds leave trace gaps")
	case *snapEvery < 0:
		log.Fatalf("-snapshot-every %d: must be ≥0", *snapEvery)
	case *kill != "" && *snapEvery < 1:
		log.Fatal("-kill requires -snapshot-every: without the router-side snapshot cache there is nothing to fail over from")
	case *downAfter < 1:
		log.Fatalf("-down-after %d: must be ≥1", *downAfter)
	}

	// Connect the fleet: every worker must be up and agree on the frame
	// size before any load flows.
	urls := strings.Split(*workers, ",")
	ctx := context.Background()
	backends := make([]shard.Backend, len(urls))
	slots := 0
	for i, u := range urls {
		c := netserve.NewClient(strings.TrimSpace(u))
		wctx, cancel := context.WithTimeout(ctx, *wait)
		h, err := c.WaitReady(wctx)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		backends[i] = shard.NetBackend(c, h.Streams)
		slots += h.Streams
		fmt.Printf("shard %d: %s (%d slots, frame size %d)\n", i, u, h.Streams, h.FrameSize)
	}
	if *streams > slots {
		log.Fatalf("-streams %d exceeds the fleet's %d slots", *streams, slots)
	}
	router, err := shard.New(backends, shard.Config{MaxInflight: *maxInflight, SnapshotEvery: *snapEvery})
	if err != nil {
		log.Fatal(err)
	}
	var monitor *shard.HealthMonitor
	if *snapEvery > 0 {
		monitor = shard.NewHealthMonitor(router, shard.HealthConfig{
			Interval:  *probeEvery,
			Timeout:   *probeLimit,
			Threshold: *downAfter,
		})
		monitor.Start()
		defer monitor.Stop()
		fmt.Printf("failover armed: snapshots every %d frames, probes every %v, dead after %d misses\n",
			*snapEvery, *probeEvery, *downAfter)
	}

	// Synthesise each camera's schedule with the derivation cmd/serve's
	// self-driving mode uses: per-camera seeds, drift at driftAt+i·stagger.
	sys, err := edgekg.NewSystem(edgekg.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	keys := make([]string, *streams)
	schedules := make(map[string][][]float64, *streams)
	for i := range keys {
		keys[i] = fmt.Sprintf("cam-%d", i)
		shift := *driftAt + i**stagger
		if shift > *frames {
			shift = *frames
		}
		pre, err := sys.NextStreamFramesSeeded(*initial, shift, *anomalyRate, *seed+1000+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		post, err := sys.NextStreamFramesSeeded(*shifted, *frames-shift, *anomalyRate, *seed+2000+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		sched := make([][]float64, 0, *frames)
		for _, f := range pre {
			sched = append(sched, f.Frame)
		}
		for _, f := range post {
			sched = append(sched, f.Frame)
		}
		schedules[keys[i]] = sched
	}

	sc := shard.Scenario{
		Keys:       keys,
		Frames:     *frames,
		Rate:       *rate,
		BurstEvery: *burstEvery,
		BurstSize:  *burstSize,
		Frame:      func(key string, seq int) []float64 { return schedules[key][seq] },
	}
	if *migrate != "" {
		key, at, to, err := parseMigrate(*migrate)
		if err != nil {
			log.Fatalf("-migrate %q: %v", *migrate, err)
		}
		if to < 0 || to >= len(backends) {
			log.Fatalf("-migrate %q: fleet has %d shards", *migrate, len(backends))
		}
		sc.MigrateKey, sc.MigrateAt, sc.MigrateTo = key, at, to
		fmt.Printf("will migrate %s to shard %d before its frame %d\n", key, to, at)
	}
	if *kill != "" {
		shardIdx, at, err := parseKill(*kill)
		if err != nil {
			log.Fatalf("-kill %q: %v", *kill, err)
		}
		if shardIdx < 0 || shardIdx >= len(backends) {
			log.Fatalf("-kill %q: fleet has %d shards", *kill, len(backends))
		}
		sc.Kill = &shard.Kill{Shard: shardIdx, At: at}
		fmt.Printf("will kill shard %d before %s's frame %d\n", shardIdx, keys[0], at)
	}

	rep, err := shard.Run(ctx, router, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- %d cameras × %d frames over %d shards in %.2fs ---\n",
		*streams, *frames, len(backends), rep.Elapsed.Seconds())
	fmt.Printf("sent=%d ok=%d shed=%d failed=%d retried=%d throughput=%.0f frames/s\n",
		rep.Sent, rep.OK, rep.Shed, rep.Failed, rep.Retried, rep.Throughput)
	fmt.Printf("latency from scheduled arrival: p50=%.2fms p99=%.2fms p999=%.2fms max=%.2fms\n",
		rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.MaxMs)

	full := report{
		Workers: len(backends), Streams: *streams, Frames: *frames,
		Sent: rep.Sent, OK: rep.OK, Shed: rep.Shed, Failed: rep.Failed,
		Retried:  rep.Retried,
		ElapsedS: rep.Elapsed.Seconds(), ThroughputFPS: rep.Throughput,
		P50Ms: rep.P50Ms, P99Ms: rep.P99Ms, P999Ms: rep.P999Ms, MaxMs: rep.MaxMs,
		Traces: rep.Traces,
	}
	if monitor != nil {
		monitor.Stop()
		for _, fo := range monitor.Reports() {
			fmt.Printf("failover: shard %d dead — detected in %.0fms, %d cameras rehomed, %d frames replayed, recovered in %.0fms%s\n",
				fo.Shard, float64(fo.Detection.Microseconds())/1e3, len(fo.Rehomed),
				fo.FramesReplayed, float64(fo.Recovery.Microseconds())/1e3, fmtFailoverErr(fo.Err))
			full.DetectionMs += float64(fo.Detection.Microseconds()) / 1e3
			full.RecoveryMs += float64(fo.Recovery.Microseconds()) / 1e3
			full.FramesReplay += fo.FramesReplayed
			for _, k := range fo.Keys {
				if _, ok := fo.Rehomed[k]; ok {
					full.KeysRehomed = append(full.KeysRehomed, k)
				}
			}
		}
		if *kill != "" && len(monitor.Reports()) == 0 {
			log.Fatal("-kill ran but the health monitor never detected a dead shard")
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(full, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if *expect != "" {
		if err := compareTraces(*expect, rep.Traces); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("traces match %s bit-exactly (%d cameras)\n", *expect, len(rep.Traces))
	}
	if *checkpoint {
		for i := range backends {
			if router.Down(i) {
				fmt.Printf("shard %d is down, skipping checkpoint\n", i)
				continue
			}
			path, err := router.Backend(i).(interface {
				Checkpoint(context.Context) (string, error)
			}).Checkpoint(ctx)
			if err != nil {
				log.Fatalf("shard %d checkpoint: %v", i, err)
			}
			fmt.Printf("shard %d checkpointed to %s\n", i, path)
		}
	}
	if *shutdown {
		for i := range backends {
			if router.Down(i) {
				fmt.Printf("shard %d is down, skipping shutdown\n", i)
				continue
			}
			if err := router.Backend(i).(interface{ Shutdown(context.Context) error }).Shutdown(ctx); err != nil {
				log.Fatalf("shard %d shutdown: %v", i, err)
			}
		}
		fmt.Println("fleet shut down")
	}
}

// parseKill reads "shard@frame".
func parseKill(s string) (shardIdx, at int, err error) {
	atIdx := strings.LastIndex(s, "@")
	if atIdx < 1 || atIdx == len(s)-1 {
		return 0, 0, fmt.Errorf("want shard@frame")
	}
	shardIdx, err = strconv.Atoi(s[:atIdx])
	if err != nil {
		return 0, 0, fmt.Errorf("bad shard index %q", s[:atIdx])
	}
	at, err = strconv.Atoi(s[atIdx+1:])
	if err != nil || at < 0 {
		return 0, 0, fmt.Errorf("bad frame index %q", s[atIdx+1:])
	}
	return shardIdx, at, nil
}

// fmtFailoverErr renders a failover's partial-failure text for the
// summary line.
func fmtFailoverErr(s string) string {
	if s == "" {
		return ""
	}
	return fmt.Sprintf(" (errors: %s)", s)
}

// parseMigrate reads "key@frame:toshard".
func parseMigrate(s string) (key string, at, to int, err error) {
	atIdx := strings.LastIndex(s, "@")
	colIdx := strings.LastIndex(s, ":")
	if atIdx < 1 || colIdx < atIdx+2 || colIdx == len(s)-1 {
		return "", 0, 0, fmt.Errorf("want key@frame:toshard")
	}
	key = s[:atIdx]
	at, err = strconv.Atoi(s[atIdx+1 : colIdx])
	if err != nil || at < 0 {
		return "", 0, 0, fmt.Errorf("bad frame index %q", s[atIdx+1:colIdx])
	}
	to, err = strconv.Atoi(s[colIdx+1:])
	if err != nil {
		return "", 0, 0, fmt.Errorf("bad shard index %q", s[colIdx+1:])
	}
	return key, at, to, nil
}

// compareTraces checks this run's score traces against a previous report
// bit-exactly: same cameras, same lengths, identical float bits.
func compareTraces(path string, got map[string][]float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want report
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(want.Traces) == 0 {
		return fmt.Errorf("%s has no traces (was it a closed-loop -out run?)", path)
	}
	if len(got) != len(want.Traces) {
		return fmt.Errorf("this run has %d traces, %s has %d", len(got), path, len(want.Traces))
	}
	for key, w := range want.Traces {
		g, ok := got[key]
		if !ok {
			return fmt.Errorf("camera %q missing from this run", key)
		}
		if len(g) != len(w) {
			return fmt.Errorf("camera %q: %d frames vs %d in %s", key, len(g), len(w), path)
		}
		for i := range g {
			if g[i] != w[i] {
				return fmt.Errorf("camera %q frame %d: score %v differs from %v in %s — the migrated trajectory diverged", key, i, g[i], w[i], path)
			}
		}
	}
	return nil
}
