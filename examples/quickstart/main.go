// Quickstart: generate a mission KG, train the detector, and score a few
// frames — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"edgekg"
)

func main() {
	log.SetFlags(0)

	// Build the substrate: ontology, tokenizer, joint embedding space.
	sys, err := edgekg.NewSystem(edgekg.Options{Seed: 7, Scale: "quick", TrainSteps: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("available missions:", edgekg.Missions())

	// Fig. 2(A)+(B): KG generation + detector training.
	if err := sys.Train("Stealing"); err != nil {
		log.Fatal(err)
	}
	kg, err := sys.KG()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated KG: depth=%d, %d nodes, %d edges\n", kg.Depth, kg.Nodes, kg.Edges)

	auc, err := sys.TestAUC("Stealing")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test AUC on Stealing: %.3f\n", auc)

	// Deploy frozen and score a handful of frames.
	if err := sys.DeployStatic(); err != nil {
		log.Fatal(err)
	}
	for _, class := range []string{"Normal", "Stealing", "Normal", "Stealing"} {
		frame, err := sys.SynthesizeFrame(class)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.ProcessFrame(frame)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame of %-9s anomaly score %.3f\n", class+":", res.Score)
	}
}
