// Edgedeploy: the Table I scenario as a runnable demo. A detector runs a
// simulated month on an edge device with one adaptation round per day; the
// demo prints the measured FLOPs, the device-model energy, and contrasts
// them with the paper's stated cloud constants.
package main

import (
	"fmt"
	"log"

	"edgekg"
)

const (
	days          = 12
	framesPerDay  = 32
	anomalyRate   = 0.5
	cloudFLOPs    = 1e15 // Table I: GPT-4 compute per cloud KG update
	cloudGBUpdate = 0.5  // Table I: bandwidth per cloud KG update
)

func main() {
	log.SetFlags(0)

	sys, err := edgekg.NewSystem(edgekg.Options{
		Seed:             31,
		Scale:            "quick",
		TrainSteps:       250,
		AdaptEveryFrames: framesPerDay, // one adaptation round per "day"
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Train("Stealing"); err != nil {
		log.Fatal(err)
	}
	if err := sys.DeployAdaptive(); err != nil {
		log.Fatal(err)
	}

	// The month alternates Stealing and Robbery trends (the Table I
	// scenario), shifting every 3 days.
	classes := []string{"Stealing", "Robbery"}
	var aucSum float64
	for day := 0; day < days; day++ {
		cls := classes[(day/3)%2]
		frames, err := sys.NextStreamFrames(cls, framesPerDay, anomalyRate)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range frames {
			if _, err := sys.ProcessFrame(f.Frame); err != nil {
				log.Fatal(err)
			}
		}
		auc, err := sys.TestAUC(cls)
		if err != nil {
			log.Fatal(err)
		}
		aucSum += auc
		fmt.Printf("day %2d (trend %-9s): daily AUC %.3f\n", day+1, cls+")", auc)
	}

	st := sys.Stats()
	fmt.Printf("\n--- month summary (%d days simulated) ---\n", days)
	fmt.Printf("average AUC:                 %.3f\n", aucSum/days)
	fmt.Printf("adaptation rounds:           %d (%d triggered)\n", st.AdaptRounds, st.TriggeredRounds)
	perDay := int64(0)
	if st.AdaptRounds > 0 {
		perDay = st.AdaptFLOPs / int64(st.AdaptRounds)
	}
	fmt.Printf("edge FLOPs per adaptation:   %.3e (measured)\n", float64(perDay))
	fmt.Printf("edge energy per adaptation:  %.2f J (device model)\n", st.EnergyPerAdaptJ)
	fmt.Printf("cloud FLOPs avoided:         %.1e per update the baseline would run\n", cloudFLOPs)
	fmt.Printf("bandwidth avoided:           %.1f GB per update\n", cloudGBUpdate)
	fmt.Printf("KG nodes pruned/created:     %d/%d\n", st.PrunedNodes, st.CreatedNodes)
}
