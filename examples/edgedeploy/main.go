// Edgedeploy: the Table I scenario as a runnable demo, multiplexed the
// way a real edge box is deployed — several cameras served by one
// process. A trained detector runs a simulated month with one adaptation
// round per day on every camera; each camera's anomaly trend alternates
// on its own phase, each adapts its own KG copy over the shared frozen
// backbone, and the demo prints per-camera daily AUC, the measured FLOPs,
// the device-model energy, and contrasts them with the paper's stated
// cloud constants.
package main

import (
	"fmt"
	"log"
	"sync"

	"edgekg"
)

const (
	cameras       = 3
	days          = 12
	framesPerDay  = 32
	anomalyRate   = 0.5
	cloudFLOPs    = 1e15 // Table I: GPT-4 compute per cloud KG update
	cloudGBUpdate = 0.5  // Table I: bandwidth per cloud KG update
)

func main() {
	log.SetFlags(0)

	sys, err := edgekg.NewSystem(edgekg.Options{
		Seed:       31,
		Scale:      "quick",
		TrainSteps: 250,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Train("Stealing"); err != nil {
		log.Fatal(err)
	}

	// The month alternates Stealing and Robbery trends (the Table I
	// scenario), shifting every 3 days — with each camera phase-shifted by
	// its index so the box never adapts to one global trend.
	classes := []string{"Stealing", "Robbery"}
	camClass := func(cam, day int) string { return classes[((day+cam)/3)%2] }

	// Synthesise every camera's month up front (the shared frame
	// synthesiser is not meant to be called from concurrent camera
	// goroutines).
	schedules := make([][][]float64, cameras)
	for cam := 0; cam < cameras; cam++ {
		for day := 0; day < days; day++ {
			frames, err := sys.NextStreamFrames(camClass(cam, day), framesPerDay, anomalyRate)
			if err != nil {
				log.Fatal(err)
			}
			for _, f := range frames {
				schedules[cam] = append(schedules[cam], f.Frame)
			}
		}
	}

	srv, err := sys.Serve(edgekg.ServeOptions{
		Streams:          cameras,
		Adaptive:         true,
		AdaptEveryFrames: framesPerDay, // one adaptation round per "day"
		AdaptLagFrames:   8,            // keep scoring on the old KG while adapting
	})
	if err != nil {
		log.Fatal(err)
	}

	// One goroutine per camera. The daily AUC probe runs one frame before
	// the day's end: the probe is a barrier that would force-join an
	// in-flight round, and the day's adaptation round triggers on the last
	// frame — probing just before it leaves that round free to overlap the
	// first AdaptLagFrames frames of the next day, which is the point of
	// the async serving runtime.
	aucSum := make([]float64, cameras)
	var wg sync.WaitGroup
	for cam := 0; cam < cameras; cam++ {
		cam := cam
		wg.Add(1)
		go func() {
			defer wg.Done()
			for day := 0; day < days; day++ {
				for k := 0; k < framesPerDay; k++ {
					if k == framesPerDay-1 {
						cls := camClass(cam, day)
						auc, err := srv.TestAUC(cam, cls)
						if err != nil {
							log.Fatal(err)
						}
						aucSum[cam] += auc
						fmt.Printf("cam %d day %2d (trend %-9s): daily AUC %.3f\n", cam, day+1, cls, auc)
					}
					if _, err := srv.ProcessFrame(cam, schedules[cam][day*framesPerDay+k]); err != nil {
						log.Fatal(err)
					}
				}
			}
			srv.CloseStream(cam)
		}()
	}
	wg.Wait()
	srv.Close()

	fmt.Printf("\n--- month summary (%d cameras × %d days, one process) ---\n", cameras, days)
	var totalAdaptFLOPs, totalEnergy float64
	var totalRounds, totalTriggered, totalPruned, totalCreated int
	for cam := 0; cam < cameras; cam++ {
		st, err := srv.Stats(cam)
		if err != nil {
			log.Fatal(err)
		}
		perDay := int64(0)
		if st.AdaptRounds > 0 {
			perDay = st.AdaptFLOPs / int64(st.AdaptRounds)
		}
		fmt.Printf("cam %d: average AUC %.3f, rounds %d (%d triggered), FLOPs/adapt %.3e, energy/adapt %.2f J\n",
			cam, aucSum[cam]/days, st.AdaptRounds, st.TriggeredRounds, float64(perDay), st.EnergyPerAdaptJ)
		totalAdaptFLOPs += float64(st.AdaptFLOPs)
		totalEnergy += st.EnergyPerAdaptJ * float64(st.AdaptRounds)
		totalRounds += st.AdaptRounds
		totalTriggered += st.TriggeredRounds
		totalPruned += st.PrunedNodes
		totalCreated += st.CreatedNodes
	}
	fmt.Printf("\nadaptation rounds:           %d (%d triggered) across %d cameras\n", totalRounds, totalTriggered, cameras)
	fmt.Printf("edge FLOPs, all adaptation:  %.3e (measured)\n", totalAdaptFLOPs)
	fmt.Printf("edge energy, all adaptation: %.2f J (device model)\n", totalEnergy)
	fmt.Printf("cloud FLOPs avoided:         %.1e per update the baseline would run, per camera\n", cloudFLOPs)
	fmt.Printf("bandwidth avoided:           %.1f GB per update, per camera\n", cloudGBUpdate)
	fmt.Printf("KG nodes pruned/created:     %d/%d\n", totalPruned, totalCreated)
}
