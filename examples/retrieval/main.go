// Retrieval: the Fig. 6 mechanism as a runnable demo. After adapting a
// Stealing detector through a shift to Robbery, Interpretable KG Retrieval
// decodes every reasoning node's learned token embeddings back into
// vocabulary words, showing which concepts drifted.
package main

import (
	"fmt"
	"log"

	"edgekg"
)

func main() {
	log.SetFlags(0)

	sys, err := edgekg.NewSystem(edgekg.Options{Seed: 23, Scale: "quick", TrainSteps: 250})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Train("Stealing"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("interpretable KG before adaptation:")
	printKG(sys)

	if err := sys.DeployAdaptive(); err != nil {
		log.Fatal(err)
	}
	// Warm-up on the trained trend, then a long Robbery phase.
	for _, phase := range []struct {
		class  string
		frames int
	}{
		{"Stealing", 128},
		{"Robbery", 384},
	} {
		frames, err := sys.NextStreamFrames(phase.class, phase.frames, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range frames {
			if _, err := sys.ProcessFrame(f.Frame); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("\ninterpretable KG after Stealing→Robbery adaptation:")
	printKG(sys)

	st := sys.Stats()
	fmt.Printf("\n(%d adaptation rounds, %d triggered, %d nodes pruned)\n",
		st.AdaptRounds, st.TriggeredRounds, st.PrunedNodes)
}

func printKG(sys *edgekg.System) {
	nodes, err := sys.InterpretKG()
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range nodes {
		marker := ""
		if n.Decoded != n.Concept {
			marker = "   <-- drifted"
		}
		if n.Created {
			marker = "   <-- created by adaptation"
		}
		fmt.Printf("  L%d %-16q decodes to %-16q%s\n", n.Level, n.Concept, n.Decoded, marker)
	}
}
