// Trendshift: the Fig. 5 scenario as a runnable demo. A detector trained
// on Stealing watches a stream whose anomaly trend shifts to Robbery;
// continuous KG adaptation recovers the lost accuracy while a static twin
// (same seed, adaptation disabled) stays degraded.
package main

import (
	"fmt"
	"log"

	"edgekg"
)

const (
	segment = 256
	rate    = 0.5
)

func main() {
	log.SetFlags(0)

	runArm := func(adaptive bool) (before, shifted, after float64) {
		sys, err := edgekg.NewSystem(edgekg.Options{Seed: 42, Scale: "quick", TrainSteps: 300})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Train("Stealing"); err != nil {
			log.Fatal(err)
		}
		if adaptive {
			err = sys.DeployAdaptive()
		} else {
			err = sys.DeployStatic()
		}
		if err != nil {
			log.Fatal(err)
		}
		before, err = sys.TestAUC("Stealing")
		if err != nil {
			log.Fatal(err)
		}
		// Warm the monitor on the initial trend, then shift.
		for _, phase := range []string{"Stealing", "Robbery"} {
			frames, err := sys.NextStreamFrames(phase, segment, rate)
			if err != nil {
				log.Fatal(err)
			}
			for _, f := range frames {
				if _, err := sys.ProcessFrame(f.Frame); err != nil {
					log.Fatal(err)
				}
			}
			if phase == "Robbery" {
				after, err = sys.TestAUC("Robbery")
				if err != nil {
					log.Fatal(err)
				}
			} else {
				shifted, err = sys.TestAUC("Robbery")
				if err != nil {
					log.Fatal(err)
				}
			}
		}
		st := sys.Stats()
		label := "static"
		if adaptive {
			label = "adaptive"
		}
		fmt.Printf("[%s] rounds=%d triggered=%d pruned=%d created=%d\n",
			label, st.AdaptRounds, st.TriggeredRounds, st.PrunedNodes, st.CreatedNodes)
		return before, shifted, after
	}

	fmt.Println("=== with KG adaptive learning ===")
	b1, s1, a1 := runArm(true)
	fmt.Printf("AUC: initial(Stealing)=%.3f  at-shift(Robbery)=%.3f  adapted(Robbery)=%.3f\n\n", b1, s1, a1)

	fmt.Println("=== without KG adaptive learning (static KG) ===")
	b2, s2, a2 := runArm(false)
	fmt.Printf("AUC: initial(Stealing)=%.3f  at-shift(Robbery)=%.3f  final(Robbery)=%.3f\n\n", b2, s2, a2)

	fmt.Printf("adaptation benefit on the shifted anomaly: %+.3f AUC\n", a1-a2)
}
