// Package edgekg is the public API of the continuous GNN-based anomaly
// detection system of Yun et al., "Continuous GNN-based Anomaly Detection
// on Edge using Efficient Adaptive Knowledge Graph Learning" (DATE 2025).
//
// The package assembles the full pipeline of the paper's Fig. 2 behind a
// small surface: generate a mission-specific knowledge graph from the
// (simulated) LLM, train the lightweight hierarchical-GNN detector,
// deploy it frozen to a simulated edge runtime, and let continuous KG
// adaptive learning keep it aligned with shifting anomaly trends — no
// cloud involved. Interpretable KG retrieval decodes what the adapted
// graph has learned back into vocabulary words.
//
// All heavy machinery lives in internal packages; this facade exposes
// plain-Go types (float64 slices, strings, small structs) so downstream
// users never need the internal APIs. See examples/ for runnable
// walk-throughs and DESIGN.md for the architecture map.
package edgekg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/edge"
	"edgekg/internal/experiments"
	"edgekg/internal/kg"
	"edgekg/internal/kggen"
	"edgekg/internal/netserve"
	"edgekg/internal/retrieval"
	"edgekg/internal/rng"
	"edgekg/internal/serve"
	"edgekg/internal/snapshot"
	"edgekg/internal/tensor"
)

// Options configures a System. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// Seed drives every stochastic component; equal seeds give bitwise
	// identical systems.
	Seed int64
	// Scale selects the preset sizing: "quick" (seconds-scale, tests and
	// demos) or "full" (the EXPERIMENTS.md configuration).
	Scale string
	// TrainSteps overrides the preset's training length when > 0.
	TrainSteps int
	// TrainMicrobatch overrides the clips-per-step K of the data-parallel
	// trainer when > 0: each optimisation step samples K clips, computes
	// their gradients concurrently on the worker pool, and applies the
	// averaged update. 1 reproduces the paper's one-clip steps.
	TrainMicrobatch int
	// AdaptEveryFrames overrides the adaptation cadence when > 0.
	AdaptEveryFrames int
}

// DefaultOptions returns a quick-scale configuration.
func DefaultOptions() Options {
	return Options{Seed: 42, Scale: "quick"}
}

// System is one end-to-end deployment: joint embedding space, mission KG,
// detector, and (after Deploy*) the edge runtime.
type System struct {
	env     *experiments.Env
	mission concept.Class
	graph   *kg.Graph
	det     *core.Detector
	runtime *edge.Runtime
	retr    *retrieval.Retriever
	rng     *rand.Rand
}

// NewSystem builds the substrate (ontology, tokenizer, joint space,
// dataset generator) for the given options.
func NewSystem(opts Options) (*System, error) {
	var scale experiments.Scale
	switch opts.Scale {
	case "", "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return nil, fmt.Errorf("edgekg: unknown scale %q (want quick or full)", opts.Scale)
	}
	if opts.Seed != 0 {
		scale.Seed = opts.Seed
	}
	if opts.TrainSteps > 0 {
		scale.TrainSteps = opts.TrainSteps
	}
	if opts.TrainMicrobatch > 0 {
		scale.TrainMicrobatch = opts.TrainMicrobatch
	}
	if opts.AdaptEveryFrames > 0 {
		scale.AdaptEvery = opts.AdaptEveryFrames
	}
	env, err := experiments.NewEnv(scale)
	if err != nil {
		return nil, err
	}
	return &System{
		env:  env,
		retr: retrieval.New(env.Space),
		rng:  rand.New(rand.NewSource(scale.Seed)),
	}, nil
}

// Missions returns the supported mission (anomaly class) names.
func Missions() []string {
	classes := concept.AnomalyClasses()
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = c.String()
	}
	return out
}

// Train generates the mission-specific KG and trains the detector on
// synthetic task data (Fig. 2 A+B). It must be called before deployment.
func (s *System) Train(mission string) error {
	cls, ok := concept.ClassByName(mission)
	if !ok || cls == concept.Normal {
		return fmt.Errorf("edgekg: unknown mission %q (see Missions())", mission)
	}
	det, g, err := s.env.BuildTrainedDetector(cls, s.env.Scale.Seed+1)
	if err != nil {
		return err
	}
	s.mission = cls
	s.graph = g
	s.det = det
	s.runtime = nil
	return nil
}

// DeployAdaptive freezes the model and starts the edge runtime with
// continuous KG adaptive learning enabled (Fig. 2C).
func (s *System) DeployAdaptive() error { return s.deploy(true) }

// DeployStatic freezes the model with adaptation disabled — the
// "without KG adaptive learning" arm of Fig. 5.
func (s *System) DeployStatic() error { return s.deploy(false) }

func (s *System) deploy(adaptive bool) error {
	if s.det == nil {
		return fmt.Errorf("edgekg: Train before deploying")
	}
	sc := s.env.Scale
	cfg := edge.DefaultConfig()
	cfg.MonitorN = sc.MonitorN
	cfg.MonitorLag = sc.MonitorLag
	cfg.Adapt = sc.Adapt
	cfg.AdaptEveryFrames = sc.AdaptEvery
	if !adaptive {
		cfg.AdaptEveryFrames = 0
	}
	// The runtime gets its own serializable random source (not the
	// System's master RNG): checkpointing must capture and replay the
	// adapter's random stream, and the seed derivation matches stream 0
	// of a 1-stream Serve deployment.
	rt, err := edge.NewRuntime(s.det, cfg, rng.NewSource(sc.Seed+100))
	if err != nil {
		return err
	}
	s.runtime = rt
	return nil
}

// SaveCheckpoint persists the deployed runtime's complete adaptation
// state — adapted knowledge graphs, token banks, monitor window,
// optimizer moments, RNG state, counters and cost ledger — to a file
// with an atomic temp-then-rename write, so a process restart can resume
// warm instead of cold-starting from the frozen backbone.
func (s *System) SaveCheckpoint(path string) error {
	if s.runtime == nil {
		return fmt.Errorf("edgekg: deploy before checkpointing")
	}
	return s.runtime.Save(path)
}

// LoadCheckpoint restores a previously saved runtime checkpoint. Call it
// after Train and Deploy* with the same options the checkpoint was taken
// under (same seed, scale and deployment mode) — the frozen backbone is
// rebuilt deterministically from the seed and only the adaptation delta
// is restored. Mismatched checkpoints fail loudly.
func (s *System) LoadCheckpoint(path string) error {
	if s.runtime == nil {
		return fmt.Errorf("edgekg: deploy before restoring a checkpoint")
	}
	return s.runtime.Load(path)
}

// Deployed reports whether an edge runtime is active.
func (s *System) Deployed() bool { return s.runtime != nil }

// FrameSize returns the expected raw frame-feature length.
func (s *System) FrameSize() int { return s.env.Space.PixDim() }

// SynthesizeFrame generates one raw frame of the given class ("Normal" or
// any mission name) — the stand-in for a camera capture.
func (s *System) SynthesizeFrame(class string) ([]float64, error) {
	cls, ok := concept.ClassByName(class)
	if !ok {
		return nil, fmt.Errorf("edgekg: unknown class %q", class)
	}
	pix := s.env.Gen.Frame(s.rng, cls)
	out := make([]float64, pix.Size())
	copy(out, pix.Data())
	return out, nil
}

// FrameResult reports one processed frame.
type FrameResult struct {
	// Score is the anomaly probability pA ∈ [0,1].
	Score float64
	// Adapted is true when this frame's arrival triggered an adaptation
	// round that selected pseudo-anomalies.
	Adapted bool
	// PrunedNodes and CreatedNodes count structural KG changes this round.
	PrunedNodes, CreatedNodes int
}

// ProcessFrame scores one raw frame through the deployed runtime,
// advancing the monitor and (on cadence) the adaptation loop.
func (s *System) ProcessFrame(frame []float64) (FrameResult, error) {
	if s.runtime == nil {
		return FrameResult{}, fmt.Errorf("edgekg: deploy before processing frames")
	}
	if len(frame) != s.FrameSize() {
		return FrameResult{}, fmt.Errorf("edgekg: frame length %d, want %d", len(frame), s.FrameSize())
	}
	pix := tensor.FromSlice(append([]float64(nil), frame...), len(frame))
	score, rep, err := s.runtime.ProcessFrame(pix)
	if err != nil {
		return FrameResult{}, err
	}
	return FrameResult{
		Score:        score,
		Adapted:      rep.Triggered,
		PrunedNodes:  len(rep.Pruned),
		CreatedNodes: len(rep.Created),
	}, nil
}

// TestAUC evaluates the current detector against freshly synthesised test
// videos of the given anomaly class (plus normals), returning frame-level
// ROC-AUC — the paper's metric.
func (s *System) TestAUC(class string) (float64, error) {
	if s.det == nil {
		return 0, fmt.Errorf("edgekg: Train first")
	}
	cls, ok := concept.ClassByName(class)
	if !ok || cls == concept.Normal {
		return 0, fmt.Errorf("edgekg: unknown anomaly class %q", class)
	}
	return s.env.EvalAUC(s.det, cls, s.env.Scale.Seed+999)
}

// KGStats summarises the current knowledge graph.
type KGStats struct {
	Mission       string
	Depth         int
	Nodes, Edges  int
	CreatedNodes  int
	NodesPerLevel []int
}

// KG returns the current graph's statistics.
func (s *System) KG() (KGStats, error) {
	if s.graph == nil {
		return KGStats{}, fmt.Errorf("edgekg: Train first")
	}
	st := s.graph.ComputeStats()
	return KGStats{
		Mission:       st.Mission,
		Depth:         st.Depth,
		Nodes:         st.Nodes,
		Edges:         st.Edges,
		CreatedNodes:  st.CreatedNodes,
		NodesPerLevel: st.NodesPerLevel,
	}, nil
}

// KGDOT renders the current KG in Graphviz dot format.
func (s *System) KGDOT() (string, error) {
	if s.graph == nil {
		return "", fmt.Errorf("edgekg: Train first")
	}
	return s.graph.DOT(), nil
}

// NodeInterpretation is one reasoning node decoded through Interpretable
// KG Retrieval.
type NodeInterpretation struct {
	NodeID  int
	Level   int
	Concept string
	// Decoded is the current top-1 retrieval of the node's learned token
	// embeddings — equal to Concept before adaptation, drifting after.
	Decoded string
	// Created marks nodes inserted by the adaptation loop.
	Created bool
}

// InterpretKG decodes every reasoning node's learned token embeddings
// back to vocabulary words (Sec. III-E).
func (s *System) InterpretKG() ([]NodeInterpretation, error) {
	if s.det == nil {
		return nil, fmt.Errorf("edgekg: Train first")
	}
	bank := s.det.GNN(0).Tokens()
	var out []NodeInterpretation
	for _, n := range s.graph.Nodes() {
		if n.Kind != kg.Reasoning {
			continue
		}
		out = append(out, NodeInterpretation{
			NodeID:  int(n.ID),
			Level:   n.Level,
			Concept: n.Concept,
			Decoded: s.retr.NodePhrase(bank.Bank(n.ID).Data, retrieval.Euclidean),
			Created: n.Created,
		})
	}
	return out, nil
}

// DeploymentStats summarises the edge runtime so far.
type DeploymentStats struct {
	Frames          int
	AdaptRounds     int
	TriggeredRounds int
	PrunedNodes     int
	CreatedNodes    int
	ScoringFLOPs    int64
	AdaptFLOPs      int64
	EnergyPerAdaptJ float64
	// ResidentBytes is the memory charged to this deployment by the
	// serving ledger (zero for the single-stream edge runtime, and zero
	// while a stream's state is spilled); Evictions counts the stream's
	// spill round-trips under a memory budget.
	ResidentBytes int64
	Evictions     int
	// LastErr is the stream's most recent retained error (a failed
	// background eviction or rehydration has no per-frame result to
	// surface on, so it lands here); empty when everything succeeded.
	LastErr string
}

// Stats returns the deployment statistics (zero value before deployment).
func (s *System) Stats() DeploymentStats {
	if s.runtime == nil {
		return DeploymentStats{}
	}
	st := s.runtime.Stats()
	return DeploymentStats{
		Frames:          st.Frames,
		AdaptRounds:     st.AdaptRounds,
		TriggeredRounds: st.TriggeredRounds,
		PrunedNodes:     st.PrunedNodes,
		CreatedNodes:    st.CreatedNodes,
		ScoringFLOPs:    st.ScoringOps,
		AdaptFLOPs:      st.AdaptOps,
		EnergyPerAdaptJ: st.EnergyPerAdaptJ,
	}
}

// ServeOptions configures a multi-camera serving deployment.
type ServeOptions struct {
	// Streams is the camera count (≥1).
	Streams int
	// Adaptive enables continuous KG adaptation per stream; each stream
	// adapts its own KG copy while the trained backbone stays frozen and
	// shared.
	Adaptive bool
	// AdaptEveryFrames overrides the per-stream adaptation cadence
	// when > 0.
	AdaptEveryFrames int
	// AdaptLagFrames is how many frames a stream keeps scoring on its
	// previous KG while an adaptation round runs in the background
	// (snapshot/swap). 0 runs rounds synchronously at the trigger frame.
	AdaptLagFrames int
	// ScoreHistory keeps each stream's most recent scores for dashboards.
	ScoreHistory int
	// Seeds optionally fixes each stream's adaptation seed.
	Seeds []int64
	// EagerClone deep-copies each stream's graphs and token banks at
	// deployment instead of the default lazy copy-on-write sharing with
	// the frozen backbone. Scoring is bit-identical either way; eager
	// cloning is the reference arm of the memory benchmarks.
	EagerClone bool
	// MemBudgetBytes caps the process's charged per-stream resident
	// bytes: past the budget, idle streams are spilled to SpillDir and
	// rehydrated bit-exactly on their next frame. 0 disables the budget.
	MemBudgetBytes int64
	// SpillDir is where evicted streams checkpoint their state (required
	// with MemBudgetBytes > 0).
	SpillDir string
	// Precision selects each stream's scoring width: "" or "auto" defers
	// to EDGEKG_PRECISION (default f64, bit-exact), "f64" forces the
	// double-precision path, "f32" routes scoring through the
	// reduced-precision engine and stores the monitor's retained frames
	// at float32 (roughly half the per-stream resident bytes).
	Precision string
}

// StreamServer is a running multi-camera deployment: one process, one
// shared frozen backbone, one adaptation context per camera. Drive each
// stream from its own goroutine with ProcessFrame; Close when done.
type StreamServer struct {
	sys *System
	srv *serve.Server
}

// Serve deploys the trained detector as a multi-camera serving runtime.
// The system's detector becomes the shared frozen backbone (the
// single-stream Deploy* runtimes and Serve are mutually exclusive uses of
// one System).
func (s *System) Serve(opts ServeOptions) (*StreamServer, error) {
	if s.det == nil {
		return nil, fmt.Errorf("edgekg: Train before serving")
	}
	if opts.Streams < 1 {
		return nil, fmt.Errorf("edgekg: stream count %d must be ≥1", opts.Streams)
	}
	sc := s.env.Scale
	cfg := serve.DefaultConfig()
	cfg.Stream.MonitorN = sc.MonitorN
	cfg.Stream.MonitorLag = sc.MonitorLag
	cfg.Stream.Adapt = sc.Adapt
	cfg.Stream.AdaptEveryFrames = sc.AdaptEvery
	if !opts.Adaptive {
		cfg.Stream.AdaptEveryFrames = 0
	} else if opts.AdaptEveryFrames > 0 {
		cfg.Stream.AdaptEveryFrames = opts.AdaptEveryFrames
	}
	cfg.Stream.AdaptLagFrames = opts.AdaptLagFrames
	cfg.Stream.ScoreHistory = opts.ScoreHistory
	cfg.Stream.EagerClone = opts.EagerClone
	prec, err := core.ParsePrecision(opts.Precision)
	if err != nil {
		return nil, fmt.Errorf("edgekg: %w", err)
	}
	cfg.Stream.Precision = prec
	cfg.Seeds = opts.Seeds
	cfg.BaseSeed = sc.Seed + 100
	cfg.MemBudgetBytes = opts.MemBudgetBytes
	cfg.SpillDir = opts.SpillDir
	srv, err := serve.NewServer(s.det, opts.Streams, cfg)
	if err != nil {
		return nil, err
	}
	return &StreamServer{sys: s, srv: srv}, nil
}

// NumStreams returns the camera count.
func (ss *StreamServer) NumStreams() int { return ss.srv.NumStreams() }

// ProcessFrame scores one raw frame on the given stream, blocking until
// the result is available. Each stream must be driven by one goroutine
// (its camera); different streams are scored concurrently, and a stream's
// adaptation rounds overlap its scoring per the configured lag.
func (ss *StreamServer) ProcessFrame(stream int, frame []float64) (FrameResult, error) {
	if len(frame) != ss.sys.FrameSize() {
		return FrameResult{}, fmt.Errorf("edgekg: frame length %d, want %d", len(frame), ss.sys.FrameSize())
	}
	pix := tensor.FromSlice(append([]float64(nil), frame...), len(frame))
	if err := ss.srv.Submit(stream, pix); err != nil {
		return FrameResult{}, err
	}
	results, err := ss.srv.Results(stream)
	if err != nil {
		return FrameResult{}, err
	}
	res, ok := <-results
	if !ok {
		return FrameResult{}, fmt.Errorf("edgekg: stream %d closed", stream)
	}
	// Scoring itself cannot fail; a non-nil error reports an adaptation
	// round's failure, so the frame's score is still valid and returned
	// alongside it (the frame was scored and entered the monitor — do not
	// resubmit it).
	return FrameResult{
		Score:        res.Score,
		Adapted:      res.Adapt.Triggered,
		PrunedNodes:  len(res.Adapt.Pruned),
		CreatedNodes: len(res.Adapt.Created),
	}, res.Err
}

// Stats returns one stream's deployment statistics. Safe to call from any
// goroutine; on a live stream it synchronises with the stream's loop.
func (ss *StreamServer) Stats(stream int) (DeploymentStats, error) {
	st, err := ss.srv.StreamStats(stream)
	if err != nil {
		return DeploymentStats{}, err
	}
	return DeploymentStats{
		Frames:          st.Frames,
		AdaptRounds:     st.AdaptRounds,
		TriggeredRounds: st.TriggeredRounds,
		PrunedNodes:     st.PrunedNodes,
		CreatedNodes:    st.CreatedNodes,
		ScoringFLOPs:    st.ScoringOps,
		AdaptFLOPs:      st.AdaptOps,
		EnergyPerAdaptJ: st.EnergyPerAdaptJ,
		ResidentBytes:   st.ResidentBytes,
		Evictions:       st.Evictions,
		LastErr:         st.LastErr,
	}, nil
}

// MemStats reports the serving process's charged resident bytes and the
// configured budget (0 when unbudgeted).
func (ss *StreamServer) MemStats() (resident, budget int64) {
	l := ss.srv.MemLedger()
	return l.Total(), l.Budget()
}

// RecentScores returns a copy of the stream's retained score history
// (requires ServeOptions.ScoreHistory > 0).
func (ss *StreamServer) RecentScores(stream int) ([]float64, error) {
	var scores []float64
	err := ss.srv.Do(stream, func(st *serve.Stream) { scores = st.Scores() })
	return scores, err
}

// TestAUC evaluates one stream's adapted detector against freshly
// synthesised test videos of the given class, returning frame-level
// ROC-AUC. The evaluation runs on the stream's loop (its scoring pauses;
// other streams are unaffected).
func (ss *StreamServer) TestAUC(stream int, class string) (float64, error) {
	cls, ok := concept.ClassByName(class)
	if !ok || cls == concept.Normal {
		return 0, fmt.Errorf("edgekg: unknown anomaly class %q", class)
	}
	var auc float64
	var evalErr error
	err := ss.srv.Do(stream, func(st *serve.Stream) {
		auc, evalErr = ss.sys.env.EvalAUC(st.Detector(), cls, ss.sys.env.Scale.Seed+999)
	})
	if err != nil {
		return 0, err
	}
	return auc, evalErr
}

// SaveCheckpoint persists every stream's complete adaptation state to a
// file (atomic temp-then-rename write). Safe on a live server: each
// stream is captured between frames on its own processing loop, and an
// in-flight background adaptation round keeps its frame-deterministic
// swap schedule through the round trip.
func (ss *StreamServer) SaveCheckpoint(path string) error {
	cp, err := ss.srv.Checkpoint()
	if err != nil {
		return err
	}
	return snapshot.Save(path, cp)
}

// LoadCheckpoint restores a checkpoint taken by SaveCheckpoint into this
// server and returns each stream's restored frame count — the index the
// camera should continue feeding from. The server must have been built by
// the same System configuration (same training seed and ServeOptions) —
// the backbone is rebuilt deterministically from the seed; only the
// per-stream adaptation deltas are restored. Restore before submitting
// frames.
//
// Use the returned counts rather than probing Stats: a checkpoint can
// carry an adaptation round that was in flight at snapshot time, and a
// Stats barrier would join it early — moving its swap off the recorded
// frame and perturbing the resumed trajectory. The returned counts come
// from the checkpoint itself and leave the swap schedule untouched.
func (ss *StreamServer) LoadCheckpoint(path string) ([]int, error) {
	cp, err := snapshot.Load(path)
	if err != nil {
		return nil, err
	}
	if err := ss.srv.Restore(cp); err != nil {
		return nil, err
	}
	frames := make([]int, len(cp.Streams))
	for i := range cp.Streams {
		frames[i] = cp.Streams[i].Frames
	}
	return frames, nil
}

// CloseStream ends one stream's input; its loop drains and its final
// statistics remain readable.
func (ss *StreamServer) CloseStream(stream int) { ss.srv.CloseStream(stream) }

// Close shuts the server down: all streams closed and drained. Stats,
// RecentScores and TestAUC remain usable afterwards (they run inline on
// the drained streams); ProcessFrame does not.
func (ss *StreamServer) Close() { ss.srv.Shutdown() }

// NetServeOptions configures the networked serving tier in front of a
// StreamServer (see internal/netserve for the API surface).
type NetServeOptions struct {
	// MaxPending bounds the frame submits queued per stream slot, the one
	// being scored included; beyond it the worker sheds with HTTP 429.
	// Defaults to 8.
	MaxPending int
	// BarrierTimeout bounds how long observer endpoints (stats, scores,
	// export) wait for a busy stream's loop before answering 503.
	// Defaults to 10s.
	BarrierTimeout time.Duration
	// CheckpointPath, when set, is where POST /v1/checkpoint writes the
	// full-deployment checkpoint.
	CheckpointPath string
	// Ready, when set, receives the bound listen address (useful with
	// ":0") just before the server starts accepting.
	Ready func(addr string)
}

// ErrKilled reports that a worker's serving loop ended because a client
// POSTed /v1/die: an abrupt stop — in-flight connections severed, no
// drain — simulating a crash for failover tests and drills. The process
// state is intact; the caller still owns Close.
var ErrKilled = errors.New("edgekg: worker killed by request (abrupt stop, no drain)")

// NetListen exposes the deployment's HTTP/JSON serving API on addr: frame
// submit, per-stream stats and scores, memory report, checkpoint and
// evict triggers, and single-stream state export/restore — the unit of
// checkpoint-based migration between worker processes. It blocks until a
// client POSTs /v1/shutdown (in-flight requests finish), then returns;
// a POST /v1/die instead stops abruptly and returns ErrKilled. The
// caller still owns Close. The deployment stays drivable locally
// through ProcessFrame for slots the network side does not use, but one
// slot must have a single driver — network or local, not both.
func (ss *StreamServer) NetListen(addr string, opts NetServeOptions) error {
	h, err := netserve.NewHandler(ss.srv, netserve.Options{
		FrameSize:      ss.sys.FrameSize(),
		MaxPending:     opts.MaxPending,
		BarrierTimeout: opts.BarrierTimeout,
		CheckpointPath: opts.CheckpointPath,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("edgekg: listen %s: %w", addr, err)
	}
	if opts.Ready != nil {
		opts.Ready(ln.Addr().String())
	}
	hs := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-h.ShutdownRequested():
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
		}
		<-errc // always http.ErrServerClosed after Shutdown/Close
		return nil
	case <-h.KillRequested():
		hs.Close() // sever in-flight connections: a crash, not a drain
		<-errc
		return ErrKilled
	case err := <-errc:
		return fmt.Errorf("edgekg: serving %s: %w", addr, err)
	}
}

// GenerateKGOnly runs mission-specific KG generation without training and
// returns the graph's JSON — what cmd/kggen prints.
func GenerateKGOnly(mission string, seed int64) ([]byte, error) {
	cls, ok := concept.ClassByName(mission)
	if !ok || cls == concept.Normal {
		return nil, fmt.Errorf("edgekg: unknown mission %q", mission)
	}
	env, err := experiments.NewEnv(experiments.QuickScale())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g, _, err := kggen.Generate(env.NewLLM(seed), mission, env.GenOptions(), rng)
	if err != nil {
		return nil, err
	}
	return g.MarshalJSON()
}

// StreamClass returns frames drawn from the dataset stream abstraction —
// convenience for demos needing a labelled mixed stream.
type StreamClass struct {
	Frame     []float64
	Anomalous bool
	Class     string
}

// NextStreamFrames synthesises n frames mixing Normal background with the
// given anomaly class at the given rate, drawing from the System's master
// RNG (successive calls continue the stream).
func (s *System) NextStreamFrames(class string, n int, anomalyRate float64) ([]StreamClass, error) {
	return s.nextStreamFrames(class, n, anomalyRate, s.rng)
}

// NextStreamFramesSeeded is NextStreamFrames with a dedicated seed instead
// of the master RNG: the result is a pure function of (class, n, rate,
// seed), and a longer schedule from the same seed extends a shorter one
// frame-for-frame. Warm restarts rely on this — a resumed process can
// re-synthesise a camera's schedule to a larger frame target and the
// prefix still matches what the checkpointed run served.
func (s *System) NextStreamFramesSeeded(class string, n int, anomalyRate float64, seed int64) ([]StreamClass, error) {
	return s.nextStreamFrames(class, n, anomalyRate, rand.New(rand.NewSource(seed)))
}

func (s *System) nextStreamFrames(class string, n int, anomalyRate float64, rng *rand.Rand) ([]StreamClass, error) {
	cls, ok := concept.ClassByName(class)
	if !ok {
		return nil, fmt.Errorf("edgekg: unknown class %q", class)
	}
	sched := dataset.Schedule{Phases: []dataset.Phase{{Class: cls, Steps: n}}}
	stream, err := dataset.NewStream(s.env.Gen, sched, anomalyRate, rng)
	if err != nil {
		return nil, err
	}
	out := make([]StreamClass, n)
	for i := range out {
		pix, anom, c := stream.Next()
		frame := make([]float64, pix.Size())
		copy(frame, pix.Data())
		out[i] = StreamClass{Frame: frame, Anomalous: anom, Class: c.String()}
	}
	return out, nil
}
