module edgekg

go 1.24
