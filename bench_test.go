package edgekg

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (run with `go test -bench=. -benchmem`):
//
//	BenchmarkFigure5WeakShiftStealRob  — Fig. 5(A), Stealing→Robbery
//	BenchmarkFigure5WeakShiftRobSteal  — Fig. 5(A), Robbery→Stealing
//	BenchmarkFigure5StrongShift        — Fig. 5(B), Stealing→Explosion
//	BenchmarkFigure6Retrieval          — Fig. 6, token-embedding trajectory
//	BenchmarkTableI                    — Table I, edge vs. cloud costs
//
// Each experiment bench prints its rendered table once (the same
// rows/series the paper reports) and then times repeat runs. The micro
// benches cover the hot paths of the pipeline and the ablation questions
// DESIGN.md lists.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/experiments"
	"edgekg/internal/flops"
	"edgekg/internal/kggen"
	"edgekg/internal/metrics"
	"edgekg/internal/retrieval"
	"edgekg/internal/tensor"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

func getBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		s := experiments.QuickScale()
		benchEnv, benchEnvErr = experiments.NewEnv(s)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

var printOnce sync.Map

// printRendered prints an experiment's rendered artifact exactly once per
// process so `go test -bench=.` output contains the regenerated tables.
func printRendered(key, rendered string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", rendered)
	}
}

func benchFig5(b *testing.B, key string, initial, shifted concept.Class) {
	env := getBenchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(env, initial, shifted)
		if err != nil {
			b.Fatal(err)
		}
		printRendered(key, res.Render())
		b.ReportMetric(res.PostShiftGain(), "AUCgain")
		b.ReportMetric(res.FinalRecovery(), "AUCfinal")
	}
}

func BenchmarkFigure5WeakShiftStealRob(b *testing.B) {
	benchFig5(b, "fig5a1", concept.Stealing, concept.Robbery)
}

func BenchmarkFigure5WeakShiftRobSteal(b *testing.B) {
	benchFig5(b, "fig5a2", concept.Robbery, concept.Stealing)
}

func BenchmarkFigure5StrongShift(b *testing.B) {
	benchFig5(b, "fig5b", concept.Stealing, concept.Explosion)
}

func BenchmarkFigure6Retrieval(b *testing.B) {
	env := getBenchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(env, "sneaky", "firearm")
		if err != nil {
			b.Fatal(err)
		}
		printRendered("fig6", res.Render())
		b.ReportMetric(res.Trajectory.NetDrift(), "drift")
	}
}

func BenchmarkTableI(b *testing.B) {
	env := getBenchEnv(b)
	cfg := experiments.DefaultTableIConfig()
	cfg.Days = 12 // linear cost scaling; keep the bench minutes-free
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableI(env, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printRendered("table1", res.Render())
		b.ReportMetric(res.BaselineAUC, "AUCbase")
		b.ReportMetric(res.ProposedAUC, "AUCprop")
		b.ReportMetric(float64(res.EdgeOpsPerDay), "FLOPs/day")
	}
}

// --- micro benches: pipeline hot paths ---

func benchFixture(b *testing.B) (*core.Detector, *dataset.Generator, *experiments.Env) {
	b.Helper()
	env := getBenchEnv(b)
	det, _, err := env.BuildTrainedDetector(concept.Stealing, 1001)
	if err != nil {
		b.Fatal(err)
	}
	return det, env.Gen, env
}

func BenchmarkGNNForward(b *testing.B) {
	det, gen, env := benchFixture(b)
	det.SetTraining(false)
	rng := rand.New(rand.NewSource(1))
	frames := tensor.New(8, env.Space.PixDim())
	for i := 0; i < 8; i++ {
		copy(frames.Row(i), gen.Frame(rng, concept.Stealing).Data())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.EmbedFrames(frames)
	}
}

func BenchmarkScoreFrame(b *testing.B) {
	det, gen, env := benchFixture(b)
	rng := rand.New(rand.NewSource(2))
	frame := gen.Frame(rng, concept.Robbery).Reshape(1, env.Space.PixDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.ScoreVideo(frame)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	env := getBenchEnv(b)
	det, _, err := env.BuildTrainedDetector(concept.Stealing, 1002)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	vids := env.Gen.TaskVideos(rng, concept.Stealing, 3, 3)
	src, err := dataset.NewClipSource(vids, det.Window(), 8)
	if err != nil {
		b.Fatal(err)
	}
	src = src.WithLabelMap(dataset.BinaryLabelMap)
	cfg := core.DefaultTrainConfig()
	tr := core.NewTrainer(det, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(rng, src)
	}
}

// BenchmarkTrainStepMicrobatch times the 4-clip data-parallel step (one
// optimisation step, four clip gradients computed on shard tapes and
// tree-reduced) against BenchmarkTrainStepSeqAccum, its
// sequential-accumulation reference with identical semantics.
func BenchmarkTrainStepMicrobatch(b *testing.B) {
	benchMicrobatchStep(b, func(tr *core.Trainer, rng *rand.Rand, src core.ClipSource) {
		tr.Step(rng, src)
	})
}

// BenchmarkTrainStepSeqAccum is the K-clip sequential-accumulation
// baseline for BenchmarkTrainStepMicrobatch.
func BenchmarkTrainStepSeqAccum(b *testing.B) {
	benchMicrobatchStep(b, func(tr *core.Trainer, rng *rand.Rand, src core.ClipSource) {
		tr.StepSequential(rng, src)
	})
}

func benchMicrobatchStep(b *testing.B, step func(*core.Trainer, *rand.Rand, core.ClipSource)) {
	env := getBenchEnv(b)
	det, _, err := env.BuildTrainedDetector(concept.Stealing, 1002)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	vids := env.Gen.TaskVideos(rng, concept.Stealing, 3, 3)
	src, err := dataset.NewClipSource(vids, det.Window(), 8)
	if err != nil {
		b.Fatal(err)
	}
	bsrc := src.WithLabelMap(dataset.BinaryLabelMap)
	cfg := core.DefaultTrainConfig()
	cfg.Microbatch = 4
	tr := core.NewTrainer(det, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(tr, rng, bsrc)
	}
}

func BenchmarkAdaptationStep(b *testing.B) {
	det, gen, env := benchFixture(b)
	rng := rand.New(rand.NewSource(4))
	adapter, err := core.NewAdapter(det, core.DefaultAdaptConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	mon, err := core.NewMonitor(32, 16)
	if err != nil {
		b.Fatal(err)
	}
	// Prime with a mean drop so every Step is a triggered round.
	for i := 0; i < 32; i++ {
		mon.Push(gen.Frame(rng, concept.Stealing).Reshape(1, env.Space.PixDim()), 0.9)
	}
	for i := 0; i < 32; i++ {
		mon.Push(gen.Frame(rng, concept.Robbery).Reshape(1, env.Space.PixDim()), 0.2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adapter.Step(mon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKGGeneration(b *testing.B) {
	env := getBenchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, _, err := kggen.Generate(env.NewLLM(int64(i)), "Robbery", env.GenOptions(), rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTokenizerEncode(b *testing.B) {
	tok := bpe.Train(concept.Builtin().Concepts(), 800)
	phrases := []string{"stealing", "sneaky firearm", "explosion debris", "muzzle-flash"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Encode(phrases[i%len(phrases)])
	}
}

func BenchmarkRetrievalNearest(b *testing.B) {
	env := getBenchEnv(b)
	retr := retrieval.New(env.Space)
	emb := env.Space.TextEncode("firearm")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		retr.Nearest(emb, 5, retrieval.Euclidean)
	}
}

func BenchmarkAUCComputation(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 4096
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < 0.3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.AUC(scores, labels); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameSynthesis(b *testing.B) {
	env := getBenchEnv(b)
	rng := rand.New(rand.NewSource(6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.Gen.Frame(rng, concept.Explosion)
	}
}

func BenchmarkImageEncode(b *testing.B) {
	env := getBenchEnv(b)
	rng := rand.New(rand.NewSource(7))
	pix := env.Gen.Frame(rng, concept.Normal)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Space.EncodeImage(pix)
	}
}

// --- ablation benches (design choices DESIGN.md calls out) ---

// BenchmarkAblationRetrievalMetrics compares the three retrieval metrics
// the paper tested (Euclidean won).
func BenchmarkAblationRetrievalMetrics(b *testing.B) {
	env := getBenchEnv(b)
	retr := retrieval.New(env.Space)
	emb := env.Space.TextEncode("gun")
	for _, m := range []retrieval.Metric{retrieval.Euclidean, retrieval.Cosine, retrieval.Dot} {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				retr.Nearest(emb, 5, m)
			}
		})
	}
}

// BenchmarkAblationBatchedGNN measures the block-diagonal batching win of
// the GNN forward versus frame-at-a-time execution.
func BenchmarkAblationBatchedGNN(b *testing.B) {
	det, gen, env := benchFixture(b)
	det.SetTraining(false)
	rng := rand.New(rand.NewSource(8))
	const n = 16
	frames := tensor.New(n, env.Space.PixDim())
	for i := 0; i < n; i++ {
		copy(frames.Row(i), gen.Frame(rng, concept.Normal).Data())
	}
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det.EmbedFrames(frames)
		}
	})
	b.Run("frame-at-a-time", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := 0; k < n; k++ {
				det.EmbedFrames(tensor.SliceRows(frames, k, k+1))
			}
		}
	})
}

// BenchmarkAblationAdaptationFLOPs reports the measured FLOPs of one
// adaptation round vs. one frame scoring — the asymmetry Table I's edge
// budget rests on.
func BenchmarkAblationAdaptationFLOPs(b *testing.B) {
	det, gen, env := benchFixture(b)
	rng := rand.New(rand.NewSource(9))
	adapter, err := core.NewAdapter(det, core.DefaultAdaptConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	mon, _ := core.NewMonitor(16, 8)
	for i := 0; i < 16; i++ {
		mon.Push(gen.Frame(rng, concept.Stealing).Reshape(1, env.Space.PixDim()), 0.9)
	}
	for i := 0; i < 16; i++ {
		mon.Push(gen.Frame(rng, concept.Robbery).Reshape(1, env.Space.PixDim()), 0.2)
	}
	frame := gen.Frame(rng, concept.Normal).Reshape(1, env.Space.PixDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var scoreOps, adaptOps int64
		scoreOps, _ = countOps(func() { det.ScoreVideo(frame) })
		adaptOps, _ = countOps(func() {
			if _, err := adapter.Step(mon); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(float64(scoreOps), "scoreFLOPs")
		b.ReportMetric(float64(adaptOps), "adaptFLOPs")
	}
}

// BenchmarkAblationGNNWidth sweeps the GNN width (the paper fixes 8).
func BenchmarkAblationGNNWidth(b *testing.B) {
	for _, width := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("width%d", width), func(b *testing.B) {
			s := experiments.QuickScale()
			s.GNNWidth = width
			s.TrainSteps = 1
			env, err := experiments.NewEnv(s)
			if err != nil {
				b.Fatal(err)
			}
			det, _, err := env.BuildTrainedDetector(concept.Stealing, 2001)
			if err != nil {
				b.Fatal(err)
			}
			det.SetTraining(false)
			rng := rand.New(rand.NewSource(10))
			frames := tensor.New(8, env.Space.PixDim())
			for i := 0; i < 8; i++ {
				copy(frames.Row(i), env.Gen.Frame(rng, concept.Stealing).Data())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.EmbedFrames(frames)
			}
		})
	}
}

func countOps(fn func()) (int64, int64) {
	return flops.Count(fn)
}
