// Package experiments reproduces the paper's evaluation section: the
// anomaly-trend-shift adaptation curves of Fig. 5 (weak and strong
// shifts), the interpretable-retrieval trajectory of Fig. 6, and the
// edge-vs-cloud cost comparison of Table I. Each experiment has a Run
// function returning a structured result and a Render function producing
// the text artifact; cmd/benchall and the root bench suite drive them.
package experiments

import (
	"fmt"
	"math/rand"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/decision"
	"edgekg/internal/embed"
	"edgekg/internal/gnn"
	"edgekg/internal/kg"
	"edgekg/internal/kggen"
	"edgekg/internal/oracle"
	"edgekg/internal/temporal"
)

// Scale sizes an experiment run. Quick targets seconds per experiment for
// tests and CI; Full is the configuration EXPERIMENTS.md reports.
type Scale struct {
	// Joint space.
	Dim, PixDim int
	// Dataset.
	FramesPerVideo            int
	EvalNormals, EvalAnomlous int
	// KG generation.
	KGDepth, InitialFanout, Fanout int
	// Model.
	GNNWidth, TemporalInner, TemporalHeads, Window int
	// Training. TrainMicrobatch is the clips-per-step K of the
	// data-parallel trainer (≤1 keeps the paper's one-clip steps).
	TrainSteps, TrainBatch      int
	TrainMicrobatch             int
	TrainNormals, TrainAnomlous int
	// Deployment stream: frames per continuous-learning segment and the
	// adaptation cadence.
	SegmentFrames, AdaptEvery int
	MonitorN, MonitorLag      int
	StreamAnomalyRate         float64
	// Adaptation.
	Adapt core.AdaptConfig
	Seed  int64
}

// QuickScale runs each experiment in a few seconds.
func QuickScale() Scale {
	a := core.DefaultAdaptConfig()
	a.Patience = 4
	return Scale{
		Dim: 16, PixDim: 32,
		FramesPerVideo: 24, EvalNormals: 4, EvalAnomlous: 4,
		KGDepth: 2, InitialFanout: 5, Fanout: 4,
		GNNWidth: 8, TemporalInner: 16, TemporalHeads: 2, Window: 4,
		TrainSteps: 300, TrainBatch: 8,
		TrainNormals: 4, TrainAnomlous: 4,
		SegmentFrames: 256, AdaptEvery: 32,
		MonitorN: 32, MonitorLag: 16,
		StreamAnomalyRate: 0.5,
		Adapt:             a,
		Seed:              42,
	}
}

// FullScale is the EXPERIMENTS.md configuration: paper-shaped model sizes
// (GNN width 8, temporal inner 128 with 8 heads, window 8) over a larger
// synthetic corpus.
func FullScale() Scale {
	s := QuickScale()
	s.Dim, s.PixDim = 32, 96
	s.FramesPerVideo = 48
	s.EvalNormals, s.EvalAnomlous = 10, 10
	s.KGDepth, s.InitialFanout, s.Fanout = 3, 6, 5
	s.TemporalInner, s.TemporalHeads, s.Window = 128, 8, 8
	s.TrainSteps, s.TrainBatch = 800, 16
	s.TrainNormals, s.TrainAnomlous = 8, 8
	s.SegmentFrames, s.AdaptEvery = 512, 64
	s.MonitorN, s.MonitorLag = 64, 32
	return s
}

// Env bundles the substrate every experiment shares: the ontology, the
// tokenizer, the joint space, the dataset generator and the simulated LLM.
type Env struct {
	Scale Scale
	Ont   *concept.Ontology
	Tok   *bpe.Tokenizer
	Space *embed.Space
	Gen   *dataset.Generator
}

// NewEnv constructs the shared substrate for a scale.
func NewEnv(s Scale) (*Env, error) {
	ont := concept.Builtin()
	tok := bpe.Train(ont.Concepts(), 800)
	space, err := embed.NewSpace(tok, ont.Concepts(), embed.Config{Dim: s.Dim, PixDim: s.PixDim, Seed: s.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: space: %w", err)
	}
	dcfg := dataset.DefaultConfig()
	dcfg.FramesPerVideo = s.FramesPerVideo
	gen, err := dataset.NewGenerator(space, ont, dcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: generator: %w", err)
	}
	return &Env{Scale: s, Ont: ont, Tok: tok, Space: space, Gen: gen}, nil
}

// NewLLM returns a fresh deterministic simulated LLM seeded from the
// environment seed plus salt.
func (e *Env) NewLLM(salt int64) oracle.LLM {
	return oracle.NewSim(e.Ont, rand.New(rand.NewSource(e.Scale.Seed^salt)), oracle.Config{EdgeProb: 0.9})
}

// GenOptions returns the KG generation options at this scale.
func (e *Env) GenOptions() kggen.Options {
	return kggen.Options{
		Depth:              e.Scale.KGDepth,
		InitialFanout:      e.Scale.InitialFanout,
		Fanout:             e.Scale.Fanout,
		MaxCorrectionIters: 4,
		Tokenize:           e.Tok.Encode,
	}
}

// DetectorConfig returns the model configuration at this scale (binary
// decision head: normal vs. target anomaly, the Fig. 5 protocol).
func (e *Env) DetectorConfig() core.Config {
	return core.Config{
		GNN: gnn.Config{Width: e.Scale.GNNWidth},
		Temporal: temporal.Config{
			InnerDim: e.Scale.TemporalInner,
			Heads:    e.Scale.TemporalHeads,
			Layers:   1,
			Window:   e.Scale.Window,
		},
		NumClasses:       2,
		Loss:             decision.DefaultLossConfig(),
		ScoreTemperature: 4,
	}
}

// TrainConfig returns the training regime at this scale.
func (e *Env) TrainConfig() core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.Steps = e.Scale.TrainSteps
	cfg.Microbatch = e.Scale.TrainMicrobatch
	return cfg
}

// BuildTrainedDetector generates the mission KG, assembles a detector and
// trains it on synthesised task data — the full Fig. 2(A)+(B) pipeline.
// Identical seeds produce bitwise-identical detectors, which is how the
// adaptive and static arms of Fig. 5 start from the same model.
func (e *Env) BuildTrainedDetector(mission concept.Class, seed int64) (*core.Detector, *kg.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	llm := e.NewLLM(seed)
	g, _, err := kggen.Generate(llm, mission.String(), e.GenOptions(), rng)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: KG generation: %w", err)
	}
	det, err := core.NewDetector(rng, e.Space, []*kg.Graph{g}, e.DetectorConfig())
	if err != nil {
		return nil, nil, err
	}
	vids := e.Gen.TaskVideos(rng, mission, e.Scale.TrainNormals, e.Scale.TrainAnomlous)
	src, err := dataset.NewClipSource(vids, det.Window(), e.Scale.TrainBatch)
	if err != nil {
		return nil, nil, err
	}
	src = src.WithLabelMap(dataset.BinaryLabelMap)
	trainer := core.NewTrainer(det, e.TrainConfig())
	trainer.Train(rng, src, nil)
	return det, g, nil
}

// EvalAUC measures test AUC for one anomaly class on freshly synthesised
// test videos, seeded deterministically so every adaptation step is scored
// against the same test set.
func (e *Env) EvalAUC(det *core.Detector, cls concept.Class, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	vids := e.Gen.TaskVideos(rng, cls, e.Scale.EvalNormals, e.Scale.EvalAnomlous)
	frames, labels := dataset.FlattenEval(vids)
	return core.EvalAUC(det, frames, labels)
}
