package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"edgekg/internal/concept"
	"edgekg/internal/dataset"
	"edgekg/internal/edge"
)

// Fig5Point is one measurement of the continuous-learning curve.
type Fig5Point struct {
	// Step is the continuous-learning step index (one per adaptation
	// cadence tick).
	Step int
	// Phase is 0 before the anomaly shift, 1 after.
	Phase int
	// AUC is the test AUC against the current phase's anomaly class.
	AUC float64
}

// Fig5Result is one scenario's curves for both arms.
type Fig5Result struct {
	Scenario         string
	Initial, Shifted concept.Class
	// Overlap is the profile cosine between the two classes — high for
	// weak shifts, near zero for strong ones.
	Overlap float64
	// Adaptive and Static are the with/without-KG-adaptive-learning
	// curves of Fig. 5.
	Adaptive, Static []Fig5Point
	// AdaptTriggers counts triggered adaptation rounds in the adaptive
	// arm.
	AdaptTriggers int
}

// RunFig5 reproduces one panel of Fig. 5: train on the initial anomaly,
// deploy, adapt through a shift to the second anomaly, and record test
// AUC per continuous-learning step for the adaptive and static arms. Both
// arms start from bitwise-identical trained detectors (same seeds).
func RunFig5(env *Env, initial, shifted concept.Class) (Fig5Result, error) {
	res := Fig5Result{
		Scenario: fmt.Sprintf("%s→%s", initial, shifted),
		Initial:  initial,
		Shifted:  shifted,
		Overlap:  env.Ont.ClassOverlap(initial, shifted),
	}
	adaptive, triggers, err := runFig5Arm(env, initial, shifted, true)
	if err != nil {
		return res, fmt.Errorf("adaptive arm: %w", err)
	}
	static, _, err := runFig5Arm(env, initial, shifted, false)
	if err != nil {
		return res, fmt.Errorf("static arm: %w", err)
	}
	res.Adaptive = adaptive
	res.Static = static
	res.AdaptTriggers = triggers
	return res, nil
}

func runFig5Arm(env *Env, initial, shifted concept.Class, adaptive bool) ([]Fig5Point, int, error) {
	s := env.Scale
	det, _, err := env.BuildTrainedDetector(initial, s.Seed+101)
	if err != nil {
		return nil, 0, err
	}

	cfg := edge.DefaultConfig()
	cfg.MonitorN = s.MonitorN
	cfg.MonitorLag = s.MonitorLag
	cfg.Adapt = s.Adapt
	cfg.AdaptEveryFrames = s.AdaptEvery
	if !adaptive {
		cfg.AdaptEveryFrames = 0
	}
	rt, err := edge.NewRuntime(det, cfg, rand.NewSource(s.Seed+202))
	if err != nil {
		return nil, 0, err
	}

	sched := dataset.Schedule{Phases: []dataset.Phase{
		{Class: initial, Steps: s.SegmentFrames},
		{Class: shifted, Steps: s.SegmentFrames},
	}}
	stream, err := dataset.NewStream(env.Gen, sched, s.StreamAnomalyRate, rand.New(rand.NewSource(s.Seed+303)))
	if err != nil {
		return nil, 0, err
	}

	var points []Fig5Point
	triggers := 0
	total := sched.TotalSteps()
	step := 0
	for i := 0; i < total; i++ {
		phaseCls := stream.CurrentClass()
		phaseIdx := stream.PhaseIndex()
		pix, _, _ := stream.Next()
		_, rep, err := rt.ProcessFrame(pix)
		if err != nil {
			return nil, 0, err
		}
		if rep.Triggered {
			triggers++
		}
		if (i+1)%s.AdaptEvery == 0 {
			auc, err := env.EvalAUC(det, phaseCls, s.Seed+404)
			if err != nil {
				return nil, 0, err
			}
			points = append(points, Fig5Point{Step: step, Phase: phaseIdx, AUC: auc})
			step++
		}
	}
	return points, triggers, nil
}

// PostShiftGain summarises a result: mean post-shift AUC of the adaptive
// arm minus the static arm — positive when adaptation helps (the claim of
// Fig. 5).
func (r Fig5Result) PostShiftGain() float64 {
	mean := func(points []Fig5Point) float64 {
		sum, n := 0.0, 0
		for _, p := range points {
			if p.Phase == 1 {
				sum += p.AUC
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	return mean(r.Adaptive) - mean(r.Static)
}

// FinalRecovery returns the adaptive arm's mean AUC over the last third of
// the post-shift segment — how far the model recovered.
func (r Fig5Result) FinalRecovery() float64 {
	var post []Fig5Point
	for _, p := range r.Adaptive {
		if p.Phase == 1 {
			post = append(post, p)
		}
	}
	if len(post) == 0 {
		return 0
	}
	tail := post[len(post)*2/3:]
	if len(tail) == 0 {
		tail = post
	}
	sum := 0.0
	for _, p := range tail {
		sum += p.AUC
	}
	return sum / float64(len(tail))
}

// Render prints the scenario as an aligned text table matching the
// figure's series.
func (r Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — %s (profile overlap %.3f)\n", r.Scenario, r.Overlap)
	fmt.Fprintf(&b, "%-6s %-6s %-12s %-12s\n", "step", "phase", "AUC(adapt)", "AUC(static)")
	n := len(r.Adaptive)
	if len(r.Static) < n {
		n = len(r.Static)
	}
	for i := 0; i < n; i++ {
		marker := ""
		if i > 0 && r.Adaptive[i].Phase != r.Adaptive[i-1].Phase {
			marker = "  <-- anomaly shift"
		}
		fmt.Fprintf(&b, "%-6d %-6d %-12.4f %-12.4f%s\n",
			r.Adaptive[i].Step, r.Adaptive[i].Phase, r.Adaptive[i].AUC, r.Static[i].AUC, marker)
	}
	fmt.Fprintf(&b, "post-shift gain (adaptive − static): %+.4f, final recovery %.4f, triggers %d\n",
		r.PostShiftGain(), r.FinalRecovery(), r.AdaptTriggers)
	return b.String()
}

// CSV renders the curves as comma-separated values.
func (r Fig5Result) CSV() string {
	var b strings.Builder
	b.WriteString("step,phase,auc_adaptive,auc_static\n")
	n := len(r.Adaptive)
	if len(r.Static) < n {
		n = len(r.Static)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%d,%.6f,%.6f\n", r.Adaptive[i].Step, r.Adaptive[i].Phase, r.Adaptive[i].AUC, r.Static[i].AUC)
	}
	return b.String()
}
