package experiments

import (
	"strings"
	"testing"

	"edgekg/internal/concept"
	"edgekg/internal/core"
)

// testScale is even smaller than QuickScale so the whole suite stays fast.
func testScale() Scale {
	s := QuickScale()
	s.TrainSteps = 150
	s.SegmentFrames = 96
	s.AdaptEvery = 24
	s.MonitorN = 24
	s.MonitorLag = 12
	s.EvalNormals, s.EvalAnomlous = 3, 3
	return s
}

func testEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(testScale())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvConstruction(t *testing.T) {
	env := testEnv(t)
	if env.Space.Dim() != 16 || env.Space.PixDim() != 32 {
		t.Errorf("space dims %d/%d", env.Space.Dim(), env.Space.PixDim())
	}
	if env.Tok.VocabSize() == 0 {
		t.Error("empty vocab")
	}
}

func TestBuildTrainedDetectorDeterministic(t *testing.T) {
	env := testEnv(t)
	d1, g1, err := env.BuildTrainedDetector(concept.Stealing, 7)
	if err != nil {
		t.Fatal(err)
	}
	d2, g2, err := env.BuildTrainedDetector(concept.Stealing, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Error("same-seed KGs differ structurally")
	}
	// Same seed ⇒ identical weights ⇒ identical evaluation.
	a1, err := env.EvalAUC(d1, concept.Stealing, 99)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := env.EvalAUC(d2, concept.Stealing, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("same-seed detectors disagree: %v vs %v", a1, a2)
	}
	if a1 < 0.7 {
		t.Errorf("trained AUC %v too low", a1)
	}
}

func TestRunFig5WeakShiftShape(t *testing.T) {
	env := testEnv(t)
	res, err := RunFig5(env, concept.Stealing, concept.Robbery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Adaptive) == 0 || len(res.Static) == 0 {
		t.Fatal("no curve points")
	}
	if len(res.Adaptive) != len(res.Static) {
		t.Errorf("arm lengths differ: %d vs %d", len(res.Adaptive), len(res.Static))
	}
	// Both phases must be represented.
	phases := map[int]bool{}
	for _, p := range res.Adaptive {
		phases[p.Phase] = true
		if p.AUC < 0 || p.AUC > 1 {
			t.Fatalf("AUC %v out of range", p.AUC)
		}
	}
	if !phases[0] || !phases[1] {
		t.Error("curve missing a phase")
	}
	if res.Overlap <= 0.1 {
		t.Errorf("weak-shift overlap %v suspiciously low", res.Overlap)
	}
	out := res.Render()
	for _, want := range []string{"Figure 5", "Stealing→Robbery", "anomaly shift", "post-shift gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "step,phase,auc_adaptive,auc_static\n") {
		t.Error("CSV header wrong")
	}
	if strings.Count(csv, "\n") != len(res.Adaptive)+1 {
		t.Error("CSV row count wrong")
	}
}

func TestRunFig6Trajectory(t *testing.T) {
	env := testEnv(t)
	res, err := RunFig6(env, "sneaky", "firearm")
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trajectory
	if len(tr.Iterations) < 3 {
		t.Fatalf("trajectory too short: %d points", len(tr.Iterations))
	}
	if res.DecodedStart == "" {
		t.Error("no decoded start phrase")
	}
	if len(res.TopKEnd) != 5 {
		t.Errorf("top-5 has %d entries", len(res.TopKEnd))
	}
	out := res.Render()
	for _, want := range []string{"Figure 6", "sneaky", "firearm", "net drift"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if !strings.Contains(res.CSV(), "iteration,dist_initial,dist_target,top_word") {
		t.Error("CSV header wrong")
	}
}

func TestRunTableIAccounting(t *testing.T) {
	env := testEnv(t)
	cfg := DefaultTableIConfig()
	cfg.Days = 8 // keep the test fast; cost scaling is linear anyway
	res, err := RunTableI(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cloud side: 4 updates at the paper's constants.
	if res.CloudCosts.Updates != 4 {
		t.Errorf("cloud updates = %d, want 4", res.CloudCosts.Updates)
	}
	if res.CloudCosts.TotalFLOPs != 4e15 {
		t.Errorf("cloud FLOPs = %v, want 4e15", res.CloudCosts.TotalFLOPs)
	}
	if res.CloudCosts.BandwidthGB != 2 {
		t.Errorf("bandwidth = %v, want 2 GB", res.CloudCosts.BandwidthGB)
	}
	// Edge side: measured, nonzero, and orders of magnitude below cloud.
	if res.EdgeOpsPerDay <= 0 {
		t.Error("no edge adaptation ops measured")
	}
	if float64(res.EdgeOpsPerMonth) >= res.CloudCosts.TotalFLOPs/1000 {
		t.Errorf("edge monthly ops %v not ≪ cloud %v", res.EdgeOpsPerMonth, res.CloudCosts.TotalFLOPs)
	}
	// AUCs sane.
	if res.BaselineAUC < 0.5 || res.ProposedAUC < 0.5 {
		t.Errorf("AUCs too low: baseline %v proposed %v", res.BaselineAUC, res.ProposedAUC)
	}
	out := res.Render()
	for _, want := range []string{"TABLE I", "Average AUC", "FLOPs/month", "Scalability"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestScalesConstructible(t *testing.T) {
	if _, err := NewEnv(QuickScale()); err != nil {
		t.Errorf("quick scale: %v", err)
	}
	full := FullScale()
	if full.TemporalInner != 128 || full.TemporalHeads != 8 {
		t.Error("full scale should use the paper's temporal shape")
	}
}

func TestDefaultAdaptConfigSanity(t *testing.T) {
	cfg := core.DefaultAdaptConfig()
	if cfg.LR <= 0 || cfg.Patience < 1 {
		t.Error("default adapt config invalid")
	}
}
