package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"edgekg/internal/baseline"
	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/edge"
	"edgekg/internal/flops"
	"edgekg/internal/tensor"
)

// TableIConfig shapes the cost-comparison scenario: the paper assumes the
// anomaly trend alternates between Stealing and Robbery four times per
// month, the baseline regenerating its KG at every change while the
// proposed method adapts once per day on the edge.
type TableIConfig struct {
	Days            int
	UpdatesPerMonth int
	ClassA, ClassB  concept.Class
}

// DefaultTableIConfig returns the paper's scenario.
func DefaultTableIConfig() TableIConfig {
	return TableIConfig{Days: 30, UpdatesPerMonth: 4, ClassA: concept.Stealing, ClassB: concept.Robbery}
}

// TableIResult carries every row of Table I, measured where this
// implementation actually runs the work and constant where the paper
// states cloud-side figures.
type TableIResult struct {
	Cfg       TableIConfig
	Constants flops.CloudConstants
	Device    flops.DeviceProfile

	BaselineAUC float64
	ProposedAUC float64

	CloudCosts baseline.CloudCosts
	EdgeStats  edge.Stats

	EdgeOpsPerDay   int64
	EdgeOpsPerMonth int64
	EnergyPerDayJ   float64
	AdaptLatencyS   float64
}

// RunTableI simulates one month under the Table I scenario for both arms
// and assembles the comparison.
func RunTableI(env *Env, cfg TableIConfig) (TableIResult, error) {
	res := TableIResult{Cfg: cfg, Constants: flops.PaperCloudConstants(), Device: flops.JetsonClass()}
	s := env.Scale
	dayFrames := s.AdaptEvery

	// phases carry Steps in *days*; the frame stream scales by dayFrames.
	phases := buildAlternation(cfg)
	framePhases := make([]dataset.Phase, len(phases))
	for i, p := range phases {
		framePhases[i] = dataset.Phase{Class: p.Class, Steps: p.Steps * dayFrames}
	}
	// --- Proposed arm: one detector, continuous edge adaptation. ---
	det, _, err := env.BuildTrainedDetector(cfg.ClassA, s.Seed+11)
	if err != nil {
		return res, fmt.Errorf("proposed arm: %w", err)
	}
	ecfg := edge.DefaultConfig()
	ecfg.MonitorN = s.MonitorN
	ecfg.MonitorLag = s.MonitorLag
	ecfg.Adapt = s.Adapt
	ecfg.AdaptEveryFrames = dayFrames
	rt, err := edge.NewRuntime(det, ecfg, rand.NewSource(s.Seed+22))
	if err != nil {
		return res, err
	}
	stream, err := dataset.NewStream(env.Gen, dataset.Schedule{Phases: framePhases}, s.StreamAnomalyRate,
		rand.New(rand.NewSource(s.Seed+33)))
	if err != nil {
		return res, err
	}
	var propAUC float64
	for day := 0; day < cfg.Days; day++ {
		cls := stream.CurrentClass()
		for f := 0; f < dayFrames; f++ {
			pix, _, _ := stream.Next()
			if _, _, err := rt.ProcessFrame(pix); err != nil {
				return res, err
			}
		}
		auc, err := env.EvalAUC(det, cls, s.Seed+44)
		if err != nil {
			return res, err
		}
		propAUC += auc
	}
	res.ProposedAUC = propAUC / float64(cfg.Days)
	res.EdgeStats = rt.Stats()
	if rt.Stats().AdaptRounds > 0 {
		res.EdgeOpsPerDay = res.EdgeStats.AdaptOpsPerRound
	}
	res.EdgeOpsPerMonth = res.EdgeOpsPerDay * int64(cfg.Days)
	res.EnergyPerDayJ = res.Device.EnergyJoules(res.EdgeOpsPerDay)
	res.AdaptLatencyS = res.Device.LatencySeconds(res.EdgeOpsPerDay)

	// --- Baseline arm: cloud KG regeneration on every trend change. ---
	bcfg := baseline.Config{
		Gen:            env.GenOptions(),
		Detector:       env.DetectorConfig(),
		Train:          env.TrainConfig(),
		TrainNormal:    s.TrainNormals,
		TrainAnomalous: s.TrainAnomlous,
		Batch:          s.TrainBatch,
		Cloud:          res.Constants,
	}
	updater := baseline.NewCloudUpdater(env.Space, env.NewLLM(77), env.Gen, bcfg)
	brng := rand.New(rand.NewSource(s.Seed + 55))
	var bdet *core.Detector
	var baseAUC float64
	day := 0
	for pi, ph := range phases {
		// The baseline notices the shift and rebuilds in the cloud.
		bdet, err = updater.BuildFor(brng, ph.Class.String())
		if err != nil {
			return res, fmt.Errorf("baseline arm phase %d: %w", pi, err)
		}
		phaseDays := ph.Steps
		for d := 0; d < phaseDays && day < cfg.Days; d++ {
			auc, err := env.EvalAUC(bdet, ph.Class, s.Seed+44)
			if err != nil {
				return res, err
			}
			baseAUC += auc
			day++
		}
	}
	if day > 0 {
		res.BaselineAUC = baseAUC / float64(day)
	}
	res.CloudCosts = updater.Costs()
	return res, nil
}

// buildAlternation returns UpdatesPerMonth phases alternating A↔B, with
// Steps counted in days. Each phase start costs the baseline one cloud KG
// update (including the first, which refreshes the month's deployment).
func buildAlternation(cfg TableIConfig) []dataset.Phase {
	perPhaseDays := cfg.Days / cfg.UpdatesPerMonth
	var phases []dataset.Phase
	for i := 0; i < cfg.UpdatesPerMonth; i++ {
		cls := cfg.ClassA
		if i%2 == 1 {
			cls = cfg.ClassB
		}
		days := perPhaseDays
		if i == cfg.UpdatesPerMonth-1 {
			days = cfg.Days - perPhaseDays*(cfg.UpdatesPerMonth-1)
		}
		phases = append(phases, dataset.Phase{Class: cls, Steps: days})
	}
	return phases
}

// Render prints the comparison in the paper's Table I layout.
func (r TableIResult) Render() string {
	var b strings.Builder
	c := r.Constants
	row := func(metric, base, prop string) {
		fmt.Fprintf(&b, "%-58s %-28s %s\n", metric, base, prop)
	}
	b.WriteString("TABLE I — computational and performance comparison\n")
	row("Metric", "Baseline (cloud KG updates)", "Proposed (edge adaptation)")
	b.WriteString(strings.Repeat("-", 110) + "\n")
	b.WriteString("Initial setup\n")
	row("  Human intervention", "yes", "yes")
	row("  Initial KG generation time (min)", fmt.Sprintf("%.0f", c.KGGenMinutes), fmt.Sprintf("%.0f", c.KGGenMinutes))
	row("  Initial KG generation cost (FLOPs)", fmtE(c.KGGenFLOPs), fmtE(c.KGGenFLOPs))
	row("  Memory for KG (GB)", fmt.Sprintf("%.1f", c.KGMemoryGB), fmt.Sprintf("%.1f", c.KGMemoryGB))
	row("  Memory for GPT-4 during initial generation (GB)", fmt.Sprintf("%.0f", c.GPTMemoryGB), fmt.Sprintf("%.0f", c.GPTMemoryGB))
	row("  Edge device storage (GB)", fmt.Sprintf("%.0f", c.EdgeStorageGB), fmt.Sprintf("%.0f", c.EdgeStorageGB))
	b.WriteString("Monthly updates and maintenance\n")
	row("  Human intervention", "yes", "no")
	row("  KG updates (per month)", fmt.Sprintf("%d", r.CloudCosts.Updates), "0")
	row("  Total KG update time (min/month)", fmt.Sprintf("%.0f", r.CloudCosts.TotalMinutes), "0")
	row("  GPT-4 compute (FLOPs/month)", fmtE(r.CloudCosts.TotalFLOPs), "0")
	row("  Edge compute per adaptation (FLOPs/day, measured)", "n/a", fmtE(float64(r.EdgeOpsPerDay)))
	row("  Edge compute (FLOPs/month, measured)", "n/a", fmtE(float64(r.EdgeOpsPerMonth)))
	row("  Memory for GPT-4 during updates (GB)", fmt.Sprintf("%.0f", r.CloudCosts.GPTMemoryGB), "0")
	row("  Network bandwidth for KG updates (GB/month)", fmt.Sprintf("%.1f", r.CloudCosts.BandwidthGB), "0")
	row("  Edge energy per adaptation (J, device model)", "n/a", fmt.Sprintf("%.2f", r.EnergyPerDayJ))
	b.WriteString("Operational performance\n")
	row("  Average AUC score", fmt.Sprintf("%.3f", r.BaselineAUC), fmt.Sprintf("%.3f", r.ProposedAUC))
	row("  KG update latency", "high (cloud round-trip)", fmt.Sprintf("%.3fs on-device", r.AdaptLatencyS))
	row("  Scalability (edge devices supported)", "limited by cloud", "high (independent)")
	fmt.Fprintf(&b, "\n(proposed arm: %d adaptation rounds, %d triggered, %d nodes pruned/created)\n",
		r.EdgeStats.AdaptRounds, r.EdgeStats.TriggeredRounds, r.EdgeStats.PrunedNodes)
	return b.String()
}

func fmtE(v float64) string {
	if v == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2e", v)
}

func meanRowsOf(m *tensor.Tensor) *tensor.Tensor {
	return tensor.MeanAxis0(m)
}
