package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"edgekg/internal/concept"
	"edgekg/internal/dataset"
	"edgekg/internal/edge"
	"edgekg/internal/kg"
	"edgekg/internal/retrieval"
)

// Fig6Result is the interpretable-retrieval trajectory of one tracked
// node across the adaptation run (the paper tracks "Sneaky" drifting
// toward "Firearm" during a Stealing→Robbery shift).
type Fig6Result struct {
	TrackedConcept string
	TargetConcept  string
	Trajectory     retrieval.Trajectory
	// DecodedStart/End are the node's top-1 retrieved words before and
	// after adaptation.
	DecodedStart, DecodedEnd string
	// TopKEnd lists the final top-5 retrieved words, the qualitative
	// evidence Fig. 6 presents.
	TopKEnd []string
}

// RunFig6 reproduces Fig. 6: run the Stealing→Robbery adaptation protocol
// while recording the tracked node's token embedding every adaptation
// round, then decode the trajectory through Interpretable KG Retrieval.
func RunFig6(env *Env, tracked, target string) (Fig6Result, error) {
	res := Fig6Result{TrackedConcept: tracked, TargetConcept: target}
	s := env.Scale

	det, g, err := env.BuildTrainedDetector(concept.Stealing, s.Seed+101)
	if err != nil {
		return res, err
	}
	node := findNode(g, tracked)
	if node == nil {
		return res, fmt.Errorf("experiments: tracked concept %q not in generated KG (level-1 fanout too small?)", tracked)
	}

	retr := retrieval.New(env.Space)
	rec := retrieval.NewTrajectoryRecorder(retr, tracked, target)
	bank := det.GNN(0).Tokens()
	res.DecodedStart = retr.NodePhrase(bank.Bank(node.ID).Data, retrieval.Euclidean)
	rec.Record(0, bank.Bank(node.ID).Data)

	cfg := edge.DefaultConfig()
	cfg.MonitorN = s.MonitorN
	cfg.MonitorLag = s.MonitorLag
	cfg.Adapt = s.Adapt
	// Fig. 6 inspects the *alternating* phase: pruning would replace the
	// tracked node and end the trajectory, so give it effectively
	// unlimited patience.
	cfg.Adapt.Patience = 1 << 20
	cfg.AdaptEveryFrames = s.AdaptEvery
	rt, err := edge.NewRuntime(det, cfg, rand.NewSource(s.Seed+202))
	if err != nil {
		return res, err
	}
	sched := dataset.Schedule{Phases: []dataset.Phase{
		{Class: concept.Stealing, Steps: s.SegmentFrames},
		{Class: concept.Robbery, Steps: 2 * s.SegmentFrames},
	}}
	stream, err := dataset.NewStream(env.Gen, sched, s.StreamAnomalyRate, rand.New(rand.NewSource(s.Seed+303)))
	if err != nil {
		return res, err
	}
	iter := 0
	for i := 0; i < sched.TotalSteps(); i++ {
		pix, _, _ := stream.Next()
		if _, _, err := rt.ProcessFrame(pix); err != nil {
			return res, err
		}
		if (i+1)%s.AdaptEvery == 0 {
			iter += 100 // the paper numbers snapshots 100, 200, …
			rec.Record(iter, bank.Bank(node.ID).Data)
		}
	}
	res.Trajectory = rec.Trajectory()
	res.DecodedEnd = retr.NodePhrase(bank.Bank(node.ID).Data, retrieval.Euclidean)
	pooled := meanRowsOf(bank.Bank(node.ID).Data)
	for _, m := range retr.NearestWords(pooled, 5, retrieval.Euclidean) {
		res.TopKEnd = append(res.TopKEnd, m.Word)
	}
	return res, nil
}

func findNode(g *kg.Graph, conceptText string) *kg.Node {
	for _, n := range g.Nodes() {
		if n.Kind == kg.Reasoning && n.Concept == conceptText {
			return n
		}
	}
	return nil
}

// Render prints the trajectory table of Fig. 6: distance to the initial
// concept vs. distance to the target concept per snapshot, plus the
// retrieved words.
func (r Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — %q drifting toward %q under Stealing→Robbery adaptation\n",
		r.TrackedConcept, r.TargetConcept)
	fmt.Fprintf(&b, "%-10s %-14s %-14s %-16s\n", "iteration", "dist(initial)", "dist(target)", "top-1 word")
	tr := r.Trajectory
	for i := range tr.Iterations {
		fmt.Fprintf(&b, "%-10d %-14.4f %-14.4f %-16s\n",
			tr.Iterations[i], tr.DistInitial[i], tr.DistTarget[i], tr.TopWord[i])
	}
	fmt.Fprintf(&b, "decoded: start %q → end %q; final top-5: %s\n",
		r.DecodedStart, r.DecodedEnd, strings.Join(r.TopKEnd, ", "))
	fmt.Fprintf(&b, "net drift toward target: %+.4f\n", tr.NetDrift())
	return b.String()
}

// CSV renders the trajectory series.
func (r Fig6Result) CSV() string {
	var b strings.Builder
	b.WriteString("iteration,dist_initial,dist_target,top_word\n")
	tr := r.Trajectory
	for i := range tr.Iterations {
		fmt.Fprintf(&b, "%d,%.6f,%.6f,%s\n", tr.Iterations[i], tr.DistInitial[i], tr.DistTarget[i], tr.TopWord[i])
	}
	return b.String()
}
