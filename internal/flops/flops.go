// Package flops provides floating-point-operation, byte-traffic, energy and
// latency accounting for the edge/cloud cost comparison of Table I.
//
// The package is a leaf dependency: internal/tensor reports operation counts
// here, and internal/edge and internal/baseline read ledgers out to build
// the cost tables. Counting is active only while a Counter is installed via
// SetActive, so the steady-state overhead of an idle counter is one atomic
// pointer load per tensor op.
//
// Counter is internally sharded across cache-line-padded cells: the tensor
// kernels run on the internal/parallel worker pool, and a single shared
// atomic would serialise every concurrent kernel on the accounting line.
// Each report picks a shard with a per-goroutine cheap random source
// (math/rand/v2's global functions lock-free fast path), so concurrent
// writers spread across lines; reads sum the shards and remain exact
// (integer addition commutes).
package flops

import (
	randv2 "math/rand/v2"
	"sync/atomic"
)

// numShards is the shard count — a power of two so shard selection is a
// mask, sized to comfortably exceed the core counts of edge-class devices.
const numShards = 16

// shard is one padded counting cell. The trailing pad keeps adjacent
// shards on distinct 128-byte line pairs (two 64-bit counters + 112 bytes
// = 128), avoiding false sharing between concurrent kernels.
type shard struct {
	ops   atomic.Int64
	bytes atomic.Int64
	_     [112]byte
}

// Counter accumulates floating point operations and bytes moved. The zero
// value is ready to use. Counter is safe for concurrent use.
type Counter struct {
	shards [numShards]shard
}

// shardIndex picks a shard for the calling goroutine. rand/v2's global
// Uint64 reads per-thread state without locking, so concurrent reporters
// scatter across shards instead of contending on one line.
func shardIndex() int {
	return int(randv2.Uint64() & (numShards - 1))
}

// AddOps records n floating point operations.
func (c *Counter) AddOps(n int64) { c.shards[shardIndex()].ops.Add(n) }

// AddBytes records n bytes of memory traffic.
func (c *Counter) AddBytes(n int64) { c.shards[shardIndex()].bytes.Add(n) }

// Ops returns the accumulated floating point operation count.
func (c *Counter) Ops() int64 {
	var s int64
	for i := range c.shards {
		s += c.shards[i].ops.Load()
	}
	return s
}

// Bytes returns the accumulated byte-traffic count.
func (c *Counter) Bytes() int64 {
	var s int64
	for i := range c.shards {
		s += c.shards[i].bytes.Load()
	}
	return s
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	for i := range c.shards {
		c.shards[i].ops.Store(0)
		c.shards[i].bytes.Store(0)
	}
}

var active atomic.Pointer[Counter]

// SetActive installs c as the process-wide active counter. Tensor operations
// report their cost to the active counter. Passing nil disables counting.
// It returns the previously active counter (possibly nil) so callers can
// restore it: defer flops.SetActive(flops.SetActive(c)).
func SetActive(c *Counter) *Counter {
	return active.Swap(c)
}

// Active returns the currently installed counter, or nil when counting is
// disabled.
func Active() *Counter { return active.Load() }

// Add reports n floating point operations to the active counter, if any.
func Add(n int64) {
	if c := active.Load(); c != nil {
		c.AddOps(n)
	}
}

// AddBytes reports n bytes of traffic to the active counter, if any.
func AddBytes(n int64) {
	if c := active.Load(); c != nil {
		c.AddBytes(n)
	}
}

// Count runs fn with a fresh active counter installed, restores the previous
// counter, and returns the operations and bytes fn consumed. It is the
// convenient way to meter one phase of a pipeline.
func Count(fn func()) (ops, bytes int64) {
	var c Counter
	prev := SetActive(&c)
	defer SetActive(prev)
	fn()
	return c.Ops(), c.Bytes()
}
