// Package flops provides floating-point-operation, byte-traffic, energy and
// latency accounting for the edge/cloud cost comparison of Table I.
//
// The package is a leaf dependency: internal/tensor reports operation counts
// here, and internal/edge and internal/baseline read ledgers out to build
// the cost tables. Counting is active only while a Counter is installed via
// SetActive, so the steady-state overhead of an idle counter is one atomic
// pointer load per tensor op.
package flops

import "sync/atomic"

// Counter accumulates floating point operations and bytes moved. The zero
// value is ready to use. Counter is safe for concurrent use.
type Counter struct {
	ops   atomic.Int64
	bytes atomic.Int64
}

// AddOps records n floating point operations.
func (c *Counter) AddOps(n int64) { c.ops.Add(n) }

// AddBytes records n bytes of memory traffic.
func (c *Counter) AddBytes(n int64) { c.bytes.Add(n) }

// Ops returns the accumulated floating point operation count.
func (c *Counter) Ops() int64 { return c.ops.Load() }

// Bytes returns the accumulated byte-traffic count.
func (c *Counter) Bytes() int64 { return c.bytes.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.ops.Store(0)
	c.bytes.Store(0)
}

var active atomic.Pointer[Counter]

// SetActive installs c as the process-wide active counter. Tensor operations
// report their cost to the active counter. Passing nil disables counting.
// It returns the previously active counter (possibly nil) so callers can
// restore it: defer flops.SetActive(flops.SetActive(c)).
func SetActive(c *Counter) *Counter {
	return active.Swap(c)
}

// Active returns the currently installed counter, or nil when counting is
// disabled.
func Active() *Counter { return active.Load() }

// Add reports n floating point operations to the active counter, if any.
func Add(n int64) {
	if c := active.Load(); c != nil {
		c.ops.Add(n)
	}
}

// AddBytes reports n bytes of traffic to the active counter, if any.
func AddBytes(n int64) {
	if c := active.Load(); c != nil {
		c.bytes.Add(n)
	}
}

// Count runs fn with a fresh active counter installed, restores the previous
// counter, and returns the operations and bytes fn consumed. It is the
// convenient way to meter one phase of a pipeline.
func Count(fn func()) (ops, bytes int64) {
	var c Counter
	prev := SetActive(&c)
	defer SetActive(prev)
	fn()
	return c.Ops(), c.Bytes()
}
