package flops

import (
	"fmt"
	"sort"
	"sync"
)

// CloudConstants carries the cloud-side cost figures Table I states for
// the GPT-4 KG-update baseline. They are constants of the paper's
// accounting, not measured here (the cloud is exactly what the proposed
// method removes).
type CloudConstants struct {
	// KGGenFLOPs is the GPT-4 compute per KG generation (1e15 in Table I).
	KGGenFLOPs float64
	// KGGenMinutes is wall-clock per generation.
	KGGenMinutes float64
	// GPTMemoryGB is GPT-4's serving footprint during generation.
	GPTMemoryGB float64
	// KGMemoryGB is the knowledge graph's memory footprint.
	KGMemoryGB float64
	// KGTransferGB is network traffic per KG update pushed to the edge.
	KGTransferGB float64
	// EdgeStorageGB is the on-device storage requirement.
	EdgeStorageGB float64
}

// PaperCloudConstants returns Table I's stated values.
func PaperCloudConstants() CloudConstants {
	return CloudConstants{
		KGGenFLOPs:    1e15,
		KGGenMinutes:  1,
		GPTMemoryGB:   200,
		KGMemoryGB:    0.5,
		KGTransferGB:  0.5,
		EdgeStorageGB: 1,
	}
}

// DeviceProfile models the edge device for energy and latency accounting.
type DeviceProfile struct {
	Name string
	// FLOPSPerSecond is sustained compute throughput.
	FLOPSPerSecond float64
	// JoulesPerFLOP is the energy cost per floating point operation.
	JoulesPerFLOP float64
	// IdlePowerWatts is drawn regardless of work (unused by Table I but
	// kept for the energy ablation bench).
	IdlePowerWatts float64
}

// JetsonClass returns a Jetson-Nano-class profile: ~5 GFLOP/s sustained
// CPU-side, ~5 nJ/FLOP. With Table I's 1e9 FLOPs per daily adaptation this
// yields the paper's "approx. 5 J" per update.
func JetsonClass() DeviceProfile {
	return DeviceProfile{
		Name:           "jetson-class",
		FLOPSPerSecond: 5e9,
		JoulesPerFLOP:  5e-9,
		IdlePowerWatts: 2,
	}
}

// EnergyJoules returns the energy to execute ops floating point
// operations.
func (d DeviceProfile) EnergyJoules(ops int64) float64 {
	return float64(ops) * d.JoulesPerFLOP
}

// LatencySeconds returns the time to execute ops floating point
// operations at sustained throughput.
func (d DeviceProfile) LatencySeconds(ops int64) float64 {
	if d.FLOPSPerSecond <= 0 {
		return 0
	}
	return float64(ops) / d.FLOPSPerSecond
}

// Ledger accumulates op/byte costs per named phase. It is safe for
// concurrent use.
type Ledger struct {
	mu     sync.Mutex
	phases map[string]*phaseCost
}

type phaseCost struct {
	ops, bytes int64
	events     int64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{phases: make(map[string]*phaseCost)}
}

// Record adds one event's costs to a phase.
func (l *Ledger) Record(phase string, ops, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.phases[phase]
	if p == nil {
		p = &phaseCost{}
		l.phases[phase] = p
	}
	p.ops += ops
	p.bytes += bytes
	p.events++
}

// Meter runs fn with a fresh counter and records its cost under phase,
// returning the measured ops.
func (l *Ledger) Meter(phase string, fn func()) int64 {
	ops, bytes := Count(fn)
	l.Record(phase, ops, bytes)
	return ops
}

// PhaseOps returns the accumulated ops of a phase (0 if absent).
func (l *Ledger) PhaseOps(phase string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p := l.phases[phase]; p != nil {
		return p.ops
	}
	return 0
}

// PhaseEvents returns how many events a phase recorded.
func (l *Ledger) PhaseEvents(phase string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p := l.phases[phase]; p != nil {
		return p.events
	}
	return 0
}

// TotalOps returns the ledger-wide op count.
func (l *Ledger) TotalOps() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, p := range l.phases {
		total += p.ops
	}
	return total
}

// PhaseTotals is one phase's accumulated costs in exportable form — what
// a checkpoint persists so a warm-restarted deployment's cost tables
// continue from the pre-restart totals.
type PhaseTotals struct {
	Ops    int64 `json:"ops"`
	Bytes  int64 `json:"bytes"`
	Events int64 `json:"events"`
}

// Export returns a copy of every phase's accumulated totals.
func (l *Ledger) Export() map[string]PhaseTotals {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]PhaseTotals, len(l.phases))
	for name, p := range l.phases {
		out[name] = PhaseTotals{Ops: p.ops, Bytes: p.bytes, Events: p.events}
	}
	return out
}

// Import replaces the ledger's contents with the given totals.
func (l *Ledger) Import(totals map[string]PhaseTotals) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.phases = make(map[string]*phaseCost, len(totals))
	for name, t := range totals {
		l.phases[name] = &phaseCost{ops: t.Ops, bytes: t.Bytes, events: t.Events}
	}
}

// Phases returns the recorded phase names, sorted.
func (l *Ledger) Phases() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.phases))
	for k := range l.phases {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Summary renders the ledger for logs.
func (l *Ledger) Summary() string {
	out := ""
	for _, ph := range l.Phases() {
		out += fmt.Sprintf("%s: ops=%d events=%d\n", ph, l.PhaseOps(ph), l.PhaseEvents(ph))
	}
	return out
}
