package flops

import (
	"sync"
	"testing"
)

func TestMemLedgerAccounting(t *testing.T) {
	l := NewMemLedger(1000)
	l.Update(0, MemBreakdown{Banks: 300, Monitor: 100})
	l.Update(1, MemBreakdown{Graphs: 200, Adapter: 50, SharedBanks: 9999})
	if got := l.Total(); got != 650 {
		t.Errorf("total = %d, want 650 (shared bytes must not be charged)", got)
	}
	if over, is := l.OverBudget(); is || over != 0 {
		t.Errorf("OverBudget = %d,%v under budget", over, is)
	}
	l.Update(0, MemBreakdown{Banks: 700, Monitor: 200})
	if got := l.Total(); got != 1150 {
		t.Errorf("total after replace = %d, want 1150", got)
	}
	if over, is := l.OverBudget(); !is || over != 150 {
		t.Errorf("OverBudget = %d,%v, want 150,true", over, is)
	}
	if got := l.Stream(1).Resident(); got != 250 {
		t.Errorf("stream 1 resident = %d, want 250", got)
	}
	l.Remove(0)
	if got, n := l.Total(), l.NumStreams(); got != 250 || n != 1 {
		t.Errorf("after remove: total %d streams %d, want 250, 1", got, n)
	}
}

func TestMemLedgerUnbudgetedNeverOver(t *testing.T) {
	l := NewMemLedger(0)
	l.Update(0, MemBreakdown{Banks: 1 << 40})
	if _, is := l.OverBudget(); is {
		t.Error("unbudgeted ledger reported over budget")
	}
	if l.Budget() != 0 {
		t.Errorf("budget = %d", l.Budget())
	}
}

func TestMemLedgerConcurrentUpdates(t *testing.T) {
	l := NewMemLedger(0)
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Update(s, MemBreakdown{Banks: int64(i)})
			}
		}(s)
	}
	wg.Wait()
	if got := l.Total(); got != 8*999 {
		t.Errorf("total = %d, want %d", got, 8*999)
	}
}

func TestMemBreakdownResident(t *testing.T) {
	b := MemBreakdown{Banks: 1, Graphs: 2, Monitor: 4, Adapter: 8, Pending: 16, History: 32, SharedBanks: 64, SharedGraphs: 128}
	if got := b.Resident(); got != 63 {
		t.Errorf("Resident = %d, want 63 (shared columns excluded)", got)
	}
}
