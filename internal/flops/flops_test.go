package flops

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.AddOps(100)
	c.AddBytes(8)
	if c.Ops() != 100 || c.Bytes() != 8 {
		t.Errorf("counter = %d/%d", c.Ops(), c.Bytes())
	}
	c.Reset()
	if c.Ops() != 0 || c.Bytes() != 0 {
		t.Error("reset failed")
	}
}

func TestActiveCounterSwap(t *testing.T) {
	var c Counter
	prev := SetActive(&c)
	defer SetActive(prev)
	Add(5)
	AddBytes(3)
	if c.Ops() != 5 || c.Bytes() != 3 {
		t.Errorf("active counting broken: %d/%d", c.Ops(), c.Bytes())
	}
	if Active() != &c {
		t.Error("Active mismatch")
	}
	// Disable and make sure nothing panics or counts.
	SetActive(nil)
	Add(10)
	if c.Ops() != 5 {
		t.Error("disabled counter still counted")
	}
	SetActive(&c)
}

func TestCountHelper(t *testing.T) {
	ops, bytes := Count(func() {
		Add(42)
		AddBytes(7)
	})
	if ops != 42 || bytes != 7 {
		t.Errorf("Count = %d/%d", ops, bytes)
	}
	// The previous counter must be restored.
	if Active() != nil {
		SetActive(nil)
	}
}

func TestCounterConcurrency(t *testing.T) {
	var c Counter
	prev := SetActive(&c)
	defer SetActive(prev)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Ops() != 8000 {
		t.Errorf("concurrent ops = %d, want 8000", c.Ops())
	}
}

func TestPaperCloudConstants(t *testing.T) {
	c := PaperCloudConstants()
	if c.KGGenFLOPs != 1e15 || c.GPTMemoryGB != 200 || c.KGTransferGB != 0.5 {
		t.Errorf("constants diverge from Table I: %+v", c)
	}
}

func TestDeviceProfileDerivations(t *testing.T) {
	d := JetsonClass()
	// Table I: 1e9 FLOPs/day ⇒ ≈5 J.
	e := d.EnergyJoules(1e9)
	if e < 4 || e > 6 {
		t.Errorf("energy for 1e9 FLOPs = %v J, paper says ≈5", e)
	}
	if l := d.LatencySeconds(5e9); l != 1 {
		t.Errorf("latency = %v, want 1s", l)
	}
	var zero DeviceProfile
	if zero.LatencySeconds(100) != 0 {
		t.Error("zero profile latency should be 0")
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Record("a", 10, 1)
	l.Record("a", 5, 2)
	l.Record("b", 7, 0)
	if l.PhaseOps("a") != 15 || l.PhaseOps("b") != 7 || l.PhaseOps("missing") != 0 {
		t.Error("phase ops wrong")
	}
	if l.PhaseEvents("a") != 2 {
		t.Errorf("events = %d", l.PhaseEvents("a"))
	}
	if l.TotalOps() != 22 {
		t.Errorf("total = %d", l.TotalOps())
	}
	phases := l.Phases()
	if len(phases) != 2 || phases[0] != "a" || phases[1] != "b" {
		t.Errorf("phases = %v", phases)
	}
	ops := l.Meter("c", func() { Add(9) })
	if ops != 9 || l.PhaseOps("c") != 9 {
		t.Errorf("meter = %d", ops)
	}
	if l.Summary() == "" {
		t.Error("empty summary")
	}
}
