package flops

import "sync"

// MemBreakdown categorises one stream's resident bytes — the memory-side
// sibling of the FLOPs ledger's phase table. Owned state is charged to the
// stream; Shared* columns report bytes the stream merely aliases from the
// frozen backbone (or an older sibling) under copy-on-write and pays
// nothing for.
type MemBreakdown struct {
	// Banks and Graphs are the privately materialized token pages and KG
	// structures (post-COW-fault state).
	Banks, Graphs int64
	// Monitor is the sliding score window, frames included.
	Monitor int64
	// Adapter is the optimizer moments, norm targets and trackers.
	Adapter int64
	// Pending is the snapshot scoring state of an in-flight adaptation
	// round (zero between rounds).
	Pending int64
	// History is the retained score history.
	History int64
	// SharedBanks and SharedGraphs are aliased, uncharged bytes.
	SharedBanks, SharedGraphs int64
}

// Resident returns the bytes charged to the stream.
func (b MemBreakdown) Resident() int64 {
	return b.Banks + b.Graphs + b.Monitor + b.Adapter + b.Pending + b.History
}

// MemLedger tracks per-stream resident bytes against a global per-process
// budget. Streams report their breakdown after every state change (frame,
// round join, eviction, rehydration); the serving runtime reads the total
// to drive idle-stream eviction. Safe for concurrent use — every stream
// loop updates its own row while the eviction policy reads totals.
type MemLedger struct {
	mu      sync.Mutex
	streams map[int]MemBreakdown
	total   int64
	budget  int64
}

// NewMemLedger returns a ledger with the given budget in bytes; budget ≤ 0
// means unbudgeted (accounting only, nothing triggers eviction).
func NewMemLedger(budget int64) *MemLedger {
	return &MemLedger{streams: make(map[int]MemBreakdown), budget: budget}
}

// Update replaces a stream's breakdown.
func (l *MemLedger) Update(stream int, b MemBreakdown) {
	l.mu.Lock()
	l.total += b.Resident() - l.streams[stream].Resident()
	l.streams[stream] = b
	l.mu.Unlock()
}

// Remove drops a stream's row entirely (stream teardown).
func (l *MemLedger) Remove(stream int) {
	l.mu.Lock()
	l.total -= l.streams[stream].Resident()
	delete(l.streams, stream)
	l.mu.Unlock()
}

// Stream returns a stream's last reported breakdown (zero value when the
// stream never reported).
func (l *MemLedger) Stream(stream int) MemBreakdown {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.streams[stream]
}

// Total returns the charged resident bytes across all streams.
func (l *MemLedger) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Budget returns the configured budget (≤ 0 when unbudgeted).
func (l *MemLedger) Budget() int64 { return l.budget }

// OverBudget returns how many bytes the total exceeds the budget by, and
// whether it does. Always false when unbudgeted.
func (l *MemLedger) OverBudget() (int64, bool) {
	if l.budget <= 0 {
		return 0, false
	}
	t := l.Total()
	if t <= l.budget {
		return 0, false
	}
	return t - l.budget, true
}

// NumStreams returns how many streams have reported.
func (l *MemLedger) NumStreams() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.streams)
}
