// Package oracle provides the LLM stand-in used for mission-specific KG
// generation. The paper prompts GPT-4 for reasoning nodes, edges and error
// corrections (Sec. III-B); this package answers the same three request
// shapes deterministically from the embedded concept ontology, with
// configurable error injection so the generation loop's error-detection
// and correction machinery (Fig. 3) is genuinely exercised.
//
// The adaptation mechanism never consults the oracle after deployment —
// that is the paper's central claim — so simulating the LLM here does not
// weaken the reproduction of the continuous-learning experiments.
package oracle

import (
	"fmt"
	"math/rand"
	"sort"

	"edgekg/internal/concept"
)

// EdgeProposal names a proposed connection between a concept at the
// current level and one at the next level.
type EdgeProposal struct {
	From, To string
}

// LLM is the request surface the generation loop needs. Implementations:
// Sim (ontology-backed, this package) and scripted fakes in tests.
type LLM interface {
	// InitialNodes proposes the first reasoning level for a mission.
	InitialNodes(mission string, count int) []string
	// NextNodes proposes the next level's concepts given the current
	// level. existing lists every concept already in the graph; a correct
	// LLM avoids them, a faulty one may not.
	NextNodes(mission string, current, existing []string, count int) []string
	// ProposeEdges connects current-level concepts to next-level ones.
	ProposeEdges(current, next []string) []EdgeProposal
	// CorrectDuplicate proposes a replacement for a duplicated concept,
	// given everything already used. Empty string means "no suggestion" —
	// the loop will prune instead.
	CorrectDuplicate(dup string, existing []string) string
}

// Config controls the simulated LLM.
type Config struct {
	// DupErrorRate is the probability that NextNodes re-emits an existing
	// concept (the "Duplicated Concepts" error class).
	DupErrorRate float64
	// EdgeErrorRate is the probability that ProposeEdges emits an edge
	// whose source is not in the current level (the "Invalid Edges" class).
	EdgeErrorRate float64
	// CorrectionErrorRate is the probability a correction introduces a new
	// duplicate instead of fixing one ("the LLM might introduce new errors
	// during correction").
	CorrectionErrorRate float64
	// EdgeProb is the base probability of proposing a legitimate edge for
	// each related (current, next) pair; relatedness scales it.
	EdgeProb float64
}

// DefaultConfig returns a mildly faulty oracle: errors occur but the
// correction loop converges.
func DefaultConfig() Config {
	return Config{DupErrorRate: 0.05, EdgeErrorRate: 0.05, CorrectionErrorRate: 0.1, EdgeProb: 0.9}
}

// Sim is the ontology-backed simulated LLM.
type Sim struct {
	ont *concept.Ontology
	rng *rand.Rand
	cfg Config
	// synthCount numbers invented abstract concepts when the ontology
	// neighbourhood runs dry.
	synthCount int
}

// NewSim returns a simulated LLM over the given ontology.
func NewSim(ont *concept.Ontology, rng *rand.Rand, cfg Config) *Sim {
	return &Sim{ont: ont, rng: rng, cfg: cfg}
}

var _ LLM = (*Sim)(nil)

// InitialNodes returns the top-weighted profile concepts of the mission's
// class, falling back to ontology-wide seeds for unknown missions.
func (s *Sim) InitialNodes(mission string, count int) []string {
	cls, ok := concept.ClassByName(mission)
	if !ok {
		// Unknown mission: seed from concepts whose name appears in the
		// mission string, else the lexicographically first concepts.
		var out []string
		for _, c := range s.ont.Concepts() {
			if len(out) >= count {
				break
			}
			out = append(out, c)
		}
		return out
	}
	profile := s.ont.Profile(cls)
	out := make([]string, 0, count)
	for _, w := range profile {
		if len(out) >= count {
			break
		}
		out = append(out, w.Concept)
	}
	return out
}

// NextNodes expands the frontier to related concepts, injecting duplicate
// errors at the configured rate.
func (s *Sim) NextNodes(mission string, current, existing []string, count int) []string {
	used := make(map[string]bool, len(existing))
	for _, c := range existing {
		used[c] = true
	}
	type cand struct {
		name string
		w    float64
	}
	best := make(map[string]float64)
	for _, c := range current {
		for _, r := range s.ont.Related(c) {
			if used[r.Concept] {
				continue
			}
			if r.Weight > best[r.Concept] {
				best[r.Concept] = r.Weight
			}
		}
	}
	cands := make([]cand, 0, len(best))
	for n, w := range best {
		cands = append(cands, cand{n, w})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].name < cands[j].name
	})

	out := make([]string, 0, count)
	for _, c := range cands {
		if len(out) >= count {
			break
		}
		out = append(out, c.name)
	}
	// Ontology ran dry: invent abstract follow-ups so deep KGs can still
	// be requested (GPT-4 never runs out of words either).
	for len(out) < count {
		s.synthCount++
		out = append(out, fmt.Sprintf("abstract-%s-%d", mission, s.synthCount))
	}
	// Error injection: replace entries with already-used concepts.
	if len(existing) > 0 {
		for i := range out {
			if s.rng.Float64() < s.cfg.DupErrorRate {
				out[i] = existing[s.rng.Intn(len(existing))]
			}
		}
	}
	return out
}

// ProposeEdges links current to next by relatedness, injecting invalid
// edges at the configured rate.
func (s *Sim) ProposeEdges(current, next []string) []EdgeProposal {
	var out []EdgeProposal
	for _, to := range next {
		connected := false
		for _, from := range current {
			rel := s.ont.Relatedness(from, to)
			p := s.cfg.EdgeProb * (0.3 + 0.7*rel)
			if rel == 0 {
				p = 0
			}
			if s.rng.Float64() < p {
				out = append(out, EdgeProposal{From: from, To: to})
				connected = true
			}
		}
		if !connected && len(current) > 0 {
			// Always give the node at least one proposed parent — pick the
			// most related, or a deterministic fallback.
			bestFrom, bestW := current[0], -1.0
			for _, from := range current {
				if w := s.ont.Relatedness(from, to); w > bestW {
					bestFrom, bestW = from, w
				}
			}
			out = append(out, EdgeProposal{From: bestFrom, To: to})
		}
	}
	// Error injection: point some edges at a bogus source ("skipped
	// level"), which resolution will flag as invalid.
	for i := range out {
		if s.rng.Float64() < s.cfg.EdgeErrorRate {
			out[i].From = "level-skip:" + out[i].From
		}
	}
	return out
}

// CorrectDuplicate proposes the strongest related concept not yet used;
// with CorrectionErrorRate it misbehaves and returns another duplicate.
func (s *Sim) CorrectDuplicate(dup string, existing []string) string {
	if s.rng.Float64() < s.cfg.CorrectionErrorRate && len(existing) > 0 {
		return existing[s.rng.Intn(len(existing))]
	}
	used := make(map[string]bool, len(existing))
	for _, c := range existing {
		used[c] = true
	}
	for _, r := range s.ont.Related(dup) {
		if !used[r.Concept] {
			return r.Concept
		}
	}
	// Nothing related is free; invent a variant.
	s.synthCount++
	return fmt.Sprintf("%s-variant-%d", dup, s.synthCount)
}
