package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"edgekg/internal/concept"
)

func cleanSim(seed int64) *Sim {
	cfg := Config{EdgeProb: 0.9} // no error injection
	return NewSim(concept.Builtin(), rand.New(rand.NewSource(seed)), cfg)
}

func TestInitialNodesComeFromProfile(t *testing.T) {
	s := cleanSim(1)
	nodes := s.InitialNodes("Stealing", 5)
	if len(nodes) != 5 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	if nodes[0] != "stealing" {
		t.Errorf("top concept = %q, want the class keyword first", nodes[0])
	}
	profile := map[string]bool{}
	for _, w := range concept.Builtin().Profile(concept.Stealing) {
		profile[w.Concept] = true
	}
	for _, n := range nodes {
		if !profile[n] {
			t.Errorf("initial node %q not in Stealing profile", n)
		}
	}
}

func TestInitialNodesUnknownMissionStillProduces(t *testing.T) {
	s := cleanSim(2)
	nodes := s.InitialNodes("SomethingElse", 4)
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes for unknown mission", len(nodes))
	}
}

func TestNextNodesAvoidsExistingWithoutErrors(t *testing.T) {
	s := cleanSim(3)
	current := []string{"stealing", "sneaky", "theft"}
	existing := append([]string{}, current...)
	next := s.NextNodes("Stealing", current, existing, 5)
	if len(next) != 5 {
		t.Fatalf("got %d next nodes", len(next))
	}
	used := map[string]bool{}
	for _, e := range existing {
		used[e] = true
	}
	for _, n := range next {
		if used[n] {
			t.Errorf("clean oracle re-emitted existing concept %q", n)
		}
	}
}

func TestNextNodesInjectsDuplicates(t *testing.T) {
	cfg := Config{DupErrorRate: 1.0, EdgeProb: 0.9}
	s := NewSim(concept.Builtin(), rand.New(rand.NewSource(4)), cfg)
	existing := []string{"stealing", "theft"}
	next := s.NextNodes("Stealing", []string{"stealing"}, existing, 4)
	for _, n := range next {
		if n != "stealing" && n != "theft" {
			t.Errorf("with rate 1.0 every node should be a duplicate, got %q", n)
		}
	}
}

func TestNextNodesSynthesizesWhenOntologyDry(t *testing.T) {
	s := cleanSim(5)
	// A frontier with no relations: invented abstract concepts fill in.
	next := s.NextNodes("Stealing", []string{"no-such-concept"}, nil, 3)
	if len(next) != 3 {
		t.Fatalf("got %d", len(next))
	}
	for _, n := range next {
		if !strings.HasPrefix(n, "abstract-") {
			t.Errorf("expected synthetic concept, got %q", n)
		}
	}
}

func TestProposeEdgesConnectsEveryNextNode(t *testing.T) {
	s := cleanSim(6)
	current := []string{"stealing", "sneaky"}
	next := []string{"theft", "hiding", "crime"}
	props := s.ProposeEdges(current, next)
	covered := map[string]bool{}
	curSet := map[string]bool{"stealing": true, "sneaky": true}
	for _, p := range props {
		covered[p.To] = true
		if !curSet[p.From] {
			t.Errorf("clean oracle proposed edge from %q outside current level", p.From)
		}
	}
	for _, n := range next {
		if !covered[n] {
			t.Errorf("next node %q has no proposed parent", n)
		}
	}
}

func TestProposeEdgesInjectsInvalid(t *testing.T) {
	cfg := Config{EdgeErrorRate: 1.0, EdgeProb: 0.9}
	s := NewSim(concept.Builtin(), rand.New(rand.NewSource(7)), cfg)
	props := s.ProposeEdges([]string{"stealing"}, []string{"theft"})
	if len(props) == 0 {
		t.Fatal("no proposals")
	}
	for _, p := range props {
		if !strings.HasPrefix(p.From, "level-skip:") {
			t.Errorf("with rate 1.0 every edge should be corrupted, got %+v", p)
		}
	}
}

func TestCorrectDuplicateAvoidsExisting(t *testing.T) {
	s := cleanSim(8)
	existing := []string{"stealing", "theft", "sneaky"}
	fix := s.CorrectDuplicate("theft", existing)
	if fix == "" {
		t.Fatal("no suggestion")
	}
	for _, e := range existing {
		if fix == e {
			t.Errorf("correction %q is itself a duplicate", fix)
		}
	}
	// The fix should relate to the duplicated concept when possible.
	if concept.Builtin().Relatedness("theft", fix) == 0 && !strings.Contains(fix, "variant") {
		t.Errorf("correction %q unrelated to %q", fix, "theft")
	}
}

func TestCorrectDuplicateCanMisbehave(t *testing.T) {
	cfg := Config{CorrectionErrorRate: 1.0, EdgeProb: 0.9}
	s := NewSim(concept.Builtin(), rand.New(rand.NewSource(9)), cfg)
	existing := []string{"stealing", "theft"}
	fix := s.CorrectDuplicate("theft", existing)
	if fix != "stealing" && fix != "theft" {
		t.Errorf("with rate 1.0 the correction should be another duplicate, got %q", fix)
	}
}

func TestCorrectDuplicateInventsVariantWhenSaturated(t *testing.T) {
	s := cleanSim(10)
	// Exhaust every concept related to "theft".
	existing := []string{"theft"}
	for _, r := range concept.Builtin().Related("theft") {
		existing = append(existing, r.Concept)
	}
	fix := s.CorrectDuplicate("theft", existing)
	if !strings.Contains(fix, "variant") {
		t.Errorf("saturated correction = %q, want invented variant", fix)
	}
}

func TestDeterminismUnderSameSeed(t *testing.T) {
	a := NewSim(concept.Builtin(), rand.New(rand.NewSource(11)), DefaultConfig())
	b := NewSim(concept.Builtin(), rand.New(rand.NewSource(11)), DefaultConfig())
	na := a.NextNodes("Robbery", []string{"robbery", "gun"}, []string{"robbery", "gun"}, 5)
	nb := b.NextNodes("Robbery", []string{"robbery", "gun"}, []string{"robbery", "gun"}, 5)
	if strings.Join(na, ",") != strings.Join(nb, ",") {
		t.Errorf("same seed diverged: %v vs %v", na, nb)
	}
}
