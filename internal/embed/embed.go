// Package embed implements the frozen "large joint embedding model" of
// Fig. 2 — the ImageBind-Huge substitute. It constructs a synthetic joint
// text/image space with the single property the method depends on: concept
// phrases and video frames expressing those concepts map to nearby points,
// so inner products along the KG's sensor→reasoning→embedding paths carry
// signal and token-embedding gradients move nodes toward the concepts
// present in pseudo-anomalous frames.
//
// Construction: every concept word receives a deterministic unit vector
// (hash-seeded Gaussian). A fixed random matrix with orthonormal columns
// ("camera") renders semantic vectors to higher-dimensional pixel
// features; the image encoder is its transpose, so encode(render(x)) ≈ x
// with noise attenuated. Token embeddings are aligned to word vectors by
// averaging the vectors of every word a token appears in, giving the BPE
// vocabulary a meaningful geometry for Interpretable KG Retrieval.
package embed

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"edgekg/internal/bpe"
	"edgekg/internal/tensor"
)

// Space is the joint embedding space. It is immutable after construction
// and safe for concurrent readers: the only mutable state is the word
// vector memo, which WordVector guards with its own lock so concurrent
// frame synthesis and retrieval across serving streams never race.
type Space struct {
	dim    int
	pixDim int
	seed   int64

	tok        *bpe.Tokenizer
	camera     *tensor.Tensor // (pixDim × dim), orthonormal columns
	tokenTable *tensor.Tensor // (vocab × dim), aligned to word vectors

	// cam32 is the float32 twin of camera for the reduced-precision
	// inference path, built on first use (the space is immutable, so one
	// narrowing lasts the process lifetime).
	cam32Once sync.Once
	cam32     *tensor.Tensor32

	wordMu    sync.RWMutex
	wordCache map[string]*tensor.Tensor
}

// Config sizes the space.
type Config struct {
	// Dim is the semantic dimensionality (ImageBind-Huge's 1024 scaled to
	// laptop size; 32 by default).
	Dim int
	// PixDim is the raw frame-feature dimensionality; must be ≥ Dim.
	PixDim int
	// Seed makes the whole space reproducible.
	Seed int64
}

// DefaultConfig returns the experiment suite's dimensions.
func DefaultConfig() Config { return Config{Dim: 32, PixDim: 96, Seed: 7} }

// NewSpace builds the joint space over the words of corpus. The tokenizer
// is trained by the caller (usually on the ontology's concept list) and
// retained for retrieval decoding.
func NewSpace(tok *bpe.Tokenizer, corpus []string, cfg Config) (*Space, error) {
	if cfg.Dim < 2 {
		return nil, fmt.Errorf("embed: dim %d too small", cfg.Dim)
	}
	if cfg.PixDim < cfg.Dim {
		return nil, fmt.Errorf("embed: pixDim %d must be ≥ dim %d", cfg.PixDim, cfg.Dim)
	}
	s := &Space{
		dim:       cfg.Dim,
		pixDim:    cfg.PixDim,
		seed:      cfg.Seed,
		tok:       tok,
		wordCache: make(map[string]*tensor.Tensor),
	}
	s.camera = orthonormalColumns(rand.New(rand.NewSource(cfg.Seed^0x5eed)), cfg.PixDim, cfg.Dim)
	s.buildTokenTable(corpus)
	return s, nil
}

// Dim returns the semantic dimensionality.
func (s *Space) Dim() int { return s.dim }

// PixDim returns the raw frame-feature dimensionality.
func (s *Space) PixDim() int { return s.pixDim }

// Tokenizer returns the BPE tokenizer the space was built with.
func (s *Space) Tokenizer() *bpe.Tokenizer { return s.tok }

// WordVector returns the deterministic unit vector of a word. Unknown
// words get vectors too (hash-seeded), mirroring how a real joint model
// embeds any string.
func (s *Space) WordVector(word string) *tensor.Tensor {
	s.wordMu.RLock()
	v, ok := s.wordCache[word]
	s.wordMu.RUnlock()
	if ok {
		return v
	}
	h := fnv.New64a()
	h.Write([]byte(word))
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ s.seed))
	v = tensor.RandUnitVector(rng, s.dim)
	s.wordMu.Lock()
	// A concurrent caller may have memoised the word already; keep the
	// first entry so every caller shares one tensor. The vector itself is
	// deterministic, so either copy has identical data.
	if prev, ok := s.wordCache[word]; ok {
		v = prev
	} else {
		s.wordCache[word] = v
	}
	s.wordMu.Unlock()
	return v
}

// buildTokenTable aligns token embeddings to word vectors: each token
// accumulates the unit vectors of the words it tokenizes, averaged.
// Whole-word tokens (the common case after BPE training on the concept
// corpus) end up at exactly their word's vector.
func (s *Space) buildTokenTable(corpus []string) {
	vocab := s.tok.VocabSize()
	table := tensor.New(vocab, s.dim)
	counts := make([]float64, vocab)
	for _, w := range corpus {
		wv := s.WordVector(w)
		ids := s.tok.Encode(w)
		if len(ids) == 0 {
			continue
		}
		for _, id := range ids {
			row := table.Row(id)
			for j, v := range wv.Data() {
				row[j] += v
			}
			counts[id]++
		}
	}
	rng := rand.New(rand.NewSource(s.seed ^ 0x70cc))
	for id := 0; id < vocab; id++ {
		row := table.Row(id)
		if counts[id] > 0 {
			inv := 1 / counts[id]
			for j := range row {
				row[j] *= inv
			}
			continue
		}
		// Tokens never seen in the corpus (rare merges, <unk>) get small
		// random vectors so retrieval distances remain well-defined.
		rv := tensor.RandUnitVector(rng, s.dim)
		for j := range row {
			row[j] = 0.1 * rv.Data()[j]
		}
	}
	s.tokenTable = table
}

// TokenTable returns a copy of the aligned token-embedding table,
// (vocab × dim). Models clone it into their trainable per-KG tables; the
// retrieval stage compares learned embeddings against the original.
func (s *Space) TokenTable() *tensor.Tensor { return s.tokenTable.Clone() }

// TokenVector returns a copy of one token's embedding row.
func (s *Space) TokenVector(id int) *tensor.Tensor {
	row := s.tokenTable.Row(id)
	out := make([]float64, len(row))
	copy(out, row)
	return tensor.FromSlice(out, len(row))
}

// TextEncode embeds a phrase: mean of its token embeddings, normalised.
// This is the frozen text branch of the joint model.
func (s *Space) TextEncode(phrase string) *tensor.Tensor {
	ids := s.tok.Encode(phrase)
	if len(ids) == 0 {
		return tensor.New(s.dim)
	}
	acc := tensor.New(s.dim)
	for _, id := range ids {
		row := s.tokenTable.Row(id)
		for j := range row {
			acc.Data()[j] += row[j]
		}
	}
	tensor.ScaleInPlace(acc, 1/float64(len(ids)))
	return tensor.Normalize(acc)
}

// Render projects a semantic vector into pixel-feature space with additive
// Gaussian noise of the given standard deviation — the synthetic camera.
func (s *Space) Render(rng *rand.Rand, sem *tensor.Tensor, noise float64) *tensor.Tensor {
	if sem.Size() != s.dim {
		panic(fmt.Sprintf("embed: Render semantic dim %d != %d", sem.Size(), s.dim))
	}
	pix := tensor.MatVec(s.camera, sem)
	if noise > 0 {
		for i := range pix.Data() {
			pix.Data()[i] += rng.NormFloat64() * noise
		}
	}
	return pix
}

// EncodeImage maps a pixel-feature vector back to semantic space — the
// frozen image encoder E_I of Sec. III-C. Because the camera's columns
// are orthonormal, EncodeImage(Render(x)) = x + attenuated noise.
func (s *Space) EncodeImage(pix *tensor.Tensor) *tensor.Tensor {
	if pix.Size() != s.pixDim {
		panic(fmt.Sprintf("embed: EncodeImage pixel dim %d != %d", pix.Size(), s.pixDim))
	}
	return tensor.MatVec(tensor.Transpose(s.camera), pix)
}

// EncodeImageBatch encodes a (batch × pixDim) matrix of frames into a
// (batch × dim) matrix of semantic vectors.
func (s *Space) EncodeImageBatch(pix *tensor.Tensor) *tensor.Tensor {
	if pix.Cols() != s.pixDim {
		panic(fmt.Sprintf("embed: EncodeImageBatch pixel dim %d != %d", pix.Cols(), s.pixDim))
	}
	return tensor.MatMul(pix, s.camera)
}

// orthonormalColumns returns an (n × k) matrix with orthonormal columns
// via modified Gram-Schmidt on a random Gaussian matrix.
func orthonormalColumns(rng *rand.Rand, n, k int) *tensor.Tensor {
	m := tensor.RandN(rng, 1, n, k)
	for j := 0; j < k; j++ {
		// Orthogonalise column j against all previous columns.
		for p := 0; p < j; p++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += m.At2(i, j) * m.At2(i, p)
			}
			for i := 0; i < n; i++ {
				m.Set2(i, j, m.At2(i, j)-dot*m.At2(i, p))
			}
		}
		norm := 0.0
		for i := 0; i < n; i++ {
			norm += m.At2(i, j) * m.At2(i, j)
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Degenerate column (vanishingly unlikely): re-draw.
			for i := 0; i < n; i++ {
				m.Set2(i, j, rng.NormFloat64())
			}
			j--
			continue
		}
		for i := 0; i < n; i++ {
			m.Set2(i, j, m.At2(i, j)/norm)
		}
	}
	return m
}
