package embed

import (
	"fmt"

	"edgekg/internal/tensor"
)

// camera32 returns the float32 camera, narrowing the frozen float64
// matrix exactly once.
func (s *Space) camera32() *tensor.Tensor32 {
	s.cam32Once.Do(func() { s.cam32 = tensor.ToF32(s.camera) })
	return s.cam32
}

// EncodeImageBatchF32 is EncodeImageBatch on the reduced-precision path:
// the (batch × pixDim) frame matrix is narrowed to float32 and projected
// through the float32 camera on the f32 kernel backend. The frozen image
// encoder has no trainable state, so no cache invalidation is needed.
func (s *Space) EncodeImageBatchF32(pix *tensor.Tensor) *tensor.Tensor32 {
	if pix.Cols() != s.pixDim {
		panic(fmt.Sprintf("embed: EncodeImageBatchF32 pixel dim %d != %d", pix.Cols(), s.pixDim))
	}
	return tensor.MatMul32(tensor.ToF32(pix), s.camera32())
}
