package embed

import (
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/tensor"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	corpus := concept.Builtin().Concepts()
	tok := bpe.Train(corpus, 600)
	s, err := NewSpace(tok, corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	tok := bpe.Train([]string{"a"}, 1)
	if _, err := NewSpace(tok, []string{"a"}, Config{Dim: 1, PixDim: 4}); err == nil {
		t.Error("dim 1 accepted")
	}
	if _, err := NewSpace(tok, []string{"a"}, Config{Dim: 8, PixDim: 4}); err == nil {
		t.Error("pixDim < dim accepted")
	}
}

func TestWordVectorsDeterministicUnitNorm(t *testing.T) {
	s := testSpace(t)
	v1 := s.WordVector("stealing")
	v2 := s.WordVector("stealing")
	if !tensor.AllClose(v1, v2, 0) {
		t.Error("word vector not deterministic")
	}
	if math.Abs(tensor.Norm2(v1)-1) > 1e-9 {
		t.Errorf("word vector norm %v", tensor.Norm2(v1))
	}
	// Distinct words get distinct directions.
	v3 := s.WordVector("explosion")
	if tensor.CosineSimilarity(v1, v3) > 0.8 {
		t.Errorf("unrelated words too close: %v", tensor.CosineSimilarity(v1, v3))
	}
}

func TestRenderEncodeInverts(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(1))
	sem := s.WordVector("robbery")
	pix := s.Render(rng, sem, 0) // noiseless
	back := s.EncodeImage(pix)
	if !tensor.AllClose(back, sem, 1e-9) {
		t.Errorf("encode(render(x)) != x: dist %v", tensor.L2Distance(back, sem))
	}
}

func TestRenderEncodeAttenuatesNoise(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(2))
	sem := s.WordVector("gun")
	var totalErr float64
	const trials = 50
	for i := 0; i < trials; i++ {
		pix := s.Render(rng, sem, 0.1)
		back := s.EncodeImage(pix)
		totalErr += tensor.L2Distance(back, sem)
	}
	avg := totalErr / trials
	// Orthonormal projection keeps only dim of pixDim noise dimensions:
	// expected error ≈ 0.1·sqrt(dim) ≈ 0.57, far below the raw pixel noise
	// norm 0.1·sqrt(pixDim) ≈ 0.98.
	if avg > 0.8 {
		t.Errorf("noise attenuation too weak: avg err %v", avg)
	}
	if avg < 0.2 {
		t.Errorf("suspiciously low noise: avg err %v", avg)
	}
}

func TestEncodeImageBatchMatchesSingle(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(3))
	p1 := s.Render(rng, s.WordVector("fire"), 0.05)
	p2 := s.Render(rng, s.WordVector("smoke"), 0.05)
	batch := tensor.ConcatRows(p1.Reshape(1, s.PixDim()), p2.Reshape(1, s.PixDim()))
	enc := s.EncodeImageBatch(batch)
	e1 := s.EncodeImage(p1)
	e2 := s.EncodeImage(p2)
	if !tensor.AllClose(tensor.SliceRows(enc, 0, 1).Reshape(s.Dim()), e1, 1e-9) {
		t.Error("batch row 0 disagrees with single encode")
	}
	if !tensor.AllClose(tensor.SliceRows(enc, 1, 2).Reshape(s.Dim()), e2, 1e-9) {
		t.Error("batch row 1 disagrees with single encode")
	}
}

// The alignment property everything rests on: TextEncode(word) must be
// close to WordVector(word), because BPE collapses trained words to
// whole-word tokens whose table rows were seeded from the word vectors.
func TestTextEncodeAlignsWithWordVectors(t *testing.T) {
	s := testSpace(t)
	words := []string{"stealing", "sneaky", "firearm", "robbery", "explosion"}
	for _, w := range words {
		te := s.TextEncode(w)
		cos := tensor.CosineSimilarity(te, s.WordVector(w))
		if cos < 0.85 {
			t.Errorf("TextEncode(%q) misaligned: cos %v", w, cos)
		}
	}
}

func TestTextEncodeCrossAlignmentViaImage(t *testing.T) {
	// A rendered frame of concept X must be closer (in encoded space) to
	// TextEncode(X) than to TextEncode(unrelated Y): the joint-space
	// property that makes the GNN's sensor products informative.
	s := testSpace(t)
	rng := rand.New(rand.NewSource(4))
	frame := s.EncodeImage(s.Render(rng, s.WordVector("stealing"), 0.1))
	same := tensor.CosineSimilarity(frame, s.TextEncode("stealing"))
	other := tensor.CosineSimilarity(frame, s.TextEncode("explosion"))
	if same <= other {
		t.Errorf("joint alignment broken: same %v vs other %v", same, other)
	}
	if same < 0.5 {
		t.Errorf("same-concept similarity too low: %v", same)
	}
}

func TestTokenTableIsCopy(t *testing.T) {
	s := testSpace(t)
	tab := s.TokenTable()
	tab.Fill(0)
	if tensor.Norm2(s.TokenTable()) == 0 {
		t.Error("TokenTable leaked internal storage")
	}
}

func TestTokenVector(t *testing.T) {
	s := testSpace(t)
	ids := s.Tokenizer().Encode("gun")
	if len(ids) == 0 {
		t.Fatal("no tokens")
	}
	v := s.TokenVector(ids[0])
	if v.Size() != s.Dim() {
		t.Errorf("token vector size %d", v.Size())
	}
	if tensor.Norm2(v) == 0 {
		t.Error("token vector zero")
	}
}

func TestUnseenTokensGetSmallVectors(t *testing.T) {
	s := testSpace(t)
	unkID, ok := s.Tokenizer().TokenID(bpe.UnknownToken)
	if !ok {
		t.Fatal("no <unk> token")
	}
	v := s.TokenVector(unkID)
	n := tensor.Norm2(v)
	if n == 0 || n > 0.5 {
		t.Errorf("<unk> vector norm %v, want small but nonzero", n)
	}
}

func TestTextEncodeEmpty(t *testing.T) {
	s := testSpace(t)
	v := s.TextEncode("")
	if tensor.Norm2(v) != 0 {
		t.Error("empty phrase should encode to zero vector")
	}
}

func TestCameraColumnsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := orthonormalColumns(rng, 20, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			dot := 0.0
			for r := 0; r < 20; r++ {
				dot += m.At2(r, i) * m.At2(r, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("col %d·col %d = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestRenderDimensionChecks(t *testing.T) {
	s := testSpace(t)
	rng := rand.New(rand.NewSource(6))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong semantic dim")
		}
	}()
	s.Render(rng, tensor.New(s.Dim()+1), 0)
}
