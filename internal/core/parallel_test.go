package core

import (
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/concept"
	"edgekg/internal/kg"
	"edgekg/internal/kggen"
	"edgekg/internal/oracle"
	"edgekg/internal/parallel"
	"edgekg/internal/tensor"
)

// multiKGRig builds a detector over two mission KGs so the per-KG task
// parallelism in EmbedFrames actually fans out.
func multiKGRig(t *testing.T) (*testRig, *Detector) {
	t.Helper()
	r := newRig(t, "Stealing", 7)
	rng := rand.New(rand.NewSource(8))
	llm := oracle.NewSim(concept.Builtin(), rng, oracle.Config{EdgeProb: 0.9})
	opts := kggen.Options{Depth: 2, InitialFanout: 4, Fanout: 3, MaxCorrectionIters: 3}
	g2, _, err := kggen.Generate(llm, "Robbery", opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(rng, r.space, []*kg.Graph{r.graph, g2}, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r, det
}

// TestScoreVideoDeterministicAcrossWorkers pins the concurrency contract
// of the deployment scoring path: the scores must be bit-identical no
// matter how many pool workers participate. Under -race this test also
// exercises the concurrent window scoring for data races even on
// single-CPU machines.
func TestScoreVideoDeterministicAcrossWorkers(t *testing.T) {
	r, det := multiKGRig(t)
	rng := rand.New(rand.NewSource(9))
	frames := tensor.New(24, r.space.PixDim())
	for i := 0; i < frames.Rows(); i++ {
		copy(frames.Row(i), r.gen.Frame(rng, concept.Robbery).Data())
	}

	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	want := det.ScoreVideo(frames)
	for _, w := range []int{2, 4, 8} {
		parallel.SetWorkers(w)
		got := det.ScoreVideo(frames)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: score[%d] = %v, sequential %v", w, i, got[i], want[i])
			}
		}
	}
}

// TestEmbedFramesDeterministicAcrossWorkers checks the per-KG fan-out in
// EmbedFrames (values and token gradients) against the sequential result.
func TestEmbedFramesDeterministicAcrossWorkers(t *testing.T) {
	r, det := multiKGRig(t)
	rng := rand.New(rand.NewSource(10))
	frames := tensor.New(6, r.space.PixDim())
	for i := 0; i < frames.Rows(); i++ {
		copy(frames.Row(i), r.gen.Frame(rng, concept.Stealing).Data())
	}
	det.SetTraining(false)

	run := func(workers int) (*tensor.Tensor, []*tensor.Tensor) {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		for _, p := range det.TokenParams() {
			p.V.ZeroGrad()
		}
		out := det.EmbedFrames(frames)
		out.Backward()
		var grads []*tensor.Tensor
		for _, p := range det.TokenParams() {
			if p.V.Grad != nil {
				grads = append(grads, p.V.Grad.Clone())
			} else {
				grads = append(grads, nil)
			}
		}
		return out.Data.Clone(), grads
	}

	wantOut, wantGrads := run(1)
	for _, w := range []int{2, 4} {
		gotOut, gotGrads := run(w)
		if !tensor.AllClose(gotOut, wantOut, 0) {
			t.Fatalf("workers=%d: embeddings diverge from sequential", w)
		}
		if len(gotGrads) != len(wantGrads) {
			t.Fatalf("workers=%d: gradient count %d vs %d", w, len(gotGrads), len(wantGrads))
		}
		for i := range wantGrads {
			switch {
			case wantGrads[i] == nil && gotGrads[i] == nil:
			case wantGrads[i] == nil || gotGrads[i] == nil:
				t.Fatalf("workers=%d: grad %d nil mismatch", w, i)
			case !tensor.AllClose(gotGrads[i], wantGrads[i], 0):
				t.Fatalf("workers=%d: token grad %d diverges from sequential", w, i)
			}
		}
	}
}

// TestScoreVideoFinite guards the parallel path against uninitialised
// window scratch: every score must be a valid probability.
func TestScoreVideoFinite(t *testing.T) {
	r, det := multiKGRig(t)
	prev := parallel.SetWorkers(4)
	defer parallel.SetWorkers(prev)
	rng := rand.New(rand.NewSource(11))
	frames := tensor.New(10, r.space.PixDim())
	for i := 0; i < frames.Rows(); i++ {
		copy(frames.Row(i), r.gen.Frame(rng, concept.Explosion).Data())
	}
	for i, s := range det.ScoreVideo(frames) {
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v out of [0,1]", i, s)
		}
	}
}

// TestScoreVideoChunkingSeamless scores a video longer than ScoreVideo's
// internal window-chunk size and pins every frame — in particular those
// whose windows straddle the chunk boundary — to the per-window sequential
// reference, so the bounded-memory chunking cannot shift window assembly.
func TestScoreVideoChunkingSeamless(t *testing.T) {
	r := newRig(t, "Stealing", 11)
	// This pins the float64 chunking against a float64 per-window
	// reference; keep it f64 under an EDGEKG_PRECISION=f32 run (the f32
	// engine's chunk seam is covered by its drift-budget harness).
	r.det.SetPrecision(PrecisionF64)
	rng := rand.New(rand.NewSource(12))
	const n = 300 // > one 256-window chunk
	frames := tensor.New(n, r.space.PixDim())
	for i := 0; i < n; i++ {
		copy(frames.Row(i), r.gen.Frame(rng, concept.Robbery).Data())
	}
	got := r.det.ScoreVideo(frames)
	if len(got) != n {
		t.Fatalf("got %d scores, want %d", len(got), n)
	}

	r.det.SetTraining(false)
	tw := r.det.Window()
	emb := r.det.EmbedFrames(frames).Data
	invT := 1 / r.det.ScoreTemperature()
	for _, i := range []int{0, 127, 255, 256, 257, n - 1} {
		win := tensor.New(tw, emb.Cols())
		for k := 0; k < tw; k++ {
			src := i - (tw - 1) + k
			if src < 0 {
				src = 0
			}
			copy(win.Row(k), emb.Row(src))
		}
		out := r.det.Temporal().ForwardSeq(autograd.Constant(win))
		probs := autograd.SoftmaxRows(autograd.Scale(r.det.Head().Logits(out), invT))
		want := 1 - probs.Data.At2(0, 0)
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("score[%d] = %v, sequential reference %v", i, got[i], want)
		}
	}
}
