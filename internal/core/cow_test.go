package core

import (
	"math/rand"
	"testing"

	"edgekg/internal/kg"
	"edgekg/internal/kggen"
	"edgekg/internal/oracle"
	"edgekg/internal/tensor"

	"edgekg/internal/concept"
)

// twoKGDetector builds a 2-mission detector so clone failure paths have a
// successfully-cloned GNN to roll back.
func twoKGDetector(t *testing.T) *Detector {
	t.Helper()
	r := newRig(t, "Stealing", 21)
	rng := rand.New(rand.NewSource(22))
	llm := oracle.NewSim(concept.Builtin(), rng, oracle.Config{EdgeProb: 0.9})
	tok := r.space.Tokenizer()
	opts := kggen.Options{Depth: 2, InitialFanout: 4, Fanout: 3, MaxCorrectionIters: 3, Tokenize: tok.Encode}
	g2, _, err := kggen.Generate(llm, "Robbery", opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(rng, r.space, []*kg.Graph{r.graph, g2}, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestDetectorCloneCOWScoresBitIdentical(t *testing.T) {
	det := twoKGDetector(t)
	det.SetTraining(false)
	eager, err := det.CloneShared()
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := det.CloneCOW()
	if err != nil {
		t.Fatal(err)
	}
	eager.SetTraining(false)
	lazy.SetTraining(false)
	rng := rand.New(rand.NewSource(23))
	video := tensor.RandN(rng, 1, 8, det.Space().PixDim())
	se := eager.ScoreVideo(video)
	sl := lazy.ScoreVideo(video)
	for i := range se {
		if se[i] != sl[i] {
			t.Fatalf("frame %d: COW score %v != eager score %v", i, sl[i], se[i])
		}
	}
	if lazy.Mem().Owned() != 0 {
		t.Errorf("unadapted COW clone owns %d bytes after scoring, want 0", lazy.Mem().Owned())
	}
	if eager.Mem().Owned() == 0 {
		t.Error("eager clone reports no owned bytes")
	}
}

func TestCloneCOWMidLoopFailureRollsBack(t *testing.T) {
	det := twoKGDetector(t)
	// Sabotage the SECOND GNN so CloneCOW succeeds on GNN 0 and fails on
	// GNN 1: the rollback must release GNN 0's freshly-placed marks.
	victim := det.GNN(1)
	victimID := victim.Tokens().NodeIDs()[0]
	victim.Tokens().Remove(victimID)

	if _, err := det.CloneCOW(); err == nil {
		t.Fatal("CloneCOW succeeded on a detector with a missing bank page")
	}
	first := det.GNN(0)
	for _, id := range first.Tokens().NodeIDs() {
		if first.Tokens().Bank(id).SharedData() {
			t.Errorf("GNN 0 node %d: page left marked shared by the failed clone", id)
		}
	}
	if first.Graph().Shared() {
		t.Error("GNN 0 graph left marked shared by the failed clone")
	}
}

func TestCloneCOWFailureKeepsPriorSiblingMarks(t *testing.T) {
	det := twoKGDetector(t)
	// An older healthy sibling's sharing must survive a later failed clone:
	// rollback may release only the marks the failed attempt introduced.
	sibling, err := det.CloneCOW()
	if err != nil {
		t.Fatal(err)
	}
	victim := det.GNN(1)
	victim.Tokens().Remove(victim.Tokens().NodeIDs()[0])
	if _, err := det.CloneCOW(); err == nil {
		t.Fatal("CloneCOW succeeded on a detector with a missing bank page")
	}
	first := det.GNN(0)
	for _, id := range first.Tokens().NodeIDs() {
		if !first.Tokens().Bank(id).SharedData() {
			t.Errorf("GNN 0 node %d: mark shared with live sibling was released", id)
		}
	}
	if !first.Graph().Shared() {
		t.Error("GNN 0 graph mark shared with live sibling was released")
	}
	_ = sibling
}

func TestCloneSharedFailureReleasesPartialClone(t *testing.T) {
	det := twoKGDetector(t)
	victim := det.GNN(1)
	victim.Tokens().Remove(victim.Tokens().NodeIDs()[0])
	c, err := det.CloneShared()
	if err == nil {
		t.Fatal("CloneShared succeeded on a detector with a missing bank page")
	}
	if c != nil {
		t.Fatal("CloneShared returned a partial clone alongside its error")
	}
}
