package core

import (
	"math"

	"edgekg/internal/flops"
	"edgekg/internal/parallel"
	"edgekg/internal/tensor"
)

// EmbedFramesEvalF32 is EmbedFrames on the reduced-precision inference
// path: frames are encoded through the float32 camera and each per-KG GNN
// runs its tape-free float32 forward. The per-mission forwards fan out on
// the shared worker pool exactly like the float64 path.
func (d *Detector) EmbedFramesEvalF32(pix *tensor.Tensor) *tensor.Tensor32 {
	sem := d.space.EncodeImageBatchF32(pix)
	if len(d.gnns) == 1 {
		return d.gnns[0].ForwardEvalF32(sem)
	}
	outs := make([]*tensor.Tensor32, len(d.gnns))
	parallel.For(len(d.gnns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			outs[i] = d.gnns[i].ForwardEvalF32(sem)
		}
	})
	return concatCols32(outs)
}

// ScoreVideoF32 is ScoreVideo run entirely through the float32 inference
// engine: same windowing, chunking and calibration, with only the final
// anomaly scores widened back to float64 for the monitor. Scores drift
// from the float64 path within the pinned budget (see the drift tests);
// ranking and AUC are preserved on the reference workloads.
//
// Like ScoreVideo it is safe for concurrent callers over one frozen,
// deployed detector: the float32 weight snapshots are built once under
// benign CAS races and every forward is read-only.
func (d *Detector) ScoreVideoF32(frames *tensor.Tensor) []float64 {
	d.SetTraining(false)
	n := frames.Rows()
	if n == 0 {
		return nil
	}
	t := d.temp.Window()
	emb := d.EmbedFramesEvalF32(frames)
	invT := float32(1)
	if d.cfg.ScoreTemperature > 0 {
		invT = float32(1 / d.cfg.ScoreTemperature)
	}
	const chunk = 256
	scores := make([]float64, n)
	for base := 0; base < n; base += chunk {
		b := n - base
		if b > chunk {
			b = chunk
		}
		wins := tensor.New32(b*t, emb.Cols())
		parallel.For(b, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for k := 0; k < t; k++ {
					src := base + i - (t - 1) + k
					if src < 0 {
						src = 0
					}
					copy(wins.Row(i*t+k), emb.Row(src))
				}
			}
		})
		out := d.temp.ForwardBatchEvalF32(wins, b)
		logits := d.head.LogitsF32(out)
		c := logits.Cols()
		for i := 0; i < b; i++ {
			row := logits.Row(i)
			mx := row[0] * invT
			for j := 1; j < c; j++ {
				if v := row[j] * invT; v > mx {
					mx = v
				}
			}
			var sum, p0 float32
			for j := 0; j < c; j++ {
				e := float32(math.Exp(float64(row[j]*invT - mx)))
				sum += e
				if j == 0 {
					p0 = e
				}
			}
			scores[base+i] = 1 - float64(p0/sum)
		}
		flops.Add(int64(b * c * 5))
	}
	return scores
}

// concatCols32 concatenates float32 matrices column-wise; all inputs must
// share a row count.
func concatCols32(ms []*tensor.Tensor32) *tensor.Tensor32 {
	r := ms[0].Rows()
	cols := 0
	for _, m := range ms {
		cols += m.Cols()
	}
	out := tensor.New32(r, cols)
	for i := 0; i < r; i++ {
		row := out.Row(i)
		off := 0
		for _, m := range ms {
			off += copy(row[off:], m.Row(i))
		}
	}
	return out
}
