package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"edgekg/internal/concept"
	"edgekg/internal/kg"
	"edgekg/internal/tensor"
)

// TestScoreVideoConcurrentCallers is the regression test for the serving
// runtime's central assumption: many goroutines may score through one
// frozen backbone simultaneously and each must see exactly the sequential
// result. Run under -race this also audits the score path for shared
// mutable state (training-mode flags, bank/layout caches).
func TestScoreVideoConcurrentCallers(t *testing.T) {
	rig := newRig(t, "Stealing", 11)
	rig.det.Deploy()
	rng := rand.New(rand.NewSource(11))

	const callers = 8
	videos := make([]*tensor.Tensor, callers)
	want := make([][]float64, callers)
	for i := range videos {
		v := tensor.New(9, rig.space.PixDim())
		cls := concept.Stealing
		if i%2 == 1 {
			cls = concept.Normal
		}
		for r := 0; r < v.Rows(); r++ {
			copy(v.Row(r), rig.gen.Frame(rng, cls).Data())
		}
		videos[i] = v
		want[i] = rig.det.ScoreVideo(v)
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make([]string, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got := rig.det.ScoreVideo(videos[i])
				for k := range got {
					if got[k] != want[i][k] {
						errs[i] = "concurrent score diverged from sequential"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("caller %d: %s", i, e)
		}
	}
}

// TestDetectorCloneShared pins the clone contract: bit-identical scoring,
// and full independence of the per-KG mutable state (token banks and graph
// structure) from the original and from sibling clones.
func TestDetectorCloneShared(t *testing.T) {
	rig := newRig(t, "Stealing", 12)
	rig.det.Deploy()
	rng := rand.New(rand.NewSource(12))

	video := tensor.New(7, rig.space.PixDim())
	for r := 0; r < video.Rows(); r++ {
		copy(video.Row(r), rig.gen.Frame(rng, concept.Stealing).Data())
	}
	want := rig.det.ScoreVideo(video)

	clone, err := rig.det.CloneShared()
	if err != nil {
		t.Fatal(err)
	}
	got := clone.ScoreVideo(video)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clone score[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// The frozen backbone is shared, the mutable state is not.
	if clone.Space() != rig.det.Space() || clone.Temporal() != rig.det.Temporal() || clone.Head() != rig.det.Head() {
		t.Fatal("clone does not share the frozen backbone")
	}
	if clone.GNN(0) == rig.det.GNN(0) || clone.GNN(0).Tokens() == rig.det.GNN(0).Tokens() || clone.Graphs()[0] == rig.det.Graphs()[0] {
		t.Fatal("clone shares per-KG mutable state")
	}

	// Perturb every clone token bank; the original must keep scoring
	// bit-identically while the clone diverges.
	bank := clone.GNN(0).Tokens()
	for _, id := range bank.NodeIDs() {
		data := bank.Bank(id).Data.Data()
		for i := range data {
			data[i] += 0.35
		}
	}
	after := rig.det.ScoreVideo(video)
	for i := range want {
		if after[i] != want[i] {
			t.Fatal("mutating clone banks changed the original's scores")
		}
	}
	diverged := false
	for i, s := range clone.ScoreVideo(video) {
		if s != want[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("perturbed clone still scores identically — banks are shared?")
	}

	// Structural mutation on the clone (prune a leaf-ish reasoning node)
	// must leave the original's graph untouched.
	var victim kg.NodeID = -1
	g := clone.Graphs()[0]
	for _, n := range g.Nodes() {
		if n.Kind == kg.Reasoning && len(g.NodesAtLevel(n.Level)) > 1 {
			victim = n.ID
			break
		}
	}
	if victim < 0 {
		t.Fatalf("fixture graph has no prunable reasoning node; the multi-node levels the clone-isolation check depends on are gone")
	}
	origNodes := rig.det.Graphs()[0].NumNodes()
	if err := g.RemoveNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := clone.GNN(0).Rebind(); err != nil {
		t.Fatal(err)
	}
	if rig.det.Graphs()[0].NumNodes() != origNodes {
		t.Fatal("pruning the clone's graph mutated the original")
	}
	if rig.det.GNN(0).Tokens().Has(victim) != true {
		t.Fatal("original bank lost the node pruned on the clone")
	}
	for i, s := range rig.det.ScoreVideo(video) {
		if s != want[i] {
			t.Fatalf("original score[%d] changed after clone rebind", i)
		}
	}
}

// TestMonitorClone pins the monitor snapshot: the clone carries the full
// window/reference state, and pushes into the original never leak in.
func TestMonitorClone(t *testing.T) {
	mon, err := NewAnchoredMonitor(4)
	if err != nil {
		t.Fatal(err)
	}
	frame := tensor.New(1, 3)
	for i, s := range []float64{0.9, 0.8, 0.85, 0.95, 0.2, 0.3} {
		mon.Push(frame, s)
		_ = i
	}
	c := mon.Clone()
	if c.DeltaM() != mon.DeltaM() || c.K() != mon.K() || c.Mean() != mon.Mean() || c.Reference() != mon.Reference() {
		t.Fatalf("clone state mismatch: Δm %v vs %v, K %d vs %d", c.DeltaM(), mon.DeltaM(), c.K(), mon.K())
	}
	if !c.Ready() {
		t.Fatal("clone of ready monitor is not ready")
	}
	wantTop := mon.TopK()
	gotTop := c.TopK()
	if len(wantTop) != len(gotTop) {
		t.Fatalf("clone TopK %d vs %d", len(gotTop), len(wantTop))
	}
	for i := range wantTop {
		if wantTop[i].Score != gotTop[i].Score || wantTop[i].Seq != gotTop[i].Seq {
			t.Fatal("clone TopK diverges")
		}
	}
	before := c.Mean()
	for i := 0; i < 8; i++ {
		mon.Push(frame, 0.01)
	}
	if c.Mean() != before {
		t.Fatal("pushes into the original leaked into the clone")
	}
	if math.Abs(mon.Mean()-0.01) > 1e-12 {
		t.Fatalf("original mean %v after pushes", mon.Mean())
	}
}
