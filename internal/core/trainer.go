package core

import (
	"fmt"
	"math/rand"

	"edgekg/internal/decision"
	"edgekg/internal/metrics"
	"edgekg/internal/nn"
	"edgekg/internal/optim"
	"edgekg/internal/tensor"
)

// ClipSource supplies contiguous training clips: frames of
// window+batch−1 rows and batch per-window labels. internal/dataset's
// ClipSource satisfies it.
type ClipSource interface {
	NextClip(rng *rand.Rand) (frames *tensor.Tensor, labels []int)
	Window() int
	Batch() int
}

// TrainConfig controls pre-deployment training (Fig. 2B).
type TrainConfig struct {
	// Steps is the number of optimisation steps (paper: 3000).
	Steps int
	// Optimizer carries the AdamW hyper-parameters (paper defaults in
	// optim.DefaultAdamWConfig; note the paper's lr of 1e-5 is tuned for
	// ImageBind-scale features — the synthetic space trains well around
	// 1e-3..1e-2).
	Optimizer optim.AdamWConfig
	// DecaySchedule multiplies the learning rate per step; the paper's
	// α_d = 0.9999 threshold decay is the default.
	DecayRate float64
	// ClipNorm bounds the global gradient norm (0 disables).
	ClipNorm float64
	// TrainTokens also updates KG token embeddings during training; the
	// paper trains the full stack before deployment.
	TrainTokens bool
}

// DefaultTrainConfig returns the paper's regime scaled to the synthetic
// substrate.
func DefaultTrainConfig() TrainConfig {
	opt := optim.DefaultAdamWConfig()
	opt.LR = 5e-3
	opt.WeightDecay = 1e-4
	return TrainConfig{
		Steps:       3000,
		Optimizer:   opt,
		DecayRate:   0.9999,
		ClipNorm:    5,
		TrainTokens: true,
	}
}

// Trainer drives pre-deployment training of a Detector.
type Trainer struct {
	det   *Detector
	cfg   TrainConfig
	opt   *optim.Scheduled
	steps int
}

// NewTrainer builds a trainer over the detector's weights (plus token
// banks when TrainTokens).
func NewTrainer(det *Detector, cfg TrainConfig) *Trainer {
	det.UnfreezeAll()
	params := det.Params()
	if cfg.TrainTokens {
		params = append(params, det.TokenParams()...)
	}
	adam := optim.NewAdamW(nn.Values(params), cfg.Optimizer)
	sched := optim.NewScheduled(adam, optim.ExponentialDecay{Rate: cfg.DecayRate})
	return &Trainer{det: det, cfg: cfg, opt: sched}
}

// Step performs one optimisation step on a sampled clip and returns the
// loss value.
func (t *Trainer) Step(rng *rand.Rand, src ClipSource) float64 {
	t.det.SetTraining(true)
	frames, labels := src.NextClip(rng)
	logits := t.det.ForwardClip(frames, src.Batch())
	loss := decision.Loss(logits, labels, t.det.cfg.Loss, true)
	t.opt.ZeroGrad()
	loss.Backward()
	if t.cfg.ClipNorm > 0 {
		params := t.det.Params()
		if t.cfg.TrainTokens {
			params = append(params, t.det.TokenParams()...)
		}
		optim.ClipGradNorm(nn.Values(params), t.cfg.ClipNorm)
	}
	t.opt.Step()
	t.steps++
	return loss.Scalar()
}

// Train runs the configured number of steps, invoking progress (if
// non-nil) with the step index and loss.
func (t *Trainer) Train(rng *rand.Rand, src ClipSource, progress func(step int, loss float64)) {
	for i := 0; i < t.cfg.Steps; i++ {
		loss := t.Step(rng, src)
		if progress != nil {
			progress(i, loss)
		}
	}
}

// StepsTaken returns how many optimisation steps have run.
func (t *Trainer) StepsTaken() int { return t.steps }

// EvalAUC scores frames in inference mode and returns the ROC-AUC of
// anomaly scores against per-frame binary labels — the paper's test
// metric.
func EvalAUC(det *Detector, frames *tensor.Tensor, labels []bool) (float64, error) {
	if frames.Rows() != len(labels) {
		return 0, fmt.Errorf("core: %d frames vs %d labels", frames.Rows(), len(labels))
	}
	scores := det.ScoreVideo(frames)
	return metrics.AUC(scores, labels)
}
