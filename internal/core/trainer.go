package core

import (
	"fmt"
	"math/rand"

	"edgekg/internal/autograd"
	"edgekg/internal/decision"
	"edgekg/internal/metrics"
	"edgekg/internal/nn"
	"edgekg/internal/optim"
	"edgekg/internal/parallel"
	"edgekg/internal/tensor"
)

// ClipSource supplies contiguous training clips: frames of
// window+batch−1 rows and batch per-window labels. internal/dataset's
// ClipSource satisfies it.
type ClipSource interface {
	NextClip(rng *rand.Rand) (frames *tensor.Tensor, labels []int)
	Window() int
	Batch() int
}

// BatchClipSource extends ClipSource with microbatch sampling: NextClips
// draws k clips from per-clip RNG streams derived from the master rng, so
// the sample is identical whether the clips are then processed
// sequentially or across shards. internal/dataset's ClipSource satisfies
// it; sources without the method fall back to an equivalent derivation
// inside the trainer.
type BatchClipSource interface {
	ClipSource
	NextClips(rng *rand.Rand, k int) (frames []*tensor.Tensor, labels [][]int)
}

// TrainConfig controls pre-deployment training (Fig. 2B).
type TrainConfig struct {
	// Steps is the number of optimisation steps (paper: 3000).
	Steps int
	// Optimizer carries the AdamW hyper-parameters (paper defaults in
	// optim.DefaultAdamWConfig; note the paper's lr of 1e-5 is tuned for
	// ImageBind-scale features — the synthetic space trains well around
	// 1e-3..1e-2).
	Optimizer optim.AdamWConfig
	// DecaySchedule multiplies the learning rate per step; the paper's
	// α_d = 0.9999 threshold decay is the default.
	DecayRate float64
	// ClipNorm bounds the global gradient norm (0 disables).
	ClipNorm float64
	// TrainTokens also updates KG token embeddings during training; the
	// paper trains the full stack before deployment.
	TrainTokens bool
	// Microbatch is the number of clips K per optimisation step. Each step
	// samples K clips, computes per-clip gradients (concurrently on the
	// worker pool when K > 1), averages them, and applies one update —
	// classic data-parallel gradient accumulation. 0 and 1 both mean one
	// clip per step, reproducing the pre-microbatch trainer bit for bit.
	Microbatch int
}

// DefaultTrainConfig returns the paper's regime scaled to the synthetic
// substrate.
func DefaultTrainConfig() TrainConfig {
	opt := optim.DefaultAdamWConfig()
	opt.LR = 5e-3
	opt.WeightDecay = 1e-4
	return TrainConfig{
		Steps:       3000,
		Optimizer:   opt,
		DecayRate:   0.9999,
		ClipNorm:    5,
		TrainTokens: true,
	}
}

// Trainer drives pre-deployment training of a Detector.
type Trainer struct {
	det *Detector
	cfg TrainConfig
	opt *optim.Scheduled
	// params caches the optimiser's parameter set (detector weights, plus
	// token banks when TrainTokens) — it is fixed for the trainer's
	// lifetime, and Step previously rebuilt the slice on every call just
	// to clip gradients.
	params []*autograd.Value
	steps  int
}

// NewTrainer builds a trainer over the detector's weights (plus token
// banks when TrainTokens).
func NewTrainer(det *Detector, cfg TrainConfig) *Trainer {
	det.UnfreezeAll()
	params := det.Params()
	if cfg.TrainTokens {
		params = append(params, det.TokenParams()...)
	}
	values := nn.Values(params)
	adam := optim.NewAdamW(values, cfg.Optimizer)
	sched := optim.NewScheduled(adam, optim.ExponentialDecay{Rate: cfg.DecayRate})
	return &Trainer{det: det, cfg: cfg, opt: sched, params: values}
}

// microbatch returns the configured clips-per-step K (≥1).
func (t *Trainer) microbatch() int {
	if t.cfg.Microbatch > 1 {
		return t.cfg.Microbatch
	}
	return 1
}

// sampleClips draws the step's K-clip microbatch. K == 1 samples directly
// from the master rng — the exact pre-microbatch consumption pattern, so
// existing seeds reproduce their historical trajectories bit for bit. For
// K > 1, sources implementing BatchClipSource sample through their own
// per-clip RNG streams; plain ClipSources get the same derivation (k
// seeds drawn from the master rng in clip order, one fresh stream per
// clip) applied outside, so either way the microbatch is a pure function
// of the master RNG state.
func sampleClips(rng *rand.Rand, src ClipSource, k int) ([]*tensor.Tensor, [][]int) {
	if k == 1 {
		frames, labels := src.NextClip(rng)
		return []*tensor.Tensor{frames}, [][]int{labels}
	}
	if bs, ok := src.(BatchClipSource); ok {
		return bs.NextClips(rng, k)
	}
	seeds := make([]int64, k)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	frames := make([]*tensor.Tensor, k)
	labels := make([][]int, k)
	for i := 0; i < k; i++ {
		frames[i], labels[i] = src.NextClip(rand.New(rand.NewSource(seeds[i])))
	}
	return frames, labels
}

// shardGrads runs forward+backward for every clip of the microbatch, each
// shard on its own tape over the shared parameters: per-shard gradient
// sinks, per-shard BatchNorm collectors, one batched temporal pass per
// clip. Shards run concurrently on the worker pool unless the temporal
// model uses dropout (whose mask draws come from one shared RNG and must
// stay in clip order); either way every output slot is owned by exactly
// one shard and the results are independent of worker count.
func (t *Trainer) shardGrads(frames []*tensor.Tensor, labels [][]int, batch int) (losses []float64, sinks []autograd.GradSink, stats []*nn.BNStats) {
	k := len(frames)
	losses = make([]float64, k)
	sinks = make([]autograd.GradSink, k)
	stats = make([]*nn.BNStats, k)
	run := func(s int) {
		st := &nn.BNStats{}
		logits := t.det.ForwardClipStats(frames[s], batch, st)
		loss := decision.Loss(logits, labels[s], t.det.cfg.Loss, true)
		sink := make(autograd.GradSink, len(t.params))
		loss.BackwardInto(sink)
		losses[s] = loss.Scalar()
		sinks[s] = sink
		stats[s] = st
	}
	if k == 1 || t.det.cfg.Temporal.Dropout > 0 {
		for s := 0; s < k; s++ {
			run(s)
		}
		return losses, sinks, stats
	}
	var g parallel.Group
	for s := 0; s < k; s++ {
		s := s
		g.Go(func() { run(s) })
	}
	g.Wait()
	return losses, sinks, stats
}

// Step performs one optimisation step on a sampled microbatch of
// cfg.Microbatch clips and returns the mean loss. Per-clip forwards and
// backwards run data-parallel on the worker pool; the per-shard gradients
// are then tree-reduced in fixed clip order (independent of worker count),
// averaged, clipped, and applied as one AdamW update, and the deferred
// BatchNorm statistics are folded in clip order — so a step is bit-
// identical at any EDGEKG_WORKERS setting and matches the K-clip
// sequential-accumulation reference (StepSequential) to float rounding.
func (t *Trainer) Step(rng *rand.Rand, src ClipSource) float64 {
	k := t.microbatch()
	t.det.SetTraining(true)
	frames, labels := sampleClips(rng, src, k)
	losses, sinks, stats := t.shardGrads(frames, labels, src.Batch())
	// Deterministic epilogue, in fixed clip order.
	for _, st := range stats {
		st.Apply()
	}
	t.opt.ZeroGrad()
	autograd.ReduceSinks(t.params, sinks, 1/float64(k))
	if t.cfg.ClipNorm > 0 {
		optim.ClipGradNorm(t.params, t.cfg.ClipNorm)
	}
	t.opt.Step()
	t.steps++
	total := 0.0
	for _, l := range losses {
		total += l
	}
	return total / float64(k)
}

// StepSequential is the K-clip sequential-accumulation reference the
// equivalence suite pins Step against: the same microbatch (same master
// RNG consumption), processed one clip at a time on the global tape —
// classic Backward into the parameters' Grad fields, running statistics
// updated after each clip's forward — then gradients averaged, clipped
// and applied exactly as Step does. It returns the same mean loss.
func (t *Trainer) StepSequential(rng *rand.Rand, src ClipSource) float64 {
	k := t.microbatch()
	t.det.SetTraining(true)
	frames, labels := sampleClips(rng, src, k)
	t.opt.ZeroGrad()
	total := 0.0
	for s := 0; s < k; s++ {
		logits := t.det.ForwardClip(frames[s], src.Batch())
		loss := decision.Loss(logits, labels[s], t.det.cfg.Loss, true)
		loss.Backward()
		total += loss.Scalar()
	}
	optim.ScaleGrads(t.params, 1/float64(k))
	if t.cfg.ClipNorm > 0 {
		optim.ClipGradNorm(t.params, t.cfg.ClipNorm)
	}
	t.opt.Step()
	t.steps++
	return total / float64(k)
}

// Train runs the configured number of steps, invoking progress (if
// non-nil) with the step index and loss.
func (t *Trainer) Train(rng *rand.Rand, src ClipSource, progress func(step int, loss float64)) {
	for i := 0; i < t.cfg.Steps; i++ {
		loss := t.Step(rng, src)
		if progress != nil {
			progress(i, loss)
		}
	}
}

// StepsTaken returns how many optimisation steps have run.
func (t *Trainer) StepsTaken() int { return t.steps }

// EvalAUC scores frames in inference mode and returns the ROC-AUC of
// anomaly scores against per-frame binary labels — the paper's test
// metric.
func EvalAUC(det *Detector, frames *tensor.Tensor, labels []bool) (float64, error) {
	if frames.Rows() != len(labels) {
		return 0, fmt.Errorf("core: %d frames vs %d labels", frames.Rows(), len(labels))
	}
	scores := det.ScoreVideo(frames)
	return metrics.AUC(scores, labels)
}
