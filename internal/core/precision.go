package core

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// Precision selects the numeric width of the deployed scoring path.
// Training always runs at float64 — the reduced-precision path is
// inference-only (no tape), so precision is a deployment property, not a
// model property: checkpoints always store canonical float64 weights and
// a detector restored from disk scores bit-identically regardless of the
// precision it was serving at.
type Precision int

const (
	// PrecisionAuto defers to the EDGEKG_PRECISION environment variable
	// (f64|f32), defaulting to float64 — the zero value, so existing
	// configs keep the bit-exact double-precision path.
	PrecisionAuto Precision = iota
	// PrecisionF64 forces the full double-precision scoring path.
	PrecisionF64
	// PrecisionF32 routes scoring through the float32 inference engine:
	// frozen weights are narrowed once into cached snapshots and every
	// kernel (matmul, attention, GNN aggregation) runs on the f32 backend.
	PrecisionF32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case PrecisionF64:
		return "f64"
	case PrecisionF32:
		return "f32"
	default:
		return "auto"
	}
}

// ParsePrecision parses a precision name. The empty string means Auto.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return PrecisionAuto, nil
	case "f64", "float64", "64":
		return PrecisionF64, nil
	case "f32", "float32", "32":
		return PrecisionF32, nil
	default:
		return PrecisionAuto, fmt.Errorf("core: unknown precision %q (want auto, f64 or f32)", s)
	}
}

var (
	envPrecOnce sync.Once
	envPrec     Precision
)

// envPrecision reads EDGEKG_PRECISION exactly once per process — Resolve
// sits on the per-frame scoring path.
func envPrecision() Precision {
	envPrecOnce.Do(func() {
		p, err := ParsePrecision(os.Getenv("EDGEKG_PRECISION"))
		if err != nil || p == PrecisionAuto {
			p = PrecisionF64
		}
		envPrec = p
	})
	return envPrec
}

// Resolve maps Auto to the environment's choice (default f64) and returns
// explicit settings unchanged.
func (p Precision) Resolve() Precision {
	if p == PrecisionAuto {
		return envPrecision()
	}
	return p
}

// Precision returns the detector's configured scoring precision.
func (d *Detector) Precision() Precision { return d.cfg.Precision }

// SetPrecision switches the scoring precision for subsequent ScoreVideo
// calls. Clones taken afterwards inherit the setting (the config is
// copied on clone). Switching to f32 is lazy: snapshots are narrowed on
// the first reduced-precision forward.
func (d *Detector) SetPrecision(p Precision) { d.cfg.Precision = p }
