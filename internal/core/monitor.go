package core

import (
	"fmt"
	"sort"

	"edgekg/internal/tensor"
)

// Sample is one monitored data point: a frame, its anomaly score and its
// arrival sequence number.
type Sample struct {
	// Frame holds the raw (1 × pixDim) pixel features at the canonical
	// float64 width. It is nil when the owning monitor stores frames at
	// float32 — read frames through Pix, which handles both layouts.
	Frame *tensor.Tensor
	Score float64
	Seq   int

	// frame32 is the reduced-width frame storage (see Monitor.SetFrameWidth):
	// the retained window frames dominate per-stream resident memory, so a
	// float32 ring halves the bill for streams on the reduced-precision path.
	frame32 []float32
}

// Pix returns the sample's pixel frame at float64, materializing it from
// the narrowed storage when the monitor holds frames at float32. Float32
// values are exactly representable at float64, so a checkpoint written
// from narrowed samples restores them bit-exactly.
func (s Sample) Pix() *tensor.Tensor {
	if s.Frame != nil {
		return s.Frame
	}
	if s.frame32 == nil {
		return nil
	}
	data := make([]float64, len(s.frame32))
	for i, v := range s.frame32 {
		data[i] = float64(v)
	}
	return tensor.FromSlice(data, 1, len(data))
}

// memBytes returns the sample's resident frame bytes.
func (s Sample) memBytes() int64 {
	if s.Frame != nil {
		return int64(s.Frame.Size()) * 8
	}
	return int64(len(s.frame32)) * 4
}

// Monitor tracks the anomaly-score distribution over the most recent N
// data points and implements the pseudo-label selection rule of
// Sec. III-D: when the windowed mean has dropped relative to the mean at
// reference time t′ (Δm = m_t − m_t′ < 0), the top K = |Δm|·N recent
// scores are treated as anomalies.
//
// Two interpretations of t′ are supported. Sliding mode compares against
// the windowed mean refLag pushes ago and fires only during the
// transition itself. Anchored mode fixes t′ at the first full window
// after deployment (healthy operation) so Δm stays negative — and
// adaptation keeps engaging — for as long as the model remains degraded,
// annealing naturally as recovery drives the mean back up. The sustained
// recovery curves of Fig. 5 require the anchored reading.
type Monitor struct {
	n      int
	refLag int

	anchored  bool
	reference float64
	hasRef    bool

	buf   []Sample  // ring of the last n samples
	means []float64 // windowed mean history, one entry per Push
	seq   int

	// frameWidth selects the retained frames' storage width: F64 (the
	// zero value, canonical) or F32 for reduced-precision streams.
	frameWidth tensor.DType
}

// NewMonitor returns a sliding-reference monitor over windows of n
// samples comparing against the mean refLag pushes ago.
func NewMonitor(n, refLag int) (*Monitor, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: monitor window %d must be ≥2", n)
	}
	if refLag < 1 {
		return nil, fmt.Errorf("core: monitor reference lag %d must be ≥1", refLag)
	}
	return &Monitor{n: n, refLag: refLag}, nil
}

// NewAnchoredMonitor returns an anchored-reference monitor: t′ is frozen
// at the mean of the first full window (the post-deployment validation
// period the paper tunes t′ on).
func NewAnchoredMonitor(n int) (*Monitor, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: monitor window %d must be ≥2", n)
	}
	return &Monitor{n: n, refLag: 1, anchored: true}, nil
}

// Anchored reports the reference mode.
func (m *Monitor) Anchored() bool { return m.anchored }

// Reference returns the anchored reference mean (0 until established).
func (m *Monitor) Reference() float64 { return m.reference }

// SetReference overrides the anchored reference — callers can re-anchor
// after a planned mission change.
func (m *Monitor) SetReference(ref float64) {
	m.reference = ref
	m.hasRef = true
}

// N returns the window size.
func (m *Monitor) N() int { return m.n }

// SetFrameWidth selects the storage width of retained window frames: F64
// keeps pushed frames as-is; F32 narrows them on Push, halving the
// monitor's resident bytes (the dominant per-stream memory term) at the
// cost of float32 rounding on the frames adaptation later reads back —
// part of the documented reduced-precision drift. Samples already in the
// window are re-narrowed immediately. Other widths panic.
func (m *Monitor) SetFrameWidth(w tensor.DType) {
	if w != tensor.F64 && w != tensor.F32 {
		panic(fmt.Sprintf("core: monitor frame width %v unsupported (want F64 or F32)", w))
	}
	m.frameWidth = w
	if w == tensor.F32 {
		for i := range m.buf {
			m.buf[i] = m.narrow(m.buf[i])
		}
	}
}

// FrameWidth returns the retained frames' storage width.
func (m *Monitor) FrameWidth() tensor.DType { return m.frameWidth }

// narrow converts a sample to float32 frame storage.
func (m *Monitor) narrow(s Sample) Sample {
	if s.Frame == nil {
		return s
	}
	f := s.Frame.Data()
	s.frame32 = make([]float32, len(f))
	for i, v := range f {
		s.frame32[i] = float32(v)
	}
	s.Frame = nil
	return s
}

// Push records a scored frame.
func (m *Monitor) Push(frame *tensor.Tensor, score float64) {
	smp := Sample{Frame: frame, Score: score, Seq: m.seq}
	if m.frameWidth == tensor.F32 {
		smp = m.narrow(smp)
	}
	m.buf = append(m.buf, smp)
	m.seq++
	if len(m.buf) > m.n {
		m.buf = m.buf[1:]
	}
	m.means = append(m.means, m.mean())
	// Bound the mean history: only the last refLag+1 entries matter.
	if len(m.means) > m.refLag+1 {
		m.means = m.means[len(m.means)-m.refLag-1:]
	}
	if m.anchored && !m.hasRef && len(m.buf) == m.n {
		m.reference = m.mean()
		m.hasRef = true
	}
}

func (m *Monitor) mean() float64 {
	if len(m.buf) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range m.buf {
		s += x.Score
	}
	return s / float64(len(m.buf))
}

// Mean returns the current windowed mean m_t.
func (m *Monitor) Mean() float64 { return m.mean() }

// Ready reports whether the window is full and the t′ reference exists.
func (m *Monitor) Ready() bool {
	if m.anchored {
		return len(m.buf) == m.n && m.hasRef
	}
	return len(m.buf) == m.n && len(m.means) > m.refLag
}

// DeltaM returns Δm = m_t − m_t′. It is meaningful only when Ready.
func (m *Monitor) DeltaM() float64 {
	if !m.Ready() {
		return 0
	}
	cur := m.means[len(m.means)-1]
	if m.anchored {
		return cur - m.reference
	}
	ref := m.means[len(m.means)-1-m.refLag]
	return cur - ref
}

// K returns the pseudo-anomaly count K = |Δm|·N, zero when the mean has
// not dropped (Δm ≥ 0) or the monitor is not ready, clamped to [0, N].
func (m *Monitor) K() int {
	dm := m.DeltaM()
	if !m.Ready() || dm >= 0 {
		return 0
	}
	k := int(-dm * float64(m.n))
	if k < 1 {
		k = 1 // a detected drop always yields at least one pseudo-label
	}
	if k > m.n {
		k = m.n
	}
	return k
}

// TopK returns the K highest-scoring samples in the window, ordered by
// descending score (ties by recency). The returned slice is fresh.
func (m *Monitor) TopK() []Sample {
	k := m.K()
	if k == 0 {
		return nil
	}
	sorted := append([]Sample(nil), m.buf...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		return sorted[i].Seq > sorted[j].Seq
	})
	return sorted[:k]
}

// BottomK returns the k lowest-scoring samples (most confidently normal),
// used as the non-anomalous anchors of the adaptation loss.
func (m *Monitor) BottomK(k int) []Sample {
	if k <= 0 || len(m.buf) == 0 {
		return nil
	}
	if k > len(m.buf) {
		k = len(m.buf)
	}
	sorted := append([]Sample(nil), m.buf...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score < sorted[j].Score
		}
		return sorted[i].Seq > sorted[j].Seq
	})
	return sorted[:k]
}

// MemBytes estimates the monitor's resident bytes for the memory ledger.
// The retained window frames dominate: every pushed frame is held until it
// leaves the ring, so a full window costs N × frame size regardless of how
// small the rest of the stream state is.
func (m *Monitor) MemBytes() int64 {
	var b int64
	for _, s := range m.buf {
		b += s.memBytes()
	}
	return b + int64(len(m.means))*8
}

// Reset clears all state including any anchored reference.
func (m *Monitor) Reset() {
	m.buf = nil
	m.means = nil
	m.seq = 0
	m.reference = 0
	m.hasRef = false
}

// MonitorState is the monitor's complete mutable state in exportable
// form. Together with the construction parameters (window size, reference
// lag, mode) it determines every future monitor decision, so a checkpoint
// that round-trips it resumes the deployment's pseudo-label selection
// bit-exactly.
type MonitorState struct {
	N         int
	RefLag    int
	Anchored  bool
	Reference float64
	HasRef    bool
	Seq       int
	Samples   []Sample
	Means     []float64
}

// ExportState captures the monitor's full state. Bookkeeping slices are
// copied; sample frames are shared when held at float64 (they are
// immutable once pushed) and materialized to canonical float64 when the
// monitor stores them narrowed — exported state is width-independent, so
// checkpoints taken at f32 restore bit-exactly at either width.
func (m *Monitor) ExportState() MonitorState {
	samples := make([]Sample, len(m.buf))
	for i, s := range m.buf {
		samples[i] = Sample{Frame: s.Pix(), Score: s.Score, Seq: s.Seq}
	}
	return MonitorState{
		N:         m.n,
		RefLag:    m.refLag,
		Anchored:  m.anchored,
		Reference: m.reference,
		HasRef:    m.hasRef,
		Seq:       m.seq,
		Samples:   samples,
		Means:     append([]float64(nil), m.means...),
	}
}

// ImportState replaces the monitor's state with a previously exported one,
// including the construction parameters. It rejects state that could not
// have come from a valid monitor.
func (m *Monitor) ImportState(s MonitorState) error {
	if s.N < 2 {
		return fmt.Errorf("core: monitor state window %d must be ≥2", s.N)
	}
	if s.RefLag < 1 {
		return fmt.Errorf("core: monitor state reference lag %d must be ≥1", s.RefLag)
	}
	if len(s.Samples) > s.N {
		return fmt.Errorf("core: monitor state has %d samples for window %d", len(s.Samples), s.N)
	}
	for i, smp := range s.Samples {
		if smp.Frame == nil && smp.frame32 == nil {
			return fmt.Errorf("core: monitor state sample %d has no frame", i)
		}
	}
	m.n = s.N
	m.refLag = s.RefLag
	m.anchored = s.Anchored
	m.reference = s.Reference
	m.hasRef = s.HasRef
	m.seq = s.Seq
	m.buf = append([]Sample(nil), s.Samples...)
	if m.frameWidth == tensor.F32 {
		for i := range m.buf {
			m.buf[i] = m.narrow(m.buf[i])
		}
	}
	m.means = append([]float64(nil), s.Means...)
	return nil
}

// Clone returns an independent copy of the monitor's current state: the
// sample window, the bounded mean history and the reference. Sample frames
// are shared (they are immutable once pushed); all bookkeeping slices are
// fresh, so pushes into the original never affect the clone. The serving
// runtime snapshots the monitor this way when an adaptation round is
// dispatched asynchronously: the adapter selects pseudo-labels from the
// window as it stood at the trigger frame while scoring keeps pushing.
func (m *Monitor) Clone() *Monitor {
	c := &Monitor{
		n:          m.n,
		refLag:     m.refLag,
		anchored:   m.anchored,
		reference:  m.reference,
		hasRef:     m.hasRef,
		seq:        m.seq,
		frameWidth: m.frameWidth,
	}
	c.buf = append([]Sample(nil), m.buf...)
	c.means = append([]float64(nil), m.means...)
	return c
}
