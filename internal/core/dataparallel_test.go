package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/concept"
	"edgekg/internal/parallel"
	"edgekg/internal/tensor"
)

// maxParamDiff returns the largest absolute element difference across the
// two detectors' full parameter sets (weights + token banks).
func maxParamDiff(t *testing.T, a, b *Detector) float64 {
	t.Helper()
	pa := append(a.Params(), a.TokenParams()...)
	pb := append(b.Params(), b.TokenParams()...)
	if len(pa) != len(pb) {
		t.Fatalf("parameter count %d vs %d", len(pa), len(pb))
	}
	worst := 0.0
	for i := range pa {
		da, db := pa[i].V.Data.Data(), pb[i].V.Data.Data()
		if len(da) != len(db) {
			t.Fatalf("parameter %s size mismatch", pa[i].Name)
		}
		for j := range da {
			if d := math.Abs(da[j] - db[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// trainRig builds a rig plus a clip source from deterministic seeds, so
// two calls with the same seeds yield bit-identical fixtures.
func trainRig(t *testing.T, seed int64) (*testRig, ClipSource) {
	t.Helper()
	r := newRig(t, "Stealing", seed)
	src := r.clipSource(t, rand.New(rand.NewSource(seed+1000)), concept.Stealing, 6)
	return r, src
}

// TestTrainStepParallelMatchesSequential pins the data-parallel Step to
// the K-clip sequential-accumulation reference (StepSequential): same
// microbatch, per-clip gradients computed on concurrent shard tapes and
// tree-reduced versus accumulated one clip at a time on the global tape.
// Losses and every parameter must agree to ≤1e-12 for K ∈ {1,2,4} at
// worker counts {1,4}, with and without gradient clipping and token
// training — and the post-step inference scores (which read the BatchNorm
// running statistics both paths maintain) must agree too.
//
// For K ≤ 2 the fixed reduction tree is literally the left fold, so the
// two paths are bit-identical and the comparison runs over several steps.
// For K = 4 the tree ((g0+g1)+(g2+g3)) and the fold differ by one
// floating-point rounding per element; AdamW's curvature normalisation
// amplifies that over repeated steps (deterministically on both sides),
// so the ≤1e-12 contract is pinned per optimisation step.
func TestTrainStepParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		k           int
		workers     int
		clipNorm    float64
		trainTokens bool
		steps       int
	}{
		{k: 1, workers: 4, clipNorm: 5, trainTokens: true, steps: 3},
		{k: 2, workers: 1, clipNorm: 5, trainTokens: true, steps: 3},
		{k: 2, workers: 4, clipNorm: 0, trainTokens: true, steps: 3},
		{k: 4, workers: 4, clipNorm: 5, trainTokens: false, steps: 1},
		{k: 4, workers: 4, clipNorm: 0, trainTokens: true, steps: 1},
	}
	const tol = 1e-12
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("k%d_w%d_clip%v_tok%v", tc.k, tc.workers, tc.clipNorm, tc.trainTokens)
		t.Run(name, func(t *testing.T) {
			mk := func() (*testRig, ClipSource, *Trainer) {
				r, src := trainRig(t, 41)
				cfg := DefaultTrainConfig()
				cfg.Microbatch = tc.k
				cfg.ClipNorm = tc.clipNorm
				cfg.TrainTokens = tc.trainTokens
				return r, src, NewTrainer(r.det, cfg)
			}
			rPar, srcPar, trPar := mk()
			rSeq, srcSeq, trSeq := mk()

			prev := parallel.SetWorkers(tc.workers)
			defer parallel.SetWorkers(prev)
			rngPar := rand.New(rand.NewSource(7))
			rngSeq := rand.New(rand.NewSource(7))
			for s := 0; s < tc.steps; s++ {
				lp := trPar.Step(rngPar, srcPar)
				ls := trSeq.StepSequential(rngSeq, srcSeq)
				if math.Abs(lp-ls) > tol {
					t.Fatalf("step %d: parallel loss %v vs sequential %v", s, lp, ls)
				}
			}
			if d := maxParamDiff(t, rPar.det, rSeq.det); d > tol {
				t.Fatalf("max parameter difference %v > %v", d, tol)
			}

			// Inference scores read the running BatchNorm statistics, so
			// this also pins the deferred-update order to the sequential
			// per-clip updates.
			rng := rand.New(rand.NewSource(8))
			frames := tensor.New(6, rPar.space.PixDim())
			for i := 0; i < frames.Rows(); i++ {
				copy(frames.Row(i), rPar.gen.Frame(rng, concept.Stealing).Data())
			}
			sp := rPar.det.ScoreVideo(frames)
			ss := rSeq.det.ScoreVideo(frames)
			for i := range sp {
				if math.Abs(sp[i]-ss[i]) > tol {
					t.Fatalf("score[%d] %v vs %v", i, sp[i], ss[i])
				}
			}
		})
	}
}

// TestTrainStepDeterministicAcrossWorkers pins the concurrency contract of
// the data-parallel trainer: with a fixed seed the loss trajectory and the
// final parameters are bit-identical no matter how many pool workers
// execute the shards — the shard count and reduction tree, not the
// scheduling, define every floating-point summation order.
func TestTrainStepDeterministicAcrossWorkers(t *testing.T) {
	const steps = 4
	run := func(workers int) ([]float64, *Detector) {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		r, src := trainRig(t, 43)
		cfg := DefaultTrainConfig()
		cfg.Microbatch = 4
		tr := NewTrainer(r.det, cfg)
		rng := rand.New(rand.NewSource(9))
		losses := make([]float64, steps)
		for s := range losses {
			losses[s] = tr.Step(rng, src)
		}
		return losses, r.det
	}

	wantLoss, wantDet := run(1)
	for _, w := range []int{2, 8} {
		gotLoss, gotDet := run(w)
		for s := range wantLoss {
			if gotLoss[s] != wantLoss[s] {
				t.Fatalf("workers=%d: step %d loss %v != sequential %v", w, s, gotLoss[s], wantLoss[s])
			}
		}
		if d := maxParamDiff(t, gotDet, wantDet); d != 0 {
			t.Fatalf("workers=%d: final params differ by %v from sequential", w, d)
		}
	}
}

// adaptFixture builds a deployed rig, an adapter with the given shard
// count, and a monitor primed with a deterministic mean drop.
func adaptFixture(t *testing.T, seed int64, shards int) (*testRig, *Adapter, *Monitor) {
	t.Helper()
	r := newRig(t, "Stealing", seed)
	cfg := DefaultAdaptConfig()
	cfg.SkipLossBelow = 0 // force the update path
	cfg.Shards = shards
	adapter, err := NewAdapter(r.det, cfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	frng := rand.New(rand.NewSource(seed + 2))
	for i := 0; i < 16; i++ {
		mon.Push(r.gen.Frame(frng, concept.Stealing).Reshape(1, r.space.PixDim()), 0.9)
	}
	for i := 0; i < 16; i++ {
		mon.Push(r.gen.Frame(frng, concept.Robbery).Reshape(1, r.space.PixDim()), 0.1)
	}
	return r, adapter, mon
}

// tokenBankState flattens every token bank into one comparable slice set.
func tokenBankState(det *Detector) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, p := range det.TokenParams() {
		out = append(out, p.V.Data.Clone())
	}
	return out
}

// TestAdapterShardedMatchesSingleTape pins the adapter's data-parallel
// pseudo-label step to the single-tape epoch: sharded per-row-range losses
// weighted by row fraction and tree-reduced must move the token banks to
// within 1e-12 of the full-batch reference.
func TestAdapterShardedMatchesSingleTape(t *testing.T) {
	_, a1, m1 := adaptFixture(t, 61, 1)
	_, a4, m4 := adaptFixture(t, 61, 4)

	rep1, err := a1.Step(m1)
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := a4.Step(m4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Triggered || !rep4.Triggered {
		t.Fatalf("fixture did not trigger adaptation (%v, %v)", rep1.Triggered, rep4.Triggered)
	}
	if math.Abs(rep1.Loss-rep4.Loss) > 1e-12 {
		t.Errorf("loss %v (single tape) vs %v (sharded)", rep1.Loss, rep4.Loss)
	}
	s1 := tokenBankState(a1.det)
	s4 := tokenBankState(a4.det)
	for i := range s1 {
		if !tensor.AllClose(s1[i], s4[i], 1e-12) {
			t.Fatalf("token bank %d diverged beyond 1e-12", i)
		}
	}
}

// TestAdapterStepDeterministicAcrossWorkers checks the sharded adaptation
// step is bit-identical across pool sizes: the shard count is part of the
// configuration, not the machine.
func TestAdapterStepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (AdaptReport, []*tensor.Tensor) {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		_, a, m := adaptFixture(t, 62, 4)
		rep, err := a.Step(m)
		if err != nil {
			t.Fatal(err)
		}
		return rep, tokenBankState(a.det)
	}
	wantRep, wantBanks := run(1)
	if !wantRep.Triggered {
		t.Fatal("fixture did not trigger adaptation")
	}
	for _, w := range []int{2, 8} {
		gotRep, gotBanks := run(w)
		if gotRep.Loss != wantRep.Loss {
			t.Fatalf("workers=%d: loss %v != %v", w, gotRep.Loss, wantRep.Loss)
		}
		for i := range wantBanks {
			if !tensor.AllClose(gotBanks[i], wantBanks[i], 0) {
				t.Fatalf("workers=%d: token bank %d not bit-identical", w, i)
			}
		}
	}
}

// TestTrainerTrainProgress covers Trainer.Train's loop and callback
// contract, which previously had no direct test.
func TestTrainerTrainProgress(t *testing.T) {
	r, src := trainRig(t, 44)
	cfg := DefaultTrainConfig()
	cfg.Steps = 5
	cfg.Microbatch = 2
	tr := NewTrainer(r.det, cfg)
	var steps []int
	tr.Train(rand.New(rand.NewSource(10)), src, func(step int, loss float64) {
		steps = append(steps, step)
		if math.IsNaN(loss) {
			t.Fatalf("step %d: NaN loss", step)
		}
	})
	if len(steps) != cfg.Steps {
		t.Fatalf("progress called %d times, want %d", len(steps), cfg.Steps)
	}
	for i, s := range steps {
		if s != i {
			t.Fatalf("progress steps %v not sequential", steps)
		}
	}
	if tr.StepsTaken() != cfg.Steps {
		t.Errorf("StepsTaken = %d, want %d", tr.StepsTaken(), cfg.Steps)
	}
}

// TestEvalAUCValidation covers EvalAUC's error branch and the happy path.
func TestEvalAUCValidation(t *testing.T) {
	r, _ := trainRig(t, 45)
	rng := rand.New(rand.NewSource(11))
	frames := tensor.RandN(rng, 1, 4, r.space.PixDim())
	if _, err := EvalAUC(r.det, frames, []bool{true}); err == nil {
		t.Error("mismatched label count accepted")
	}
	vids := r.gen.TaskVideos(rng, concept.Stealing, 2, 2)
	evalFrames := tensor.New(0, 0)
	var labels []bool
	{
		total := 0
		for _, v := range vids {
			total += v.NumFrames()
		}
		evalFrames = tensor.New(total, r.space.PixDim())
		row := 0
		for _, v := range vids {
			for i := 0; i < v.NumFrames(); i++ {
				copy(evalFrames.Row(row), v.Frames.Row(i))
				labels = append(labels, v.FrameAnomalous(i))
				row++
			}
		}
	}
	auc, err := EvalAUC(r.det, evalFrames, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0 || auc > 1 {
		t.Errorf("AUC = %v outside [0,1]", auc)
	}
}

// TestAdapterStepMonitorNotReady covers Adapter.Step's monitor gate: an
// unfilled monitor must produce an untriggered report and leave the token
// banks untouched.
func TestAdapterStepMonitorNotReady(t *testing.T) {
	r := newRig(t, "Stealing", 46)
	cfg := DefaultAdaptConfig()
	adapter, err := NewAdapter(r.det, cfg, rand.New(rand.NewSource(47)))
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := NewMonitor(8, 4)
	mon.Push(tensor.Ones(1, r.space.PixDim()), 0.5) // far from full
	before := tokenBankState(r.det)
	rep, err := adapter.Step(mon)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triggered {
		t.Error("unready monitor triggered adaptation")
	}
	after := tokenBankState(r.det)
	for i := range before {
		if !tensor.AllClose(before[i], after[i], 0) {
			t.Fatal("unready round modified token embeddings")
		}
	}
}
