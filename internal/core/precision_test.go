package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"edgekg/internal/concept"
	"edgekg/internal/dataset"
	"edgekg/internal/tensor"
)

func TestParsePrecision(t *testing.T) {
	cases := []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"", PrecisionAuto, true},
		{"auto", PrecisionAuto, true},
		{"f64", PrecisionF64, true},
		{"Float64", PrecisionF64, true},
		{"f32", PrecisionF32, true},
		{"32", PrecisionF32, true},
		{"bf16", PrecisionAuto, false},
	}
	for _, c := range cases {
		got, err := ParsePrecision(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if PrecisionF64.Resolve() != PrecisionF64 || PrecisionF32.Resolve() != PrecisionF32 {
		t.Error("explicit precisions must resolve to themselves")
	}
}

// TestScoreVideoF32DriftBudget scores a 200-frame drift schedule at both
// widths and pins the divergence: float32 scores must track float64
// within an absolute budget, and the frame ranking the monitor consumes
// must be preserved to high rank correlation.
func TestScoreVideoF32DriftBudget(t *testing.T) {
	r := newRig(t, "Stealing", 11)
	r.det.Deploy()
	// The f64 leg must stay f64 even under an EDGEKG_PRECISION=f32 run.
	r.det.SetPrecision(PrecisionF64)
	rng := rand.New(rand.NewSource(12))

	// A drift schedule: normal frames with a gradually mixed-in anomalous
	// segment, so scores sweep through the graded range rather than
	// saturating at the extremes. Longer than the engine's 256-window
	// chunk so the chunk seam rides under the same budget.
	const n = 300
	pix := tensor.RandN(rng, 1, n, r.space.PixDim())
	vids := r.gen.TaskVideos(rng, concept.Stealing, 1, 1)
	for i := 0; i < n; i++ {
		src := vids[i%len(vids)].Frames
		alpha := float64(i) / n
		row := pix.Row(i)
		srow := src.Row(i % src.Rows())
		for j := range row {
			row[j] = (1-alpha)*row[j] + alpha*srow[j]
		}
	}

	f64s := r.det.ScoreVideo(pix)
	f32s := r.det.ScoreVideoF32(pix)
	if len(f32s) != n {
		t.Fatalf("f32 scores length %d, want %d", len(f32s), n)
	}
	var maxAbs, sumAbs float64
	for i := range f64s {
		d := math.Abs(f64s[i] - f32s[i])
		sumAbs += d
		if d > maxAbs {
			maxAbs = d
		}
	}
	const budget = 2e-3
	if maxAbs > budget {
		t.Errorf("max |f64-f32| score drift %.2e exceeds budget %.0e", maxAbs, budget)
	}
	if mean := sumAbs / n; mean > budget/4 {
		t.Errorf("mean |f64-f32| score drift %.2e exceeds %.0e", mean, budget/4)
	}
	if rho := spearman(f64s, f32s); rho < 0.999 {
		t.Errorf("rank correlation f64 vs f32 = %.6f, want ≥ 0.999", rho)
	}
}

// TestScoreVideoF32AUC pins that the reduced-precision path preserves the
// detection quality metric: AUC at f32 matches AUC at f64 within ε on a
// synthetic eval set.
func TestScoreVideoF32AUC(t *testing.T) {
	r := newRig(t, "Stealing", 13)
	r.det.Deploy()
	// Pin the f64 leg so an EDGEKG_PRECISION=f32 run still compares widths.
	r.det.SetPrecision(PrecisionF64)
	rng := rand.New(rand.NewSource(14))
	vids := r.gen.TaskVideos(rng, concept.Stealing, 3, 3)
	frames, labels := dataset.FlattenEval(vids)

	auc64, err := EvalAUC(r.det, frames, labels)
	if err != nil {
		t.Fatal(err)
	}
	r.det.SetPrecision(PrecisionF32)
	auc32, err := EvalAUC(r.det, frames, labels)
	if err != nil {
		t.Fatal(err)
	}
	r.det.SetPrecision(PrecisionAuto)
	if d := math.Abs(auc64 - auc32); d > 1e-3 {
		t.Errorf("AUC drift |%.6f - %.6f| = %.2e exceeds 1e-3", auc64, auc32, d)
	}
}

// TestScoreVideoPrecisionDispatch pins that ScoreVideo routes through the
// float32 engine when the config asks for it, and that the default stays
// bit-identical to the float64 path.
func TestScoreVideoPrecisionDispatch(t *testing.T) {
	r := newRig(t, "Stealing", 15)
	r.det.Deploy()
	rng := rand.New(rand.NewSource(16))
	pix := tensor.RandN(rng, 1, 12, r.space.PixDim())

	r.det.SetPrecision(PrecisionF64)
	base := r.det.ScoreVideo(pix)
	r.det.SetPrecision(PrecisionF32)
	viaConfig := r.det.ScoreVideo(pix)
	direct := r.det.ScoreVideoF32(pix)
	r.det.SetPrecision(PrecisionF64)
	back := r.det.ScoreVideo(pix)

	for i := range base {
		if viaConfig[i] != direct[i] {
			t.Fatalf("frame %d: config-dispatched f32 %.17g != direct f32 %.17g", i, viaConfig[i], direct[i])
		}
		if base[i] != back[i] {
			t.Fatalf("frame %d: f64 path changed after precision round trip: %.17g != %.17g", i, base[i], back[i])
		}
	}
}

// TestF32SnapshotInvalidation pins that returning to training mode drops
// the cached float32 snapshots: scores after a weight change must reflect
// the new weights, not the stale narrowing.
func TestF32SnapshotInvalidation(t *testing.T) {
	r := newRig(t, "Stealing", 17)
	r.det.Deploy()
	rng := rand.New(rand.NewSource(18))
	pix := tensor.RandN(rng, 1, 8, r.space.PixDim())

	before := r.det.ScoreVideoF32(pix)

	// Perturb trainable weights through the training-mode door.
	r.det.UnfreezeAll()
	for _, p := range r.det.Params() {
		d := p.V.Data.Data()
		for i := range d {
			d[i] += 0.05
		}
	}
	r.det.Deploy()

	after := r.det.ScoreVideoF32(pix)
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("f32 scores unchanged after weight perturbation — stale snapshot served")
	}
}

// spearman computes the Spearman rank correlation of two equal-length
// score slices (average ranks for ties are unnecessary here — scores are
// continuous).
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	n := float64(len(a))
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	r := make([]float64, len(x))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}
