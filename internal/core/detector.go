// Package core assembles the paper's system and implements its primary
// contribution. Detector is the MissionGNN-style pipeline of Fig. 2(B):
// frozen joint embedding → per-KG hierarchical GNN → transformer temporal
// model → linear+softmax decision head. Monitor tracks the deployed
// anomaly-score distribution and selects the top-K recent scores as
// pseudo-anomalies with K = |Δm|·N (Sec. III-D). Adapter performs the
// continuous KG adaptive learning loop of Fig. 4: token-embedding-only
// updates, per-node L2 convergence tracking, and node pruning + creation
// on divergence.
package core

import (
	"fmt"
	"math/rand"

	"edgekg/internal/autograd"
	"edgekg/internal/decision"
	"edgekg/internal/embed"
	"edgekg/internal/gnn"
	"edgekg/internal/kg"
	"edgekg/internal/nn"
	"edgekg/internal/parallel"
	"edgekg/internal/temporal"
	"edgekg/internal/tensor"
)

// Config assembles a Detector.
type Config struct {
	// GNN configures every per-KG hierarchical GNN.
	GNN gnn.Config
	// Temporal configures the short-term temporal model; InputDim is
	// overwritten with the concatenated reasoning width.
	Temporal temporal.Config
	// NumClasses is n+1 (normal + anomaly types) for the decision head.
	NumClasses int
	// Loss carries the λ_spa / λ_smt weights.
	Loss decision.LossConfig
	// ScoreTemperature calibrates the frozen head at deployment: scores
	// use softmax(logits/T). Training drives logits far apart, so raw
	// float64 softmax saturates to exactly 0/1 — monotone (AUC is
	// unaffected) but fatal for the monitor, whose top-K selection and
	// Δm detection need graded scores. 0 means 1 (no scaling).
	ScoreTemperature float64
	// Precision selects the scoring width: the zero value (Auto) defers
	// to EDGEKG_PRECISION and defaults to the bit-exact float64 path.
	Precision Precision
}

// DefaultConfig returns the paper's model shape for a given class count.
func DefaultConfig(numClasses int) Config {
	return Config{
		GNN:              gnn.DefaultConfig(),
		Temporal:         temporal.Config{InnerDim: 128, Heads: 8, Layers: 1, Window: 8},
		NumClasses:       numClasses,
		Loss:             decision.DefaultLossConfig(),
		ScoreTemperature: 4,
	}
}

// Detector is the assembled anomaly detection model.
type Detector struct {
	space *embed.Space
	gnns  []*gnn.Model
	temp  *temporal.Model
	head  *decision.Head
	cfg   Config
}

// NewDetector builds a detector reasoning over the given mission KGs.
func NewDetector(rng *rand.Rand, space *embed.Space, graphs []*kg.Graph, cfg Config) (*Detector, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("core: detector needs at least one mission KG")
	}
	d := &Detector{space: space, cfg: cfg}
	reasonDim := 0
	for _, g := range graphs {
		m, err := gnn.NewModel(rng, g, space, cfg.GNN)
		if err != nil {
			return nil, fmt.Errorf("core: GNN for %q: %w", g.Mission, err)
		}
		d.gnns = append(d.gnns, m)
		reasonDim += m.Width()
	}
	tcfg := cfg.Temporal
	tcfg.InputDim = reasonDim
	tm, err := temporal.New(rng, tcfg)
	if err != nil {
		return nil, fmt.Errorf("core: temporal model: %w", err)
	}
	d.temp = tm
	head, err := decision.NewHead(rng, reasonDim, cfg.NumClasses)
	if err != nil {
		return nil, fmt.Errorf("core: decision head: %w", err)
	}
	d.head = head
	return d, nil
}

// CloneShared returns a detector that deep-copies every per-KG mutable
// piece of state — each mission graph's structure and token bank — while
// sharing the frozen backbone: the joint embedding space, the GNN
// dense/BatchNorm layers, the temporal model and the decision head. The
// clone scores bit-identically to the receiver, and its token banks and
// graphs can be adapted (including node pruning/creation) without
// touching the receiver or sibling clones.
//
// The shared backbone must remain frozen and in inference mode while any
// clone is live: training the receiver (or a clone) would mutate layer
// weights, BatchNorm statistics and mode flags every clone reads. The
// serving runtime deploys the backbone first and then takes one clone per
// stream, which is exactly that contract.
func (d *Detector) CloneShared() (*Detector, error) {
	c := &Detector{space: d.space, temp: d.temp, head: d.head, cfg: d.cfg}
	c.gnns = make([]*gnn.Model, len(d.gnns))
	for i, m := range d.gnns {
		cm, err := m.CloneShared()
		if err != nil {
			// Release the half-built clone: models built so far are
			// discarded wholesale (eager clones hold no marks on their
			// source), never returned partially wired.
			c.gnns = nil
			return nil, fmt.Errorf("core: clone GNN %d: %w", i, err)
		}
		c.gnns[i] = cm
	}
	return c, nil
}

// CloneCOW is CloneShared with lazy copy-on-write semantics: the clone
// aliases every mission graph's storage and token-bank tensors until they
// are actually mutated (see gnn.Model.CloneCOW), so an unadapted clone
// costs O(nodes) wrappers instead of a full deep copy — the enabler for
// hundreds of streams per process. Scoring through the clone is
// bit-identical to CloneShared, under the same frozen-backbone contract.
//
// A mid-loop failure releases the partially-built clone: shared marks the
// earlier per-GNN clones placed on the receiver are rolled back, so the
// receiver neither leaks half-clones nor pays spurious COW faults later.
func (d *Detector) CloneCOW() (*Detector, error) {
	c := &Detector{space: d.space, temp: d.temp, head: d.head, cfg: d.cfg}
	c.gnns = make([]*gnn.Model, len(d.gnns))
	for i, m := range d.gnns {
		cm, err := m.CloneCOW()
		if err != nil {
			for j := 0; j < i; j++ {
				c.gnns[j].DiscardClone()
			}
			c.gnns = nil
			return nil, fmt.Errorf("core: clone GNN %d: %w", i, err)
		}
		c.gnns[i] = cm
	}
	return c, nil
}

// DiscardClone rolls back the COW marks this clone placed on its source —
// call it on an unused CloneCOW result that will never be served (e.g. a
// server constructor failing after cloning some streams), so the source
// does not keep paying copy-on-write faults for a dead alias. No-op on
// eager clones.
func (d *Detector) DiscardClone() {
	for _, m := range d.gnns {
		m.DiscardClone()
	}
}

// DetectorMem is the detector's per-stream resident-bytes breakdown:
// privately owned graph/bank state versus state COW-shared with the
// backbone or sibling clones (not charged to the stream).
type DetectorMem struct {
	BankOwned, BankShared   int64
	GraphOwned, GraphShared int64
}

// Owned returns the bytes privately owned by this detector clone.
func (dm DetectorMem) Owned() int64 { return dm.BankOwned + dm.GraphOwned }

// Mem aggregates the per-GNN memory footprint for the serving ledger.
func (d *Detector) Mem() DetectorMem {
	var dm DetectorMem
	for _, m := range d.gnns {
		mm := m.Mem()
		dm.BankOwned += mm.BankOwned
		dm.BankShared += mm.BankShared
		dm.GraphOwned += mm.GraphOwned
		dm.GraphShared += mm.GraphShared
	}
	return dm
}

// Space returns the frozen joint embedding model.
func (d *Detector) Space() *embed.Space { return d.space }

// Graphs returns the mission KGs in model order.
func (d *Detector) Graphs() []*kg.Graph {
	out := make([]*kg.Graph, len(d.gnns))
	for i, m := range d.gnns {
		out[i] = m.Graph()
	}
	return out
}

// GNN returns the i-th per-KG model.
func (d *Detector) GNN(i int) *gnn.Model { return d.gnns[i] }

// NumGNNs returns the mission-KG count.
func (d *Detector) NumGNNs() int { return len(d.gnns) }

// Temporal returns the short-term temporal model.
func (d *Detector) Temporal() *temporal.Model { return d.temp }

// Head returns the decision head.
func (d *Detector) Head() *decision.Head { return d.head }

// ReasoningDim returns D = Σ_i D_{d+2} — the concatenated multi-KG
// reasoning embedding width.
func (d *Detector) ReasoningDim() int {
	dim := 0
	for _, m := range d.gnns {
		dim += m.Width()
	}
	return dim
}

// Window returns the temporal window length T.
func (d *Detector) Window() int { return d.temp.Window() }

// EmbedFrames encodes raw pixel frames (rows) and reasons over every KG,
// returning the concatenated per-frame reasoning embeddings f_t
// (rows × ReasoningDim). Gradients flow into the token banks (and GNN
// weights when unfrozen).
//
// The per-mission GNN forwards run concurrently on the shared worker pool
// (one task per KG): the models share only the read-only semantic input,
// each builds its own slice of the computation graph, and the deferred
// Backward remains single-threaded, so the result — values and gradients —
// is identical to the sequential loop.
func (d *Detector) EmbedFrames(pix *tensor.Tensor) *autograd.Value {
	return d.EmbedFramesStats(pix, nil)
}

// EmbedFramesStats is EmbedFrames with deferred BatchNorm statistics: in
// training mode with a non-nil collector the per-layer batch statistics
// are recorded into stats instead of mutating the running statistics in
// place. The data-parallel trainer runs one EmbedFramesStats per shard
// concurrently — shared parameters, per-shard tapes and collectors — and
// applies the collectors in shard order after the join, reproducing the
// sequential update order exactly.
func (d *Detector) EmbedFramesStats(pix *tensor.Tensor, stats *nn.BNStats) *autograd.Value {
	sem := autograd.Constant(d.space.EncodeImageBatch(pix))
	if len(d.gnns) == 1 {
		return d.gnns[0].ForwardStats(sem, stats)
	}
	outs := make([]*autograd.Value, len(d.gnns))
	parallel.For(len(d.gnns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			outs[i] = d.gnns[i].ForwardStats(sem, stats)
		}
	})
	return autograd.ConcatCols(outs...)
}

// ForwardClip runs the full pipeline over a contiguous clip of
// window+batch−1 frames, producing logits for the batch overlapping
// windows. Frame embeddings are computed once and shared across windows,
// which is both faster and exactly what a streaming deployment sees.
func (d *Detector) ForwardClip(clip *tensor.Tensor, batch int) *autograd.Value {
	return d.ForwardClipStats(clip, batch, nil)
}

// ForwardClipStats is ForwardClip with deferred BatchNorm statistics (see
// EmbedFramesStats); it is the shard forward of the data-parallel trainer.
func (d *Detector) ForwardClipStats(clip *tensor.Tensor, batch int, stats *nn.BNStats) *autograd.Value {
	t := d.temp.Window()
	if clip.Rows() != t+batch-1 {
		panic(fmt.Sprintf("core: clip has %d rows, want window+batch-1 = %d", clip.Rows(), t+batch-1))
	}
	emb := d.EmbedFramesStats(clip, stats) // (t+batch-1 × D)
	// One Gather stacks every overlapping window row-wise; its scatter-add
	// backward accumulates each frame's gradient over all windows it
	// appears in, exactly as the per-window SliceRows graph did. The
	// stacked matrix then makes a single batched temporal pass.
	rows := make([]int, batch*t)
	for k := 0; k < batch; k++ {
		for i := 0; i < t; i++ {
			rows[k*t+i] = k + i
		}
	}
	wins := autograd.GatherRows(emb, rows)
	return d.head.Logits(d.temp.ForwardBatch(wins, batch))
}

// ScoreVideo scores every frame of a video in inference mode, returning
// per-frame anomaly scores pA. The first window−1 frames are scored with
// a left-padded window (first frame repeated), matching a causal stream
// warm-up.
//
// Frame windows are scored in batched temporal passes: the window matrix
// is assembled concurrently on the shared worker pool (each task fills
// disjoint rows), and the batched attention/matmul kernels fan out over
// the same pool inside each ForwardBatch call. Long videos are processed
// in fixed-size window chunks so the temporal stage's stacked windows,
// attention weights and activations stay bounded by the chunk size (the
// per-frame embedding matrix remains O(video length) — EmbedFrames runs
// over the whole video first). Each window's block is computed exactly as
// in the sequential per-window loop — and identically at any chunking —
// so the output is deterministic at any worker count.
//
// ScoreVideo is safe for concurrent callers over one frozen, deployed
// detector: the forward path is read-only (the per-model bank and layout
// caches are mutex-guarded), and the SetTraining re-assertion below stays
// a pure read when the model is already in inference mode. The contract
// is that nobody concurrently trains the model or toggles it back to
// training mode — which Deploy establishes and the serving runtime
// preserves.
func (d *Detector) ScoreVideo(frames *tensor.Tensor) []float64 {
	if d.cfg.Precision.Resolve() == PrecisionF32 {
		return d.ScoreVideoF32(frames)
	}
	d.SetTraining(false)
	n := frames.Rows()
	if n == 0 {
		return nil
	}
	t := d.temp.Window()
	emb := d.EmbedFrames(frames).Data // inference: raw data is fine
	invT := 1.0
	if d.cfg.ScoreTemperature > 0 {
		invT = 1 / d.cfg.ScoreTemperature
	}
	// 256 windows ≈ a few MB of stacked activations at the paper's model
	// shape — large enough to amortise the batched pass, small enough for
	// edge memory budgets.
	const chunk = 256
	scores := make([]float64, n)
	for base := 0; base < n; base += chunk {
		b := n - base
		if b > chunk {
			b = chunk
		}
		wins := tensor.New(b*t, emb.Cols())
		parallel.For(b, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for k := 0; k < t; k++ {
					src := base + i - (t - 1) + k
					if src < 0 {
						src = 0
					}
					copy(wins.Row(i*t+k), emb.Row(src))
				}
			}
		})
		out := d.temp.ForwardBatch(autograd.Constant(wins), b)
		probs := autograd.SoftmaxRows(autograd.Scale(d.head.Logits(out), invT))
		for i := 0; i < b; i++ {
			scores[base+i] = 1 - probs.Data.At2(i, 0)
		}
	}
	return scores
}

// ScoreTemperature returns the deployment calibration temperature (≥1 in
// practice; 1 when unset).
func (d *Detector) ScoreTemperature() float64 {
	if d.cfg.ScoreTemperature > 0 {
		return d.cfg.ScoreTemperature
	}
	return 1
}

// SetTraining toggles BatchNorm/Dropout mode across the pipeline.
// Entering training mode also drops the decision head's float32 weight
// snapshot (the GNN and temporal models drop their own); the re-assert of
// inference mode stays a pure read for concurrent scorers.
func (d *Detector) SetTraining(t bool) {
	if t {
		d.head.InvalidateF32()
	}
	for _, m := range d.gnns {
		m.SetTraining(t)
	}
	d.temp.SetTraining(t)
}

// Params returns every weight of the trainable models (GNN dense/BN,
// temporal, head) excluding the token banks.
func (d *Detector) Params() []nn.Param {
	var ps []nn.Param
	for i, m := range d.gnns {
		ps = append(ps, nn.Prefix(fmt.Sprintf("gnn%d", i), m.Params())...)
	}
	ps = append(ps, nn.Prefix("temporal", d.temp.Params())...)
	ps = append(ps, nn.Prefix("head", d.head.Params())...)
	return ps
}

// TokenParams returns the KG token-bank parameters across all graphs —
// the only weights deployment-time adaptation updates.
func (d *Detector) TokenParams() []nn.Param {
	var ps []nn.Param
	for i, m := range d.gnns {
		ps = append(ps, nn.Prefix(fmt.Sprintf("gnn%d", i), m.TokenParams())...)
	}
	return ps
}

// paramsModule adapts a parameter list to nn.Module for Freeze/Unfreeze.
type paramsModule []nn.Param

func (p paramsModule) Params() []nn.Param { return p }

// Deploy freezes the entire model — weights and token banks — and
// switches to inference mode: the state of Fig. 2(C) "Froze Model" before
// adaptation begins.
func (d *Detector) Deploy() {
	nn.Freeze(paramsModule(d.Params()))
	nn.Freeze(paramsModule(d.TokenParams()))
	d.SetTraining(false)
}

// EnableAdaptation unfreezes only the token banks ("Unfroze Model" in
// Fig. 2(C) applies solely to the KG token embeddings).
func (d *Detector) EnableAdaptation() {
	nn.Freeze(paramsModule(d.Params()))
	nn.Unfreeze(paramsModule(d.TokenParams()))
	d.SetTraining(false)
}

// UnfreezeAll restores full trainability (pre-deployment training mode).
func (d *Detector) UnfreezeAll() {
	nn.Unfreeze(paramsModule(d.Params()))
	nn.Unfreeze(paramsModule(d.TokenParams()))
	d.SetTraining(true)
}
