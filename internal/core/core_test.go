package core

import (
	"math/rand"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/dataset"
	"edgekg/internal/decision"
	"edgekg/internal/embed"
	"edgekg/internal/gnn"
	"edgekg/internal/kg"
	"edgekg/internal/kggen"
	"edgekg/internal/oracle"
	"edgekg/internal/temporal"
	"edgekg/internal/tensor"
)

// testRig bundles the small end-to-end fixture shared by core tests.
type testRig struct {
	space *embed.Space
	gen   *dataset.Generator
	det   *Detector
	graph *kg.Graph
}

func tinyConfig() Config {
	return Config{
		GNN:              gnn.Config{Width: 8},
		Temporal:         temporal.Config{InnerDim: 16, Heads: 2, Layers: 1, Window: 4},
		NumClasses:       2,
		Loss:             decision.DefaultLossConfig(),
		ScoreTemperature: 4,
	}
}

func newRig(t *testing.T, mission string, seed int64) *testRig {
	t.Helper()
	corpus := concept.Builtin().Concepts()
	tok := bpe.Train(corpus, 600)
	space, err := embed.NewSpace(tok, corpus, embed.Config{Dim: 16, PixDim: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	llm := oracle.NewSim(concept.Builtin(), rng, oracle.Config{EdgeProb: 0.9})
	opts := kggen.Options{Depth: 2, InitialFanout: 5, Fanout: 4, MaxCorrectionIters: 3, Tokenize: tok.Encode}
	g, _, err := kggen.Generate(llm, mission, opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(rng, space, []*kg.Graph{g}, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dataset.DefaultConfig()
	dcfg.FramesPerVideo = 24
	gen, err := dataset.NewGenerator(space, concept.Builtin(), dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{space: space, gen: gen, det: det, graph: g}
}

func (r *testRig) clipSource(t *testing.T, rng *rand.Rand, cls concept.Class, batch int) *dataset.ClipSource {
	t.Helper()
	vids := r.gen.TaskVideos(rng, cls, 4, 4)
	src, err := dataset.NewClipSource(vids, r.det.Window(), batch)
	if err != nil {
		t.Fatal(err)
	}
	return src.WithLabelMap(dataset.BinaryLabelMap)
}

func (r *testRig) evalAUC(t *testing.T, rng *rand.Rand, cls concept.Class) float64 {
	t.Helper()
	vids := r.gen.TaskVideos(rng, cls, 3, 3)
	frames, labels := dataset.FlattenEval(vids)
	auc, err := EvalAUC(r.det, frames, labels)
	if err != nil {
		t.Fatal(err)
	}
	return auc
}

func TestDetectorAssemblyShapes(t *testing.T) {
	r := newRig(t, "Stealing", 1)
	if r.det.NumGNNs() != 1 {
		t.Errorf("gnns = %d", r.det.NumGNNs())
	}
	if r.det.ReasoningDim() != 8 {
		t.Errorf("reasoning dim = %d", r.det.ReasoningDim())
	}
	if r.det.Window() != 4 {
		t.Errorf("window = %d", r.det.Window())
	}
	rng := rand.New(rand.NewSource(2))
	clip := tensor.RandN(rng, 1, 4+3-1, r.space.PixDim())
	logits := r.det.ForwardClip(clip, 3)
	if logits.Data.Rows() != 3 || logits.Data.Cols() != 2 {
		t.Errorf("logits shape %v", logits.Shape())
	}
}

func TestDetectorValidation(t *testing.T) {
	r := newRig(t, "Stealing", 3)
	rng := rand.New(rand.NewSource(3))
	if _, err := NewDetector(rng, r.space, nil, tinyConfig()); err == nil {
		t.Error("no graphs accepted")
	}
}

func TestMultiKGConcatenation(t *testing.T) {
	r := newRig(t, "Stealing", 4)
	rng := rand.New(rand.NewSource(4))
	llm := oracle.NewSim(concept.Builtin(), rng, oracle.Config{EdgeProb: 0.9})
	tok := r.space.Tokenizer()
	opts := kggen.Options{Depth: 2, InitialFanout: 4, Fanout: 3, MaxCorrectionIters: 3, Tokenize: tok.Encode}
	g2, _, err := kggen.Generate(llm, "Robbery", opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(rng, r.space, []*kg.Graph{r.graph, g2}, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if det.ReasoningDim() != 16 {
		t.Errorf("multi-KG reasoning dim = %d, want 16", det.ReasoningDim())
	}
	frames := tensor.RandN(rng, 1, 2, r.space.PixDim())
	emb := det.EmbedFrames(frames)
	if emb.Data.Cols() != 16 {
		t.Errorf("embed cols = %d", emb.Data.Cols())
	}
}

func TestScoreVideoLengthAndRange(t *testing.T) {
	r := newRig(t, "Stealing", 5)
	rng := rand.New(rand.NewSource(5))
	v := r.gen.Video(rng, concept.Stealing)
	scores := r.det.ScoreVideo(v.Frames)
	if len(scores) != v.NumFrames() {
		t.Fatalf("scores %d for %d frames", len(scores), v.NumFrames())
	}
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("score[%d] = %v outside [0,1]", i, s)
		}
	}
}

func TestDeployFreezesEverything(t *testing.T) {
	r := newRig(t, "Stealing", 6)
	r.det.Deploy()
	rng := rand.New(rand.NewSource(6))
	frames := tensor.RandN(rng, 1, 1, r.space.PixDim())
	out := autograd.Sum(r.det.EmbedFrames(frames))
	out.Backward()
	for _, p := range append(r.det.Params(), r.det.TokenParams()...) {
		if p.V.Grad != nil {
			t.Errorf("deployed parameter %s received gradient", p.Name)
		}
	}
}

func TestEnableAdaptationUnfreezesOnlyTokens(t *testing.T) {
	r := newRig(t, "Stealing", 7)
	r.det.EnableAdaptation()
	rng := rand.New(rand.NewSource(7))
	clip := tensor.RandN(rng, 1, 4, r.space.PixDim())
	emb := r.det.EmbedFrames(clip)
	win := r.det.Temporal().ForwardSeq(emb)
	logits := r.det.Head().Logits(win)
	autograd.Sum(logits).Backward()
	for _, p := range r.det.Params() {
		if p.V.Grad != nil {
			t.Errorf("frozen weight %s received gradient during adaptation", p.Name)
		}
	}
	got := false
	for _, p := range r.det.TokenParams() {
		if p.V.Grad != nil {
			got = true
		}
	}
	if !got {
		t.Error("no token bank received gradient")
	}
}

func TestTrainerReducesLoss(t *testing.T) {
	r := newRig(t, "Stealing", 8)
	rng := rand.New(rand.NewSource(8))
	src := r.clipSource(t, rng, concept.Stealing, 8)
	cfg := DefaultTrainConfig()
	cfg.Steps = 60
	tr := NewTrainer(r.det, cfg)
	var first, last float64
	for i := 0; i < cfg.Steps; i++ {
		loss := tr.Step(rng, src)
		if i < 5 {
			first += loss / 5
		}
		if i >= cfg.Steps-5 {
			last += loss / 5
		}
	}
	if tr.StepsTaken() != 60 {
		t.Errorf("steps = %d", tr.StepsTaken())
	}
	if last >= first {
		t.Errorf("loss did not decrease: first≈%v last≈%v", first, last)
	}
}

func TestMonitorSelectionRule(t *testing.T) {
	mon, err := NewMonitor(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	frame := tensor.Ones(1, 4)
	// Fill with high scores: mean stable, no trigger.
	for i := 0; i < 20; i++ {
		mon.Push(frame, 0.9)
	}
	if !mon.Ready() {
		t.Fatal("monitor should be ready")
	}
	if mon.K() != 0 {
		t.Errorf("stable mean triggered K=%d", mon.K())
	}
	// Mean drops: scores fall to 0.1.
	for i := 0; i < 10; i++ {
		mon.Push(frame, 0.1)
	}
	dm := mon.DeltaM()
	if dm >= 0 {
		t.Fatalf("Δm = %v, want negative", dm)
	}
	k := mon.K()
	wantK := int(-dm * 10)
	if wantK < 1 {
		wantK = 1
	}
	if k != wantK {
		t.Errorf("K = %d, want |Δm|·N = %d", k, wantK)
	}
	top := mon.TopK()
	if len(top) != k {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Error("TopK not sorted by score")
		}
	}
}

func TestMonitorRisingMeanNeverTriggers(t *testing.T) {
	mon, err := NewMonitor(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	frame := tensor.Ones(1, 4)
	for i := 0; i < 30; i++ {
		mon.Push(frame, float64(i)*0.01)
		if mon.K() != 0 {
			t.Fatalf("rising mean triggered at push %d", i)
		}
	}
}

func TestMonitorBottomKAndReset(t *testing.T) {
	mon, _ := NewMonitor(5, 2)
	frame := tensor.Ones(1, 4)
	for _, s := range []float64{0.5, 0.1, 0.9, 0.3, 0.7} {
		mon.Push(frame, s)
	}
	low := mon.BottomK(2)
	if len(low) != 2 || low[0].Score != 0.1 || low[1].Score != 0.3 {
		t.Errorf("BottomK = %+v", low)
	}
	if got := mon.BottomK(99); len(got) != 5 {
		t.Errorf("BottomK clamp = %d", len(got))
	}
	mon.Reset()
	if mon.Ready() || len(mon.TopK()) != 0 {
		t.Error("reset incomplete")
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(1, 1); err == nil {
		t.Error("window 1 accepted")
	}
	if _, err := NewMonitor(5, 0); err == nil {
		t.Error("lag 0 accepted")
	}
}

func TestAdapterNoTriggerNoChange(t *testing.T) {
	r := newRig(t, "Stealing", 9)
	rng := rand.New(rand.NewSource(9))
	r.det.Deploy()
	adapter, err := NewAdapter(r.det, DefaultAdaptConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := NewMonitor(6, 3)
	frame := tensor.RandN(rng, 1, 1, r.space.PixDim())
	for i := 0; i < 12; i++ {
		mon.Push(frame, 0.5) // flat mean
	}
	before := r.det.GNN(0).Tokens().Snapshot(r.graph.NodesAtLevel(1)[0].ID)
	rep, err := adapter.Step(mon)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triggered {
		t.Error("flat mean triggered adaptation")
	}
	after := r.det.GNN(0).Tokens().Snapshot(r.graph.NodesAtLevel(1)[0].ID)
	if !tensor.AllClose(before, after, 0) {
		t.Error("untriggered adaptation modified token embeddings")
	}
}

func TestAdapterUpdatesOnlyTokens(t *testing.T) {
	r := newRig(t, "Stealing", 10)
	rng := rand.New(rand.NewSource(10))
	adapter, err := NewAdapter(r.det, DefaultAdaptConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	weightsBefore := make([]*tensor.Tensor, 0)
	for _, p := range r.det.Params() {
		weightsBefore = append(weightsBefore, p.V.Data.Clone())
	}
	mon, _ := NewMonitor(8, 4)
	// High scores then a drop → trigger.
	for i := 0; i < 8; i++ {
		mon.Push(tensor.RandN(rng, 1, 1, r.space.PixDim()), 0.9)
	}
	for i := 0; i < 8; i++ {
		mon.Push(tensor.RandN(rng, 1, 1, r.space.PixDim()), 0.1)
	}
	tokBefore := r.det.GNN(0).Tokens().Snapshot(r.graph.NodesAtLevel(1)[0].ID)
	rep, err := adapter.Step(mon)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Triggered || rep.K == 0 {
		t.Fatalf("expected trigger, report %+v", rep)
	}
	for i, p := range r.det.Params() {
		if !tensor.AllClose(p.V.Data, weightsBefore[i], 0) {
			t.Errorf("frozen weight %s changed during adaptation", p.Name)
		}
	}
	tokAfter := r.det.GNN(0).Tokens().Snapshot(r.graph.NodesAtLevel(1)[0].ID)
	if tensor.AllClose(tokBefore, tokAfter, 0) {
		t.Error("token embeddings did not move")
	}
	if len(rep.NodeDistances[0]) == 0 {
		t.Error("no node distances recorded")
	}
}

func TestAdapterPrunesOnForcedDivergence(t *testing.T) {
	r := newRig(t, "Stealing", 11)
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultAdaptConfig()
	cfg.Patience = 1
	cfg.LR = 2.0 // absurdly high: guarantees growing update distances
	cfg.Epochs = 2
	adapter, err := NewAdapter(r.det, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := NewMonitor(8, 4)
	nodesBefore := r.graph.NumNodes()
	pruned := 0
	for round := 0; round < 6; round++ {
		for i := 0; i < 8; i++ {
			mon.Push(tensor.RandN(rng, 1, 1, r.space.PixDim()), 0.9)
		}
		for i := 0; i < 8; i++ {
			mon.Push(tensor.RandN(rng, 1, 1, r.space.PixDim()), 0.05)
		}
		rep, err := adapter.Step(mon)
		if err != nil {
			t.Fatal(err)
		}
		pruned += len(rep.Pruned)
		if len(rep.Pruned) != len(rep.Created) {
			t.Errorf("pruned %d but created %d", len(rep.Pruned), len(rep.Created))
		}
	}
	if pruned == 0 {
		t.Fatal("forced divergence never pruned a node")
	}
	if issues := r.graph.Validate(true); len(issues) != 0 {
		t.Fatalf("graph invalid after prune/create churn: %v", issues)
	}
	if r.graph.NumNodes() != nodesBefore {
		t.Errorf("node count drifted: %d → %d (replace should preserve)", nodesBefore, r.graph.NumNodes())
	}
	// The pipeline still runs end to end after structural churn.
	v := r.gen.Video(rng, concept.Stealing)
	scores := r.det.ScoreVideo(v.Frames)
	if len(scores) != v.NumFrames() {
		t.Error("scoring broken after churn")
	}
}

func TestAdapterConfigValidation(t *testing.T) {
	r := newRig(t, "Stealing", 12)
	rng := rand.New(rand.NewSource(12))
	bad := DefaultAdaptConfig()
	bad.LR = 0
	if _, err := NewAdapter(r.det, bad, rng); err == nil {
		t.Error("lr 0 accepted")
	}
	bad = DefaultAdaptConfig()
	bad.Patience = 0
	if _, err := NewAdapter(r.det, bad, rng); err == nil {
		t.Error("patience 0 accepted")
	}
}

// TestTrainDetectShiftAdapt is the end-to-end integration test of the
// paper's full protocol at miniature scale: train on Stealing, verify
// detection; shift the trend to Robbery (weak shift), verify degradation;
// adapt via the monitor loop; verify recovery relative to the static KG.
func TestTrainDetectShiftAdapt(t *testing.T) {
	r := newRig(t, "Stealing", 13)
	rng := rand.New(rand.NewSource(13))

	// Phase 1: pre-deployment training on Stealing.
	src := r.clipSource(t, rng, concept.Stealing, 8)
	cfg := DefaultTrainConfig()
	cfg.Steps = 250
	tr := NewTrainer(r.det, cfg)
	tr.Train(rng, src, nil)

	aucStealing := r.evalAUC(t, rng, concept.Stealing)
	if aucStealing < 0.75 {
		t.Fatalf("trained detector AUC on Stealing = %v, want ≥0.75", aucStealing)
	}

	// Phase 2: the trend shifts to Robbery; the static model degrades.
	aucRobberyStatic := r.evalAUC(t, rng, concept.Robbery)
	if aucRobberyStatic >= aucStealing {
		t.Logf("note: shift did not degrade AUC (%v vs %v)", aucRobberyStatic, aucStealing)
	}

	// Phase 3: continuous adaptation on a Robbery-dominated stream.
	r.det.Deploy()
	acfg := DefaultAdaptConfig()
	acfg.Patience = 4
	adapter, err := NewAdapter(r.det, acfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := NewMonitor(32, 16)
	sched := dataset.Schedule{Phases: []dataset.Phase{
		{Class: concept.Stealing, Steps: 64},
		{Class: concept.Robbery, Steps: 512},
	}}
	stream, err := dataset.NewStream(r.gen, sched, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	triggered := 0
	for i := 0; i < 320; i++ {
		pix, _, _ := stream.Next()
		frame := pix.Reshape(1, r.space.PixDim())
		scores := r.det.ScoreVideo(frame)
		mon.Push(frame, scores[0])
		if i > 0 && i%32 == 0 {
			rep, err := adapter.Step(mon)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Triggered {
				triggered++
			}
		}
	}
	if triggered == 0 {
		t.Fatal("adaptation never triggered across the trend shift")
	}

	aucRobberyAdapted := r.evalAUC(t, rng, concept.Robbery)
	t.Logf("AUC stealing=%.3f robbery(static)=%.3f robbery(adapted)=%.3f triggered=%d",
		aucStealing, aucRobberyStatic, aucRobberyAdapted, triggered)
	if aucRobberyAdapted < aucRobberyStatic-0.05 {
		t.Errorf("adaptation made things worse: %v → %v", aucRobberyStatic, aucRobberyAdapted)
	}
}
