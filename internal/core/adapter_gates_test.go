package core

import (
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/concept"
	"edgekg/internal/tensor"
)

func TestAnchoredMonitorReference(t *testing.T) {
	mon, err := NewAnchoredMonitor(4)
	if err != nil {
		t.Fatal(err)
	}
	if !mon.Anchored() {
		t.Fatal("not anchored")
	}
	frame := tensor.Ones(1, 2)
	for _, s := range []float64{0.8, 0.8, 0.8, 0.8} {
		mon.Push(frame, s)
	}
	if !mon.Ready() {
		t.Fatal("should be ready once window fills")
	}
	if math.Abs(mon.Reference()-0.8) > 1e-12 {
		t.Errorf("reference = %v, want 0.8", mon.Reference())
	}
	// Sustained degradation keeps Δm pinned to the anchored reference.
	for i := 0; i < 20; i++ {
		mon.Push(frame, 0.2)
		if i >= 4 && math.Abs(mon.DeltaM()+0.6) > 1e-9 {
			t.Fatalf("push %d: Δm = %v, want −0.6 sustained", i, mon.DeltaM())
		}
	}
	if mon.K() == 0 {
		t.Error("sustained drop must keep K > 0")
	}
	// Manual re-anchor.
	mon.SetReference(0.2)
	if mon.K() != 0 {
		t.Errorf("after re-anchor K = %d, want 0", mon.K())
	}
	mon.Reset()
	if mon.Reference() != 0 || mon.Ready() {
		t.Error("reset did not clear anchor")
	}
}

func TestAnchoredMonitorValidation(t *testing.T) {
	if _, err := NewAnchoredMonitor(1); err == nil {
		t.Error("window 1 accepted")
	}
}

func TestAdapterMinDropGate(t *testing.T) {
	r := newRig(t, "Stealing", 21)
	rng := rand.New(rand.NewSource(21))
	cfg := DefaultAdaptConfig()
	cfg.MinDrop = 0.5 // only catastrophic drops engage
	adapter, err := NewAdapter(r.det, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := NewMonitor(8, 4)
	frame := tensor.RandN(rng, 1, 1, r.space.PixDim())
	for i := 0; i < 8; i++ {
		mon.Push(frame, 0.6)
	}
	for i := 0; i < 8; i++ {
		mon.Push(frame, 0.4) // drop of 0.2 < MinDrop 0.5
	}
	rep, err := adapter.Step(mon)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triggered {
		t.Error("sub-threshold drop engaged adaptation")
	}
}

func TestAdapterMaxKFracCap(t *testing.T) {
	r := newRig(t, "Stealing", 22)
	rng := rand.New(rand.NewSource(22))
	cfg := DefaultAdaptConfig()
	cfg.MaxKFrac = 0.25
	cfg.SkipLossBelow = 0 // do not skip; we want the update path
	adapter, err := NewAdapter(r.det, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := NewMonitor(16, 8)
	for i := 0; i < 16; i++ {
		mon.Push(tensor.RandN(rng, 1, 1, r.space.PixDim()), 0.95)
	}
	for i := 0; i < 16; i++ {
		mon.Push(tensor.RandN(rng, 1, 1, r.space.PixDim()), 0.05)
	}
	// Raw K would be ≈14; the adapter must consume at most 4.
	if mon.K() <= 4 {
		t.Fatalf("precondition failed: monitor K = %d", mon.K())
	}
	rep, err := adapter.Step(mon)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Triggered {
		t.Fatal("expected trigger")
	}
	// The report carries the monitor's K; the cap governs consumption,
	// which we can only observe indirectly — the loss must be finite and
	// the step must not panic with a mismatched batch.
	if rep.K != mon.K() {
		t.Errorf("report K = %d, want monitor K %d", rep.K, mon.K())
	}
}

func TestAdapterSkipLossGate(t *testing.T) {
	r := newRig(t, "Stealing", 23)
	rng := rand.New(rand.NewSource(23))
	cfg := DefaultAdaptConfig()
	cfg.SkipLossBelow = 1e9 // everything is "already satisfied"
	adapter, err := NewAdapter(r.det, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := NewMonitor(8, 4)
	for i := 0; i < 8; i++ {
		mon.Push(tensor.RandN(rng, 1, 1, r.space.PixDim()), 0.9)
	}
	for i := 0; i < 8; i++ {
		mon.Push(tensor.RandN(rng, 1, 1, r.space.PixDim()), 0.1)
	}
	before := r.det.GNN(0).Tokens().Snapshot(r.graph.NodesAtLevel(1)[0].ID)
	rep, err := adapter.Step(mon)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triggered {
		t.Error("loss gate did not skip")
	}
	after := r.det.GNN(0).Tokens().Snapshot(r.graph.NodesAtLevel(1)[0].ID)
	if !tensor.AllClose(before, after, 0) {
		t.Error("skipped round still modified tokens")
	}
}

func TestScoreTemperatureMonotone(t *testing.T) {
	r := newRig(t, "Stealing", 24)
	rng := rand.New(rand.NewSource(24))
	v := r.gen.Video(rng, concept.Stealing)
	scores := r.det.ScoreVideo(v.Frames)
	// Temperature must not saturate scores to exact 0/1 everywhere.
	graded := 0
	for _, s := range scores {
		if s > 1e-9 && s < 1-1e-9 {
			graded++
		}
	}
	if graded == 0 {
		t.Error("all scores saturated despite temperature")
	}
	if r.det.ScoreTemperature() != 4 {
		t.Errorf("temperature = %v", r.det.ScoreTemperature())
	}
}

func TestAdapterRenormalizationPreservesRowNorms(t *testing.T) {
	r := newRig(t, "Stealing", 25)
	rng := rand.New(rand.NewSource(25))
	cfg := DefaultAdaptConfig()
	cfg.SkipLossBelow = 0
	adapter, err := NewAdapter(r.det, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	id := r.graph.NodesAtLevel(1)[0].ID
	normsBefore := rowNorms(r.det.GNN(0).Tokens().Bank(id).Data)
	mon, _ := NewMonitor(8, 4)
	for i := 0; i < 8; i++ {
		mon.Push(tensor.RandN(rng, 1, 1, r.space.PixDim()), 0.9)
	}
	for i := 0; i < 8; i++ {
		mon.Push(tensor.RandN(rng, 1, 1, r.space.PixDim()), 0.1)
	}
	rep, err := adapter.Step(mon)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Triggered {
		t.Fatalf("adaptation round did not trigger: with SkipLossBelow=0 and a split high/low-score window the step must fire (loss=%v)", rep.Loss)
	}
	normsAfter := rowNorms(r.det.GNN(0).Tokens().Bank(id).Data)
	for i := range normsBefore {
		if math.Abs(normsBefore[i]-normsAfter[i]) > 1e-9 {
			t.Errorf("row %d norm drifted: %v → %v", i, normsBefore[i], normsAfter[i])
		}
	}
}

func rowNorms(m *tensor.Tensor) []float64 {
	out := make([]float64, m.Rows())
	for i := range out {
		s := 0.0
		for _, v := range m.Row(i) {
			s += v * v
		}
		out[i] = math.Sqrt(s)
	}
	return out
}
