package core

import (
	"fmt"
	"math"
	"math/rand"

	"edgekg/internal/autograd"
	"edgekg/internal/kg"
	"edgekg/internal/nn"
	"edgekg/internal/optim"
	"edgekg/internal/parallel"
	"edgekg/internal/tensor"
)

// AdaptConfig controls the continuous KG adaptive learning loop.
type AdaptConfig struct {
	// LR is the token-embedding learning rate.
	LR float64
	// Epochs is how many gradient steps each adaptation round applies to
	// the selected samples.
	Epochs int
	// NormalAnchors is how many low-score window samples are pulled
	// toward score 0 alongside the top-K pulled toward 1; it regularises
	// token updates against degenerate "everything is anomalous"
	// solutions.
	NormalAnchors int
	// Patience is the number of consecutive increases of a node's update
	// distance before it is declared diverging and pruned. Patience 1 is
	// the paper's literal rule; the default of 3 tolerates single noisy
	// steps (Sec. 5 of DESIGN.md).
	Patience int
	// EdgeProb is the probability of each feasible random edge when a
	// replacement node is created (Fig. 4C).
	EdgeProb float64
	// CreatedTokens is the number of random token embeddings a created
	// node receives.
	CreatedTokens int
	// SemanticPull couples each token row's task-gradient magnitude to a
	// rotation toward the mean pseudo-anomaly embedding. The paper's
	// 1024-dimensional joint space lets input-space alignment emerge from
	// task gradients alone; this repository's miniature space loses that
	// rank through the frozen dense layers, and the pull restores the
	// "tokens drift toward the new anomaly's concepts" behaviour that
	// Fig. 6 visualises. 0 disables it.
	SemanticPull float64
	// MinDrop gates adaptation: a round only engages when the windowed
	// mean has dropped by more than this amount (Δm < −MinDrop). It
	// suppresses pseudo-label churn in steady state, where score noise
	// would otherwise trigger spurious token updates.
	MinDrop float64
	// MaxKFrac caps the pseudo-anomalies consumed per round at this
	// fraction of the monitor window. K = |Δm|·N can overshoot the true
	// anomaly count after a large mean drop; labelling normal frames as
	// anomalies inverts scores, which inflates |Δm| further — a runaway.
	// The cap keeps selection precision-first. 0 disables the cap.
	MaxKFrac float64
	// SkipLossBelow abandons a round whose selection loss is already
	// below this value: the pseudo-labels are satisfied and further
	// updates would only inject label noise into a recovered model.
	// 0 disables the gate.
	SkipLossBelow float64
	// Shards splits each adaptation epoch's selected-sample batch into
	// this many contiguous row shards whose forward+backward passes run
	// concurrently on the worker pool, with per-shard gradient sinks
	// tree-reduced in fixed shard order before the optimiser step. The
	// shard count — not the worker count — defines the floating-point
	// summation order, so results are bit-identical at any EDGEKG_WORKERS
	// setting. ≤1 keeps the single-tape sequential epoch.
	Shards int
}

// DefaultAdaptConfig returns the adaptation settings used by the
// experiment suite.
func DefaultAdaptConfig() AdaptConfig {
	return AdaptConfig{
		LR:            0.02,
		Epochs:        2,
		NormalAnchors: 8,
		Patience:      3,
		EdgeProb:      0.5,
		CreatedTokens: 2,
		SemanticPull:  0.2,
		MinDrop:       0.02,
		MaxKFrac:      0.25,
		SkipLossBelow: 0.08,
		Shards:        4,
	}
}

// AdaptReport records what one adaptation round did.
type AdaptReport struct {
	// Triggered is false when the monitor saw no mean drop (K = 0) and
	// nothing was updated.
	Triggered bool
	// K is the pseudo-anomaly count selected by the monitor.
	K int
	// DeltaM is the mean shift that triggered selection.
	DeltaM float64
	// Loss is the final adaptation loss over the selected samples.
	Loss float64
	// NodeDistances maps graph index → node → L2 update distance.
	NodeDistances []map[kg.NodeID]float64
	// Pruned and Created list structural changes per graph.
	Pruned  []kg.NodeID
	Created []kg.NodeID
}

// Adapter performs continuous KG adaptive learning on a deployed
// detector. Construct it after Detector.EnableAdaptation; it owns the
// token-embedding optimiser and the per-node convergence trackers.
//
// After every optimiser step each token row is rescaled to its original
// norm: the joint space is directional (word vectors are unit), so
// adaptation should rotate embeddings toward new concepts rather than
// inflate them — unconstrained ascent grows magnitudes, which distorts
// both the Euclidean convergence test and interpretable retrieval.
type Adapter struct {
	det *Detector
	cfg AdaptConfig
	rng *rand.Rand

	opt *optim.AdamW
	// params caches the token-bank value set the optimiser manages; it is
	// rebuilt alongside the optimiser whenever the KG structure changes.
	params   []*autograd.Value
	trackers []map[kg.NodeID]*convTracker
	rowNorms []map[kg.NodeID][]float64
	created  int
}

// convTracker follows one node's update-distance sequence (Fig. 4A→4B
// decision). A node whose distance grows incStreak ≥ patience times in a
// row is diverging.
type convTracker struct {
	lastDist  float64
	hasLast   bool
	incStreak int
}

// NewAdapter prepares the detector for adaptation (freezing everything
// but token banks) and returns the adapter.
func NewAdapter(det *Detector, cfg AdaptConfig, rng *rand.Rand) (*Adapter, error) {
	if cfg.LR <= 0 || cfg.Epochs < 1 {
		return nil, fmt.Errorf("core: adapt config lr %v epochs %d invalid", cfg.LR, cfg.Epochs)
	}
	if cfg.Patience < 1 {
		return nil, fmt.Errorf("core: patience %d must be ≥1", cfg.Patience)
	}
	det.EnableAdaptation()
	a := &Adapter{det: det, cfg: cfg, rng: rng}
	a.rebuildOptimizer()
	a.trackers = make([]map[kg.NodeID]*convTracker, det.NumGNNs())
	a.rowNorms = make([]map[kg.NodeID][]float64, det.NumGNNs())
	for i := range a.trackers {
		a.trackers[i] = make(map[kg.NodeID]*convTracker)
		a.rowNorms[i] = make(map[kg.NodeID][]float64)
	}
	for gi, m := range det.gnns {
		for _, id := range m.Tokens().NodeIDs() {
			a.rowNorms[gi][id] = bankRowNorms(m.Tokens().Bank(id).Data)
		}
	}
	return a, nil
}

// bankRowNorms records each row's Euclidean norm.
func bankRowNorms(bank *tensor.Tensor) []float64 {
	out := make([]float64, bank.Rows())
	for i := range out {
		s := 0.0
		for _, v := range bank.Row(i) {
			s += v * v
		}
		out[i] = math.Sqrt(s)
	}
	return out
}

// renormalize rescales every token row back to its recorded norm. Rows
// already at their target norm are skipped outright: the skip is bit-exact
// (cur is computed by the same code that recorded the norm, so an
// untouched row reproduces it to the last bit and scale is exactly 1) and
// it keeps renormalization write-free on banks the optimizer left alone —
// which is what preserves their copy-on-write sharing across rounds.
func (a *Adapter) renormalize() {
	for gi, m := range a.det.gnns {
		for _, id := range m.Tokens().NodeIDs() {
			norms, ok := a.rowNorms[gi][id]
			if !ok {
				continue
			}
			bv := m.Tokens().Bank(id)
			bank := bv.Data
			for r := 0; r < bank.Rows() && r < len(norms); r++ {
				row := bank.Row(r)
				s := 0.0
				for _, v := range row {
					s += v * v
				}
				cur := math.Sqrt(s)
				if cur < 1e-12 || norms[r] == 0 {
					continue
				}
				scale := norms[r] / cur
				if scale == 1 {
					continue
				}
				// First real write to a COW-shared page: take a private
				// copy and re-fetch the row from the new tensor.
				if bv.EnsurePrivate() {
					bank = bv.Data
					row = bank.Row(r)
				}
				for j := range row {
					row[j] *= scale
				}
			}
		}
	}
}

func (a *Adapter) rebuildOptimizer() {
	cfg := optim.AdamWConfig{LR: a.cfg.LR, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 0}
	a.params = nn.Values(a.det.TokenParams())
	a.opt = optim.NewAdamW(a.params, cfg)
}

// Step runs one adaptation round against the monitor's current window:
// select top-K as pseudo-anomalies (plus NormalAnchors low-score frames
// as normals), update token embeddings only, test every node's update
// distance for divergence, and prune + re-create diverging nodes.
func (a *Adapter) Step(mon *Monitor) (AdaptReport, error) {
	// Adaptation operates on the frozen, inference-mode pipeline
	// (EnableAdaptation sets this up), and epochStep's concurrent shard
	// forwards rely on it: a training-mode forward would mutate shared
	// BatchNorm running statistics from every shard. Re-assert the mode in
	// case a caller toggled training since construction.
	a.det.SetTraining(false)
	rep := AdaptReport{DeltaM: mon.DeltaM(), K: mon.K()}
	rep.NodeDistances = make([]map[kg.NodeID]float64, a.det.NumGNNs())
	for i := range rep.NodeDistances {
		rep.NodeDistances[i] = make(map[kg.NodeID]float64)
	}
	if !mon.Ready() || rep.K == 0 || rep.DeltaM >= -a.cfg.MinDrop {
		return rep, nil
	}
	rep.Triggered = true

	positives := mon.TopK()
	if a.cfg.MaxKFrac > 0 {
		if maxK := int(a.cfg.MaxKFrac * float64(mon.N())); maxK >= 1 && len(positives) > maxK {
			positives = positives[:maxK]
		}
	}
	negatives := mon.BottomK(a.cfg.NormalAnchors)
	frames := make([]*tensor.Tensor, 0, len(positives)+len(negatives))
	targets := make([]float64, 0, len(positives)+len(negatives))
	for _, s := range positives {
		frames = append(frames, s.Pix())
		targets = append(targets, 1)
	}
	for _, s := range negatives {
		frames = append(frames, s.Pix())
		targets = append(targets, 0)
	}
	batch := stackFrames(frames)

	// Loss gate: if the selected pseudo-labels are already satisfied, the
	// model has recovered for this regime — adapting further would only
	// fit selection noise.
	if a.cfg.SkipLossBelow > 0 {
		probe := autograd.Scale(a.forwardFrames(batch), 1/a.det.ScoreTemperature())
		if autograd.BinaryScoreLoss(probe.Detach(), targets).Scalar() < a.cfg.SkipLossBelow {
			rep.Triggered = false
			return rep, nil
		}
	}

	// Snapshot token banks before the update ("old token embeddings").
	before := a.snapshot()

	// The semantic pull anchors on the *contrast* between pseudo-anomalies
	// and normal anchors: the shared scene background cancels, leaving the
	// direction of the new anomaly's distinguishing concepts.
	var pullDir *tensor.Tensor
	if a.cfg.SemanticPull > 0 && len(positives) > 0 {
		meanOf := func(samples []Sample) *tensor.Tensor {
			acc := tensor.New(a.det.space.Dim())
			for _, s := range samples {
				pix := s.Pix()
				sem := a.det.space.EncodeImage(pix.Reshape(pix.Size()))
				tensor.AddInPlace(acc, sem)
			}
			return tensor.ScaleInPlace(acc, 1/float64(len(samples)))
		}
		dir := meanOf(positives)
		if len(negatives) > 0 {
			dir = tensor.Sub(dir, meanOf(negatives))
		}
		pullDir = tensor.Normalize(dir)
	}

	invT := 1 / a.det.ScoreTemperature()
	for e := 0; e < a.cfg.Epochs; e++ {
		epochBefore := a.snapshot()
		rep.Loss = a.epochStep(batch, targets, invT)
		if pullDir != nil {
			a.applySemanticPull(epochBefore, pullDir)
		}
		a.renormalize()
	}

	// Convergence test per node (Fig. 4): L2 distance between the old and
	// updated token embeddings; an increasing sequence marks divergence.
	for gi, m := range a.det.gnns {
		bank := m.Tokens()
		for _, id := range bank.NodeIDs() {
			old, ok := before[gi][id]
			if !ok {
				continue
			}
			dist := tensor.L2Distance(old, bank.Bank(id).Data)
			rep.NodeDistances[gi][id] = dist
			tr := a.trackers[gi][id]
			if tr == nil {
				tr = &convTracker{}
				a.trackers[gi][id] = tr
			}
			if tr.hasLast && dist > tr.lastDist {
				tr.incStreak++
			} else {
				tr.incStreak = 0
			}
			tr.lastDist = dist
			tr.hasLast = true

			if tr.incStreak >= a.cfg.Patience {
				pruned, createdID, err := a.replaceNode(gi, id)
				if err != nil {
					return rep, err
				}
				rep.Pruned = append(rep.Pruned, pruned)
				rep.Created = append(rep.Created, createdID)
			}
		}
	}
	return rep, nil
}

// epochStep applies one token-embedding gradient step over the selected
// samples, data-parallel across cfg.Shards contiguous row shards: each
// shard forwards its rows through its own tape (the pipeline is frozen and
// in inference mode, so shards share only the token-bank leaves), computes
// its loss scaled by its row fraction — so the shard losses sum to the
// full-batch mean loss — and backpropagates into a per-shard gradient
// sink. The sinks are tree-reduced in fixed shard order before one AdamW
// step, making the result independent of worker count. It returns the
// total (mean-equivalent) loss.
func (a *Adapter) epochStep(batch *tensor.Tensor, targets []float64, invT float64) float64 {
	n := batch.Rows()
	shards := a.cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	losses := make([]float64, shards)
	sinks := make([]autograd.GradSink, shards)
	run := func(i int) {
		lo, hi := shardRange(n, shards, i)
		logits := autograd.Scale(a.forwardFrames(tensor.SliceRows(batch, lo, hi)), invT)
		loss := autograd.Scale(autograd.BinaryScoreLoss(logits, targets[lo:hi]), float64(hi-lo)/float64(n))
		sink := make(autograd.GradSink, len(a.params))
		loss.BackwardInto(sink)
		losses[i] = loss.Scalar()
		sinks[i] = sink
	}
	if shards == 1 {
		run(0)
	} else {
		var g parallel.Group
		for i := 0; i < shards; i++ {
			i := i
			g.Go(func() { run(i) })
		}
		g.Wait()
	}
	a.opt.ZeroGrad()
	autograd.ReduceSinks(a.params, sinks, 1)
	a.opt.Step()
	total := 0.0
	for _, l := range losses {
		total += l
	}
	return total
}

// shardRange returns the half-open row range of shard i when n rows are
// split into k balanced contiguous shards (the first n%k shards get one
// extra row).
func shardRange(n, k, i int) (lo, hi int) {
	base, rem := n/k, n%k
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// replaceNode prunes a diverging node and creates a random replacement at
// the same level (Fig. 4B→4C), resynchronising model structures.
func (a *Adapter) replaceNode(gi int, id kg.NodeID) (kg.NodeID, kg.NodeID, error) {
	m := a.det.gnns[gi]
	g := m.Graph()
	a.created++
	name := fmt.Sprintf("created-%d", a.created)
	fresh, err := g.ReplaceNode(a.rng, id, name, nil, a.cfg.EdgeProb)
	if err != nil {
		return 0, 0, fmt.Errorf("core: replacing node %d in graph %d: %w", id, gi, err)
	}
	if err := m.Rebind(); err != nil {
		return 0, 0, fmt.Errorf("core: rebind after replace: %w", err)
	}
	// Random token embedding for the created node (Fig. 4C), overriding
	// the text-derived default SyncWith installed.
	rows := make([]*tensor.Tensor, a.cfg.CreatedTokens)
	for i := range rows {
		rows[i] = tensor.RandUnitVector(a.rng, m.Tokens().Dim()).Reshape(1, m.Tokens().Dim())
	}
	m.Tokens().Install(fresh.ID, tensor.ConcatRows(rows...))
	delete(a.trackers[gi], id)
	delete(a.rowNorms[gi], id)
	a.trackers[gi][fresh.ID] = &convTracker{}
	a.rowNorms[gi][fresh.ID] = bankRowNorms(m.Tokens().Bank(fresh.ID).Data)
	// Structure changed: the optimiser's moment buffers no longer line up.
	a.rebuildOptimizer()
	a.det.EnableAdaptation()
	return id, fresh.ID, nil
}

// applySemanticPull rotates every token row toward the pseudo-anomaly
// direction proportionally to how far the task gradient just moved it:
// rows the optimiser left alone stay put, rows that responded drift
// toward the concepts present in the selected frames.
func (a *Adapter) applySemanticPull(before []map[kg.NodeID]*tensor.Tensor, dir *tensor.Tensor) {
	for gi, m := range a.det.gnns {
		for _, id := range m.Tokens().NodeIDs() {
			old, ok := before[gi][id]
			if !ok {
				continue
			}
			bv := m.Tokens().Bank(id)
			bank := bv.Data
			rows := bank.Rows()
			if old.Rows() != rows {
				continue
			}
			for r := 0; r < rows; r++ {
				row := bank.Row(r)
				orow := old.Row(r)
				delta := 0.0
				for j := range row {
					d := row[j] - orow[j]
					delta += d * d
				}
				delta = math.Sqrt(delta)
				if delta == 0 {
					// Untouched row: no write, so a COW-shared page (one
					// the optimizer never updated) stays shared.
					continue
				}
				if bv.EnsurePrivate() {
					bank = bv.Data
					row = bank.Row(r)
				}
				step := a.cfg.SemanticPull * delta
				for j := range row {
					row[j] += step * dir.Data()[j]
				}
			}
		}
	}
}

// snapshot deep-copies every node's token matrix, per graph.
func (a *Adapter) snapshot() []map[kg.NodeID]*tensor.Tensor {
	out := make([]map[kg.NodeID]*tensor.Tensor, len(a.det.gnns))
	for gi, m := range a.det.gnns {
		out[gi] = make(map[kg.NodeID]*tensor.Tensor)
		for _, id := range m.Tokens().NodeIDs() {
			out[gi][id] = m.Tokens().Snapshot(id)
		}
	}
	return out
}

// forwardFrames scores individual frames through the frozen pipeline with
// a static temporal window (each frame repeated T times). Adaptation
// operates on the monitor's individual data points; the static window is
// the steady-state limit of a stream showing that frame.
func (a *Adapter) forwardFrames(batch *tensor.Tensor) *autograd.Value {
	emb := a.det.EmbedFrames(batch)
	t := a.det.Window()
	b := batch.Rows()
	// One Gather replicates each frame's embedding into a static T-row
	// window; the scatter-add backward sums each frame's gradient over its
	// T copies, exactly as the per-window SliceRows/ConcatRows graph did.
	rows := make([]int, b*t)
	for k := 0; k < b; k++ {
		for i := 0; i < t; i++ {
			rows[k*t+i] = k
		}
	}
	wins := autograd.GatherRows(emb, rows)
	return a.det.Head().Logits(a.det.Temporal().ForwardBatch(wins, b))
}

func stackFrames(frames []*tensor.Tensor) *tensor.Tensor {
	rows := make([]*tensor.Tensor, len(frames))
	for i, f := range frames {
		rows[i] = f.Reshape(1, f.Size())
	}
	return tensor.ConcatRows(rows...)
}

// TrackerState is one node's convergence-tracker state in exportable form.
type TrackerState struct {
	LastDist  float64
	HasLast   bool
	IncStreak int
}

// AdapterState is the adapter's complete mutable state in exportable form:
// convergence trackers, token-row norm targets, the created-node counter,
// and the AdamW moment buffers keyed by token-parameter name. Together
// with the detector's restored token banks and the adapter's RNG state it
// resumes the continuous-learning loop bit-exactly.
type AdapterState struct {
	Created  int
	Trackers []map[kg.NodeID]TrackerState
	RowNorms []map[kg.NodeID][]float64
	OptStep  int
	OptM     map[string]*tensor.Tensor
	OptV     map[string]*tensor.Tensor
}

// tokenParamNames returns the detector's token-parameter names in the same
// order as the optimizer's parameter slice (nn.Values of TokenParams).
func (a *Adapter) tokenParamNames() []string {
	ps := a.det.TokenParams()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// ExportState captures the adapter's full state. Tensor buffers are deep
// copies, so subsequent rounds never mutate the exported state.
func (a *Adapter) ExportState() AdapterState {
	st := AdapterState{
		Created:  a.created,
		Trackers: make([]map[kg.NodeID]TrackerState, len(a.trackers)),
		RowNorms: make([]map[kg.NodeID][]float64, len(a.rowNorms)),
		OptStep:  a.opt.StepCount(),
		OptM:     make(map[string]*tensor.Tensor, len(a.params)),
		OptV:     make(map[string]*tensor.Tensor, len(a.params)),
	}
	for gi, trs := range a.trackers {
		st.Trackers[gi] = make(map[kg.NodeID]TrackerState, len(trs))
		for id, tr := range trs {
			st.Trackers[gi][id] = TrackerState{LastDist: tr.lastDist, HasLast: tr.hasLast, IncStreak: tr.incStreak}
		}
	}
	for gi, norms := range a.rowNorms {
		st.RowNorms[gi] = make(map[kg.NodeID][]float64, len(norms))
		for id, ns := range norms {
			st.RowNorms[gi][id] = append([]float64(nil), ns...)
		}
	}
	m, v := a.opt.Moments()
	for i, name := range a.tokenParamNames() {
		// Lazily-absent moment buffers are identically zero; export them as
		// zero tensors so the checkpoint format is unchanged — and the
		// export itself does not materialize per-stream buffers.
		st.OptM[name] = momentOrZeros(m[i], a.params[i])
		st.OptV[name] = momentOrZeros(v[i], a.params[i])
	}
	return st
}

func momentOrZeros(t *tensor.Tensor, p *autograd.Value) *tensor.Tensor {
	if t != nil {
		return t.Clone()
	}
	return tensor.New(p.Data.Shape()...)
}

func allZero(t *tensor.Tensor) bool {
	for _, v := range t.Data() {
		if v != 0 {
			return false
		}
	}
	return true
}

// ImportState replaces the adapter's state with a previously exported one.
// The detector's graphs and token banks must already hold their restored
// state: the optimizer is rebuilt over the current token parameters and
// the saved moments are matched to them by parameter name, failing loudly
// on any mismatch.
func (a *Adapter) ImportState(st AdapterState) error {
	if len(st.Trackers) != a.det.NumGNNs() || len(st.RowNorms) != a.det.NumGNNs() {
		return fmt.Errorf("core: adapter state covers %d/%d graphs, detector has %d",
			len(st.Trackers), len(st.RowNorms), a.det.NumGNNs())
	}
	a.det.EnableAdaptation()
	a.rebuildOptimizer()
	names := a.tokenParamNames()
	if len(st.OptM) != len(names) || len(st.OptV) != len(names) {
		return fmt.Errorf("core: adapter state has %d/%d moment buffers, detector has %d token params",
			len(st.OptM), len(st.OptV), len(names))
	}
	for i, name := range names {
		sm, sv := st.OptM[name], st.OptV[name]
		if sm == nil || sv == nil {
			return fmt.Errorf("core: adapter state missing moments for token param %q", name)
		}
		want := a.params[i].Data.Size()
		if sm.Size() != want || sv.Size() != want {
			return fmt.Errorf("core: adapter state moment shape mismatch for %q: %v/%v vs %v",
				name, sm.Shape(), sv.Shape(), a.params[i].Data.Shape())
		}
		// All-zero saved moments restore to the lazily-absent state —
		// numerically identical, and a rehydrated unadapted stream keeps
		// its copy-on-write footprint instead of materializing buffers.
		if allZero(sm) && allZero(sv) {
			continue
		}
		m, v := a.opt.EnsureMoment(i)
		copy(m.Data(), sm.Data())
		copy(v.Data(), sv.Data())
	}
	a.opt.SetStepCount(st.OptStep)
	a.created = st.Created
	a.trackers = make([]map[kg.NodeID]*convTracker, len(st.Trackers))
	a.rowNorms = make([]map[kg.NodeID][]float64, len(st.RowNorms))
	for gi, trs := range st.Trackers {
		a.trackers[gi] = make(map[kg.NodeID]*convTracker, len(trs))
		for id, tr := range trs {
			a.trackers[gi][id] = &convTracker{lastDist: tr.LastDist, hasLast: tr.HasLast, incStreak: tr.IncStreak}
		}
	}
	for gi, norms := range st.RowNorms {
		a.rowNorms[gi] = make(map[kg.NodeID][]float64, len(norms))
		for id, ns := range norms {
			a.rowNorms[gi][id] = append([]float64(nil), ns...)
		}
	}
	return nil
}

// MemBytes estimates the adapter's resident bytes for the memory ledger:
// allocated optimizer moment buffers (lazy — zero until a round actually
// updates a parameter) plus row-norm targets and convergence trackers.
func (a *Adapter) MemBytes() int64 {
	b := a.opt.MomentBytes()
	const trackerOverhead = 64 // convTracker + map entry
	for gi := range a.rowNorms {
		for _, ns := range a.rowNorms[gi] {
			b += int64(len(ns)) * 8
		}
		b += int64(len(a.trackers[gi])) * trackerOverhead
	}
	return b
}

// TrackerStreak exposes a node's current divergence streak (testing and
// observability).
func (a *Adapter) TrackerStreak(gi int, id kg.NodeID) int {
	if tr := a.trackers[gi][id]; tr != nil {
		return tr.incStreak
	}
	return 0
}
