package decision

import (
	"edgekg/internal/tensor"
)

// LogitsF32 returns the pre-softmax scores for a (batch × D) float32
// input on the reduced-precision path.
func (h *Head) LogitsF32(x *tensor.Tensor32) *tensor.Tensor32 {
	s := h.f32.Load()
	if s == nil {
		s = h.linear.F32()
		h.f32.CompareAndSwap(nil, s)
		if cur := h.f32.Load(); cur != nil {
			s = cur
		}
	}
	return s.Forward(x)
}

// InvalidateF32 drops the float32 weight snapshot; the next LogitsF32
// call rebuilds it from the current float64 weights. Called by the
// detector when the head's weights are about to change.
func (h *Head) InvalidateF32() { h.f32.Store(nil) }
