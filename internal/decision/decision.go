// Package decision implements the decision model of eq. (5): a single
// linear layer plus softmax over n+1 classes (class 0 = normal, classes
// 1..n = anomaly types), together with the probability decompositions
// pN, pA and p(i|A) of Sec. III-C and the full decision loss (cross-
// entropy + λ_spa sparsity + λ_smt smoothness).
package decision

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"edgekg/internal/autograd"
	"edgekg/internal/nn"
	"edgekg/internal/tensor"
)

// Head is the linear+softmax decision model f_dec.
type Head struct {
	linear  *nn.Linear
	classes int

	// f32 caches the float32 weight snapshot for the reduced-precision
	// path; see f32.go.
	f32 atomic.Pointer[nn.LinearF32]
}

// NewHead returns a decision head mapping D-dimensional temporal outputs
// to n+1 class logits.
func NewHead(rng *rand.Rand, inDim, numClasses int) (*Head, error) {
	if numClasses < 2 {
		return nil, fmt.Errorf("decision: need ≥2 classes (normal + ≥1 anomaly), got %d", numClasses)
	}
	return &Head{linear: nn.NewLinear(rng, inDim, numClasses), classes: numClasses}, nil
}

// NumClasses returns n+1.
func (h *Head) NumClasses() int { return h.classes }

// Logits returns the pre-softmax scores for a (batch × D) input.
func (h *Head) Logits(x *autograd.Value) *autograd.Value {
	return h.linear.Forward(x)
}

// Probs returns the softmax class probabilities s_t for a (batch × D)
// input.
func (h *Head) Probs(x *autograd.Value) *autograd.Value {
	return autograd.SoftmaxRows(h.Logits(x))
}

// Params implements nn.Module.
func (h *Head) Params() []nn.Param {
	return nn.Prefix("linear", h.linear.Params())
}

// Scores decomposes a probability matrix (batch × n+1) into the paper's
// quantities for each row: pN, pA = 1−pN, and the conditional anomaly
// distribution p(i|A) (zero vector when pA vanishes).
type Scores struct {
	PN  []float64
	PA  []float64
	PiA [][]float64
}

// Decompose computes Scores from a probability tensor.
func Decompose(probs *tensor.Tensor) Scores {
	b, c := probs.Rows(), probs.Cols()
	s := Scores{
		PN:  make([]float64, b),
		PA:  make([]float64, b),
		PiA: make([][]float64, b),
	}
	for i := 0; i < b; i++ {
		row := probs.Row(i)
		s.PN[i] = row[0]
		s.PA[i] = 1 - row[0]
		cond := make([]float64, c-1)
		if s.PA[i] > 1e-12 {
			for j := 1; j < c; j++ {
				cond[j-1] = row[j] / s.PA[i]
			}
		}
		s.PiA[i] = cond
	}
	return s
}

// AnomalyScores extracts pA per row from a probability tensor — the
// anomaly score the monitor tracks.
func AnomalyScores(probs *tensor.Tensor) []float64 {
	b := probs.Rows()
	out := make([]float64, b)
	for i := 0; i < b; i++ {
		out[i] = 1 - probs.At2(i, 0)
	}
	return out
}

// LossConfig carries the regulariser weights of Sec. IV-A.
type LossConfig struct {
	LambdaSpa float64 // sparsity weight on anomaly scores (paper: 0.001)
	LambdaSmt float64 // smoothness weight on consecutive scores (paper: 0.001)
}

// DefaultLossConfig returns the paper's λ values.
func DefaultLossConfig() LossConfig { return LossConfig{LambdaSpa: 0.001, LambdaSmt: 0.001} }

// Loss computes the decision loss on logits for integer labels:
// cross-entropy plus λ_spa·mean(pA) sparsity plus λ_smt smoothness over
// consecutive rows (rows are assumed temporally ordered; pass smooth=false
// for shuffled batches).
func Loss(logits *autograd.Value, labels []int, cfg LossConfig, smooth bool) *autograd.Value {
	loss := autograd.CrossEntropy(logits, labels)
	if cfg.LambdaSpa > 0 || (smooth && cfg.LambdaSmt > 0) {
		probs := autograd.SoftmaxRows(logits)
		pn := autograd.SliceCols(probs, 0, 1)
		pa := autograd.Sub(autograd.Constant(tensor.Ones(pn.Data.Shape()...)), pn)
		if cfg.LambdaSpa > 0 {
			loss = autograd.Add(loss, autograd.Scale(autograd.SparsityPenalty(pa), cfg.LambdaSpa))
		}
		if smooth && cfg.LambdaSmt > 0 {
			loss = autograd.Add(loss, autograd.Scale(autograd.SmoothnessPenalty(pa), cfg.LambdaSmt))
		}
	}
	return loss
}
