package decision

import (
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

func TestHeadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, err := NewHead(rng, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := autograd.Constant(tensor.RandN(rng, 1, 3, 6))
	logits := h.Logits(x)
	if logits.Data.Rows() != 3 || logits.Data.Cols() != 4 {
		t.Errorf("logits shape %v", logits.Shape())
	}
	probs := h.Probs(x)
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 4; j++ {
			sum += probs.Data.At2(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d probs sum %v", i, sum)
		}
	}
	if h.NumClasses() != 4 {
		t.Errorf("classes = %d", h.NumClasses())
	}
}

func TestHeadValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewHead(rng, 6, 1); err == nil {
		t.Error("single-class head accepted")
	}
}

func TestDecompose(t *testing.T) {
	probs := tensor.FromSlice([]float64{
		0.7, 0.2, 0.1,
		1.0, 0.0, 0.0,
	}, 2, 3)
	s := Decompose(probs)
	if math.Abs(s.PN[0]-0.7) > 1e-12 || math.Abs(s.PA[0]-0.3) > 1e-12 {
		t.Errorf("row0 pN=%v pA=%v", s.PN[0], s.PA[0])
	}
	// p(i|A) renormalises over anomaly classes.
	if math.Abs(s.PiA[0][0]-2.0/3) > 1e-12 || math.Abs(s.PiA[0][1]-1.0/3) > 1e-12 {
		t.Errorf("row0 p(i|A) = %v", s.PiA[0])
	}
	// Degenerate pA=0: conditional is all zeros, not NaN.
	for _, v := range s.PiA[1] {
		if v != 0 || math.IsNaN(v) {
			t.Errorf("degenerate conditional = %v", s.PiA[1])
		}
	}
}

func TestAnomalyScores(t *testing.T) {
	probs := tensor.FromSlice([]float64{0.9, 0.1, 0.25, 0.75}, 2, 2)
	got := AnomalyScores(probs)
	if math.Abs(got[0]-0.1) > 1e-12 || math.Abs(got[1]-0.75) > 1e-12 {
		t.Errorf("scores = %v", got)
	}
}

func TestLossDecreasesWithCorrectness(t *testing.T) {
	// Logits strongly favouring the labels must yield lower loss than
	// uniform logits.
	labels := []int{0, 1, 2}
	good := tensor.New(3, 3)
	for i, y := range labels {
		good.Set2(i, y, 8)
	}
	uniform := tensor.New(3, 3)
	cfg := DefaultLossConfig()
	lGood := Loss(autograd.Constant(good), labels, cfg, true).Scalar()
	lUniform := Loss(autograd.Constant(uniform), labels, cfg, true).Scalar()
	if lGood >= lUniform {
		t.Errorf("good loss %v not below uniform loss %v", lGood, lUniform)
	}
}

func TestLossRegularizersContribute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := autograd.Constant(tensor.RandN(rng, 1, 5, 3))
	labels := []int{0, 1, 0, 2, 0}
	base := Loss(logits, labels, LossConfig{}, true).Scalar()
	withSpa := Loss(logits, labels, LossConfig{LambdaSpa: 10}, true).Scalar()
	withSmt := Loss(logits, labels, LossConfig{LambdaSmt: 10}, true).Scalar()
	if withSpa <= base {
		t.Error("sparsity term did not increase loss")
	}
	if withSmt <= base {
		t.Error("smoothness term did not increase loss")
	}
	// smooth=false disables the smoothness term.
	noSmt := Loss(logits, labels, LossConfig{LambdaSmt: 10}, false).Scalar()
	if math.Abs(noSmt-base) > 1e-12 {
		t.Error("smooth=false still applied smoothness")
	}
}

func TestLossGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := autograd.Param(tensor.RandN(rng, 1, 4, 3))
	labels := []int{0, 2, 1, 0}
	cfg := LossConfig{LambdaSpa: 0.05, LambdaSmt: 0.05}
	f := func() *autograd.Value { return Loss(logits, labels, cfg, true) }
	if err := autograd.GradCheck(f, []*autograd.Value{logits}, 1e-6, 1e-5); err != nil {
		t.Error(err)
	}
}

func TestDefaultLossConfigMatchesPaper(t *testing.T) {
	cfg := DefaultLossConfig()
	if cfg.LambdaSpa != 0.001 || cfg.LambdaSmt != 0.001 {
		t.Errorf("λ values %v/%v, paper uses 0.001/0.001", cfg.LambdaSpa, cfg.LambdaSmt)
	}
}
