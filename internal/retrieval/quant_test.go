package retrieval

import (
	"math/rand"
	"testing"

	"edgekg/internal/tensor"
)

// TestQuantNearestRankingPreserved pins that int8 quantization of the
// token table preserves the retrieval ranking where it matters: for
// noisy near-token queries the quantized top-1 must match the float64
// top-1, and the top-5 sets must overlap heavily.
func TestQuantNearestRankingPreserved(t *testing.T) {
	space := testSpace(t)
	full := New(space)
	quant := NewQuantized(space)
	rng := rand.New(rand.NewSource(4))

	vocab := space.Tokenizer().VocabSize()
	top1Match, top5Overlap, trials := 0, 0, 0
	for i := 0; i < 40; i++ {
		id := rng.Intn(vocab)
		q := space.TokenVector(id).Clone()
		for j, v := range q.Data() {
			q.Data()[j] = v + 0.01*rng.NormFloat64()
		}
		fm := full.Nearest(q, 5, Euclidean)
		qm := quant.Nearest(q, 5, Euclidean)
		trials++
		if fm[0].TokenID == qm[0].TokenID {
			top1Match++
		}
		in := make(map[int]bool, 5)
		for _, m := range fm {
			in[m.TokenID] = true
		}
		for _, m := range qm {
			if in[m.TokenID] {
				top5Overlap++
			}
		}
	}
	if top1Match < trials*9/10 {
		t.Errorf("quantized top-1 matched float64 top-1 on %d/%d queries, want ≥ 90%%", top1Match, trials)
	}
	if top5Overlap < trials*4 {
		t.Errorf("top-5 overlap %d/%d, want ≥ 80%%", top5Overlap, trials*5)
	}
}

// TestQuantSelfRetrieval pins exact self-retrieval through the int8
// table: a token's own embedding must still return that token first
// under every metric (quantization error is far below inter-token
// spacing in this space).
func TestQuantSelfRetrieval(t *testing.T) {
	space := testSpace(t)
	quant := NewQuantized(space)
	for _, w := range []string{"robbery", "gun", "mask"} {
		ids := space.Tokenizer().Encode(w)
		if len(ids) != 1 {
			t.Fatalf("%q tokenizes to %d tokens; fixture vocab must keep it whole-word", w, len(ids))
		}
		emb := space.TokenVector(ids[0])
		for _, m := range []Metric{Euclidean, Cosine, Dot} {
			ms := quant.Nearest(emb, 1, m)
			if ms[0].TokenID != ids[0] {
				t.Errorf("metric %v: top match for %q is token %d (%q)", m, w, ms[0].TokenID, ms[0].Word)
			}
		}
	}
}

// TestQuantDecodeBankAgrees pins the DecodeBank/NodePhrase path over a
// quantized bank against the float64 retriever on clean token rows.
func TestQuantDecodeBankAgrees(t *testing.T) {
	space := testSpace(t)
	quant := NewQuantized(space)
	idsA := space.Tokenizer().Encode("gun")
	idsB := space.Tokenizer().Encode("mask")
	if len(idsA) != 1 || len(idsB) != 1 {
		t.Fatalf("gun/mask tokenize to %d/%d tokens; fixture vocab must keep both whole-word", len(idsA), len(idsB))
	}
	bank := tensor.QuantizeRows(tensor.ConcatRows(
		space.TokenVector(idsA[0]).Reshape(1, space.Dim()),
		space.TokenVector(idsB[0]).Reshape(1, space.Dim()),
	))
	if phrase := quant.NodePhrase(bank, Euclidean); phrase != "gun mask" {
		t.Errorf("NodePhrase over int8 bank = %q, want \"gun mask\"", phrase)
	}
}

// TestQuantTableFootprint pins the memory claim. At the fixture's narrow
// dim (16) the per-row affine and cached-norm overhead is proportionally
// large — 32 bytes against 128 — so the bound here is 1/3; wide rows
// approach the asymptotic 1/8.
func TestQuantTableFootprint(t *testing.T) {
	space := testSpace(t)
	quant := NewQuantized(space)
	f64Bytes := int64(space.TokenTable().Size()) * 8
	if quant.MemBytes()*3 >= f64Bytes {
		t.Errorf("quantized table %d bytes vs float64 %d — expected <1/3", quant.MemBytes(), f64Bytes)
	}
}

// TestQuantNearestDimValidation mirrors the float64 validation panic.
func TestQuantNearestDimValidation(t *testing.T) {
	space := testSpace(t)
	quant := NewQuantized(space)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong dim")
		}
	}()
	quant.Nearest(tensor.New(space.Dim()+1), 1, Euclidean)
}
