package retrieval

import (
	"strings"
	"testing"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/embed"
	"edgekg/internal/tensor"
)

func testSpace(t *testing.T) *embed.Space {
	t.Helper()
	corpus := concept.Builtin().Concepts()
	tok := bpe.Train(corpus, 600)
	s, err := embed.NewSpace(tok, corpus, embed.Config{Dim: 16, PixDim: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNearestRecoversOwnToken(t *testing.T) {
	space := testSpace(t)
	r := New(space)
	// The embedding of a whole-word token must retrieve that token first.
	for _, w := range []string{"sneaky", "firearm", "stealing", "explosion"} {
		ids := space.Tokenizer().Encode(w)
		if len(ids) != 1 {
			t.Logf("%q tokenizes to %d tokens; skipping exact-match check", w, len(ids))
			continue
		}
		emb := space.TokenVector(ids[0])
		ms := r.Nearest(emb, 3, Euclidean)
		if len(ms) != 3 {
			t.Fatalf("got %d matches", len(ms))
		}
		if ms[0].TokenID != ids[0] {
			t.Errorf("top match for %q is token %d (%q), want %d", w, ms[0].TokenID, ms[0].Word, ids[0])
		}
		if ms[0].Distance > 1e-9 {
			t.Errorf("self distance %v", ms[0].Distance)
		}
		if ms[1].Distance < ms[0].Distance {
			t.Error("matches not sorted")
		}
	}
}

func TestAllMetricsAgreeOnSelfRetrieval(t *testing.T) {
	space := testSpace(t)
	r := New(space)
	ids := space.Tokenizer().Encode("robbery")
	if len(ids) != 1 {
		t.Fatalf("robbery tokenizes to %d tokens; the fixture vocab (600 merges over the builtin corpus) must keep it whole-word", len(ids))
	}
	emb := space.TokenVector(ids[0])
	for _, m := range []Metric{Euclidean, Cosine, Dot} {
		ms := r.Nearest(emb, 1, m)
		if ms[0].TokenID != ids[0] {
			t.Errorf("metric %v top match %q", m, ms[0].Word)
		}
	}
}

func TestMetricString(t *testing.T) {
	if Euclidean.String() != "euclidean" || Cosine.String() != "cosine" || Dot.String() != "dot" {
		t.Error("metric names wrong")
	}
	if !strings.Contains(Metric(9).String(), "9") {
		t.Error("unknown metric string")
	}
}

func TestDecodeBankPerRow(t *testing.T) {
	space := testSpace(t)
	r := New(space)
	idsA := space.Tokenizer().Encode("gun")
	idsB := space.Tokenizer().Encode("mask")
	if len(idsA) != 1 || len(idsB) != 1 {
		t.Fatalf("gun/mask tokenize to %d/%d tokens; the fixture vocab (600 merges over the builtin corpus) must keep both whole-word", len(idsA), len(idsB))
	}
	bank := tensor.ConcatRows(
		space.TokenVector(idsA[0]).Reshape(1, space.Dim()),
		space.TokenVector(idsB[0]).Reshape(1, space.Dim()),
	)
	per := r.DecodeBank(bank, 2, Euclidean)
	if len(per) != 2 {
		t.Fatalf("rows = %d", len(per))
	}
	if per[0][0].Word != "gun" || per[1][0].Word != "mask" {
		t.Errorf("decoded %q/%q", per[0][0].Word, per[1][0].Word)
	}
	phrase := r.NodePhrase(bank, Euclidean)
	if phrase != "gun mask" {
		t.Errorf("NodePhrase = %q", phrase)
	}
}

// The Fig. 6 mechanism: an embedding interpolated from "sneaky" toward
// "firearm" must flip its nearest word as it crosses the midpoint, and the
// trajectory's drift statistic must be positive.
func TestTrajectoryDriftSneakyToFirearm(t *testing.T) {
	space := testSpace(t)
	r := New(space)
	from := space.TextEncode("sneaky")
	to := space.TextEncode("firearm")
	rec := NewTrajectoryRecorder(r, "sneaky", "firearm")
	const steps = 9
	for i := 0; i <= steps; i++ {
		alpha := float64(i) / steps
		interp := tensor.Add(tensor.Scale(from, 1-alpha), tensor.Scale(to, alpha))
		rec.Record(i*100, interp.Reshape(1, space.Dim()))
	}
	traj := rec.Trajectory()
	if len(traj.Iterations) != steps+1 {
		t.Fatalf("recorded %d points", len(traj.Iterations))
	}
	// Distance to initial grows; distance to target shrinks.
	if traj.DistInitial[0] > traj.DistInitial[steps] {
		t.Error("distance to initial should grow")
	}
	if traj.DistTarget[0] < traj.DistTarget[steps] {
		t.Error("distance to target should shrink")
	}
	if traj.NetDrift() <= 0 {
		t.Errorf("NetDrift = %v, want positive", traj.NetDrift())
	}
	first := traj.TopWord[0]
	last := traj.TopWord[steps]
	if first == last {
		t.Errorf("top word never flipped: %q → %q", first, last)
	}
	if !strings.Contains(first, "sneak") {
		t.Errorf("start word %q does not resemble sneaky", first)
	}
	if !strings.Contains(last, "firearm") {
		t.Errorf("end word %q does not resemble firearm", last)
	}
}

func TestNetDriftDegenerate(t *testing.T) {
	var tr Trajectory
	if tr.NetDrift() != 0 {
		t.Error("empty trajectory drift must be 0")
	}
}

func TestNearestDimValidation(t *testing.T) {
	space := testSpace(t)
	r := New(space)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong dim")
		}
	}()
	r.Nearest(tensor.New(space.Dim()+1), 1, Euclidean)
}

func TestNearestKClamp(t *testing.T) {
	space := testSpace(t)
	r := New(space)
	emb := space.TextEncode("gun")
	all := r.Nearest(emb, 1<<30, Euclidean)
	if len(all) != space.Tokenizer().VocabSize() {
		t.Errorf("clamped k = %d, want vocab size %d", len(all), space.Tokenizer().VocabSize())
	}
}
