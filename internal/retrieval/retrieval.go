// Package retrieval implements Interpretable KG Retrieval (Sec. III-E):
// decoding the continuously-learned token embeddings back into
// human-readable vocabulary words by nearest-neighbour search over the
// frozen BPE token-embedding table. Euclidean distance is the paper's
// preferred metric; cosine and dot-product are implemented for the
// comparison the paper mentions.
package retrieval

import (
	"fmt"
	"sort"
	"strings"

	"edgekg/internal/embed"
	"edgekg/internal/tensor"
)

// Metric selects the similarity measure for the nearest-token search.
type Metric int

// Supported metrics. Euclidean "outperformed the others" in the paper's
// experiments and is the default everywhere.
const (
	Euclidean Metric = iota
	Cosine
	Dot
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Cosine:
		return "cosine"
	case Dot:
		return "dot"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Match is one retrieved vocabulary token.
type Match struct {
	TokenID int
	// Word is the decoded surface form (end-of-word marker stripped).
	Word string
	// Distance is metric-dependent: for Euclidean it is the L2 distance
	// (smaller = closer); for Cosine and Dot it is the negated similarity
	// so that smaller is always closer and callers can sort uniformly.
	Distance float64
}

// Retriever performs nearest-token searches against a space's token table.
type Retriever struct {
	space *embed.Space
	table *tensor.Tensor
}

// New returns a Retriever over the space's frozen token table.
func New(space *embed.Space) *Retriever {
	return &Retriever{space: space, table: space.TokenTable()}
}

// Nearest returns the k vocabulary tokens closest to the given embedding
// under the metric, ordered closest-first.
func (r *Retriever) Nearest(embedding *tensor.Tensor, k int, metric Metric) []Match {
	if embedding.Size() != r.space.Dim() {
		panic(fmt.Sprintf("retrieval: embedding dim %d != %d", embedding.Size(), r.space.Dim()))
	}
	vocab := r.table.Rows()
	matches := make([]Match, 0, vocab)
	for id := 0; id < vocab; id++ {
		row := tensor.FromSlice(append([]float64(nil), r.table.Row(id)...), r.space.Dim())
		var d float64
		switch metric {
		case Euclidean:
			d = tensor.L2Distance(embedding, row)
		case Cosine:
			d = -tensor.CosineSimilarity(embedding, row)
		case Dot:
			d = -tensor.Dot(embedding, row)
		default:
			panic(fmt.Sprintf("retrieval: unknown metric %d", int(metric)))
		}
		matches = append(matches, Match{
			TokenID:  id,
			Word:     r.space.Tokenizer().TokenWord(id),
			Distance: d,
		})
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Distance != matches[j].Distance {
			return matches[i].Distance < matches[j].Distance
		}
		return matches[i].TokenID < matches[j].TokenID
	})
	if k > len(matches) {
		k = len(matches)
	}
	return matches[:k]
}

// NearestWords returns the k closest *whole-word* tokens (end-of-word
// marker present, surface length ≥ 3). Interior subword fragments make
// poor figure labels; the paper's Fig. 6 annotates whole concept words.
func (r *Retriever) NearestWords(embedding *tensor.Tensor, k int, metric Metric) []Match {
	all := r.Nearest(embedding, r.table.Rows(), metric)
	out := make([]Match, 0, k)
	for _, m := range all {
		if len(out) >= k {
			break
		}
		if r.space.Tokenizer().IsWordFinal(m.TokenID) && len(m.Word) >= 3 {
			out = append(out, m)
		}
	}
	return out
}

// DecodeBank retrieves the top-k nearest tokens for every row of a node's
// learned token matrix (numTokens × dim).
func (r *Retriever) DecodeBank(bank *tensor.Tensor, k int, metric Metric) [][]Match {
	out := make([][]Match, bank.Rows())
	for i := 0; i < bank.Rows(); i++ {
		row := tensor.FromSlice(append([]float64(nil), bank.Row(i)...), bank.Cols())
		out[i] = r.Nearest(row, k, metric)
	}
	return out
}

// NodePhrase renders a node's learned token matrix as its top-1 decoded
// words joined with spaces — the interpretable concept the adapted KG
// displays.
func (r *Retriever) NodePhrase(bank *tensor.Tensor, metric Metric) string {
	per := r.DecodeBank(bank, 1, metric)
	words := make([]string, 0, len(per))
	for _, ms := range per {
		if len(ms) > 0 && ms[0].Word != "" {
			words = append(words, ms[0].Word)
		}
	}
	return strings.Join(words, " ")
}

// Trajectory records how one node's pooled embedding moves between two
// concept anchors over adaptation iterations — the data behind Fig. 6
// (e.g. "Sneaky" drifting toward "Firearm").
type Trajectory struct {
	Iterations []int
	// DistInitial and DistTarget are Euclidean distances from the pooled
	// node embedding to the initial and target concept word vectors.
	DistInitial []float64
	DistTarget  []float64
	// TopWord is the top-1 retrieved word at each recorded iteration.
	TopWord []string
}

// TrajectoryRecorder accumulates a Trajectory.
type TrajectoryRecorder struct {
	r               *Retriever
	initial, target *tensor.Tensor
	traj            Trajectory
}

// NewTrajectoryRecorder anchors a recorder at two concept words.
func NewTrajectoryRecorder(r *Retriever, initialWord, targetWord string) *TrajectoryRecorder {
	return &TrajectoryRecorder{
		r:       r,
		initial: r.space.TextEncode(initialWord),
		target:  r.space.TextEncode(targetWord),
	}
}

// Record logs the node's pooled embedding at an iteration count.
func (tr *TrajectoryRecorder) Record(iteration int, bank *tensor.Tensor) {
	pooled := tensor.MeanAxis0(bank)
	tr.traj.Iterations = append(tr.traj.Iterations, iteration)
	tr.traj.DistInitial = append(tr.traj.DistInitial, tensor.L2Distance(pooled, tr.initial))
	tr.traj.DistTarget = append(tr.traj.DistTarget, tensor.L2Distance(pooled, tr.target))
	top := tr.r.Nearest(pooled, 1, Euclidean)
	word := ""
	if len(top) > 0 {
		word = top[0].Word
	}
	tr.traj.TopWord = append(tr.traj.TopWord, word)
}

// Trajectory returns the recorded series.
func (tr *TrajectoryRecorder) Trajectory() Trajectory { return tr.traj }

// NetDrift summarises a trajectory: positive values mean the embedding
// ended closer to the target anchor than it started, relative to the
// initial anchor.
func (t Trajectory) NetDrift() float64 {
	if len(t.Iterations) < 2 {
		return 0
	}
	first := t.DistTarget[0] - t.DistInitial[0]
	last := t.DistTarget[len(t.DistTarget)-1] - t.DistInitial[len(t.DistInitial)-1]
	return first - last
}
