package retrieval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"edgekg/internal/embed"
	"edgekg/internal/tensor"
)

// QuantRetriever performs nearest-token searches against an int8-quantized
// copy of the space's token table: 1 byte per element of row traffic
// instead of 8, with distances computed against the dequantized values on
// the fly. Quantization is lossy, so results can differ from Retriever in
// near-tie cases; the ranking-preservation tests pin how far.
type QuantRetriever struct {
	space *embed.Space
	table *tensor.QuantizedMatrix
	// norms caches each dequantized row's L2 norm for the cosine metric.
	norms []float64
}

// NewQuantized quantizes the space's frozen token table and returns a
// retriever over it.
func NewQuantized(space *embed.Space) *QuantRetriever {
	t := space.TokenTable()
	q := tensor.QuantizeRows(t)
	norms := make([]float64, q.Rows())
	row := make([]float32, q.Cols())
	for i := range norms {
		q.DequantRow(i, row)
		var acc float64
		for _, v := range row {
			acc += float64(v) * float64(v)
		}
		norms[i] = math.Sqrt(acc)
	}
	return &QuantRetriever{space: space, table: q, norms: norms}
}

// MemBytes returns the resident size of the quantized table (codes plus
// per-row affine parameters and cached norms).
func (r *QuantRetriever) MemBytes() int64 {
	return int64(r.table.MemBytes()) + int64(len(r.norms))*8
}

// Nearest returns the k vocabulary tokens closest to the given embedding
// under the metric, ordered closest-first — Retriever.Nearest over the
// int8 table.
func (r *QuantRetriever) Nearest(embedding *tensor.Tensor, k int, metric Metric) []Match {
	if embedding.Size() != r.space.Dim() {
		panic(fmt.Sprintf("retrieval: embedding dim %d != %d", embedding.Size(), r.space.Dim()))
	}
	q := make([]float32, embedding.Size())
	var qnorm float64
	for i, v := range embedding.Data() {
		q[i] = float32(v)
		qnorm += v * v
	}
	qnorm = math.Sqrt(qnorm)

	vocab := r.table.Rows()
	matches := make([]Match, 0, vocab)
	for id := 0; id < vocab; id++ {
		var d float64
		switch metric {
		case Euclidean:
			d = math.Sqrt(float64(r.table.L2DistSq(id, q)))
		case Cosine:
			denom := qnorm * r.norms[id]
			if denom > 0 {
				d = -float64(r.table.Dot(id, q)) / denom
			}
		case Dot:
			d = -float64(r.table.Dot(id, q))
		default:
			panic(fmt.Sprintf("retrieval: unknown metric %d", int(metric)))
		}
		matches = append(matches, Match{
			TokenID:  id,
			Word:     r.space.Tokenizer().TokenWord(id),
			Distance: d,
		})
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Distance != matches[j].Distance {
			return matches[i].Distance < matches[j].Distance
		}
		return matches[i].TokenID < matches[j].TokenID
	})
	if k > len(matches) {
		k = len(matches)
	}
	return matches[:k]
}

// NearestWords returns the k closest whole-word tokens (see
// Retriever.NearestWords) from the quantized table.
func (r *QuantRetriever) NearestWords(embedding *tensor.Tensor, k int, metric Metric) []Match {
	all := r.Nearest(embedding, r.table.Rows(), metric)
	out := make([]Match, 0, k)
	for _, m := range all {
		if len(out) >= k {
			break
		}
		if r.space.Tokenizer().IsWordFinal(m.TokenID) && len(m.Word) >= 3 {
			out = append(out, m)
		}
	}
	return out
}

// DecodeBank retrieves the top-k nearest tokens for every row of a
// quantized node bank, dequantizing each row once for the query side.
func (r *QuantRetriever) DecodeBank(bank *tensor.QuantizedMatrix, k int, metric Metric) [][]Match {
	out := make([][]Match, bank.Rows())
	row := make([]float64, bank.Cols())
	for i := 0; i < bank.Rows(); i++ {
		bank.DequantRowF64(i, row)
		out[i] = r.Nearest(tensor.FromSlice(append([]float64(nil), row...), bank.Cols()), k, metric)
	}
	return out
}

// NodePhrase renders a quantized node bank as its top-1 decoded words
// joined with spaces — Retriever.NodePhrase over int8 state.
func (r *QuantRetriever) NodePhrase(bank *tensor.QuantizedMatrix, metric Metric) string {
	per := r.DecodeBank(bank, 1, metric)
	words := make([]string, 0, len(per))
	for _, ms := range per {
		if len(ms) > 0 && ms[0].Word != "" {
			words = append(words, ms[0].Word)
		}
	}
	return strings.Join(words, " ")
}
