package rng

import (
	"math/rand"
	"testing"
)

// TestDeterministicStream pins that equal seeds give equal streams and
// different seeds give decorrelated ones.
func TestDeterministicStream(t *testing.T) {
	a, b := NewSource(7), NewSource(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal seeds diverge at draw %d", i)
		}
	}
	c := NewSource(8)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 7 and 8 collide on %d of 100 draws", same)
	}
}

// TestStateRoundTrip pins the checkpoint contract: capturing State and
// Restoring it replays the identical stream, including through a rand.Rand
// wrapper's higher-level draws.
func TestStateRoundTrip(t *testing.T) {
	src := NewSource(42)
	r := rand.New(src)
	for i := 0; i < 17; i++ {
		r.Float64()
	}
	saved := src.State()
	want := make([]float64, 32)
	for i := range want {
		want[i] = r.Float64()
	}
	src.Restore(saved)
	r2 := rand.New(src)
	for i := range want {
		if got := r2.Float64(); got != want[i] {
			t.Fatalf("draw %d after restore: got %v want %v", i, got, want[i])
		}
	}
}

// TestSeedResets pins rand.Source's Seed contract.
func TestSeedResets(t *testing.T) {
	s := NewSource(1)
	first := s.Uint64()
	s.Uint64()
	s.Seed(1)
	if got := s.Uint64(); got != first {
		t.Fatalf("Seed(1) did not reset the stream: got %v want %v", got, first)
	}
	if v := s.Int63(); v < 0 {
		t.Fatalf("Int63 returned negative %d", v)
	}
}
