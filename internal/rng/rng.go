// Package rng provides a serializable random source for the deployment
// runtimes. The standard library's rand.NewSource hides its state, which
// makes a deployment that draws from it impossible to checkpoint: a warm
// restart could not resume the random stream where it left off. Source is
// a SplitMix64 generator whose entire state is one uint64, so a snapshot
// captures it exactly and a restore replays the identical stream.
//
// SplitMix64 passes BigCrush, decorrelates sequential seeds (it is the
// seeding generator of the xoshiro family), and implements rand.Source64,
// so rand.New(rng.NewSource(seed)) is a drop-in replacement for
// rand.New(rand.NewSource(seed)) everywhere determinism-with-snapshots is
// needed.
package rng

// Source is a SplitMix64 random source. It implements rand.Source64. The
// zero value is a valid source (seed 0); it is not safe for concurrent
// use, matching rand.NewSource.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with seed. Equal seeds yield equal
// streams.
func NewSource(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// Uint64 returns the next value of the stream (rand.Source64).
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 returns a non-negative 63-bit value (rand.Source).
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed resets the source to the given seed (rand.Source).
func (s *Source) Seed(seed int64) {
	s.state = uint64(seed)
}

// State returns the complete generator state. Capturing it before a draw
// and restoring it later replays the identical stream.
func (s *Source) State() uint64 { return s.state }

// Restore overwrites the generator state with a previously captured one.
func (s *Source) Restore(state uint64) { s.state = state }
