// Package bpe implements a from-scratch byte-pair-encoding tokenizer in
// the style of Sennrich et al. (2016), the vocabulary scheme the paper's
// Interpretable KG Retrieval decodes through (Sec. III-E).
//
// Training counts adjacent symbol pairs over a word corpus and greedily
// merges the most frequent pair until the merge budget is exhausted. Words
// are split into runes with an end-of-word marker on the final rune, so
// the decoder can reconstruct word boundaries exactly.
package bpe

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// endOfWord marks a token that terminates a word.
const endOfWord = "</w>"

// UnknownToken is the token emitted for runes outside the training corpus.
const UnknownToken = "<unk>"

// Tokenizer encodes text to token ids and decodes ids back to text.
type Tokenizer struct {
	vocab      []string
	vocabIndex map[string]int
	merges     []pair
	mergeRank  map[pair]int
}

type pair struct {
	Left  string `json:"l"`
	Right string `json:"r"`
}

// Train builds a tokenizer from a word corpus with at most numMerges merge
// rules. Duplicate corpus entries weight pair counts, mimicking frequency-
// weighted training. Multi-word entries are split on whitespace.
func Train(corpus []string, numMerges int) *Tokenizer {
	wordFreq := make(map[string]int)
	for _, entry := range corpus {
		for _, w := range strings.Fields(strings.ToLower(entry)) {
			wordFreq[w]++
		}
	}

	// Each word is a symbol sequence; symbols start as runes with the
	// end-of-word marker fused onto the final rune.
	type wordState struct {
		syms []string
		freq int
	}
	var words []wordState
	baseVocab := map[string]bool{UnknownToken: true}
	sortedWords := make([]string, 0, len(wordFreq))
	for w := range wordFreq {
		sortedWords = append(sortedWords, w)
	}
	sort.Strings(sortedWords)
	for _, w := range sortedWords {
		syms := splitWord(w)
		for _, s := range syms {
			baseVocab[s] = true
		}
		words = append(words, wordState{syms: syms, freq: wordFreq[w]})
	}

	t := &Tokenizer{vocabIndex: make(map[string]int), mergeRank: make(map[pair]int)}
	baseList := make([]string, 0, len(baseVocab))
	for s := range baseVocab {
		baseList = append(baseList, s)
	}
	sort.Strings(baseList)
	for _, s := range baseList {
		t.addToken(s)
	}

	for m := 0; m < numMerges; m++ {
		counts := make(map[pair]int)
		for _, w := range words {
			for i := 0; i+1 < len(w.syms); i++ {
				counts[pair{w.syms[i], w.syms[i+1]}] += w.freq
			}
		}
		if len(counts) == 0 {
			break
		}
		best, bestCount := pair{}, 0
		keys := make([]pair, 0, len(counts))
		for p := range counts {
			keys = append(keys, p)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Left != keys[j].Left {
				return keys[i].Left < keys[j].Left
			}
			return keys[i].Right < keys[j].Right
		})
		for _, p := range keys {
			if counts[p] > bestCount {
				best, bestCount = p, counts[p]
			}
		}
		if bestCount < 1 {
			break
		}
		t.mergeRank[best] = len(t.merges)
		t.merges = append(t.merges, best)
		merged := best.Left + best.Right
		t.addToken(merged)
		for wi := range words {
			words[wi].syms = applyMerge(words[wi].syms, best, merged)
		}
	}
	return t
}

func (t *Tokenizer) addToken(tok string) {
	if _, ok := t.vocabIndex[tok]; ok {
		return
	}
	t.vocabIndex[tok] = len(t.vocab)
	t.vocab = append(t.vocab, tok)
}

func splitWord(w string) []string {
	runes := []rune(w)
	syms := make([]string, len(runes))
	for i, r := range runes {
		syms[i] = string(r)
	}
	if len(syms) > 0 {
		syms[len(syms)-1] += endOfWord
	}
	return syms
}

func applyMerge(syms []string, p pair, merged string) []string {
	out := syms[:0]
	for i := 0; i < len(syms); i++ {
		if i+1 < len(syms) && syms[i] == p.Left && syms[i+1] == p.Right {
			out = append(out, merged)
			i++
			continue
		}
		out = append(out, syms[i])
	}
	return out
}

// Encode tokenizes text (lowercased, whitespace-split) into token ids.
// Runes never seen in training become the UnknownToken id.
func (t *Tokenizer) Encode(text string) []int {
	var ids []int
	for _, w := range strings.Fields(strings.ToLower(text)) {
		syms := splitWord(w)
		// Replace unknown base symbols before merging.
		for i, s := range syms {
			if _, ok := t.vocabIndex[s]; !ok {
				syms[i] = UnknownToken
			}
		}
		// Greedily apply the lowest-rank applicable merge, exactly the
		// standard BPE encode loop.
		for {
			bestRank, bestAt := -1, -1
			for i := 0; i+1 < len(syms); i++ {
				if r, ok := t.mergeRank[pair{syms[i], syms[i+1]}]; ok {
					if bestRank == -1 || r < bestRank {
						bestRank, bestAt = r, i
					}
				}
			}
			if bestAt == -1 {
				break
			}
			merged := syms[bestAt] + syms[bestAt+1]
			syms = append(syms[:bestAt], append([]string{merged}, syms[bestAt+2:]...)...)
		}
		for _, s := range syms {
			ids = append(ids, t.vocabIndex[s])
		}
	}
	return ids
}

// Decode reconstructs text from token ids. End-of-word markers become
// single spaces; the result is trimmed.
func (t *Tokenizer) Decode(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		if id < 0 || id >= len(t.vocab) {
			b.WriteString(UnknownToken)
			continue
		}
		tok := t.vocab[id]
		if strings.HasSuffix(tok, endOfWord) {
			b.WriteString(strings.TrimSuffix(tok, endOfWord))
			b.WriteByte(' ')
		} else {
			b.WriteString(tok)
		}
	}
	return strings.TrimSpace(b.String())
}

// VocabSize returns the number of tokens (base symbols + merges + unk).
func (t *Tokenizer) VocabSize() int { return len(t.vocab) }

// Token returns the surface form of a token id.
func (t *Tokenizer) Token(id int) string {
	if id < 0 || id >= len(t.vocab) {
		return UnknownToken
	}
	return t.vocab[id]
}

// TokenID returns the id of a token surface form.
func (t *Tokenizer) TokenID(tok string) (int, bool) {
	id, ok := t.vocabIndex[tok]
	return id, ok
}

// TokenWord returns a human-readable form of a token id with the
// end-of-word marker stripped — what Interpretable KG Retrieval prints.
func (t *Tokenizer) TokenWord(id int) string {
	return strings.TrimSuffix(t.Token(id), endOfWord)
}

// IsWordFinal reports whether a token id carries the end-of-word marker —
// true for whole-word tokens and word-final fragments, false for interior
// fragments like "ste" in "ste|aling".
func (t *Tokenizer) IsWordFinal(id int) bool {
	return strings.HasSuffix(t.Token(id), endOfWord)
}

// NumMerges returns the number of learned merge rules.
func (t *Tokenizer) NumMerges() int { return len(t.merges) }

// serialized is the JSON wire form of a tokenizer.
type serialized struct {
	Vocab  []string `json:"vocab"`
	Merges []pair   `json:"merges"`
}

// MarshalJSON implements json.Marshaler.
func (t *Tokenizer) MarshalJSON() ([]byte, error) {
	return json.Marshal(serialized{Vocab: t.vocab, Merges: t.merges})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Tokenizer) UnmarshalJSON(data []byte) error {
	var s serialized
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	t.vocab = s.Vocab
	t.merges = s.Merges
	t.vocabIndex = make(map[string]int, len(s.Vocab))
	for i, tok := range s.Vocab {
		if _, dup := t.vocabIndex[tok]; dup {
			return fmt.Errorf("bpe: duplicate token %q in serialized vocab", tok)
		}
		t.vocabIndex[tok] = i
	}
	t.mergeRank = make(map[pair]int, len(s.Merges))
	for i, m := range s.Merges {
		t.mergeRank[m] = i
	}
	return nil
}
