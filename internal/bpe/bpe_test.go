package bpe

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var testCorpus = []string{
	"stealing", "stealing", "stealing", "sneaky", "sneaky", "theft",
	"firearm", "firearm", "gun", "robbery", "robbery", "mask",
	"explosion", "blast", "smoke", "fire", "fireball", "gunshot",
	"pickpocket", "lookout", "loot", "getaway", "street", "crowd",
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tok := Train(testCorpus, 200)
	words := []string{"stealing", "sneaky", "firearm", "robbery", "explosion", "gun"}
	for _, w := range words {
		ids := tok.Encode(w)
		if len(ids) == 0 {
			t.Fatalf("Encode(%q) empty", w)
		}
		if got := tok.Decode(ids); got != w {
			t.Errorf("round trip %q -> %v -> %q", w, ids, got)
		}
	}
}

func TestEncodeMultiWord(t *testing.T) {
	tok := Train(testCorpus, 100)
	got := tok.Decode(tok.Encode("sneaky theft"))
	if got != "sneaky theft" {
		t.Errorf("multi-word round trip = %q", got)
	}
}

func TestEncodeIsCaseInsensitive(t *testing.T) {
	tok := Train(testCorpus, 100)
	a := tok.Encode("Stealing")
	b := tok.Encode("stealing")
	if len(a) != len(b) {
		t.Fatalf("case changed tokenisation: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("case changed token ids")
		}
	}
}

func TestFrequentWordsMergeToFewTokens(t *testing.T) {
	tok := Train(testCorpus, 300)
	// "stealing" appears 3×; with 300 merges it should be 1-2 tokens.
	if n := len(tok.Encode("stealing")); n > 2 {
		t.Errorf("stealing encodes to %d tokens, expected ≤2 after training", n)
	}
	// A word sharing no structure stays long.
	if n := len(tok.Encode("zzzzqqqq")); n < 4 {
		t.Errorf("novel word suspiciously short: %d tokens", n)
	}
}

func TestUnknownRunesBecomeUnk(t *testing.T) {
	tok := Train(testCorpus, 50)
	ids := tok.Encode("日本")
	if len(ids) == 0 {
		t.Fatal("unknown text produced no tokens")
	}
	unkID, ok := tok.TokenID(UnknownToken)
	if !ok {
		t.Fatal("vocab lacks <unk>")
	}
	for _, id := range ids {
		if id != unkID {
			t.Errorf("unknown rune mapped to %q, want <unk>", tok.Token(id))
		}
	}
}

func TestDecodeOutOfRangeIDs(t *testing.T) {
	tok := Train(testCorpus, 10)
	got := tok.Decode([]int{-1, 999999})
	if !strings.Contains(got, UnknownToken) {
		t.Errorf("Decode of bad ids = %q", got)
	}
}

func TestTokenWordStripsMarker(t *testing.T) {
	tok := Train(testCorpus, 300)
	ids := tok.Encode("gun")
	last := ids[len(ids)-1]
	if w := tok.TokenWord(last); strings.Contains(w, "</w>") {
		t.Errorf("TokenWord kept marker: %q", w)
	}
}

func TestVocabConsistency(t *testing.T) {
	tok := Train(testCorpus, 100)
	if tok.VocabSize() == 0 {
		t.Fatal("empty vocab")
	}
	for id := 0; id < tok.VocabSize(); id++ {
		tokStr := tok.Token(id)
		got, ok := tok.TokenID(tokStr)
		if !ok || got != id {
			t.Errorf("vocab index broken for id %d (%q): got %d, %v", id, tokStr, got, ok)
		}
	}
	if tok.NumMerges() == 0 {
		t.Error("training learned no merges on a corpus with repeats")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tok := Train(testCorpus, 150)
	data, err := json.Marshal(tok)
	if err != nil {
		t.Fatal(err)
	}
	var back Tokenizer
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"stealing", "firearm", "sneaky loot"} {
		a := tok.Encode(w)
		b := back.Encode(w)
		if len(a) != len(b) {
			t.Fatalf("deserialized encode differs for %q", w)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("deserialized encode differs for %q at %d", w, i)
			}
		}
		if back.Decode(b) != tok.Decode(a) {
			t.Fatalf("deserialized decode differs for %q", w)
		}
	}
}

func TestUnmarshalRejectsDuplicateVocab(t *testing.T) {
	bad := `{"vocab":["a","a"],"merges":[]}`
	var tok Tokenizer
	if err := json.Unmarshal([]byte(bad), &tok); err == nil {
		t.Error("duplicate vocab entries accepted")
	}
}

// Property: Decode(Encode(w)) == w for any lowercase ASCII word whose runes
// appeared in training.
func TestRoundTripProperty(t *testing.T) {
	tok := Train(testCorpus, 200)
	// Mid-word letters and word-final letters must both have appeared in
	// those positions during training, or the base symbol is unknown.
	const mid = "aeilnorst"
	const last = "gytkmn"
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		b := make([]byte, 0, n+1)
		for i := 0; i < n; i++ {
			b = append(b, mid[rng.Intn(len(mid))])
		}
		b = append(b, last[rng.Intn(len(last))])
		w := string(b)
		return tok.Decode(tok.Encode(w)) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrainOnEmptyCorpus(t *testing.T) {
	tok := Train(nil, 10)
	if tok.VocabSize() == 0 {
		t.Fatal("even empty training must include <unk>")
	}
	ids := tok.Encode("anything")
	if got := tok.Decode(ids); got == "anything" {
		t.Error("empty-corpus tokenizer cannot know this word")
	}
}

func TestMergeBudgetRespected(t *testing.T) {
	small := Train(testCorpus, 5)
	if small.NumMerges() > 5 {
		t.Errorf("merges %d exceed budget 5", small.NumMerges())
	}
	big := Train(testCorpus, 1000)
	// Budget may not be reached (pairs run out), but must never exceed.
	if big.NumMerges() > 1000 {
		t.Errorf("merges %d exceed budget", big.NumMerges())
	}
	if small.NumMerges() >= big.NumMerges() {
		t.Errorf("larger budget learned no more merges (%d vs %d)", small.NumMerges(), big.NumMerges())
	}
}
