// Package optim implements the optimizers and learning-rate schedules used
// to train the GNN decision model and to drive deployment-time token
// adaptation: AdamW with the paper's hyper-parameters (Sec. IV-A), plain
// SGD with momentum as a baseline, exponential decay (the α_d = 0.9999
// threshold decay) and cosine annealing, plus global-norm gradient
// clipping.
package optim

import (
	"math"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

// Optimizer updates a fixed set of parameters from their accumulated
// gradients.
type Optimizer interface {
	// Step applies one update and clears nothing; call ZeroGrad after.
	Step()
	// ZeroGrad clears the gradients of all managed parameters.
	ZeroGrad()
	// SetLR overrides the current learning rate (schedulers call this).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// zeroGrads clears gradients on params.
func zeroGrads(params []*autograd.Value) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ScaleGrads multiplies every accumulated gradient by scale. Sequential
// gradient accumulation over a K-clip microbatch uses it to turn the
// summed gradients into the mean before clipping and stepping — the
// reference semantics the data-parallel shard reduction reproduces.
// Parameters with nil gradients are skipped.
func ScaleGrads(params []*autograd.Value, scale float64) {
	if scale == 1 {
		return
	}
	for _, p := range params {
		if p.Grad != nil {
			tensor.ScaleInPlace(p.Grad, scale)
		}
	}
}

// ClipGradNorm rescales the gradients of params so their global L2 norm is
// at most maxNorm, returning the pre-clip norm. Parameters with nil
// gradients are skipped.
func ClipGradNorm(params []*autograd.Value, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			if p.Grad != nil {
				tensor.ScaleInPlace(p.Grad, scale)
			}
		}
	}
	return norm
}

// GradNorm returns the global L2 norm of the accumulated gradients.
func GradNorm(params []*autograd.Value) float64 {
	total := 0.0
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	return math.Sqrt(total)
}
