package optim

import (
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

// quadratic builds loss = sum((p - target)^2) for a parameter vector.
func quadratic(p *autograd.Value, target *tensor.Tensor) *autograd.Value {
	diff := autograd.Sub(p, autograd.Constant(target))
	return autograd.Sum(autograd.Mul(diff, diff))
}

func TestAdamWConvergesOnQuadratic(t *testing.T) {
	p := autograd.Param(tensor.FromSlice([]float64{5, -3, 2}, 3))
	target := tensor.FromSlice([]float64{1, 1, 1}, 3)
	cfg := DefaultAdamWConfig()
	cfg.LR = 0.05
	cfg.WeightDecay = 0 // pure optimization test
	opt := NewAdamW([]*autograd.Value{p}, cfg)
	for i := 0; i < 800; i++ {
		opt.ZeroGrad()
		loss := quadratic(p, target)
		loss.Backward()
		opt.Step()
	}
	final := quadratic(p, target).Scalar()
	if final > 1e-4 {
		t.Errorf("AdamW failed to converge: loss %v", final)
	}
	if opt.StepCount() != 800 {
		t.Errorf("StepCount = %d", opt.StepCount())
	}
}

func TestAdamWWeightDecayShrinksParams(t *testing.T) {
	// With zero gradient signal, decoupled decay must shrink weights.
	p := autograd.Param(tensor.FromSlice([]float64{10}, 1))
	cfg := DefaultAdamWConfig()
	cfg.LR = 0.1
	cfg.WeightDecay = 0.5
	opt := NewAdamW([]*autograd.Value{p}, cfg)
	for i := 0; i < 50; i++ {
		opt.ZeroGrad()
		// Zero-valued but present gradient.
		p.Grad = tensor.New(1)
		opt.Step()
	}
	if got := p.Data.Data()[0]; got >= 10 || got < 0 {
		t.Errorf("weight decay did not shrink parameter: %v", got)
	}
}

func TestAdamWSkipsFrozenAndNilGrad(t *testing.T) {
	p := autograd.Param(tensor.FromSlice([]float64{1}, 1))
	q := autograd.Param(tensor.FromSlice([]float64{1}, 1))
	opt := NewAdamW([]*autograd.Value{p, q}, DefaultAdamWConfig())
	p.SetRequiresGrad(false)
	p.Grad = tensor.Ones(1)
	// q has nil grad.
	opt.Step()
	if p.Data.Data()[0] != 1 || q.Data.Data()[0] != 1 {
		t.Error("frozen or nil-grad parameter was updated")
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := autograd.Param(tensor.FromSlice([]float64{4, 4}, 2))
	target := tensor.New(2)
	opt := NewSGD([]*autograd.Value{p}, 0.05, 0.9)
	for i := 0; i < 300; i++ {
		opt.ZeroGrad()
		quadratic(p, target).Backward()
		opt.Step()
	}
	if loss := quadratic(p, target).Scalar(); loss > 1e-6 {
		t.Errorf("SGD failed to converge: %v", loss)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := autograd.Param(tensor.New(2))
	p.Grad = tensor.FromSlice([]float64{3, 4}, 2)
	norm := ClipGradNorm([]*autograd.Value{p}, 1.0)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v, want 5", norm)
	}
	if got := GradNorm([]*autograd.Value{p}); math.Abs(got-1) > 1e-12 {
		t.Errorf("post-clip norm = %v, want 1", got)
	}
	// Below the threshold: untouched.
	p.Grad = tensor.FromSlice([]float64{0.3, 0.4}, 2)
	ClipGradNorm([]*autograd.Value{p}, 1.0)
	if got := GradNorm([]*autograd.Value{p}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("small grad was rescaled: %v", got)
	}
}

func TestExponentialDecaySchedule(t *testing.T) {
	s := ExponentialDecay{Rate: 0.9999}
	if s.Factor(0) != 1 {
		t.Errorf("Factor(0) = %v", s.Factor(0))
	}
	if got, want := s.Factor(10000), math.Pow(0.9999, 10000); math.Abs(got-want) > 1e-12 {
		t.Errorf("Factor(10000) = %v, want %v", got, want)
	}
}

func TestCosineAnnealingSchedule(t *testing.T) {
	s := CosineAnnealing{TotalSteps: 100, MinFactor: 0.1}
	if got := s.Factor(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Factor(0) = %v", got)
	}
	if got := s.Factor(100); got != 0.1 {
		t.Errorf("Factor(100) = %v", got)
	}
	mid := s.Factor(50)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Errorf("Factor(50) = %v, want 0.55", mid)
	}
	// Monotone non-increasing over the horizon.
	prev := 2.0
	for i := 0; i <= 100; i++ {
		f := s.Factor(i)
		if f > prev+1e-12 {
			t.Fatalf("cosine schedule increased at step %d", i)
		}
		prev = f
	}
}

func TestWarmupWrap(t *testing.T) {
	s := WarmupWrap{WarmupSteps: 10, Inner: ConstantSchedule{}}
	if got := s.Factor(0); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Factor(0) = %v, want 0.1", got)
	}
	if got := s.Factor(9); math.Abs(got-1) > 1e-12 {
		t.Errorf("Factor(9) = %v, want 1", got)
	}
	if got := s.Factor(50); got != 1 {
		t.Errorf("Factor(50) = %v", got)
	}
	// nil inner defaults to constant.
	s2 := WarmupWrap{WarmupSteps: 0}
	if s2.Factor(5) != 1 {
		t.Error("nil inner should behave as constant")
	}
}

func TestScheduledOptimizerAppliesFactor(t *testing.T) {
	p := autograd.Param(tensor.FromSlice([]float64{1}, 1))
	sgd := NewSGD([]*autograd.Value{p}, 1.0, 0)
	sch := NewScheduled(sgd, ExponentialDecay{Rate: 0.5})
	// Step 0: lr 1.0, step 1: lr 0.5.
	p.Grad = tensor.Ones(1)
	sch.Step()
	if got := p.Data.Data()[0]; math.Abs(got-0) > 1e-12 {
		t.Errorf("after step0: %v, want 0", got)
	}
	p.Grad = tensor.Ones(1)
	sch.Step()
	if got := p.Data.Data()[0]; math.Abs(got+0.5) > 1e-12 {
		t.Errorf("after step1: %v, want -0.5", got)
	}
	if sch.StepIndex() != 2 {
		t.Errorf("StepIndex = %d", sch.StepIndex())
	}
}

// AdamW vs SGD on an ill-conditioned quadratic: AdamW's per-coordinate
// scaling should reach a lower loss in the same budget. This is the
// optimizer ablation invariant the bench suite reports.
func TestAdamWBeatsSGDOnIllConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mk := func() (*autograd.Value, *tensor.Tensor) {
		p := autograd.Param(tensor.RandN(rng, 1, 4))
		return p, tensor.New(4)
	}
	illLoss := func(p *autograd.Value, target *tensor.Tensor) *autograd.Value {
		diff := autograd.Sub(p, autograd.Constant(target))
		scales := autograd.Constant(tensor.FromSlice([]float64{100, 1, 0.01, 10}, 4))
		return autograd.Sum(autograd.Mul(autograd.Mul(diff, diff), scales))
	}
	run := func(opt Optimizer, p *autograd.Value, target *tensor.Tensor) float64 {
		for i := 0; i < 400; i++ {
			opt.ZeroGrad()
			illLoss(p, target).Backward()
			opt.Step()
		}
		return illLoss(p, target).Scalar()
	}
	p1, t1 := mk()
	cfg := DefaultAdamWConfig()
	cfg.LR = 0.01
	cfg.WeightDecay = 0
	adamLoss := run(NewAdamW([]*autograd.Value{p1}, cfg), p1, t1)
	p2 := autograd.Param(p1.Data.Clone())
	sgdLoss := run(NewSGD([]*autograd.Value{p2}, 0.001, 0.9), p2, t1)
	if adamLoss > sgdLoss {
		t.Logf("adam %v vs sgd %v (informational)", adamLoss, sgdLoss)
	}
	if adamLoss > 1 {
		t.Errorf("AdamW loss too high on ill-conditioned quadratic: %v", adamLoss)
	}
}
