package optim

import "math"

// Schedule maps a step index to a learning-rate multiplier in (0, 1].
type Schedule interface {
	// Factor returns the multiplier applied to the base learning rate at
	// the given zero-based step.
	Factor(step int) float64
}

// ConstantSchedule keeps the base learning rate.
type ConstantSchedule struct{}

// Factor implements Schedule.
func (ConstantSchedule) Factor(int) float64 { return 1 }

// ExponentialDecay multiplies the learning rate by Rate each step. The
// paper's decaying threshold α_d = 0.9999 is expressed as
// ExponentialDecay{Rate: 0.9999}.
type ExponentialDecay struct {
	Rate float64
}

// Factor implements Schedule.
func (e ExponentialDecay) Factor(step int) float64 {
	return math.Pow(e.Rate, float64(step))
}

// CosineAnnealing decays from 1 to MinFactor over TotalSteps with a cosine
// profile, then holds MinFactor.
type CosineAnnealing struct {
	TotalSteps int
	MinFactor  float64
}

// Factor implements Schedule.
func (c CosineAnnealing) Factor(step int) float64 {
	if c.TotalSteps <= 0 || step >= c.TotalSteps {
		return c.MinFactor
	}
	cos := 0.5 * (1 + math.Cos(math.Pi*float64(step)/float64(c.TotalSteps)))
	return c.MinFactor + (1-c.MinFactor)*cos
}

// WarmupWrap linearly ramps the factor from 0 to the inner schedule's value
// over WarmupSteps, then defers to Inner.
type WarmupWrap struct {
	WarmupSteps int
	Inner       Schedule
}

// Factor implements Schedule.
func (w WarmupWrap) Factor(step int) float64 {
	inner := 1.0
	if w.Inner != nil {
		inner = w.Inner.Factor(step)
	}
	if w.WarmupSteps > 0 && step < w.WarmupSteps {
		return inner * float64(step+1) / float64(w.WarmupSteps)
	}
	return inner
}

// Scheduled couples an optimizer with a schedule and a base learning rate;
// Step advances both.
type Scheduled struct {
	Opt    Optimizer
	Sched  Schedule
	BaseLR float64
	step   int
}

// NewScheduled returns a scheduled optimizer starting at step 0.
func NewScheduled(opt Optimizer, sched Schedule) *Scheduled {
	return &Scheduled{Opt: opt, Sched: sched, BaseLR: opt.LR()}
}

// Step sets the scheduled learning rate, applies one optimizer step and
// advances the schedule.
func (s *Scheduled) Step() {
	s.Opt.SetLR(s.BaseLR * s.Sched.Factor(s.step))
	s.Opt.Step()
	s.step++
}

// ZeroGrad forwards to the underlying optimizer.
func (s *Scheduled) ZeroGrad() { s.Opt.ZeroGrad() }

// StepIndex returns the number of scheduled steps taken.
func (s *Scheduled) StepIndex() int { return s.step }
