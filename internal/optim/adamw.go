package optim

import (
	"math"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

// AdamWConfig carries the AdamW hyper-parameters. The zero value is not
// usable; start from DefaultAdamWConfig (the paper's Sec. IV-A settings).
type AdamWConfig struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
}

// DefaultAdamWConfig returns the configuration the paper trains with:
// lr 1e-5, weight decay 1.0, β1 0.9, β2 0.999, ε 1e-8.
func DefaultAdamWConfig() AdamWConfig {
	return AdamWConfig{LR: 1e-5, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 1.0}
}

// AdamW implements Adam with decoupled weight decay (Loshchilov & Hutter),
// the optimizer of Sec. IV-A.
type AdamW struct {
	cfg    AdamWConfig
	params []*autograd.Value
	m, v   []*tensor.Tensor
	t      int
}

// NewAdamW returns an AdamW over params. Parameters whose gradients are nil
// at Step time (e.g. frozen branches) are skipped that step. Moment buffers
// are allocated lazily on a parameter's first update: a zero-valued moment
// and an absent one are numerically identical, and continuous-adaptation
// deployments hold one optimizer per stream over mostly-idle parameters —
// eager buffers would double every idle stream's token-bank footprint.
func NewAdamW(params []*autograd.Value, cfg AdamWConfig) *AdamW {
	a := &AdamW{cfg: cfg, params: params}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	return a
}

// Step applies one AdamW update.
func (a *AdamW) Step() {
	a.t++
	c := a.cfg
	bc1 := 1 - math.Pow(c.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(c.Beta2, float64(a.t))
	for i, p := range a.params {
		if p.Grad == nil || !p.RequiresGrad() {
			continue
		}
		// The update writes the parameter tensor in place; a COW-aliased
		// parameter (per-stream serving clone) materializes a private copy
		// here, leaving its siblings' bits untouched.
		p.EnsurePrivate()
		if a.m[i] == nil {
			a.m[i] = tensor.New(p.Data.Shape()...)
			a.v[i] = tensor.New(p.Data.Shape()...)
		}
		pd := p.Data.Data()
		gd := p.Grad.Data()
		md := a.m[i].Data()
		vd := a.v[i].Data()
		for k := range pd {
			g := gd[k]
			md[k] = c.Beta1*md[k] + (1-c.Beta1)*g
			vd[k] = c.Beta2*vd[k] + (1-c.Beta2)*g*g
			mhat := md[k] / bc1
			vhat := vd[k] / bc2
			// Decoupled weight decay: shrink the parameter directly rather
			// than folding decay into the gradient.
			pd[k] -= c.LR * (mhat/(math.Sqrt(vhat)+c.Eps) + c.WeightDecay*pd[k])
		}
	}
}

// ZeroGrad implements Optimizer.
func (a *AdamW) ZeroGrad() { zeroGrads(a.params) }

// SetLR implements Optimizer.
func (a *AdamW) SetLR(lr float64) { a.cfg.LR = lr }

// LR implements Optimizer.
func (a *AdamW) LR() float64 { return a.cfg.LR }

// StepCount returns how many updates have been applied.
func (a *AdamW) StepCount() int { return a.t }

// SetStepCount overrides the update counter — checkpoint restore uses it
// so bias correction continues from the pre-restart step.
func (a *AdamW) SetStepCount(t int) { a.t = t }

// Moments returns the live first/second-moment buffers, index-aligned with
// the params slice the optimizer was constructed over. Buffers are lazily
// allocated: a nil entry means that parameter has never been updated and
// its moments are identically zero. Checkpointing reads them out and
// restore copies saved state back in; mutating them outside that use
// corrupts the optimizer trajectory.
func (a *AdamW) Moments() (m, v []*tensor.Tensor) { return a.m, a.v }

// EnsureMoment materializes and returns parameter i's moment buffers —
// the checkpoint-restore hook for writing saved nonzero moments back in.
func (a *AdamW) EnsureMoment(i int) (m, v *tensor.Tensor) {
	if a.m[i] == nil {
		a.m[i] = tensor.New(a.params[i].Data.Shape()...)
		a.v[i] = tensor.New(a.params[i].Data.Shape()...)
	}
	return a.m[i], a.v[i]
}

// MomentBytes returns the resident bytes of the allocated moment buffers —
// the memory ledger's optimizer term. Lazily-absent buffers cost nothing.
func (a *AdamW) MomentBytes() int64 {
	var b int64
	for i := range a.m {
		if a.m[i] != nil {
			b += int64(a.m[i].Size()+a.v[i].Size()) * 8
		}
	}
	return b
}

// SGD implements stochastic gradient descent with classical momentum; it is
// the sanity baseline in the optimizer ablation benches.
type SGD struct {
	lr       float64
	momentum float64
	params   []*autograd.Value
	vel      []*tensor.Tensor
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum (0 disables momentum).
func NewSGD(params []*autograd.Value, lr, momentum float64) *SGD {
	s := &SGD{lr: lr, momentum: momentum, params: params}
	s.vel = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		s.vel[i] = tensor.New(p.Data.Shape()...)
	}
	return s
}

// Step applies one SGD update.
func (s *SGD) Step() {
	for i, p := range s.params {
		if p.Grad == nil || !p.RequiresGrad() {
			continue
		}
		p.EnsurePrivate()
		pd := p.Data.Data()
		gd := p.Grad.Data()
		vd := s.vel[i].Data()
		for k := range pd {
			vd[k] = s.momentum*vd[k] - s.lr*gd[k]
			pd[k] += vd[k]
		}
	}
}

// Velocities returns the live momentum buffers, index-aligned with the
// params slice — the SGD counterpart of AdamW.Moments for checkpointing.
func (s *SGD) Velocities() []*tensor.Tensor { return s.vel }

// ZeroGrad implements Optimizer.
func (s *SGD) ZeroGrad() { zeroGrads(s.params) }

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }
