// Package kg implements the mission-specific reasoning knowledge graph of
// Sec. III-B: a hierarchical directed acyclic graph in which every node
// carries a short concept text and a level assignment, and edges connect
// nodes at level i only to nodes at level i+1.
//
// Levels are laid out as: level 0 holds the single sensor node (the frame
// embedding enters here), levels 1..Depth hold reasoning concepts, and
// level Depth+1 holds the single embedding node the GNN reads the final
// reasoning embedding from. Structural rules are enforced at mutation time
// where cheap, and checked comprehensively by Validate, which is what the
// generation loop's error-detection phase runs.
package kg

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// NodeID identifies a node within one Graph. IDs are never reused, so a
// pruned node's ID stays dangling forever — which is what lets adaptation
// logs refer to pruned nodes unambiguously.
type NodeID int

// Kind classifies a node's structural role.
type Kind int

// Node kinds.
const (
	Reasoning Kind = iota
	Sensor
	EmbeddingNode
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Reasoning:
		return "reasoning"
	case Sensor:
		return "sensor"
	case EmbeddingNode:
		return "embedding"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is one concept in the reasoning graph.
type Node struct {
	ID      NodeID
	Concept string
	Level   int
	Kind    Kind
	// TokenIDs are the BPE token ids of Concept; the continuous token
	// embeddings adaptation updates live in the model's per-graph
	// embedding table, indexed by node slots (see internal/gnn).
	TokenIDs []int
	// Created marks nodes inserted by the node-creation phase (Fig. 4C)
	// rather than the original LLM generation.
	Created bool
}

// Edge is a directed connection between consecutive levels.
type Edge struct {
	Src, Dst NodeID
}

// Graph is a mutable hierarchical reasoning KG.
type Graph struct {
	Mission string

	nodes  map[NodeID]*Node
	order  []NodeID // insertion order, for deterministic traversal
	out    map[NodeID]map[NodeID]bool
	in     map[NodeID]map[NodeID]bool
	nextID NodeID
	depth  int // number of reasoning levels (levels 1..depth)

	// shared is nonzero while the node/edge storage above may be aliased
	// by a copy-on-write sibling (CloneCOW): every mutator calls fault()
	// first, which deep-copies the storage and clears the flag, so the
	// sibling keeps the original bits. Accessed atomically (a plain uint32
	// so Graph values stay assignable, e.g. in UnmarshalJSON): sibling
	// streams' fault checks can race backbone re-clones during rehydration.
	shared uint32
}

// New returns an empty graph for the given mission with the given number
// of reasoning levels.
func New(mission string, depth int) *Graph {
	if depth < 1 {
		panic(fmt.Sprintf("kg: depth must be ≥1, got %d", depth))
	}
	return &Graph{
		Mission: mission,
		nodes:   make(map[NodeID]*Node),
		out:     make(map[NodeID]map[NodeID]bool),
		in:      make(map[NodeID]map[NodeID]bool),
		depth:   depth,
	}
}

// Depth returns the number of reasoning levels.
func (g *Graph) Depth() int { return g.depth }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, ds := range g.out {
		n += len(ds)
	}
	return n
}

// AddNode inserts a reasoning concept at the given level (1..Depth).
// It returns ErrDuplicateConcept if the concept already appears anywhere
// in the graph — the first error class the generation loop detects.
func (g *Graph) AddNode(concept string, level int, tokenIDs []int) (*Node, error) {
	if level < 1 || level > g.depth {
		return nil, fmt.Errorf("kg: level %d outside reasoning range [1,%d]: %w", level, g.depth, ErrBadLevel)
	}
	for _, id := range g.order {
		if n := g.nodes[id]; n.Kind == Reasoning && n.Concept == concept {
			return nil, fmt.Errorf("kg: concept %q already at node %d level %d: %w", concept, n.ID, n.Level, ErrDuplicateConcept)
		}
	}
	return g.insert(concept, level, Reasoning, tokenIDs), nil
}

// insert performs the raw node insertion.
func (g *Graph) insert(concept string, level int, kind Kind, tokenIDs []int) *Node {
	g.fault()
	n := &Node{
		ID:       g.nextID,
		Concept:  concept,
		Level:    level,
		Kind:     kind,
		TokenIDs: append([]int(nil), tokenIDs...),
	}
	g.nextID++
	g.nodes[n.ID] = n
	g.order = append(g.order, n.ID)
	g.out[n.ID] = make(map[NodeID]bool)
	g.in[n.ID] = make(map[NodeID]bool)
	return n
}

// AddEdge connects src to dst. It returns ErrInvalidEdge unless dst's level
// is exactly src's level + 1 — the second error class the generation loop
// detects. Duplicate edges are rejected with ErrDuplicateEdge.
func (g *Graph) AddEdge(src, dst NodeID) error {
	ns, ok := g.nodes[src]
	if !ok {
		return fmt.Errorf("kg: edge source %d: %w", src, ErrNoSuchNode)
	}
	nd, ok := g.nodes[dst]
	if !ok {
		return fmt.Errorf("kg: edge destination %d: %w", dst, ErrNoSuchNode)
	}
	if nd.Level != ns.Level+1 {
		return fmt.Errorf("kg: edge %d(level %d)→%d(level %d) violates hierarchy: %w",
			src, ns.Level, dst, nd.Level, ErrInvalidEdge)
	}
	if g.out[src][dst] {
		return fmt.Errorf("kg: edge %d→%d: %w", src, dst, ErrDuplicateEdge)
	}
	g.fault()
	g.out[src][dst] = true
	g.in[dst][src] = true
	return nil
}

// RemoveEdge deletes an edge if present.
func (g *Graph) RemoveEdge(src, dst NodeID) {
	if !g.out[src][dst] {
		return
	}
	g.fault()
	delete(g.out[src], dst)
	delete(g.in[dst], src)
}

// RemoveNode deletes a node and all incident edges — the pruning primitive
// of Fig. 4B. Removing the sensor or embedding node is rejected.
func (g *Graph) RemoveNode(id NodeID) error {
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("kg: remove node %d: %w", id, ErrNoSuchNode)
	}
	if n.Kind != Reasoning {
		return fmt.Errorf("kg: cannot remove %s node %d: %w", n.Kind, id, ErrTerminalNode)
	}
	g.fault()
	for dst := range g.out[id] {
		delete(g.in[dst], id)
	}
	for src := range g.in[id] {
		delete(g.out[src], id)
	}
	delete(g.out, id)
	delete(g.in, id)
	delete(g.nodes, id)
	for i, oid := range g.order {
		if oid == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	return nil
}

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Nodes returns all nodes sorted by (level, id). The slice is fresh; the
// *Node values are the live graph nodes.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, id := range g.order {
		out = append(out, g.nodes[id])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// NodesAtLevel returns the nodes at one level sorted by id.
func (g *Graph) NodesAtLevel(level int) []*Node {
	var out []*Node
	for _, id := range g.order {
		if n := g.nodes[id]; n.Level == level {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Edges returns all edges sorted by (src, dst).
func (g *Graph) Edges() []Edge {
	var out []Edge
	for src, ds := range g.out {
		for dst := range ds {
			out = append(out, Edge{Src: src, Dst: dst})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// OutNeighbors returns the destinations of a node's out-edges, sorted.
func (g *Graph) OutNeighbors(id NodeID) []NodeID {
	return sortedIDs(g.out[id])
}

// InNeighbors returns the sources of a node's in-edges, sorted.
func (g *Graph) InNeighbors(id NodeID) []NodeID {
	return sortedIDs(g.in[id])
}

func sortedIDs(set map[NodeID]bool) []NodeID {
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasEdge reports whether the edge src→dst exists.
func (g *Graph) HasEdge(src, dst NodeID) bool { return g.out[src][dst] }

// SensorNode returns the sensor node, or nil before AttachTerminals.
func (g *Graph) SensorNode() *Node { return g.findKind(Sensor) }

// EmbeddingTerminal returns the embedding node, or nil before
// AttachTerminals.
func (g *Graph) EmbeddingTerminal() *Node { return g.findKind(EmbeddingNode) }

func (g *Graph) findKind(k Kind) *Node {
	for _, id := range g.order {
		if n := g.nodes[id]; n.Kind == k {
			return n
		}
	}
	return nil
}

// AttachTerminals adds the sensor node at level 0 with edges to every
// level-1 node, and the embedding node at level Depth+1 with edges from
// every level-Depth node — the finalisation step of the generation
// procedure (Sec. III-B, last paragraph). It is idempotent.
func (g *Graph) AttachTerminals() {
	if g.SensorNode() == nil {
		s := g.insert("[sensor]", 0, Sensor, nil)
		for _, n := range g.NodesAtLevel(1) {
			g.out[s.ID][n.ID] = true
			g.in[n.ID][s.ID] = true
		}
	}
	if g.EmbeddingTerminal() == nil {
		e := g.insert("[embedding]", g.depth+1, EmbeddingNode, nil)
		for _, n := range g.NodesAtLevel(g.depth) {
			g.out[n.ID][e.ID] = true
			g.in[e.ID][n.ID] = true
		}
	}
}

// ReattachTerminalEdges reconnects the sensor node to every level-1 node
// and the embedding node to every level-Depth node, adding only missing
// edges. Node creation at the boundary levels calls this so new nodes
// join the reasoning path.
func (g *Graph) ReattachTerminalEdges() {
	if s := g.SensorNode(); s != nil {
		for _, n := range g.NodesAtLevel(1) {
			if !g.out[s.ID][n.ID] {
				g.fault()
				g.out[s.ID][n.ID] = true
				g.in[n.ID][s.ID] = true
			}
		}
	}
	if e := g.EmbeddingTerminal(); e != nil {
		for _, n := range g.NodesAtLevel(g.depth) {
			if !g.out[n.ID][e.ID] {
				g.fault()
				g.out[n.ID][e.ID] = true
				g.in[e.ID][n.ID] = true
			}
		}
	}
}

// CloneCOW returns a copy-on-write view of g: the clone aliases g's node
// and edge storage by reference until either side mutates, at which point
// the mutating side deep-copies the storage first (fault) and the other
// side keeps the original bits. Both sides are marked shared; an unmutated
// clone therefore costs O(1) memory regardless of graph size — which is
// what lets hundreds of serving streams share one frozen backbone KG.
func (g *Graph) CloneCOW() *Graph {
	c := &Graph{
		Mission: g.Mission,
		nodes:   g.nodes,
		order:   g.order,
		out:     g.out,
		in:      g.in,
		nextID:  g.nextID,
		depth:   g.depth,
	}
	g.MarkShared()
	c.MarkShared()
	return c
}

// Shared reports whether the graph's storage may be COW-aliased by a
// sibling (memory accounting treats a shared graph as costing nothing).
func (g *Graph) Shared() bool { return atomic.LoadUint32(&g.shared) != 0 }

// MarkShared flags the storage as COW-aliased, reporting whether this call
// changed the flag — the hook a failed multi-graph clone uses to roll back
// exactly the marks it introduced.
func (g *Graph) MarkShared() bool { return atomic.CompareAndSwapUint32(&g.shared, 0, 1) }

// UnmarkShared clears the COW flag without copying. Only valid when every
// alias created against this mark has been discarded unused (the
// clone-failure rollback path).
func (g *Graph) UnmarkShared() { atomic.StoreUint32(&g.shared, 0) }

// fault materializes a private copy of the node/edge storage when it is
// COW-shared. Every mutator calls it before its first write, so a mutation
// on one side of a COW pair never reaches the other: the writer pays one
// deep copy, readers keep the original. No-op on a private graph. The
// *Node values are part of the copied storage, so mutators must re-fetch
// node pointers after faulting.
func (g *Graph) fault() {
	if atomic.LoadUint32(&g.shared) == 0 {
		return
	}
	nodes := make(map[NodeID]*Node, len(g.nodes))
	for id, n := range g.nodes {
		cp := *n
		cp.TokenIDs = append([]int(nil), n.TokenIDs...)
		nodes[id] = &cp
	}
	g.nodes = nodes
	g.out = copyEdgeSet(g.out)
	g.in = copyEdgeSet(g.in)
	g.order = append([]NodeID(nil), g.order...)
	atomic.StoreUint32(&g.shared, 0)
}

func copyEdgeSet(set map[NodeID]map[NodeID]bool) map[NodeID]map[NodeID]bool {
	out := make(map[NodeID]map[NodeID]bool, len(set))
	for id, ds := range set {
		m := make(map[NodeID]bool, len(ds))
		for d := range ds {
			m[d] = true
		}
		out[id] = m
	}
	return out
}

// ApproxMemBytes estimates the resident heap bytes of the graph's node and
// edge storage — the memory ledger's graph term. The per-node and per-edge
// constants approximate Go map-entry and struct overhead; the estimate is
// for budgeting, not exact accounting.
func (g *Graph) ApproxMemBytes() int64 {
	const (
		nodeOverhead = 160 // Node struct + nodes/out/in map entries + order slot
		edgeOverhead = 32  // two boolean map entries
	)
	b := int64(len(g.nodes)) * nodeOverhead
	for _, n := range g.nodes {
		b += int64(len(n.Concept)) + int64(len(n.TokenIDs))*8
	}
	b += int64(g.NumEdges()) * edgeOverhead
	return b
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.Mission, g.depth)
	c.nextID = g.nextID
	c.order = append([]NodeID(nil), g.order...)
	for id, n := range g.nodes {
		cp := *n
		cp.TokenIDs = append([]int(nil), n.TokenIDs...)
		c.nodes[id] = &cp
		c.out[id] = make(map[NodeID]bool, len(g.out[id]))
		for d := range g.out[id] {
			c.out[id][d] = true
		}
		c.in[id] = make(map[NodeID]bool, len(g.in[id]))
		for s := range g.in[id] {
			c.in[id][s] = true
		}
	}
	return c
}
