package kg

import (
	"fmt"
	"math/rand"
)

// PruneNode removes a diverging reasoning node and its incident edges
// (Fig. 4B). It is RemoveNode plus repair: if pruning empties a level's
// connection to the next, the caller is expected to follow with
// CreateNode, which is how the adaptation loop always uses it.
func (g *Graph) PruneNode(id NodeID) error {
	return g.RemoveNode(id)
}

// CreateNode implements the node-creation phase (Fig. 4C): a new node is
// inserted at the given level with the provided placeholder concept and
// token ids, and random edge connections are drawn — each feasible in-edge
// from level-1 and out-edge to level+1 is included independently with
// probability edgeProb, with at least one edge in each direction forced so
// the node joins the reasoning flow. Boundary levels connect to the
// sensor/embedding terminals via ReattachTerminalEdges.
func (g *Graph) CreateNode(rng *rand.Rand, concept string, level int, tokenIDs []int, edgeProb float64) (*Node, error) {
	n, err := g.AddNode(concept, level, tokenIDs)
	if err != nil {
		return nil, err
	}
	n.Created = true

	connect := func(candidates []*Node, incoming bool) {
		if len(candidates) == 0 {
			return
		}
		any := false
		for _, c := range candidates {
			if rng.Float64() < edgeProb {
				if incoming {
					g.out[c.ID][n.ID] = true
					g.in[n.ID][c.ID] = true
				} else {
					g.out[n.ID][c.ID] = true
					g.in[c.ID][n.ID] = true
				}
				any = true
			}
		}
		if !any {
			c := candidates[rng.Intn(len(candidates))]
			if incoming {
				g.out[c.ID][n.ID] = true
				g.in[n.ID][c.ID] = true
			} else {
				g.out[n.ID][c.ID] = true
				g.in[c.ID][n.ID] = true
			}
		}
	}

	if level > 1 {
		connect(reasoningOnly(g.NodesAtLevel(level-1)), true)
	}
	if level < g.depth {
		connect(reasoningOnly(g.NodesAtLevel(level+1)), false)
	}
	g.ReattachTerminalEdges()
	return n, nil
}

func reasoningOnly(ns []*Node) []*Node {
	out := ns[:0]
	for _, n := range ns {
		if n.Kind == Reasoning {
			out = append(out, n)
		}
	}
	return out
}

// ReplaceNode prunes old and creates a fresh node at the same level in one
// step, returning the new node. This is the combined prune→create cycle
// the adaptation mechanism performs when a node diverges (Sec. III-D).
// Pruning can sever other nodes from the reasoning flow (a neighbour whose
// only edge went through the victim); ReplaceNode finishes with
// RepairConnectivity so the graph always remains strictly valid — the
// paper leaves this repair unspecified, but the GNN requires every node to
// lie on a sensor→embedding path.
func (g *Graph) ReplaceNode(rng *rand.Rand, old NodeID, concept string, tokenIDs []int, edgeProb float64) (*Node, error) {
	n := g.Node(old)
	if n == nil {
		return nil, fmt.Errorf("kg: replace node %d: %w", old, ErrNoSuchNode)
	}
	level := n.Level
	if err := g.PruneNode(old); err != nil {
		return nil, err
	}
	fresh, err := g.CreateNode(rng, concept, level, tokenIDs, edgeProb)
	if err != nil {
		return nil, err
	}
	g.RepairConnectivity(rng)
	return fresh, nil
}

// RepairConnectivity reconnects reasoning nodes that lost all in-edges or
// all out-edges, drawing a random legal edge for each. Terminal
// connections are restored first so boundary levels repair through the
// sensor/embedding nodes.
func (g *Graph) RepairConnectivity(rng *rand.Rand) {
	g.ReattachTerminalEdges()
	for _, n := range g.Nodes() {
		if n.Kind != Reasoning {
			continue
		}
		if len(g.in[n.ID]) == 0 {
			if cands := g.NodesAtLevel(n.Level - 1); len(cands) > 0 {
				src := cands[rng.Intn(len(cands))]
				g.fault()
				g.out[src.ID][n.ID] = true
				g.in[n.ID][src.ID] = true
			}
		}
		if len(g.out[n.ID]) == 0 {
			if cands := g.NodesAtLevel(n.Level + 1); len(cands) > 0 {
				dst := cands[rng.Intn(len(cands))]
				g.fault()
				g.out[n.ID][dst.ID] = true
				g.in[dst.ID][n.ID] = true
			}
		}
	}
}

// SetConcept rewrites a node's concept text and token ids — the retrieval
// stage uses it to install decoded interpretable words after adaptation.
func (g *Graph) SetConcept(id NodeID, concept string, tokenIDs []int) error {
	if g.Node(id) == nil {
		return fmt.Errorf("kg: set concept on node %d: %w", id, ErrNoSuchNode)
	}
	// Node values live in the COW-shared storage: fault first, then
	// re-fetch the (now private) node before mutating it in place.
	g.fault()
	n := g.Node(id)
	n.Concept = concept
	n.TokenIDs = append([]int(nil), tokenIDs...)
	return nil
}
