package kg

import (
	"errors"
	"fmt"
)

// Sentinel errors for structural violations. Wrap-aware: test with
// errors.Is.
var (
	ErrDuplicateConcept = errors.New("duplicate concept")
	ErrInvalidEdge      = errors.New("invalid edge")
	ErrDuplicateEdge    = errors.New("duplicate edge")
	ErrBadLevel         = errors.New("bad level")
	ErrNoSuchNode       = errors.New("no such node")
	ErrTerminalNode     = errors.New("terminal node")
)

// IssueKind classifies a validation finding.
type IssueKind int

// Issue kinds. DuplicateConcept and InvalidEdge are the two error classes
// the paper's error-detection step looks for (Sec. III-B); the rest catch
// structural rot that would silently break the GNN.
const (
	IssueDuplicateConcept IssueKind = iota
	IssueInvalidEdge
	IssueEmptyLevel
	IssueOrphanNode
	IssueDeadEndNode
	IssueMissingSensor
	IssueMissingEmbedding
)

// String returns the issue kind name.
func (k IssueKind) String() string {
	switch k {
	case IssueDuplicateConcept:
		return "duplicate-concept"
	case IssueInvalidEdge:
		return "invalid-edge"
	case IssueEmptyLevel:
		return "empty-level"
	case IssueOrphanNode:
		return "orphan-node"
	case IssueDeadEndNode:
		return "dead-end-node"
	case IssueMissingSensor:
		return "missing-sensor"
	case IssueMissingEmbedding:
		return "missing-embedding"
	}
	return fmt.Sprintf("IssueKind(%d)", int(k))
}

// Issue is one validation finding.
type Issue struct {
	Kind IssueKind
	// Node is the offending node for node-scoped issues (or the duplicate
	// occurrence for IssueDuplicateConcept).
	Node NodeID
	// Src/Dst identify the offending edge for IssueInvalidEdge.
	Src, Dst NodeID
	// Level is set for IssueEmptyLevel.
	Level int
	Msg   string
}

// String renders the issue for logs.
func (i Issue) String() string { return fmt.Sprintf("%s: %s", i.Kind, i.Msg) }

// Validate checks the full structural contract and returns every finding.
// A nil return means the graph is well-formed. strict additionally
// requires terminals to be attached and every reasoning node to lie on a
// sensor→embedding path (no orphans or dead ends).
func (g *Graph) Validate(strict bool) []Issue {
	var issues []Issue

	// Duplicate concepts across reasoning nodes.
	seen := make(map[string]NodeID)
	for _, n := range g.Nodes() {
		if n.Kind != Reasoning {
			continue
		}
		if first, dup := seen[n.Concept]; dup {
			issues = append(issues, Issue{
				Kind: IssueDuplicateConcept,
				Node: n.ID,
				Msg:  fmt.Sprintf("concept %q at node %d duplicates node %d", n.Concept, n.ID, first),
			})
			continue
		}
		seen[n.Concept] = n.ID
	}

	// Edge hierarchy.
	for _, e := range g.Edges() {
		src, dst := g.nodes[e.Src], g.nodes[e.Dst]
		if dst.Level != src.Level+1 {
			issues = append(issues, Issue{
				Kind: IssueInvalidEdge,
				Src:  e.Src,
				Dst:  e.Dst,
				Msg:  fmt.Sprintf("edge %d(level %d)→%d(level %d) skips levels", e.Src, src.Level, e.Dst, dst.Level),
			})
		}
	}

	// Every reasoning level populated.
	for l := 1; l <= g.depth; l++ {
		if len(g.NodesAtLevel(l)) == 0 {
			issues = append(issues, Issue{
				Kind:  IssueEmptyLevel,
				Level: l,
				Msg:   fmt.Sprintf("reasoning level %d has no nodes", l),
			})
		}
	}

	if !strict {
		return issues
	}

	if g.SensorNode() == nil {
		issues = append(issues, Issue{Kind: IssueMissingSensor, Msg: "sensor node not attached"})
	}
	if g.EmbeddingTerminal() == nil {
		issues = append(issues, Issue{Kind: IssueMissingEmbedding, Msg: "embedding node not attached"})
	}
	for _, n := range g.Nodes() {
		if n.Kind != Reasoning {
			continue
		}
		if len(g.in[n.ID]) == 0 {
			issues = append(issues, Issue{
				Kind: IssueOrphanNode,
				Node: n.ID,
				Msg:  fmt.Sprintf("node %d (%q, level %d) has no in-edges", n.ID, n.Concept, n.Level),
			})
		}
		if len(g.out[n.ID]) == 0 {
			issues = append(issues, Issue{
				Kind: IssueDeadEndNode,
				Node: n.ID,
				Msg:  fmt.Sprintf("node %d (%q, level %d) has no out-edges", n.ID, n.Concept, n.Level),
			})
		}
	}
	return issues
}

// IssuesOfKind filters issues by kind.
func IssuesOfKind(issues []Issue, kind IssueKind) []Issue {
	var out []Issue
	for _, is := range issues {
		if is.Kind == kind {
			out = append(out, is)
		}
	}
	return out
}
