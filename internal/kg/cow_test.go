package kg

import (
	"bytes"
	"testing"
)

func marshal(t *testing.T, g *Graph) []byte {
	t.Helper()
	buf, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestCloneCOWSharesUntilWrite(t *testing.T) {
	src := buildTestGraph(t)
	before := marshal(t, src)

	c := src.CloneCOW()
	if !src.Shared() || !c.Shared() {
		t.Fatal("both sides should be marked shared after CloneCOW")
	}
	if !bytes.Equal(marshal(t, c), before) {
		t.Fatal("COW clone does not serialize identically to its source")
	}

	// First mutation on the clone faults a private copy; the source's
	// storage — including Node values and edge sets — stays bit-unchanged.
	n, err := c.AddNode("fresh", 1, []int{9})
	if err != nil {
		t.Fatal(err)
	}
	if c.Shared() {
		t.Error("clone still marked shared after mutating")
	}
	if !src.Shared() {
		t.Error("source lost its shared mark on a clone-side fault")
	}
	if src.Node(n.ID) != nil && src.Node(n.ID).Concept == "fresh" {
		t.Error("clone-side AddNode leaked into the source")
	}
	if !bytes.Equal(marshal(t, src), before) {
		t.Error("source changed after clone-side mutation")
	}
}

func TestCloneCOWSourceWriteLeavesCloneIntact(t *testing.T) {
	src := buildTestGraph(t)
	c := src.CloneCOW()
	want := marshal(t, c)

	var a, b NodeID
	for _, n := range src.Nodes() {
		if n.Concept == "a" {
			a = n.ID
		}
		if n.Concept == "d" {
			b = n.ID
		}
	}
	src.RemoveEdge(a, b)
	if src.Shared() {
		t.Error("source still marked shared after mutating")
	}
	if !bytes.Equal(marshal(t, c), want) {
		t.Error("clone changed after source-side mutation")
	}
}

func TestCloneCOWDeepMutators(t *testing.T) {
	// Every mutator that reaches shared storage must fault first. Run each
	// against a fresh clone pair and check the sibling stays bit-unchanged.
	muts := []struct {
		name string
		run  func(t *testing.T, g *Graph)
	}{
		{"SetConcept", func(t *testing.T, g *Graph) {
			id := g.Nodes()[1].ID
			if err := g.SetConcept(id, "renamed", []int{42}); err != nil {
				t.Fatal(err)
			}
		}},
		{"RemoveEdge", func(t *testing.T, g *Graph) {
			var a, c NodeID
			for _, n := range g.Nodes() {
				if n.Concept == "a" {
					a = n.ID
				}
				if n.Concept == "c" {
					c = n.ID
				}
			}
			g.RemoveEdge(a, c)
		}},
		{"RemoveNode", func(t *testing.T, g *Graph) {
			for _, n := range g.Nodes() {
				if n.Concept == "d" {
					if err := g.RemoveNode(n.ID); err != nil {
						t.Fatal(err)
					}
					return
				}
			}
			t.Fatal("node d not found")
		}},
		{"Unmarshal", func(t *testing.T, g *Graph) {
			buf := marshal(t, buildTestGraph(t))
			fresh := New("x", 1)
			if err := fresh.UnmarshalJSON(buf); err != nil {
				t.Fatal(err)
			}
			*g = *fresh
		}},
	}
	for _, m := range muts {
		t.Run(m.name, func(t *testing.T) {
			src := buildTestGraph(t)
			sibling := src.CloneCOW()
			want := marshal(t, sibling)
			m.run(t, src)
			if !bytes.Equal(marshal(t, sibling), want) {
				t.Errorf("%s on source changed the COW sibling", m.name)
			}
		})
	}
}

func TestCloneCOWMarkSharedReportsTransition(t *testing.T) {
	g := buildTestGraph(t)
	if !g.MarkShared() {
		t.Fatal("first MarkShared should report the 0→1 transition")
	}
	if g.MarkShared() {
		t.Fatal("second MarkShared should report no transition")
	}
	g.UnmarkShared()
	if g.Shared() {
		t.Fatal("UnmarkShared did not clear the flag")
	}
}

func TestApproxMemBytesTracksGrowth(t *testing.T) {
	g := buildTestGraph(t)
	base := g.ApproxMemBytes()
	if base <= 0 {
		t.Fatalf("ApproxMemBytes = %d, want > 0", base)
	}
	if _, err := g.AddNode("extra", 1, []int{11, 12}); err != nil {
		t.Fatal(err)
	}
	if grown := g.ApproxMemBytes(); grown <= base {
		t.Errorf("ApproxMemBytes %d after AddNode, want > %d", grown, base)
	}
}
