package kg

import (
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildTestGraph returns a valid 2-level KG:
//
//	sensor → {a, b} → {c, d} → embedding
func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("TestMission", 2)
	a, err := g.AddNode("a", 1, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.AddNode("b", 1, []int{2})
	c, _ := g.AddNode("c", 2, []int{3})
	d, _ := g.AddNode("d", 2, []int{4})
	for _, e := range []Edge{{a.ID, c.ID}, {a.ID, d.ID}, {b.ID, c.ID}} {
		if err := g.AddEdge(e.Src, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(b.ID, d.ID); err != nil {
		t.Fatal(err)
	}
	g.AttachTerminals()
	return g
}

func TestBuildAndValidate(t *testing.T) {
	g := buildTestGraph(t)
	if issues := g.Validate(true); len(issues) != 0 {
		t.Fatalf("valid graph reported issues: %v", issues)
	}
	if g.NumNodes() != 6 { // 4 reasoning + sensor + embedding
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4+2+2 { // reasoning + sensor fan-out + embedding fan-in
		t.Errorf("edges = %d", g.NumEdges())
	}
	if g.Depth() != 2 {
		t.Errorf("depth = %d", g.Depth())
	}
}

func TestDuplicateConceptRejected(t *testing.T) {
	g := New("m", 2)
	if _, err := g.AddNode("x", 1, nil); err != nil {
		t.Fatal(err)
	}
	_, err := g.AddNode("x", 2, nil)
	if !errors.Is(err, ErrDuplicateConcept) {
		t.Errorf("err = %v, want ErrDuplicateConcept", err)
	}
}

func TestBadLevelRejected(t *testing.T) {
	g := New("m", 2)
	if _, err := g.AddNode("x", 0, nil); !errors.Is(err, ErrBadLevel) {
		t.Errorf("level 0: %v", err)
	}
	if _, err := g.AddNode("x", 3, nil); !errors.Is(err, ErrBadLevel) {
		t.Errorf("level 3: %v", err)
	}
}

func TestInvalidEdgeRejected(t *testing.T) {
	g := New("m", 3)
	a, _ := g.AddNode("a", 1, nil)
	c, _ := g.AddNode("c", 3, nil)
	if err := g.AddEdge(a.ID, c.ID); !errors.Is(err, ErrInvalidEdge) {
		t.Errorf("level-skip edge: %v", err)
	}
	if err := g.AddEdge(c.ID, a.ID); !errors.Is(err, ErrInvalidEdge) {
		t.Errorf("backward edge: %v", err)
	}
	if err := g.AddEdge(a.ID, NodeID(99)); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("missing node: %v", err)
	}
	b, _ := g.AddNode("b", 2, nil)
	if err := g.AddEdge(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a.ID, b.ID); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate edge: %v", err)
	}
}

func TestRemoveNodeCleansEdges(t *testing.T) {
	g := buildTestGraph(t)
	a := g.NodesAtLevel(1)[0]
	if err := g.RemoveNode(a.ID); err != nil {
		t.Fatal(err)
	}
	if g.Node(a.ID) != nil {
		t.Error("node still present")
	}
	for _, e := range g.Edges() {
		if e.Src == a.ID || e.Dst == a.ID {
			t.Errorf("dangling edge %v", e)
		}
	}
}

func TestRemoveTerminalRejected(t *testing.T) {
	g := buildTestGraph(t)
	if err := g.RemoveNode(g.SensorNode().ID); !errors.Is(err, ErrTerminalNode) {
		t.Errorf("sensor removal: %v", err)
	}
	if err := g.RemoveNode(g.EmbeddingTerminal().ID); !errors.Is(err, ErrTerminalNode) {
		t.Errorf("embedding removal: %v", err)
	}
}

func TestAttachTerminalsIdempotent(t *testing.T) {
	g := buildTestGraph(t)
	n, e := g.NumNodes(), g.NumEdges()
	g.AttachTerminals()
	if g.NumNodes() != n || g.NumEdges() != e {
		t.Error("second AttachTerminals changed the graph")
	}
}

func TestValidateFindsPlantedIssues(t *testing.T) {
	g := New("m", 3)
	a, _ := g.AddNode("a", 1, nil)
	b, _ := g.AddNode("b", 2, nil)
	_ = g.AddEdge(a.ID, b.ID)
	// Level 3 left empty; no terminals; b has no out-edges.
	issues := g.Validate(true)
	kinds := map[IssueKind]int{}
	for _, is := range issues {
		kinds[is.Kind]++
	}
	if kinds[IssueEmptyLevel] != 1 {
		t.Errorf("empty-level findings = %d", kinds[IssueEmptyLevel])
	}
	if kinds[IssueMissingSensor] != 1 || kinds[IssueMissingEmbedding] != 1 {
		t.Errorf("missing-terminal findings = %v", kinds)
	}
	if kinds[IssueDeadEndNode] == 0 {
		t.Error("dead-end not reported")
	}
	// Non-strict skips structural reachability checks.
	lax := g.Validate(false)
	for _, is := range lax {
		if is.Kind == IssueOrphanNode || is.Kind == IssueMissingSensor {
			t.Errorf("non-strict validation reported %v", is.Kind)
		}
	}
}

func TestValidateDetectsHandConstructedDuplicates(t *testing.T) {
	g := New("m", 1)
	n1, _ := g.AddNode("same", 1, nil)
	// Bypass AddNode's check by mutating the node directly — Validate must
	// still catch it (this is what generation staging relies on).
	n2, _ := g.AddNode("other", 1, nil)
	n2.Concept = "same"
	issues := g.Validate(false)
	dups := IssuesOfKind(issues, IssueDuplicateConcept)
	if len(dups) != 1 {
		t.Fatalf("duplicate findings = %d, want 1", len(dups))
	}
	if dups[0].Node != n2.ID && dups[0].Node != n1.ID {
		t.Errorf("duplicate finding names node %d", dups[0].Node)
	}
}

func TestCreateNodeJoinsReasoningFlow(t *testing.T) {
	g := buildTestGraph(t)
	rng := rand.New(rand.NewSource(1))
	n, err := g.CreateNode(rng, "fresh", 2, []int{9}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Created {
		t.Error("Created flag not set")
	}
	if len(g.InNeighbors(n.ID)) == 0 {
		t.Error("created node has no in-edges")
	}
	// Level-2 node in a depth-2 graph must feed the embedding terminal.
	emb := g.EmbeddingTerminal()
	if !g.HasEdge(n.ID, emb.ID) {
		t.Error("created boundary node not connected to embedding terminal")
	}
	if issues := g.Validate(true); len(issues) != 0 {
		t.Errorf("graph invalid after CreateNode: %v", issues)
	}
}

func TestCreateNodeAtLevelOneConnectsSensor(t *testing.T) {
	g := buildTestGraph(t)
	rng := rand.New(rand.NewSource(2))
	n, err := g.CreateNode(rng, "fresh1", 1, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(g.SensorNode().ID, n.ID) {
		t.Error("created level-1 node not fed by sensor")
	}
	if issues := g.Validate(true); len(issues) != 0 {
		t.Errorf("invalid after level-1 creation: %v", issues)
	}
}

func TestReplaceNodePreservesValidity(t *testing.T) {
	g := buildTestGraph(t)
	rng := rand.New(rand.NewSource(3))
	victim := g.NodesAtLevel(1)[1]
	fresh, err := g.ReplaceNode(rng, victim.ID, "replacement", []int{7}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Node(victim.ID) != nil {
		t.Error("old node survives")
	}
	if fresh.Level != 1 {
		t.Errorf("replacement level = %d", fresh.Level)
	}
	if issues := g.Validate(true); len(issues) != 0 {
		t.Errorf("invalid after replace: %v", issues)
	}
	if _, err := g.ReplaceNode(rng, NodeID(999), "x", nil, 0.5); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("replace missing node: %v", err)
	}
}

// Property: random prune/create cycles never break strict validity — the
// central robustness invariant of continuous adaptation.
func TestRandomMutationChurnStaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New("churn", 3)
		// Build 3 levels × 3 nodes fully connected between levels.
		var prev []*Node
		for l := 1; l <= 3; l++ {
			var cur []*Node
			for i := 0; i < 3; i++ {
				n, err := g.AddNode(conceptName(l, i), l, nil)
				if err != nil {
					return false
				}
				cur = append(cur, n)
			}
			for _, p := range prev {
				for _, c := range cur {
					if err := g.AddEdge(p.ID, c.ID); err != nil {
						return false
					}
				}
			}
			prev = cur
		}
		g.AttachTerminals()
		for step := 0; step < 30; step++ {
			level := 1 + rng.Intn(3)
			nodes := g.NodesAtLevel(level)
			var reasoning []*Node
			for _, n := range nodes {
				if n.Kind == Reasoning {
					reasoning = append(reasoning, n)
				}
			}
			if len(reasoning) < 2 {
				continue // keep at least one node per level
			}
			victim := reasoning[rng.Intn(len(reasoning))]
			if _, err := g.ReplaceNode(rng, victim.ID, replName(step, seed), nil, rng.Float64()); err != nil {
				return false
			}
			if issues := g.Validate(true); len(issues) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func conceptName(l, i int) string {
	return "c" + string(rune('0'+l)) + string(rune('a'+i))
}

func replName(step int, seed int64) string {
	return strings.Repeat("r", 1+step%3) + string(rune('a'+step%26)) + string(rune('a'+int(seed%26+26)%26))
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildTestGraph(t)
	rng := rand.New(rand.NewSource(4))
	if _, err := g.CreateNode(rng, "created", 1, []int{5, 6}, 0.5); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Mission != g.Mission || back.Depth() != g.Depth() {
		t.Error("metadata lost")
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Errorf("shape lost: %d/%d vs %d/%d nodes/edges",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, n := range g.Nodes() {
		bn := back.Node(n.ID)
		if bn == nil || bn.Concept != n.Concept || bn.Level != n.Level || bn.Kind != n.Kind || bn.Created != n.Created {
			t.Errorf("node %d mismatch after round trip", n.ID)
		}
	}
	if issues := back.Validate(true); len(issues) != 0 {
		t.Errorf("deserialized graph invalid: %v", issues)
	}
	// Mutating the copy must keep IDs unique (nextID restored).
	n, err := back.AddNode("post-load", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Node(n.ID) != n {
		t.Error("post-load insert broken")
	}
}

func TestUnmarshalRejectsCorruptGraphs(t *testing.T) {
	cases := []string{
		`{"mission":"m","depth":0,"nodes":[],"edges":[]}`,
		`{"mission":"m","depth":1,"nodes":[{"id":1,"concept":"a","level":1,"kind":0},{"id":1,"concept":"b","level":1,"kind":0}],"edges":[]}`,
		`{"mission":"m","depth":1,"nodes":[],"edges":[{"Src":1,"Dst":2}]}`,
	}
	for i, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("case %d: corrupt graph accepted", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := buildTestGraph(t)
	c := g.Clone()
	a := c.NodesAtLevel(1)[0]
	if err := c.RemoveNode(a.ID); err != nil {
		t.Fatal(err)
	}
	if g.Node(a.ID) == nil {
		t.Error("clone shares node storage")
	}
	c.Node(c.NodesAtLevel(1)[0].ID).Concept = "mutated"
	for _, n := range g.Nodes() {
		if n.Concept == "mutated" {
			t.Error("clone shares node structs")
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := buildTestGraph(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "[sensor]", "[embedding]", "->", "rank=same"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := buildTestGraph(t)
	rng := rand.New(rand.NewSource(5))
	if _, err := g.CreateNode(rng, "extra", 2, nil, 0.5); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.Nodes != 7 || s.CreatedNodes != 1 || s.Depth != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.NodesPerLevel[0] != 1 || s.NodesPerLevel[1] != 2 || s.NodesPerLevel[2] != 3 || s.NodesPerLevel[3] != 1 {
		t.Errorf("per-level = %v", s.NodesPerLevel)
	}
	if !strings.Contains(s.String(), "TestMission") {
		t.Error("stats String lacks mission")
	}
}

func TestSetConcept(t *testing.T) {
	g := buildTestGraph(t)
	n := g.NodesAtLevel(1)[0]
	if err := g.SetConcept(n.ID, "renamed", []int{42}); err != nil {
		t.Fatal(err)
	}
	if n.Concept != "renamed" || n.TokenIDs[0] != 42 {
		t.Error("SetConcept did not apply")
	}
	if err := g.SetConcept(NodeID(999), "x", nil); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("missing node: %v", err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := buildTestGraph(t)
	s := g.SensorNode()
	outs := g.OutNeighbors(s.ID)
	for i := 1; i < len(outs); i++ {
		if outs[i] <= outs[i-1] {
			t.Fatal("OutNeighbors not sorted")
		}
	}
	emb := g.EmbeddingTerminal()
	ins := g.InNeighbors(emb.ID)
	if len(ins) != 2 {
		t.Errorf("embedding in-degree = %d", len(ins))
	}
}
