package kg

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// wireGraph is the JSON form of a Graph.
type wireGraph struct {
	Mission string     `json:"mission"`
	Depth   int        `json:"depth"`
	NextID  NodeID     `json:"next_id"`
	Nodes   []wireNode `json:"nodes"`
	Edges   []Edge     `json:"edges"`
}

type wireNode struct {
	ID       NodeID `json:"id"`
	Concept  string `json:"concept"`
	Level    int    `json:"level"`
	Kind     Kind   `json:"kind"`
	TokenIDs []int  `json:"token_ids,omitempty"`
	Created  bool   `json:"created,omitempty"`
}

// MarshalJSON implements json.Marshaler with deterministic ordering.
func (g *Graph) MarshalJSON() ([]byte, error) {
	w := wireGraph{Mission: g.Mission, Depth: g.depth, NextID: g.nextID, Edges: g.Edges()}
	ids := append([]NodeID(nil), g.order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := g.nodes[id]
		w.Nodes = append(w.Nodes, wireNode{
			ID: n.ID, Concept: n.Concept, Level: n.Level, Kind: n.Kind,
			TokenIDs: n.TokenIDs, Created: n.Created,
		})
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var w wireGraph
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Depth < 1 {
		return fmt.Errorf("kg: serialized graph depth %d invalid", w.Depth)
	}
	fresh := New(w.Mission, w.Depth)
	fresh.nextID = w.NextID
	for _, wn := range w.Nodes {
		n := &Node{ID: wn.ID, Concept: wn.Concept, Level: wn.Level, Kind: wn.Kind,
			TokenIDs: append([]int(nil), wn.TokenIDs...), Created: wn.Created}
		if _, dup := fresh.nodes[n.ID]; dup {
			return fmt.Errorf("kg: serialized graph has duplicate node id %d", n.ID)
		}
		fresh.nodes[n.ID] = n
		fresh.order = append(fresh.order, n.ID)
		fresh.out[n.ID] = make(map[NodeID]bool)
		fresh.in[n.ID] = make(map[NodeID]bool)
		if n.ID >= fresh.nextID {
			fresh.nextID = n.ID + 1
		}
	}
	for _, e := range w.Edges {
		if fresh.nodes[e.Src] == nil || fresh.nodes[e.Dst] == nil {
			return fmt.Errorf("kg: serialized edge %d→%d references missing node", e.Src, e.Dst)
		}
		fresh.out[e.Src][e.Dst] = true
		fresh.in[e.Dst][e.Src] = true
	}
	*g = *fresh
	return nil
}

// DOT renders the graph in Graphviz dot format, one rank per level, for
// human inspection of generated and adapted KGs.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.Mission)
	for l := 0; l <= g.depth+1; l++ {
		nodes := g.NodesAtLevel(l)
		if len(nodes) == 0 {
			continue
		}
		b.WriteString("  { rank=same; ")
		for _, n := range nodes {
			fmt.Fprintf(&b, "n%d; ", n.ID)
		}
		b.WriteString("}\n")
		for _, n := range nodes {
			shape := ""
			if n.Kind != Reasoning {
				shape = ", shape=ellipse"
			} else if n.Created {
				shape = ", style=dashed"
			}
			fmt.Fprintf(&b, "  n%d [label=%q%s];\n", n.ID, n.Concept, shape)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e.Src, e.Dst)
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarises a graph for logs and the experiment reports.
type Stats struct {
	Mission       string
	Depth         int
	Nodes         int
	Edges         int
	NodesPerLevel []int
	CreatedNodes  int
}

// ComputeStats returns the graph's summary statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Mission:       g.Mission,
		Depth:         g.depth,
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		NodesPerLevel: make([]int, g.depth+2),
	}
	for _, n := range g.Nodes() {
		s.NodesPerLevel[n.Level]++
		if n.Created {
			s.CreatedNodes++
		}
	}
	return s
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("kg %q: depth=%d nodes=%d edges=%d perLevel=%v created=%d",
		s.Mission, s.Depth, s.Nodes, s.Edges, s.NodesPerLevel, s.CreatedNodes)
}
