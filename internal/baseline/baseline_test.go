package baseline

import (
	"math/rand"
	"testing"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/decision"
	"edgekg/internal/embed"
	"edgekg/internal/flops"
	"edgekg/internal/gnn"
	"edgekg/internal/kggen"
	"edgekg/internal/oracle"
	"edgekg/internal/temporal"
)

func testUpdater(t *testing.T) (*CloudUpdater, *dataset.Generator) {
	t.Helper()
	ont := concept.Builtin()
	tok := bpe.Train(ont.Concepts(), 600)
	space, err := embed.NewSpace(tok, ont.Concepts(), embed.Config{Dim: 16, PixDim: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dataset.DefaultConfig()
	dcfg.FramesPerVideo = 16
	gen, err := dataset.NewGenerator(space, ont, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	llm := oracle.NewSim(ont, rand.New(rand.NewSource(7)), oracle.Config{EdgeProb: 0.9})
	train := core.DefaultTrainConfig()
	train.Steps = 80
	cfg := Config{
		Gen: kggen.Options{Depth: 2, InitialFanout: 4, Fanout: 3, MaxCorrectionIters: 3, Tokenize: tok.Encode},
		Detector: core.Config{
			GNN:        gnn.Config{Width: 8},
			Temporal:   temporal.Config{InnerDim: 16, Heads: 2, Layers: 1, Window: 4},
			NumClasses: 2,
			Loss:       decision.DefaultLossConfig(),
		},
		Train:          train,
		TrainNormal:    3,
		TrainAnomalous: 3,
		Batch:          6,
		Cloud:          flops.PaperCloudConstants(),
	}
	return NewCloudUpdater(space, llm, gen, cfg), gen
}

func TestBuildForProducesWorkingDetector(t *testing.T) {
	u, gen := testUpdater(t)
	rng := rand.New(rand.NewSource(8))
	det, err := u.BuildFor(rng, "Robbery")
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt detector must discriminate the mission anomaly.
	vids := gen.TaskVideos(rng, concept.Robbery, 3, 3)
	frames, labels := dataset.FlattenEval(vids)
	auc, err := core.EvalAUC(det, frames, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.7 {
		t.Errorf("rebuilt detector AUC %v too low", auc)
	}
	// Deploy happened: weights frozen.
	for _, p := range det.Params() {
		if p.V.RequiresGrad() {
			t.Fatalf("rebuilt detector not deployed: %s trainable", p.Name)
		}
	}
	if u.Updates() != 1 {
		t.Errorf("updates = %d", u.Updates())
	}
}

func TestBuildForUnknownMission(t *testing.T) {
	u, _ := testUpdater(t)
	if _, err := u.BuildFor(rand.New(rand.NewSource(9)), "NotAClass"); err == nil {
		t.Error("unknown mission accepted")
	}
}

func TestCostsScaleWithUpdates(t *testing.T) {
	u, _ := testUpdater(t)
	rng := rand.New(rand.NewSource(10))
	for _, mission := range []string{"Stealing", "Robbery", "Stealing"} {
		if _, err := u.BuildFor(rng, mission); err != nil {
			t.Fatal(err)
		}
	}
	c := u.Costs()
	if c.Updates != 3 {
		t.Errorf("updates = %d", c.Updates)
	}
	if c.TotalFLOPs != 3e15 {
		t.Errorf("FLOPs = %v", c.TotalFLOPs)
	}
	if c.TotalMinutes != 3 {
		t.Errorf("minutes = %v", c.TotalMinutes)
	}
	if c.BandwidthGB != 1.5 {
		t.Errorf("bandwidth = %v", c.BandwidthGB)
	}
	// Peak memory does not accumulate.
	if c.GPTMemoryGB != 200 || c.KGMemoryGB != 0.5 {
		t.Errorf("memory rows wrong: %+v", c)
	}
}
