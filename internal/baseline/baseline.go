// Package baseline implements the comparison arm of Table I: the
// cloud-dependent pipeline that, on every anomaly-trend change, regenerates
// the mission-specific KG with the (simulated) LLM in the cloud, retrains
// the lightweight decision model, and ships the new KG to the edge. Its
// costs are the paper's stated cloud constants plus whatever retraining
// work this implementation actually performs.
package baseline

import (
	"fmt"
	"math/rand"

	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/embed"
	"edgekg/internal/flops"
	"edgekg/internal/kg"
	"edgekg/internal/kggen"
	"edgekg/internal/oracle"
)

// Config assembles the cloud updater.
type Config struct {
	// Gen controls KG generation per update.
	Gen kggen.Options
	// Detector configures the rebuilt model.
	Detector core.Config
	// Train controls the post-update retraining run.
	Train core.TrainConfig
	// TrainVideos is the per-class video budget (normal, anomalous) for
	// retraining data synthesised at the cloud.
	TrainNormal, TrainAnomalous int
	// Batch is the training clip batch size.
	Batch int
	// Cloud carries Table I's cost constants.
	Cloud flops.CloudConstants
}

// CloudUpdater rebuilds detectors on demand, accounting cloud costs.
type CloudUpdater struct {
	space *embed.Space
	llm   oracle.LLM
	gen   *dataset.Generator
	cfg   Config

	updates int
}

// NewCloudUpdater returns a cloud updater.
func NewCloudUpdater(space *embed.Space, llm oracle.LLM, gen *dataset.Generator, cfg Config) *CloudUpdater {
	return &CloudUpdater{space: space, llm: llm, gen: gen, cfg: cfg}
}

// BuildFor regenerates the mission KG for the given anomaly class and
// trains a fresh detector on cloud-synthesised task data — everything the
// baseline does per trend change. Each call counts as one KG update.
func (u *CloudUpdater) BuildFor(rng *rand.Rand, mission string) (*core.Detector, error) {
	g, _, err := kggen.Generate(u.llm, mission, u.cfg.Gen, rng)
	if err != nil {
		return nil, fmt.Errorf("baseline: KG regeneration for %q: %w", mission, err)
	}
	det, err := core.NewDetector(rng, u.space, []*kg.Graph{g}, u.cfg.Detector)
	if err != nil {
		return nil, fmt.Errorf("baseline: detector rebuild: %w", err)
	}
	cls, ok := concept.ClassByName(mission)
	if !ok {
		return nil, fmt.Errorf("baseline: unknown mission %q", mission)
	}
	vids := u.gen.TaskVideos(rng, cls, u.cfg.TrainNormal, u.cfg.TrainAnomalous)
	src, err := dataset.NewClipSource(vids, det.Window(), u.cfg.Batch)
	if err != nil {
		return nil, fmt.Errorf("baseline: clip source: %w", err)
	}
	src = src.WithLabelMap(dataset.BinaryLabelMap)
	trainer := core.NewTrainer(det, u.cfg.Train)
	trainer.Train(rng, src, nil)
	det.Deploy()
	u.updates++
	return det, nil
}

// Updates returns how many cloud KG updates have been performed.
func (u *CloudUpdater) Updates() int { return u.updates }

// CloudCosts summarises the accumulated cloud-side costs per Table I's
// accounting: per-update constants × update count.
type CloudCosts struct {
	Updates       int
	TotalFLOPs    float64
	TotalMinutes  float64
	BandwidthGB   float64
	GPTMemoryGB   float64 // during updates (peak, not cumulative)
	KGMemoryGB    float64
	EdgeStorageGB float64
}

// Costs returns the accumulated cloud costs.
func (u *CloudUpdater) Costs() CloudCosts {
	c := u.cfg.Cloud
	return CloudCosts{
		Updates:       u.updates,
		TotalFLOPs:    float64(u.updates) * c.KGGenFLOPs,
		TotalMinutes:  float64(u.updates) * c.KGGenMinutes,
		BandwidthGB:   float64(u.updates) * c.KGTransferGB,
		GPTMemoryGB:   c.GPTMemoryGB,
		KGMemoryGB:    c.KGMemoryGB,
		EdgeStorageGB: c.EdgeStorageGB,
	}
}
