package edge

import (
	"math/rand"
	"path/filepath"
	"testing"

	"edgekg/internal/concept"
	"edgekg/internal/rng"
	"edgekg/internal/tensor"
)

// TestRuntimeCheckpointResumeEquivalence pins warm restart for the classic
// single-camera runtime: Save mid-run, rebuild the fixture from the seed
// (the process-restart situation), Load, continue — the resumed trajectory
// must be bit-identical to the uninterrupted one, including metered ops
// (the synchronous runtime's exclusive metering is deterministic).
func TestRuntimeCheckpointResumeEquivalence(t *testing.T) {
	const seed = 21
	const frames = 24
	const split = 11

	mkFrames := func() []*tensor.Tensor {
		_, gen := buildFixture(t, seed)
		fr := rand.New(rand.NewSource(777))
		out := make([]*tensor.Tensor, frames)
		for i := range out {
			cls := concept.Stealing
			if i >= 10 {
				cls = concept.Robbery
			}
			out[i] = gen.Frame(fr, cls)
		}
		return out
	}

	run := func(rt *Runtime, stream []*tensor.Tensor, lo, hi int) []float64 {
		t.Helper()
		var scores []float64
		for i := lo; i < hi; i++ {
			if i == 4 {
				rt.Monitor().SetReference(1.0)
			}
			score, _, err := rt.ProcessFrame(stream[i])
			if err != nil {
				t.Fatal(err)
			}
			scores = append(scores, score)
		}
		return scores
	}

	// Uninterrupted arm.
	detA, _ := buildFixture(t, seed)
	rtA, err := NewRuntime(detA, smallConfig(true), rng.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	want := run(rtA, mkFrames(), 0, frames)
	wantStats := rtA.Stats()

	// Interrupted arm: run to the split, save, discard everything.
	path := filepath.Join(t.TempDir(), "edge.json")
	detB, _ := buildFixture(t, seed)
	rtB, err := NewRuntime(detB, smallConfig(true), rng.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	stream := mkFrames()
	got := run(rtB, stream, 0, split)
	if err := rtB.Save(path); err != nil {
		t.Fatal(err)
	}

	// Fresh fixture, warm restore, continue.
	detC, _ := buildFixture(t, seed)
	rtC, err := NewRuntime(detC, smallConfig(true), rng.NewSource(999)) // seed irrelevant: Load restores the RNG state
	if err != nil {
		t.Fatal(err)
	}
	if err := rtC.Load(path); err != nil {
		t.Fatal(err)
	}
	got = append(got, run(rtC, mkFrames(), split, frames)...)

	if len(got) != len(want) {
		t.Fatalf("resumed run produced %d scores, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: resumed score %v != uninterrupted %v", i, got[i], want[i])
		}
	}
	gotStats := rtC.Stats()
	if gotStats != wantStats {
		t.Fatalf("resumed stats %+v != uninterrupted %+v", gotStats, wantStats)
	}
	if wantStats.AdaptRounds == 0 || wantStats.TriggeredRounds == 0 {
		t.Fatal("fixture never adapted — equivalence is vacuous")
	}
	if gotStats.ScoringOps != wantStats.ScoringOps || gotStats.AdaptOps != wantStats.AdaptOps {
		t.Fatalf("metered ops differ after resume: %+v vs %+v", gotStats, wantStats)
	}
}

// TestRuntimeCheckpointRequiresSerializableRNG pins the loud failure when
// a runtime built over a non-serializable random source is checkpointed.
func TestRuntimeCheckpointRequiresSerializableRNG(t *testing.T) {
	det, _ := buildFixture(t, 22)
	rt, err := NewRuntime(det, smallConfig(true), rand.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Checkpoint(); err == nil {
		t.Fatal("checkpoint over a stdlib rand source accepted")
	}
}
