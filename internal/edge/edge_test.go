package edge

import (
	"math/rand"
	"testing"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/decision"
	"edgekg/internal/embed"
	"edgekg/internal/gnn"
	"edgekg/internal/kg"
	"edgekg/internal/kggen"
	"edgekg/internal/oracle"
	"edgekg/internal/temporal"
)

func buildFixture(t *testing.T, seed int64) (*core.Detector, *dataset.Generator) {
	t.Helper()
	ont := concept.Builtin()
	tok := bpe.Train(ont.Concepts(), 600)
	space, err := embed.NewSpace(tok, ont.Concepts(), embed.Config{Dim: 16, PixDim: 32, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	llm := oracle.NewSim(ont, rng, oracle.Config{EdgeProb: 0.9})
	g, _, err := kggen.Generate(llm, "Stealing",
		kggen.Options{Depth: 2, InitialFanout: 4, Fanout: 3, MaxCorrectionIters: 3, Tokenize: tok.Encode}, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(rng, space, []*kg.Graph{g}, core.Config{
		GNN:        gnn.Config{Width: 8},
		Temporal:   temporal.Config{InnerDim: 16, Heads: 2, Layers: 1, Window: 4},
		NumClasses: 2,
		Loss:       decision.DefaultLossConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dataset.DefaultConfig()
	dcfg.FramesPerVideo = 16
	gen, err := dataset.NewGenerator(space, ont, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return det, gen
}

func smallConfig(adaptive bool) Config {
	cfg := DefaultConfig()
	cfg.MonitorN = 8
	cfg.MonitorLag = 4
	cfg.AdaptEveryFrames = 8
	if !adaptive {
		cfg.AdaptEveryFrames = 0
	}
	return cfg
}

func TestRuntimeScoresAndMeters(t *testing.T) {
	det, gen := buildFixture(t, 1)
	rng := rand.New(rand.NewSource(1))
	rt, err := NewRuntime(det, smallConfig(true), rand.NewSource(11))
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Adaptive() {
		t.Fatal("runtime should be adaptive")
	}
	for i := 0; i < 8; i++ {
		score, _, err := rt.ProcessFrame(gen.Frame(rng, concept.Stealing))
		if err != nil {
			t.Fatal(err)
		}
		if score < 0 || score > 1 {
			t.Fatalf("score %v out of range", score)
		}
	}
	// Force a mean drop so the second adaptation round triggers: pretend
	// healthy operation scored far higher than what we see now.
	rt.Monitor().SetReference(1.0)
	for i := 0; i < 8; i++ {
		if _, _, err := rt.ProcessFrame(gen.Frame(rng, concept.Stealing)); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats()
	if st.Frames != 16 {
		t.Errorf("frames = %d", st.Frames)
	}
	if st.ScoringOps <= 0 {
		t.Error("scoring ops not metered")
	}
	if st.AdaptRounds != 2 { // every 8 frames
		t.Errorf("adapt rounds = %d, want 2", st.AdaptRounds)
	}
	if st.TriggeredRounds == 0 {
		t.Error("forced mean drop did not trigger")
	}
	if st.AdaptOps <= 0 {
		t.Error("adaptation ops not metered")
	}
	if rt.Ledger().PhaseEvents(PhaseScoring) != 16 {
		t.Errorf("scoring events = %d", rt.Ledger().PhaseEvents(PhaseScoring))
	}
}

func TestStaticRuntimeNeverAdapts(t *testing.T) {
	det, gen := buildFixture(t, 2)
	rng := rand.New(rand.NewSource(2))
	rt, err := NewRuntime(det, smallConfig(false), rand.NewSource(12))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Adaptive() {
		t.Fatal("static runtime claims to be adaptive")
	}
	for i := 0; i < 24; i++ {
		if _, rep, err := rt.ProcessFrame(gen.Frame(rng, concept.Robbery)); err != nil {
			t.Fatal(err)
		} else if rep.Triggered {
			t.Fatal("static runtime adapted")
		}
	}
	st := rt.Stats()
	if st.AdaptRounds != 0 || st.AdaptOps != 0 {
		t.Errorf("static runtime recorded adaptation: %+v", st)
	}
	if st.EnergyPerAdaptJ != 0 {
		t.Error("static runtime reports adaptation energy")
	}
}

func TestRuntimeStatsDeviceDerived(t *testing.T) {
	det, gen := buildFixture(t, 3)
	rng := rand.New(rand.NewSource(3))
	cfg := smallConfig(true)
	rt, err := NewRuntime(det, cfg, rand.NewSource(13))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := rt.ProcessFrame(gen.Frame(rng, concept.Normal)); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats()
	if st.AdaptRounds != 1 {
		t.Fatalf("adapt rounds = %d", st.AdaptRounds)
	}
	wantE := cfg.Device.EnergyJoules(st.AdaptOpsPerRound)
	if st.EnergyPerAdaptJ != wantE {
		t.Errorf("energy %v, want %v", st.EnergyPerAdaptJ, wantE)
	}
	wantL := cfg.Device.LatencySeconds(st.AdaptOpsPerRound)
	if st.AdaptLatencyS != wantL {
		t.Errorf("latency %v, want %v", st.AdaptLatencyS, wantL)
	}
}

func TestRuntimeValidation(t *testing.T) {
	det, _ := buildFixture(t, 4)
	bad := smallConfig(true)
	bad.MonitorN = 1
	if _, err := NewRuntime(det, bad, rand.NewSource(14)); err == nil {
		t.Error("bad monitor config accepted")
	}
	bad = smallConfig(true)
	bad.Adapt.LR = 0
	if _, err := NewRuntime(det, bad, rand.NewSource(14)); err == nil {
		t.Error("bad adapt config accepted")
	}
}
