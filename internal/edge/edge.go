// Package edge simulates the deployed edge device of Fig. 2(C): a runtime
// that scores an incoming frame stream with the frozen detector, feeds the
// score-distribution monitor, runs the continuous KG adaptation loop on a
// fixed cadence (once per simulated day in Table I), and meters every
// phase's FLOPs so the efficiency comparison reflects the code that
// actually ran.
package edge

import (
	"fmt"
	"math/rand"

	"edgekg/internal/core"
	"edgekg/internal/flops"
	"edgekg/internal/tensor"
)

// Config controls the runtime.
type Config struct {
	// MonitorN is the monitor's sliding window size (the N of K=|Δm|·N).
	MonitorN int
	// MonitorLag is the t′ reference lag in pushes (sliding mode only).
	MonitorLag int
	// AnchoredReference freezes t′ at the first full window after
	// deployment, so adaptation keeps engaging while the model is
	// degraded (see core.NewAnchoredMonitor). The Fig. 5 recovery curves
	// use this mode.
	AnchoredReference bool
	// AdaptEveryFrames is the adaptation cadence: one adaptation round per
	// this many processed frames ("one loop of KG modification once per
	// day" in Sec. IV-D). 0 disables adaptation — the static-KG arm.
	AdaptEveryFrames int
	// Adapt configures the adapter (ignored when adaptation is disabled).
	Adapt core.AdaptConfig
	// Device models energy/latency for the cost report.
	Device flops.DeviceProfile
}

// DefaultConfig returns the experiment suite's runtime settings.
func DefaultConfig() Config {
	return Config{
		MonitorN:          64,
		MonitorLag:        32,
		AnchoredReference: true,
		AdaptEveryFrames:  64,
		Adapt:             core.DefaultAdaptConfig(),
		Device:            flops.JetsonClass(),
	}
}

// Runtime is one simulated edge deployment.
type Runtime struct {
	det     *core.Detector
	mon     *core.Monitor
	adapter *core.Adapter
	cfg     Config
	ledger  *flops.Ledger

	frames      int
	adaptRounds int
	triggered   int
	pruned      int
	created     int
}

// Ledger phase names.
const (
	PhaseScoring    = "scoring"
	PhaseAdaptation = "adaptation"
)

// NewRuntime deploys a detector. The detector is frozen (and token banks
// unfrozen when adaptation is enabled) as a side effect, exactly like a
// real deployment hand-off.
func NewRuntime(det *core.Detector, cfg Config, rng *rand.Rand) (*Runtime, error) {
	var mon *core.Monitor
	var err error
	if cfg.AnchoredReference {
		mon, err = core.NewAnchoredMonitor(cfg.MonitorN)
	} else {
		mon, err = core.NewMonitor(cfg.MonitorN, cfg.MonitorLag)
	}
	if err != nil {
		return nil, fmt.Errorf("edge: %w", err)
	}
	r := &Runtime{det: det, mon: mon, cfg: cfg, ledger: flops.NewLedger()}
	if cfg.AdaptEveryFrames > 0 {
		adapter, err := core.NewAdapter(det, cfg.Adapt, rng)
		if err != nil {
			return nil, fmt.Errorf("edge: %w", err)
		}
		r.adapter = adapter
	} else {
		det.Deploy()
	}
	return r, nil
}

// Detector returns the deployed detector.
func (r *Runtime) Detector() *core.Detector { return r.det }

// Monitor returns the score monitor (for observability and tests).
func (r *Runtime) Monitor() *core.Monitor { return r.mon }

// Adaptive reports whether this runtime runs the adaptation loop.
func (r *Runtime) Adaptive() bool { return r.adapter != nil }

// ProcessFrame scores one incoming frame, updates the monitor, and — on
// the adaptation cadence — runs one adaptation round. It returns the
// anomaly score and the adaptation report (zero-valued when no round ran).
func (r *Runtime) ProcessFrame(pix *tensor.Tensor) (float64, core.AdaptReport, error) {
	frame := pix.Reshape(1, pix.Size())
	var score float64
	r.ledger.Meter(PhaseScoring, func() {
		score = r.det.ScoreVideo(frame)[0]
	})
	r.mon.Push(frame, score)
	r.frames++

	var rep core.AdaptReport
	if r.adapter != nil && r.cfg.AdaptEveryFrames > 0 && r.frames%r.cfg.AdaptEveryFrames == 0 {
		var err error
		r.ledger.Meter(PhaseAdaptation, func() {
			rep, err = r.adapter.Step(r.mon)
		})
		if err != nil {
			return score, rep, fmt.Errorf("edge: adaptation round: %w", err)
		}
		r.adaptRounds++
		if rep.Triggered {
			r.triggered++
		}
		r.pruned += len(rep.Pruned)
		r.created += len(rep.Created)
	}
	return score, rep, nil
}

// Stats summarises a deployment for the cost tables.
type Stats struct {
	Frames           int
	AdaptRounds      int
	TriggeredRounds  int
	PrunedNodes      int
	CreatedNodes     int
	ScoringOps       int64
	AdaptOps         int64
	AdaptOpsPerRound int64
	// EnergyPerAdaptJ and AdaptLatencyS follow from the device profile.
	EnergyPerAdaptJ float64
	AdaptLatencyS   float64
}

// Stats returns the deployment's accumulated statistics.
func (r *Runtime) Stats() Stats {
	s := Stats{
		Frames:          r.frames,
		AdaptRounds:     r.adaptRounds,
		TriggeredRounds: r.triggered,
		PrunedNodes:     r.pruned,
		CreatedNodes:    r.created,
		ScoringOps:      r.ledger.PhaseOps(PhaseScoring),
		AdaptOps:        r.ledger.PhaseOps(PhaseAdaptation),
	}
	if r.adaptRounds > 0 {
		s.AdaptOpsPerRound = s.AdaptOps / int64(r.adaptRounds)
		s.EnergyPerAdaptJ = r.cfg.Device.EnergyJoules(s.AdaptOpsPerRound)
		s.AdaptLatencyS = r.cfg.Device.LatencySeconds(s.AdaptOpsPerRound)
	}
	return s
}

// Ledger exposes the phase cost ledger.
func (r *Runtime) Ledger() *flops.Ledger { return r.ledger }
