// Package edge simulates the deployed edge device of Fig. 2(C) for a
// single camera: a runtime that scores an incoming frame stream with the
// frozen detector, feeds the score-distribution monitor, runs the
// continuous KG adaptation loop on a fixed cadence (once per simulated
// day in Table I), and meters every phase's FLOPs.
//
// Since the multi-stream serving runtime landed, this package is a thin
// synchronous wrapper over one internal/serve.Stream: the cadence,
// metering and adaptation machinery live in the per-stream context, and
// Runtime pins the classic blocking single-camera semantics (adaptation
// runs inline at the trigger frame, exclusive FLOPs metering, the
// caller's detector adapted in place). serve.Server is the same context
// multiplexed across many cameras.
package edge

import (
	"fmt"
	"math/rand"

	"edgekg/internal/core"
	"edgekg/internal/flops"
	"edgekg/internal/serve"
	"edgekg/internal/snapshot"
	"edgekg/internal/tensor"
)

// Config controls the runtime.
type Config struct {
	// MonitorN is the monitor's sliding window size (the N of K=|Δm|·N).
	MonitorN int
	// MonitorLag is the t′ reference lag in pushes (sliding mode only).
	MonitorLag int
	// AnchoredReference freezes t′ at the first full window after
	// deployment, so adaptation keeps engaging while the model is
	// degraded (see core.NewAnchoredMonitor). The Fig. 5 recovery curves
	// use this mode.
	AnchoredReference bool
	// AdaptEveryFrames is the adaptation cadence: one adaptation round per
	// this many processed frames ("one loop of KG modification once per
	// day" in Sec. IV-D). 0 disables adaptation — the static-KG arm.
	AdaptEveryFrames int
	// Adapt configures the adapter (ignored when adaptation is disabled).
	Adapt core.AdaptConfig
	// Device models energy/latency for the cost report.
	Device flops.DeviceProfile
}

// DefaultConfig returns the experiment suite's runtime settings.
func DefaultConfig() Config {
	return Config{
		MonitorN:          64,
		MonitorLag:        32,
		AnchoredReference: true,
		AdaptEveryFrames:  64,
		Adapt:             core.DefaultAdaptConfig(),
		Device:            flops.JetsonClass(),
	}
}

// streamConfig maps the runtime configuration onto the per-stream context:
// synchronous adaptation (lag 0) and no score-history retention — the
// classic blocking deployment.
func (c Config) streamConfig() serve.StreamConfig {
	return serve.StreamConfig{
		MonitorN:          c.MonitorN,
		MonitorLag:        c.MonitorLag,
		AnchoredReference: c.AnchoredReference,
		AdaptEveryFrames:  c.AdaptEveryFrames,
		Adapt:             c.Adapt,
		Device:            c.Device,
	}
}

// Runtime is one simulated edge deployment.
type Runtime struct {
	st  *serve.Stream
	cfg Config
}

// Ledger phase names (aliases of the serving runtime's).
const (
	PhaseScoring    = serve.PhaseScoring
	PhaseAdaptation = serve.PhaseAdaptation
)

// NewRuntime deploys a detector. The detector is frozen (and token banks
// unfrozen when adaptation is enabled) as a side effect, exactly like a
// real deployment hand-off; adaptation mutates det in place. src seeds
// the adapter's randomness — pass a *rng.Source when the runtime must be
// checkpointable (Checkpoint fails on other source types).
func NewRuntime(det *core.Detector, cfg Config, src rand.Source) (*Runtime, error) {
	st, err := serve.NewStream(0, det, cfg.streamConfig(), src, nil)
	if err != nil {
		return nil, fmt.Errorf("edge: %w", err)
	}
	return &Runtime{st: st, cfg: cfg}, nil
}

// Detector returns the deployed detector.
func (r *Runtime) Detector() *core.Detector { return r.st.Detector() }

// Monitor returns the score monitor (for observability and tests).
func (r *Runtime) Monitor() *core.Monitor { return r.st.Monitor() }

// Adaptive reports whether this runtime runs the adaptation loop.
func (r *Runtime) Adaptive() bool { return r.st.Adaptive() }

// ProcessFrame scores one incoming frame, updates the monitor, and — on
// the adaptation cadence — runs one adaptation round. It returns the
// anomaly score and the adaptation report (zero-valued when no round ran).
func (r *Runtime) ProcessFrame(pix *tensor.Tensor) (float64, core.AdaptReport, error) {
	res := r.st.Process(pix)
	return res.Score, res.Adapt, res.Err
}

// Stats summarises a deployment for the cost tables.
type Stats struct {
	Frames           int
	AdaptRounds      int
	TriggeredRounds  int
	PrunedNodes      int
	CreatedNodes     int
	ScoringOps       int64
	AdaptOps         int64
	AdaptOpsPerRound int64
	// EnergyPerAdaptJ and AdaptLatencyS follow from the device profile.
	EnergyPerAdaptJ float64
	AdaptLatencyS   float64
}

// Stats returns the deployment's accumulated statistics.
func (r *Runtime) Stats() Stats {
	s := r.st.Stats()
	return Stats{
		Frames:           s.Frames,
		AdaptRounds:      s.AdaptRounds,
		TriggeredRounds:  s.TriggeredRounds,
		PrunedNodes:      s.PrunedNodes,
		CreatedNodes:     s.CreatedNodes,
		ScoringOps:       s.ScoringOps,
		AdaptOps:         s.AdaptOps,
		AdaptOpsPerRound: s.AdaptOpsPerRound,
		EnergyPerAdaptJ:  s.EnergyPerAdaptJ,
		AdaptLatencyS:    s.AdaptLatencyS,
	}
}

// Ledger exposes the phase cost ledger.
func (r *Runtime) Ledger() *flops.Ledger { return r.st.Ledger() }

// Checkpoint serializes the runtime's complete adaptation state — the
// adapted graphs and token banks, monitor, adapter, RNG, counters and
// ledger — as a 1-stream checkpoint. The runtime is synchronous, so no
// round is ever in flight; the caller must simply not call it
// concurrently with ProcessFrame.
func (r *Runtime) Checkpoint() (*snapshot.Checkpoint, error) {
	ss, err := r.st.Export()
	if err != nil {
		return nil, fmt.Errorf("edge: %w", err)
	}
	cp := snapshot.New(1)
	cp.Streams[0] = *ss
	return cp, nil
}

// Restore replaces the runtime's state with a checkpoint previously taken
// by Checkpoint (or by a 1-stream server with the identical
// configuration). The runtime must have been built over the same
// backbone.
func (r *Runtime) Restore(cp *snapshot.Checkpoint) error {
	if err := cp.Validate(); err != nil {
		return err
	}
	if len(cp.Streams) != 1 {
		return fmt.Errorf("edge: checkpoint has %d streams, runtime is single-stream", len(cp.Streams))
	}
	if err := r.st.Restore(&cp.Streams[0]); err != nil {
		return fmt.Errorf("edge: %w", err)
	}
	return nil
}

// Save checkpoints the runtime to a file (atomic temp-then-rename write).
func (r *Runtime) Save(path string) error {
	cp, err := r.Checkpoint()
	if err != nil {
		return err
	}
	return snapshot.Save(path, cp)
}

// Load restores the runtime from a checkpoint file.
func (r *Runtime) Load(path string) error {
	cp, err := snapshot.Load(path)
	if err != nil {
		return err
	}
	return r.Restore(cp)
}
