package nn

import (
	"math/rand"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

// TestBNStatsDeferredApplyMatchesDirect pins the deferred running-stat
// path: recording per-forward batch statistics and applying them in order
// must leave the layer bit-identical to immediate UpdateRunning calls.
func TestBNStatsDeferredApplyMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	direct := NewBatchNorm1d(3)
	deferred := NewBatchNorm1d(3)
	var stats BNStats
	for i := 0; i < 4; i++ {
		x := tensor.RandN(rng, 1, 5, 3)
		direct.Forward(autograd.Constant(x))
		deferred.ForwardStats(autograd.Constant(x), &stats)
	}
	if stats.Len() != 4 {
		t.Fatalf("deferred %d updates, want 4", stats.Len())
	}
	if tensor.AllClose(direct.RunningMean, deferred.RunningMean, 0) {
		t.Fatal("deferred layer updated running stats before Apply")
	}
	stats.Apply()
	if stats.Len() != 0 {
		t.Error("Apply did not clear the collector")
	}
	if !tensor.AllClose(direct.RunningMean, deferred.RunningMean, 0) {
		t.Error("running mean differs between deferred and direct updates")
	}
	if !tensor.AllClose(direct.RunningVar, deferred.RunningVar, 0) {
		t.Error("running variance differs between deferred and direct updates")
	}
}

// TestBNStatsForwardOutputsUnchanged checks ForwardStats produces the same
// activations as Forward (training mode uses batch statistics either way)
// and that eval mode never defers.
func TestBNStatsForwardOutputsUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bn := NewBatchNorm1d(4)
	x := tensor.RandN(rng, 1, 6, 4)
	var stats BNStats
	a := bn.ForwardStats(autograd.Constant(x), &stats)
	b := bn.Forward(autograd.Constant(x))
	if !tensor.AllClose(a.Data, b.Data, 0) {
		t.Error("ForwardStats output differs from Forward")
	}

	bn.SetTraining(false)
	n := stats.Len()
	bn.ForwardStats(autograd.Constant(x), &stats)
	if stats.Len() != n {
		t.Error("eval-mode ForwardStats deferred an update")
	}
}
