package nn

import (
	"math/rand"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

// Linear is a fully connected layer y = x·W + b, the dense sub-layer φ_l of
// eq. (1) and the decision head of eq. (5).
type Linear struct {
	W *autograd.Value // (in × out)
	B *autograd.Value // (out)

	in, out int
}

// NewLinear returns a Linear layer with Glorot-uniform weights and zero
// bias drawn from rng.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	return &Linear{
		W:   autograd.Param(tensor.GlorotUniform(rng, in, out)),
		B:   autograd.Param(tensor.New(out)),
		in:  in,
		out: out,
	}
}

// Forward applies the layer to a (batch × in) input as one fused
// matmul+bias graph node.
func (l *Linear) Forward(x *autograd.Value) *autograd.Value {
	return autograd.Affine(x, l.W, l.B)
}

// In returns the input dimensionality.
func (l *Linear) In() int { return l.in }

// Out returns the output dimensionality.
func (l *Linear) Out() int { return l.out }

// Params implements Module.
func (l *Linear) Params() []Param {
	return []Param{{Name: "w", V: l.W}, {Name: "b", V: l.B}}
}

// Embedding is a trainable lookup table of row vectors. KG token
// embeddings are Embeddings; adaptation backpropagates into exactly these
// tables while everything else is frozen.
type Embedding struct {
	Table *autograd.Value // (vocab × dim)
}

// NewEmbedding returns a table of shape (vocab × dim) initialised from
// N(0, scale²).
func NewEmbedding(rng *rand.Rand, vocab, dim int, scale float64) *Embedding {
	return &Embedding{Table: autograd.Param(tensor.RandN(rng, scale, vocab, dim))}
}

// EmbeddingFrom wraps an existing table tensor as an Embedding.
func EmbeddingFrom(table *tensor.Tensor) *Embedding {
	return &Embedding{Table: autograd.Param(table)}
}

// Lookup gathers the rows for ids, preserving order and duplicates.
func (e *Embedding) Lookup(ids []int) *autograd.Value {
	return autograd.Gather(e.Table, ids)
}

// Vocab returns the number of rows in the table.
func (e *Embedding) Vocab() int { return e.Table.Data.Dim(0) }

// Dim returns the embedding dimensionality.
func (e *Embedding) Dim() int { return e.Table.Data.Dim(1) }

// Params implements Module.
func (e *Embedding) Params() []Param {
	return []Param{{Name: "table", V: e.Table}}
}
