package nn

import (
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3)
	x := autograd.Constant(tensor.RandN(rng, 1, 5, 4))
	y := l.Forward(x)
	if y.Data.Rows() != 5 || y.Data.Cols() != 3 {
		t.Fatalf("shape = %v", y.Shape())
	}
	if l.In() != 4 || l.Out() != 3 {
		t.Errorf("In/Out = %d/%d", l.In(), l.Out())
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, 3, 2)
	x := autograd.Param(tensor.RandN(rng, 1, 4, 3))
	f := func() *autograd.Value { return autograd.Sum(l.Forward(x)) }
	inputs := append(Values(l.Params()), x)
	if err := autograd.GradCheck(f, inputs, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestEmbeddingLookup(t *testing.T) {
	table := tensor.FromSlice([]float64{
		0, 0,
		1, 10,
		2, 20,
	}, 3, 2)
	e := EmbeddingFrom(table)
	out := e.Lookup([]int{2, 0, 2})
	want := tensor.FromSlice([]float64{2, 20, 0, 0, 2, 20}, 3, 2)
	if !tensor.AllClose(out.Data, want, 0) {
		t.Errorf("lookup = %v", out.Data)
	}
	if e.Vocab() != 3 || e.Dim() != 2 {
		t.Errorf("vocab/dim = %d/%d", e.Vocab(), e.Dim())
	}
}

func TestEmbeddingGradFlowsOnlyToLookedUpRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewEmbedding(rng, 5, 3, 0.1)
	out := autograd.Sum(e.Lookup([]int{1, 3, 3}))
	out.Backward()
	g := e.Table.Grad
	for i := 0; i < 5; i++ {
		norm := 0.0
		for _, v := range g.Row(i) {
			norm += math.Abs(v)
		}
		switch i {
		case 1:
			if norm == 0 {
				t.Errorf("row 1 got no gradient")
			}
		case 3:
			if math.Abs(norm-6) > 1e-12 { // looked up twice, grad 1 per elem
				t.Errorf("row 3 grad sum = %v, want 6", norm)
			}
		default:
			if norm != 0 {
				t.Errorf("row %d leaked gradient %v", i, norm)
			}
		}
	}
}

func TestBatchNormTrainEvalModes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bn := NewBatchNorm1d(3)
	if !bn.Training() {
		t.Fatal("new BatchNorm must start in training mode")
	}
	// Feed many batches with mean 5, var 4 so running stats converge.
	for i := 0; i < 200; i++ {
		x := autograd.Constant(tensor.AddScalar(tensor.RandN(rng, 2, 32, 3), 5))
		bn.Forward(x)
	}
	for j := 0; j < 3; j++ {
		if math.Abs(bn.RunningMean.Data()[j]-5) > 0.2 {
			t.Errorf("running mean[%d] = %v, want ≈5", j, bn.RunningMean.Data()[j])
		}
		if math.Abs(bn.RunningVar.Data()[j]-4) > 0.6 {
			t.Errorf("running var[%d] = %v, want ≈4", j, bn.RunningVar.Data()[j])
		}
	}
	// Eval mode: a constant input must map deterministically via running stats.
	bn.SetTraining(false)
	x := autograd.Constant(tensor.Full(5, 4, 3))
	y := bn.Forward(x)
	for _, v := range y.Data.Data() {
		if math.Abs(v) > 0.2 {
			t.Errorf("eval output %v, want ≈0 (input at running mean)", v)
		}
	}
}

func TestBatchNormEvalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bn := NewBatchNorm1d(2)
	bn.SetTraining(false)
	x := autograd.Constant(tensor.RandN(rng, 1, 3, 2))
	y1 := bn.Forward(x)
	y2 := bn.Forward(x)
	if !tensor.AllClose(y1.Data, y2.Data, 0) {
		t.Error("eval forward must be deterministic")
	}
}

func TestLayerNormRowStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ln := NewLayerNorm(8)
	x := autograd.Constant(tensor.RandN(rng, 3, 4, 8))
	y := ln.Forward(x)
	for i := 0; i < 4; i++ {
		row := y.Data.Row(i)
		mu, va := 0.0, 0.0
		for _, v := range row {
			mu += v
		}
		mu /= 8
		for _, v := range row {
			va += (v - mu) * (v - mu)
		}
		va /= 8
		if math.Abs(mu) > 1e-9 || math.Abs(va-1) > 1e-3 {
			t.Errorf("row %d mean %v var %v", i, mu, va)
		}
	}
}

func TestDropoutModes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDropout(rng, 0.5)
	x := autograd.Constant(tensor.Ones(100, 10))
	y := d.Forward(x)
	zeros := 0
	for _, v := range y.Data.Data() {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("surviving value %v, want 2 (inverted dropout)", v)
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Errorf("dropped %d of 1000, want ≈500", zeros)
	}
	d.SetTraining(false)
	if d.Forward(x) != x {
		t.Error("eval-mode dropout must be identity")
	}
}

func TestMultiHeadAttentionShapesAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	attn := NewMultiHeadAttention(rng, 8, 2, false)
	x := autograd.Param(tensor.RandN(rng, 0.5, 5, 8))
	y := attn.Forward(x)
	if y.Data.Rows() != 5 || y.Data.Cols() != 8 {
		t.Fatalf("attention output shape %v", y.Shape())
	}
	f := func() *autograd.Value { return autograd.Mean(attn.Forward(x)) }
	if err := autograd.GradCheck(f, []*autograd.Value{x}, 1e-6, 1e-4); err != nil {
		t.Error(err)
	}
}

func TestCausalMaskBlocksFuture(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	attn := NewMultiHeadAttention(rng, 4, 1, true)
	// Two inputs identical except for the last position: causal attention
	// output at position 0 must be identical.
	x1 := tensor.RandN(rng, 1, 3, 4)
	x2 := x1.Clone()
	for j := 0; j < 4; j++ {
		x2.Set2(2, j, x2.At2(2, j)+5)
	}
	y1 := attn.Forward(autograd.Constant(x1))
	y2 := attn.Forward(autograd.Constant(x2))
	for j := 0; j < 4; j++ {
		if math.Abs(y1.Data.At2(0, j)-y2.Data.At2(0, j)) > 1e-12 {
			t.Fatalf("causal mask leaked future information at pos 0")
		}
	}
	// Non-causal attention must differ at position 0.
	attn2 := NewMultiHeadAttention(rng, 4, 1, false)
	y3 := attn2.Forward(autograd.Constant(x1))
	y4 := attn2.Forward(autograd.Constant(x2))
	diff := 0.0
	for j := 0; j < 4; j++ {
		diff += math.Abs(y3.Data.At2(0, j) - y4.Data.At2(0, j))
	}
	if diff < 1e-9 {
		t.Error("full attention should propagate future changes to pos 0")
	}
}

func TestAttentionDimValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for dim % heads != 0")
		}
	}()
	NewMultiHeadAttention(rng, 10, 3, false)
}

func TestEncoderLayerForwardAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	enc := NewEncoderLayer(rng, 8, 2, 16, 0, false)
	x := autograd.Constant(tensor.RandN(rng, 1, 6, 8))
	y := enc.Forward(x)
	if y.Data.Rows() != 6 || y.Data.Cols() != 8 {
		t.Fatalf("encoder output shape %v", y.Shape())
	}
	names := map[string]bool{}
	for _, p := range enc.Params() {
		if names[p.Name] {
			t.Errorf("duplicate param name %s", p.Name)
		}
		names[p.Name] = true
	}
	if len(names) != 16 { // attn 8 + 2 LN×2 + 2 FF×2
		t.Errorf("param count = %d, want 16", len(names))
	}
}

func TestPositionalEncodingProperties(t *testing.T) {
	pe := PositionalEncoding(10, 8)
	if pe.Rows() != 10 || pe.Cols() != 8 {
		t.Fatalf("shape %v", pe.Shape())
	}
	// Position 0: sin(0)=0, cos(0)=1 alternating.
	for j := 0; j < 8; j++ {
		want := 0.0
		if j%2 == 1 {
			want = 1
		}
		if math.Abs(pe.At2(0, j)-want) > 1e-12 {
			t.Errorf("pe[0][%d] = %v, want %v", j, pe.At2(0, j), want)
		}
	}
	// All values bounded by 1.
	for _, v := range pe.Data() {
		if v < -1 || v > 1 {
			t.Fatalf("positional encoding out of range: %v", v)
		}
	}
}

func TestFreezeUnfreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := NewLinear(rng, 2, 2)
	Freeze(l)
	x := autograd.Param(tensor.RandN(rng, 1, 1, 2))
	y := autograd.Sum(l.Forward(x))
	y.Backward()
	if l.W.Grad != nil || l.B.Grad != nil {
		t.Error("frozen params accumulated gradient")
	}
	if x.Grad == nil {
		t.Error("gradient must still flow through frozen layer")
	}
	Unfreeze(l)
	y2 := autograd.Sum(l.Forward(x))
	y2.Backward()
	if l.W.Grad == nil {
		t.Error("unfrozen params got no gradient")
	}
}

func TestStateDictRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewEncoderLayer(rng, 4, 2, 8, 0, false)
	b := NewEncoderLayer(rand.New(rand.NewSource(99)), 4, 2, 8, 0, false)
	state := StateDict(a)
	if err := LoadStateDict(b, state); err != nil {
		t.Fatal(err)
	}
	x := autograd.Constant(tensor.RandN(rng, 1, 3, 4))
	ya := a.Forward(x)
	yb := b.Forward(x)
	if !tensor.AllClose(ya.Data, yb.Data, 1e-12) {
		t.Error("loaded model disagrees with source")
	}
}

func TestLoadStateDictErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := NewLinear(rng, 2, 2)
	if err := LoadStateDict(l, map[string][]float64{"w": make([]float64, 4)}); err == nil {
		t.Error("missing key must error")
	}
	state := StateDict(l)
	state["bogus"] = []float64{1}
	if err := LoadStateDict(l, state); err == nil {
		t.Error("unknown key must error")
	}
	state2 := StateDict(l)
	state2["w"] = []float64{1}
	if err := LoadStateDict(l, state2); err == nil {
		t.Error("size mismatch must error")
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := NewLinear(rng, 3, 4)
	if got := NumParams(l); got != 3*4+4 {
		t.Errorf("NumParams = %d, want 16", got)
	}
}
