package nn

import (
	"math/rand"
	"sync"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

// BatchNorm1d normalises each column of a (batch × features) activation
// over the batch, with learnable gain/bias and running statistics for
// inference — the BatchNorm of every hierarchical GNN layer (eq. 4).
type BatchNorm1d struct {
	Gamma *autograd.Value
	Beta  *autograd.Value

	RunningMean *tensor.Tensor
	RunningVar  *tensor.Tensor

	Eps      float64
	Momentum float64 // running = (1-m)*running + m*batch
	training bool
	features int
}

// NewBatchNorm1d returns a BatchNorm over the given feature count with
// gamma=1, beta=0, running mean 0 and running variance 1.
func NewBatchNorm1d(features int) *BatchNorm1d {
	return &BatchNorm1d{
		Gamma:       autograd.Param(tensor.Ones(features)),
		Beta:        autograd.Param(tensor.New(features)),
		RunningMean: tensor.New(features),
		RunningVar:  tensor.Ones(features),
		Eps:         1e-5,
		Momentum:    0.1,
		training:    true,
		features:    features,
	}
}

// Forward applies the normalisation. In training mode batch statistics are
// used and the running statistics updated; in inference mode the frozen
// running statistics are used (gradients still flow through to the input,
// as deployment-time adaptation requires).
func (b *BatchNorm1d) Forward(x *autograd.Value) *autograd.Value {
	if b.training {
		out, mean, variance := autograd.BatchNormTrain(x, b.Gamma, b.Beta, b.Eps)
		b.UpdateRunning(mean, variance)
		return out
	}
	return autograd.BatchNormEval(x, b.Gamma, b.Beta, b.RunningMean, b.RunningVar, b.Eps)
}

// UpdateRunning folds one batch's statistics into the running mean and
// variance: running = (1-momentum)·running + momentum·batch. Fused layers
// that compute batch statistics outside Forward report them through here.
func (b *BatchNorm1d) UpdateRunning(mean, variance *tensor.Tensor) {
	m := b.Momentum
	tensor.AxpyInPlace(tensor.ScaleInPlace(b.RunningMean, 1-m), m, mean)
	tensor.AxpyInPlace(tensor.ScaleInPlace(b.RunningVar, 1-m), m, variance)
}

// ForwardStats is Forward with deferred running-statistics maintenance:
// in training mode with a non-nil collector the batch statistics are
// recorded into stats instead of being folded into the running mean and
// variance immediately. Data-parallel training uses it so concurrent
// shard forwards never mutate the shared running statistics; the trainer
// applies the collectors in shard order after the join, reproducing the
// sequential update sequence exactly.
func (b *BatchNorm1d) ForwardStats(x *autograd.Value, stats *BNStats) *autograd.Value {
	if !b.training || stats == nil {
		return b.Forward(x)
	}
	out, mean, variance := autograd.BatchNormTrain(x, b.Gamma, b.Beta, b.Eps)
	stats.Defer(b, mean, variance)
	return out
}

// SetTraining implements Trainer. Re-asserting the current mode is a pure
// read: concurrent inference callers over one frozen model (the serving
// runtime's per-frame ScoreVideo calls) all SetTraining(false) on shared
// layers, and an unconditional store would be a data race.
func (b *BatchNorm1d) SetTraining(t bool) {
	if b.training != t {
		b.training = t
	}
}

// Training reports the current mode.
func (b *BatchNorm1d) Training() bool { return b.training }

// Params implements Module.
func (b *BatchNorm1d) Params() []Param {
	return []Param{{Name: "gamma", V: b.Gamma}, {Name: "beta", V: b.Beta}}
}

// BNStats collects deferred BatchNorm batch statistics from one forward
// pass so running-statistic updates can be applied after a concurrent
// section instead of during it. Defer is safe for concurrent use (the
// per-KG GNN forwards of one shard fan out on the worker pool), so the
// recorded order of entries is scheduling-dependent — but each BatchNorm
// layer receives at most one entry per forward pass and updates to
// distinct layers commute, so Apply's final state is deterministic.
type BNStats struct {
	mu      sync.Mutex
	entries []bnStat
}

type bnStat struct {
	bn             *BatchNorm1d
	mean, variance *tensor.Tensor
}

// Defer records one layer's batch statistics for a later Apply.
func (s *BNStats) Defer(bn *BatchNorm1d, mean, variance *tensor.Tensor) {
	s.mu.Lock()
	s.entries = append(s.entries, bnStat{bn: bn, mean: mean, variance: variance})
	s.mu.Unlock()
}

// Apply folds every recorded statistic into its layer's running mean and
// variance, in recorded order, and clears the collector for reuse.
func (s *BNStats) Apply() {
	for i, e := range s.entries {
		e.bn.UpdateRunning(e.mean, e.variance)
		s.entries[i] = bnStat{}
	}
	s.entries = s.entries[:0]
}

// Len returns the number of pending deferred updates.
func (s *BNStats) Len() int { return len(s.entries) }

// LayerNorm normalises each row of its input, with learnable gain/bias.
type LayerNorm struct {
	Gamma *autograd.Value
	Beta  *autograd.Value
	Eps   float64
}

// NewLayerNorm returns a LayerNorm over rows of width features.
func NewLayerNorm(features int) *LayerNorm {
	return &LayerNorm{
		Gamma: autograd.Param(tensor.Ones(features)),
		Beta:  autograd.Param(tensor.New(features)),
		Eps:   1e-5,
	}
}

// Forward applies the normalisation.
func (l *LayerNorm) Forward(x *autograd.Value) *autograd.Value {
	return autograd.LayerNorm(x, l.Gamma, l.Beta, l.Eps)
}

// Params implements Module.
func (l *LayerNorm) Params() []Param {
	return []Param{{Name: "gamma", V: l.Gamma}, {Name: "beta", V: l.Beta}}
}

// Dropout zeroes activations with probability P during training and is the
// identity during inference.
type Dropout struct {
	P        float64
	rng      *rand.Rand
	training bool
}

// NewDropout returns a Dropout layer drawing masks from rng.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	return &Dropout{P: p, rng: rng, training: true}
}

// Forward applies dropout in training mode.
func (d *Dropout) Forward(x *autograd.Value) *autograd.Value {
	if !d.training || d.P <= 0 {
		return x
	}
	mask := tensor.New(x.Data.Shape()...)
	md := mask.Data()
	for i := range md {
		if d.rng.Float64() >= d.P {
			md[i] = 1
		}
	}
	return autograd.Dropout(x, mask, d.P)
}

// SetTraining implements Trainer. Like BatchNorm1d.SetTraining, asserting
// the mode already in effect stays read-only for concurrent-inference
// safety.
func (d *Dropout) SetTraining(t bool) {
	if d.training != t {
		d.training = t
	}
}

// Params implements Module (none).
func (d *Dropout) Params() []Param { return nil }
