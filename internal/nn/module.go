// Package nn provides the neural-network building blocks of the detector:
// dense layers, batch/layer normalisation, dropout, embeddings, multi-head
// attention and transformer encoders, together with parameter management
// (collection, freezing, state dictionaries) shared by training and
// deployment-time adaptation.
package nn

import (
	"fmt"
	"sort"

	"edgekg/internal/autograd"
)

// Param is a named trainable tensor.
type Param struct {
	Name string
	V    *autograd.Value
}

// Module is anything owning parameters. Composite modules return their
// children's parameters with a dotted-path prefix.
type Module interface {
	Params() []Param
}

// Trainer is implemented by modules whose forward pass differs between
// training and inference (BatchNorm, Dropout).
type Trainer interface {
	SetTraining(bool)
}

// Values extracts the raw autograd values from a parameter list, the form
// optimizers consume.
func Values(ps []Param) []*autograd.Value {
	out := make([]*autograd.Value, len(ps))
	for i, p := range ps {
		out[i] = p.V
	}
	return out
}

// Prefix returns ps with prefix+"." prepended to every name; composites use
// it to namespace their children.
func Prefix(prefix string, ps []Param) []Param {
	out := make([]Param, len(ps))
	for i, p := range ps {
		out[i] = Param{Name: prefix + "." + p.Name, V: p.V}
	}
	return out
}

// Freeze disables gradient accumulation for every parameter of m.
// Parameters already frozen are left untouched (a pure read), so
// re-asserting a deployed model's frozen state — which every serving
// stream's adapter does after structural KG changes — never writes to
// backbone parameters other streams are concurrently reading.
func Freeze(m Module) {
	for _, p := range m.Params() {
		if p.V.RequiresGrad() {
			p.V.SetRequiresGrad(false)
		}
	}
}

// Unfreeze enables gradient accumulation for every parameter of m.
// Already-trainable parameters are left untouched (see Freeze).
func Unfreeze(m Module) {
	for _, p := range m.Params() {
		if !p.V.RequiresGrad() {
			p.V.SetRequiresGrad(true)
		}
	}
}

// ZeroGrad clears accumulated gradients on every parameter of m.
func ZeroGrad(m Module) {
	for _, p := range m.Params() {
		p.V.ZeroGrad()
	}
}

// NumParams returns the total element count across m's parameters — the
// "model size" number used in the efficiency accounting.
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.V.Data.Size()
	}
	return n
}

// StateDict captures every parameter's data keyed by name. The returned
// map is JSON- and gob-serialisable.
func StateDict(m Module) map[string][]float64 {
	out := make(map[string][]float64)
	for _, p := range m.Params() {
		buf := make([]float64, p.V.Data.Size())
		copy(buf, p.V.Data.Data())
		if _, dup := out[p.Name]; dup {
			panic(fmt.Sprintf("nn: duplicate parameter name %q in state dict", p.Name))
		}
		out[p.Name] = buf
	}
	return out
}

// LoadStateDict copies values from a state dictionary into m's parameters.
// Every parameter of m must be present with matching size; extra keys are
// an error so silently mismatched checkpoints cannot load.
func LoadStateDict(m Module, state map[string][]float64) error {
	seen := make(map[string]bool, len(state))
	for _, p := range m.Params() {
		buf, ok := state[p.Name]
		if !ok {
			return fmt.Errorf("nn: state dict missing parameter %q", p.Name)
		}
		if len(buf) != p.V.Data.Size() {
			return fmt.Errorf("nn: parameter %q size %d does not match state %d", p.Name, p.V.Data.Size(), len(buf))
		}
		copy(p.V.Data.Data(), buf)
		seen[p.Name] = true
	}
	if len(seen) != len(state) {
		var extra []string
		for k := range state {
			if !seen[k] {
				extra = append(extra, k)
			}
		}
		sort.Strings(extra)
		return fmt.Errorf("nn: state dict has unknown parameters %v", extra)
	}
	return nil
}
