package nn

import (
	"fmt"
	"math"
	"math/rand"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

// MultiHeadAttention implements scaled dot-product self-attention over a
// single sequence matrix (T × dim). The short-term temporal model of
// Sec. III-C uses 8 heads over an inner dimensionality of 128.
type MultiHeadAttention struct {
	Wq, Wk, Wv, Wo *Linear

	heads  int
	dim    int
	dk     int
	causal bool
}

// NewMultiHeadAttention returns self-attention with the given model
// dimension and head count; dim must be divisible by heads. When causal is
// true, position t attends only to positions ≤ t.
func NewMultiHeadAttention(rng *rand.Rand, dim, heads int, causal bool) *MultiHeadAttention {
	if heads <= 0 || dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadAttention{
		Wq:     NewLinear(rng, dim, dim),
		Wk:     NewLinear(rng, dim, dim),
		Wv:     NewLinear(rng, dim, dim),
		Wo:     NewLinear(rng, dim, dim),
		heads:  heads,
		dim:    dim,
		dk:     dim / heads,
		causal: causal,
	}
}

// Forward applies self-attention to a (T × dim) sequence. This per-head
// composed-op path is the sequential reference model the fused batched
// path (ForwardBatch) is pinned against by the equivalence tests.
func (a *MultiHeadAttention) Forward(x *autograd.Value) *autograd.Value {
	t := x.Data.Rows()
	q := a.Wq.Forward(x)
	k := a.Wk.Forward(x)
	v := a.Wv.Forward(x)

	var mask *tensor.Tensor
	if a.causal {
		mask = causalMask(t)
	}

	outs := make([]*autograd.Value, a.heads)
	scale := 1 / math.Sqrt(float64(a.dk))
	for h := 0; h < a.heads; h++ {
		lo, hi := h*a.dk, (h+1)*a.dk
		qh := autograd.SliceCols(q, lo, hi)
		kh := autograd.SliceCols(k, lo, hi)
		vh := autograd.SliceCols(v, lo, hi)
		scores := autograd.Scale(autograd.MatMulT2(qh, kh), scale)
		attn := autograd.MaskedSoftmaxRows(scores, mask)
		outs[h] = autograd.MatMul(attn, vh)
	}
	return a.Wo.Forward(autograd.ConcatCols(outs...))
}

// ForwardBatch applies self-attention independently to every T-row window
// of a (batch·T × dim) matrix in one tape pass. The projections run over
// the whole stacked matrix as single fused affine nodes, and the attention
// core is one autograd.BatchedAttention node whose block-diagonal window
// structure guarantees window k never attends into window j. Output row
// b·T+i equals row i of Forward applied to window b alone.
func (a *MultiHeadAttention) ForwardBatch(x *autograd.Value, batch int) *autograd.Value {
	q := a.Wq.Forward(x)
	k := a.Wk.Forward(x)
	v := a.Wv.Forward(x)
	scale := 1 / math.Sqrt(float64(a.dk))
	ctx := autograd.BatchedAttention(q, k, v, batch, a.heads, scale, a.causal)
	return a.Wo.Forward(ctx)
}

// causalMask returns a (t×t) additive mask with -1e9 above the diagonal.
func causalMask(t int) *tensor.Tensor {
	m := tensor.New(t, t)
	for i := 0; i < t; i++ {
		row := m.Row(i)
		for j := i + 1; j < t; j++ {
			row[j] = -1e9
		}
	}
	return m
}

// Params implements Module.
func (a *MultiHeadAttention) Params() []Param {
	var ps []Param
	ps = append(ps, Prefix("wq", a.Wq.Params())...)
	ps = append(ps, Prefix("wk", a.Wk.Params())...)
	ps = append(ps, Prefix("wv", a.Wv.Params())...)
	ps = append(ps, Prefix("wo", a.Wo.Params())...)
	return ps
}

// EncoderLayer is one pre-norm transformer encoder block:
// x + MHA(LN(x)) followed by x + FFN(LN(x)).
type EncoderLayer struct {
	Attn *MultiHeadAttention
	LN1  *LayerNorm
	LN2  *LayerNorm
	FF1  *Linear
	FF2  *Linear
	Drop *Dropout
}

// NewEncoderLayer returns an encoder block with a GELU feed-forward of
// width ffDim.
func NewEncoderLayer(rng *rand.Rand, dim, heads, ffDim int, dropout float64, causal bool) *EncoderLayer {
	return &EncoderLayer{
		Attn: NewMultiHeadAttention(rng, dim, heads, causal),
		LN1:  NewLayerNorm(dim),
		LN2:  NewLayerNorm(dim),
		FF1:  NewLinear(rng, dim, ffDim),
		FF2:  NewLinear(rng, ffDim, dim),
		Drop: NewDropout(rng, dropout),
	}
}

// Forward applies the block to a (T × dim) sequence.
func (e *EncoderLayer) Forward(x *autograd.Value) *autograd.Value {
	h := autograd.Add(x, e.Drop.Forward(e.Attn.Forward(e.LN1.Forward(x))))
	ff := e.FF2.Forward(autograd.GELU(e.FF1.Forward(e.LN2.Forward(h))))
	return autograd.Add(h, e.Drop.Forward(ff))
}

// ForwardBatch applies the block to a batch of windows stacked as a
// (batch·T × dim) matrix in one tape pass. LayerNorm, the feed-forward
// and the residual adds are row-wise, so running them over the stacked
// matrix is already the batched form — one tape node each for the whole
// batch; only attention needs the window-aware fused path. In training
// mode the dropout mask is drawn over the stacked matrix at once, so at
// Dropout > 0 the batched and sequential passes consume the shared RNG
// differently (they remain identically distributed).
func (e *EncoderLayer) ForwardBatch(x *autograd.Value, batch int) *autograd.Value {
	h := autograd.Add(x, e.Drop.Forward(e.Attn.ForwardBatch(e.LN1.Forward(x), batch)))
	ff := e.FF2.Forward(autograd.GELU(e.FF1.Forward(e.LN2.Forward(h))))
	return autograd.Add(h, e.Drop.Forward(ff))
}

// SetTraining implements Trainer.
func (e *EncoderLayer) SetTraining(t bool) { e.Drop.SetTraining(t) }

// Params implements Module.
func (e *EncoderLayer) Params() []Param {
	var ps []Param
	ps = append(ps, Prefix("attn", e.Attn.Params())...)
	ps = append(ps, Prefix("ln1", e.LN1.Params())...)
	ps = append(ps, Prefix("ln2", e.LN2.Params())...)
	ps = append(ps, Prefix("ff1", e.FF1.Params())...)
	ps = append(ps, Prefix("ff2", e.FF2.Params())...)
	return ps
}

// PositionalEncoding returns the standard sinusoidal (T × dim) position
// table added to transformer inputs.
func PositionalEncoding(t, dim int) *tensor.Tensor {
	pe := tensor.New(t, dim)
	for pos := 0; pos < t; pos++ {
		row := pe.Row(pos)
		for i := 0; i < dim; i++ {
			angle := float64(pos) / math.Pow(10000, float64(2*(i/2))/float64(dim))
			if i%2 == 0 {
				row[i] = math.Sin(angle)
			} else {
				row[i] = math.Cos(angle)
			}
		}
	}
	return pe
}
