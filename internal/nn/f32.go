package nn

import (
	"fmt"
	"math"

	"edgekg/internal/flops"
	"edgekg/internal/parallel"
	"edgekg/internal/tensor"
	"edgekg/internal/tensor/kernels"
)

// Float32 inference modules: eval-only snapshots of the trainable layers,
// holding the same weights rounded to float32 and running forward passes
// on the f32 kernel backends. There is no autograd at this width —
// training and adaptation stay float64 — so a snapshot is immutable once
// built and safe for concurrent scoring over one frozen backbone. Owners
// (temporal.Model, gnn layers, decision.Head) cache snapshots and drop
// them whenever the model returns to training mode, so a stale-weight
// read is impossible under the deploy-then-serve contract.

// LinearF32 is a float32 snapshot of a Linear layer.
type LinearF32 struct {
	W *tensor.Tensor32 // (in × out)
	B []float32        // (out)
}

// F32 snapshots the layer's current weights at float32.
func (l *Linear) F32() *LinearF32 {
	return &LinearF32{W: tensor.ToF32(l.W.Data), B: rowF32(l.B.Data.Data())}
}

// Forward applies y = x·W + b to a (batch × in) input.
func (l *LinearF32) Forward(x *tensor.Tensor32) *tensor.Tensor32 {
	out := tensor.MatMul32(x, l.W)
	bk := kernels.Active32()
	r := out.Rows()
	for i := 0; i < r; i++ {
		row := out.Row(i)
		bk.Add(row, l.B, row)
	}
	flops.Add(int64(r * len(l.B)))
	return out
}

// LayerNormF32 is a float32 snapshot of a LayerNorm.
type LayerNormF32 struct {
	Gamma, Beta []float32
	Eps         float32
}

// F32 snapshots the norm's current parameters at float32.
func (l *LayerNorm) F32() *LayerNormF32 {
	return &LayerNormF32{
		Gamma: rowF32(l.Gamma.Data.Data()),
		Beta:  rowF32(l.Beta.Data.Data()),
		Eps:   float32(l.Eps),
	}
}

// Forward normalises each row of x in a fresh tensor.
func (l *LayerNormF32) Forward(x *tensor.Tensor32) *tensor.Tensor32 {
	r, c := x.Rows(), x.Cols()
	out := tensor.New32(r, c)
	inv := 1 / float32(c)
	for i := 0; i < r; i++ {
		xr, or := x.Row(i), out.Row(i)
		var mu float32
		for _, v := range xr {
			mu += v
		}
		mu *= inv
		var va float32
		for _, v := range xr {
			d := v - mu
			va += d * d
		}
		va *= inv
		is := 1 / float32(math.Sqrt(float64(va+l.Eps)))
		for j, v := range xr {
			or[j] = l.Gamma[j]*(v-mu)*is + l.Beta[j]
		}
	}
	flops.Add(int64(r * c * 7))
	return out
}

// MultiHeadAttentionF32 is a float32 snapshot of a MultiHeadAttention.
type MultiHeadAttentionF32 struct {
	Wq, Wk, Wv, Wo *LinearF32
	heads, dk      int
	causal         bool
}

// F32 snapshots the attention weights at float32.
func (a *MultiHeadAttention) F32() *MultiHeadAttentionF32 {
	return &MultiHeadAttentionF32{
		Wq: a.Wq.F32(), Wk: a.Wk.F32(), Wv: a.Wv.F32(), Wo: a.Wo.F32(),
		heads: a.heads, dk: a.dk, causal: a.causal,
	}
}

// ForwardBatch applies self-attention to every T-row window of a
// (batch·T × dim) matrix, mirroring the float64 fused batched path.
func (a *MultiHeadAttentionF32) ForwardBatch(x *tensor.Tensor32, batch int) *tensor.Tensor32 {
	q := a.Wq.Forward(x)
	k := a.Wk.Forward(x)
	v := a.Wv.Forward(x)
	scale := float32(1 / math.Sqrt(float64(a.dk)))
	ctx := BatchedAttentionF32(q, k, v, batch, a.heads, scale, a.causal)
	return a.Wo.Forward(ctx)
}

// BatchedAttentionF32 is the inference-only float32 port of
// autograd.BatchedAttention: block-diagonal scaled dot-product attention
// over batch windows × heads, with the same worker-pool split and FLOP
// accounting as the float64 node so cost trajectories stay comparable.
func BatchedAttentionF32(q, k, v *tensor.Tensor32, batch, heads int, scale float32, causal bool) *tensor.Tensor32 {
	rows, dim := q.Rows(), q.Cols()
	if batch < 1 || rows%batch != 0 {
		panic(fmt.Sprintf("nn: attention batch %d does not divide %d rows", batch, rows))
	}
	t := rows / batch
	if heads < 1 || dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by %d heads", dim, heads))
	}
	dk := dim / heads
	out := tensor.New32(rows, dim)
	bk := kernels.Active32()

	nb := batch * heads
	blockCost := 4*t*t*dk + 5*t*t
	grain := 1
	if blockCost > 0 && (1<<16)/blockCost > 1 {
		grain = (1 << 16) / blockCost
	}
	parallel.For(nb, grain, func(lo, hi int) {
		arow := make([]float32, t)
		for idx := lo; idx < hi; idx++ {
			b, h := idx/heads, idx%heads
			rowOff, colOff := b*t, h*dk
			for i := 0; i < t; i++ {
				jm := t
				if causal {
					jm = i + 1
				}
				qrow := q.Row(rowOff + i)[colOff : colOff+dk]
				for j := 0; j < jm; j++ {
					krow := k.Row(rowOff + j)[colOff : colOff+dk]
					arow[j] = bk.Dot(qrow, krow) * scale
				}
				mx := arow[0]
				for j := 1; j < jm; j++ {
					if arow[j] > mx {
						mx = arow[j]
					}
				}
				var sum float32
				for j := 0; j < jm; j++ {
					e := float32(math.Exp(float64(arow[j] - mx)))
					arow[j] = e
					sum += e
				}
				inv := 1 / sum
				orow := out.Row(rowOff + i)[colOff : colOff+dk]
				for p := 0; p < jm; p++ {
					av := arow[p] * inv
					if av == 0 {
						continue
					}
					vrow := v.Row(rowOff + p)[colOff : colOff+dk]
					bk.Axpy(av, vrow, orow)
				}
			}
		}
	})
	flops.Add(int64(nb * blockCost))
	return out
}

// AddTiledF32 adds a (T × dim) tile to every T-row window of x in place,
// the inference form of autograd.AddTiled.
func AddTiledF32(x *tensor.Tensor32, tile *tensor.Tensor32) {
	r, c := x.Rows(), x.Cols()
	t := tile.Rows()
	if tile.Cols() != c || t == 0 || r%t != 0 {
		panic(fmt.Sprintf("nn: AddTiledF32 shape (%d×%d) tile (%d×%d)", r, c, t, tile.Cols()))
	}
	bk := kernels.Active32()
	for i := 0; i < r; i++ {
		row := x.Row(i)
		bk.Add(row, tile.Row(i%t), row)
	}
	flops.Add(int64(r * c))
}

// GELUF32InPlace applies the tanh-approximated GELU elementwise,
// matching the float64 autograd.GELU formula.
func GELUF32InPlace(x *tensor.Tensor32) {
	const c = 0.7978845608028654
	d := x.Data()
	for i, v := range d {
		f := float64(v)
		d[i] = float32(0.5 * f * (1 + math.Tanh(c*(f+0.044715*f*f*f))))
	}
	flops.Add(int64(8 * len(d)))
}

// ELUF32InPlace applies ELU (α=1) elementwise.
func ELUF32InPlace(x *tensor.Tensor32) {
	d := x.Data()
	for i, v := range d {
		if v <= 0 {
			d[i] = float32(math.Exp(float64(v)) - 1)
		}
	}
	flops.Add(int64(2 * len(d)))
}

// EncoderLayerF32 is a float32 snapshot of one pre-norm encoder block.
type EncoderLayerF32 struct {
	Attn     *MultiHeadAttentionF32
	LN1, LN2 *LayerNormF32
	FF1, FF2 *LinearF32
}

// F32 snapshots the block's weights at float32. Dropout is the identity
// in inference mode and carries no weights, so it has no f32 twin.
func (e *EncoderLayer) F32() *EncoderLayerF32 {
	return &EncoderLayerF32{
		Attn: e.Attn.F32(),
		LN1:  e.LN1.F32(), LN2: e.LN2.F32(),
		FF1: e.FF1.F32(), FF2: e.FF2.F32(),
	}
}

// ForwardBatch applies the block to a batch of stacked windows.
func (e *EncoderLayerF32) ForwardBatch(x *tensor.Tensor32, batch int) *tensor.Tensor32 {
	h := addF32(x, e.Attn.ForwardBatch(e.LN1.Forward(x), batch))
	ff := e.FF1.Forward(e.LN2.Forward(h))
	GELUF32InPlace(ff)
	return addF32(h, e.FF2.Forward(ff))
}

// addF32 returns x + y elementwise in a fresh tensor.
func addF32(x, y *tensor.Tensor32) *tensor.Tensor32 {
	out := tensor.New32(x.Shape()...)
	kernels.Active32().Add(x.Data(), y.Data(), out.Data())
	flops.Add(int64(x.Size()))
	return out
}

// rowF32 narrows a float64 slice to a fresh float32 slice.
func rowF32(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}
