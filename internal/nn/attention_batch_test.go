package nn

import (
	"math/rand"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

// TestMHAForwardBatchMatchesForward pins the fused batched attention layer
// to the per-window composed reference across head counts and mask modes.
func TestMHAForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, heads := range []int{1, 4} {
		for _, causal := range []bool{false, true} {
			attn := NewMultiHeadAttention(rng, 8, heads, causal)
			const batch, win = 3, 5
			x := tensor.RandN(rng, 1, batch*win, 8)
			got := attn.ForwardBatch(autograd.Constant(x), batch)
			for b := 0; b < batch; b++ {
				ref := attn.Forward(autograd.Constant(tensor.SliceRows(x, b*win, (b+1)*win)))
				if !tensor.AllClose(tensor.SliceRows(got.Data, b*win, (b+1)*win), ref.Data, 1e-12) {
					t.Errorf("heads=%d causal=%v: window %d diverges from sequential forward", heads, causal, b)
				}
			}
		}
	}
}

// TestMHAForwardBatchGradMatchesForward checks that parameter and input
// gradients of one batched pass agree with the per-window passes summed.
func TestMHAForwardBatchGradMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	attn := NewMultiHeadAttention(rng, 6, 2, true)
	const batch, win = 2, 4
	data := tensor.RandN(rng, 1, batch*win, 6)

	xb := autograd.Param(data.Clone())
	autograd.Sum(attn.ForwardBatch(xb, batch)).Backward()
	batchGrads := map[string]*tensor.Tensor{"x": xb.Grad.Clone()}
	for _, p := range attn.Params() {
		batchGrads[p.Name] = p.V.Grad.Clone()
		p.V.ZeroGrad()
	}

	xs := autograd.Param(data.Clone())
	for b := 0; b < batch; b++ {
		autograd.Sum(attn.Forward(autograd.SliceRows(xs, b*win, (b+1)*win))).Backward()
	}
	if !tensor.AllClose(batchGrads["x"], xs.Grad, 1e-9) {
		t.Error("input gradient diverges between batched and sequential passes")
	}
	for _, p := range attn.Params() {
		if !tensor.AllClose(batchGrads[p.Name], p.V.Grad, 1e-9) {
			t.Errorf("param %s gradient diverges between batched and sequential passes", p.Name)
		}
	}
}

// TestEncoderLayerForwardBatchMatchesForward pins the batched encoder
// block (batched LayerNorm/FF + fused attention) to the sequential block.
func TestEncoderLayerForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, causal := range []bool{false, true} {
		enc := NewEncoderLayer(rng, 8, 2, 16, 0, causal)
		const batch, win = 4, 3
		x := tensor.RandN(rng, 1, batch*win, 8)
		got := enc.ForwardBatch(autograd.Constant(x), batch)
		if got.Data.Rows() != batch*win || got.Data.Cols() != 8 {
			t.Fatalf("batched encoder shape %v", got.Shape())
		}
		for b := 0; b < batch; b++ {
			ref := enc.Forward(autograd.Constant(tensor.SliceRows(x, b*win, (b+1)*win)))
			if !tensor.AllClose(tensor.SliceRows(got.Data, b*win, (b+1)*win), ref.Data, 1e-12) {
				t.Errorf("causal=%v: window %d diverges from sequential encoder", causal, b)
			}
		}
	}
}
