package parallel

import (
	"sync/atomic"
	"testing"
)

// withWorkers runs f with the pool width pinned to n.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	f()
}

func TestForCoversRangeExactly(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 64, 1000, 4096} {
			for _, grain := range []int{1, 16, 100, 5000} {
				withWorkers(t, w, func() {
					hits := make([]int32, n)
					For(n, grain, func(lo, hi int) {
						if lo >= hi {
							t.Errorf("w=%d n=%d grain=%d: empty range [%d,%d)", w, n, grain, lo, hi)
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
					for i, h := range hits {
						if h != 1 {
							t.Fatalf("w=%d n=%d grain=%d: index %d visited %d times", w, n, grain, i, h)
						}
					}
				})
			}
		}
	}
}

func TestForSequentialWhenSmall(t *testing.T) {
	withWorkers(t, 8, func() {
		calls := 0
		For(10, 100, func(lo, hi int) {
			calls++
			if lo != 0 || hi != 10 {
				t.Fatalf("expected single inline range [0,10), got [%d,%d)", lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("expected 1 inline call, got %d", calls)
		}
	})
}

func TestForRespectsGrain(t *testing.T) {
	withWorkers(t, 4, func() {
		For(1000, 128, func(lo, hi int) {
			if hi-lo < 128 && hi != 1000 {
				t.Errorf("chunk [%d,%d) smaller than grain 128", lo, hi)
			}
		})
	})
}

// TestForNested verifies that a For called from inside a For worker makes
// progress even when the pool is saturated (the caller-participates
// invariant).
func TestForNested(t *testing.T) {
	withWorkers(t, 4, func() {
		var total atomic.Int64
		For(64, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				For(64, 1, func(ilo, ihi int) {
					total.Add(int64(ihi - ilo))
				})
			}
		})
		if got := total.Load(); got != 64*64 {
			t.Fatalf("nested For executed %d inner indices, want %d", got, 64*64)
		}
	})
}

func TestDo(t *testing.T) {
	withWorkers(t, 4, func() {
		var a, b, c atomic.Int32
		Do(
			func() { a.Store(1) },
			func() { b.Store(2) },
			func() { c.Store(3) },
		)
		if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
			t.Fatalf("Do skipped a task: %d %d %d", a.Load(), b.Load(), c.Load())
		}
		Do() // no-op
		ran := false
		Do(func() { ran = true })
		if !ran {
			t.Fatal("single-task Do did not run inline")
		}
	})
}

func TestSetWorkersClamps(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	if Workers() != 1 {
		t.Fatalf("SetWorkers(0) should clamp to 1, got %d", Workers())
	}
}

func BenchmarkForOverhead(b *testing.B) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	sink := make([]float64, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(len(sink), 1<<12, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				sink[k] += 1
			}
		})
	}
}
