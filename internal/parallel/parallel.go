// Package parallel provides the shared worker pool the numerical kernels
// and the detector pipeline run on. It exposes one primitive, For, which
// splits a half-open index range across the pool, plus Do for running a
// small fixed set of independent tasks.
//
// Design notes:
//
//   - The pool is process-wide and sized from GOMAXPROCS by default; the
//     EDGEKG_WORKERS environment variable (or SetWorkers) overrides it.
//     Workers(1) disables parallelism entirely and every call runs inline
//     on the caller's goroutine.
//
//   - The submitting goroutine always participates in its own job, claiming
//     chunks from the same atomic cursor as the pool workers. Pool workers
//     are pure accelerators: a job can always be finished by its caller
//     alone, so nested For calls (a parallel kernel invoked from inside a
//     parallel pipeline stage) cannot deadlock no matter how busy the pool
//     is. Job hand-off to the pool is non-blocking for the same reason.
//
//   - Chunk claiming is dynamic (atomic fetch-add over chunk indices), so
//     ranges with skewed per-index cost still balance, but each chunk is at
//     least `grain` indices so tiny inputs never pay goroutine overhead.
//     Callers pick grain so a chunk amortises scheduling (~1µs) over real
//     work.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// workers is the configured parallelism width (not the pool goroutine
// count: the caller of For counts as one worker).
var workers atomic.Int32

func init() {
	w := runtime.GOMAXPROCS(0)
	if s := os.Getenv("EDGEKG_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			w = n
		}
	}
	workers.Store(int32(w))
}

// Workers returns the configured parallelism width (≥1).
func Workers() int { return int(workers.Load()) }

// SetWorkers sets the parallelism width and returns the previous value.
// n < 1 is clamped to 1 (fully sequential). It is safe for concurrent use;
// tests use it to pin determinism checks to a known width.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workers.Swap(int32(n)))
}

// job is one For invocation: a range split into chunks claimed by an
// atomic cursor shared between the caller and any pool workers that join.
type job struct {
	fn     func(lo, hi int)
	n      int
	chunk  int
	chunks int32
	next   atomic.Int32
	done   atomic.Int32
	fin    chan struct{}
}

// run claims and executes chunks until the cursor is exhausted. The
// goroutine that finishes the last chunk closes fin.
func (j *job) run() {
	for {
		c := int(j.next.Add(1)) - 1
		if c >= int(j.chunks) {
			return
		}
		lo := c * j.chunk
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
		if j.done.Add(1) == j.chunks {
			close(j.fin)
		}
	}
}

var (
	queue = make(chan *job, 256)

	poolMu   sync.Mutex
	poolSize int
)

// ensurePool grows the worker pool to at least target goroutines. Workers
// block on the queue when idle; they are never torn down (the pool is
// process-wide and at most ~GOMAXPROCS goroutines).
func ensurePool(target int) {
	if target <= 0 {
		return
	}
	poolMu.Lock()
	for poolSize < target {
		poolSize++
		go func() {
			for j := range queue {
				j.run()
			}
		}()
	}
	poolMu.Unlock()
}

// For executes fn over subranges covering [0, n), potentially in parallel.
// Each call fn(lo, hi) receives a non-empty half-open subrange; subranges
// are disjoint and cover [0, n) exactly. grain is the minimum subrange
// size (≥1): inputs of n ≤ grain — and any call when Workers() == 1 — run
// inline as fn(0, n) with no synchronisation.
//
// fn must be safe to call concurrently on disjoint ranges. For returns
// only after every subrange has completed.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if w <= 1 || n <= grain {
		fn(0, n)
		return
	}
	// Aim for a few chunks per worker so dynamic claiming can balance
	// skewed costs, without dropping below the requested grain.
	chunk := (n + 4*w - 1) / (4 * w)
	if chunk < grain {
		chunk = grain
	}
	chunks := (n + chunk - 1) / chunk
	if chunks == 1 {
		fn(0, n)
		return
	}
	j := &job{fn: fn, n: n, chunk: chunk, chunks: int32(chunks), fin: make(chan struct{})}
	helpers := w - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	ensurePool(helpers)
offer:
	for i := 0; i < helpers; i++ {
		select {
		case queue <- j:
		default:
			// Pool backlogged; the caller covers the remainder.
			break offer
		}
	}
	j.run()
	<-j.fin
}

// Group is a scoped task group over the shared pool: Go submits one task,
// Wait blocks until every submitted task has completed. Unlike For/Do the
// task set need not be known up front, and tasks may start running on pool
// workers before Wait is called. The zero value is ready to use.
//
// When Workers() == 1 each Go call runs its task inline before returning,
// so a group degrades to a plain sequential loop in submission order —
// the property the data-parallel trainer's determinism tests rely on.
//
// Like For, the waiting goroutine participates: Wait runs every task the
// pool has not yet claimed on the caller's goroutine, so a group can
// always finish without any pool workers and nested groups cannot
// deadlock. A Group must not be shared between goroutines; tasks may
// themselves use For/Do/Group freely.
type Group struct {
	jobs []*job
}

// Go submits one task to the group.
func (g *Group) Go(fn func()) {
	w := Workers()
	if w <= 1 {
		fn()
		return
	}
	j := &job{
		fn:     func(int, int) { fn() },
		n:      1,
		chunk:  1,
		chunks: 1,
		fin:    make(chan struct{}),
	}
	g.jobs = append(g.jobs, j)
	ensurePool(w - 1)
	select {
	case queue <- j:
	default:
		// Pool backlogged; Wait will run the task on the caller.
	}
}

// Wait blocks until every task submitted since the last Wait has
// completed, then resets the group for reuse. Unclaimed tasks are executed
// on the calling goroutine.
func (g *Group) Wait() {
	for _, j := range g.jobs {
		j.run()
	}
	for i, j := range g.jobs {
		<-j.fin
		g.jobs[i] = nil
	}
	g.jobs = g.jobs[:0]
}

// Do runs the given functions, potentially concurrently, and returns when
// all have completed. It is For over the task list with grain 1.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	For(len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}
