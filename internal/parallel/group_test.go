package parallel

import (
	"sync/atomic"
	"testing"
)

func TestGroupRunsEveryTask(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var sum atomic.Int64
	var g Group
	const n = 100
	for i := 1; i <= n; i++ {
		i := i
		g.Go(func() { sum.Add(int64(i)) })
	}
	g.Wait()
	if got := sum.Load(); got != n*(n+1)/2 {
		t.Fatalf("sum = %d, want %d", got, n*(n+1)/2)
	}
}

// TestGroupSequentialAtOneWorker pins the degradation contract: with
// Workers() == 1 every Go call runs inline in submission order, which is
// what makes the data-parallel trainer's shard fan-out deterministic and
// exercisable on a single CPU.
func TestGroupSequentialAtOneWorker(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	var order []int
	var g Group
	for i := 0; i < 5; i++ {
		i := i
		g.Go(func() { order = append(order, i) })
		if len(order) != i+1 {
			t.Fatalf("task %d did not run inline", i)
		}
	}
	g.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

// TestGroupNested checks that group tasks can themselves use For and
// nested groups without deadlocking, even when the pool is saturated.
func TestGroupNested(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var total atomic.Int64
	var g Group
	for i := 0; i < 16; i++ {
		g.Go(func() {
			var inner Group
			for j := 0; j < 4; j++ {
				inner.Go(func() {
					For(64, 8, func(lo, hi int) {
						total.Add(int64(hi - lo))
					})
				})
			}
			inner.Wait()
		})
	}
	g.Wait()
	if got := total.Load(); got != 16*4*64 {
		t.Fatalf("total = %d, want %d", got, 16*4*64)
	}
}

func TestGroupReuseAfterWait(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	var count atomic.Int64
	var g Group
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			g.Go(func() { count.Add(1) })
		}
		g.Wait()
		if got := count.Load(); got != int64(8*(round+1)) {
			t.Fatalf("round %d: count = %d", round, got)
		}
	}
}
