package autograd

import (
	"fmt"
	"math"

	"edgekg/internal/tensor"
)

// GradCheck verifies analytic gradients against central finite differences.
// f must rebuild its computation graph from the current contents of the
// input tensors on every call and return a scalar Value. inputs are the
// leaves to check; each must have been created with requiresGrad true.
//
// The relative error uses the standard normalisation
// |analytic − numeric| / max(1, |analytic|, |numeric|) and the check fails
// if any element exceeds tol. eps is the finite-difference step (1e-6 is a
// good default for float64).
//
// GradCheck is exported (rather than test-local) because every layer
// package in this repository uses it to validate its backward pass.
func GradCheck(f func() *Value, inputs []*Value, eps, tol float64) error {
	for _, in := range inputs {
		if !in.requiresGrad {
			return fmt.Errorf("autograd: GradCheck input %p does not require grad", in)
		}
		in.ZeroGrad()
	}
	out := f()
	if out.Data.Size() != 1 {
		return fmt.Errorf("autograd: GradCheck requires scalar output, got shape %v", out.Shape())
	}
	out.Backward()
	analytic := make([]*tensor.Tensor, len(inputs))
	for i, in := range inputs {
		if in.Grad == nil {
			analytic[i] = tensor.New(in.Data.Shape()...)
		} else {
			analytic[i] = in.Grad.Clone()
		}
	}

	for i, in := range inputs {
		data := in.Data.Data()
		for k := range data {
			orig := data[k]
			data[k] = orig + eps
			plus := f().Scalar()
			data[k] = orig - eps
			minus := f().Scalar()
			data[k] = orig
			numeric := (plus - minus) / (2 * eps)
			got := analytic[i].Data()[k]
			denom := math.Max(1, math.Max(math.Abs(numeric), math.Abs(got)))
			if math.Abs(numeric-got)/denom > tol {
				return fmt.Errorf("autograd: GradCheck input %d elem %d: analytic %.8g vs numeric %.8g (rel err %.3g)",
					i, k, got, numeric, math.Abs(numeric-got)/denom)
			}
		}
	}
	return nil
}
