package autograd

// Backend conformance for the fused autograd kernels, reusing the shared
// shape/payload grid from internal/tensor/kernels so the fused ops face
// the same degenerate geometries and special-value payloads as the raw
// kernels. Two pins per backend:
//
//   - The fused edge-aggregate forward/backward use only order-preserving
//     kernels (MulAcc, Scale, ScaledMulAcc), so their outputs must be
//     bit-identical across every backend.
//   - BatchedAttention's scores and softmax adjoint use the reassociating
//     Dot, so cross-backend agreement is tolerance-based — but within any
//     single backend the fused op must still match the composed reference
//     op chain bit-for-bit, which is the invariant the temporal model's
//     equivalence suite relies on.

import (
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/tensor"
	"edgekg/internal/tensor/kernels"
)

// requireBitEqual compares two equal-length float slices bit-for-bit with
// the NaN-matches-NaN rule.
func requireBitEqual(t *testing.T, ctx string, ref, got []float64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: length %d vs %d", ctx, len(ref), len(got))
	}
	for i := range ref {
		if err := kernels.CompareExact(ref[i], got[i]); err != nil {
			t.Fatalf("%s: element %d: %v", ctx, i, err)
		}
	}
}

// edgeCase builds a deterministic edge structure for an n-node graph:
// roughly 3 edges per node including self-loops and repeated destinations,
// with about half the nodes in-level.
func edgeCase(rng *rand.Rand, n int) (src, dst []int, inLevel []bool) {
	inLevel = make([]bool, n)
	for i := range inLevel {
		inLevel[i] = rng.Intn(2) == 0
	}
	if n > 0 {
		ne := 3 * n
		src = make([]int, ne)
		dst = make([]int, ne)
		for e := 0; e < ne; e++ {
			src[e] = rng.Intn(n)
			if e%5 == 0 {
				dst[e] = src[e] // self-loop: gradient rows alias
			} else {
				dst[e] = rng.Intn(n)
			}
		}
	}
	return src, dst, inLevel
}

// TestEdgeAggBackendConformance pins the fused edge message/aggregate
// forward and backward bit-for-bit across every backend on the shared
// geometry and payload grid — these kernels are built entirely from the
// order-preserving class, so no tolerance is allowed.
func TestEdgeAggBackendConformance(t *testing.T) {
	names := kernels.Names()
	for di, dm := range kernels.ConformanceDims {
		n, d := dm.M, dm.N
		rng := rand.New(rand.NewSource(int64(300 + di)))
		src, dst, inLevel := edgeCase(rng, n)
		for _, p := range kernels.ConformancePayloads {
			x := make([]float64, n*d)
			g := make([]float64, n*d)
			p.Fill(rand.New(rand.NewSource(int64(400+di))), x)
			p.Fill(rand.New(rand.NewSource(int64(500+di))), g)

			var refFwd, refBwd []float64
			for _, name := range names {
				restore, err := kernels.Use(name)
				if err != nil {
					t.Fatal(err)
				}
				fwd := make([]float64, n*d)
				bwd := make([]float64, n*d)
				edgeAggForward(x, fwd, n, d, src, dst, inLevel)
				edgeAggBackward(x, g, bwd, n, d, src, dst, inLevel)
				restore()
				if refFwd == nil {
					refFwd, refBwd = fwd, bwd
					continue
				}
				ctx := name + "/" + p.Name
				requireBitEqual(t, ctx+"/edgeAggForward", refFwd, fwd)
				requireBitEqual(t, ctx+"/edgeAggBackward", refBwd, bwd)
			}
		}
	}
}

// TestEdgeAggFusedMatchesComposedPerBackend re-runs the fused-vs-composed
// equivalence pin under every backend: routing the fused inner loops
// through dispatch must not open a gap to the composed op chain on any of
// them. The pin matches the established contract (fused_test.go): forward
// bit-exact, backward within 1e-12 — the fused backward interleaves the
// src/dst edge contributions where the composed path scatters all src
// contributions before all dst ones, an accumulation-order gap of a ULP
// that predates dispatch and exists identically on every backend.
func TestEdgeAggFusedMatchesComposedPerBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const n, d = 13, 7
	src, dst, inLevel := edgeCase(rng, n)
	xdata := tensor.RandN(rng, 1, n, d)
	for _, name := range kernels.Names() {
		restore, err := kernels.Use(name)
		if err != nil {
			t.Fatal(err)
		}
		xf := Param(xdata.Clone())
		xc := Param(xdata.Clone())
		fused := EdgeMessageAggregate(xf, src, dst, inLevel)
		composed := EdgeAggregate(xc, EdgeMessage(xc, src, dst), dst, inLevel)
		requireBitEqual(t, name+"/forward", composed.Data.Data(), fused.Data.Data())
		Sum(fused).Backward()
		Sum(composed).Backward()
		if !tensor.AllClose(xc.Grad, xf.Grad, 1e-12) {
			t.Errorf("%s: fused grad diverges from composed beyond 1e-12", name)
		}
		restore()
	}
}

// TestBatchedAttentionBackendConformance checks the fused attention under
// every backend: bit-identical to the composed per-window reference within
// the backend, and within reassociation tolerance of the scalar backend's
// output across backends.
func TestBatchedAttentionBackendConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	const batch, win, heads, dk = 3, 5, 2, 3
	dim := heads * dk
	scale := 1 / math.Sqrt(float64(dk))
	qd := tensor.RandN(rng, 1, batch*win, dim)
	kd := tensor.RandN(rng, 1, batch*win, dim)
	vd := tensor.RandN(rng, 1, batch*win, dim)
	gseed := tensor.RandN(rng, 1, batch*win, dim)

	for _, causal := range []bool{false, true} {
		var scalarOut, scalarGq *tensor.Tensor
		for _, name := range kernels.Names() {
			restore, err := kernels.Use(name)
			if err != nil {
				t.Fatal(err)
			}
			q, k, v := Param(qd.Clone()), Param(kd.Clone()), Param(vd.Clone())
			fused := BatchedAttention(q, k, v, batch, heads, scale, causal)
			qc, kc, vc := Param(qd.Clone()), Param(kd.Clone()), Param(vd.Clone())
			composed := composedAttention(qc, kc, vc, batch, heads, scale, causal)
			requireBitEqual(t, name+"/forward-vs-composed", composed.Data.Data(), fused.Data.Data())

			Sum(Mul(fused, Constant(gseed))).Backward()
			Sum(Mul(composed, Constant(gseed))).Backward()
			// Backward agreement follows the established 1e-12 contract
			// (attention_test.go): the composed graph accumulates adjoints
			// through a different node order than the fused closure.
			for i, pair := range [][2]*Value{{q, qc}, {k, kc}, {v, vc}} {
				if !tensor.AllClose(pair[1].Grad, pair[0].Grad, 1e-12) {
					t.Errorf("%s: causal=%v input %d grad diverges from composed beyond 1e-12", name, causal, i)
				}
			}

			if name == "scalar" {
				scalarOut, scalarGq = fused.Data, q.Grad
			} else if scalarOut != nil {
				if !tensor.AllClose(scalarOut, fused.Data, 1e-12) {
					t.Errorf("%s: causal=%v forward diverges from scalar beyond 1e-12", name, causal)
				}
				if !tensor.AllClose(scalarGq, q.Grad, 1e-10) {
					t.Errorf("%s: causal=%v q-grad diverges from scalar beyond 1e-10", name, causal)
				}
			}
			restore()
		}
	}
}
