package autograd

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"edgekg/internal/tensor"
)

// shardLoss builds a small two-layer scalar loss over shared parameters:
// sum(tanh(x·W + b)). Each call builds a fresh tape, which is exactly the
// data-parallel shard contract — shared leaves, private interior nodes.
func shardLoss(x *tensor.Tensor, w, b *Value) *Value {
	return Sum(Tanh(Affine(Constant(x), w, b)))
}

// TestBackwardIntoRoutesLeafGrads pins the sink contract: BackwardInto
// must deliver exactly the gradients Backward would, into the sink instead
// of the leaves' Grad fields, leaving the shared leaves untouched.
func TestBackwardIntoRoutesLeafGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := Param(tensor.RandN(rng, 1, 3, 4))
	b := Param(tensor.RandN(rng, 1, 4))
	x := tensor.RandN(rng, 1, 5, 3)

	shardLoss(x, w, b).Backward()
	wantW, wantB := w.Grad.Clone(), b.Grad.Clone()
	w.ZeroGrad()
	b.ZeroGrad()

	sink := make(GradSink)
	shardLoss(x, w, b).BackwardInto(sink)
	if w.Grad != nil || b.Grad != nil {
		t.Fatal("BackwardInto wrote to a shared leaf's Grad field")
	}
	if !tensor.AllClose(sink.Grad(w), wantW, 0) {
		t.Error("sink W gradient differs from Backward")
	}
	if !tensor.AllClose(sink.Grad(b), wantB, 0) {
		t.Error("sink b gradient differs from Backward")
	}
}

// TestBackwardIntoAccumulatesAcrossCalls checks that one sink accumulates
// over multiple backward passes exactly as a Grad field would.
func TestBackwardIntoAccumulatesAcrossCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := Param(tensor.RandN(rng, 1, 2, 3))
	b := Param(tensor.RandN(rng, 1, 3))
	x1 := tensor.RandN(rng, 1, 4, 2)
	x2 := tensor.RandN(rng, 1, 4, 2)

	shardLoss(x1, w, b).Backward()
	shardLoss(x2, w, b).Backward()
	want := w.Grad.Clone()
	w.ZeroGrad()
	b.ZeroGrad()

	sink := make(GradSink)
	shardLoss(x1, w, b).BackwardInto(sink)
	shardLoss(x2, w, b).BackwardInto(sink)
	if !tensor.AllClose(sink.Grad(w), want, 0) {
		t.Error("sink accumulation differs from Grad-field accumulation")
	}
}

// TestBackwardIntoConcurrentShards runs many concurrent backward passes
// over shared parameter leaves, each with its own tape and sink — the
// data-parallel training contract. Under -race this is the shard-safety
// proof; the value check pins every shard's sink to its sequential
// reference.
func TestBackwardIntoConcurrentShards(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := Param(tensor.RandN(rng, 1, 4, 6))
	b := Param(tensor.RandN(rng, 1, 6))
	const shards = 8
	inputs := make([]*tensor.Tensor, shards)
	want := make([]*tensor.Tensor, shards)
	for s := range inputs {
		inputs[s] = tensor.RandN(rng, 1, 3, 4)
		sink := make(GradSink)
		shardLoss(inputs[s], w, b).BackwardInto(sink)
		want[s] = sink.Grad(w)
	}

	sinks := make([]GradSink, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sink := make(GradSink)
			shardLoss(inputs[s], w, b).BackwardInto(sink)
			sinks[s] = sink
		}(s)
	}
	wg.Wait()
	if w.Grad != nil || b.Grad != nil {
		t.Fatal("concurrent shard backward touched shared Grad fields")
	}
	for s := range sinks {
		if !tensor.AllClose(sinks[s].Grad(w), want[s], 0) {
			t.Errorf("shard %d sink differs from its sequential reference", s)
		}
	}
}

// TestReduceSinksTreeOrder pins the reduction to the fixed pairwise tree
// ((s0+s1)+(s2+s3)) — bit-exact, independent of anything but sink order —
// and checks scaling and the nil-Grad behaviour for untouched parameters.
func TestReduceSinksTreeOrder(t *testing.T) {
	p := Param(tensor.New(2))
	frozen := Param(tensor.New(2))
	g := func(a, b float64) *tensor.Tensor {
		m := tensor.New(2)
		m.Data()[0], m.Data()[1] = a, b
		return m
	}
	sinks := []GradSink{
		{p: g(1, 0.1)},
		{p: g(2, 0.2)},
		{p: g(3, 0.3)},
		{p: g(4, 0.4)},
	}
	ReduceSinks([]*Value{p, frozen}, sinks, 0.25)
	w0 := ((1.0 + 2.0) + (3.0 + 4.0)) * 0.25
	w1 := ((0.1 + 0.2) + (0.3 + 0.4)) * 0.25
	if p.Grad == nil || p.Grad.Data()[0] != w0 || p.Grad.Data()[1] != w1 {
		t.Fatalf("reduced grad = %v, want [%v %v]", p.Grad, w0, w1)
	}
	if frozen.Grad != nil {
		t.Error("parameter absent from every sink received a gradient")
	}

	// Three shards: ((s0+s1)+s2), bit-exact.
	p.ZeroGrad()
	ReduceSinks([]*Value{p}, []GradSink{{p: g(1, 0)}, {p: g(2, 0)}, {p: g(3, 0)}}, 1)
	if p.Grad.Data()[0] != (1.0+2.0)+3.0 {
		t.Errorf("3-shard reduce = %v", p.Grad.Data()[0])
	}
}

// TestShardReduceGradCheck drives finite differences through the full
// shard path: two shard tapes over shared parameters, BackwardInto
// per-shard sinks, tree-reduce with 1/K averaging — the analytic gradient
// of the mean shard loss must match central differences.
func TestShardReduceGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := Param(tensor.RandN(rng, 0.5, 3, 3))
	b := Param(tensor.RandN(rng, 0.5, 3))
	xs := []*tensor.Tensor{
		tensor.RandN(rng, 1, 2, 3),
		tensor.RandN(rng, 1, 2, 3),
	}
	meanLoss := func() float64 {
		total := 0.0
		for _, x := range xs {
			total += shardLoss(x, w, b).Scalar()
		}
		return total / float64(len(xs))
	}

	sinks := make([]GradSink, len(xs))
	for s, x := range xs {
		sinks[s] = make(GradSink)
		shardLoss(x, w, b).BackwardInto(sinks[s])
	}
	w.ZeroGrad()
	b.ZeroGrad()
	ReduceSinks([]*Value{w, b}, sinks, 1/float64(len(xs)))

	const eps, tol = 1e-6, 1e-7
	for _, p := range []*Value{w, b} {
		data := p.Data.Data()
		for i := range data {
			orig := data[i]
			data[i] = orig + eps
			plus := meanLoss()
			data[i] = orig - eps
			minus := meanLoss()
			data[i] = orig
			numeric := (plus - minus) / (2 * eps)
			got := p.Grad.Data()[i]
			denom := math.Max(1, math.Max(math.Abs(numeric), math.Abs(got)))
			if math.Abs(numeric-got)/denom > tol {
				t.Fatalf("param elem %d: analytic %g vs numeric %g", i, got, numeric)
			}
		}
	}
}
