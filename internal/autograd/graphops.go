package autograd

import (
	"fmt"

	"edgekg/internal/tensor"
)

// EdgeMessage computes the hierarchical message passing layer of eq. (2):
// for each edge e = (src[e], dst[e]) in E(l) it emits the elementwise
// product X_src ⊙ X_dst of the node-embedding rows. x is (|V|×D); the
// result is (|E(l)|×D).
func EdgeMessage(x *Value, src, dst []int) *Value {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("autograd: EdgeMessage %d sources vs %d destinations", len(src), len(dst)))
	}
	srcIdx := append([]int(nil), src...)
	dstIdx := append([]int(nil), dst...)
	xs := tensor.Gather(x.Data, srcIdx)
	xd := tensor.Gather(x.Data, dstIdx)
	out := tensor.Mul(xs, xd)
	return newOp("edgemessage", out, []*Value{x}, func(g *tensor.Tensor) {
		// d/dX_src = g ⊙ X_dst scattered to src rows; symmetric for dst.
		gx := tensor.New(x.Data.Shape()...)
		tensor.ScatterAddRows(gx, srcIdx, tensor.Mul(g, xd))
		tensor.ScatterAddRows(gx, dstIdx, tensor.Mul(g, xs))
		x.accumulate(gx)
	})
}

// EdgeAggregate implements the hierarchical aggregate layer of eq. (3):
// nodes in the current level (inLevel[d] true) receive the mean of the
// messages addressed to them, all other nodes pass their embedding through
// unchanged. msgs is (|E(l)|×D) aligned with dst; x is (|V|×D).
//
// A node flagged inLevel with no incoming messages keeps its embedding —
// the situation arises transiently after node creation (Fig. 4C) before
// random edges are attached, and dropping such nodes to zero would poison
// BatchNorm statistics.
func EdgeAggregate(x, msgs *Value, dst []int, inLevel []bool) *Value {
	n := x.Data.Rows()
	d := x.Data.Cols()
	if len(inLevel) != n {
		panic(fmt.Sprintf("autograd: EdgeAggregate inLevel length %d != %d nodes", len(inLevel), n))
	}
	if msgs.Data.Rows() != len(dst) {
		panic(fmt.Sprintf("autograd: EdgeAggregate %d messages vs %d destinations", msgs.Data.Rows(), len(dst)))
	}
	dstIdx := append([]int(nil), dst...)
	level := append([]bool(nil), inLevel...)

	counts := make([]float64, n)
	for _, t := range dstIdx {
		counts[t]++
	}
	out := tensor.New(n, d)
	// Pass-through rows.
	for i := 0; i < n; i++ {
		if !level[i] || counts[i] == 0 {
			copy(out.Row(i), x.Data.Row(i))
		}
	}
	// Mean-aggregated rows.
	tensor.ScatterAddRows(out, dstIdx, msgs.Data)
	for i := 0; i < n; i++ {
		if level[i] && counts[i] > 0 {
			row := out.Row(i)
			// Remove the pass-through contribution is unnecessary: rows
			// with counts>0 and inLevel were never seeded above, so the
			// scatter result alone is the sum of messages.
			inv := 1 / counts[i]
			for j := range row {
				row[j] *= inv
			}
		} else if counts[i] > 0 {
			// Messages addressed to an out-of-level node are ignored per
			// eq. (3); undo the scatter contribution.
			row := out.Row(i)
			copy(row, x.Data.Row(i))
		}
	}
	return newOp("edgeaggregate", out, []*Value{x, msgs}, func(g *tensor.Tensor) {
		if x.requiresGrad {
			gx := tensor.New(n, d)
			for i := 0; i < n; i++ {
				if !level[i] || counts[i] == 0 {
					copy(gx.Row(i), g.Row(i))
				}
			}
			x.accumulate(gx)
		}
		if msgs.requiresGrad {
			gm := tensor.New(len(dstIdx), d)
			for e, t := range dstIdx {
				if !level[t] || counts[t] == 0 {
					continue
				}
				inv := 1 / counts[t]
				grow, mrow := g.Row(t), gm.Row(e)
				for j := 0; j < d; j++ {
					mrow[j] = grow[j] * inv
				}
			}
			msgs.accumulate(gm)
		}
	})
}

// RowsMask zeroes every row i of a matrix where keep[i] is false. It is
// used to restrict losses to selected frames (the top-K pseudo-anomalies).
func RowsMask(v *Value, keep []bool) *Value {
	r, c := v.Data.Rows(), v.Data.Cols()
	if len(keep) != r {
		panic(fmt.Sprintf("autograd: RowsMask %d flags for %d rows", len(keep), r))
	}
	flags := append([]bool(nil), keep...)
	out := tensor.New(r, c)
	for i := 0; i < r; i++ {
		if flags[i] {
			copy(out.Row(i), v.Data.Row(i))
		}
	}
	return newOp("rowsmask", out, []*Value{v}, func(g *tensor.Tensor) {
		gv := tensor.New(r, c)
		for i := 0; i < r; i++ {
			if flags[i] {
				copy(gv.Row(i), g.Row(i))
			}
		}
		v.accumulate(gv)
	})
}
