package autograd

import (
	"fmt"

	"edgekg/internal/flops"
	"edgekg/internal/tensor"
	"edgekg/internal/tensor/kernels"
)

// EdgeMessage computes the hierarchical message passing layer of eq. (2):
// for each edge e = (src[e], dst[e]) in E(l) it emits the elementwise
// product X_src ⊙ X_dst of the node-embedding rows. x is (|V|×D); the
// result is (|E(l)|×D).
func EdgeMessage(x *Value, src, dst []int) *Value {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("autograd: EdgeMessage %d sources vs %d destinations", len(src), len(dst)))
	}
	srcIdx := append([]int(nil), src...)
	dstIdx := append([]int(nil), dst...)
	xs := tensor.Gather(x.Data, srcIdx)
	xd := tensor.Gather(x.Data, dstIdx)
	out := tensor.Mul(xs, xd)
	return newOp3("edgemessage", out, x, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		// d/dX_src = g ⊙ X_dst scattered to src rows; symmetric for dst.
		gx := tensor.New(x.Data.Shape()...)
		tensor.ScatterAddRows(gx, srcIdx, tensor.Mul(g, xd))
		tensor.ScatterAddRows(gx, dstIdx, tensor.Mul(g, xs))
		bp.accumulate(x, gx)
	})
}

// EdgeAggregate implements the hierarchical aggregate layer of eq. (3):
// nodes in the current level (inLevel[d] true) receive the mean of the
// messages addressed to them, all other nodes pass their embedding through
// unchanged. msgs is (|E(l)|×D) aligned with dst; x is (|V|×D).
//
// A node flagged inLevel with no incoming messages keeps its embedding —
// the situation arises transiently after node creation (Fig. 4C) before
// random edges are attached, and dropping such nodes to zero would poison
// BatchNorm statistics.
func EdgeAggregate(x, msgs *Value, dst []int, inLevel []bool) *Value {
	n := x.Data.Rows()
	d := x.Data.Cols()
	if len(inLevel) != n {
		panic(fmt.Sprintf("autograd: EdgeAggregate inLevel length %d != %d nodes", len(inLevel), n))
	}
	if msgs.Data.Rows() != len(dst) {
		panic(fmt.Sprintf("autograd: EdgeAggregate %d messages vs %d destinations", msgs.Data.Rows(), len(dst)))
	}
	dstIdx := append([]int(nil), dst...)
	level := append([]bool(nil), inLevel...)

	counts := make([]float64, n)
	for _, t := range dstIdx {
		counts[t]++
	}
	out := tensor.New(n, d)
	// Pass-through rows.
	for i := 0; i < n; i++ {
		if !level[i] || counts[i] == 0 {
			copy(out.Row(i), x.Data.Row(i))
		}
	}
	// Mean-aggregated rows.
	tensor.ScatterAddRows(out, dstIdx, msgs.Data)
	for i := 0; i < n; i++ {
		if level[i] && counts[i] > 0 {
			row := out.Row(i)
			// Remove the pass-through contribution is unnecessary: rows
			// with counts>0 and inLevel were never seeded above, so the
			// scatter result alone is the sum of messages.
			inv := 1 / counts[i]
			for j := range row {
				row[j] *= inv
			}
		} else if counts[i] > 0 {
			// Messages addressed to an out-of-level node are ignored per
			// eq. (3); undo the scatter contribution.
			row := out.Row(i)
			copy(row, x.Data.Row(i))
		}
	}
	return newOp3("edgeaggregate", out, x, msgs, nil, func(bp *Backprop, g *tensor.Tensor) {
		if x.requiresGrad {
			gx := tensor.New(n, d)
			for i := 0; i < n; i++ {
				if !level[i] || counts[i] == 0 {
					copy(gx.Row(i), g.Row(i))
				}
			}
			bp.accumulate(x, gx)
		}
		if msgs.requiresGrad {
			gm := tensor.New(len(dstIdx), d)
			for e, t := range dstIdx {
				if !level[t] || counts[t] == 0 {
					continue
				}
				inv := 1 / counts[t]
				grow, mrow := g.Row(t), gm.Row(e)
				for j := 0; j < d; j++ {
					mrow[j] = grow[j] * inv
				}
			}
			bp.accumulate(msgs, gm)
		}
	})
}

// EdgeMessageAggregate fuses EdgeMessage and EdgeAggregate (eqs. 2–3) into
// one kernel: for every in-level node t with incoming edges it computes the
// mean over edges e=(s,t) of the elementwise product X_s ⊙ X_t, and every
// other node passes its embedding through unchanged. The fusion never
// materialises the (|E|×D) message matrix or its gather inputs — it reads
// node rows in place, accumulates products directly into the output, and
// uses pooled workspace buffers for the per-node edge counts, which is
// where the batched GNN forward previously spent most of its allocations.
//
// src, dst and inLevel are borrowed, not copied: the caller must not
// mutate them for the lifetime of the computation graph (the GNN layout
// cache owns them and they are immutable between rebinds).
//
// Forward results are bit-identical to the composed
// EdgeAggregate(x, EdgeMessage(x, src, dst), dst, inLevel): edges are
// accumulated in the same order and scaled by the same reciprocal.
func EdgeMessageAggregate(x *Value, src, dst []int, inLevel []bool) *Value {
	n := x.Data.Rows()
	d := x.Data.Cols()
	checkEdgeLists(n, src, dst, inLevel)
	out := tensor.New(n, d)
	edgeAggForward(x.Data.Data(), out.Data(), n, d, src, dst, inLevel)
	xd := x.Data.Data()
	return newOp3("edgemsgagg", out, x, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gx := tensor.New(n, d)
		edgeAggBackward(xd, g.Data(), gx.Data(), n, d, src, dst, inLevel)
		bp.accumulate(x, gx)
	})
}

// checkEdgeLists validates the index structure shared by the fused edge
// kernels.
func checkEdgeLists(n int, src, dst []int, inLevel []bool) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("autograd: edge kernel %d sources vs %d destinations", len(src), len(dst)))
	}
	if len(inLevel) != n {
		panic(fmt.Sprintf("autograd: edge kernel inLevel length %d != %d nodes", len(inLevel), n))
	}
	for e := range dst {
		if dst[e] < 0 || dst[e] >= n || src[e] < 0 || src[e] >= n {
			panic(fmt.Sprintf("autograd: edge %d→%d out of range [0,%d)", src[e], dst[e], n))
		}
	}
}

// edgeAggForward computes the fused message/aggregate forward from xd into
// od (both n×d row-major): in-level destinations receive the mean over
// incoming edges of the elementwise source·destination product, everything
// else passes through. od must start zeroed.
func edgeAggForward(xd, od []float64, n, d int, src, dst []int, inLevel []bool) {
	ws := tensor.NewWorkspace()
	counts := ws.Floats(n)
	for _, t := range dst {
		counts[t]++
	}
	// Sum of products into in-level destination rows, in edge order. The
	// active kernel backend's MulAcc is bit-identical to the scalar loop
	// (order-preserving class), so fused-vs-composed equivalence holds on
	// every backend.
	bk := kernels.Active()
	for e, t := range dst {
		if !inLevel[t] {
			continue
		}
		s := src[e]
		srow := xd[s*d : (s+1)*d]
		trow := xd[t*d : (t+1)*d]
		orow := od[t*d : (t+1)*d]
		bk.MulAcc(srow, trow, orow)
	}
	// Scale aggregated rows to means; everything else passes through.
	for i := 0; i < n; i++ {
		row := od[i*d : (i+1)*d]
		if inLevel[i] && counts[i] > 0 {
			bk.Scale(1/counts[i], row, row)
		} else {
			copy(row, xd[i*d:(i+1)*d])
		}
	}
	flops.Add(int64(2 * len(dst) * d))
	ws.Release()
}

// edgeAggBackward accumulates the adjoint of edgeAggForward into gxd given
// the upstream gradient gd (both n×d row-major). gxd must start zeroed.
func edgeAggBackward(xd, gd, gxd []float64, n, d int, src, dst []int, inLevel []bool) {
	ws := tensor.NewWorkspace()
	counts := ws.Floats(n)
	for _, t := range dst {
		counts[t]++
	}
	for i := 0; i < n; i++ {
		if !inLevel[i] || counts[i] == 0 {
			copy(gxd[i*d:(i+1)*d], gd[i*d:(i+1)*d])
		}
	}
	// ScaledMulAcc computes dst[j] += (inv·g[j])·other[j] with exactly the
	// rounding order of the original fused loop, so splitting the src and
	// dst accumulations into two row-wide calls stays bit-identical: each
	// element is touched by the same two additions in the same order, even
	// for self-loops where the two gradient rows alias.
	bk := kernels.Active()
	for e, t := range dst {
		if !inLevel[t] || counts[t] == 0 {
			continue
		}
		s := src[e]
		inv := 1 / counts[t]
		grow := gd[t*d : (t+1)*d]
		bk.ScaledMulAcc(inv, grow, xd[t*d:(t+1)*d], gxd[s*d:(s+1)*d])
		bk.ScaledMulAcc(inv, grow, xd[s*d:(s+1)*d], gxd[t*d:(t+1)*d])
	}
	flops.Add(int64(5 * len(dst) * d))
	ws.Release()
}

// RowsMask zeroes every row i of a matrix where keep[i] is false. It is
// used to restrict losses to selected frames (the top-K pseudo-anomalies).
func RowsMask(v *Value, keep []bool) *Value {
	r, c := v.Data.Rows(), v.Data.Cols()
	if len(keep) != r {
		panic(fmt.Sprintf("autograd: RowsMask %d flags for %d rows", len(keep), r))
	}
	flags := append([]bool(nil), keep...)
	out := tensor.New(r, c)
	for i := 0; i < r; i++ {
		if flags[i] {
			copy(out.Row(i), v.Data.Row(i))
		}
	}
	return newOp3("rowsmask", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gv := tensor.New(r, c)
		for i := 0; i < r; i++ {
			if flags[i] {
				copy(gv.Row(i), g.Row(i))
			}
		}
		bp.accumulate(v, gv)
	})
}
