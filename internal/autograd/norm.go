package autograd

import (
	"math"

	"edgekg/internal/tensor"
)

// BatchNormTrain applies training-mode batch normalisation over the rows of
// x (statistics per column), with learnable per-column gain gamma and bias
// beta. It returns the normalised output along with the batch mean and
// biased variance so the caller can maintain running statistics for
// inference. This is the BatchNorm of the GNN layer (eq. 4).
func BatchNormTrain(x, gamma, beta *Value, eps float64) (out *Value, batchMean, batchVar *tensor.Tensor) {
	r, c := x.Data.Rows(), x.Data.Cols()
	mean := tensor.MeanAxis0(x.Data)
	variance := tensor.VarAxis0(x.Data)

	invStd := make([]float64, c)
	for j, v := range variance.Data() {
		invStd[j] = 1 / math.Sqrt(v+eps)
	}
	xhat := tensor.New(r, c)
	for i := 0; i < r; i++ {
		xrow, hrow := x.Data.Row(i), xhat.Row(i)
		for j := 0; j < c; j++ {
			hrow[j] = (xrow[j] - mean.Data()[j]) * invStd[j]
		}
	}
	o := tensor.New(r, c)
	for i := 0; i < r; i++ {
		hrow, orow := xhat.Row(i), o.Row(i)
		for j := 0; j < c; j++ {
			orow[j] = gamma.Data.Data()[j]*hrow[j] + beta.Data.Data()[j]
		}
	}

	v := newOp3("batchnorm", o, x, gamma, beta, func(bp *Backprop, g *tensor.Tensor) {
		if gamma.requiresGrad {
			gg := tensor.New(c)
			for i := 0; i < r; i++ {
				grow, hrow := g.Row(i), xhat.Row(i)
				for j := 0; j < c; j++ {
					gg.Data()[j] += grow[j] * hrow[j]
				}
			}
			bp.accumulate(gamma, gg.Reshape(gamma.Data.Shape()...))
		}
		if beta.requiresGrad {
			bp.accumulate(beta, tensor.SumAxis0(g).Reshape(beta.Data.Shape()...))
		}
		if x.requiresGrad {
			// Standard batch-norm input gradient:
			// dx = (γ·invStd/r) · (r·g − Σg − x̂·Σ(g⊙x̂))
			sumG := tensor.New(c)
			sumGH := tensor.New(c)
			for i := 0; i < r; i++ {
				grow, hrow := g.Row(i), xhat.Row(i)
				for j := 0; j < c; j++ {
					sumG.Data()[j] += grow[j]
					sumGH.Data()[j] += grow[j] * hrow[j]
				}
			}
			gx := tensor.New(r, c)
			rn := float64(r)
			for i := 0; i < r; i++ {
				grow, hrow, xrow := g.Row(i), xhat.Row(i), gx.Row(i)
				for j := 0; j < c; j++ {
					coef := gamma.Data.Data()[j] * invStd[j] / rn
					xrow[j] = coef * (rn*grow[j] - sumG.Data()[j] - hrow[j]*sumGH.Data()[j])
				}
			}
			bp.accumulate(x, gx)
		}
	})
	return v, mean, variance
}

// BatchNormEval applies inference-mode batch normalisation using the frozen
// running statistics. Gradients still flow into x (and gamma/beta if
// trainable), which is what deployment-time adaptive learning needs: the
// decision model is frozen but gradients must pass through it into the KG
// token embeddings.
func BatchNormEval(x, gamma, beta *Value, runningMean, runningVar *tensor.Tensor, eps float64) *Value {
	r, c := x.Data.Rows(), x.Data.Cols()
	invStd := make([]float64, c)
	for j, v := range runningVar.Data() {
		invStd[j] = 1 / math.Sqrt(v+eps)
	}
	o := tensor.New(r, c)
	for i := 0; i < r; i++ {
		xrow, orow := x.Data.Row(i), o.Row(i)
		for j := 0; j < c; j++ {
			xh := (xrow[j] - runningMean.Data()[j]) * invStd[j]
			orow[j] = gamma.Data.Data()[j]*xh + beta.Data.Data()[j]
		}
	}
	return newOp3("batchnorm.eval", o, x, gamma, beta, func(bp *Backprop, g *tensor.Tensor) {
		if gamma.requiresGrad {
			gg := tensor.New(c)
			for i := 0; i < r; i++ {
				xrow, grow := x.Data.Row(i), g.Row(i)
				for j := 0; j < c; j++ {
					xh := (xrow[j] - runningMean.Data()[j]) * invStd[j]
					gg.Data()[j] += grow[j] * xh
				}
			}
			bp.accumulate(gamma, gg.Reshape(gamma.Data.Shape()...))
		}
		if beta.requiresGrad {
			bp.accumulate(beta, tensor.SumAxis0(g).Reshape(beta.Data.Shape()...))
		}
		if x.requiresGrad {
			gx := tensor.New(r, c)
			for i := 0; i < r; i++ {
				grow, xrow := g.Row(i), gx.Row(i)
				for j := 0; j < c; j++ {
					xrow[j] = grow[j] * gamma.Data.Data()[j] * invStd[j]
				}
			}
			bp.accumulate(x, gx)
		}
	})
}

// LayerNorm normalises each row of x to zero mean and unit variance, then
// applies the per-column gain gamma and bias beta. The temporal transformer
// blocks use it.
func LayerNorm(x, gamma, beta *Value, eps float64) *Value {
	r, c := x.Data.Rows(), x.Data.Cols()
	xhat := tensor.New(r, c)
	invStds := make([]float64, r)
	for i := 0; i < r; i++ {
		row := x.Data.Row(i)
		mu := 0.0
		for _, v := range row {
			mu += v
		}
		mu /= float64(c)
		va := 0.0
		for _, v := range row {
			d := v - mu
			va += d * d
		}
		va /= float64(c)
		inv := 1 / math.Sqrt(va+eps)
		invStds[i] = inv
		hrow := xhat.Row(i)
		for j, v := range row {
			hrow[j] = (v - mu) * inv
		}
	}
	o := tensor.New(r, c)
	for i := 0; i < r; i++ {
		hrow, orow := xhat.Row(i), o.Row(i)
		for j := 0; j < c; j++ {
			orow[j] = gamma.Data.Data()[j]*hrow[j] + beta.Data.Data()[j]
		}
	}
	return newOp3("layernorm", o, x, gamma, beta, func(bp *Backprop, g *tensor.Tensor) {
		if gamma.requiresGrad {
			gg := tensor.New(c)
			for i := 0; i < r; i++ {
				grow, hrow := g.Row(i), xhat.Row(i)
				for j := 0; j < c; j++ {
					gg.Data()[j] += grow[j] * hrow[j]
				}
			}
			bp.accumulate(gamma, gg.Reshape(gamma.Data.Shape()...))
		}
		if beta.requiresGrad {
			bp.accumulate(beta, tensor.SumAxis0(g).Reshape(beta.Data.Shape()...))
		}
		if x.requiresGrad {
			gx := tensor.New(r, c)
			cn := float64(c)
			for i := 0; i < r; i++ {
				grow, hrow, xrow := g.Row(i), xhat.Row(i), gx.Row(i)
				sumG, sumGH := 0.0, 0.0
				for j := 0; j < c; j++ {
					gj := grow[j] * gamma.Data.Data()[j]
					sumG += gj
					sumGH += gj * hrow[j]
				}
				for j := 0; j < c; j++ {
					gj := grow[j] * gamma.Data.Data()[j]
					xrow[j] = invStds[i] / cn * (cn*gj - sumG - hrow[j]*sumGH)
				}
			}
			bp.accumulate(x, gx)
		}
	})
}
