package autograd

import (
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/tensor"
)

func randParam(rng *rand.Rand, shape ...int) *Value {
	return Param(tensor.RandN(rng, 1, shape...))
}

func TestBackwardSimpleChain(t *testing.T) {
	// y = sum(3 * (a + b)) ; dy/da = dy/db = 3 everywhere.
	a := Param(tensor.FromSlice([]float64{1, 2}, 2))
	b := Param(tensor.FromSlice([]float64{3, 4}, 2))
	y := Sum(Scale(Add(a, b), 3))
	if got := y.Scalar(); got != 30 {
		t.Fatalf("forward = %v, want 30", got)
	}
	y.Backward()
	want := tensor.Full(3, 2)
	if !tensor.AllClose(a.Grad, want, 1e-12) || !tensor.AllClose(b.Grad, want, 1e-12) {
		t.Errorf("grads a=%v b=%v, want 3s", a.Grad, b.Grad)
	}
}

func TestGradAccumulationAcrossBackward(t *testing.T) {
	a := Param(tensor.FromSlice([]float64{1}, 1))
	y1 := Scale(a, 2)
	y1.Backward()
	y2 := Scale(a, 5)
	y2.Backward()
	if got := a.Grad.Data()[0]; got != 7 {
		t.Errorf("accumulated grad = %v, want 7", got)
	}
	a.ZeroGrad()
	if a.Grad != nil {
		t.Error("ZeroGrad did not clear")
	}
}

func TestDiamondGraphAccumulation(t *testing.T) {
	// y = sum(a*a) via two paths: y = sum(Mul(a, a)); dy/da = 2a.
	a := Param(tensor.FromSlice([]float64{2, -3}, 2))
	y := Sum(Mul(a, a))
	y.Backward()
	want := tensor.FromSlice([]float64{4, -6}, 2)
	if !tensor.AllClose(a.Grad, want, 1e-12) {
		t.Errorf("grad = %v, want %v", a.Grad, want)
	}
}

func TestConstantFoldsOutOfGraph(t *testing.T) {
	c := Constant(tensor.Ones(2))
	d := Constant(tensor.Ones(2))
	y := Add(c, d)
	if y.RequiresGrad() {
		t.Error("op on constants must not require grad")
	}
	y2 := Sum(y)
	y2.Backward() // must be a no-op, not a panic
}

func TestDetachCutsGraph(t *testing.T) {
	a := Param(tensor.FromSlice([]float64{5}, 1))
	y := Sum(Scale(a.Detach(), 3))
	y.Backward()
	if a.Grad != nil {
		t.Error("gradient flowed through Detach")
	}
}

func TestNoGradIntoFrozenBranch(t *testing.T) {
	// Frozen weight, trainable input: exactly the deployment-time setup.
	frozen := Constant(tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2))
	x := Param(tensor.FromSlice([]float64{1, 1}, 1, 2))
	y := Sum(MatMul(x, frozen))
	y.Backward()
	if frozen.Grad != nil {
		t.Error("gradient accumulated into frozen parameter")
	}
	if x.Grad == nil {
		t.Fatal("no gradient reached trainable input through frozen op")
	}
	want := tensor.FromSlice([]float64{3, 7}, 1, 2)
	if !tensor.AllClose(x.Grad, want, 1e-12) {
		t.Errorf("x grad = %v, want %v", x.Grad, want)
	}
}

func TestBackwardSeedShapeMismatch(t *testing.T) {
	a := Param(tensor.Ones(2, 2))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad seed shape")
		}
	}()
	a.BackwardWith(tensor.Ones(3))
}

// --- Gradient checks for every differentiable op ---

func TestGradMatMulChain(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 4, 2)
	f := func() *Value { return Sum(MatMul(a, b)) }
	if err := GradCheck(f, []*Value{a, b}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestGradMatMulT2(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 5, 4)
	f := func() *Value { return Mean(MatMulT2(a, b)) }
	if err := GradCheck(f, []*Value{a, b}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestGradElementwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 2, 3)
	cases := []struct {
		name string
		f    func() *Value
	}{
		{"add", func() *Value { return Sum(Add(a, b)) }},
		{"sub", func() *Value { return Sum(Sub(a, b)) }},
		{"mul", func() *Value { return Sum(Mul(a, b)) }},
		{"scale", func() *Value { return Sum(Scale(a, -2.5)) }},
		{"addscalar", func() *Value { return Sum(AddScalar(a, 1.5)) }},
		{"neg", func() *Value { return Sum(Neg(a)) }},
		{"mean", func() *Value { return Mean(Mul(a, b)) }},
	}
	for _, c := range cases {
		if err := GradCheck(c.f, []*Value{a, b}, 1e-6, 1e-6); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := []struct {
		name string
		op   func(*Value) *Value
	}{
		{"elu", ELU},
		{"relu", ReLU},
		{"tanh", Tanh},
		{"sigmoid", Sigmoid},
		{"gelu", GELU},
	}
	for _, c := range cases {
		a := randParam(rng, 3, 3)
		// Shift away from 0 to avoid the ReLU/ELU kink in finite differences.
		for i, v := range a.Data.Data() {
			if math.Abs(v) < 0.05 {
				a.Data.Data()[i] = 0.1
			}
		}
		f := func() *Value { return Sum(c.op(a)) }
		if err := GradCheck(f, []*Value{a}, 1e-6, 1e-5); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestGradSoftmaxAndLogSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randParam(rng, 3, 4)
	w := Constant(tensor.RandN(rng, 1, 3, 4))
	f := func() *Value { return Sum(Mul(SoftmaxRows(a), w)) }
	if err := GradCheck(f, []*Value{a}, 1e-6, 1e-6); err != nil {
		t.Errorf("softmax: %v", err)
	}
	f2 := func() *Value { return Sum(Mul(LogSoftmaxRows(a), w)) }
	if err := GradCheck(f2, []*Value{a}, 1e-6, 1e-6); err != nil {
		t.Errorf("logsoftmax: %v", err)
	}
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randParam(rng, 4, 3)
	labels := []int{0, 2, 1, 2}
	f := func() *Value { return CrossEntropy(a, labels) }
	if err := GradCheck(f, []*Value{a}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestCrossEntropyValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln 4.
	logits := Param(tensor.New(2, 4))
	loss := CrossEntropy(logits, []int{0, 3})
	if got, want := loss.Scalar(), math.Log(4); math.Abs(got-want) > 1e-12 {
		t.Errorf("loss = %v, want %v", got, want)
	}
}

func TestGradMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 2, 3)
	f := func() *Value { return MSE(a, b) }
	if err := GradCheck(f, []*Value{a, b}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestGradBinaryScoreLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randParam(rng, 3, 4)
	targets := []float64{1, 0, 0.5}
	f := func() *Value { return BinaryScoreLoss(a, targets) }
	if err := GradCheck(f, []*Value{a}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestGradSmoothnessAndSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randParam(rng, 6, 1)
	for i, v := range a.Data.Data() {
		if math.Abs(v) < 0.05 {
			a.Data.Data()[i] = 0.2 // keep away from |x| kink
		}
	}
	if err := GradCheck(func() *Value { return SmoothnessPenalty(a) }, []*Value{a}, 1e-6, 1e-6); err != nil {
		t.Errorf("smoothness: %v", err)
	}
	if err := GradCheck(func() *Value { return SparsityPenalty(a) }, []*Value{a}, 1e-6, 1e-6); err != nil {
		t.Errorf("sparsity: %v", err)
	}
}

func TestGradGatherConcatSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randParam(rng, 4, 3)
	b := randParam(rng, 4, 2)
	cases := []struct {
		name string
		f    func() *Value
	}{
		{"gather", func() *Value { return Sum(Gather(a, []int{0, 2, 2, 3})) }},
		{"concatcols", func() *Value { return Sum(ConcatCols(a, b)) }},
		{"concatrows", func() *Value { return Sum(ConcatRows(a, SliceRows(a, 0, 2))) }},
		{"slicecols", func() *Value { return Sum(SliceCols(a, 1, 3)) }},
		{"slicerows", func() *Value { return Sum(SliceRows(a, 1, 4)) }},
		{"reshape", func() *Value { return Sum(Reshape(a, 3, 4)) }},
		{"meanrows", func() *Value { return Sum(MeanRows(a)) }},
	}
	for _, c := range cases {
		if err := GradCheck(c.f, []*Value{a, b}, 1e-6, 1e-6); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestGradAddRowBias(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := randParam(rng, 3, 4)
	b := randParam(rng, 4)
	f := func() *Value { return Sum(AddRow(m, b)) }
	if err := GradCheck(f, []*Value{m, b}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestGradEdgeMessageAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Tiny hierarchical KG: nodes 0,1 feed nodes 2,3; node 4 is outside the
	// level and must pass through.
	x := randParam(rng, 5, 3)
	src := []int{0, 1, 0}
	dst := []int{2, 2, 3}
	inLevel := []bool{false, false, true, true, false}
	f := func() *Value {
		msgs := EdgeMessage(x, src, dst)
		return Sum(EdgeAggregate(x, msgs, dst, inLevel))
	}
	if err := GradCheck(f, []*Value{x}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestEdgeAggregateSemantics(t *testing.T) {
	// Node 2 receives mean of two messages, node 3 one message, node 4
	// passes through, in-level node with no in-edges keeps its embedding.
	x := Param(tensor.FromSlice([]float64{
		1, 1,
		2, 2,
		10, 10,
		20, 20,
		30, 30,
		40, 40,
	}, 6, 2))
	src := []int{0, 1, 0}
	dst := []int{2, 2, 3}
	inLevel := []bool{false, false, true, true, false, true} // node 5 in-level, no edges
	msgs := EdgeMessage(x, src, dst)
	// messages: (1*10,1*10)=(10,10); (2*10,2*10)=(20,20); (1*20,1*20)=(20,20)
	out := EdgeAggregate(x, msgs, dst, inLevel)
	want := tensor.FromSlice([]float64{
		1, 1, // pass-through (not in level)
		2, 2,
		15, 15, // mean of 10,20
		20, 20, // single message
		30, 30, // pass-through
		40, 40, // in-level but no in-edges: keep embedding
	}, 6, 2)
	if !tensor.AllClose(out.Data, want, 1e-12) {
		t.Errorf("aggregate = %v\nwant %v", out.Data, want)
	}
}

func TestGradRowsMask(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randParam(rng, 4, 2)
	keep := []bool{true, false, true, false}
	f := func() *Value { return Sum(RowsMask(a, keep)) }
	if err := GradCheck(f, []*Value{a}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
	out := RowsMask(a, keep)
	if out.Data.Row(1)[0] != 0 || out.Data.Row(3)[1] != 0 {
		t.Error("masked rows not zeroed")
	}
}

func TestGradBatchNormTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := randParam(rng, 6, 3)
	gamma := Param(tensor.RandUniform(rng, 0.5, 1.5, 3))
	beta := randParam(rng, 3)
	w := Constant(tensor.RandN(rng, 1, 6, 3))
	f := func() *Value {
		out, _, _ := BatchNormTrain(x, gamma, beta, 1e-5)
		return Sum(Mul(out, w))
	}
	if err := GradCheck(f, []*Value{x, gamma, beta}, 1e-6, 1e-5); err != nil {
		t.Error(err)
	}
}

func TestBatchNormTrainStats(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x := randParam(rng, 64, 4)
	gamma := Param(tensor.Ones(4))
	beta := Param(tensor.New(4))
	out, mean, variance := BatchNormTrain(x, gamma, beta, 1e-8)
	// Output columns must be ~N(0,1).
	om := tensor.MeanAxis0(out.Data)
	ov := tensor.VarAxis0(out.Data)
	for j := 0; j < 4; j++ {
		if math.Abs(om.Data()[j]) > 1e-9 {
			t.Errorf("col %d mean %v", j, om.Data()[j])
		}
		if math.Abs(ov.Data()[j]-1) > 1e-6 {
			t.Errorf("col %d var %v", j, ov.Data()[j])
		}
	}
	if !tensor.AllClose(mean, tensor.MeanAxis0(x.Data), 1e-12) {
		t.Error("returned batch mean mismatch")
	}
	if !tensor.AllClose(variance, tensor.VarAxis0(x.Data), 1e-12) {
		t.Error("returned batch var mismatch")
	}
}

func TestGradBatchNormEval(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	x := randParam(rng, 4, 3)
	gamma := Param(tensor.RandUniform(rng, 0.5, 1.5, 3))
	beta := randParam(rng, 3)
	rm := tensor.RandN(rng, 1, 3)
	rv := tensor.RandUniform(rng, 0.5, 2, 3)
	f := func() *Value {
		return Sum(BatchNormEval(x, gamma, beta, rm, rv, 1e-5))
	}
	if err := GradCheck(f, []*Value{x, gamma, beta}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	x := randParam(rng, 4, 5)
	gamma := Param(tensor.RandUniform(rng, 0.5, 1.5, 5))
	beta := randParam(rng, 5)
	w := Constant(tensor.RandN(rng, 1, 4, 5))
	f := func() *Value { return Sum(Mul(LayerNorm(x, gamma, beta, 1e-5), w)) }
	if err := GradCheck(f, []*Value{x, gamma, beta}, 1e-6, 1e-5); err != nil {
		t.Error(err)
	}
}

func TestGradDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	a := randParam(rng, 3, 3)
	mask := tensor.New(3, 3)
	for i := range mask.Data() {
		if rng.Float64() > 0.5 {
			mask.Data()[i] = 1
		}
	}
	f := func() *Value { return Sum(Dropout(a, mask, 0.5)) }
	if err := GradCheck(f, []*Value{a}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
	// p = 0 must be the identity (same Value).
	if Dropout(a, mask, 0) != a {
		t.Error("Dropout(p=0) should be identity")
	}
}

func TestDeepGraphBackward(t *testing.T) {
	// 2000 chained ops must not overflow anything and grad must be exact.
	a := Param(tensor.FromSlice([]float64{1}, 1))
	v := a
	for i := 0; i < 2000; i++ {
		v = AddScalar(v, 0.001)
	}
	y := Sum(v)
	y.Backward()
	if got := a.Grad.Data()[0]; got != 1 {
		t.Errorf("deep chain grad = %v, want 1", got)
	}
}

func TestScalarPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Param(tensor.Ones(2)).Scalar()
}
