package autograd

import (
	"fmt"
	"math"

	"edgekg/internal/tensor"
)

// LogSoftmaxRows applies a row-wise log-softmax to a matrix.
func LogSoftmaxRows(v *Value) *Value {
	lse := tensor.LogSumExpRows(v.Data)
	r, c := v.Data.Rows(), v.Data.Cols()
	out := tensor.New(r, c)
	for i := 0; i < r; i++ {
		row, orow := v.Data.Row(i), out.Row(i)
		for j := 0; j < c; j++ {
			orow[j] = row[j] - lse.Data()[i]
		}
	}
	return newOp3("logsoftmaxrows", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gv := tensor.New(r, c)
		for i := 0; i < r; i++ {
			grow, orow, drow := g.Row(i), out.Row(i), gv.Row(i)
			gsum := 0.0
			for j := 0; j < c; j++ {
				gsum += grow[j]
			}
			for j := 0; j < c; j++ {
				drow[j] = grow[j] - math.Exp(orow[j])*gsum
			}
		}
		bp.accumulate(v, gv)
	})
}

// CrossEntropy returns the mean negative log-likelihood of integer class
// labels under row-wise softmax of logits. It fuses log-softmax and NLL for
// numerical stability; this is the "Decision Loss" of Fig. 2(B).
func CrossEntropy(logits *Value, labels []int) *Value {
	r, c := logits.Data.Rows(), logits.Data.Cols()
	if len(labels) != r {
		panic(fmt.Sprintf("autograd: CrossEntropy %d labels for %d rows", len(labels), r))
	}
	probs := tensor.SoftmaxRows(logits.Data)
	loss := 0.0
	for i, y := range labels {
		if y < 0 || y >= c {
			panic(fmt.Sprintf("autograd: CrossEntropy label %d out of range [0,%d)", y, c))
		}
		p := probs.At2(i, y)
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	}
	loss /= float64(r)
	out := tensor.Scalar(loss)
	return newOp3("crossentropy", out, logits, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		scale := g.Data()[0] / float64(r)
		gl := tensor.New(r, c)
		for i := 0; i < r; i++ {
			prow, grow := probs.Row(i), gl.Row(i)
			for j := 0; j < c; j++ {
				grow[j] = scale * prow[j]
			}
			grow[labels[i]] -= scale
		}
		bp.accumulate(logits, gl)
	})
}

// MSE returns the mean squared error between two values of identical shape.
func MSE(a, b *Value) *Value {
	if !a.Data.SameShape(b.Data) {
		panic(fmt.Sprintf("autograd: MSE shape mismatch %v vs %v", a.Shape(), b.Shape()))
	}
	n := a.Data.Size()
	diff := tensor.Sub(a.Data, b.Data)
	loss := 0.0
	for _, d := range diff.Data() {
		loss += d * d
	}
	loss /= float64(n)
	out := tensor.Scalar(loss)
	return newOp3("mse", out, a, b, nil, func(bp *Backprop, g *tensor.Tensor) {
		scale := 2 * g.Data()[0] / float64(n)
		gd := tensor.Scale(diff, scale)
		if a.requiresGrad {
			bp.accumulate(a, gd)
		}
		if b.requiresGrad {
			bp.accumulate(b, tensor.Neg(gd))
		}
	})
}

// BinaryScoreLoss drives selected rows' anomaly probability toward the
// given targets: mean over rows of (pA − target)², where pA = 1 − softmax
// row's class-0 probability. Adaptive learning (Sec. III-D) uses it to pull
// pseudo-anomalies toward 1 and retained normals toward 0 through the
// frozen decision head into the token embeddings.
func BinaryScoreLoss(logits *Value, targets []float64) *Value {
	r, c := logits.Data.Rows(), logits.Data.Cols()
	if len(targets) != r {
		panic(fmt.Sprintf("autograd: BinaryScoreLoss %d targets for %d rows", len(targets), r))
	}
	probs := tensor.SoftmaxRows(logits.Data)
	loss := 0.0
	for i, target := range targets {
		pa := 1 - probs.At2(i, 0)
		d := pa - target
		loss += d * d
	}
	loss /= float64(r)
	out := tensor.Scalar(loss)
	return newOp3("binaryscoreloss", out, logits, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		// d/dlogit_j of pA = -(d p0/d logit_j); dp0/dlogit_j = p0*(δ0j - pj)
		scale := g.Data()[0] * 2 / float64(r)
		gl := tensor.New(r, c)
		for i, target := range targets {
			prow, grow := probs.Row(i), gl.Row(i)
			p0 := prow[0]
			pa := 1 - p0
			coef := scale * (pa - target)
			for j := 0; j < c; j++ {
				delta := 0.0
				if j == 0 {
					delta = 1
				}
				grow[j] = coef * (-p0 * (delta - prow[j]))
			}
		}
		bp.accumulate(logits, gl)
	})
}

// SmoothnessPenalty returns mean((s[t] − s[t−1])²) over a 1-D score column
// (r×1 matrix), the λ_smt temporal-smoothness regulariser.
func SmoothnessPenalty(scores *Value) *Value {
	r := scores.Data.Rows()
	if r < 2 {
		return Constant(tensor.Scalar(0))
	}
	d := scores.Data.Data()
	loss := 0.0
	for i := 1; i < r; i++ {
		diff := d[i] - d[i-1]
		loss += diff * diff
	}
	loss /= float64(r - 1)
	out := tensor.Scalar(loss)
	return newOp3("smoothness", out, scores, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		scale := 2 * g.Data()[0] / float64(r-1)
		gv := tensor.New(scores.Data.Shape()...)
		gd := gv.Data()
		for i := 1; i < r; i++ {
			diff := d[i] - d[i-1]
			gd[i] += scale * diff
			gd[i-1] -= scale * diff
		}
		bp.accumulate(scores, gv)
	})
}

// SparsityPenalty returns mean(|x|), the λ_spa regulariser on anomaly
// scores.
func SparsityPenalty(v *Value) *Value {
	n := v.Data.Size()
	if n == 0 {
		return Constant(tensor.Scalar(0))
	}
	loss := 0.0
	for _, x := range v.Data.Data() {
		loss += math.Abs(x)
	}
	loss /= float64(n)
	out := tensor.Scalar(loss)
	return newOp3("sparsity", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		scale := g.Data()[0] / float64(n)
		gv := tensor.New(v.Data.Shape()...)
		vd, gd := v.Data.Data(), gv.Data()
		for i := range vd {
			switch {
			case vd[i] > 0:
				gd[i] = scale
			case vd[i] < 0:
				gd[i] = -scale
			}
		}
		bp.accumulate(v, gv)
	})
}
