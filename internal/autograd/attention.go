package autograd

import (
	"fmt"
	"math"

	"edgekg/internal/flops"
	"edgekg/internal/parallel"
	"edgekg/internal/tensor"
	"edgekg/internal/tensor/kernels"
)

// This file holds the fused attention ops of the batched temporal path.
// The short-term temporal transformer (Sec. III-C) used to run one window
// at a time: per head, the attention core was five tape nodes (SliceCols ×3,
// MatMulT2, Scale, SoftmaxRows, MatMul) plus a ConcatCols, repeated per
// window. BatchedAttention collapses the whole (batch × heads) grid into a
// single tape node with one backward closure. The block-diagonal window
// mask is structural rather than materialised: scores for window b are
// computed only against window b's own keys, so a query can never attend
// into another window — the compact (batch·heads·T × T) score layout IS the
// block-diagonal mask, without ever allocating the (batch·T × batch·T)
// matrix it represents.
//
// Every loop mirrors the accumulation order of the composed reference ops
// (MatMulT2 → Scale → +mask → SoftmaxRows → MatMul), so the fused forward
// and backward are bit-identical to the per-window sequential model; the
// equivalence tests in internal/temporal pin this.

// attnDims validates the (batch·T × heads·dk) geometry shared by the
// batched attention ops and returns T and dk.
func attnDims(op string, rows, cols, batch, heads int) (t, dk int) {
	if batch < 1 {
		panic(fmt.Sprintf("autograd: %s batch %d must be ≥ 1", op, batch))
	}
	if heads < 1 || cols%heads != 0 {
		panic(fmt.Sprintf("autograd: %s width %d not divisible by %d heads", op, cols, heads))
	}
	if rows%batch != 0 {
		panic(fmt.Sprintf("autograd: %s rows %d not divisible by batch %d", op, rows, batch))
	}
	t = rows / batch
	if t < 1 {
		panic(fmt.Sprintf("autograd: %s empty windows (rows %d, batch %d)", op, rows, batch))
	}
	return t, cols / heads
}

// BatchedAttention applies scaled dot-product self-attention independently
// to every window of a batch, all heads at once, as one graph node. q, k
// and v are (batch·T × dim) matrices whose k-th block of T rows is window
// k's projection; dim = heads·dk. The result has the same shape: row
// b·T+i, columns [h·dk, (h+1)·dk) hold head h's context for query i of
// window b. When causal is true, query i attends only to positions ≤ i of
// its own window.
//
// Attention is block-diagonal over windows by construction — scores are
// only ever computed within a window's own T×T block — and the (window,
// head) blocks are independent, so both passes fan out over the shared
// worker pool; each block owns a disjoint region of every output and
// gradient matrix with the sequential accumulation order, keeping results
// bit-identical at any worker count.
func BatchedAttention(q, k, v *Value, batch, heads int, scale float64, causal bool) *Value {
	rows, dim := q.Data.Rows(), q.Data.Cols()
	if !k.Data.SameShape(q.Data) || !v.Data.SameShape(q.Data) {
		panic(fmt.Sprintf("autograd: BatchedAttention shapes q%v k%v v%v differ", q.Shape(), k.Shape(), v.Shape()))
	}
	t, dk := attnDims("BatchedAttention", rows, dim, batch, heads)
	nb := batch * heads
	needsGrad := q.requiresGrad || k.requiresGrad || v.requiresGrad

	// Attention weights, stored compactly as nb stacked T×T blocks: block
	// idx = b·heads + h starts at row idx·T. The backward pass re-reads
	// them; inference-only calls borrow pooled scratch instead.
	var attn *tensor.Tensor
	var ws *tensor.Workspace
	if needsGrad {
		attn = tensor.New(nb*t, t)
	} else {
		ws = tensor.NewWorkspace()
		attn = ws.Tensor(nb*t, t)
	}

	out := tensor.New(rows, dim)
	qd, kd, vd, od, ad := q.Data.Data(), k.Data.Data(), v.Data.Data(), out.Data(), attn.Data()

	// One block ≈ 4·T²·dk + 5·T² flops; pick the chunk grain so a chunk
	// amortises the pool handshake over ~2¹⁶ flop-equivalents.
	blockCost := 4*t*t*dk + 5*t*t
	grain := 1
	if blockCost > 0 && (1<<16)/blockCost > 1 {
		grain = (1 << 16) / blockCost
	}

	// The fused loops call the same backend kernels as the composed
	// reference ops (Dot for MatMulT2's inner product, Axpy for MatMul's
	// accumulation), so fused-vs-sequential bit-identity holds per backend
	// even where a kernel reassociates.
	bk := kernels.Active()
	forward := func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			b, h := idx/heads, idx%heads
			rowOff, colOff := b*t, h*dk
			for i := 0; i < t; i++ {
				jm := t
				if causal {
					jm = i + 1
				}
				qrow := qd[(rowOff+i)*dim+colOff : (rowOff+i)*dim+colOff+dk]
				arow := ad[(idx*t+i)*t : (idx*t+i)*t+t]
				// Scores: (Q·Kᵀ)·scale, the composed MatMulT2+Scale order.
				for j := 0; j < jm; j++ {
					krow := kd[(rowOff+j)*dim+colOff : (rowOff+j)*dim+colOff+dk]
					arow[j] = bk.Dot(qrow, krow) * scale
				}
				// Row softmax over the unmasked prefix. The reference path
				// adds −1e9 to masked scores; after the max shift those
				// exponentials underflow to exactly 0, so skipping them
				// entirely yields the same floats.
				mx := arow[0]
				for _, s := range arow[1:jm] {
					if s > mx {
						mx = s
					}
				}
				sum := 0.0
				for j := 0; j < jm; j++ {
					e := math.Exp(arow[j] - mx)
					arow[j] = e
					sum += e
				}
				inv := 1 / sum
				for j := 0; j < jm; j++ {
					arow[j] *= inv
				}
				// Context: attn·V with the reference MatMul's i-p-j order
				// and zero skip.
				orow := od[(rowOff+i)*dim+colOff : (rowOff+i)*dim+colOff+dk]
				for p := 0; p < jm; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					vrow := vd[(rowOff+p)*dim+colOff : (rowOff+p)*dim+colOff+dk]
					bk.Axpy(av, vrow, orow)
				}
			}
		}
	}
	parallel.For(nb, grain, forward)
	flops.Add(int64(nb * blockCost))
	if !needsGrad {
		ws.Release()
		return &Value{Data: out, op: "batchedattention"}
	}

	return newOp3("batchedattention", out, q, k, v, func(bp *Backprop, g *tensor.Tensor) {
		gd := g.Data()
		var gq, gk, gv *tensor.Tensor
		if q.requiresGrad {
			gq = tensor.New(rows, dim)
		}
		if k.requiresGrad {
			gk = tensor.New(rows, dim)
		}
		if v.requiresGrad {
			gv = tensor.New(rows, dim)
		}
		parallel.For(nb, grain, func(lo, hi int) {
			bws := tensor.NewWorkspace()
			da := bws.Floats(t)
			for idx := lo; idx < hi; idx++ {
				b, h := idx/heads, idx%heads
				rowOff, colOff := b*t, h*dk
				for i := 0; i < t; i++ {
					jm := t
					if causal {
						jm = i + 1
					}
					arow := ad[(idx*t+i)*t : (idx*t+i)*t+t]
					grow := gd[(rowOff+i)*dim+colOff : (rowOff+i)*dim+colOff+dk]
					// dAttn[i][p] = G_i·V_p ; dV_p += attn[i][p]·G_i.
					for p := 0; p < jm; p++ {
						vrow := vd[(rowOff+p)*dim+colOff : (rowOff+p)*dim+colOff+dk]
						da[p] = bk.Dot(grow, vrow)
						if av := arow[p]; av != 0 && gv != nil {
							gvrow := gv.Data()[(rowOff+p)*dim+colOff : (rowOff+p)*dim+colOff+dk]
							bk.Axpy(av, grow, gvrow)
						}
					}
					if gq == nil && gk == nil {
						continue
					}
					// Softmax backward, then the Scale adjoint, then the
					// score-matmul adjoints dQ = dS·K and dK = dSᵀ·Q.
					dot := bk.Dot(arow[:jm], da[:jm])
					qrow := qd[(rowOff+i)*dim+colOff : (rowOff+i)*dim+colOff+dk]
					for p := 0; p < jm; p++ {
						ds := arow[p] * (da[p] - dot) * scale
						if ds == 0 {
							continue
						}
						if gq != nil {
							krow := kd[(rowOff+p)*dim+colOff : (rowOff+p)*dim+colOff+dk]
							gqrow := gq.Data()[(rowOff+i)*dim+colOff : (rowOff+i)*dim+colOff+dk]
							bk.Axpy(ds, krow, gqrow)
						}
						if gk != nil {
							gkrow := gk.Data()[(rowOff+p)*dim+colOff : (rowOff+p)*dim+colOff+dk]
							bk.Axpy(ds, qrow, gkrow)
						}
					}
				}
			}
			bws.Release()
		})
		// dA + dV + softmax adjoint + dQ + dK, mirroring what the composed
		// backward graph would have reported to the ledger.
		flops.Add(int64(nb * (8*t*t*dk + 3*t*t)))
		if gq != nil {
			bp.accumulate(q, gq)
		}
		if gk != nil {
			bp.accumulate(k, gk)
		}
		if gv != nil {
			bp.accumulate(v, gv)
		}
	})
}

// MaskedSoftmaxRows applies a row-wise softmax to x + mask as a single
// graph node — the Add(scores, mask) + SoftmaxRows pair of causal attention
// fused, with the same floats. mask is additive (0 keeps, −1e9 blocks) and
// constant: no gradient flows into it, and the input adjoint is exactly the
// softmax backward. A nil mask degenerates to SoftmaxRows.
func MaskedSoftmaxRows(x *Value, mask *tensor.Tensor) *Value {
	if mask != nil && !x.Data.SameShape(mask) {
		panic(fmt.Sprintf("autograd: MaskedSoftmaxRows mask shape %v != input %v", mask.Shape(), x.Shape()))
	}
	shifted := x.Data
	if mask != nil {
		shifted = tensor.Add(x.Data, mask)
	}
	out := tensor.SoftmaxRows(shifted)
	return newOp3("maskedsoftmaxrows", out, x, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		bp.accumulate(x, softmaxRowsBackward(out, g))
	})
}

// AddTiled adds a (T × c) tile to every T-row block of a (batch·T × c)
// matrix: out row i is x row i plus tile row i mod T. It is how the batched
// temporal forward applies the positional encoding to every window in one
// node instead of one Add per window; the adjoint passes straight through
// to x (the tile is constant).
func AddTiled(x *Value, tile *tensor.Tensor) *Value {
	r, c := x.Data.Rows(), x.Data.Cols()
	t := tile.Rows()
	if tile.Cols() != c || t < 1 || r%t != 0 {
		panic(fmt.Sprintf("autograd: AddTiled tile %v does not tile input %v", tile.Shape(), x.Shape()))
	}
	out := tensor.New(r, c)
	od, xd, td := out.Data(), x.Data.Data(), tile.Data()
	bk := kernels.Active()
	for i := 0; i < r; i++ {
		bk.Add(xd[i*c:(i+1)*c], td[(i%t)*c:(i%t+1)*c], od[i*c:(i+1)*c])
	}
	flops.Add(int64(r * c))
	return newOp3("addtiled", out, x, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		bp.accumulate(x, g)
	})
}
