package autograd

import (
	"math/rand"
	"testing"

	"edgekg/internal/tensor"
)

// TestFusedMatchesComposedForward pins the fused kernel's forward to the
// composed EdgeMessage→EdgeAggregate pair bit-for-bit: same edge
// accumulation order, same reciprocal scaling.
func TestFusedMatchesComposedForward(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := randParam(rng, 6, 4)
	src := []int{0, 1, 0, 4, 4}
	dst := []int{2, 2, 3, 3, 5}
	inLevel := []bool{false, false, true, true, false, false} // node 5 out of level with messages
	composed := EdgeAggregate(x, EdgeMessage(x, src, dst), dst, inLevel)
	fused := EdgeMessageAggregate(x, src, dst, inLevel)
	if !tensor.AllClose(fused.Data, composed.Data, 0) {
		t.Errorf("fused forward diverges from composed:\nfused %v\ncomposed %v", fused.Data, composed.Data)
	}
}

// TestFusedMatchesComposedBackward checks gradient agreement between the
// fused kernel and the composed pair on the same graph.
func TestFusedMatchesComposedBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	src := []int{0, 1, 0, 2}
	dst := []int{2, 2, 3, 3}
	inLevel := []bool{false, false, true, true, false}

	xc := randParam(rng, 5, 3)
	xf := Param(xc.Data.Clone())
	Sum(EdgeAggregate(xc, EdgeMessage(xc, src, dst), dst, inLevel)).Backward()
	Sum(EdgeMessageAggregate(xf, src, dst, inLevel)).Backward()
	if !tensor.AllClose(xf.Grad, xc.Grad, 1e-12) {
		t.Errorf("fused grad diverges from composed:\nfused %v\ncomposed %v", xf.Grad, xc.Grad)
	}
}

func TestGradFusedEdgeMessageAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := randParam(rng, 5, 3)
	src := []int{0, 1, 0}
	dst := []int{2, 2, 3}
	inLevel := []bool{false, false, true, true, false}
	f := func() *Value { return Sum(EdgeMessageAggregate(x, src, dst, inLevel)) }
	if err := GradCheck(f, []*Value{x}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

// TestTailMatchesComposedEval pins the fused layer tail (edge aggregate →
// BatchNorm eval → ELU) to the composed op chain, forward and backward.
func TestTailMatchesComposedEval(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	src := []int{0, 1, 0, 2}
	dst := []int{2, 2, 3, 3}
	inLevel := []bool{false, false, true, true, false}
	rm := tensor.RandN(rng, 0.3, 3)
	rv := tensor.Map(tensor.RandN(rng, 0.3, 3), func(v float64) float64 { return v*v + 0.5 })
	const eps = 1e-5

	xc := randParam(rng, 5, 3)
	gc, bc := randParam(rng, 3), randParam(rng, 3)
	xf := Param(xc.Data.Clone())
	gf, bf := Param(gc.Data.Clone()), Param(bc.Data.Clone())

	composed := ELU(BatchNormEval(EdgeMessageAggregate(xc, src, dst, inLevel), gc, bc, rm, rv, eps))
	fused := EdgeAggNormActEval(xf, gf, bf, src, dst, inLevel, rm, rv, eps)
	if !tensor.AllClose(fused.Data, composed.Data, 0) {
		t.Fatalf("fused eval tail diverges:\nfused %v\ncomposed %v", fused.Data, composed.Data)
	}
	Sum(composed).Backward()
	Sum(fused).Backward()
	if !tensor.AllClose(xf.Grad, xc.Grad, 1e-12) {
		t.Errorf("x grad diverges:\nfused %v\ncomposed %v", xf.Grad, xc.Grad)
	}
	if !tensor.AllClose(gf.Grad, gc.Grad, 1e-12) {
		t.Errorf("gamma grad diverges:\nfused %v\ncomposed %v", gf.Grad, gc.Grad)
	}
	if !tensor.AllClose(bf.Grad, bc.Grad, 1e-12) {
		t.Errorf("beta grad diverges:\nfused %v\ncomposed %v", bf.Grad, bc.Grad)
	}
}

// TestTailMatchesComposedTrain does the same for the training-mode tail,
// including the returned batch statistics.
func TestTailMatchesComposedTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := []int{0, 1, 0, 2}
	dst := []int{2, 2, 3, 3}
	inLevel := []bool{false, false, true, true, false}
	const eps = 1e-5

	xc := randParam(rng, 5, 3)
	gc, bc := randParam(rng, 3), randParam(rng, 3)
	xf := Param(xc.Data.Clone())
	gf, bf := Param(gc.Data.Clone()), Param(bc.Data.Clone())

	bnOut, cMean, cVar := BatchNormTrain(EdgeMessageAggregate(xc, src, dst, inLevel), gc, bc, eps)
	composed := ELU(bnOut)
	fused, fMean, fVar := EdgeAggNormActTrain(xf, gf, bf, src, dst, inLevel, eps)
	if !tensor.AllClose(fused.Data, composed.Data, 0) {
		t.Fatalf("fused train tail diverges:\nfused %v\ncomposed %v", fused.Data, composed.Data)
	}
	if !tensor.AllClose(fMean, cMean, 0) || !tensor.AllClose(fVar, cVar, 0) {
		t.Errorf("batch statistics diverge: mean %v vs %v, var %v vs %v", fMean, cMean, fVar, cVar)
	}
	Sum(composed).Backward()
	Sum(fused).Backward()
	if !tensor.AllClose(xf.Grad, xc.Grad, 1e-12) {
		t.Errorf("x grad diverges:\nfused %v\ncomposed %v", xf.Grad, xc.Grad)
	}
	if !tensor.AllClose(gf.Grad, gc.Grad, 1e-12) {
		t.Errorf("gamma grad diverges:\nfused %v\ncomposed %v", gf.Grad, gc.Grad)
	}
	if !tensor.AllClose(bf.Grad, bc.Grad, 1e-12) {
		t.Errorf("beta grad diverges:\nfused %v\ncomposed %v", bf.Grad, bc.Grad)
	}
}

func TestGradFusedTails(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	src := []int{0, 1, 0}
	dst := []int{2, 2, 3}
	inLevel := []bool{false, false, true, true, false}
	x := randParam(rng, 5, 3)
	gamma := randParam(rng, 3)
	beta := randParam(rng, 3)
	rm := tensor.RandN(rng, 0.3, 3)
	rv := tensor.Map(tensor.RandN(rng, 0.3, 3), func(v float64) float64 { return v*v + 0.5 })

	evalF := func() *Value {
		return Sum(EdgeAggNormActEval(x, gamma, beta, src, dst, inLevel, rm, rv, 1e-5))
	}
	if err := GradCheck(evalF, []*Value{x, gamma, beta}, 1e-6, 1e-6); err != nil {
		t.Errorf("eval tail: %v", err)
	}
	trainF := func() *Value {
		out, _, _ := EdgeAggNormActTrain(x, gamma, beta, src, dst, inLevel, 1e-5)
		return Sum(out)
	}
	if err := GradCheck(trainF, []*Value{x, gamma, beta}, 1e-6, 1e-5); err != nil {
		t.Errorf("train tail: %v", err)
	}
}

func TestGradAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x := randParam(rng, 3, 4)
	w := randParam(rng, 4, 2)
	b := randParam(rng, 2)
	f := func() *Value { return Sum(Affine(x, w, b)) }
	if err := GradCheck(f, []*Value{x, w, b}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
	// Affine must equal MatMul+AddRow exactly.
	want := AddRow(MatMul(x, w), b)
	if !tensor.AllClose(Affine(x, w, b).Data, want.Data, 0) {
		t.Error("Affine diverges from MatMul+AddRow")
	}
}

// TestAssembleBatchMatchesConcatPath verifies AssembleBatch against the
// SliceRows/ConcatRows construction it replaced, forward and backward.
func TestAssembleBatchMatchesConcatPath(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	const b, v, d = 3, 4, 5
	frameRow := 1
	framesA := randParam(rng, b, d)
	framesB := Param(framesA.Data.Clone())
	tokA := randParam(rng, 1, d) // shared row at index 2
	tokB := Param(tokA.Data.Clone())

	// Reference: the old per-sample assembly.
	ones := Constant(tensor.Ones(1, d))
	var perSample []*Value
	for k := 0; k < b; k++ {
		sensor := SliceRows(framesA, k, k+1)
		for i := 0; i < v; i++ {
			switch i {
			case frameRow:
				perSample = append(perSample, sensor)
			case 2:
				perSample = append(perSample, tokA)
			default:
				perSample = append(perSample, ones)
			}
		}
	}
	ref := ConcatRows(perSample...)

	got := AssembleBatch(framesB, tokB, []int{-1, -1, 0, -1}, frameRow, 1)

	if !tensor.AllClose(got.Data, ref.Data, 0) {
		t.Fatalf("AssembleBatch forward diverges:\ngot %v\nref %v", got.Data, ref.Data)
	}

	// Same upstream gradient through both paths.
	seed := tensor.RandN(rng, 1, b*v, d)
	ref.BackwardWith(seed.Clone())
	got.BackwardWith(seed.Clone())
	if !tensor.AllClose(framesB.Grad, framesA.Grad, 1e-12) {
		t.Errorf("frames grad diverges:\ngot %v\nref %v", framesB.Grad, framesA.Grad)
	}
	if !tensor.AllClose(tokB.Grad, tokA.Grad, 1e-12) {
		t.Errorf("shared token grad diverges:\ngot %v\nref %v", tokB.Grad, tokA.Grad)
	}
}

func TestGradAssembleBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	const b, d = 2, 4
	frames := randParam(rng, b, d)
	feats := randParam(rng, 2, d)
	f := func() *Value { return Sum(AssembleBatch(frames, feats, []int{-1, 1, 0}, 0, 1)) }
	if err := GradCheck(f, []*Value{frames, feats}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestGradMeanRowsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	a := randParam(rng, 3, 4) // different row counts per bank
	b := randParam(rng, 1, 4)
	f := func() *Value { return Sum(MeanRowsBatch([]*Value{a, b})) }
	if err := GradCheck(f, []*Value{a, b}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestMeanRowsBatchMatchesPerNode(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	banks := []*Value{randParam(rng, 3, 4), randParam(rng, 1, 4), randParam(rng, 5, 4)}
	got := MeanRowsBatch(banks)
	for i, b := range banks {
		want := MeanRows(b)
		for j := 0; j < 4; j++ {
			if got.Data.At2(i, j) != want.Data.At2(0, j) {
				t.Errorf("bank %d col %d: %v vs %v", i, j, got.Data.At2(i, j), want.Data.At2(0, j))
			}
		}
	}
}

func TestAssembleBatchValidation(t *testing.T) {
	frames := Constant(tensor.Ones(2, 3))
	deferPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	deferPanic("empty template", func() { AssembleBatch(frames, nil, nil, 0, 0) })
	deferPanic("frame row out of range", func() { AssembleBatch(frames, nil, []int{-1, -1}, 5, 0) })
	deferPanic("feat row out of range", func() {
		AssembleBatch(frames, Constant(tensor.Ones(1, 3)), []int{-1, 4}, 0, 0)
	})
	deferPanic("bad feats width", func() {
		AssembleBatch(frames, Constant(tensor.Ones(1, 2)), []int{-1, 0}, 0, 0)
	})
}
