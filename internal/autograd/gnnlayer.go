package autograd

import (
	"math"

	"edgekg/internal/tensor"
)

// The hierarchical GNN layer tail — EdgeMessageAggregate → BatchNorm → ELU
// (eqs. 2–4 after the dense sub-layer) — fused into a single tape node per
// mode. The composition is semantically identical to chaining the three
// ops but allocates one output tensor, one Value and one closure instead
// of three of each, and keeps every intermediate except the aggregate
// pre-activation (needed by the BatchNorm backward) in pooled scratch.

// EdgeAggNormActEval is the inference-mode tail, normalising with the
// frozen running statistics. Gradients still flow into x (and gamma/beta
// when trainable), which deployment-time token adaptation requires.
func EdgeAggNormActEval(x, gamma, beta *Value, src, dst []int, inLevel []bool, runningMean, runningVar *tensor.Tensor, eps float64) *Value {
	n := x.Data.Rows()
	d := x.Data.Cols()
	checkEdgeLists(n, src, dst, inLevel)
	xd := x.Data.Data()

	// The aggregate output and invStd live in pooled scratch for the
	// forward only; the backward recomputes both on demand (one cheap
	// edge pass plus d square roots) rather than pinning buffers to the
	// graph for its whole lifetime. runningMean/runningVar are borrowed
	// by the backward closure, matching BatchNormEval: a graph built in
	// eval mode must run its backward before the statistics move again.
	fws := tensor.NewWorkspace()
	invStd := fws.Floats(d)
	for j, v := range runningVar.Data() {
		invStd[j] = 1 / math.Sqrt(v+eps)
	}
	tmp := fws.Floats(n * d)
	edgeAggForward(xd, tmp, n, d, src, dst, inLevel)
	out := tensor.New(n, d)
	od := out.Data()
	rm, gam, bet := runningMean.Data(), gamma.Data.Data(), beta.Data.Data()
	for i := 0; i < n; i++ {
		trow := tmp[i*d : (i+1)*d]
		orow := od[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			xh := (trow[j] - rm[j]) * invStd[j]
			pre := gam[j]*xh + bet[j]
			if pre > 0 {
				orow[j] = pre
			} else {
				orow[j] = math.Exp(pre) - 1
			}
		}
	}
	fws.Release()
	return newOp3("edgeaggnormact.eval", out, x, gamma, beta, func(bp *Backprop, g *tensor.Tensor) {
		ws := tensor.NewWorkspace()
		binvStd := ws.Floats(d)
		for j, v := range runningVar.Data() {
			binvStd[j] = 1 / math.Sqrt(v+eps)
		}
		gpre := ws.Floats(n * d)
		gd := g.Data()
		// ELU backward from the stored output alone: out > 0 ⇔ pre > 0,
		// and for pre ≤ 0, d out/d pre = exp(pre) = out + 1.
		for i := range gpre {
			if od[i] > 0 {
				gpre[i] = gd[i]
			} else {
				gpre[i] = gd[i] * (od[i] + 1)
			}
		}
		if gamma.requiresGrad {
			btmp := ws.Floats(n * d)
			edgeAggForward(xd, btmp, n, d, src, dst, inLevel)
			gg := tensor.New(d)
			ggd := gg.Data()
			for i := 0; i < n; i++ {
				trow := btmp[i*d : (i+1)*d]
				prow := gpre[i*d : (i+1)*d]
				for j := 0; j < d; j++ {
					ggd[j] += prow[j] * (trow[j] - rm[j]) * binvStd[j]
				}
			}
			bp.accumulate(gamma, gg.Reshape(gamma.Data.Shape()...))
		}
		if beta.requiresGrad {
			gb := tensor.New(d)
			gbd := gb.Data()
			for i := 0; i < n; i++ {
				prow := gpre[i*d : (i+1)*d]
				for j := 0; j < d; j++ {
					gbd[j] += prow[j]
				}
			}
			bp.accumulate(beta, gb.Reshape(beta.Data.Shape()...))
		}
		if x.requiresGrad {
			dtmp := ws.Floats(n * d)
			for i := 0; i < n; i++ {
				prow := gpre[i*d : (i+1)*d]
				drow := dtmp[i*d : (i+1)*d]
				for j := 0; j < d; j++ {
					drow[j] = prow[j] * gam[j] * binvStd[j]
				}
			}
			gx := tensor.New(n, d)
			edgeAggBackward(xd, dtmp, gx.Data(), n, d, src, dst, inLevel)
			bp.accumulate(x, gx)
		}
		ws.Release()
	})
}

// EdgeAggNormActTrain is the training-mode tail, normalising with batch
// statistics. It returns the batch mean and biased variance so the caller
// can maintain the running statistics for inference.
func EdgeAggNormActTrain(x, gamma, beta *Value, src, dst []int, inLevel []bool, eps float64) (out *Value, batchMean, batchVar *tensor.Tensor) {
	n := x.Data.Rows()
	d := x.Data.Cols()
	checkEdgeLists(n, src, dst, inLevel)
	xd := x.Data.Data()

	fws := tensor.NewWorkspace()
	tmpT := fws.Tensor(n, d)
	tmp := tmpT.Data()
	edgeAggForward(xd, tmp, n, d, src, dst, inLevel)
	mean := tensor.MeanAxis0(tmpT)
	variance := tensor.VarAxis0(tmpT)
	invStd := make([]float64, d)
	for j, v := range variance.Data() {
		invStd[j] = 1 / math.Sqrt(v+eps)
	}
	// xhat is retained for the backward pass (as in BatchNormTrain); the
	// aggregate output itself is only needed within this forward.
	xhat := make([]float64, n*d)
	md := mean.Data()
	for i := 0; i < n; i++ {
		trow := tmp[i*d : (i+1)*d]
		hrow := xhat[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			hrow[j] = (trow[j] - md[j]) * invStd[j]
		}
	}
	fws.Release()
	o := tensor.New(n, d)
	od := o.Data()
	gam, bet := gamma.Data.Data(), beta.Data.Data()
	for i := 0; i < n; i++ {
		hrow := xhat[i*d : (i+1)*d]
		orow := od[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			pre := gam[j]*hrow[j] + bet[j]
			if pre > 0 {
				orow[j] = pre
			} else {
				orow[j] = math.Exp(pre) - 1
			}
		}
	}
	v := newOp3("edgeaggnormact", o, x, gamma, beta, func(bp *Backprop, g *tensor.Tensor) {
		ws := tensor.NewWorkspace()
		gpre := ws.Floats(n * d)
		gd := g.Data()
		for i := range gpre {
			if od[i] > 0 {
				gpre[i] = gd[i]
			} else {
				gpre[i] = gd[i] * (od[i] + 1)
			}
		}
		if gamma.requiresGrad {
			gg := tensor.New(d)
			ggd := gg.Data()
			for i := 0; i < n; i++ {
				hrow := xhat[i*d : (i+1)*d]
				prow := gpre[i*d : (i+1)*d]
				for j := 0; j < d; j++ {
					ggd[j] += prow[j] * hrow[j]
				}
			}
			bp.accumulate(gamma, gg.Reshape(gamma.Data.Shape()...))
		}
		if beta.requiresGrad {
			gb := tensor.New(d)
			gbd := gb.Data()
			for i := 0; i < n; i++ {
				prow := gpre[i*d : (i+1)*d]
				for j := 0; j < d; j++ {
					gbd[j] += prow[j]
				}
			}
			bp.accumulate(beta, gb.Reshape(beta.Data.Shape()...))
		}
		if x.requiresGrad {
			// Batch-norm input gradient over the aggregate output:
			// dtmp = (γ·invStd/n) · (n·gpre − Σgpre − x̂·Σ(gpre⊙x̂))
			sumG := ws.Floats(d)
			sumGH := ws.Floats(d)
			for i := 0; i < n; i++ {
				prow := gpre[i*d : (i+1)*d]
				hrow := xhat[i*d : (i+1)*d]
				for j := 0; j < d; j++ {
					sumG[j] += prow[j]
					sumGH[j] += prow[j] * hrow[j]
				}
			}
			dtmp := ws.Floats(n * d)
			rn := float64(n)
			for i := 0; i < n; i++ {
				prow := gpre[i*d : (i+1)*d]
				hrow := xhat[i*d : (i+1)*d]
				drow := dtmp[i*d : (i+1)*d]
				for j := 0; j < d; j++ {
					coef := gam[j] * invStd[j] / rn
					drow[j] = coef * (rn*prow[j] - sumG[j] - hrow[j]*sumGH[j])
				}
			}
			gx := tensor.New(n, d)
			edgeAggBackward(xd, dtmp, gx.Data(), n, d, src, dst, inLevel)
			bp.accumulate(x, gx)
		}
		ws.Release()
	})
	return v, mean, variance
}
