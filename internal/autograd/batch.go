package autograd

import (
	"fmt"

	"edgekg/internal/tensor"
)

// MeanRowsBatch stacks the row-means of several matrices into one
// (len(banks) × d) matrix: row i is the column-wise mean of banks[i]. It
// is the batched form of MeanRows over a token-bank list — one graph node
// and one backward closure for the whole bank set, where the per-node
// form paid an op (and its closure, parents and output tensor) per node.
// MeanRowsBatch takes ownership of the banks slice; the caller must not
// mutate it afterwards.
func MeanRowsBatch(banks []*Value) *Value {
	if len(banks) == 0 {
		panic("autograd: MeanRowsBatch of nothing")
	}
	d := banks[0].Data.Cols()
	out := tensor.New(len(banks), d)
	od := out.Data()
	for i, b := range banks {
		if b.Data.Cols() != d {
			panic(fmt.Sprintf("autograd: MeanRowsBatch bank %d has %d cols, want %d", i, b.Data.Cols(), d))
		}
		r := b.Data.Rows()
		if r == 0 {
			continue
		}
		bd := b.Data.Data()
		orow := od[i*d : (i+1)*d]
		for k := 0; k < r; k++ {
			brow := bd[k*d : (k+1)*d]
			for j := 0; j < d; j++ {
				orow[j] += brow[j]
			}
		}
		inv := 1 / float64(r)
		for j := range orow {
			orow[j] *= inv
		}
	}
	return newOp("meanrowsbatch", out, banks, func(bp *Backprop, g *tensor.Tensor) {
		gd := g.Data()
		for i, b := range banks {
			if !b.requiresGrad {
				continue
			}
			r := b.Data.Rows()
			if r == 0 {
				continue
			}
			gb := tensor.New(r, d)
			gbd := gb.Data()
			inv := 1 / float64(r)
			grow := gd[i*d : (i+1)*d]
			for k := 0; k < r; k++ {
				row := gbd[k*d : (k+1)*d]
				for j := 0; j < d; j++ {
					row[j] = grow[j] * inv
				}
			}
			bp.accumulate(b, gb)
		}
	})
}

// AssembleBatch builds the block-diagonal batched node-feature matrix of
// the hierarchical GNN forward in a single operation. For a graph template
// of v = len(featRow) node rows and a batch of b = frames.Rows() samples
// it returns a (b·v × d) matrix whose k-th block of v rows is the template
// with row frameRow replaced by frames' k-th row:
//
//   - featRow[i] ≥ 0: row featRow[i] of feats (the batched token-bank node
//     embeddings) copied into row i of every block; gradients flow back
//     into feats as the sum over blocks of the corresponding rows.
//   - i == frameRow: the sample's own frame embedding (featRow[frameRow]
//     is ignored).
//   - featRow[i] < 0 otherwise: the constant fill value (the GNN uses 1,
//     the multiplicative identity, for the embedding terminal).
//
// feats may be nil when every featRow entry is negative. featRow is
// borrowed and must not be mutated afterwards. The whole assembly is one
// graph node with one backward closure, replacing the O(b·v) one-row
// SliceRows/ConcatRows graph the forward previously built — same values,
// same gradients, two orders of magnitude fewer allocations.
func AssembleBatch(frames, feats *Value, featRow []int, frameRow int, fill float64) *Value {
	b := frames.Data.Rows()
	d := frames.Data.Cols()
	v := len(featRow)
	if v == 0 {
		panic("autograd: AssembleBatch with empty template")
	}
	if frameRow < 0 || frameRow >= v {
		panic(fmt.Sprintf("autograd: AssembleBatch frame row %d out of range [0,%d)", frameRow, v))
	}
	var featData []float64
	featRows := 0
	if feats != nil {
		if feats.Data.Cols() != d {
			panic(fmt.Sprintf("autograd: AssembleBatch feats width %d != frame width %d", feats.Data.Cols(), d))
		}
		featData = feats.Data.Data()
		featRows = feats.Data.Rows()
	}

	// Build the v×d template once in pooled scratch, then stamp it per
	// sample and patch the frame row.
	ws := tensor.NewWorkspace()
	tmpl := ws.Floats(v * d)
	for i, fr := range featRow {
		if i == frameRow {
			continue // overwritten per block below
		}
		row := tmpl[i*d : (i+1)*d]
		switch {
		case fr >= 0:
			if fr >= featRows {
				panic(fmt.Sprintf("autograd: AssembleBatch featRow[%d] = %d out of range [0,%d)", i, fr, featRows))
			}
			copy(row, featData[fr*d:(fr+1)*d])
		default:
			for j := range row {
				row[j] = fill
			}
		}
	}
	out := tensor.New(b*v, d)
	od := out.Data()
	fd := frames.Data.Data()
	for k := 0; k < b; k++ {
		block := od[k*v*d : (k+1)*v*d]
		copy(block, tmpl)
		copy(block[frameRow*d:(frameRow+1)*d], fd[k*d:(k+1)*d])
	}
	ws.Release()

	return newOp3("assemblebatch", out, frames, feats, nil, func(bp *Backprop, g *tensor.Tensor) {
		gd := g.Data()
		if frames.requiresGrad {
			gf := tensor.New(b, d)
			gfd := gf.Data()
			for k := 0; k < b; k++ {
				copy(gfd[k*d:(k+1)*d], gd[(k*v+frameRow)*d:(k*v+frameRow+1)*d])
			}
			bp.accumulate(frames, gf)
		}
		if feats != nil && feats.requiresGrad {
			gt := tensor.New(featRows, d)
			gtd := gt.Data()
			for i, fr := range featRow {
				if fr < 0 || i == frameRow {
					continue
				}
				row := gtd[fr*d : (fr+1)*d]
				for k := 0; k < b; k++ {
					grow := gd[(k*v+i)*d : (k*v+i+1)*d]
					for j := 0; j < d; j++ {
						row[j] += grow[j]
					}
				}
			}
			bp.accumulate(feats, gt)
		}
	})
}
