// Package autograd implements tape-free, define-by-run reverse-mode
// automatic differentiation over internal/tensor.
//
// Every operation eagerly computes its result and records a closure that
// propagates the adjoint to its parents. Backward performs a depth-first
// topological sort from the loss and runs the closures in reverse order.
// Operations whose inputs do not require gradients record nothing, so
// inference and frozen-model adaptation (Sec. III-D: only KG token
// embeddings are trainable after deployment) pay no tape overhead for the
// frozen parts of the network.
//
// The op set is exactly what the paper's models need: dense algebra for
// eq. (1) and (5), the hierarchical edge message/aggregate ops for
// eqs. (2)–(3), batch/layer normalisation, ELU and softmax for eq. (4),
// attention primitives for the temporal transformer, and embedding gathers
// for the KG token tables.
package autograd

import (
	"fmt"
	"sync/atomic"

	"edgekg/internal/parallel"
	"edgekg/internal/tensor"
)

// Value is a node in the computation graph: a tensor plus the bookkeeping
// needed to backpropagate through the operation that produced it.
type Value struct {
	// Data holds the forward result. It is never nil.
	Data *tensor.Tensor
	// Grad accumulates the adjoint during Backward. It is nil until the
	// first accumulation (or for values that do not require gradients).
	Grad *tensor.Tensor

	requiresGrad bool
	// shared is nonzero while Data may be aliased by a copy-on-write
	// sibling leaf (CloneCOW): in-place writers must call EnsurePrivate
	// first. Accessed atomically (a plain uint32 rather than atomic.Bool so
	// Value stays freely copyable): sibling streams fault concurrently with
	// backbone re-clones during stream rehydration.
	shared  uint32
	parents []*Value
	// parentsBack inlines parent storage for ops with ≤3 parents (the
	// overwhelming majority), so building a tape node does not allocate a
	// parent slice.
	parentsBack [3]*Value
	backFn      func(bp *Backprop, grad *tensor.Tensor)
	op          string
}

// NewLeaf returns a leaf Value wrapping data. If requiresGrad is true the
// leaf accumulates gradients during Backward — use it for parameters.
func NewLeaf(data *tensor.Tensor, requiresGrad bool) *Value {
	return &Value{Data: data, requiresGrad: requiresGrad, op: "leaf"}
}

// Param is shorthand for NewLeaf(data, true).
func Param(data *tensor.Tensor) *Value { return NewLeaf(data, true) }

// Constant is shorthand for NewLeaf(data, false); gradients do not flow
// into it.
func Constant(data *tensor.Tensor) *Value { return NewLeaf(data, false) }

// RequiresGrad reports whether gradients accumulate into v.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// SetRequiresGrad toggles gradient accumulation on a leaf. Freezing the
// decision model at deployment (Fig. 2C, "Froze Model") and unfreezing the
// KG token embeddings for adaptation both go through here. It panics on
// non-leaf values: interior nodes' gradient flow is decided by their
// parents.
func (v *Value) SetRequiresGrad(b bool) {
	if v.op != "leaf" {
		panic("autograd: SetRequiresGrad on non-leaf value " + v.op)
	}
	v.requiresGrad = b
	if !b {
		v.Grad = nil
	}
}

// CloneCOW returns a leaf aliasing v's Data under copy-on-write: both
// sides are marked shared and whichever side writes first materializes a
// private tensor via EnsurePrivate, leaving the other side's bits
// untouched. The clone carries its own requires-grad flag and Grad field,
// so freezing, unfreezing or accumulating gradients on one side never
// affects the other — which is what lets per-stream serving clones alias
// a frozen backbone's token pages until they actually adapt.
func (v *Value) CloneCOW() *Value {
	c := NewLeaf(v.Data, v.requiresGrad)
	c.MarkShared()
	v.MarkShared()
	return c
}

// SharedData reports whether v's Data may be aliased by a COW sibling.
func (v *Value) SharedData() bool { return atomic.LoadUint32(&v.shared) != 0 }

// MarkShared flags v's Data as COW-aliased. It reports whether this call
// changed the flag (false when v was already shared), which lets a failed
// multi-part clone roll back exactly the marks it introduced and nothing
// more.
func (v *Value) MarkShared() bool { return atomic.CompareAndSwapUint32(&v.shared, 0, 1) }

// UnmarkShared clears the COW flag without copying. Only valid when every
// alias created against this mark has been discarded unused — the
// clone-failure rollback path (see gnn.Model.DiscardClone).
func (v *Value) UnmarkShared() { atomic.StoreUint32(&v.shared, 0) }

// EnsurePrivate gives v exclusive ownership of its Data, cloning the
// tensor when it is COW-aliased. Aliases keep the old tensor — a sibling
// concurrently reading (a stream scoring on its snapshot) never observes
// the writer's updates. It reports whether a copy was made, so callers
// holding raw row slices know to re-fetch them.
func (v *Value) EnsurePrivate() bool {
	if atomic.LoadUint32(&v.shared) == 0 {
		return false
	}
	v.Data = v.Data.Clone()
	atomic.StoreUint32(&v.shared, 0)
	return true
}

// Op returns the name of the operation that produced v ("leaf" for leaves).
func (v *Value) Op() string { return v.op }

// Shape returns the shape of the underlying tensor.
func (v *Value) Shape() []int { return v.Data.Shape() }

// Detach returns a new constant leaf sharing v's data. Use it to cut the
// graph, e.g. when feeding the previous frame's embedding into the temporal
// window without backpropagating through history.
func (v *Value) Detach() *Value { return Constant(v.Data) }

// ZeroGrad drops the accumulated gradient.
func (v *Value) ZeroGrad() { v.Grad = nil }

// accumulate adds g into v.Grad, allocating on first use.
func (v *Value) accumulate(g *tensor.Tensor) {
	if v.Grad == nil {
		v.Grad = g.Clone()
		return
	}
	tensor.AddInPlace(v.Grad, g)
}

// GradSink collects leaf adjoints for one backward pass, keyed by the leaf
// Value. It is the per-shard gradient buffer of the data-parallel training
// runtime: every shard runs BackwardInto with its own sink, so concurrent
// backwards over shared parameter leaves never touch the shared Grad
// fields. A sink is not safe for concurrent use; give each shard its own.
type GradSink map[*Value]*tensor.Tensor

// add accumulates g into the sink's buffer for v, cloning on first use (g
// may alias tape internals that a later accumulation would corrupt).
func (s GradSink) add(v *Value, g *tensor.Tensor) {
	if buf := s[v]; buf != nil {
		tensor.AddInPlace(buf, g)
		return
	}
	s[v] = g.Clone()
}

// Grad returns the accumulated adjoint for leaf v, or nil if the backward
// pass never reached it.
func (s GradSink) Grad(v *Value) *tensor.Tensor { return s[v] }

// Backprop carries the state of one reverse pass. The zero value is the
// default engine: leaf adjoints accumulate into Value.Grad. With a
// sink installed, every leaf adjoint is redirected into the sink instead,
// which makes the pass safe to run concurrently with other sink-equipped
// passes that share only leaf Values (interior nodes are always private to
// the tape that created them).
type Backprop struct {
	sink GradSink
}

// accumulate routes an adjoint for v: leaves go to the sink when one is
// installed, everything else (and every value in default mode) accumulates
// into v.Grad. Leaves are exactly the values with no backward closure.
func (bp *Backprop) accumulate(v *Value, g *tensor.Tensor) {
	if bp.sink != nil && v.backFn == nil {
		bp.sink.add(v, g)
		return
	}
	v.accumulate(g)
}

// newOp builds an interior graph node. If no parent requires gradients the
// node is constant-folded: no parents or closure are retained.
func newOp(op string, data *tensor.Tensor, parents []*Value, back func(bp *Backprop, grad *tensor.Tensor)) *Value {
	needs := false
	for _, p := range parents {
		if p.requiresGrad {
			needs = true
			break
		}
	}
	if !needs {
		return &Value{Data: data, op: op}
	}
	v := &Value{Data: data, requiresGrad: true, backFn: back, op: op}
	if len(parents) <= len(v.parentsBack) {
		copy(v.parentsBack[:], parents)
		v.parents = v.parentsBack[:len(parents)]
	} else {
		v.parents = parents
	}
	return v
}

// newOp3 is newOp for ops with up to three parents, taking them as direct
// arguments (nil for absent) so hot call sites allocate no parent slice at
// all. Non-nil parents must be packed first.
func newOp3(op string, data *tensor.Tensor, a, b, c *Value, back func(bp *Backprop, grad *tensor.Tensor)) *Value {
	needs := a != nil && a.requiresGrad || b != nil && b.requiresGrad || c != nil && c.requiresGrad
	if !needs {
		return &Value{Data: data, op: op}
	}
	v := &Value{Data: data, requiresGrad: true, backFn: back, op: op}
	n := 0
	for _, p := range [3]*Value{a, b, c} {
		if p != nil {
			v.parentsBack[n] = p
			n++
		}
	}
	v.parents = v.parentsBack[:n]
	return v
}

// Backward runs reverse-mode differentiation from v, accumulating into the
// Grad fields of every reachable Value that requires gradients. For a
// scalar v the seed adjoint is 1; for tensors it is all-ones. Call ZeroGrad
// on parameters (or optimizer.ZeroGrad) between steps — Backward
// accumulates.
func (v *Value) Backward() {
	v.BackwardWith(tensor.Ones(v.Data.Shape()...))
}

// BackwardWith runs Backward seeding the output adjoint with seed, which
// must match v's shape.
func (v *Value) BackwardWith(seed *tensor.Tensor) {
	v.backward(seed, nil)
}

// BackwardInto runs reverse-mode differentiation from v with an all-ones
// seed, accumulating every leaf adjoint into sink instead of the leaves'
// Grad fields. Interior nodes of the tape still use their Grad fields as
// scratch, but those are private to this tape, so concurrent BackwardInto
// calls from tapes that share only leaf Values (the data-parallel training
// contract: shared parameters, per-shard forward graphs) are race-free and
// each shard's sink holds exactly its own gradient contribution.
func (v *Value) BackwardInto(sink GradSink) {
	v.BackwardIntoWith(tensor.Ones(v.Data.Shape()...), sink)
}

// BackwardIntoWith is BackwardInto with an explicit seed adjoint.
func (v *Value) BackwardIntoWith(seed *tensor.Tensor, sink GradSink) {
	if sink == nil {
		panic("autograd: BackwardInto with nil sink")
	}
	v.backward(seed, sink)
}

// backward is the shared reverse-pass engine behind BackwardWith and
// BackwardInto.
func (v *Value) backward(seed *tensor.Tensor, sink GradSink) {
	if !v.Data.SameShape(seed) {
		panic(fmt.Sprintf("autograd: Backward seed shape %v does not match value shape %v", seed.Shape(), v.Data.Shape()))
	}
	if !v.requiresGrad {
		return
	}
	bp := &Backprop{sink: sink}
	order := topoSort(v)
	bp.accumulate(v, seed)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backFn == nil || n.Grad == nil {
			continue
		}
		n.backFn(bp, n.Grad)
	}
}

// ReduceSinks deterministically reduces per-shard gradient sinks into the
// Grad fields of params, scaled by scale (pass 1/K for microbatch
// averaging, 1 when shard losses are already weighted). For each parameter
// the present shard buffers are combined by a fixed-shape pairwise tree in
// sink order — ((s0+s1)+(s2+s3))… — so the result depends only on the
// sink slice, never on worker count or scheduling, which is what pins the
// data-parallel trainer's bit-determinism across EDGEKG_WORKERS. The sink
// buffers are consumed (mutated in place) by the reduction. Parameters no
// sink saw keep a nil Grad, exactly as a sequential backward would leave a
// frozen branch.
func ReduceSinks(params []*Value, sinks []GradSink, scale float64) {
	parallel.For(len(params), 4, func(lo, hi int) {
		bufs := make([]*tensor.Tensor, 0, len(sinks))
		for pi := lo; pi < hi; pi++ {
			p := params[pi]
			bufs = bufs[:0]
			for _, s := range sinks {
				if g := s[p]; g != nil {
					bufs = append(bufs, g)
				}
			}
			if len(bufs) == 0 {
				continue
			}
			// Pairwise tree reduction in fixed shard order.
			for stride := 1; stride < len(bufs); stride *= 2 {
				for i := 0; i+stride < len(bufs); i += 2 * stride {
					tensor.AddInPlace(bufs[i], bufs[i+stride])
				}
			}
			if scale != 1 {
				tensor.ScaleInPlace(bufs[0], scale)
			}
			// The sinks are consumed: hand the reduced buffer to the
			// parameter instead of cloning it.
			if p.Grad == nil {
				p.Grad = bufs[0]
			} else {
				tensor.AddInPlace(p.Grad, bufs[0])
			}
		}
	})
}

// topoSort returns the reachable graph in topological order (parents before
// children) using an iterative DFS so deep graphs cannot overflow the
// goroutine stack.
func topoSort(root *Value) []*Value {
	var order []*Value
	visited := make(map[*Value]bool)
	type frame struct {
		v    *Value
		next int
	}
	stack := []frame{{v: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.v.parents) {
			p := f.v.parents[f.next]
			f.next++
			if !visited[p] && p.requiresGrad {
				visited[p] = true
				stack = append(stack, frame{v: p})
			}
			continue
		}
		order = append(order, f.v)
		stack = stack[:len(stack)-1]
	}
	return order
}

// Scalar returns the single element of a scalar (or 1-element) Value.
func (v *Value) Scalar() float64 {
	if v.Data.Size() != 1 {
		panic(fmt.Sprintf("autograd: Scalar on value of size %d", v.Data.Size()))
	}
	return v.Data.Data()[0]
}
