package autograd

import (
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/parallel"
	"edgekg/internal/tensor"
)

// composedAttention is the sequential reference the fused kernel is pinned
// to: per window, per head, the exact op chain the per-window model uses —
// SliceCols → MatMulT2 → Scale → (+mask) → softmax → MatMul → ConcatCols —
// stacked back with ConcatRows.
func composedAttention(q, k, v *Value, batch, heads int, scale float64, causal bool) *Value {
	t := q.Data.Rows() / batch
	dk := q.Data.Cols() / heads
	var mask *tensor.Tensor
	if causal {
		mask = tensor.New(t, t)
		for i := 0; i < t; i++ {
			for j := i + 1; j < t; j++ {
				mask.Set2(i, j, -1e9)
			}
		}
	}
	wins := make([]*Value, batch)
	for b := 0; b < batch; b++ {
		qw := SliceRows(q, b*t, (b+1)*t)
		kw := SliceRows(k, b*t, (b+1)*t)
		vw := SliceRows(v, b*t, (b+1)*t)
		outs := make([]*Value, heads)
		for h := 0; h < heads; h++ {
			lo, hi := h*dk, (h+1)*dk
			qh := SliceCols(qw, lo, hi)
			kh := SliceCols(kw, lo, hi)
			vh := SliceCols(vw, lo, hi)
			scores := Scale(MatMulT2(qh, kh), scale)
			if mask != nil {
				scores = Add(scores, Constant(mask))
			}
			outs[h] = MatMul(SoftmaxRows(scores), vh)
		}
		wins[b] = ConcatCols(outs...)
	}
	return ConcatRows(wins...)
}

// TestBatchedAttentionMatchesComposed pins the fused forward to the
// composed per-window reference bit-for-bit across batch/head/causal
// shapes.
func TestBatchedAttentionMatchesComposed(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	scale := 1 / math.Sqrt(3)
	for _, batch := range []int{1, 2, 5} {
		for _, heads := range []int{1, 2} {
			for _, causal := range []bool{false, true} {
				const win, dk = 4, 3
				dim := heads * dk
				q := Constant(tensor.RandN(rng, 1, batch*win, dim))
				k := Constant(tensor.RandN(rng, 1, batch*win, dim))
				v := Constant(tensor.RandN(rng, 1, batch*win, dim))
				fused := BatchedAttention(q, k, v, batch, heads, scale, causal)
				ref := composedAttention(q, k, v, batch, heads, scale, causal)
				if !tensor.AllClose(fused.Data, ref.Data, 0) {
					t.Errorf("batch=%d heads=%d causal=%v: fused forward diverges from composed", batch, heads, causal)
				}
			}
		}
	}
}

// TestBatchedAttentionBackwardMatchesComposed checks gradient agreement
// with the composed reference for q, k and v.
func TestBatchedAttentionBackwardMatchesComposed(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	const batch, win, heads, dk = 3, 4, 2, 2
	dim := heads * dk
	scale := 1 / math.Sqrt(float64(dk))
	for _, causal := range []bool{false, true} {
		qc := randParam(rng, batch*win, dim)
		kc := randParam(rng, batch*win, dim)
		vc := randParam(rng, batch*win, dim)
		qf, kf, vf := Param(qc.Data.Clone()), Param(kc.Data.Clone()), Param(vc.Data.Clone())
		Sum(composedAttention(qc, kc, vc, batch, heads, scale, causal)).Backward()
		Sum(BatchedAttention(qf, kf, vf, batch, heads, scale, causal)).Backward()
		for i, pair := range [][2]*Value{{qf, qc}, {kf, kc}, {vf, vc}} {
			if !tensor.AllClose(pair[0].Grad, pair[1].Grad, 1e-12) {
				t.Errorf("causal=%v: input %d grad diverges from composed", causal, i)
			}
		}
	}
}

// TestGradBatchedAttention verifies the fused backward against finite
// differences for both mask modes and partial requires-grad sets.
func TestGradBatchedAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const batch, win, heads, dk = 2, 3, 2, 2
	dim := heads * dk
	scale := 1 / math.Sqrt(float64(dk))
	for _, causal := range []bool{false, true} {
		q := Param(tensor.RandN(rng, 0.5, batch*win, dim))
		k := Param(tensor.RandN(rng, 0.5, batch*win, dim))
		v := Param(tensor.RandN(rng, 0.5, batch*win, dim))
		f := func() *Value { return Sum(BatchedAttention(q, k, v, batch, heads, scale, causal)) }
		if err := GradCheck(f, []*Value{q, k, v}, 1e-6, 1e-6); err != nil {
			t.Errorf("causal=%v: %v", causal, err)
		}
	}
	// Frozen k/v: gradients must still reach q alone (the adaptation path
	// backpropagates through frozen projections).
	q := Param(tensor.RandN(rng, 0.5, 4, dim))
	k := Constant(tensor.RandN(rng, 0.5, 4, dim))
	v := Constant(tensor.RandN(rng, 0.5, 4, dim))
	f := func() *Value { return Sum(BatchedAttention(q, k, v, 2, heads, scale, false)) }
	if err := GradCheck(f, []*Value{q}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

// TestBatchedAttentionWorkerDeterminism pins the concurrency contract:
// forward values and input gradients are bit-identical at any worker
// count (EDGEKG_WORKERS ∈ {1, 4} via its programmatic equivalent).
func TestBatchedAttentionWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	const batch, win, heads, dk = 6, 5, 4, 3
	dim := heads * dk
	scale := 1 / math.Sqrt(float64(dk))
	data := [3]*tensor.Tensor{
		tensor.RandN(rng, 1, batch*win, dim),
		tensor.RandN(rng, 1, batch*win, dim),
		tensor.RandN(rng, 1, batch*win, dim),
	}
	run := func() (*tensor.Tensor, [3]*tensor.Tensor) {
		q, k, v := Param(data[0].Clone()), Param(data[1].Clone()), Param(data[2].Clone())
		out := BatchedAttention(q, k, v, batch, heads, scale, true)
		Sum(out).Backward()
		return out.Data, [3]*tensor.Tensor{q.Grad, k.Grad, v.Grad}
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	wantOut, wantGrads := run()
	parallel.SetWorkers(4)
	gotOut, gotGrads := run()
	if !tensor.AllClose(gotOut, wantOut, 0) {
		t.Error("forward not bit-identical across worker counts")
	}
	for i := range wantGrads {
		if !tensor.AllClose(gotGrads[i], wantGrads[i], 0) {
			t.Errorf("input %d gradient not bit-identical across worker counts", i)
		}
	}
}

// TestBatchedAttentionValidation checks the geometry panics.
func TestBatchedAttentionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	q := Constant(tensor.RandN(rng, 1, 6, 4))
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("batch 0", func() { BatchedAttention(q, q, q, 0, 2, 1, false) })
	mustPanic("rows not divisible", func() { BatchedAttention(q, q, q, 4, 2, 1, false) })
	mustPanic("heads not divisible", func() { BatchedAttention(q, q, q, 2, 3, 1, false) })
	kBad := Constant(tensor.RandN(rng, 1, 5, 4))
	mustPanic("shape mismatch", func() { BatchedAttention(q, kBad, q, 2, 2, 1, false) })
}

// TestMaskedSoftmaxMatchesComposed pins the fused mask+softmax to the
// Add → SoftmaxRows pair, forward and backward.
func TestMaskedSoftmaxMatchesComposed(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	mask := tensor.New(4, 4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			mask.Set2(i, j, -1e9)
		}
	}
	xc := randParam(rng, 4, 4)
	xf := Param(xc.Data.Clone())
	composed := SoftmaxRows(Add(xc, Constant(mask)))
	fused := MaskedSoftmaxRows(xf, mask)
	if !tensor.AllClose(fused.Data, composed.Data, 0) {
		t.Fatal("fused masked softmax diverges from composed")
	}
	Sum(Mul(composed, composed)).Backward()
	Sum(Mul(fused, fused)).Backward()
	if !tensor.AllClose(xf.Grad, xc.Grad, 1e-12) {
		t.Error("fused masked softmax grad diverges from composed")
	}
	// nil mask degenerates to a plain row softmax.
	plain := MaskedSoftmaxRows(Constant(xc.Data), nil)
	if !tensor.AllClose(plain.Data, tensor.SoftmaxRows(xc.Data), 0) {
		t.Error("nil-mask path diverges from SoftmaxRows")
	}
}

func TestGradMaskedSoftmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	mask := tensor.New(3, 5)
	for i := 0; i < 3; i++ {
		mask.Set2(i, 4-i, -1e9)
	}
	x := Param(tensor.RandN(rng, 0.8, 3, 5))
	// Square the probabilities so the scalar output is not constant-1.
	f := func() *Value { return Sum(Mul(MaskedSoftmaxRows(x, mask), MaskedSoftmaxRows(x, mask))) }
	if err := GradCheck(f, []*Value{x}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}
}

// TestAddTiledMatchesPerBlockAdd pins AddTiled to per-block Add, forward
// and backward, and checks its gradcheck and validation.
func TestAddTiledMatchesPerBlockAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	const batch, win, dim = 3, 4, 5
	tile := tensor.RandN(rng, 1, win, dim)
	xc := randParam(rng, batch*win, dim)
	xf := Param(xc.Data.Clone())
	blocks := make([]*Value, batch)
	for b := 0; b < batch; b++ {
		blocks[b] = Add(SliceRows(xc, b*win, (b+1)*win), Constant(tile))
	}
	composed := ConcatRows(blocks...)
	fused := AddTiled(xf, tile)
	if !tensor.AllClose(fused.Data, composed.Data, 0) {
		t.Fatal("AddTiled diverges from per-block Add")
	}
	Sum(Mul(composed, composed)).Backward()
	Sum(Mul(fused, fused)).Backward()
	if !tensor.AllClose(xf.Grad, xc.Grad, 1e-12) {
		t.Error("AddTiled grad diverges from per-block Add")
	}

	x := Param(tensor.RandN(rng, 0.5, batch*win, dim))
	f := func() *Value { return Sum(Mul(AddTiled(x, tile), AddTiled(x, tile))) }
	if err := GradCheck(f, []*Value{x}, 1e-6, 1e-6); err != nil {
		t.Error(err)
	}

	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-tiling shapes")
		}
	}()
	AddTiled(x, tensor.New(5, dim))
}
