package autograd

import (
	"fmt"
	"math"

	"edgekg/internal/flops"
	"edgekg/internal/tensor"
	"edgekg/internal/tensor/kernels"
)

// Add returns a + b elementwise.
func Add(a, b *Value) *Value {
	out := tensor.Add(a.Data, b.Data)
	return newOp3("add", out, a, b, nil, func(bp *Backprop, g *tensor.Tensor) {
		if a.requiresGrad {
			bp.accumulate(a, g)
		}
		if b.requiresGrad {
			bp.accumulate(b, g)
		}
	})
}

// Sub returns a - b elementwise.
func Sub(a, b *Value) *Value {
	out := tensor.Sub(a.Data, b.Data)
	return newOp3("sub", out, a, b, nil, func(bp *Backprop, g *tensor.Tensor) {
		if a.requiresGrad {
			bp.accumulate(a, g)
		}
		if b.requiresGrad {
			bp.accumulate(b, tensor.Neg(g))
		}
	})
}

// Mul returns the elementwise (Hadamard) product a ⊙ b — the primitive the
// hierarchical message passing layer (eq. 2) is built from.
func Mul(a, b *Value) *Value {
	out := tensor.Mul(a.Data, b.Data)
	return newOp3("mul", out, a, b, nil, func(bp *Backprop, g *tensor.Tensor) {
		if a.requiresGrad {
			bp.accumulate(a, tensor.Mul(g, b.Data))
		}
		if b.requiresGrad {
			bp.accumulate(b, tensor.Mul(g, a.Data))
		}
	})
}

// Scale returns alpha * a.
func Scale(a *Value, alpha float64) *Value {
	out := tensor.Scale(a.Data, alpha)
	return newOp3("scale", out, a, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		bp.accumulate(a, tensor.Scale(g, alpha))
	})
}

// AddScalar returns a + alpha elementwise.
func AddScalar(a *Value, alpha float64) *Value {
	out := tensor.AddScalar(a.Data, alpha)
	return newOp3("addscalar", out, a, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		bp.accumulate(a, g)
	})
}

// Neg returns -a.
func Neg(a *Value) *Value { return Scale(a, -1) }

// MatMul returns the matrix product a·b.
func MatMul(a, b *Value) *Value {
	out := tensor.MatMul(a.Data, b.Data)
	return newOp3("matmul", out, a, b, nil, func(bp *Backprop, g *tensor.Tensor) {
		if a.requiresGrad {
			bp.accumulate(a, tensor.MatMulT2(g, b.Data)) // dA = G·Bᵀ
		}
		if b.requiresGrad {
			bp.accumulate(b, tensor.MatMulT1(a.Data, g)) // dB = Aᵀ·G
		}
	})
}

// MatMulT2 returns a·bᵀ. Attention scores use it as Q·Kᵀ.
func MatMulT2(a, b *Value) *Value {
	out := tensor.MatMulT2(a.Data, b.Data)
	return newOp3("matmulT2", out, a, b, nil, func(bp *Backprop, g *tensor.Tensor) {
		if a.requiresGrad {
			bp.accumulate(a, tensor.MatMul(g, b.Data)) // dA = G·B
		}
		if b.requiresGrad {
			bp.accumulate(b, tensor.MatMulT1(g, a.Data)) // dB = Gᵀ·A
		}
	})
}

// Affine returns x·W + b with the 1-D bias b broadcast over rows — the
// dense sub-layer (eq. 1) fused into one graph node. It is MatMul+AddRow
// without the intermediate op: the bias is added in place into the matmul
// output, saving a full matrix clone and a tape node per dense layer.
func Affine(x, w, b *Value) *Value {
	out := tensor.MatMul(x.Data, w.Data)
	r, c := out.Rows(), out.Cols()
	if b.Data.Size() != c {
		panic(fmt.Sprintf("autograd: Affine bias size %d != cols %d", b.Data.Size(), c))
	}
	bd := b.Data.Data()
	od := out.Data()
	for i := 0; i < r; i++ {
		row := od[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			row[j] += bd[j]
		}
	}
	flops.Add(int64(r * c))
	return newOp3("affine", out, x, w, b, func(bp *Backprop, g *tensor.Tensor) {
		if x.requiresGrad {
			bp.accumulate(x, tensor.MatMulT2(g, w.Data)) // dX = G·Wᵀ
		}
		if w.requiresGrad {
			bp.accumulate(w, tensor.MatMulT1(x.Data, g)) // dW = Xᵀ·G
		}
		if b.requiresGrad {
			bp.accumulate(b, tensor.SumAxis0(g).Reshape(b.Data.Shape()...))
		}
	})
}

// AddRow broadcasts the 1-D bias b over every row of matrix m — the "+ b"
// of the dense sub-layer (eq. 1) and decision head (eq. 5).
func AddRow(m, b *Value) *Value {
	out := tensor.AddRow(m.Data, b.Data)
	return newOp3("addrow", out, m, b, nil, func(bp *Backprop, g *tensor.Tensor) {
		if m.requiresGrad {
			bp.accumulate(m, g)
		}
		if b.requiresGrad {
			bp.accumulate(b, tensor.SumAxis0(g).Reshape(b.Data.Shape()...))
		}
	})
}

// Gather selects rows of m. The KG token-embedding lookup and the
// per-frame sensor-row selection are Gathers; the backward pass is the
// scatter-add adjoint, which is how gradients reach only the selected
// token embeddings during adaptive learning.
func Gather(m *Value, rows []int) *Value {
	return GatherRows(m, append([]int(nil), rows...))
}

// GatherRows is Gather for an index slice the caller guarantees stays
// immutable for the lifetime of the computation graph (e.g. the GNN
// layout's cached row lists); it borrows rows instead of copying them.
func GatherRows(m *Value, rows []int) *Value {
	out := tensor.Gather(m.Data, rows)
	return newOp3("gather", out, m, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gm := tensor.New(m.Data.Shape()...)
		tensor.ScatterAddRows(gm, rows, g)
		bp.accumulate(m, gm)
	})
}

// ConcatCols horizontally concatenates matrices with equal row counts;
// the multi-KG reasoning embedding f_t = r_T1 ⌢ … ⌢ r_Tn is a ConcatCols.
func ConcatCols(vs ...*Value) *Value {
	datas := make([]*tensor.Tensor, len(vs))
	for i, v := range vs {
		datas[i] = v.Data
	}
	out := tensor.ConcatCols(datas...)
	return newOp("concatcols", out, vs, func(bp *Backprop, g *tensor.Tensor) {
		off := 0
		for _, v := range vs {
			c := v.Data.Cols()
			if v.requiresGrad {
				bp.accumulate(v, sliceColsTensor(g, off, off+c))
			}
			off += c
		}
	})
}

// ConcatRows vertically concatenates matrices with equal column counts.
func ConcatRows(vs ...*Value) *Value {
	datas := make([]*tensor.Tensor, len(vs))
	for i, v := range vs {
		datas[i] = v.Data
	}
	out := tensor.ConcatRows(datas...)
	return newOp("concatrows", out, vs, func(bp *Backprop, g *tensor.Tensor) {
		off := 0
		for _, v := range vs {
			r := v.Data.Rows()
			if v.requiresGrad {
				bp.accumulate(v, tensor.SliceRows(g, off, off+r))
			}
			off += r
		}
	})
}

// SliceCols returns columns [from, to) of a matrix; multi-head attention
// splits its projections per head with it.
func SliceCols(m *Value, from, to int) *Value {
	out := sliceColsTensor(m.Data, from, to)
	return newOp3("slicecols", out, m, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gm := tensor.New(m.Data.Shape()...)
		r := gm.Rows()
		for i := 0; i < r; i++ {
			copy(gm.Row(i)[from:to], g.Row(i))
		}
		bp.accumulate(m, gm)
	})
}

// SliceRows returns rows [from, to) of a matrix.
func SliceRows(m *Value, from, to int) *Value {
	out := tensor.SliceRows(m.Data, from, to)
	return newOp3("slicerows", out, m, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gm := tensor.New(m.Data.Shape()...)
		c := gm.Cols()
		copy(gm.Data()[from*c:to*c], g.Data())
		bp.accumulate(m, gm)
	})
}

func sliceColsTensor(m *tensor.Tensor, from, to int) *tensor.Tensor {
	r, c := m.Rows(), m.Cols()
	if from < 0 || to > c || from > to {
		panic(fmt.Sprintf("autograd: SliceCols [%d,%d) out of range for %d cols", from, to, c))
	}
	out := tensor.New(r, to-from)
	for i := 0; i < r; i++ {
		copy(out.Row(i), m.Row(i)[from:to])
	}
	return out
}

// Reshape returns a view of v with a new shape of equal size.
func Reshape(v *Value, shape ...int) *Value {
	orig := v.Data.Shape()
	out := v.Data.Clone().Reshape(shape...)
	return newOp3("reshape", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		bp.accumulate(v, g.Clone().Reshape(orig...))
	})
}

// Sum reduces v to a scalar.
func Sum(v *Value) *Value {
	out := tensor.Scalar(v.Data.Sum())
	return newOp3("sum", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		bp.accumulate(v, tensor.Full(g.Data()[0], v.Data.Shape()...))
	})
}

// Mean reduces v to its scalar arithmetic mean.
func Mean(v *Value) *Value {
	n := v.Data.Size()
	if n == 0 {
		return Constant(tensor.Scalar(0))
	}
	out := tensor.Scalar(v.Data.Sum() / float64(n))
	return newOp3("mean", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		bp.accumulate(v, tensor.Full(g.Data()[0]/float64(n), v.Data.Shape()...))
	})
}

// MeanRows returns the column means of a matrix as a (1×cols) matrix; the
// text encoder pools token embeddings with it.
func MeanRows(v *Value) *Value {
	r := v.Data.Rows()
	out := tensor.MeanAxis0(v.Data).Reshape(1, v.Data.Cols())
	return newOp3("meanrows", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gm := tensor.New(v.Data.Shape()...)
		inv := 1.0 / float64(r)
		grow := g.Data()
		for i := 0; i < r; i++ {
			row := gm.Row(i)
			for j := range row {
				row[j] = grow[j] * inv
			}
		}
		bp.accumulate(v, gm)
	})
}

// ELU applies the exponential linear unit elementwise (alpha = 1), the
// activation of every hierarchical GNN layer (eq. 4).
func ELU(v *Value) *Value {
	out := tensor.Map(v.Data, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return math.Exp(x) - 1
	})
	return newOp3("elu", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gv := tensor.New(v.Data.Shape()...)
		vd, od, gd, dst := v.Data.Data(), out.Data(), g.Data(), gv.Data()
		for i := range vd {
			if vd[i] > 0 {
				dst[i] = gd[i]
			} else {
				dst[i] = gd[i] * (od[i] + 1)
			}
		}
		bp.accumulate(v, gv)
	})
}

// ReLU applies max(0, x) elementwise.
func ReLU(v *Value) *Value {
	out := tensor.Map(v.Data, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	return newOp3("relu", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gv := tensor.New(v.Data.Shape()...)
		vd, gd, dst := v.Data.Data(), g.Data(), gv.Data()
		for i := range vd {
			if vd[i] > 0 {
				dst[i] = gd[i]
			}
		}
		bp.accumulate(v, gv)
	})
}

// Tanh applies tanh elementwise.
func Tanh(v *Value) *Value {
	out := tensor.Map(v.Data, math.Tanh)
	return newOp3("tanh", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gv := tensor.New(v.Data.Shape()...)
		od, gd, dst := out.Data(), g.Data(), gv.Data()
		for i := range od {
			dst[i] = gd[i] * (1 - od[i]*od[i])
		}
		bp.accumulate(v, gv)
	})
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(v *Value) *Value {
	out := tensor.Map(v.Data, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
	return newOp3("sigmoid", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gv := tensor.New(v.Data.Shape()...)
		od, gd, dst := out.Data(), g.Data(), gv.Data()
		for i := range od {
			dst[i] = gd[i] * od[i] * (1 - od[i])
		}
		bp.accumulate(v, gv)
	})
}

// GELU applies the Gaussian error linear unit (tanh approximation), used by
// the transformer feed-forward blocks.
func GELU(v *Value) *Value {
	const c = 0.7978845608028654 // sqrt(2/pi)
	out := tensor.Map(v.Data, func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	})
	return newOp3("gelu", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		gv := tensor.New(v.Data.Shape()...)
		vd, gd, dst := v.Data.Data(), g.Data(), gv.Data()
		for i := range vd {
			x := vd[i]
			t := math.Tanh(c * (x + 0.044715*x*x*x))
			dt := (1 - t*t) * c * (1 + 3*0.044715*x*x)
			dst[i] = gd[i] * (0.5*(1+t) + 0.5*x*dt)
		}
		bp.accumulate(v, gv)
	})
}

// SoftmaxRows applies a row-wise softmax to a matrix — attention weights
// and the decision head (eq. 5) both use it.
func SoftmaxRows(v *Value) *Value {
	out := tensor.SoftmaxRows(v.Data)
	return newOp3("softmaxrows", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		bp.accumulate(v, softmaxRowsBackward(out, g))
	})
}

// softmaxRowsBackward returns the row-softmax adjoint
// dx[i][j] = out[i][j]·(g[i][j] − Σ_k out[i][k]·g[i][k]), shared by
// SoftmaxRows and MaskedSoftmaxRows.
func softmaxRowsBackward(out, g *tensor.Tensor) *tensor.Tensor {
	r, c := out.Rows(), out.Cols()
	gv := tensor.New(r, c)
	// The row dot uses the backend kernel so the fused BatchedAttention
	// backward (which calls the same Dot) stays bit-identical to this
	// composed path on every backend.
	bk := kernels.Active()
	for i := 0; i < r; i++ {
		orow, grow, drow := out.Row(i), g.Row(i), gv.Row(i)
		dot := bk.Dot(orow, grow)
		for j := 0; j < c; j++ {
			drow[j] = orow[j] * (grow[j] - dot)
		}
	}
	return gv
}

// Dropout zeroes elements with probability p and scales survivors by
// 1/(1-p) (inverted dropout). mask must contain 0/1 entries pre-drawn by
// the caller; passing the mask keeps the op deterministic for testing.
func Dropout(v *Value, mask *tensor.Tensor, p float64) *Value {
	if p <= 0 {
		return v
	}
	keep := 1 - p
	scaled := tensor.Scale(mask, 1/keep)
	out := tensor.Mul(v.Data, scaled)
	return newOp3("dropout", out, v, nil, nil, func(bp *Backprop, g *tensor.Tensor) {
		bp.accumulate(v, tensor.Mul(g, scaled))
	})
}
