package tensor

// Edge-case coverage for the reshaping/scatter ops the backend dispatch
// rides on: empty operands, repeated scatter indices, and degenerate 1×N /
// N×1 geometries, run under every registered backend (ScatterAddRows and
// Outer dispatch; Transpose is a pure copy but must agree regardless).

import (
	"math"
	"testing"

	"edgekg/internal/tensor/kernels"
)

// forEachBackend runs fn once per registered backend with it active.
func forEachBackend(t *testing.T, fn func(t *testing.T, name string)) {
	for _, name := range kernels.Names() {
		restore, err := kernels.Use(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { fn(t, name) })
		restore()
	}
}

func TestScatterAddRowsRepeatedIndices(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		dst := New(3, 2)
		src := FromSlice([]float64{1, 2, 10, 20, 100, 200, 0.5, 0.25}, 4, 2)
		// All four source rows land on row 1; contributions accumulate in
		// source order.
		ScatterAddRows(dst, []int{1, 1, 1, 1}, src)
		want := []float64{0, 0, 111.5, 222.25, 0, 0}
		for i, v := range dst.Data() {
			if v != want[i] {
				t.Fatalf("element %d = %v, want %v", i, v, want[i])
			}
		}
	})
}

func TestScatterAddRowsEmpty(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		// Zero rows to scatter: a no-op that must not panic.
		dst := New(2, 3)
		ScatterAddRows(dst, nil, New(0, 3))
		for i, v := range dst.Data() {
			if v != 0 {
				t.Fatalf("element %d = %v after empty scatter", i, v)
			}
		}
		// Zero-width rows: indices exist but each row carries no data.
		dstW := New(2, 0)
		ScatterAddRows(dstW, []int{0, 1, 0}, New(3, 0))
	})
}

func TestScatterAddRowsSpecialValues(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		dst := New(1, 2)
		negZero := math.Copysign(0, -1)
		src := FromSlice([]float64{math.Inf(1), negZero, math.Inf(-1), 0}, 2, 2)
		ScatterAddRows(dst, []int{0, 0}, src)
		d := dst.Data()
		if !math.IsNaN(d[0]) {
			t.Fatalf("Inf + -Inf accumulated to %v, want NaN", d[0])
		}
		// -0 + 0 is +0 under round-to-nearest.
		if d[1] != 0 || math.Signbit(d[1]) {
			t.Fatalf("-0 + 0 accumulated to %v (%#x), want +0", d[1], math.Float64bits(d[1]))
		}
	})
}

func TestTransposeDegenerate(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		// 1×N row vector ↔ N×1 column vector.
		row := FromSlice([]float64{1, 2, 3, 4, 5}, 1, 5)
		col := Transpose(row)
		if col.Rows() != 5 || col.Cols() != 1 {
			t.Fatalf("Transpose(1×5) shape = %v", col.Shape())
		}
		back := Transpose(col)
		for i, v := range back.Data() {
			if v != row.Data()[i] {
				t.Fatalf("double transpose element %d = %v", i, v)
			}
		}
		// Empty on either axis.
		for _, shape := range [][2]int{{0, 4}, {4, 0}, {0, 0}} {
			tr := Transpose(New(shape[0], shape[1]))
			if tr.Rows() != shape[1] || tr.Cols() != shape[0] {
				t.Fatalf("Transpose(%v) shape = %v", shape, tr.Shape())
			}
		}
		// Size above the 32×32 blocking tile, non-square, with a NaN
		// payload that must survive the copy bit-for-bit.
		big := New(37, 41)
		big.Data()[0] = math.NaN()
		for i := 1; i < len(big.Data()); i++ {
			big.Data()[i] = float64(i)
		}
		tr := Transpose(big)
		for i := 0; i < 37; i++ {
			for j := 0; j < 41; j++ {
				got := tr.At2(j, i)
				want := big.At2(i, j)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("transpose[%d,%d] = %v, want %v", j, i, got, want)
				}
			}
		}
	})
}

func TestOuterDegenerate(t *testing.T) {
	forEachBackend(t, func(t *testing.T, name string) {
		// 1×N and N×1 outer products are scaled copies.
		one := FromSlice([]float64{-2}, 1)
		vec := FromSlice([]float64{1, 0.5, -3}, 3)
		o1 := Outer(one, vec)
		if o1.Rows() != 1 || o1.Cols() != 3 {
			t.Fatalf("Outer(1,3) shape %v", o1.Shape())
		}
		for i, want := range []float64{-2, -1, 6} {
			if o1.Data()[i] != want {
				t.Fatalf("Outer row element %d = %v, want %v", i, o1.Data()[i], want)
			}
		}
		o2 := Outer(vec, one)
		if o2.Rows() != 3 || o2.Cols() != 1 {
			t.Fatalf("Outer(3,1) shape %v", o2.Shape())
		}
		for i, want := range []float64{-2, -1, 6} {
			if o2.Data()[i] != want {
				t.Fatalf("Outer col element %d = %v, want %v", i, o2.Data()[i], want)
			}
		}
		// Empty operands on either side.
		if e := Outer(New(0), vec); e.Rows() != 0 || e.Cols() != 3 {
			t.Fatalf("Outer(0,3) shape %v", e.Shape())
		}
		if e := Outer(vec, New(0)); e.Rows() != 3 || e.Cols() != 0 {
			t.Fatalf("Outer(3,0) shape %v", e.Shape())
		}
		// Signed-zero and NaN propagation match the scalar product. (The
		// literal -0.0 is +0 in Go constant arithmetic; Copysign builds a
		// true negative zero.)
		negZero := math.Copysign(0, -1)
		sz := Outer(FromSlice([]float64{negZero, math.NaN()}, 2), FromSlice([]float64{3, negZero}, 2))
		d := sz.Data()
		if d[0] != 0 || !math.Signbit(d[0]) {
			t.Fatalf("(-0)·3 = %v (%#x), want -0", d[0], math.Float64bits(d[0]))
		}
		if d[1] != 0 || math.Signbit(d[1]) {
			t.Fatalf("(-0)·(-0) = %v, want +0", d[1])
		}
		if !math.IsNaN(d[2]) || !math.IsNaN(d[3]) {
			t.Fatalf("NaN row = %v %v, want NaN NaN", d[2], d[3])
		}
	})
}
