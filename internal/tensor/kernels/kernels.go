// Package kernels holds the dispatchable compute backends behind the
// tensor package's hot inner loops. A Backend bundles the scalar-level
// kernels — the matmul family, elementwise arithmetic, axpy, reductions,
// and the fused-op primitives the autograd layer leans on — operating on
// raw row-major []float64 storage, so callers (internal/tensor and the
// fused ops in internal/autograd) keep owning shape checks, FLOP
// accounting and the parallel worker split and hand each worker's
// [lo, hi) range to the active backend.
//
// Three backends register at init:
//
//   - "scalar": the reference. Plain Go loops, byte-for-byte the kernels
//     the tensor package shipped before dispatch existed. Every other
//     backend is pinned against it by the conformance harness.
//   - "unrolled": 4×-unrolled, register-blocked, bounds-check-eliminated
//     Go loops.
//   - "avx2" (amd64 with AVX2 only): hand-written Go assembly for the
//     dot/axpy/mul-accumulate/sum microkernels, with the unrolled loops
//     filling in the rest.
//
// Numeric contract. Kernels split in two classes:
//
//   - Order-preserving kernels (Add, Sub, Mul, MulAcc, ScaledMulAcc,
//     Axpy, Scale, MatMul, MatMulT1, SumAxis0) accumulate in the same
//     element order in every backend — vectorisation runs across
//     independent elements, multiplies and adds round separately (no
//     FMA contraction) — so results are bit-identical to the scalar
//     reference, NaN/Inf/±0 payloads included.
//   - Reassociating kernels (Dot, Norm2Sq, Sum, MatMulT2, MatVec,
//     SumAxis1) reduce with multiple accumulators, which reorders the
//     floating-point sum. They are pinned to the reference by a
//     condition-aware ULP/tolerance budget instead (see compare.go).
//
// Every backend is deterministic: the same inputs produce the same bits
// on every call, at any worker count, which is what keeps the repo-wide
// bit-equivalence suites meaningful under dispatch.
//
// Selection. The best available backend is chosen at init (avx2 when the
// CPU supports it, unrolled otherwise). EDGEKG_BACKEND=scalar|unrolled|avx2
// overrides; naming a backend the host cannot run (avx2 on a non-AVX2
// machine) falls back to the best available so one CI configuration runs
// everywhere, while an unknown name panics — that is a typo, not a
// capability gap.
package kernels

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Backend is one complete kernel set. All slice arguments are row-major
// float64 storage; lengths are validated by the caller (the tensor
// package panics on shape errors before dispatch). Elementwise kernels
// permit dst to alias x or y exactly (same base, same length); partial
// overlap is undefined.
type Backend interface {
	// Name returns the registry key ("scalar", "unrolled", "avx2").
	Name() string

	// Dot returns Σ x[i]·y[i]. Reassociating.
	Dot(x, y []float64) float64
	// Norm2Sq returns Σ x[i]². Reassociating.
	Norm2Sq(x []float64) float64
	// Sum returns Σ x[i]. Reassociating.
	Sum(x []float64) float64

	// Add stores x + y into dst. Order-preserving.
	Add(x, y, dst []float64)
	// Sub stores x − y into dst. Order-preserving.
	Sub(x, y, dst []float64)
	// Mul stores x ⊙ y into dst. Order-preserving.
	Mul(x, y, dst []float64)
	// MulAcc accumulates dst += x ⊙ y. Order-preserving.
	MulAcc(x, y, dst []float64)
	// ScaledMulAcc accumulates dst[i] += (alpha·x[i])·y[i], with exactly
	// that rounding order — it is the fused edge-aggregate backward's
	// inner kernel, and (alpha·x)·y is what the composed reference ops
	// compute. Order-preserving.
	ScaledMulAcc(alpha float64, x, y, dst []float64)
	// Axpy accumulates y += alpha·x. Order-preserving.
	Axpy(alpha float64, x, y []float64)
	// Scale stores alpha·x into dst. Order-preserving.
	Scale(alpha float64, x, dst []float64)

	// MatMul computes output rows [lo, hi) of a(m×k)·b(k×n) into
	// out(m×n), accumulating over p in ascending order with the
	// reference's skip of zero a-elements. Order-preserving.
	MatMul(a, b, out []float64, k, n, lo, hi int)
	// MatMulT1 computes output rows [lo, hi) of aᵀ·b where a is (kk×m)
	// and b is (kk×n), accumulating over p ascending with the zero skip.
	// Order-preserving.
	MatMulT1(a, b, out []float64, kk, m, n, lo, hi int)
	// MatMulT2 computes output rows [lo, hi) of a(m×k)·bᵀ where b is
	// (n×k). Each output element is a k-term dot product. Reassociating.
	MatMulT2(a, b, out []float64, k, n, lo, hi int)
	// MatVec computes elements [lo, hi) of a(m×k)·x into out(m).
	// Reassociating.
	MatVec(a, x, out []float64, k, lo, hi int)

	// SumAxis0 accumulates the column sums of m(r×c) into out(c),
	// sweeping rows in ascending order. Order-preserving.
	SumAxis0(m, out []float64, r, c int)
	// SumAxis1 computes row sums for rows [lo, hi) of m(r×c) into
	// out[lo:hi]. Reassociating.
	SumAxis1(m, out []float64, c, lo, hi int)
}

var (
	registryMu sync.Mutex
	registry   = map[string]Backend{}
	active     atomic.Value // activeBox
)

// activeBox wraps the active backend so atomic.Value always stores one
// concrete type — backends themselves are distinct struct types.
type activeBox struct{ b Backend }

// register adds a backend to the registry. Called from init; duplicate
// names are a programming error.
func register(b Backend) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic(fmt.Sprintf("kernels: duplicate backend %q", b.Name()))
	}
	registry[b.Name()] = b
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the named backend.
func Get(name string) (Backend, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	b, ok := registry[name]
	return b, ok
}

// Active returns the backend the tensor and autograd kernels dispatch to.
func Active() Backend { return active.Load().(activeBox).b }

// Use activates the named backend and returns a restore function that
// reinstates the previous one. It is the test/bench hook behind the
// per-backend conformance and benchmark matrices; swapping backends while
// kernels are executing on other goroutines is a data race, so callers
// must quiesce first.
func Use(name string) (func(), error) {
	b, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("kernels: unknown backend %q (have %v)", name, Names())
	}
	prev := Active()
	active.Store(activeBox{b})
	return func() { active.Store(activeBox{prev}) }, nil
}

// choose resolves the startup backend from an EDGEKG_BACKEND-style
// request against the registered set. Empty request → best available;
// a known-but-unregistered name (avx2 on a host without it) → best
// available; an unknown name panics.
func choose(request string, available map[string]Backend) Backend {
	best := func() Backend {
		for _, name := range []string{"avx2", "unrolled", "scalar"} {
			if b, ok := available[name]; ok {
				return b
			}
		}
		panic("kernels: no backends registered")
	}
	switch request {
	case "":
		return best()
	case "scalar", "unrolled", "avx2":
		if b, ok := available[request]; ok {
			return b
		}
		// A real backend this host cannot run: degrade, don't die.
		return best()
	default:
		panic(fmt.Sprintf("kernels: EDGEKG_BACKEND=%q is not a backend (want scalar|unrolled|avx2)", request))
	}
}

func init() {
	register(scalarBackend{})
	register(unrolledBackend{})
	registerArch() // avx2 on capable amd64 hosts, nothing elsewhere
	registryMu.Lock()
	avail := make(map[string]Backend, len(registry))
	for n, b := range registry {
		avail[n] = b
	}
	registryMu.Unlock()
	active.Store(activeBox{choose(os.Getenv("EDGEKG_BACKEND"), avail)})
}
