package kernels

// scalar32Backend is the float32 reference: the same plain loops as the
// float64 scalar backend, evaluated at binary32. Every other f32 backend
// is pinned against it by the conformance harness.
type scalar32Backend struct{}

func (scalar32Backend) Name() string { return "scalar" }

func (scalar32Backend) Dot(x, y []float32) float32 {
	var s float32
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func (scalar32Backend) Norm2Sq(x []float32) float32 {
	var s float32
	for _, v := range x {
		s += v * v
	}
	return s
}

func (scalar32Backend) Sum(x []float32) float32 {
	var s float32
	for _, v := range x {
		s += v
	}
	return s
}

func (scalar32Backend) Add(x, y, dst []float32) {
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

func (scalar32Backend) Mul(x, y, dst []float32) {
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
}

func (scalar32Backend) MulAcc(x, y, dst []float32) {
	for i := range dst {
		dst[i] += x[i] * y[i]
	}
}

func (scalar32Backend) Axpy(alpha float32, x, y []float32) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

func (scalar32Backend) Scale(alpha float32, x, dst []float32) {
	for i := range dst {
		dst[i] = alpha * x[i]
	}
}

func (scalar32Backend) MatMul(a, b, out []float32, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}
