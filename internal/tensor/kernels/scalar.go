package kernels

// scalarBackend is the reference implementation: the plain Go loops the
// tensor package shipped before backend dispatch existed, extracted
// verbatim. Every other backend is pinned against it by the conformance
// harness, so changes here are semantic changes to the whole kernel
// layer.
type scalarBackend struct{}

func (scalarBackend) Name() string { return "scalar" }

func (scalarBackend) Dot(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func (scalarBackend) Norm2Sq(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

func (scalarBackend) Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

func (scalarBackend) Add(x, y, dst []float64) {
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

func (scalarBackend) Sub(x, y, dst []float64) {
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

func (scalarBackend) Mul(x, y, dst []float64) {
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
}

func (scalarBackend) MulAcc(x, y, dst []float64) {
	for i := range dst {
		dst[i] += x[i] * y[i]
	}
}

func (scalarBackend) ScaledMulAcc(alpha float64, x, y, dst []float64) {
	for i := range dst {
		dst[i] += (alpha * x[i]) * y[i]
	}
}

func (scalarBackend) Axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

func (scalarBackend) Scale(alpha float64, x, dst []float64) {
	for i := range dst {
		dst[i] = alpha * x[i]
	}
}

func (scalarBackend) MatMul(a, b, out []float64, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

func (scalarBackend) MatMulT1(a, b, out []float64, kk, m, n, lo, hi int) {
	for p := 0; p < kk; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

func (scalarBackend) MatMulT2(a, b, out []float64, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
}

func (scalarBackend) MatVec(a, x, out []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a[i*k : (i+1)*k]
		s := 0.0
		for p := 0; p < k; p++ {
			s += row[p] * x[p]
		}
		out[i] = s
	}
}

func (scalarBackend) SumAxis0(m, out []float64, r, c int) {
	for i := 0; i < r; i++ {
		row := m[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			out[j] += row[j]
		}
	}
}

func (scalarBackend) SumAxis1(m, out []float64, c, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m[i*c : (i+1)*c]
		s := 0.0
		for j := 0; j < c; j++ {
			s += row[j]
		}
		out[i] = s
	}
}
