package kernels

import (
	"math"
	"strings"
	"testing"
)

func nan() float64      { return math.NaN() }
func inf(s int) float64 { return math.Inf(s) }
func negZero() float64  { return math.Copysign(0, -1) }
func maxFloat() float64 { return math.MaxFloat64 }

func TestRegistryHasPortableBackends(t *testing.T) {
	names := Names()
	for _, want := range []string{"scalar", "unrolled"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("backend %q missing from registry %v", want, names)
		}
	}
	for _, n := range names {
		b, ok := Get(n)
		if !ok {
			t.Fatalf("Names lists %q but Get cannot find it", n)
		}
		if b.Name() != n {
			t.Fatalf("backend registered as %q reports Name()=%q", n, b.Name())
		}
	}
}

func TestChooseSelection(t *testing.T) {
	sc, _ := Get("scalar")
	un, _ := Get("unrolled")
	both := map[string]Backend{"scalar": sc, "unrolled": un}
	onlyScalar := map[string]Backend{"scalar": sc}

	if got := choose("", both); got.Name() != "unrolled" {
		t.Fatalf("empty request should pick best available, got %q", got.Name())
	}
	if got := choose("scalar", both); got.Name() != "scalar" {
		t.Fatalf("explicit scalar request ignored, got %q", got.Name())
	}
	// A known backend the host lacks degrades to the best available.
	if got := choose("avx2", onlyScalar); got.Name() != "scalar" {
		t.Fatalf("unavailable avx2 should fall back, got %q", got.Name())
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unknown backend name should panic")
		}
		if !strings.Contains(r.(string), "not a backend") {
			t.Fatalf("unexpected panic message %v", r)
		}
	}()
	choose("typo", both)
}

func TestUseSwapsAndRestores(t *testing.T) {
	orig := Active().Name()
	restore, err := Use("scalar")
	if err != nil {
		t.Fatal(err)
	}
	if Active().Name() != "scalar" {
		t.Fatalf("Use(scalar) left %q active", Active().Name())
	}
	restore()
	if Active().Name() != orig {
		t.Fatalf("restore left %q active, want %q", Active().Name(), orig)
	}
	if _, err := Use("nope"); err == nil {
		t.Fatal("Use of unknown backend should error")
	}
}

func TestULPDiff(t *testing.T) {
	cases := []struct {
		a, b float64
		want uint64
	}{
		{1, 1, 0},
		{1, 1 + 0x1p-52, 1},
		{0, 0x1p-1074, 1},          // zero to smallest subnormal
		{0x1p-1074, -0x1p-1074, 2}, // across zero
		{0, negZero(), 0},          // ±0 are the same point
		{1, 2, 1 << 52},            // one binade apart
		{nan(), nan(), 0},          // NaN matches NaN
		{nan(), 1, ^uint64(0)},     // NaN vs number is max
		{inf(1), maxFloat(), 1},    // Inf is one past MaxFloat64
	}
	for _, c := range cases {
		if got := ULPDiff(c.a, c.b); got != c.want {
			t.Errorf("ULPDiff(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := ULPDiff(c.b, c.a); got != c.want {
			t.Errorf("ULPDiff(%v, %v) = %d, want %d (asymmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestCompareAccumNonFiniteRule(t *testing.T) {
	if err := CompareAccum(inf(1), inf(-1), 4, 1); err != nil {
		t.Errorf("both non-finite should compare equal: %v", err)
	}
	if err := CompareAccum(nan(), inf(1), 4, 1); err != nil {
		t.Errorf("NaN vs Inf are both non-finite: %v", err)
	}
	if err := CompareAccum(1, inf(1), 4, 1); err == nil {
		t.Error("finite reference vs non-finite result must fail")
	}
	if err := CompareAccum(1, 1+0x1p-50, 4, 1e9); err != nil {
		t.Errorf("within budget should pass: %v", err)
	}
	if err := CompareAccum(1, 2, 4, 1); err == nil {
		t.Error("gross divergence must fail")
	}
}
