package kernels

import (
	"math"
	"math/rand"
)

// The shared conformance table: the shape and payload matrix every
// backend is driven through, exported so the fused-op conformance tests
// in internal/autograd reuse the exact same grid instead of inventing a
// weaker one. Kept in the non-test source so _test packages elsewhere
// can import it.

// Dims is one matmul-family geometry: a is (M×K), b is (K×N) (or the
// transposed layouts the T1/T2 kernels read).
type Dims struct{ M, K, N int }

// ConformanceDims covers the degenerate and awkward geometries: 1×1,
// empty on each axis, prime and ragged dims, power-of-two tiles, and
// sizes straddling the 4- and 8-wide unroll boundaries.
var ConformanceDims = []Dims{
	{1, 1, 1},
	{0, 3, 2},
	{3, 0, 2},
	{2, 3, 0},
	{1, 7, 1},
	{7, 1, 7},
	{2, 2, 2},
	{3, 5, 7},
	{5, 5, 5},
	{8, 8, 8},
	{4, 9, 4},
	{3, 17, 5},
	{13, 29, 7},
	{1, 128, 1},
	{16, 64, 16},
	{31, 33, 9},
}

// ConformanceLens is the vector-kernel length grid: empty, sub-unroll,
// the 4/8 unroll boundaries and their neighbours, primes, and one long
// run.
var ConformanceLens = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 257, 1023}

// Payload fills a buffer with one class of test values.
type Payload struct {
	Name string
	Fill func(rng *rand.Rand, dst []float64)
}

// ConformancePayloads is the value matrix: well-scaled randoms, mixed
// magnitudes, subnormals, signed zeros, and NaN/Inf sprinkles.
var ConformancePayloads = []Payload{
	{"normal", func(rng *rand.Rand, dst []float64) {
		for i := range dst {
			dst[i] = rng.NormFloat64()
		}
	}},
	{"mixedmag", func(rng *rand.Rand, dst []float64) {
		for i := range dst {
			dst[i] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(201)-100)
		}
	}},
	{"subnormal", func(rng *rand.Rand, dst []float64) {
		for i := range dst {
			// Random subnormal (exponent field zero, random mantissa),
			// randomly signed, with a few exact zeros mixed in.
			bits := uint64(rng.Int63()) & (1<<52 - 1)
			if rng.Intn(2) == 0 {
				bits |= 1 << 63
			}
			if rng.Intn(8) == 0 {
				bits &= 1 << 63
			}
			dst[i] = math.Float64frombits(bits)
		}
	}},
	{"signedzero", func(rng *rand.Rand, dst []float64) {
		vals := []float64{0, math.Copysign(0, -1), 1, -1, 2}
		for i := range dst {
			dst[i] = vals[rng.Intn(len(vals))]
		}
	}},
	{"nan", func(rng *rand.Rand, dst []float64) {
		for i := range dst {
			if rng.Intn(4) == 0 {
				dst[i] = math.NaN()
			} else {
				dst[i] = rng.NormFloat64()
			}
		}
	}},
	{"inf", func(rng *rand.Rand, dst []float64) {
		for i := range dst {
			switch rng.Intn(8) {
			case 0:
				dst[i] = math.Inf(1)
			case 1:
				dst[i] = math.Inf(-1)
			default:
				dst[i] = rng.NormFloat64()
			}
		}
	}},
}

// SanitizeFuzz maps an arbitrary fuzz-provided float64 into the domain
// the reassociation tolerance bound is valid over: NaN and ±Inf pass
// through (the comparator's non-finite rule covers them — once a
// non-finite term exists, every summation order stays non-finite), and
// finite magnitudes are clamped to 2^±200 so no finite reduction can
// overflow in one order but not another.
func SanitizeFuzz(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	f, e := math.Frexp(x)
	if e > 200 {
		return math.Ldexp(f, 200)
	}
	if e < -200 {
		return math.Ldexp(f, -200)
	}
	return x
}

// FillFuzz fills dst from raw fuzz bytes, 8 bytes per element
// little-endian, cycling when raw is short and sanitizing magnitudes.
func FillFuzz(dst []float64, raw []byte) {
	if len(raw) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i := range dst {
		var bits uint64
		for b := 0; b < 8; b++ {
			bits |= uint64(raw[(i*8+b)%len(raw)]) << (8 * b)
		}
		dst[i] = SanitizeFuzz(math.Float64frombits(bits))
	}
}
