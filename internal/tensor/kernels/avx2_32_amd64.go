package kernels

// AVX2 float32 backend: assembly ports of the dot/axpy/mul-accumulate/
// sum microkernels and the quad matmul microkernel (avx2_32_amd64.s) —
// twice the lanes per vector op of the f64 originals — with the matmul
// riding matMul4p32 on the asm quad + axpy pair and everything else
// inherited from the unrolled32 backend. Registered
// under the same "avx2" name as the f64 backend so Active32 pairs the
// two widths, and only when the CPU reports AVX2 with OS-enabled YMM
// state.

//go:noescape
func dotAsm32(x, y []float32) float32

//go:noescape
func sumAsm32(x []float32) float32

//go:noescape
func axpyAsm32(alpha float32, x, y []float32)

//go:noescape
func mulaccAsm32(x, y, dst []float32)

//go:noescape
func matmulQuadAsm32(a0, a1, a2, a3 float32, b, out []float32)

func registerArch32() {
	if hasAVX2 {
		register32(avx232Backend{})
	}
}

type avx232Backend struct{ unrolled32Backend }

func (avx232Backend) Name() string { return "avx2" }

func (avx232Backend) Dot(x, y []float32) float32 { return dotAsm32(x, y[:len(x)]) }

func (avx232Backend) Norm2Sq(x []float32) float32 { return dotAsm32(x, x) }

func (avx232Backend) Sum(x []float32) float32 { return sumAsm32(x) }

func (avx232Backend) MulAcc(x, y, dst []float32) {
	mulaccAsm32(x[:len(dst)], y[:len(dst)], dst)
}

func (avx232Backend) Axpy(alpha float32, x, y []float32) {
	axpyAsm32(alpha, x[:len(y)], y)
}

func (avx232Backend) MatMul(a, b, out []float32, k, n, lo, hi int) {
	matMul4p32(a, b, out, k, n, lo, hi, matmulQuadAsm32, axpyAsm32)
}
