package kernels

// CPUFeatures returns the SIMD ISA extensions detected at init (e.g.
// "avx", "avx2", "fma", "avx512f"), in detection order. Perf reports
// embed it so a benchmark trajectory records what hardware produced each
// number. Empty on architectures without feature detection.
func CPUFeatures() []string {
	return append([]string(nil), cpuFeatures...)
}
