// AVX2 microkernels. Every kernel uses separate VMULPD/VADDPD (never
// VFMADD): fused multiply-add rounds once where the scalar reference
// rounds twice, and the order-preserving kernels (axpy, mulacc,
// scaledmulacc) are pinned bit-exact against the reference, so FMA
// contraction is off the table by design. The reassociating reductions
// (dot, sum) run 8 lanes of partial sums — accumulator lane l holds the
// elements with index ≡ l (mod 8) — and reduce lane l with lane l+4,
// then lanes pairwise, a fixed deterministic tree pinned by the
// conformance tolerance budgets. Tails are scalar VEX ops, and every
// exit runs VZEROUPPER before RET.

#include "textflag.h"

// func dotAsm(x, y []float64) float64
TEXT ·dotAsm(SB), NOSPLIT, $0-56
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DI
	MOVQ x_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   dotreduce

dotloop:
	VMOVUPD (SI), Y2
	VMOVUPD 32(SI), Y3
	VMULPD (DI), Y2, Y2
	VMULPD 32(DI), Y3, Y3
	VADDPD Y2, Y0, Y0
	VADDPD Y3, Y1, Y1
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  dotloop

dotreduce:
	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	ANDQ $7, CX
	JZ   dotdone

dottail:
	VMOVSD (SI), X2
	VMULSD (DI), X2, X2
	VADDSD X2, X0, X0
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  dottail

dotdone:
	VMOVSD X0, ret+48(FP)
	VZEROUPPER
	RET

// func sumAsm(x []float64) float64
TEXT ·sumAsm(SB), NOSPLIT, $0-32
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   sumreduce

sumloop:
	VADDPD (SI), Y0, Y0
	VADDPD 32(SI), Y1, Y1
	ADDQ $64, SI
	DECQ BX
	JNZ  sumloop

sumreduce:
	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	ANDQ $7, CX
	JZ   sumdone

sumtail:
	VADDSD (SI), X0, X0
	ADDQ $8, SI
	DECQ CX
	JNZ  sumtail

sumdone:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func axpyAsm(alpha float64, x, y []float64)
// y[i] += alpha·x[i]; multiply then add, bit-exact vs the reference.
TEXT ·axpyAsm(SB), NOSPLIT, $0-56
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ x_len+16(FP), CX
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   axpytailcnt

axpyloop:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD Y0, Y1, Y1
	VMULPD Y0, Y2, Y2
	VADDPD (DI), Y1, Y1
	VADDPD 32(DI), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  axpyloop

axpytailcnt:
	ANDQ $7, CX
	JZ   axpydone

axpytail:
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VADDSD (DI), X1, X1
	VMOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  axpytail

axpydone:
	VZEROUPPER
	RET

// func mulaccAsm(x, y, dst []float64)
// dst[i] += x[i]·y[i]; multiply then add, bit-exact vs the reference.
TEXT ·mulaccAsm(SB), NOSPLIT, $0-72
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DX
	MOVQ dst_base+48(FP), DI
	MOVQ dst_len+56(FP), CX
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   mulacctailcnt

mulaccloop:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD (DX), Y1, Y1
	VMULPD 32(DX), Y2, Y2
	VADDPD (DI), Y1, Y1
	VADDPD 32(DI), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $64, DI
	DECQ BX
	JNZ  mulaccloop

mulacctailcnt:
	ANDQ $7, CX
	JZ   mulaccdone

mulacctail:
	VMOVSD (SI), X1
	VMULSD (DX), X1, X1
	VADDSD (DI), X1, X1
	VMOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DX
	ADDQ $8, DI
	DECQ CX
	JNZ  mulacctail

mulaccdone:
	VZEROUPPER
	RET

// func scaledMulaccAsm(alpha float64, x, y, dst []float64)
// dst[i] += (alpha·x[i])·y[i] with exactly that rounding order.
TEXT ·scaledMulaccAsm(SB), NOSPLIT, $0-80
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DX
	MOVQ dst_base+56(FP), DI
	MOVQ dst_len+64(FP), CX
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   smatailcnt

smaloop:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD Y0, Y1, Y1
	VMULPD Y0, Y2, Y2
	VMULPD (DX), Y1, Y1
	VMULPD 32(DX), Y2, Y2
	VADDPD (DI), Y1, Y1
	VADDPD 32(DI), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $64, DI
	DECQ BX
	JNZ  smaloop

smatailcnt:
	ANDQ $7, CX
	JZ   smadone

smatail:
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VMULSD (DX), X1, X1
	VADDSD (DI), X1, X1
	VMOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DX
	ADDQ $8, DI
	DECQ CX
	JNZ  smatail

smadone:
	VZEROUPPER
	RET

// func matmulQuadAsm(a0, a1, a2, a3 float64, b, out []float64)
// Four ascending p-steps of the matmul inner loop in one pass over the
// output row: out[j] += a0·b[j], then += a1·b[n+j], += a2·b[2n+j],
// += a3·b[3n+j], each multiply and add rounding separately in that order
// (no FMA) — the exact rounding sequence of four consecutive scalar
// p-iterations, so the kernel is bit-exact vs the reference. b holds the
// four consecutive B rows contiguously (stride n = len(out)).
TEXT ·matmulQuadAsm(SB), NOSPLIT, $0-80
	VBROADCASTSD a0+0(FP), Y0
	VBROADCASTSD a1+8(FP), Y1
	VBROADCASTSD a2+16(FP), Y2
	VBROADCASTSD a3+24(FP), Y3
	MOVQ b_base+32(FP), SI
	MOVQ out_base+56(FP), DI
	MOVQ out_len+64(FP), CX
	MOVQ CX, DX
	SHLQ $3, DX            // row stride in bytes
	LEAQ (SI)(DX*1), R8    // row p+1
	LEAQ (R8)(DX*1), R9    // row p+2
	LEAQ (R9)(DX*1), R10   // row p+3
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   quadtailcnt

quadloop:
	VMOVUPD (DI), Y4
	VMOVUPD 32(DI), Y5
	VMOVUPD (SI), Y6
	VMOVUPD 32(SI), Y7
	VMULPD  Y0, Y6, Y6
	VMULPD  Y0, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R8), Y6
	VMOVUPD 32(R8), Y7
	VMULPD  Y1, Y6, Y6
	VMULPD  Y1, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R9), Y6
	VMOVUPD 32(R9), Y7
	VMULPD  Y2, Y6, Y6
	VMULPD  Y2, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD (R10), Y6
	VMOVUPD 32(R10), Y7
	VMULPD  Y3, Y6, Y6
	VMULPD  Y3, Y7, Y7
	VADDPD  Y6, Y4, Y4
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, DI
	DECQ BX
	JNZ  quadloop

quadtailcnt:
	ANDQ $7, CX
	JZ   quaddone

quadtail:
	VMOVSD (DI), X4
	VMOVSD (SI), X6
	VMULSD X0, X6, X6
	VADDSD X6, X4, X4
	VMOVSD (R8), X6
	VMULSD X1, X6, X6
	VADDSD X6, X4, X4
	VMOVSD (R9), X6
	VMULSD X2, X6, X6
	VADDSD X6, X4, X4
	VMOVSD (R10), X6
	VMULSD X3, X6, X6
	VADDSD X6, X4, X4
	VMOVSD X4, (DI)
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, DI
	DECQ CX
	JNZ  quadtail

quaddone:
	VZEROUPPER
	RET
