package kernels

import "sort"

// Backend32 is the float32 sibling of Backend: the inference-critical
// subset of the kernel set at half width, for the eval-only fast path.
// There is deliberately no f32 autograd — training and adaptation stay
// float64 — so the surface is smaller: the reductions and elementwise
// kernels the f32 forward passes lean on, plus the matmul that backs
// linear layers. The same numeric contract applies per class:
// order-preserving kernels are bit-identical to the scalar32 reference,
// reassociating reductions are pinned by tolerance.
//
// Backends register under the same names as their float64 twins
// ("scalar", "unrolled", "avx2") and selection follows the active f64
// backend: Active32 resolves the f64 backend's name against the f32
// registry, degrading avx2 → unrolled when the assembly has no f32 port
// on this architecture. EDGEKG_BACKEND therefore steers both widths at
// once.
type Backend32 interface {
	// Name returns the registry key.
	Name() string

	// Dot returns Σ x[i]·y[i]. Reassociating.
	Dot(x, y []float32) float32
	// Norm2Sq returns Σ x[i]². Reassociating.
	Norm2Sq(x []float32) float32
	// Sum returns Σ x[i]. Reassociating.
	Sum(x []float32) float32

	// Add stores x + y into dst. Order-preserving.
	Add(x, y, dst []float32)
	// Mul stores x ⊙ y into dst. Order-preserving.
	Mul(x, y, dst []float32)
	// MulAcc accumulates dst += x ⊙ y. Order-preserving.
	MulAcc(x, y, dst []float32)
	// Axpy accumulates y += alpha·x. Order-preserving.
	Axpy(alpha float32, x, y []float32)
	// Scale stores alpha·x into dst. Order-preserving.
	Scale(alpha float32, x, dst []float32)

	// MatMul computes output rows [lo, hi) of a(m×k)·b(k×n) into
	// out(m×n), accumulating over p in ascending order with the zero
	// skip of the float64 reference. Order-preserving.
	MatMul(a, b, out []float32, k, n, lo, hi int)
}

// registry32 is populated only from this package's init, so lookups
// after program start are lock-free.
var registry32 = map[string]Backend32{}

func register32(b Backend32) {
	if _, dup := registry32[b.Name()]; dup {
		panic("kernels: duplicate f32 backend " + b.Name())
	}
	registry32[b.Name()] = b
}

// Active32 returns the float32 backend paired with the active float64
// backend, falling back down the preference order when the active name
// has no f32 twin on this host.
func Active32() Backend32 {
	if b, ok := registry32[Active().Name()]; ok {
		return b
	}
	for _, name := range []string{"unrolled", "scalar"} {
		if b, ok := registry32[name]; ok {
			return b
		}
	}
	panic("kernels: no f32 backends registered")
}

// Get32 returns the named f32 backend.
func Get32(name string) (Backend32, bool) {
	b, ok := registry32[name]
	return b, ok
}

// Names32 returns the registered f32 backend names, sorted.
func Names32() []string {
	names := make([]string, 0, len(registry32))
	for n := range registry32 {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	register32(scalar32Backend{})
	register32(unrolled32Backend{})
	registerArch32() // avx2 f32 on capable amd64 hosts, nothing elsewhere
}
