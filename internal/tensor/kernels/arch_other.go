//go:build !amd64

package kernels

// Non-amd64 hosts have no assembly backend; dispatch picks "unrolled".
var cpuFeatures []string

func registerArch() {}

func registerArch32() {}
