package kernels

// unrolled32Backend is the portable optimized float32 backend: the same
// 4×-unrolled, bounds-check-eliminated loops as the float64 unrolled
// backend, at half the element width (so twice the elements per cache
// line even without SIMD). Elementwise kernels keep the scalar32
// reference's per-element rounding and are bit-exact; the reductions run
// four accumulators and are pinned by tolerance.
type unrolled32Backend struct{}

func (unrolled32Backend) Name() string { return "unrolled" }

// dot4f is the 4-accumulator f32 dot: lanes take elements i≡0,1,2,3
// (mod 4) and combine as (s0+s1)+(s2+s3).
func dot4f(x, y []float32) float32 {
	n := len(x)
	y = y[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4 := x[i:i+4:i+4], y[i:i+4:i+4]
		s0 += x4[0] * y4[0]
		s1 += x4[1] * y4[1]
		s2 += x4[2] * y4[2]
		s3 += x4[3] * y4[3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

func (unrolled32Backend) Dot(x, y []float32) float32 { return dot4f(x, y) }

func (unrolled32Backend) Norm2Sq(x []float32) float32 { return dot4f(x, x) }

func sum4f(x []float32) float32 {
	n := len(x)
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		x4 := x[i : i+4 : i+4]
		s0 += x4[0]
		s1 += x4[1]
		s2 += x4[2]
		s3 += x4[3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += x[i]
	}
	return s
}

func (unrolled32Backend) Sum(x []float32) float32 { return sum4f(x) }

func (unrolled32Backend) Add(x, y, dst []float32) {
	n := len(dst)
	x, y = x[:n], y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4, d4 := x[i:i+4:i+4], y[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] = x4[0] + y4[0]
		d4[1] = x4[1] + y4[1]
		d4[2] = x4[2] + y4[2]
		d4[3] = x4[3] + y4[3]
	}
	for ; i < n; i++ {
		dst[i] = x[i] + y[i]
	}
}

func (unrolled32Backend) Mul(x, y, dst []float32) {
	n := len(dst)
	x, y = x[:n], y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4, d4 := x[i:i+4:i+4], y[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] = x4[0] * y4[0]
		d4[1] = x4[1] * y4[1]
		d4[2] = x4[2] * y4[2]
		d4[3] = x4[3] * y4[3]
	}
	for ; i < n; i++ {
		dst[i] = x[i] * y[i]
	}
}

func mulacc4f(x, y, dst []float32) {
	n := len(dst)
	x, y = x[:n], y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4, d4 := x[i:i+4:i+4], y[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] += x4[0] * y4[0]
		d4[1] += x4[1] * y4[1]
		d4[2] += x4[2] * y4[2]
		d4[3] += x4[3] * y4[3]
	}
	for ; i < n; i++ {
		dst[i] += x[i] * y[i]
	}
}

func (unrolled32Backend) MulAcc(x, y, dst []float32) { mulacc4f(x, y, dst) }

func axpy4f(alpha float32, x, y []float32) {
	n := len(y)
	x = x[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4 := x[i:i+4:i+4], y[i:i+4:i+4]
		y4[0] += alpha * x4[0]
		y4[1] += alpha * x4[1]
		y4[2] += alpha * x4[2]
		y4[3] += alpha * x4[3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

func (unrolled32Backend) Axpy(alpha float32, x, y []float32) { axpy4f(alpha, x, y) }

func (unrolled32Backend) Scale(alpha float32, x, dst []float32) {
	n := len(dst)
	x = x[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, d4 := x[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] = alpha * x4[0]
		d4[1] = alpha * x4[1]
		d4[2] = alpha * x4[2]
		d4[3] = alpha * x4[3]
	}
	for ; i < n; i++ {
		dst[i] = alpha * x[i]
	}
}

// matMul4p32 mirrors matMul4p at float32: four ascending p-steps per
// pass over the output row, falling back to per-p axpy around zero
// a-elements to reproduce the reference's zero skip.
func matMul4p32(a, b, out []float32, k, n, lo, hi int,
	quad func(a0, a1, a2, a3 float32, b4, orow []float32),
	axpy func(alpha float32, x, y []float32)) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
				quad(a0, a1, a2, a3, b[p*n:(p+4)*n], orow)
				continue
			}
			for q := p; q < p+4; q++ {
				if av := arow[q]; av != 0 {
					axpy(av, b[q*n:(q+1)*n], orow)
				}
			}
		}
		for ; p < k; p++ {
			if av := arow[p]; av != 0 {
				axpy(av, b[p*n:(p+1)*n], orow)
			}
		}
	}
}

// quad4f is the portable f32 quad microkernel: one pass over the row,
// the out element held in a register across the four p-steps.
func quad4f(a0, a1, a2, a3 float32, b4, orow []float32) {
	n := len(orow)
	b0 := b4[0*n : 1*n : 1*n]
	b1 := b4[1*n : 2*n : 2*n]
	b2 := b4[2*n : 3*n : 3*n]
	b3 := b4[3*n : 4*n : 4*n]
	for j := range orow {
		o := orow[j]
		o += a0 * b0[j]
		o += a1 * b1[j]
		o += a2 * b2[j]
		o += a3 * b3[j]
		orow[j] = o
	}
}

func (unrolled32Backend) MatMul(a, b, out []float32, k, n, lo, hi int) {
	matMul4p32(a, b, out, k, n, lo, hi, quad4f, axpy4f)
}
