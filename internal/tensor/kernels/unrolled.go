package kernels

// unrolledBackend is the portable optimized backend: 4×-unrolled,
// register-blocked loops with the bounds checks hoisted by explicit
// re-slicing. Elementwise kernels keep the per-element rounding of the
// scalar reference (each element is still one multiply and one add, in
// the same order), so they are bit-exact; the dot-style reductions run
// four independent accumulators and are pinned by tolerance instead.
type unrolledBackend struct{}

func (unrolledBackend) Name() string { return "unrolled" }

// dot4 is the shared 4-accumulator dot kernel. The accumulators take
// elements i≡0,1,2,3 (mod 4) and combine as (s0+s1)+(s2+s3).
func dot4(x, y []float64) float64 {
	n := len(x)
	y = y[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4 := x[i:i+4:i+4], y[i:i+4:i+4]
		s0 += x4[0] * y4[0]
		s1 += x4[1] * y4[1]
		s2 += x4[2] * y4[2]
		s3 += x4[3] * y4[3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

func (unrolledBackend) Dot(x, y []float64) float64 { return dot4(x, y) }

func (unrolledBackend) Norm2Sq(x []float64) float64 { return dot4(x, x) }

func sum4(x []float64) float64 {
	n := len(x)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		x4 := x[i : i+4 : i+4]
		s0 += x4[0]
		s1 += x4[1]
		s2 += x4[2]
		s3 += x4[3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += x[i]
	}
	return s
}

func (unrolledBackend) Sum(x []float64) float64 { return sum4(x) }

func add4(x, y, dst []float64) {
	n := len(dst)
	x, y = x[:n], y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4, d4 := x[i:i+4:i+4], y[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] = x4[0] + y4[0]
		d4[1] = x4[1] + y4[1]
		d4[2] = x4[2] + y4[2]
		d4[3] = x4[3] + y4[3]
	}
	for ; i < n; i++ {
		dst[i] = x[i] + y[i]
	}
}

func (unrolledBackend) Add(x, y, dst []float64) { add4(x, y, dst) }

func (unrolledBackend) Sub(x, y, dst []float64) {
	n := len(dst)
	x, y = x[:n], y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4, d4 := x[i:i+4:i+4], y[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] = x4[0] - y4[0]
		d4[1] = x4[1] - y4[1]
		d4[2] = x4[2] - y4[2]
		d4[3] = x4[3] - y4[3]
	}
	for ; i < n; i++ {
		dst[i] = x[i] - y[i]
	}
}

func mul4(x, y, dst []float64) {
	n := len(dst)
	x, y = x[:n], y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4, d4 := x[i:i+4:i+4], y[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] = x4[0] * y4[0]
		d4[1] = x4[1] * y4[1]
		d4[2] = x4[2] * y4[2]
		d4[3] = x4[3] * y4[3]
	}
	for ; i < n; i++ {
		dst[i] = x[i] * y[i]
	}
}

func (unrolledBackend) Mul(x, y, dst []float64) { mul4(x, y, dst) }

func mulacc4(x, y, dst []float64) {
	n := len(dst)
	x, y = x[:n], y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4, d4 := x[i:i+4:i+4], y[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] += x4[0] * y4[0]
		d4[1] += x4[1] * y4[1]
		d4[2] += x4[2] * y4[2]
		d4[3] += x4[3] * y4[3]
	}
	for ; i < n; i++ {
		dst[i] += x[i] * y[i]
	}
}

func (unrolledBackend) MulAcc(x, y, dst []float64) { mulacc4(x, y, dst) }

func scaledmulacc4(alpha float64, x, y, dst []float64) {
	n := len(dst)
	x, y = x[:n], y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4, d4 := x[i:i+4:i+4], y[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] += (alpha * x4[0]) * y4[0]
		d4[1] += (alpha * x4[1]) * y4[1]
		d4[2] += (alpha * x4[2]) * y4[2]
		d4[3] += (alpha * x4[3]) * y4[3]
	}
	for ; i < n; i++ {
		dst[i] += (alpha * x[i]) * y[i]
	}
}

func (unrolledBackend) ScaledMulAcc(alpha float64, x, y, dst []float64) {
	scaledmulacc4(alpha, x, y, dst)
}

func axpy4(alpha float64, x, y []float64) {
	n := len(y)
	x = x[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, y4 := x[i:i+4:i+4], y[i:i+4:i+4]
		y4[0] += alpha * x4[0]
		y4[1] += alpha * x4[1]
		y4[2] += alpha * x4[2]
		y4[3] += alpha * x4[3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

func (unrolledBackend) Axpy(alpha float64, x, y []float64) { axpy4(alpha, x, y) }

func scale4(alpha float64, x, dst []float64) {
	n := len(dst)
	x = x[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, d4 := x[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] = alpha * x4[0]
		d4[1] = alpha * x4[1]
		d4[2] = alpha * x4[2]
		d4[3] = alpha * x4[3]
	}
	for ; i < n; i++ {
		dst[i] = alpha * x[i]
	}
}

func (unrolledBackend) Scale(alpha float64, x, dst []float64) { scale4(alpha, x, dst) }

// matMul4p is the p-blocked matmul body: four ascending p-steps per pass
// over the output row, so each out element is loaded and stored once per
// four accumulations instead of once per one. quad applies
//
//	out[j] += a0·b4[j]; out[j] += a1·b4[n+j]; out[j] += a2·b4[2n+j]; ...
//
// with each multiply and add rounding separately in that order — exactly
// the rounding sequence of four consecutive scalar p-iterations — so the
// kernel stays bit-exact against the reference. Blocks containing a zero
// a-element fall back to per-p axpy to reproduce the reference's zero
// skip (x + 0·b is not always the identity: it flips -0 to +0 and raises
// NaN from 0·Inf).
func matMul4p(a, b, out []float64, k, n, lo, hi int,
	quad func(a0, a1, a2, a3 float64, b4, orow []float64),
	axpy func(alpha float64, x, y []float64)) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
				quad(a0, a1, a2, a3, b[p*n:(p+4)*n], orow)
				continue
			}
			for q := p; q < p+4; q++ {
				if av := arow[q]; av != 0 {
					axpy(av, b[q*n:(q+1)*n], orow)
				}
			}
		}
		for ; p < k; p++ {
			if av := arow[p]; av != 0 {
				axpy(av, b[p*n:(p+1)*n], orow)
			}
		}
	}
}

// quad4 is the portable quad microkernel behind matMul4p: one pass over
// the row, out element kept in a register across the four p-steps.
func quad4(a0, a1, a2, a3 float64, b4, orow []float64) {
	n := len(orow)
	b0 := b4[0*n : 1*n : 1*n]
	b1 := b4[1*n : 2*n : 2*n]
	b2 := b4[2*n : 3*n : 3*n]
	b3 := b4[3*n : 4*n : 4*n]
	for j := range orow {
		o := orow[j]
		o += a0 * b0[j]
		o += a1 * b1[j]
		o += a2 * b2[j]
		o += a3 * b3[j]
		orow[j] = o
	}
}

func (unrolledBackend) MatMul(a, b, out []float64, k, n, lo, hi int) {
	matMul4p(a, b, out, k, n, lo, hi, quad4, axpy4)
}

// matMulT14p is the aᵀ·b analogue: the reference sweeps p in the outer
// loop, but per output row the contributions still arrive in ascending p
// with one rounding per step, so hoisting i outward and blocking p by 4
// (a accessed at column i with stride m) reproduces the reference
// bit-for-bit, zero skip included.
func matMulT14p(a, b, out []float64, kk, m, n, lo, hi int,
	quad func(a0, a1, a2, a3 float64, b4, orow []float64),
	axpy func(alpha float64, x, y []float64)) {
	for i := lo; i < hi; i++ {
		orow := out[i*n : (i+1)*n]
		p := 0
		for ; p+4 <= kk; p += 4 {
			a0, a1, a2, a3 := a[p*m+i], a[(p+1)*m+i], a[(p+2)*m+i], a[(p+3)*m+i]
			if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
				quad(a0, a1, a2, a3, b[p*n:(p+4)*n], orow)
				continue
			}
			for q := p; q < p+4; q++ {
				if av := a[q*m+i]; av != 0 {
					axpy(av, b[q*n:(q+1)*n], orow)
				}
			}
		}
		for ; p < kk; p++ {
			if av := a[p*m+i]; av != 0 {
				axpy(av, b[p*n:(p+1)*n], orow)
			}
		}
	}
}

func (unrolledBackend) MatMulT1(a, b, out []float64, kk, m, n, lo, hi int) {
	matMulT14p(a, b, out, kk, m, n, lo, hi, quad4, axpy4)
}

func matMulT2Dot(a, b, out []float64, k, n, lo, hi int, dot func(x, y []float64) float64) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = dot(arow, b[j*k:(j+1)*k])
		}
	}
}

func (unrolledBackend) MatMulT2(a, b, out []float64, k, n, lo, hi int) {
	matMulT2Dot(a, b, out, k, n, lo, hi, dot4)
}

func matVecDot(a, x, out []float64, k, lo, hi int, dot func(x, y []float64) float64) {
	for i := lo; i < hi; i++ {
		out[i] = dot(a[i*k:(i+1)*k], x)
	}
}

func (unrolledBackend) MatVec(a, x, out []float64, k, lo, hi int) {
	matVecDot(a, x, out, k, lo, hi, dot4)
}

// sumAxis0Acc shares the row-sweep column-sum body, parameterised by the
// accumulate microkernel (out += row, elementwise). Per-column
// accumulation order is row order in every variant, so it stays
// bit-exact.
func sumAxis0Acc(m, out []float64, r, c int, acc func(x, dst []float64)) {
	for i := 0; i < r; i++ {
		acc(m[i*c:(i+1)*c], out)
	}
}

// addacc4 is out += x, the 4×-unrolled accumulate behind SumAxis0.
func addacc4(x, dst []float64) {
	n := len(dst)
	x = x[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		x4, d4 := x[i:i+4:i+4], dst[i:i+4:i+4]
		d4[0] += x4[0]
		d4[1] += x4[1]
		d4[2] += x4[2]
		d4[3] += x4[3]
	}
	for ; i < n; i++ {
		dst[i] += x[i]
	}
}

func (unrolledBackend) SumAxis0(m, out []float64, r, c int) {
	sumAxis0Acc(m, out, r, c, addacc4)
}

func sumAxis1Sum(m, out []float64, c, lo, hi int, sum func(x []float64) float64) {
	for i := lo; i < hi; i++ {
		out[i] = sum(m[i*c : (i+1)*c])
	}
}

func (unrolledBackend) SumAxis1(m, out []float64, c, lo, hi int) {
	sumAxis1Sum(m, out, c, lo, hi, sum4)
}
