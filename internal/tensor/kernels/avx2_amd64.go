package kernels

// AVX2 backend: hand-written assembly for the dot/axpy/mul-accumulate/sum
// microkernels (avx2_amd64.s), with the matmul family built on top of
// them and everything else inherited from the unrolled backend. The
// backend registers only when CPUID reports AVX2 with OS-enabled YMM
// state, so a binary built here still runs (and picks "unrolled") on an
// older box.

//go:noescape
func dotAsm(x, y []float64) float64

//go:noescape
func sumAsm(x []float64) float64

//go:noescape
func axpyAsm(alpha float64, x, y []float64)

//go:noescape
func mulaccAsm(x, y, dst []float64)

//go:noescape
func scaledMulaccAsm(alpha float64, x, y, dst []float64)

//go:noescape
func matmulQuadAsm(a0, a1, a2, a3 float64, b, out []float64)

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// hasAVX2 (and the feature list for perf-report attribution) is resolved
// once at package load.
var hasAVX2 bool
var cpuFeatures []string

func detectCPU() {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return
	}
	_, _, c1, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	osAVX := false
	if c1&osxsaveBit != 0 {
		lo, _ := xgetbv0()
		osAVX = lo&0x6 == 0x6 // XMM and YMM state enabled by the OS
	}
	if c1&avxBit != 0 && osAVX {
		cpuFeatures = append(cpuFeatures, "avx")
	}
	if c1&fmaBit != 0 {
		cpuFeatures = append(cpuFeatures, "fma")
	}
	if maxID < 7 {
		return
	}
	_, b7, _, _ := cpuidex(7, 0)
	const (
		avx2Bit    = 1 << 5
		avx512fBit = 1 << 16
	)
	if b7&avx2Bit != 0 && osAVX {
		hasAVX2 = true
		cpuFeatures = append(cpuFeatures, "avx2")
	}
	if b7&avx512fBit != 0 {
		cpuFeatures = append(cpuFeatures, "avx512f")
	}
}

func registerArch() {
	detectCPU()
	if hasAVX2 {
		register(avx2Backend{})
	}
}

type avx2Backend struct{ unrolledBackend }

func (avx2Backend) Name() string { return "avx2" }

func (avx2Backend) Dot(x, y []float64) float64 { return dotAsm(x, y[:len(x)]) }

func (avx2Backend) Norm2Sq(x []float64) float64 { return dotAsm(x, x) }

func (avx2Backend) Sum(x []float64) float64 { return sumAsm(x) }

func (avx2Backend) MulAcc(x, y, dst []float64) {
	mulaccAsm(x[:len(dst)], y[:len(dst)], dst)
}

func (avx2Backend) ScaledMulAcc(alpha float64, x, y, dst []float64) {
	scaledMulaccAsm(alpha, x[:len(dst)], y[:len(dst)], dst)
}

func (avx2Backend) Axpy(alpha float64, x, y []float64) {
	axpyAsm(alpha, x[:len(y)], y)
}

func (avx2Backend) MatMul(a, b, out []float64, k, n, lo, hi int) {
	matMul4p(a, b, out, k, n, lo, hi, matmulQuadAsm, axpyAsm)
}

func (avx2Backend) MatMulT1(a, b, out []float64, kk, m, n, lo, hi int) {
	matMulT14p(a, b, out, kk, m, n, lo, hi, matmulQuadAsm, axpyAsm)
}

func (avx2Backend) MatMulT2(a, b, out []float64, k, n, lo, hi int) {
	matMulT2Dot(a, b, out, k, n, lo, hi, dotAsm)
}

func (avx2Backend) MatVec(a, x, out []float64, k, lo, hi int) {
	matVecDot(a, x, out, k, lo, hi, dotAsm)
}

// SumAxis0 rides the axpy microkernel: out += 1·row is exact (1·x ≡ x
// for every payload, NaN and subnormals included), so the row-sweep stays
// bit-identical to the reference.
func (avx2Backend) SumAxis0(m, out []float64, r, c int) {
	sumAxis0Acc(m, out, r, c, func(x, dst []float64) { axpyAsm(1, x, dst) })
}

func (avx2Backend) SumAxis1(m, out []float64, c, lo, hi int) {
	sumAxis1Sum(m, out, c, lo, hi, sumAsm)
}
