// AVX2 float32 microkernels: the f32 ports of the dot/sum/axpy/
// mul-accumulate kernels in avx2_amd64.s. The same numeric rules hold —
// separate VMULPS/VADDPS (never FMA), so the order-preserving kernels
// (axpy, mulacc) stay bit-exact against the scalar32 reference — but
// each YMM lane now holds 8 floats, so the 64-byte main loop covers 16
// elements per iteration instead of 8. The reassociating reductions
// (dot, sum) run 16 lanes of partial sums — accumulator lane l holds the
// elements with index ≡ l (mod 16) — reduced by a fixed deterministic
// tree (Y1 into Y0, high 128 into low, then two horizontal adds), pinned
// by the conformance tolerance budgets. Tails are scalar VEX ops, and
// every exit runs VZEROUPPER before RET.

#include "textflag.h"

// func dotAsm32(x, y []float32) float32
TEXT ·dotAsm32(SB), NOSPLIT, $0-52
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DI
	MOVQ x_len+8(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ CX, BX
	SHRQ $4, BX
	JZ   dotreduce32

dotloop32:
	VMOVUPS (SI), Y2
	VMOVUPS 32(SI), Y3
	VMULPS (DI), Y2, Y2
	VMULPS 32(DI), Y3, Y3
	VADDPS Y2, Y0, Y0
	VADDPS Y3, Y1, Y1
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  dotloop32

dotreduce32:
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	ANDQ $15, CX
	JZ   dotdone32

dottail32:
	VMOVSS (SI), X2
	VMULSS (DI), X2, X2
	VADDSS X2, X0, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  dottail32

dotdone32:
	VMOVSS X0, ret+48(FP)
	VZEROUPPER
	RET

// func sumAsm32(x []float32) float32
TEXT ·sumAsm32(SB), NOSPLIT, $0-28
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ CX, BX
	SHRQ $4, BX
	JZ   sumreduce32

sumloop32:
	VADDPS (SI), Y0, Y0
	VADDPS 32(SI), Y1, Y1
	ADDQ $64, SI
	DECQ BX
	JNZ  sumloop32

sumreduce32:
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	ANDQ $15, CX
	JZ   sumdone32

sumtail32:
	VADDSS (SI), X0, X0
	ADDQ $4, SI
	DECQ CX
	JNZ  sumtail32

sumdone32:
	VMOVSS X0, ret+24(FP)
	VZEROUPPER
	RET

// func axpyAsm32(alpha float32, x, y []float32)
// y[i] += alpha·x[i]; multiply then add, bit-exact vs the reference.
TEXT ·axpyAsm32(SB), NOSPLIT, $0-56
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ x_len+16(FP), CX
	MOVQ CX, BX
	SHRQ $4, BX
	JZ   axpytailcnt32

axpyloop32:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMULPS Y0, Y1, Y1
	VMULPS Y0, Y2, Y2
	VADDPS (DI), Y1, Y1
	VADDPS 32(DI), Y2, Y2
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  axpyloop32

axpytailcnt32:
	ANDQ $15, CX
	JZ   axpydone32

axpytail32:
	VMOVSS (SI), X1
	VMULSS X0, X1, X1
	VADDSS (DI), X1, X1
	VMOVSS X1, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  axpytail32

axpydone32:
	VZEROUPPER
	RET

// func mulaccAsm32(x, y, dst []float32)
// dst[i] += x[i]·y[i]; multiply then add, bit-exact vs the reference.
TEXT ·mulaccAsm32(SB), NOSPLIT, $0-72
	MOVQ x_base+0(FP), SI
	MOVQ y_base+24(FP), DX
	MOVQ dst_base+48(FP), DI
	MOVQ dst_len+56(FP), CX
	MOVQ CX, BX
	SHRQ $4, BX
	JZ   mulacctailcnt32

mulaccloop32:
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMULPS (DX), Y1, Y1
	VMULPS 32(DX), Y2, Y2
	VADDPS (DI), Y1, Y1
	VADDPS 32(DI), Y2, Y2
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $64, DI
	DECQ BX
	JNZ  mulaccloop32

mulacctailcnt32:
	ANDQ $15, CX
	JZ   mulaccdone32

mulacctail32:
	VMOVSS (SI), X1
	VMULSS (DX), X1, X1
	VADDSS (DI), X1, X1
	VMOVSS X1, (DI)
	ADDQ $4, SI
	ADDQ $4, DX
	ADDQ $4, DI
	DECQ CX
	JNZ  mulacctail32

mulaccdone32:
	VZEROUPPER
	RET

// func matmulQuadAsm32(a0, a1, a2, a3 float32, b, out []float32)
// The f32 port of matmulQuadAsm: four ascending p-steps of the matmul
// inner loop in one pass over the output row, each multiply and add
// rounding separately in that order (no FMA) — the exact rounding
// sequence of four consecutive scalar p-iterations, so the kernel stays
// bit-exact vs the scalar32 reference. b holds the four consecutive B
// rows contiguously (stride n = len(out)); the main loop covers 16
// floats per iteration (two YMM of 8 lanes).
TEXT ·matmulQuadAsm32(SB), NOSPLIT, $0-64
	VBROADCASTSS a0+0(FP), Y0
	VBROADCASTSS a1+4(FP), Y1
	VBROADCASTSS a2+8(FP), Y2
	VBROADCASTSS a3+12(FP), Y3
	MOVQ b_base+16(FP), SI
	MOVQ out_base+40(FP), DI
	MOVQ out_len+48(FP), CX
	MOVQ CX, DX
	SHLQ $2, DX            // row stride in bytes
	LEAQ (SI)(DX*1), R8    // row p+1
	LEAQ (R8)(DX*1), R9    // row p+2
	LEAQ (R9)(DX*1), R10   // row p+3
	MOVQ CX, BX
	SHRQ $4, BX
	JZ   quadtailcnt32

quadloop32:
	VMOVUPS (DI), Y4
	VMOVUPS 32(DI), Y5
	VMOVUPS (SI), Y6
	VMOVUPS 32(SI), Y7
	VMULPS  Y0, Y6, Y6
	VMULPS  Y0, Y7, Y7
	VADDPS  Y6, Y4, Y4
	VADDPS  Y7, Y5, Y5
	VMOVUPS (R8), Y6
	VMOVUPS 32(R8), Y7
	VMULPS  Y1, Y6, Y6
	VMULPS  Y1, Y7, Y7
	VADDPS  Y6, Y4, Y4
	VADDPS  Y7, Y5, Y5
	VMOVUPS (R9), Y6
	VMOVUPS 32(R9), Y7
	VMULPS  Y2, Y6, Y6
	VMULPS  Y2, Y7, Y7
	VADDPS  Y6, Y4, Y4
	VADDPS  Y7, Y5, Y5
	VMOVUPS (R10), Y6
	VMOVUPS 32(R10), Y7
	VMULPS  Y3, Y6, Y6
	VMULPS  Y3, Y7, Y7
	VADDPS  Y6, Y4, Y4
	VADDPS  Y7, Y5, Y5
	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, DI
	DECQ BX
	JNZ  quadloop32

quadtailcnt32:
	ANDQ $15, CX
	JZ   quaddone32

quadtail32:
	VMOVSS (DI), X4
	VMOVSS (SI), X6
	VMULSS X0, X6, X6
	VADDSS X6, X4, X4
	VMOVSS (R8), X6
	VMULSS X1, X6, X6
	VADDSS X6, X4, X4
	VMOVSS (R9), X6
	VMULSS X2, X6, X6
	VADDSS X6, X4, X4
	VMOVSS (R10), X6
	VMULSS X3, X6, X6
	VADDSS X6, X4, X4
	VMOVSS X4, (DI)
	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, DI
	DECQ CX
	JNZ  quadtail32

quaddone32:
	VZEROUPPER
	RET
