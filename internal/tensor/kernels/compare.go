package kernels

import (
	"fmt"
	"math"
)

// Divergence comparators: how the conformance harness pins a backend's
// result to the scalar reference. Two budgets exist, matching the two
// kernel classes in the Backend contract.

// ULPDiff returns the distance between a and b in units of last place —
// the number of representable float64 values strictly between them,
// plus one if they differ. Signed values are mapped onto a monotonic
// integer line so the distance works across zero. NaN against anything
// is the maximum distance.
func ULPDiff(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		if math.IsNaN(a) && math.IsNaN(b) {
			return 0
		}
		return math.MaxUint64
	}
	ord := func(f float64) int64 {
		bits := int64(math.Float64bits(f))
		if bits < 0 {
			bits = math.MinInt64 - bits
		}
		return bits
	}
	oa, ob := ord(a), ord(b)
	if oa > ob {
		oa, ob = ob, oa
	}
	return uint64(ob - oa)
}

// CompareExact enforces the order-preserving budget: identical bits,
// except that any NaN matches any NaN (payload bits may differ across
// hardware multiply paths).
func CompareExact(ref, got float64) error {
	if math.IsNaN(ref) && math.IsNaN(got) {
		return nil
	}
	if math.Float64bits(ref) != math.Float64bits(got) {
		return fmt.Errorf("want %v (%#x), got %v (%#x), %d ULP apart",
			ref, math.Float64bits(ref), got, math.Float64bits(got), ULPDiff(ref, got))
	}
	return nil
}

// AccumBudget is the reassociating-kernel tolerance for an n-term
// reduction whose terms have total magnitude absSum: the classic
// n·ε·Σ|tᵢ| backward-error bound with a 4× cushion for the split
// accumulator trees.
func AccumBudget(n int, absSum float64) float64 {
	const eps = 0x1p-52
	return 4 * float64(n+1) * eps * absSum
}

// ULPDiff32 is ULPDiff at float32 width.
func ULPDiff32(a, b float32) uint64 {
	if a != a || b != b { // NaN
		if a != a && b != b {
			return 0
		}
		return math.MaxUint64
	}
	ord := func(f float32) int32 {
		bits := int32(math.Float32bits(f))
		if bits < 0 {
			bits = math.MinInt32 - bits
		}
		return bits
	}
	oa, ob := ord(a), ord(b)
	if oa > ob {
		oa, ob = ob, oa
	}
	return uint64(ob - oa)
}

// CompareExact32 is the order-preserving budget at float32: identical
// bits, except any NaN matches any NaN.
func CompareExact32(ref, got float32) error {
	if ref != ref && got != got {
		return nil
	}
	if math.Float32bits(ref) != math.Float32bits(got) {
		return fmt.Errorf("want %v (%#x), got %v (%#x), %d ULP apart",
			ref, math.Float32bits(ref), got, math.Float32bits(got), ULPDiff32(ref, got))
	}
	return nil
}

// AccumBudget32 is the reassociating tolerance at float32 width: the
// same n·ε·Σ|tᵢ| bound with ε = 2⁻²³. absSum is computed in float64 so
// the budget itself carries no f32 rounding.
func AccumBudget32(n int, absSum float64) float64 {
	const eps = 0x1p-23
	return 4 * float64(n+1) * eps * absSum
}

// CompareAccum32 is CompareAccum with the float32 budget.
func CompareAccum32(ref, got float32, n int, absSum float64) error {
	r64, g64 := float64(ref), float64(got)
	refBad := math.IsNaN(r64) || math.IsInf(r64, 0)
	gotBad := math.IsNaN(g64) || math.IsInf(g64, 0)
	if refBad || gotBad {
		if refBad && gotBad {
			return nil
		}
		return fmt.Errorf("want %v, got %v (finite/non-finite mismatch)", ref, got)
	}
	if ULPDiff32(ref, got) <= 4 {
		return nil
	}
	if d := math.Abs(r64 - g64); d > AccumBudget32(n, absSum) {
		return fmt.Errorf("want %v, got %v: |Δ|=%g exceeds budget %g (n=%d, Σ|terms|=%g, %d ULP)",
			ref, got, d, AccumBudget32(n, absSum), n, absSum, ULPDiff32(ref, got))
	}
	return nil
}

// CompareAccum enforces the reassociating budget: both NaN is equal,
// any non-finite reference requires a non-finite result (term order
// cannot rescue a sum that contains an Inf or NaN term), and finite
// values must sit within a few ULP or the AccumBudget bound for the
// term-magnitude sum.
func CompareAccum(ref, got float64, n int, absSum float64) error {
	refBad := math.IsNaN(ref) || math.IsInf(ref, 0)
	gotBad := math.IsNaN(got) || math.IsInf(got, 0)
	if refBad || gotBad {
		if refBad && gotBad {
			return nil
		}
		return fmt.Errorf("want %v, got %v (finite/non-finite mismatch)", ref, got)
	}
	if ULPDiff(ref, got) <= 4 {
		return nil
	}
	if d := math.Abs(ref - got); d > AccumBudget(n, absSum) {
		return fmt.Errorf("want %v, got %v: |Δ|=%g exceeds budget %g (n=%d, Σ|terms|=%g, %d ULP)",
			ref, got, d, AccumBudget(n, absSum), n, absSum, ULPDiff(ref, got))
	}
	return nil
}
