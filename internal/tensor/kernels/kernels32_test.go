package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// The f32 conformance harness: every registered f32 backend is driven
// through the same shape/payload grid as the f64 suite, pinned against
// the scalar32 reference — order-preserving kernels bit-exact,
// reassociating reductions to the float32 tolerance budget.

// sanitize32 narrows a conformance-payload float64 to float32 inside the
// range the f32 reassociation budget is valid over: NaN/±Inf pass
// through (the comparator's non-finite rule covers them), finite values
// are clamped to 2^±30 so no finite f32 reduction can overflow in one
// summation order but not another. Subnormal f64 payloads collapse to
// signed zero at f32, which is exactly the signed-zero class.
func sanitize32(x float64) float32 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return float32(x)
	}
	f, e := math.Frexp(x)
	if e > 30 {
		return float32(math.Ldexp(f, 30))
	}
	if e < -30 {
		return float32(math.Ldexp(f, -30))
	}
	return float32(x)
}

func fill32(rng *rand.Rand, p Payload, n int) []float32 {
	buf := make([]float64, n)
	p.Fill(rng, buf)
	out := make([]float32, n)
	for i, v := range buf {
		out[i] = sanitize32(v)
	}
	return out
}

func absSum32Dot(x, y []float32) float64 {
	s := 0.0
	for i := range x {
		s += math.Abs(float64(x[i]) * float64(y[i]))
	}
	return s
}

func absSum32(x []float32) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(float64(v))
	}
	return s
}

func others32(t *testing.T) []Backend32 {
	var out []Backend32
	for _, name := range Names32() {
		if name == "scalar" {
			continue
		}
		b, ok := Get32(name)
		if !ok {
			t.Fatalf("registered f32 backend %q not gettable", name)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		t.Fatal("no non-reference f32 backends registered")
	}
	return out
}

func TestConformance32Reductions(t *testing.T) {
	ref, _ := Get32("scalar")
	for _, b := range others32(t) {
		for _, p := range ConformancePayloads {
			rng := rand.New(rand.NewSource(321))
			for _, n := range ConformanceLens {
				x := fill32(rng, p, n)
				y := fill32(rng, p, n)
				if err := CompareAccum32(ref.Dot(x, y), b.Dot(x, y), n, absSum32Dot(x, y)); err != nil {
					t.Errorf("%s/Dot/%s/n=%d: %v", b.Name(), p.Name, n, err)
				}
				if err := CompareAccum32(ref.Norm2Sq(x), b.Norm2Sq(x), n, absSum32Dot(x, x)); err != nil {
					t.Errorf("%s/Norm2Sq/%s/n=%d: %v", b.Name(), p.Name, n, err)
				}
				if err := CompareAccum32(ref.Sum(x), b.Sum(x), n, absSum32(x)); err != nil {
					t.Errorf("%s/Sum/%s/n=%d: %v", b.Name(), p.Name, n, err)
				}
			}
		}
	}
}

func TestConformance32Elementwise(t *testing.T) {
	ref, _ := Get32("scalar")
	for _, b := range others32(t) {
		for _, p := range ConformancePayloads {
			rng := rand.New(rand.NewSource(654))
			for _, n := range ConformanceLens {
				x := fill32(rng, p, n)
				y := fill32(rng, p, n)
				base := fill32(rng, p, n)
				alpha := sanitize32(rng.NormFloat64())

				check := func(kernel string, want, got []float32) {
					t.Helper()
					for i := range want {
						if err := CompareExact32(want[i], got[i]); err != nil {
							t.Errorf("%s/%s/%s/n=%d i=%d: %v", b.Name(), kernel, p.Name, n, i, err)
							return
						}
					}
				}
				run2 := func(kernel string, f func(Backend32, []float32)) {
					want := append([]float32(nil), base...)
					got := append([]float32(nil), base...)
					f(ref, want)
					f(b, got)
					check(kernel, want, got)
				}
				run2("Add", func(bk Backend32, dst []float32) { bk.Add(x, y, dst) })
				run2("Mul", func(bk Backend32, dst []float32) { bk.Mul(x, y, dst) })
				run2("MulAcc", func(bk Backend32, dst []float32) { bk.MulAcc(x, y, dst) })
				run2("Axpy", func(bk Backend32, dst []float32) { bk.Axpy(alpha, x, dst) })
				run2("Scale", func(bk Backend32, dst []float32) { bk.Scale(alpha, x, dst) })
			}
		}
	}
}

func TestConformance32MatMul(t *testing.T) {
	ref, _ := Get32("scalar")
	for _, b := range others32(t) {
		for _, p := range ConformancePayloads {
			rng := rand.New(rand.NewSource(987))
			for _, d := range ConformanceDims {
				a := fill32(rng, p, d.M*d.K)
				bb := fill32(rng, p, d.K*d.N)
				want := make([]float32, d.M*d.N)
				got := make([]float32, d.M*d.N)
				ref.MatMul(a, bb, want, d.K, d.N, 0, d.M)
				// Run the candidate in two row chunks to check that the
				// worker split cannot change results.
				mid := d.M / 2
				b.MatMul(a, bb, got, d.K, d.N, 0, mid)
				b.MatMul(a, bb, got, d.K, d.N, mid, d.M)
				for i := range want {
					if err := CompareExact32(want[i], got[i]); err != nil {
						t.Errorf("%s/MatMul/%s/%v i=%d: %v", b.Name(), p.Name, d, i, err)
						break
					}
				}
			}
		}
	}
}

// TestActive32FollowsActive pins the pairing rule: Use(name) steers both
// widths, and a name with no f32 twin degrades down the preference
// order instead of failing.
func TestActive32FollowsActive(t *testing.T) {
	for _, name := range Names() {
		restore, err := Use(name)
		if err != nil {
			t.Fatal(err)
		}
		b32 := Active32()
		if _, ok := Get32(name); ok {
			if b32.Name() != name {
				t.Errorf("Active32 after Use(%q) = %q, want %q", name, b32.Name(), name)
			}
		} else if b32 == nil {
			t.Errorf("Active32 after Use(%q) = nil", name)
		}
		restore()
	}
}
