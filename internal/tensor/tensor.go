// Package tensor implements dense row-major float64 tensors and the
// numerical kernels the rest of the library is built on: elementwise
// arithmetic, matrix multiplication, reductions, gather/scatter and
// deterministic random initialisation.
//
// The package favours clarity over raw speed — model dimensions in this
// system are small (GNN width 8, temporal width 128) — but the matmul
// kernel is written cache-consciously and every op reports its cost to
// internal/flops so the Table-I accounting reflects real operation counts.
//
// Shape errors are programming errors, not runtime conditions, so the
// package panics on mismatched shapes (matching the behaviour of gonum and
// of slice indexing itself). All exported constructors copy or own their
// backing storage unless documented otherwise.
package tensor

import (
	"fmt"
	"strings"

	"edgekg/internal/flops"
)

// Tensor is a dense row-major tensor of float64 values.
type Tensor struct {
	shape []int
	data  []float64
	// shapeBack inlines the shape storage for tensors of rank ≤ 2 (all of
	// them, in this codebase), so constructing a tensor costs two heap
	// allocations (struct + data) instead of three.
	shapeBack [2]int
}

// setShape stores a copy of shape, using the inline backing array when the
// rank allows.
func (t *Tensor) setShape(shape []int) {
	if len(shape) <= len(t.shapeBack) {
		t.shape = t.shapeBack[:len(shape)]
		copy(t.shape, shape)
	} else {
		t.shape = append([]int(nil), shape...)
	}
}

// New returns a zero-filled tensor with the given shape. A tensor with no
// dimensions is a scalar holding one element.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	t := &Tensor{data: make([]float64, n)}
	t.setShape(shape)
	return t
}

// FromSlice wraps data in a tensor with the given shape. The tensor takes
// ownership of data; the caller must not modify it afterwards.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (size %d)", len(data), shape, n))
	}
	t := &Tensor{data: data}
	t.setShape(shape)
	return t
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float64) *Tensor {
	t := &Tensor{data: []float64{v}}
	t.shape = t.shapeBack[:0]
	return t
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's shape. The returned slice is a copy.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{data: make([]float64, len(t.data))}
	c.setShape(t.shape)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape size %d to %v", len(t.data), shape))
	}
	r := &Tensor{data: t.data}
	r.setShape(shape)
	return r
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// offset computes the linear index of a multi-dimensional index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank %d", idx, len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Rows returns the first dimension of a matrix. It panics if t is not 2-D.
func (t *Tensor) Rows() int {
	t.must2D("Rows")
	return t.shape[0]
}

// Cols returns the second dimension of a matrix. It panics if t is not 2-D.
func (t *Tensor) Cols() int {
	t.must2D("Cols")
	return t.shape[1]
}

func (t *Tensor) must2D(op string) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires a 2-D tensor, have shape %v", op, t.shape))
	}
}

// Row returns row i of a matrix as a slice into t's backing storage.
func (t *Tensor) Row(i int) []float64 {
	t.must2D("Row")
	c := t.shape[1]
	if i < 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: row %d out of range for shape %v", i, t.shape))
	}
	return t.data[i*c : (i+1)*c]
}

// At2 returns element (i, j) of a matrix.
func (t *Tensor) At2(i, j int) float64 {
	t.must2D("At2")
	return t.data[i*t.shape[1]+j]
}

// Set2 stores v at element (i, j) of a matrix.
func (t *Tensor) Set2(i, j int, v float64) {
	t.must2D("Set2")
	t.data[i*t.shape[1]+j] = v
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// CopyFrom copies o's elements into t. Shapes must match.
func (t *Tensor) CopyFrom(o *Tensor) {
	t.mustSameShape(o, "CopyFrom")
	copy(t.data, o.data)
}

// String renders small tensors fully and large ones by shape summary.
func (t *Tensor) String() string {
	const maxElems = 64
	if len(t.data) > maxElems {
		return fmt.Sprintf("Tensor%v[%d elems]", t.shape, len(t.data))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.shape) == 2 {
		b.WriteString("{\n")
		for i := 0; i < t.shape[0]; i++ {
			b.WriteString("  ")
			for j := 0; j < t.shape[1]; j++ {
				fmt.Fprintf(&b, "%8.4f ", t.At2(i, j))
			}
			b.WriteString("\n")
		}
		b.WriteString("}")
		return b.String()
	}
	fmt.Fprintf(&b, "%v", t.data)
	return b.String()
}

// countOps reports n floating point operations to the active flops counter.
func countOps(n int) { flops.Add(int64(n)) }

// countBytes reports n bytes of memory traffic to the active flops counter.
func countBytes(n int) { flops.AddBytes(int64(n)) }
