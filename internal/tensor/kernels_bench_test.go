package tensor

// Per-backend kernel microbenchmarks:
//
//	go test ./internal/tensor -bench 'PerBackend' -run '^$'
//
// Each bench runs the same kernel under every registered backend so a
// single run shows the scalar → unrolled → avx2 trajectory on this host.

import (
	"math/rand"
	"testing"

	"edgekg/internal/tensor/kernels"
)

func benchPerBackend(b *testing.B, fn func(b *testing.B, bk kernels.Backend)) {
	for _, name := range kernels.Names() {
		bk, _ := kernels.Get(name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			fn(b, bk)
		})
	}
}

func benchData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func BenchmarkMatMulPerBackend(b *testing.B) {
	const m, k, n = 64, 64, 64
	a := benchData(m*k, 1)
	bb := benchData(k*n, 2)
	out := make([]float64, m*n)
	benchPerBackend(b, func(b *testing.B, bk kernels.Backend) {
		b.SetBytes(8 * int64(m*k+k*n+m*n))
		for i := 0; i < b.N; i++ {
			for j := range out {
				out[j] = 0
			}
			bk.MatMul(a, bb, out, k, n, 0, m)
		}
	})
}

func BenchmarkMatMulT2PerBackend(b *testing.B) {
	const m, k, n = 64, 64, 64
	a := benchData(m*k, 3)
	bt := benchData(n*k, 4)
	out := make([]float64, m*n)
	benchPerBackend(b, func(b *testing.B, bk kernels.Backend) {
		b.SetBytes(8 * int64(m*k+n*k+m*n))
		for i := 0; i < b.N; i++ {
			bk.MatMulT2(a, bt, out, k, n, 0, m)
		}
	})
}

func BenchmarkDotPerBackend(b *testing.B) {
	x := benchData(4096, 5)
	y := benchData(4096, 6)
	benchPerBackend(b, func(b *testing.B, bk kernels.Backend) {
		b.SetBytes(8 * 2 * 4096)
		var s float64
		for i := 0; i < b.N; i++ {
			s += bk.Dot(x, y)
		}
		_ = s
	})
}

func BenchmarkAxpyPerBackend(b *testing.B) {
	x := benchData(4096, 7)
	y := benchData(4096, 8)
	benchPerBackend(b, func(b *testing.B, bk kernels.Backend) {
		b.SetBytes(8 * 2 * 4096)
		for i := 0; i < b.N; i++ {
			bk.Axpy(0.5, x, y)
		}
	})
}

func BenchmarkMulAccPerBackend(b *testing.B) {
	x := benchData(4096, 9)
	y := benchData(4096, 10)
	dst := make([]float64, 4096)
	benchPerBackend(b, func(b *testing.B, bk kernels.Backend) {
		b.SetBytes(8 * 3 * 4096)
		for i := 0; i < b.N; i++ {
			bk.MulAcc(x, y, dst)
		}
	})
}

func BenchmarkSumPerBackend(b *testing.B) {
	x := benchData(4096, 11)
	benchPerBackend(b, func(b *testing.B, bk kernels.Backend) {
		b.SetBytes(8 * 4096)
		var s float64
		for i := 0; i < b.N; i++ {
			s += bk.Sum(x)
		}
		_ = s
	})
}
