package tensor

import (
	"math/rand"
	"testing"

	"edgekg/internal/flops"
	"edgekg/internal/parallel"
)

func countMeter(fn func()) (int64, int64) { return flops.Count(fn) }

// withWorkers runs f with the pool width pinned to n.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := parallel.SetWorkers(n)
	defer parallel.SetWorkers(prev)
	f()
}

func randMat(rng *rand.Rand, r, c int) *Tensor {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// TestParallelMatmulFamilyEquivalence pins the determinism contract: every
// kernel decomposes over output rows, so parallel results must be
// bit-for-bit identical to the sequential ones at any worker count, on
// sizes straddling the parallel cutoff.
func TestParallelMatmulFamilyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []struct{ m, k, n int }{
		{3, 5, 4},      // far below cutoff
		{64, 64, 64},   // at the cutoff boundary
		{97, 130, 113}, // above cutoff, non-divisible dims
	}
	for _, sz := range sizes {
		a := randMat(rng, sz.m, sz.k)
		b := randMat(rng, sz.k, sz.n)
		at := randMat(rng, sz.k, sz.m)
		bt := randMat(rng, sz.n, sz.k)
		x := randMat(rng, 1, sz.k).Reshape(sz.k)

		var seqMM, seqT1, seqT2, seqMV *Tensor
		withWorkers(t, 1, func() {
			seqMM = MatMul(a, b)
			seqT1 = MatMulT1(at, b)
			seqT2 = MatMulT2(a, bt)
			seqMV = MatVec(a, x)
		})
		for _, w := range []int{2, 4, 8} {
			withWorkers(t, w, func() {
				if !AllClose(MatMul(a, b), seqMM, 0) {
					t.Errorf("MatMul %dx%dx%d: parallel(w=%d) != sequential", sz.m, sz.k, sz.n, w)
				}
				if !AllClose(MatMulT1(at, b), seqT1, 0) {
					t.Errorf("MatMulT1 %dx%dx%d: parallel(w=%d) != sequential", sz.m, sz.k, sz.n, w)
				}
				if !AllClose(MatMulT2(a, bt), seqT2, 0) {
					t.Errorf("MatMulT2 %dx%dx%d: parallel(w=%d) != sequential", sz.m, sz.k, sz.n, w)
				}
				if !AllClose(MatVec(a, x), seqMV, 0) {
					t.Errorf("MatVec %dx%d: parallel(w=%d) != sequential", sz.m, sz.k, w)
				}
			})
		}
	}
}

func TestParallelElementwiseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	// Above the elementwise cutoff so the parallel path engages.
	n := elemwiseParallelLen * 2
	a := randMat(rng, n/64, 64)
	b := randMat(rng, n/64, 64)
	var want [6]*Tensor
	withWorkers(t, 1, func() {
		want[0] = Add(a, b)
		want[1] = Sub(a, b)
		want[2] = Mul(a, b)
		want[3] = Scale(a, 1.7)
		want[4] = Map(a, func(x float64) float64 { return x * x })
		want[5] = SoftmaxRows(a)
	})
	withWorkers(t, 4, func() {
		got := [6]*Tensor{
			Add(a, b), Sub(a, b), Mul(a, b), Scale(a, 1.7),
			Map(a, func(x float64) float64 { return x * x }), SoftmaxRows(a),
		}
		names := [6]string{"Add", "Sub", "Mul", "Scale", "Map", "SoftmaxRows"}
		for i := range got {
			if !AllClose(got[i], want[i], 0) {
				t.Errorf("%s: parallel != sequential", names[i])
			}
		}
		// In-place variants.
		ip := a.Clone()
		AddInPlace(ip, b)
		if !AllClose(ip, want[0], 0) {
			t.Error("AddInPlace: parallel != sequential")
		}
		axpyWant := Add(a, Scale(b, 0.5))
		ip = a.Clone()
		AxpyInPlace(ip, 0.5, b)
		if !AllClose(ip, axpyWant, 1e-15) {
			t.Error("AxpyInPlace: parallel mismatch")
		}
		if !AllClose(SumAxis1(a), SumAxis1(a.Clone()), 0) {
			t.Error("SumAxis1 not deterministic")
		}
	})
}

func TestTransposeBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	// Sizes exercising partial tiles on both axes.
	for _, sz := range []struct{ r, c int }{{1, 1}, {7, 3}, {32, 32}, {33, 65}, {100, 47}} {
		a := randMat(rng, sz.r, sz.c)
		at := Transpose(a)
		if at.Rows() != sz.c || at.Cols() != sz.r {
			t.Fatalf("Transpose shape %v, want [%d %d]", at.Shape(), sz.c, sz.r)
		}
		for i := 0; i < sz.r; i++ {
			for j := 0; j < sz.c; j++ {
				if at.At2(j, i) != a.At2(i, j) {
					t.Fatalf("Transpose(%d,%d) mismatch", i, j)
				}
			}
		}
	}
}

func TestTransposeCountsBytes(t *testing.T) {
	// A transpose does no arithmetic; it reports byte traffic instead of
	// FLOPs so the op ledger stays comparable across revisions.
	ops, bytes := countMeter(func() { Transpose(Ones(8, 16)) })
	if ops != 0 {
		t.Errorf("Transpose reported %d FLOPs, want 0", ops)
	}
	if bytes != 16*8*16 {
		t.Errorf("Transpose reported %d bytes, want %d", bytes, 16*8*16)
	}
}

func TestWorkspacePooling(t *testing.T) {
	ws := NewWorkspace()
	f := ws.Floats(100)
	if len(f) != 100 {
		t.Fatalf("Floats len %d", len(f))
	}
	for i := range f {
		f[i] = 7
	}
	m := ws.Tensor(4, 5)
	if m.Rows() != 4 || m.Cols() != 5 {
		t.Fatalf("workspace tensor shape %v", m.Shape())
	}
	m.Fill(3)
	ws.Release()

	// Recycled buffers must come back zeroed.
	ws2 := NewWorkspace()
	defer ws2.Release()
	f2 := ws2.Floats(100)
	for i, v := range f2 {
		if v != 0 {
			t.Fatalf("recycled float buffer dirty at %d: %v", i, v)
		}
	}
	m2 := ws2.Tensor(4, 5)
	for _, v := range m2.Data() {
		if v != 0 {
			t.Fatal("recycled workspace tensor dirty")
		}
	}
}

func TestWorkspaceHugeRequest(t *testing.T) {
	ws := NewWorkspace()
	defer ws.Release()
	// Beyond the largest pool class: must still work (plain allocation).
	huge := ws.Floats(1<<maxClassBits + 1)
	if len(huge) != 1<<maxClassBits+1 {
		t.Fatal("huge request wrong length")
	}
}
