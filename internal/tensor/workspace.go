package tensor

import (
	"math/bits"
	"sync"
)

// Scratch-buffer pooling. The hot paths of the GNN forward/backward and the
// fused graph kernels need short-lived float64 buffers (edge counts,
// assembly templates, backward intermediates) on every call; allocating
// them fresh dominated the allocation profile of BenchmarkGNNForward.
// Buffers are pooled in power-of-two size classes and handed out through a
// Workspace, which tracks everything it lent so one Release returns the
// lot. The pools traffic in *[]float64 and the Workspace retains those
// pointers, so a full lend/release cycle allocates nothing.

// Size classes cover 2^5 .. 2^22 elements. Requests outside the range are
// allocated directly and dropped on Release (they are rare and huge, and
// pinning them in a pool would hold memory hostage).
const (
	minClassBits = 5
	maxClassBits = 22
	numClasses   = maxClassBits - minClassBits + 1
)

var (
	floatPools [numClasses]sync.Pool
	wsPool     = sync.Pool{New: func() any { return &Workspace{} }}
)

// classFor returns the pool class index for a request of n elements, or -1
// when the request falls outside the pooled range.
func classFor(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b < minClassBits {
		b = minClassBits
	}
	if b > maxClassBits {
		return -1
	}
	return b - minClassBits
}

func getFloats(n int) *[]float64 {
	c := classFor(n)
	if c < 0 {
		s := make([]float64, n)
		return &s
	}
	if v := floatPools[c].Get(); v != nil {
		p := v.(*[]float64)
		s := (*p)[:n]
		for i := range s {
			s[i] = 0
		}
		*p = s
		return p
	}
	s := make([]float64, n, 1<<(c+minClassBits))
	return &s
}

func putFloats(p *[]float64) {
	if c := classFor(cap(*p)); c >= 0 && cap(*p) == 1<<(c+minClassBits) {
		floatPools[c].Put(p)
	}
}

// Workspace lends pooled scratch buffers and tensors. Everything obtained
// from a Workspace is valid only until its Release; retaining a buffer or
// tensor past Release (or returning one to a caller) is a use-after-free
// class bug — copy the data out instead. Workspaces themselves are pooled:
// the steady-state cost of NewWorkspace + Release is zero allocations.
//
// A Workspace is not safe for concurrent use; give each goroutine its own.
type Workspace struct {
	floats  []*[]float64
	tensors []*Tensor
}

// NewWorkspace returns a workspace from the pool.
func NewWorkspace() *Workspace {
	return wsPool.Get().(*Workspace)
}

// Floats lends a zeroed []float64 of length n.
func (w *Workspace) Floats(n int) []float64 {
	p := getFloats(n)
	w.floats = append(w.floats, p)
	return *p
}

// Tensor lends a zeroed tensor with pooled backing storage.
func (w *Workspace) Tensor(shape ...int) *Tensor {
	n := checkShape(shape)
	t := &Tensor{data: w.Floats(n)}
	t.setShape(shape)
	w.tensors = append(w.tensors, t)
	return t
}

// Release returns every lent buffer (and the workspace itself) to the
// pools. The workspace must not be used afterwards.
func (w *Workspace) Release() {
	for i, p := range w.floats {
		putFloats(p)
		w.floats[i] = nil
	}
	for i, t := range w.tensors {
		t.data = nil
		w.tensors[i] = nil
	}
	w.floats = w.floats[:0]
	w.tensors = w.tensors[:0]
	wsPool.Put(w)
}
