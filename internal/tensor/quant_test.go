package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantizeRowsRoundTrip pins the reconstruction error bound of the
// per-row affine: every element comes back within half a quantization
// step of the original, and the row extremes reconstruct exactly (max up
// to float32 rounding of the affine).
func TestQuantizeRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandN(rng, 1, 17, 23)
	q := QuantizeRows(m)
	if q.Rows() != 17 || q.Cols() != 23 || q.DType() != I8 {
		t.Fatalf("shape/dtype: %d×%d %v", q.Rows(), q.Cols(), q.DType())
	}
	dst := make([]float64, 23)
	dst32 := make([]float32, 23)
	for i := 0; i < 17; i++ {
		row := m.Row(i)
		mn, mx := row[0], row[0]
		for _, v := range row {
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
		}
		step := (mx - mn) / 255
		q.DequantRow(i, dst32)
		q.DequantRowF64(i, dst)
		for j, v := range row {
			if err := math.Abs(dst[j] - v); err > step/2+1e-6 {
				t.Fatalf("row %d col %d: |%.9f - %.9f| = %.2e exceeds step/2 = %.2e", i, j, dst[j], v, err, step/2)
			}
			if float64(dst32[j]) != dst[j] {
				t.Fatalf("row %d col %d: f32 and f64 dequant disagree: %v vs %v", i, j, dst32[j], dst[j])
			}
		}
	}
}

// TestQuantizeRowsConstantRow pins exact reconstruction of spread-free
// rows (scale 0): all-zero padding rows must come back bit-exact.
func TestQuantizeRowsConstantRow(t *testing.T) {
	m := New(2, 5)
	for j := 0; j < 5; j++ {
		m.Set2(1, j, 3.25)
	}
	q := QuantizeRows(m)
	dst := make([]float64, 5)
	q.DequantRowF64(0, dst)
	for j, v := range dst {
		if v != 0 {
			t.Fatalf("zero row col %d reconstructed as %v", j, v)
		}
	}
	q.DequantRowF64(1, dst)
	for j, v := range dst {
		if v != 3.25 {
			t.Fatalf("constant row col %d reconstructed as %v", j, v)
		}
	}
	if s, _ := q.RowScale(0); s != 0 {
		t.Errorf("zero row scale = %v", s)
	}
}

// TestQuantizedDistancesMatchDequant pins that the fused L2DistSq/Dot
// kernels equal the same computation over an explicitly dequantized row.
func TestQuantizedDistancesMatchDequant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandN(rng, 1, 6, 16)
	q := QuantizeRows(m)
	x := make([]float32, 16)
	for j := range x {
		x[j] = float32(rng.NormFloat64())
	}
	row := make([]float32, 16)
	for i := 0; i < 6; i++ {
		q.DequantRow(i, row)
		var l2, dot float32
		for j := range row {
			d := row[j] - x[j]
			l2 += d * d
			dot += row[j] * x[j]
		}
		if got := q.L2DistSq(i, x); math.Abs(float64(got-l2)) > 1e-4 {
			t.Errorf("row %d: L2DistSq %v != reference %v", i, got, l2)
		}
		if got := q.Dot(i, x); math.Abs(float64(got-dot)) > 1e-4 {
			t.Errorf("row %d: Dot %v != reference %v", i, got, dot)
		}
	}
}

// TestQuantizedMemBytes pins the 8× storage reduction claim: the int8
// representation of a large-enough matrix must be under a fifth of the
// float64 bytes (1/8 for codes plus per-row affine overhead).
func TestQuantizedMemBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := RandN(rng, 1, 64, 128)
	q := QuantizeRows(m)
	f64Bytes := m.Size() * 8
	if q.MemBytes()*5 >= f64Bytes {
		t.Errorf("quantized %d bytes vs float64 %d bytes — expected <1/5", q.MemBytes(), f64Bytes)
	}
}
