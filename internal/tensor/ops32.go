package tensor

import (
	"fmt"

	"edgekg/internal/parallel"
	"edgekg/internal/tensor/kernels"
)

// MatMul32 returns the matrix product a·b of two 2-D float32 tensors,
// dispatching to the f32 twin of the active backend. The parallel split
// and FLOP accounting mirror the float64 MatMul — FLOPs count
// operations, not bytes, so the Table-I trajectory stays comparable
// across widths.
func MatMul32(a, b *Tensor32) *Tensor32 {
	a.must2D("MatMul32")
	b.must2D("MatMul32")
	m, k := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul32 inner dim mismatch %v · %v", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New32(m, n)
	bk := kernels.Active32()
	worker := func(lo, hi int) { bk.MatMul(a.data, b.data, out.data, k, n, lo, hi) }
	if 2*m*n*k >= matmulParallelFlops {
		parallel.For(m, matmulGrain(2*n*k), worker)
	} else {
		worker(0, m)
	}
	countOps(2 * m * n * k)
	return out
}
