package tensor_test

// Kernel conformance harness: every registered backend is driven through
// the shared shape/payload grid in kernels/table.go and pinned to the
// scalar reference. Order-preserving kernels must match bit-for-bit
// (NaN payloads compare NaN-to-NaN); reassociating reductions must sit
// inside the condition-aware budget of kernels.CompareAccum. The fused
// autograd ops reuse the same grid in internal/autograd's backend
// conformance test, so a backend that passes here and there is safe to
// enable for the whole model.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/tensor/kernels"
)

// scalarRef returns the always-registered reference backend.
func scalarRef(t testing.TB) kernels.Backend {
	t.Helper()
	sc, ok := kernels.Get("scalar")
	if !ok {
		t.Fatal("scalar reference backend not registered")
	}
	return sc
}

// fill produces a deterministic payload for (payload, seed).
func fill(p kernels.Payload, seed int64, n int) []float64 {
	buf := make([]float64, n)
	p.Fill(rand.New(rand.NewSource(seed)), buf)
	return buf
}

// requireExact pins got to ref bit-for-bit (NaN matches NaN).
func requireExact(t *testing.T, ctx string, ref, got []float64) {
	t.Helper()
	for i := range ref {
		if err := kernels.CompareExact(ref[i], got[i]); err != nil {
			t.Fatalf("%s: element %d: %v", ctx, i, err)
		}
	}
}

// absTermDot returns Σ|x[i]·y[i]| for the reassociation budget.
func absTermDot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += math.Abs(x[i] * y[i])
	}
	return s
}

// absTermSum returns Σ|x[i]|.
func absTermSum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// TestElementwiseConformance pins the order-preserving vector kernels of
// every backend to the scalar reference, including exact-aliased dst and
// special-value payloads.
func TestElementwiseConformance(t *testing.T) {
	sc := scalarRef(t)
	alphas := []float64{0, 1, -1, 0.37, -2.5e3, math.Inf(1), math.NaN()}
	for _, name := range kernels.Names() {
		bk, _ := kernels.Get(name)
		for _, p := range kernels.ConformancePayloads {
			for li, n := range kernels.ConformanceLens {
				seed := int64(li + 1)
				x := fill(p, seed, n)
				y := fill(p, seed+1000, n)
				base := fill(p, seed+2000, n)
				ctx := fmt.Sprintf("%s/%s/n=%d", name, p.Name, n)

				ref, got := make([]float64, n), make([]float64, n)
				sc.Add(x, y, ref)
				bk.Add(x, y, got)
				requireExact(t, ctx+"/Add", ref, got)

				sc.Sub(x, y, ref)
				bk.Sub(x, y, got)
				requireExact(t, ctx+"/Sub", ref, got)

				sc.Mul(x, y, ref)
				bk.Mul(x, y, got)
				requireExact(t, ctx+"/Mul", ref, got)

				copy(ref, base)
				copy(got, base)
				sc.MulAcc(x, y, ref)
				bk.MulAcc(x, y, got)
				requireExact(t, ctx+"/MulAcc", ref, got)

				for _, a := range alphas {
					actx := fmt.Sprintf("%s/alpha=%v", ctx, a)
					copy(ref, base)
					copy(got, base)
					sc.ScaledMulAcc(a, x, y, ref)
					bk.ScaledMulAcc(a, x, y, got)
					requireExact(t, actx+"/ScaledMulAcc", ref, got)

					copy(ref, base)
					copy(got, base)
					sc.Axpy(a, x, ref)
					bk.Axpy(a, x, got)
					requireExact(t, actx+"/Axpy", ref, got)

					sc.Scale(a, x, ref)
					bk.Scale(a, x, got)
					requireExact(t, actx+"/Scale", ref, got)
				}

				// Exact aliasing: dst is x, then dst is y. The reference
				// runs on copies with the same aliasing pattern.
				refX, gotX := append([]float64(nil), x...), append([]float64(nil), x...)
				sc.Add(refX, y, refX)
				bk.Add(gotX, y, gotX)
				requireExact(t, ctx+"/Add(dst=x)", refX, gotX)

				refY, gotY := append([]float64(nil), y...), append([]float64(nil), y...)
				sc.Mul(x, refY, refY)
				bk.Mul(x, gotY, gotY)
				requireExact(t, ctx+"/Mul(dst=y)", refY, gotY)

				refS, gotS := append([]float64(nil), x...), append([]float64(nil), x...)
				sc.Scale(-1.5, refS, refS)
				bk.Scale(-1.5, gotS, gotS)
				requireExact(t, ctx+"/Scale(dst=x)", refS, gotS)
			}
		}
	}
}

// TestReduceConformance pins the reassociating reductions to the scalar
// reference within the n·ε·Σ|terms| budget, and the order-preserving
// SumAxis0 sweep bit-for-bit.
func TestReduceConformance(t *testing.T) {
	sc := scalarRef(t)
	for _, name := range kernels.Names() {
		bk, _ := kernels.Get(name)
		for _, p := range kernels.ConformancePayloads {
			for li, n := range kernels.ConformanceLens {
				seed := int64(100*li + 7)
				x := fill(p, seed, n)
				y := fill(p, seed+1, n)
				ctx := fmt.Sprintf("%s/%s/n=%d", name, p.Name, n)

				if err := kernels.CompareAccum(sc.Dot(x, y), bk.Dot(x, y), n, absTermDot(x, y)); err != nil {
					t.Fatalf("%s/Dot: %v", ctx, err)
				}
				if err := kernels.CompareAccum(sc.Norm2Sq(x), bk.Norm2Sq(x), n, absTermDot(x, x)); err != nil {
					t.Fatalf("%s/Norm2Sq: %v", ctx, err)
				}
				if err := kernels.CompareAccum(sc.Sum(x), bk.Sum(x), n, absTermSum(x)); err != nil {
					t.Fatalf("%s/Sum: %v", ctx, err)
				}
			}
			for di, dm := range kernels.ConformanceDims {
				r, c := dm.M, dm.N
				m := fill(p, int64(1000+di), r*c)
				ctx := fmt.Sprintf("%s/%s/%dx%d", name, p.Name, r, c)

				ref, got := make([]float64, c), make([]float64, c)
				sc.SumAxis0(m, ref, r, c)
				bk.SumAxis0(m, got, r, c)
				requireExact(t, ctx+"/SumAxis0", ref, got)

				refR, gotR := make([]float64, r), make([]float64, r)
				sc.SumAxis1(m, refR, c, 0, r)
				bk.SumAxis1(m, gotR, c, 0, r)
				for i := 0; i < r; i++ {
					row := m[i*c : (i+1)*c]
					if err := kernels.CompareAccum(refR[i], gotR[i], c, absTermSum(row)); err != nil {
						t.Fatalf("%s/SumAxis1 row %d: %v", ctx, i, err)
					}
				}
			}
		}
	}
}

// TestMatMulConformance drives the matmul family of every backend through
// the geometry grid: MatMul/MatMulT1 are pinned bit-for-bit, MatMulT2 and
// MatVec per-element within the k-term reduction budget. Partial [lo, hi)
// ranges verify the worker-split contract: rows outside the range must not
// be touched.
func TestMatMulConformance(t *testing.T) {
	sc := scalarRef(t)
	const sentinel = -777.25
	for _, name := range kernels.Names() {
		bk, _ := kernels.Get(name)
		for _, p := range kernels.ConformancePayloads {
			for di, dm := range kernels.ConformanceDims {
				m, k, n := dm.M, dm.K, dm.N
				seed := int64(10_000*di + 13)
				a := fill(p, seed, m*k)
				b := fill(p, seed+1, k*n)
				at := fill(p, seed+2, k*m) // (k×m) operand for T1
				bt := fill(p, seed+3, n*k) // (n×k) operand for T2
				xv := fill(p, seed+4, k)
				ctx := fmt.Sprintf("%s/%s/%dx%dx%d", name, p.Name, m, k, n)

				ref, got := make([]float64, m*n), make([]float64, m*n)
				sc.MatMul(a, b, ref, k, n, 0, m)
				bk.MatMul(a, b, got, k, n, 0, m)
				requireExact(t, ctx+"/MatMul", ref, got)

				for i := range ref {
					ref[i], got[i] = 0, 0
				}
				sc.MatMulT1(at, b, ref, k, m, n, 0, m)
				bk.MatMulT1(at, b, got, k, m, n, 0, m)
				requireExact(t, ctx+"/MatMulT1", ref, got)

				sc.MatMulT2(a, bt, ref, k, n, 0, m)
				bk.MatMulT2(a, bt, got, k, n, 0, m)
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						arow := a[i*k : (i+1)*k]
						brow := bt[j*k : (j+1)*k]
						if err := kernels.CompareAccum(ref[i*n+j], got[i*n+j], k, absTermDot(arow, brow)); err != nil {
							t.Fatalf("%s/MatMulT2 [%d,%d]: %v", ctx, i, j, err)
						}
					}
				}

				refV, gotV := make([]float64, m), make([]float64, m)
				sc.MatVec(a, xv, refV, k, 0, m)
				bk.MatVec(a, xv, gotV, k, 0, m)
				for i := 0; i < m; i++ {
					arow := a[i*k : (i+1)*k]
					if err := kernels.CompareAccum(refV[i], gotV[i], k, absTermDot(arow, xv)); err != nil {
						t.Fatalf("%s/MatVec [%d]: %v", ctx, i, err)
					}
				}

				// Partial range: rows outside [1, m) keep their sentinel.
				if m >= 2 {
					for i := range got {
						got[i] = sentinel
					}
					for j := n; j < len(got); j++ {
						got[j] = 0 // rows in range start zeroed, as New() guarantees
					}
					bk.MatMul(a, b, got, k, n, 1, m)
					for j := 0; j < n; j++ {
						if got[j] != sentinel {
							t.Fatalf("%s/MatMul lo=1 wrote out-of-range element %d", ctx, j)
						}
					}
					for i := range ref {
						ref[i] = 0
					}
					sc.MatMul(a, b, ref, k, n, 1, m)
					requireExact(t, ctx+"/MatMul[1:]", ref[n:], got[n:])
				}
			}
		}
	}
}

// FuzzMatMulBackends cross-checks every backend's matmul family against
// the scalar reference on fuzz-chosen shapes and payloads.
func FuzzMatMulBackends(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint8(4), uint8(5))
	f.Add([]byte{0xff, 0x0f, 0x80, 0x42}, uint8(1), uint8(1), uint8(1))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0x7f}, uint8(7), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, mm, kk, nn uint8) {
		m, k, n := int(mm%12), int(kk%12), int(nn%12)
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		bt := make([]float64, n*k)
		kernels.FillFuzz(a, raw)
		if len(raw) > 1 {
			kernels.FillFuzz(b, raw[1:])
			kernels.FillFuzz(bt, raw[1:])
		} else {
			kernels.FillFuzz(b, raw)
			kernels.FillFuzz(bt, raw)
		}
		sc, _ := kernels.Get("scalar")
		for _, name := range kernels.Names() {
			if name == "scalar" {
				continue
			}
			bk, _ := kernels.Get(name)
			ref, got := make([]float64, m*n), make([]float64, m*n)
			sc.MatMul(a, b, ref, k, n, 0, m)
			bk.MatMul(a, b, got, k, n, 0, m)
			for i := range ref {
				if err := kernels.CompareExact(ref[i], got[i]); err != nil {
					t.Fatalf("%s/MatMul(%d,%d,%d) element %d: %v", name, m, k, n, i, err)
				}
			}
			sc.MatMulT2(a, bt, ref, k, n, 0, m)
			bk.MatMulT2(a, bt, got, k, n, 0, m)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					if err := kernels.CompareAccum(ref[i*n+j], got[i*n+j], k,
						absTermDot(a[i*k:(i+1)*k], bt[j*k:(j+1)*k])); err != nil {
						t.Fatalf("%s/MatMulT2(%d,%d,%d) [%d,%d]: %v", name, m, k, n, i, j, err)
					}
				}
			}
		}
	})
}

// FuzzReduceBackends cross-checks the reassociating reductions against the
// scalar reference on fuzz-chosen lengths and payloads.
func FuzzReduceBackends(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(33))
	f.Add([]byte{0x80, 0, 0, 0, 0, 0, 0xf0, 0x7f}, uint16(9))
	f.Fuzz(func(t *testing.T, raw []byte, ln uint16) {
		n := int(ln % 600)
		x := make([]float64, n)
		y := make([]float64, n)
		kernels.FillFuzz(x, raw)
		if len(raw) > 2 {
			kernels.FillFuzz(y, raw[2:])
		} else {
			kernels.FillFuzz(y, raw)
		}
		sc, _ := kernels.Get("scalar")
		for _, name := range kernels.Names() {
			if name == "scalar" {
				continue
			}
			bk, _ := kernels.Get(name)
			if err := kernels.CompareAccum(sc.Dot(x, y), bk.Dot(x, y), n, absTermDot(x, y)); err != nil {
				t.Fatalf("%s/Dot n=%d: %v", name, n, err)
			}
			if err := kernels.CompareAccum(sc.Sum(x), bk.Sum(x), n, absTermSum(x)); err != nil {
				t.Fatalf("%s/Sum n=%d: %v", name, n, err)
			}
			if err := kernels.CompareAccum(sc.Norm2Sq(x), bk.Norm2Sq(x), n, absTermDot(x, x)); err != nil {
				t.Fatalf("%s/Norm2Sq n=%d: %v", name, n, err)
			}
		}
	})
}
