package tensor

// Property-based tests for Workspace reuse: whatever garbage a previous
// borrower left behind, re-acquired buffers must come back fully zeroed,
// live buffers must never alias each other, and the guarantees must hold
// identically under every kernel backend (backends write through the same
// pooled storage on the hot paths, so a stale-data leak here would show up
// as silent cross-request corruption in the serving tier).

import (
	"math"
	"math/rand"
	"testing"

	"edgekg/internal/tensor/kernels"
)

// dirtySizes spans the pooled size classes (2^5..2^22), both class
// boundaries and interior lengths, plus out-of-range sizes that bypass the
// pool entirely.
var dirtySizes = []int{1, 31, 32, 33, 100, 1024, 4095, 4096, 1 << 12, 1<<22 + 1}

func requireAllZero(t *testing.T, ctx string, s []float64) {
	t.Helper()
	for i, v := range s {
		if v != 0 || math.Signbit(v) {
			t.Fatalf("%s: element %d = %v (%#x), want +0", ctx, i, v, math.Float64bits(v))
		}
	}
}

// TestWorkspaceReuseZeroed hammers the acquire→pollute→release cycle with
// random sizes and checks every re-acquired buffer is zeroed, including
// NaN/Inf pollution left by a previous borrower.
func TestWorkspaceReuseZeroed(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	poisons := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 1e300, math.SmallestNonzeroFloat64}
	for round := 0; round < 200; round++ {
		ws := NewWorkspace()
		n := dirtySizes[rng.Intn(len(dirtySizes))]
		if rng.Intn(2) == 0 {
			n = 1 + rng.Intn(5000)
		}
		buf := ws.Floats(n)
		requireAllZero(t, "acquired buffer", buf)
		for i := range buf {
			buf[i] = poisons[rng.Intn(len(poisons))]
		}
		tens := ws.Tensor(1+rng.Intn(40), 1+rng.Intn(40))
		requireAllZero(t, "acquired tensor", tens.Data())
		for i, d := 0, tens.Data(); i < len(d); i++ {
			d[i] = poisons[rng.Intn(len(poisons))]
		}
		ws.Release()
	}
	// After all that pollution, fresh acquisitions must still be clean.
	ws := NewWorkspace()
	defer ws.Release()
	for _, n := range dirtySizes {
		requireAllZero(t, "post-pollution acquire", ws.Floats(n))
	}
}

// TestWorkspaceNoAliasing verifies that buffers lent by one workspace (and
// by concurrent workspaces on other goroutines) never share storage:
// writing a distinct tag into each buffer must survive every other write.
func TestWorkspaceNoAliasing(t *testing.T) {
	ws := NewWorkspace()
	defer ws.Release()
	bufs := make([][]float64, 0, 16)
	for i := 0; i < 16; i++ {
		bufs = append(bufs, ws.Floats(64+i))
	}
	for tag, b := range bufs {
		for i := range b {
			b[i] = float64(tag + 1)
		}
	}
	for tag, b := range bufs {
		for i, v := range b {
			if v != float64(tag+1) {
				t.Fatalf("buffer %d element %d overwritten to %v: buffers alias", tag, i, v)
			}
		}
	}

	// Concurrent workspaces: each goroutine tags its own buffers and
	// verifies them; run with -race this also checks pool synchronisation.
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for round := 0; round < 50; round++ {
				w := NewWorkspace()
				a := w.Floats(256)
				b := w.Floats(256)
				for i := range a {
					a[i] = float64(g)
					b[i] = float64(-g - 1)
				}
				for i := range a {
					if a[i] != float64(g) || b[i] != float64(-g-1) {
						w.Release()
						done <- errAliased
						return
					}
				}
				w.Release()
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errAliased = errorString("workspace buffers aliased across goroutines")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestWorkspaceReuseAcrossBackends runs real backend kernels out of pooled
// buffers under every backend and checks that reuse stays clean: results
// must not change because a buffer was previously used by a different
// backend's kernels.
func TestWorkspaceReuseAcrossBackends(t *testing.T) {
	const n = 513 // straddles the 512 class boundary, exercises asm tails
	rng := rand.New(rand.NewSource(72))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = x[i] + y[i]
	}
	for round := 0; round < 4; round++ {
		for _, name := range kernels.Names() {
			restore, err := kernels.Use(name)
			if err != nil {
				t.Fatal(err)
			}
			ws := NewWorkspace()
			dst := ws.Floats(n)
			requireAllZero(t, name+" acquired", dst)
			kernels.Active().Add(x, y, dst)
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("%s round %d: element %d = %v, want %v (stale pooled data?)", name, round, i, dst[i], want[i])
				}
			}
			// Leave the buffer dirty on purpose; the next backend must see
			// zeros anyway.
			ws.Release()
			restore()
		}
	}
}
