package tensor

import "fmt"

// MatMul returns the matrix product a·b of two 2-D tensors.
// a is (m×k), b is (k×n), the result is (m×n).
func MatMul(a, b *Tensor) *Tensor {
	a.must2D("MatMul")
	b.must2D("MatMul")
	m, k := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %v · %v", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New(m, n)
	// i-k-j loop order keeps the inner loop streaming over contiguous rows
	// of b and out, which matters even at the small sizes used here.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	countOps(2 * m * n * k)
	return out
}

// MatMulT1 returns aᵀ·b, where a is (k×m) and b is (k×n); result is (m×n).
// It avoids materialising the transpose.
func MatMulT1(a, b *Tensor) *Tensor {
	a.must2D("MatMulT1")
	b.must2D("MatMulT1")
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulT1 inner dim mismatch %v ᵀ· %v", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	countOps(2 * m * n * k)
	return out
}

// MatMulT2 returns a·bᵀ, where a is (m×k) and b is (n×k); result is (m×n).
// It avoids materialising the transpose.
func MatMulT2(a, b *Tensor) *Tensor {
	a.must2D("MatMulT2")
	b.must2D("MatMulT2")
	m, k := a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulT2 inner dim mismatch %v · %v ᵀ", a.shape, b.shape))
	}
	n := b.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	countOps(2 * m * n * k)
	return out
}

// Transpose returns the transpose of a 2-D tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	a.must2D("Transpose")
	r, c := a.shape[0], a.shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.data[j*r+i] = a.data[i*c+j]
		}
	}
	return out
}

// MatVec returns the matrix-vector product a·x, where a is (m×k) and x has
// k elements; the result is a 1-D tensor of m elements.
func MatVec(a, x *Tensor) *Tensor {
	a.must2D("MatVec")
	m, k := a.shape[0], a.shape[1]
	if x.Size() != k {
		panic(fmt.Sprintf("tensor: MatVec dim mismatch %v · vec[%d]", a.shape, x.Size()))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for p := 0; p < k; p++ {
			s += row[p] * x.data[p]
		}
		out.data[i] = s
	}
	countOps(2 * m * k)
	return out
}

// Outer returns the outer product x·yᵀ of two 1-D tensors as an
// (len(x)×len(y)) matrix.
func Outer(x, y *Tensor) *Tensor {
	m, n := x.Size(), y.Size()
	out := New(m, n)
	for i := 0; i < m; i++ {
		xv := x.data[i]
		row := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = xv * y.data[j]
		}
	}
	countOps(m * n)
	return out
}
