package tensor

import (
	"fmt"

	"edgekg/internal/parallel"
	"edgekg/internal/tensor/kernels"
)

// Parallelism cutoffs. Kernels run on the shared worker pool only above
// these sizes: the models in this system are mostly tiny (GNN width 8), and
// for small operands the fork/join handshake costs more than the kernel.
// Work below the cutoff runs inline on the caller's goroutine, so results
// are identical either way — every parallel kernel decomposes over output
// rows (or disjoint flat ranges), each element is written by exactly one
// worker with the same accumulation order as the sequential loop, and
// outputs are bit-for-bit independent of the worker count.
const (
	// matmulParallelFlops is the minimum 2·m·n·k cost before a matmul
	// family kernel fans out.
	matmulParallelFlops = 1 << 16
	// elemwiseParallelLen is the minimum element count before an
	// elementwise or row-reduction kernel fans out.
	elemwiseParallelLen = 1 << 14
)

// matmulGrain returns the minimum output rows per chunk so each chunk
// carries at least ~matmulParallelFlops/2 of work.
func matmulGrain(rowFlops int) int {
	if rowFlops <= 0 {
		return 1
	}
	g := matmulParallelFlops / (2 * rowFlops)
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul returns the matrix product a·b of two 2-D tensors.
// a is (m×k), b is (k×n), the result is (m×n).
func MatMul(a, b *Tensor) *Tensor {
	a.must2D("MatMul")
	b.must2D("MatMul")
	m, k := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %v · %v", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New(m, n)
	// The active backend runs the i-k-j kernel over each worker's disjoint
	// range of output rows; the inner loop streams over contiguous rows of
	// b and out, which matters even at the small sizes used here.
	bk := kernels.Active()
	worker := func(lo, hi int) { bk.MatMul(a.data, b.data, out.data, k, n, lo, hi) }
	if 2*m*n*k >= matmulParallelFlops {
		parallel.For(m, matmulGrain(2*n*k), worker)
	} else {
		worker(0, m)
	}
	countOps(2 * m * n * k)
	return out
}

// MatMulT1 returns aᵀ·b, where a is (k×m) and b is (k×n); result is (m×n).
// It avoids materialising the transpose.
func MatMulT1(a, b *Tensor) *Tensor {
	a.must2D("MatMulT1")
	b.must2D("MatMulT1")
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulT1 inner dim mismatch %v ᵀ· %v", a.shape, b.shape))
	}
	n := b.shape[1]
	out := New(m, n)
	// Workers own disjoint ranges of output rows (columns of a); the p
	// loop stays outermost inside the kernel so b's rows stream once per
	// worker.
	bk := kernels.Active()
	worker := func(lo, hi int) { bk.MatMulT1(a.data, b.data, out.data, k, m, n, lo, hi) }
	if 2*m*n*k >= matmulParallelFlops {
		parallel.For(m, matmulGrain(2*n*k), worker)
	} else {
		worker(0, m)
	}
	countOps(2 * m * n * k)
	return out
}

// MatMulT2 returns a·bᵀ, where a is (m×k) and b is (n×k); result is (m×n).
// It avoids materialising the transpose.
func MatMulT2(a, b *Tensor) *Tensor {
	a.must2D("MatMulT2")
	b.must2D("MatMulT2")
	m, k := a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulT2 inner dim mismatch %v · %v ᵀ", a.shape, b.shape))
	}
	n := b.shape[0]
	out := New(m, n)
	bk := kernels.Active()
	worker := func(lo, hi int) { bk.MatMulT2(a.data, b.data, out.data, k, n, lo, hi) }
	if 2*m*n*k >= matmulParallelFlops {
		parallel.For(m, matmulGrain(2*n*k), worker)
	} else {
		worker(0, m)
	}
	countOps(2 * m * n * k)
	return out
}

// transposeBlock is the tile edge of the blocked transpose; 32×32 float64
// tiles (8 KiB read + 8 KiB write) sit comfortably in L1.
const transposeBlock = 32

// Transpose returns the transpose of a 2-D tensor as a new tensor. The
// copy is tiled so both the row-major read and the column-major write stay
// within cache-resident blocks, and its cost is reported to the ledger
// like the rest of the matmul family — as byte traffic, since a transpose
// performs no floating-point arithmetic and counting elements as FLOPs
// would skew the cross-PR FLOP trajectory.
func Transpose(a *Tensor) *Tensor {
	a.must2D("Transpose")
	r, c := a.shape[0], a.shape[1]
	out := New(c, r)
	for ii := 0; ii < r; ii += transposeBlock {
		iEnd := ii + transposeBlock
		if iEnd > r {
			iEnd = r
		}
		for jj := 0; jj < c; jj += transposeBlock {
			jEnd := jj + transposeBlock
			if jEnd > c {
				jEnd = c
			}
			for i := ii; i < iEnd; i++ {
				arow := a.data[i*c : (i+1)*c]
				for j := jj; j < jEnd; j++ {
					out.data[j*r+i] = arow[j]
				}
			}
		}
	}
	countBytes(16 * r * c) // 8 bytes read + 8 written per element
	return out
}

// MatVec returns the matrix-vector product a·x, where a is (m×k) and x has
// k elements; the result is a 1-D tensor of m elements.
func MatVec(a, x *Tensor) *Tensor {
	a.must2D("MatVec")
	m, k := a.shape[0], a.shape[1]
	if x.Size() != k {
		panic(fmt.Sprintf("tensor: MatVec dim mismatch %v · vec[%d]", a.shape, x.Size()))
	}
	out := New(m)
	bk := kernels.Active()
	worker := func(lo, hi int) { bk.MatVec(a.data, x.data, out.data, k, lo, hi) }
	if 2*m*k >= matmulParallelFlops {
		parallel.For(m, matmulGrain(2*k), worker)
	} else {
		worker(0, m)
	}
	countOps(2 * m * k)
	return out
}

// Outer returns the outer product x·yᵀ of two 1-D tensors as an
// (len(x)×len(y)) matrix.
func Outer(x, y *Tensor) *Tensor {
	m, n := x.Size(), y.Size()
	out := New(m, n)
	bk := kernels.Active()
	for i := 0; i < m; i++ {
		bk.Scale(x.data[i], y.data, out.data[i*n:(i+1)*n])
	}
	countOps(m * n)
	return out
}
