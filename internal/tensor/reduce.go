package tensor

import (
	"fmt"
	"math"

	"edgekg/internal/parallel"
	"edgekg/internal/tensor/kernels"
)

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := kernels.Active().Sum(t.data)
	countOps(len(t.data))
	return s
}

// Mean returns the arithmetic mean of all elements; 0 for an empty tensor.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the first maximal element of a 1-D tensor.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// SumAxis0 returns the column sums of a matrix as a 1-D tensor of length
// cols.
func SumAxis0(m *Tensor) *Tensor {
	m.must2D("SumAxis0")
	r, c := m.shape[0], m.shape[1]
	out := New(c)
	kernels.Active().SumAxis0(m.data, out.data, r, c)
	countOps(r * c)
	return out
}

// SumAxis1 returns the row sums of a matrix as a 1-D tensor of length rows.
func SumAxis1(m *Tensor) *Tensor {
	m.must2D("SumAxis1")
	r, c := m.shape[0], m.shape[1]
	out := New(r)
	bk := kernels.Active()
	forRows(r, c, func(lo, hi int) {
		bk.SumAxis1(m.data, out.data, c, lo, hi)
	})
	countOps(r * c)
	return out
}

// forRows runs worker over disjoint row ranges of an (r×c) matrix, fanning
// out when the matrix clears the elementwise cutoff. Each row is handled
// by exactly one worker with the sequential per-row accumulation order, so
// results are bit-identical to the sequential loop.
func forRows(r, c int, worker func(lo, hi int)) {
	if r*c >= elemwiseParallelLen && r > 1 {
		grain := elemwiseParallelLen / (2 * c)
		if grain < 1 {
			grain = 1
		}
		parallel.For(r, grain, worker)
	} else {
		worker(0, r)
	}
}

// MeanAxis0 returns the column means of a matrix.
func MeanAxis0(m *Tensor) *Tensor {
	m.must2D("MeanAxis0")
	if m.shape[0] == 0 {
		return New(m.shape[1])
	}
	return ScaleInPlace(SumAxis0(m), 1/float64(m.shape[0]))
}

// VarAxis0 returns the column variances (biased, matching BatchNorm) of a
// matrix.
func VarAxis0(m *Tensor) *Tensor {
	m.must2D("VarAxis0")
	r, c := m.shape[0], m.shape[1]
	if r == 0 {
		return New(c)
	}
	mean := MeanAxis0(m)
	out := New(c)
	for i := 0; i < r; i++ {
		row := m.data[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			d := row[j] - mean.data[j]
			out.data[j] += d * d
		}
	}
	for j := 0; j < c; j++ {
		out.data[j] /= float64(r)
	}
	countOps(3 * r * c)
	return out
}

// ArgMaxRows returns, for each row of a matrix, the index of its maximal
// column.
func ArgMaxRows(m *Tensor) []int {
	m.must2D("ArgMaxRows")
	r, c := m.shape[0], m.shape[1]
	if c == 0 {
		panic("tensor: ArgMaxRows with zero columns")
	}
	out := make([]int, r)
	for i := 0; i < r; i++ {
		row := m.data[i*c : (i+1)*c]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		out[i] = bi
	}
	return out
}

// SoftmaxRows returns the row-wise softmax of a matrix, computed with the
// usual max-shift for numerical stability.
func SoftmaxRows(m *Tensor) *Tensor {
	m.must2D("SoftmaxRows")
	r, c := m.shape[0], m.shape[1]
	out := New(r, c)
	forRows(r, c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.data[i*c : (i+1)*c]
			orow := out.data[i*c : (i+1)*c]
			mx := row[0]
			for _, v := range row[1:] {
				if v > mx {
					mx = v
				}
			}
			s := 0.0
			for j, v := range row {
				e := math.Exp(v - mx)
				orow[j] = e
				s += e
			}
			inv := 1 / s
			for j := range orow {
				orow[j] *= inv
			}
		}
	})
	countOps(5 * r * c)
	return out
}

// LogSumExpRows returns the row-wise log-sum-exp of a matrix as a 1-D
// tensor.
func LogSumExpRows(m *Tensor) *Tensor {
	m.must2D("LogSumExpRows")
	r, c := m.shape[0], m.shape[1]
	out := New(r)
	forRows(r, c, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.data[i*c : (i+1)*c]
			mx := row[0]
			for _, v := range row[1:] {
				if v > mx {
					mx = v
				}
			}
			s := 0.0
			for _, v := range row {
				s += math.Exp(v - mx)
			}
			out.data[i] = mx + math.Log(s)
		}
	})
	countOps(4 * r * c)
	return out
}

// CheckFinite panics with context if any element is NaN or ±Inf. It is a
// debugging aid used by the training loops' assertion mode.
func (t *Tensor) CheckFinite(context string) {
	for i, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("tensor: non-finite value %v at flat index %d in %s (shape %v)", v, i, context, t.shape))
		}
	}
}
