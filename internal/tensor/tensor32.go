package tensor

import "fmt"

// Tensor32 is a dense row-major tensor of float32 values: the storage
// half of the reduced-precision fast path. It deliberately mirrors the
// float64 Tensor's minimal surface (shapes, row access, fill/copy) and
// nothing more — the f32 engine is eval-only, so there is no autograd,
// no gather/scatter, and no random init at this width. Conversions to
// and from the canonical float64 width are explicit (ToF32 / ToF64);
// nothing in the package converts implicitly, which is what keeps the
// f64 default path bit-identical to the pre-precision code.
type Tensor32 struct {
	shape     []int
	data      []float32
	shapeBack [2]int
}

func (t *Tensor32) setShape(shape []int) {
	if len(shape) <= len(t.shapeBack) {
		t.shape = t.shapeBack[:len(shape)]
		copy(t.shape, shape)
	} else {
		t.shape = append([]int(nil), shape...)
	}
}

// New32 returns a zero-filled float32 tensor with the given shape.
func New32(shape ...int) *Tensor32 {
	n := checkShape(shape)
	t := &Tensor32{data: make([]float32, n)}
	t.setShape(shape)
	return t
}

// FromSlice32 wraps data in a Tensor32 with the given shape. The tensor
// takes ownership of data; the caller must not modify it afterwards.
func FromSlice32(data []float32, shape ...int) *Tensor32 {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice32 data length %d does not match shape %v (size %d)", len(data), shape, n))
	}
	t := &Tensor32{data: data}
	t.setShape(shape)
	return t
}

// ToF32 converts a float64 tensor to float32, rounding each element to
// nearest. The conversion is pure bandwidth, so it reports byte traffic
// rather than FLOPs.
func ToF32(t *Tensor) *Tensor32 {
	c := &Tensor32{data: make([]float32, len(t.data))}
	c.setShape(t.shape)
	for i, v := range t.data {
		c.data[i] = float32(v)
	}
	countBytes(len(t.data) * (F64.Bytes() + F32.Bytes()))
	return c
}

// ToF64 widens the tensor back to float64. Widening is exact: every
// float32 is representable as a float64.
func (t *Tensor32) ToF64() *Tensor {
	c := &Tensor{data: make([]float64, len(t.data))}
	c.setShape(t.shape)
	for i, v := range t.data {
		c.data[i] = float64(v)
	}
	countBytes(len(t.data) * (F64.Bytes() + F32.Bytes()))
	return c
}

// DType returns F32.
func (t *Tensor32) DType() DType { return F32 }

// MemBytes returns the resident size of the tensor's backing storage.
func (t *Tensor32) MemBytes() int { return len(t.data) * F32.Bytes() }

// Shape returns the tensor's shape. The returned slice is a copy.
func (t *Tensor32) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor32) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor32) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor32) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor32) Data() []float32 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor32) Clone() *Tensor32 {
	c := &Tensor32{data: make([]float32, len(t.data))}
	c.setShape(t.shape)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal size.
func (t *Tensor32) Reshape(shape ...int) *Tensor32 {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape size %d to %v", len(t.data), shape))
	}
	r := &Tensor32{data: t.data}
	r.setShape(shape)
	return r
}

func (t *Tensor32) must2D(op string) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires a 2-D tensor, have shape %v", op, t.shape))
	}
}

// Rows returns the first dimension of a matrix. It panics if t is not 2-D.
func (t *Tensor32) Rows() int {
	t.must2D("Rows")
	return t.shape[0]
}

// Cols returns the second dimension of a matrix. It panics if t is not 2-D.
func (t *Tensor32) Cols() int {
	t.must2D("Cols")
	return t.shape[1]
}

// Row returns row i of a matrix as a slice into t's backing storage.
func (t *Tensor32) Row(i int) []float32 {
	t.must2D("Row")
	c := t.shape[1]
	if i < 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: row %d out of range for shape %v", i, t.shape))
	}
	return t.data[i*c : (i+1)*c]
}

// At2 returns element (i, j) of a matrix.
func (t *Tensor32) At2(i, j int) float32 {
	t.must2D("At2")
	return t.data[i*t.shape[1]+j]
}

// Set2 stores v at element (i, j) of a matrix.
func (t *Tensor32) Set2(i, j int, v float32) {
	t.must2D("Set2")
	t.data[i*t.shape[1]+j] = v
}

// Fill sets every element of t to v.
func (t *Tensor32) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element of t to 0.
func (t *Tensor32) Zero() { t.Fill(0) }

// CopyFrom copies o's elements into t. Shapes must match.
func (t *Tensor32) CopyFrom(o *Tensor32) {
	if len(t.shape) != len(o.shape) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, o.shape))
		}
	}
	copy(t.data, o.data)
}
