package tensor

import (
	"math"
	"math/rand"
)

// RandN returns a tensor with elements drawn from N(0, stddev²) using rng.
// Passing an explicit *rand.Rand keeps every experiment in the repository
// reproducible from a single seed.
func RandN(rng *rand.Rand, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * stddev
	}
	return t
}

// RandUniform returns a tensor with elements drawn uniformly from [lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// GlorotUniform returns a (fanIn×fanOut) matrix initialised with the
// Glorot/Xavier uniform scheme, the default for the dense sub-layers of the
// hierarchical GNN.
func GlorotUniform(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	limit := glorotLimit(fanIn, fanOut)
	return RandUniform(rng, -limit, limit, fanIn, fanOut)
}

func glorotLimit(fanIn, fanOut int) float64 {
	if fanIn+fanOut == 0 {
		return 0
	}
	return math.Sqrt(6.0 / float64(fanIn+fanOut))
}

// RandUnitVector returns a 1-D tensor of dimension dim uniformly distributed
// on the unit sphere. Node-creation (Fig. 4C) uses it for the replacement
// node's random token embedding.
func RandUnitVector(rng *rand.Rand, dim int) *Tensor {
	for {
		v := RandN(rng, 1, dim)
		n := Norm2(v)
		if n > 1e-12 {
			return ScaleInPlace(v, 1/n)
		}
	}
}

// Shuffle permutes the rows of a 2-D tensor in place using rng, applying
// the same permutation to the optional parallel label slice.
func Shuffle(rng *rand.Rand, m *Tensor, labels []int) {
	m.must2D("Shuffle")
	r, c := m.shape[0], m.shape[1]
	if labels != nil && len(labels) != r {
		panic("tensor: Shuffle labels length mismatch")
	}
	tmp := make([]float64, c)
	rng.Shuffle(r, func(i, j int) {
		ri := m.data[i*c : (i+1)*c]
		rj := m.data[j*c : (j+1)*c]
		copy(tmp, ri)
		copy(ri, rj)
		copy(rj, tmp)
		if labels != nil {
			labels[i], labels[j] = labels[j], labels[i]
		}
	})
}
