package tensor

import "fmt"

// DType identifies the element width of a numeric buffer. The tensor
// package stores float64 (the training/adaptation truth), float32 (the
// inference fast path) and int8 (the quantized frozen token-bank
// representation); every byte-accounting path — the flops ledger, the
// serve memory budget, PageBytes on token banks — sizes buffers through
// DType.Bytes instead of a hardcoded 8.
type DType uint8

const (
	// F64 is IEEE-754 binary64, the canonical width: all trainable state,
	// checkpoints and bit-exact pins live here.
	F64 DType = iota
	// F32 is IEEE-754 binary32, the inference compute width.
	F32
	// I8 is a signed 8-bit quantized code; real values are reconstructed
	// through a per-row affine (scale, min) pair.
	I8
)

// Bytes returns the storage size of one element.
func (d DType) Bytes() int {
	switch d {
	case F64:
		return 8
	case F32:
		return 4
	case I8:
		return 1
	}
	panic(fmt.Sprintf("tensor: unknown DType %d", uint8(d)))
}

// String returns the canonical lowercase name ("f64", "f32", "i8").
func (d DType) String() string {
	switch d {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case I8:
		return "i8"
	}
	return fmt.Sprintf("DType(%d)", uint8(d))
}

// DType returns F64: the classic Tensor is always full width.
func (t *Tensor) DType() DType { return F64 }

// MemBytes returns the resident size of the tensor's backing storage.
func (t *Tensor) MemBytes() int { return len(t.data) * F64.Bytes() }
