package tensor

import (
	"fmt"
	"math"

	"edgekg/internal/parallel"
	"edgekg/internal/tensor/kernels"
)

// forElems runs worker over disjoint subranges covering [0, n), fanning
// out to the shared pool only when the element count clears the
// elementwise cutoff. Each flat index is written by exactly one worker, so
// results are bit-identical to the sequential loop.
func forElems(n int, worker func(lo, hi int)) {
	if n >= elemwiseParallelLen {
		parallel.For(n, elemwiseParallelLen/2, worker)
	} else {
		worker(0, n)
	}
}

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	a.mustSameShape(b, "Add")
	out := New(a.shape...)
	bk := kernels.Active()
	forElems(len(a.data), func(lo, hi int) {
		bk.Add(a.data[lo:hi], b.data[lo:hi], out.data[lo:hi])
	})
	countOps(len(a.data))
	return out
}

// Sub returns a - b elementwise. Shapes must match.
func Sub(a, b *Tensor) *Tensor {
	a.mustSameShape(b, "Sub")
	out := New(a.shape...)
	bk := kernels.Active()
	forElems(len(a.data), func(lo, hi int) {
		bk.Sub(a.data[lo:hi], b.data[lo:hi], out.data[lo:hi])
	})
	countOps(len(a.data))
	return out
}

// Mul returns a * b elementwise (Hadamard product). Shapes must match.
func Mul(a, b *Tensor) *Tensor {
	a.mustSameShape(b, "Mul")
	out := New(a.shape...)
	bk := kernels.Active()
	forElems(len(a.data), func(lo, hi int) {
		bk.Mul(a.data[lo:hi], b.data[lo:hi], out.data[lo:hi])
	})
	countOps(len(a.data))
	return out
}

// Div returns a / b elementwise. Shapes must match.
func Div(a, b *Tensor) *Tensor {
	a.mustSameShape(b, "Div")
	out := New(a.shape...)
	forElems(len(a.data), func(lo, hi int) {
		ad, bd, od := a.data, b.data, out.data
		for i := lo; i < hi; i++ {
			od[i] = ad[i] / bd[i]
		}
	})
	countOps(len(a.data))
	return out
}

// AddInPlace adds b into a elementwise and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	a.mustSameShape(b, "AddInPlace")
	bk := kernels.Active()
	forElems(len(a.data), func(lo, hi int) {
		bk.Add(a.data[lo:hi], b.data[lo:hi], a.data[lo:hi])
	})
	countOps(len(a.data))
	return a
}

// AxpyInPlace computes a += alpha*b and returns a.
func AxpyInPlace(a *Tensor, alpha float64, b *Tensor) *Tensor {
	a.mustSameShape(b, "AxpyInPlace")
	bk := kernels.Active()
	forElems(len(a.data), func(lo, hi int) {
		bk.Axpy(alpha, b.data[lo:hi], a.data[lo:hi])
	})
	countOps(2 * len(a.data))
	return a
}

// Scale returns alpha * a.
func Scale(a *Tensor, alpha float64) *Tensor {
	out := New(a.shape...)
	bk := kernels.Active()
	forElems(len(a.data), func(lo, hi int) {
		bk.Scale(alpha, a.data[lo:hi], out.data[lo:hi])
	})
	countOps(len(a.data))
	return out
}

// ScaleInPlace multiplies a by alpha in place and returns a.
func ScaleInPlace(a *Tensor, alpha float64) *Tensor {
	bk := kernels.Active()
	forElems(len(a.data), func(lo, hi int) {
		bk.Scale(alpha, a.data[lo:hi], a.data[lo:hi])
	})
	countOps(len(a.data))
	return a
}

// AddScalar returns a + alpha elementwise.
func AddScalar(a *Tensor, alpha float64) *Tensor {
	out := New(a.shape...)
	forElems(len(a.data), func(lo, hi int) {
		ad, od := a.data, out.data
		for i := lo; i < hi; i++ {
			od[i] = ad[i] + alpha
		}
	})
	countOps(len(a.data))
	return out
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return Scale(a, -1) }

// AddRow returns m with row vector v added to every row. m must be 2-D and
// len(v) must equal m's column count.
func AddRow(m, v *Tensor) *Tensor {
	m.must2D("AddRow")
	if v.Size() != m.shape[1] {
		panic(fmt.Sprintf("tensor: AddRow vector size %d != cols %d", v.Size(), m.shape[1]))
	}
	out := m.Clone()
	r, c := m.shape[0], m.shape[1]
	bk := kernels.Active()
	for i := 0; i < r; i++ {
		row := out.data[i*c : (i+1)*c]
		bk.Add(row, v.data, row)
	}
	countOps(r * c)
	return out
}

// MulRow returns m with every row multiplied elementwise by row vector v.
func MulRow(m, v *Tensor) *Tensor {
	m.must2D("MulRow")
	if v.Size() != m.shape[1] {
		panic(fmt.Sprintf("tensor: MulRow vector size %d != cols %d", v.Size(), m.shape[1]))
	}
	out := m.Clone()
	r, c := m.shape[0], m.shape[1]
	bk := kernels.Active()
	for i := 0; i < r; i++ {
		row := out.data[i*c : (i+1)*c]
		bk.Mul(row, v.data, row)
	}
	countOps(r * c)
	return out
}

// Map returns a new tensor with f applied to every element. f may be
// invoked concurrently for large tensors and must be a pure function.
func Map(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	forElems(len(a.data), func(lo, hi int) {
		ad, od := a.data, out.data
		for i := lo; i < hi; i++ {
			od[i] = f(ad[i])
		}
	})
	countOps(len(a.data))
	return out
}

// Dot returns the inner product of two tensors of identical shape.
func Dot(a, b *Tensor) float64 {
	a.mustSameShape(b, "Dot")
	s := kernels.Active().Dot(a.data, b.data)
	countOps(2 * len(a.data))
	return s
}

// Norm2 returns the Euclidean norm of a's elements.
func Norm2(a *Tensor) float64 {
	s := kernels.Active().Norm2Sq(a.data)
	countOps(2 * len(a.data))
	return math.Sqrt(s)
}

// L2Distance returns the Euclidean distance between two tensors of the same
// shape. It is the metric Sec. III-D uses for the node convergence test.
func L2Distance(a, b *Tensor) float64 {
	a.mustSameShape(b, "L2Distance")
	s := 0.0
	for i, v := range a.data {
		d := v - b.data[i]
		s += d * d
	}
	countOps(3 * len(a.data))
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of the angle between a and b, or 0
// when either has zero norm.
func CosineSimilarity(a, b *Tensor) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Normalize returns a scaled to unit Euclidean norm. A zero tensor is
// returned unchanged.
func Normalize(a *Tensor) *Tensor {
	n := Norm2(a)
	if n == 0 {
		return a.Clone()
	}
	return Scale(a, 1/n)
}

// Concat concatenates 1-D tensors into one 1-D tensor.
func Concat(ts ...*Tensor) *Tensor {
	n := 0
	for _, t := range ts {
		n += t.Size()
	}
	out := New(n)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += t.Size()
	}
	return out
}

// ConcatCols horizontally concatenates 2-D tensors with equal row counts.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := ts[0].Rows()
	cols := 0
	for _, t := range ts {
		if t.Rows() != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", t.Rows(), rows))
		}
		cols += t.Cols()
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		off := 0
		for _, t := range ts {
			copy(out.data[i*cols+off:], t.Row(i))
			off += t.Cols()
		}
	}
	return out
}

// ConcatRows vertically concatenates 2-D tensors with equal column counts.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := ts[0].Cols()
	rows := 0
	for _, t := range ts {
		if t.Cols() != cols {
			panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", t.Cols(), cols))
		}
		rows += t.Rows()
	}
	out := New(rows, cols)
	off := 0
	for _, t := range ts {
		copy(out.data[off:], t.data)
		off += t.Size()
	}
	return out
}

// SliceRows returns rows [i, j) of a matrix as a copy.
func SliceRows(m *Tensor, i, j int) *Tensor {
	m.must2D("SliceRows")
	if i < 0 || j > m.shape[0] || i > j {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %v", i, j, m.shape))
	}
	c := m.shape[1]
	out := New(j-i, c)
	copy(out.data, m.data[i*c:j*c])
	return out
}

// Gather returns a matrix whose k-th row is m's rows[k]-th row.
func Gather(m *Tensor, rows []int) *Tensor {
	m.must2D("Gather")
	c := m.shape[1]
	out := New(len(rows), c)
	for k, r := range rows {
		if r < 0 || r >= m.shape[0] {
			panic(fmt.Sprintf("tensor: Gather row %d out of range [0,%d)", r, m.shape[0]))
		}
		copy(out.data[k*c:(k+1)*c], m.Row(r))
	}
	return out
}

// ScatterAddRows adds src's k-th row into dst's rows[k]-th row. Rows may
// repeat; contributions accumulate.
func ScatterAddRows(dst *Tensor, rows []int, src *Tensor) {
	dst.must2D("ScatterAddRows")
	src.must2D("ScatterAddRows")
	if src.Rows() != len(rows) || src.Cols() != dst.Cols() {
		panic(fmt.Sprintf("tensor: ScatterAddRows src %v rows %d dst %v", src.shape, len(rows), dst.shape))
	}
	c := dst.shape[1]
	bk := kernels.Active()
	for k, r := range rows {
		if r < 0 || r >= dst.shape[0] {
			panic(fmt.Sprintf("tensor: ScatterAddRows row %d out of range [0,%d)", r, dst.shape[0]))
		}
		drow := dst.data[r*c : (r+1)*c]
		srow := src.data[k*c : (k+1)*c]
		bk.Add(drow, srow, drow)
	}
	countOps(len(rows) * c)
}

// AllClose reports whether a and b have the same shape and all elements
// within tol of one another.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}
