package tensor

import (
	"fmt"
	"math"
)

// QuantizedMatrix is a row-major int8 matrix with a per-row affine
// dequantization pair: element (i, j) reconstructs as
//
//	min[i] + scale[i] · (code + 128)
//
// so code -128 maps to the row minimum and code 127 to the row maximum.
// It is the frozen-side representation of token banks and retrieval
// tables — read-only lookup state that never feeds a gradient — where
// 8 bits per element cuts the resident footprint and memory-bandwidth
// bill to an eighth of the float64 original. Quantization is lossy;
// consumers are pinned by ranking/tolerance harnesses, never bit-exact.
type QuantizedMatrix struct {
	rows, cols int
	data       []int8
	scale      []float32 // per-row step size ((max-min)/255; 0 for constant rows)
	min        []float32 // per-row value of code -128
}

// QuantizeRows quantizes a 2-D float64 tensor row by row to int8 with a
// per-row (scale, min) affine. Rows with no spread (max == min, e.g.
// all-zero padding rows) store scale 0 and reconstruct exactly.
func QuantizeRows(m *Tensor) *QuantizedMatrix {
	m.must2D("QuantizeRows")
	r, c := m.shape[0], m.shape[1]
	q := &QuantizedMatrix{
		rows:  r,
		cols:  c,
		data:  make([]int8, r*c),
		scale: make([]float32, r),
		min:   make([]float32, r),
	}
	for i := 0; i < r; i++ {
		q.quantizeRow(i, m.data[i*c:(i+1)*c])
	}
	countOps(3 * r * c) // min/max sweep + affine encode
	return q
}

func (q *QuantizedMatrix) quantizeRow(i int, row []float64) {
	mn, mx := row[0], row[0]
	for _, v := range row[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	q.min[i] = float32(mn)
	dst := q.data[i*q.cols : (i+1)*q.cols]
	if mx == mn {
		q.scale[i] = 0
		for j := range dst {
			dst[j] = -128
		}
		return
	}
	scale := (mx - mn) / 255
	q.scale[i] = float32(scale)
	inv := 1 / scale
	for j, v := range row {
		code := math.Round((v-mn)*inv) - 128
		if code < -128 {
			code = -128
		} else if code > 127 {
			code = 127
		}
		dst[j] = int8(code)
	}
}

// Rows returns the number of rows.
func (q *QuantizedMatrix) Rows() int { return q.rows }

// Cols returns the number of columns.
func (q *QuantizedMatrix) Cols() int { return q.cols }

// DType returns I8.
func (q *QuantizedMatrix) DType() DType { return I8 }

// MemBytes returns the resident size of codes plus the per-row affine
// parameters.
func (q *QuantizedMatrix) MemBytes() int {
	return len(q.data)*I8.Bytes() + (len(q.scale)+len(q.min))*F32.Bytes()
}

// RowScale returns row i's (scale, min) dequantization pair.
func (q *QuantizedMatrix) RowScale(i int) (scale, min float32) {
	return q.scale[i], q.min[i]
}

// DequantRow reconstructs row i into dst at float32.
func (q *QuantizedMatrix) DequantRow(i int, dst []float32) {
	q.checkRow(i, len(dst))
	codes := q.data[i*q.cols : (i+1)*q.cols]
	s, mn := q.scale[i], q.min[i]
	for j, code := range codes {
		dst[j] = mn + s*float32(int(code)+128)
	}
	countOps(2 * q.cols)
}

// DequantRowF64 reconstructs row i into dst at float64. The affine is
// evaluated at float32 first so both widths reconstruct identical values.
func (q *QuantizedMatrix) DequantRowF64(i int, dst []float64) {
	q.checkRow(i, len(dst))
	codes := q.data[i*q.cols : (i+1)*q.cols]
	s, mn := q.scale[i], q.min[i]
	for j, code := range codes {
		dst[j] = float64(mn + s*float32(int(code)+128))
	}
	countOps(2 * q.cols)
}

// L2DistSq returns the squared Euclidean distance between row i and the
// float32 query x, dequantizing on the fly — the int8 codes are the only
// row-sized memory traffic.
func (q *QuantizedMatrix) L2DistSq(i int, x []float32) float32 {
	q.checkRow(i, len(x))
	codes := q.data[i*q.cols : (i+1)*q.cols]
	s, mn := q.scale[i], q.min[i]
	var acc float32
	for j, code := range codes {
		d := mn + s*float32(int(code)+128) - x[j]
		acc += d * d
	}
	countOps(4 * q.cols)
	return acc
}

// Dot returns the inner product of row i with the float32 query x,
// dequantizing on the fly.
func (q *QuantizedMatrix) Dot(i int, x []float32) float32 {
	q.checkRow(i, len(x))
	codes := q.data[i*q.cols : (i+1)*q.cols]
	s, mn := q.scale[i], q.min[i]
	var acc float32
	for j, code := range codes {
		acc += (mn + s*float32(int(code)+128)) * x[j]
	}
	countOps(4 * q.cols)
	return acc
}

func (q *QuantizedMatrix) checkRow(i, n int) {
	if i < 0 || i >= q.rows {
		panic(fmt.Sprintf("tensor: quantized row %d out of range [0,%d)", i, q.rows))
	}
	if n != q.cols {
		panic(fmt.Sprintf("tensor: quantized row width %d does not match operand length %d", q.cols, n))
	}
}
