package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgekg/internal/flops"
)

func TestNewShapeAndSize(t *testing.T) {
	cases := []struct {
		shape []int
		size  int
	}{
		{[]int{}, 1},
		{[]int{3}, 3},
		{[]int{2, 4}, 8},
		{[]int{2, 3, 4}, 24},
		{[]int{0, 5}, 0},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Size() != c.size {
			t.Errorf("New(%v).Size() = %d, want %d", c.shape, tt.Size(), c.size)
		}
		if tt.Dims() != len(c.shape) {
			t.Errorf("New(%v).Dims() = %d, want %d", c.shape, tt.Dims(), len(c.shape))
		}
	}
}

func TestFromSliceOwnership(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	m := FromSlice(d, 2, 2)
	if m.At2(1, 0) != 3 {
		t.Fatalf("At2(1,0) = %v, want 3", m.At2(1, 0))
	}
	d[2] = 99 // FromSlice takes ownership; mutation is visible
	if m.At2(1, 0) != 99 {
		t.Fatalf("FromSlice should wrap, not copy")
	}
}

func TestFromSliceBadLength(t *testing.T) {
	defer expectPanic(t, "FromSlice length mismatch")
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetMultiDim(t *testing.T) {
	tt := New(2, 3, 4)
	tt.Set(7.5, 1, 2, 3)
	if got := tt.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := tt.Data()[1*12+2*4+3]; got != 7.5 {
		t.Fatalf("row-major layout broken: %v", got)
	}
}

func TestAtOutOfRange(t *testing.T) {
	defer expectPanic(t, "index out of range")
	New(2, 2).At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data()[0] = 42
	if a.Data()[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set2(0, 1, 42)
	if a.At2(0, 1) != 42 {
		t.Fatal("Reshape must share data")
	}
	defer expectPanic(t, "reshape size mismatch")
	a.Reshape(4, 2)
}

func TestAddSubMulDiv(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b); !AllClose(got, Full(5, 2, 2), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b); !AllClose(got, FromSlice([]float64{-3, -1, 1, 3}, 2, 2), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); !AllClose(got, FromSlice([]float64{4, 6, 6, 4}, 2, 2), 0) {
		t.Errorf("Mul = %v", got)
	}
	if got := Div(a, b); !AllClose(got, FromSlice([]float64{0.25, 2.0 / 3, 1.5, 4}, 2, 2), 1e-15) {
		t.Errorf("Div = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Add shape mismatch")
	Add(New(2, 2), New(2, 3))
}

func TestAddRowMulRow(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float64{10, 20, 30}, 3)
	got := AddRow(m, v)
	want := FromSlice([]float64{11, 22, 33, 14, 25, 36}, 2, 3)
	if !AllClose(got, want, 0) {
		t.Errorf("AddRow = %v, want %v", got, want)
	}
	got = MulRow(m, v)
	want = FromSlice([]float64{10, 40, 90, 40, 100, 180}, 2, 3)
	if !AllClose(got, want, 0) {
		t.Errorf("MulRow = %v, want %v", got, want)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !AllClose(got, want, 1e-12) {
		t.Errorf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(rng, 1, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set2(i, i, 1)
	}
	if got := MatMul(a, id); !AllClose(got, a, 1e-12) {
		t.Error("A·I != A")
	}
	if got := MatMul(id, a); !AllClose(got, a, 1e-12) {
		t.Error("I·A != A")
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(rng, 1, 5, 3)
	b := RandN(rng, 1, 5, 4)
	got := MatMulT1(a, b) // aᵀ·b : (3×4)
	want := MatMul(Transpose(a), b)
	if !AllClose(got, want, 1e-12) {
		t.Errorf("MatMulT1 disagrees with explicit transpose")
	}
	c := RandN(rng, 1, 6, 3)
	d := RandN(rng, 1, 4, 3)
	got = MatMulT2(c, d) // c·dᵀ : (6×4)
	want = MatMul(c, Transpose(d))
	if !AllClose(got, want, 1e-12) {
		t.Errorf("MatMulT2 disagrees with explicit transpose")
	}
}

func TestMatMulInnerDimMismatch(t *testing.T) {
	defer expectPanic(t, "inner dim mismatch")
	MatMul(New(2, 3), New(4, 2))
}

func TestMatVecAndOuter(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float64{1, 1}, 2)
	got := MatVec(a, x)
	if !AllClose(got, FromSlice([]float64{3, 7}, 2), 1e-12) {
		t.Errorf("MatVec = %v", got)
	}
	o := Outer(FromSlice([]float64{1, 2}, 2), FromSlice([]float64{3, 4, 5}, 3))
	want := FromSlice([]float64{3, 4, 5, 6, 8, 10}, 2, 3)
	if !AllClose(o, want, 0) {
		t.Errorf("Outer = %v", o)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := RandN(rng, 1, r, c)
		return AllClose(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: matmul distributes over addition, (A+B)·C = A·C + B·C.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandN(rng, 1, m, k)
		b := RandN(rng, 1, m, k)
		c := RandN(rng, 1, k, n)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		return AllClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := m.Sum(); got != 21 {
		t.Errorf("Sum = %v", got)
	}
	if got := m.Mean(); got != 3.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := m.Max(); got != 6 {
		t.Errorf("Max = %v", got)
	}
	if got := m.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := SumAxis0(m); !AllClose(got, FromSlice([]float64{5, 7, 9}, 3), 0) {
		t.Errorf("SumAxis0 = %v", got)
	}
	if got := SumAxis1(m); !AllClose(got, FromSlice([]float64{6, 15}, 2), 0) {
		t.Errorf("SumAxis1 = %v", got)
	}
	if got := MeanAxis0(m); !AllClose(got, FromSlice([]float64{2.5, 3.5, 4.5}, 3), 0) {
		t.Errorf("MeanAxis0 = %v", got)
	}
}

func TestVarAxis0(t *testing.T) {
	m := FromSlice([]float64{1, 10, 3, 10, 5, 10}, 3, 2)
	got := VarAxis0(m)
	// col0: mean 3, var ((4)+(0)+(4))/3 = 8/3 ; col1: 0
	want := FromSlice([]float64{8.0 / 3, 0}, 2)
	if !AllClose(got, want, 1e-12) {
		t.Errorf("VarAxis0 = %v, want %v", got, want)
	}
}

func TestArgMax(t *testing.T) {
	v := FromSlice([]float64{1, 5, 3}, 3)
	if got := v.ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d", got)
	}
	m := FromSlice([]float64{1, 5, 3, 9, 2, 0}, 2, 3)
	if got := ArgMaxRows(m); got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgMaxRows = %v", got)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	s := SoftmaxRows(m)
	for i := 0; i < 2; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			p := s.At2(i, j)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("softmax out of range or NaN: %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// Large-but-equal logits must give uniform distribution (stability).
	if math.Abs(s.At2(1, 0)-1.0/3) > 1e-12 {
		t.Errorf("stability shift failed: %v", s.At2(1, 0))
	}
}

// Property: softmax is invariant to adding a constant to a row.
func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandN(rng, 3, 2, 4)
		shift := AddScalar(m, rng.NormFloat64()*10)
		return AllClose(SoftmaxRows(m), SoftmaxRows(shift), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLogSumExpRows(t *testing.T) {
	m := FromSlice([]float64{0, 0, 700, 700}, 2, 2)
	got := LogSumExpRows(m)
	want := FromSlice([]float64{math.Log(2), 700 + math.Log(2)}, 2)
	if !AllClose(got, want, 1e-9) {
		t.Errorf("LogSumExpRows = %v, want %v", got, want)
	}
}

func TestGatherScatter(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	g := Gather(m, []int{2, 0, 2})
	want := FromSlice([]float64{5, 6, 1, 2, 5, 6}, 3, 2)
	if !AllClose(g, want, 0) {
		t.Errorf("Gather = %v", g)
	}
	dst := New(3, 2)
	ScatterAddRows(dst, []int{2, 0, 2}, g)
	want = FromSlice([]float64{1, 2, 0, 0, 10, 12}, 3, 2)
	if !AllClose(dst, want, 0) {
		t.Errorf("ScatterAddRows = %v, want %v", dst, want)
	}
}

// Property: ScatterAddRows is the adjoint of Gather —
// <Gather(m, rows), s> == <m, ScatterAdd(rows, s)> for all m, s.
// This is exactly the identity autograd relies on for the gather backward.
func TestGatherScatterAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 2+rng.Intn(5), 1+rng.Intn(4)
		k := 1 + rng.Intn(7)
		rows := make([]int, k)
		for i := range rows {
			rows[i] = rng.Intn(n)
		}
		m := RandN(rng, 1, n, c)
		s := RandN(rng, 1, k, c)
		lhs := Dot(Gather(m, rows), s)
		scat := New(n, c)
		ScatterAddRows(scat, rows, s)
		rhs := Dot(m, scat)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConcat(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3}, 1)
	if got := Concat(a, b); !AllClose(got, FromSlice([]float64{1, 2, 3}, 3), 0) {
		t.Errorf("Concat = %v", got)
	}
	m1 := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	m2 := FromSlice([]float64{5, 6}, 2, 1)
	got := ConcatCols(m1, m2)
	want := FromSlice([]float64{1, 2, 5, 3, 4, 6}, 2, 3)
	if !AllClose(got, want, 0) {
		t.Errorf("ConcatCols = %v", got)
	}
	got = ConcatRows(m1, FromSlice([]float64{7, 8}, 1, 2))
	want = FromSlice([]float64{1, 2, 3, 4, 7, 8}, 3, 2)
	if !AllClose(got, want, 0) {
		t.Errorf("ConcatRows = %v", got)
	}
}

func TestSliceRows(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	got := SliceRows(m, 1, 3)
	want := FromSlice([]float64{3, 4, 5, 6}, 2, 2)
	if !AllClose(got, want, 0) {
		t.Errorf("SliceRows = %v", got)
	}
	// The slice must be a copy.
	got.Set2(0, 0, 99)
	if m.At2(1, 0) == 99 {
		t.Error("SliceRows must copy")
	}
}

func TestNormsAndDistances(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if got := Norm2(a); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	b := FromSlice([]float64{0, 0}, 2)
	if got := L2Distance(a, b); got != 5 {
		t.Errorf("L2Distance = %v", got)
	}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("CosineSimilarity(a,a) = %v", got)
	}
	if got := CosineSimilarity(a, b); got != 0 {
		t.Errorf("cosine with zero vector = %v, want 0", got)
	}
	n := Normalize(a)
	if math.Abs(Norm2(n)-1) > 1e-12 {
		t.Errorf("Normalize norm = %v", Norm2(n))
	}
}

func TestRandUnitVector(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		v := RandUnitVector(rng, 8)
		if math.Abs(Norm2(v)-1) > 1e-9 {
			t.Fatalf("unit vector norm %v", Norm2(v))
		}
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := GlorotUniform(rng, 8, 8)
	limit := math.Sqrt(6.0 / 16.0)
	for _, v := range w.Data() {
		if v < -limit || v > limit {
			t.Fatalf("Glorot value %v outside ±%v", v, limit)
		}
	}
}

func TestShufflePreservesRowSets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := FromSlice([]float64{1, 1, 2, 2, 3, 3, 4, 4}, 4, 2)
	labels := []int{1, 2, 3, 4}
	Shuffle(rng, m, labels)
	for i := 0; i < 4; i++ {
		if m.At2(i, 0) != float64(labels[i]) {
			t.Fatalf("row %d desynchronised from label: %v vs %d", i, m.At2(i, 0), labels[i])
		}
	}
}

func TestFlopCounting(t *testing.T) {
	var c flops.Counter
	prev := flops.SetActive(&c)
	defer flops.SetActive(prev)
	a := Ones(4, 4)
	b := Ones(4, 4)
	MatMul(a, b)
	if got := c.Ops(); got != 2*4*4*4 {
		t.Errorf("MatMul flops = %d, want %d", got, 2*4*4*4)
	}
	c.Reset()
	Add(a, b)
	if got := c.Ops(); got != 16 {
		t.Errorf("Add flops = %d, want 16", got)
	}
}

func TestCheckFinite(t *testing.T) {
	ok := FromSlice([]float64{1, 2}, 2)
	ok.CheckFinite("ok") // must not panic
	bad := FromSlice([]float64{1, math.NaN()}, 2)
	defer expectPanic(t, "CheckFinite NaN")
	bad.CheckFinite("bad")
}

func TestStringRendering(t *testing.T) {
	small := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if s := small.String(); len(s) == 0 {
		t.Error("empty String for small tensor")
	}
	big := New(100, 100)
	if s := big.String(); s != "Tensor[100 100][10000 elems]" {
		t.Errorf("big String = %q", s)
	}
}

func expectPanic(t *testing.T, context string) {
	t.Helper()
	if r := recover(); r == nil {
		t.Errorf("%s: expected panic, got none", context)
	}
}
