// Package kggen implements the mission-specific reasoning KG generation
// framework of Fig. 3: initial node generation, a level-by-level expansion
// loop (node generation → edge generation → error detection), a bounded
// error-correction loop, fallback pruning of uncorrectable elements, and
// finalisation by attaching the sensor and embedding nodes.
package kggen

import (
	"fmt"
	"math/rand"

	"edgekg/internal/kg"
	"edgekg/internal/oracle"
)

// Options configures generation.
type Options struct {
	// Depth is the number of reasoning levels to generate.
	Depth int
	// InitialFanout is the node count requested for level 1.
	InitialFanout int
	// Fanout is the node count requested for each subsequent level.
	Fanout int
	// MaxCorrectionIters bounds the error-correction loop per level; when
	// exhausted, problematic nodes and edges are pruned (Sec. III-B).
	MaxCorrectionIters int
	// Tokenize converts a concept phrase to BPE token ids for node
	// initialisation. nil leaves TokenIDs empty.
	Tokenize func(string) []int
}

// DefaultOptions returns the configuration used throughout the experiment
// suite: 3 reasoning levels, 6 initial concepts, 5 per expansion.
func DefaultOptions() Options {
	return Options{Depth: 3, InitialFanout: 6, Fanout: 5, MaxCorrectionIters: 4}
}

// Report records what the generation loop did — the observability the
// cmd/kggen tool prints.
type Report struct {
	Mission          string
	LevelsGenerated  int
	NodesRequested   int
	NodesCommitted   int
	DuplicatesFound  int
	InvalidEdges     int
	CorrectionRounds int
	PrunedNodes      int
	PrunedEdges      int
}

// String summarises the report.
func (r Report) String() string {
	return fmt.Sprintf("kggen %q: levels=%d nodes=%d/%d dups=%d badEdges=%d corrections=%d prunedNodes=%d prunedEdges=%d",
		r.Mission, r.LevelsGenerated, r.NodesCommitted, r.NodesRequested,
		r.DuplicatesFound, r.InvalidEdges, r.CorrectionRounds, r.PrunedNodes, r.PrunedEdges)
}

// Generate builds a mission-specific KG with the given LLM. rng drives
// only tie-breaking inside this loop (the LLM owns its own randomness).
// The returned graph always passes strict validation.
func Generate(llm oracle.LLM, mission string, opts Options, rng *rand.Rand) (*kg.Graph, Report, error) {
	if opts.Depth < 1 {
		return nil, Report{}, fmt.Errorf("kggen: depth %d must be ≥1", opts.Depth)
	}
	if opts.InitialFanout < 1 || opts.Fanout < 1 {
		return nil, Report{}, fmt.Errorf("kggen: fanouts must be ≥1 (initial %d, expansion %d)", opts.InitialFanout, opts.Fanout)
	}
	report := Report{Mission: mission}
	g := kg.New(mission, opts.Depth)

	tokenize := opts.Tokenize
	if tokenize == nil {
		tokenize = func(string) []int { return nil }
	}

	// Level 1: initial reasoning nodes. The paper treats these as given by
	// the LLM without a correction loop; we still dedupe defensively.
	initial := dedupe(llm.InitialNodes(mission, opts.InitialFanout))
	report.NodesRequested += opts.InitialFanout
	if len(initial) == 0 {
		return nil, report, fmt.Errorf("kggen: LLM produced no initial nodes for mission %q", mission)
	}
	for _, c := range initial {
		if _, err := g.AddNode(c, 1, tokenize(c)); err != nil {
			return nil, report, fmt.Errorf("kggen: initial node %q: %w", c, err)
		}
		report.NodesCommitted++
	}
	report.LevelsGenerated = 1

	// Expansion loop for levels 2..Depth.
	for level := 2; level <= opts.Depth; level++ {
		current := conceptsAt(g, level-1)
		existing := allConcepts(g)
		report.NodesRequested += opts.Fanout

		names := llm.NextNodes(mission, current, existing, opts.Fanout)
		proposals := llm.ProposeEdges(current, names)

		// Error detection and bounded correction (Fig. 3's inner loop).
		for iter := 0; ; iter++ {
			dups, badEdges := detectErrors(g, current, names, proposals)
			if len(dups) == 0 && len(badEdges) == 0 {
				break
			}
			if iter >= opts.MaxCorrectionIters {
				// Correction budget exhausted: prune the problematic
				// nodes and edges, exactly the paper's fallback.
				names, proposals = pruneErrors(names, proposals, dups, badEdges)
				report.PrunedNodes += len(dups)
				report.PrunedEdges += len(badEdges)
				break
			}
			report.CorrectionRounds++
			report.DuplicatesFound += len(dups)
			report.InvalidEdges += len(badEdges)
			var prunedN, prunedE int
			names, proposals, prunedN, prunedE = correctErrors(llm, g, names, proposals, dups, badEdges)
			report.PrunedNodes += prunedN
			report.PrunedEdges += prunedE
		}

		if len(names) == 0 {
			return nil, report, fmt.Errorf("kggen: level %d empty after correction for mission %q", level, mission)
		}

		// Commit nodes.
		committed := make(map[string]kg.NodeID, len(names))
		for _, c := range names {
			n, err := g.AddNode(c, level, tokenize(c))
			if err != nil {
				// detectErrors guarantees uniqueness; a failure here is a
				// programming error worth surfacing loudly.
				return nil, report, fmt.Errorf("kggen: committing %q at level %d: %w", c, level, err)
			}
			committed[c] = n.ID
			report.NodesCommitted++
		}
		// Commit edges; resolution cannot fail after detection, but guard.
		prev := nodeIndexAt(g, level-1)
		for _, p := range proposals {
			srcID, ok1 := prev[p.From]
			dstID, ok2 := committed[p.To]
			if !ok1 || !ok2 {
				continue
			}
			if g.HasEdge(srcID, dstID) {
				continue
			}
			if err := g.AddEdge(srcID, dstID); err != nil {
				return nil, report, fmt.Errorf("kggen: committing edge %q→%q: %w", p.From, p.To, err)
			}
		}
		// Guarantee connectivity: any new node without a parent gets the
		// deterministic first node of the previous level (correction-by-
		// construction; counted as a corrected edge).
		for _, c := range names {
			id := committed[c]
			if len(g.InNeighbors(id)) == 0 {
				src := g.NodesAtLevel(level - 1)[rng.Intn(len(g.NodesAtLevel(level-1)))]
				if err := g.AddEdge(src.ID, id); err != nil {
					return nil, report, fmt.Errorf("kggen: repairing orphan %q: %w", c, err)
				}
				report.CorrectionRounds++
			}
		}
		report.LevelsGenerated = level
	}

	g.AttachTerminals()
	if issues := g.Validate(true); len(issues) > 0 {
		// Dead ends at interior levels are legal intermediate states in
		// the paper's DAG (a node may inform nothing downstream); repair
		// by linking to a random next-level node to keep reasoning flow.
		for _, is := range issues {
			if is.Kind != kg.IssueDeadEndNode {
				return nil, report, fmt.Errorf("kggen: generated graph invalid: %v", is)
			}
			n := g.Node(is.Node)
			next := g.NodesAtLevel(n.Level + 1)
			if len(next) == 0 {
				return nil, report, fmt.Errorf("kggen: cannot repair dead end %v", is)
			}
			if err := g.AddEdge(n.ID, next[rng.Intn(len(next))].ID); err != nil {
				return nil, report, fmt.Errorf("kggen: repairing dead end: %w", err)
			}
		}
		if issues := g.Validate(true); len(issues) > 0 {
			return nil, report, fmt.Errorf("kggen: graph still invalid after repair: %v", issues[0])
		}
	}
	return g, report, nil
}

// detectErrors returns duplicated concepts in names (against the graph and
// within names) and invalid edge proposals (source not in the current
// level or destination not among the surviving names).
func detectErrors(g *kg.Graph, current, names []string, proposals []oracle.EdgeProposal) (dups []string, badEdges []oracle.EdgeProposal) {
	existing := make(map[string]bool)
	for _, c := range allConcepts(g) {
		existing[c] = true
	}
	seen := make(map[string]bool, len(names))
	nameSet := make(map[string]bool, len(names))
	for _, c := range names {
		if existing[c] || seen[c] {
			dups = append(dups, c)
			continue
		}
		seen[c] = true
		nameSet[c] = true
	}
	curSet := make(map[string]bool, len(current))
	for _, c := range current {
		curSet[c] = true
	}
	for _, p := range proposals {
		if !curSet[p.From] || !nameSet[p.To] {
			badEdges = append(badEdges, p)
		}
	}
	return dups, badEdges
}

// correctErrors asks the LLM to fix each duplicate and rewires each bad
// edge to its nearest legal form, returning the updated proposals along
// with how many elements had to be pruned because no correction existed
// (the LLM declined, or the edge carried no recoverable structure).
func correctErrors(llm oracle.LLM, g *kg.Graph, names []string, proposals []oracle.EdgeProposal, dups []string, badEdges []oracle.EdgeProposal) (outN []string, outP []oracle.EdgeProposal, prunedNodes, prunedEdges int) {
	existing := allConcepts(g)
	replaced := make(map[string]string, len(dups))
	dupSet := make(map[string]int, len(dups))
	for _, d := range dups {
		dupSet[d]++
	}
	outNames := make([]string, 0, len(names))
	used := make(map[string]bool)
	for _, c := range existing {
		used[c] = true
	}
	for _, c := range names {
		if dupSet[c] > 0 && (used[c] || containsDup(outNames, c)) {
			dupSet[c]--
			fix := llm.CorrectDuplicate(c, append(existing, outNames...))
			if fix == "" {
				prunedNodes++ // no suggestion: prune the duplicate outright
				continue
			}
			replaced[c] = fix
			outNames = append(outNames, fix)
			continue
		}
		outNames = append(outNames, c)
	}
	outProps := make([]oracle.EdgeProposal, 0, len(proposals))
	bad := make(map[oracle.EdgeProposal]bool, len(badEdges))
	for _, e := range badEdges {
		bad[e] = true
	}
	for _, p := range proposals {
		if r, ok := replaced[p.To]; ok {
			p.To = r
		}
		if bad[p] {
			// Predefined correction prompt: strip the corruption marker if
			// present, otherwise prune the edge.
			if fixed, ok := stripCorruption(p.From); ok {
				p.From = fixed
			} else {
				prunedEdges++
				continue
			}
		}
		outProps = append(outProps, p)
	}
	return outNames, outProps, prunedNodes, prunedEdges
}

// pruneErrors drops uncorrectable names and edges outright.
func pruneErrors(names []string, proposals []oracle.EdgeProposal, dups []string, badEdges []oracle.EdgeProposal) ([]string, []oracle.EdgeProposal) {
	dupSet := make(map[string]int)
	for _, d := range dups {
		dupSet[d]++
	}
	outNames := names[:0]
	dropped := make(map[string]bool)
	for _, c := range names {
		if dupSet[c] > 0 {
			dupSet[c]--
			dropped[c] = true
			continue
		}
		outNames = append(outNames, c)
	}
	bad := make(map[oracle.EdgeProposal]bool)
	for _, e := range badEdges {
		bad[e] = true
	}
	outProps := proposals[:0]
	for _, p := range proposals {
		if bad[p] || dropped[p.To] {
			continue
		}
		outProps = append(outProps, p)
	}
	return outNames, outProps
}

func stripCorruption(s string) (string, bool) {
	const marker = "level-skip:"
	if len(s) > len(marker) && s[:len(marker)] == marker {
		return s[len(marker):], true
	}
	return s, false
}

func containsDup(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func conceptsAt(g *kg.Graph, level int) []string {
	nodes := g.NodesAtLevel(level)
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n.Kind == kg.Reasoning {
			out = append(out, n.Concept)
		}
	}
	return out
}

func nodeIndexAt(g *kg.Graph, level int) map[string]kg.NodeID {
	out := make(map[string]kg.NodeID)
	for _, n := range g.NodesAtLevel(level) {
		if n.Kind == kg.Reasoning {
			out[n.Concept] = n.ID
		}
	}
	return out
}

func allConcepts(g *kg.Graph) []string {
	var out []string
	for _, n := range g.Nodes() {
		if n.Kind == kg.Reasoning {
			out = append(out, n.Concept)
		}
	}
	return out
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
