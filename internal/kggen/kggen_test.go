package kggen

import (
	"math/rand"
	"strings"
	"testing"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/kg"
	"edgekg/internal/oracle"
)

func cleanOracle(seed int64) oracle.LLM {
	return oracle.NewSim(concept.Builtin(), rand.New(rand.NewSource(seed)), oracle.Config{EdgeProb: 0.9})
}

func faultyOracle(seed int64) oracle.LLM {
	cfg := oracle.Config{DupErrorRate: 0.4, EdgeErrorRate: 0.4, CorrectionErrorRate: 0.3, EdgeProb: 0.9}
	return oracle.NewSim(concept.Builtin(), rand.New(rand.NewSource(seed)), cfg)
}

func TestGenerateCleanOracle(t *testing.T) {
	g, rep, err := Generate(cleanOracle(1), "Stealing", DefaultOptions(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if issues := g.Validate(true); len(issues) != 0 {
		t.Fatalf("invalid graph: %v", issues)
	}
	if g.Depth() != 3 {
		t.Errorf("depth = %d", g.Depth())
	}
	if g.SensorNode() == nil || g.EmbeddingTerminal() == nil {
		t.Error("terminals missing")
	}
	if rep.LevelsGenerated != 3 {
		t.Errorf("levels = %d", rep.LevelsGenerated)
	}
	if rep.NodesCommitted < 10 {
		t.Errorf("only %d nodes committed", rep.NodesCommitted)
	}
	// Level 1 must reflect the mission profile.
	l1 := g.NodesAtLevel(1)
	found := false
	for _, n := range l1 {
		if n.Concept == "stealing" {
			found = true
		}
	}
	if !found {
		t.Error("level 1 lacks the mission keyword")
	}
}

func TestGenerateWithFaultyOracleStillValid(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g, rep, err := Generate(faultyOracle(seed), "Robbery", DefaultOptions(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if issues := g.Validate(true); len(issues) != 0 {
			t.Fatalf("seed %d: invalid graph: %v", seed, issues)
		}
		if rep.DuplicatesFound == 0 && rep.InvalidEdges == 0 && rep.PrunedNodes == 0 {
			t.Logf("seed %d: no injected errors surfaced (possible but unlikely)", seed)
		}
	}
}

func TestErrorDetectionAndCorrectionCounts(t *testing.T) {
	// Across several faulty runs, the correction machinery must have
	// engaged at least once.
	totalCorrections, totalDups := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		_, rep, err := Generate(faultyOracle(seed+100), "Explosion", DefaultOptions(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		totalCorrections += rep.CorrectionRounds
		totalDups += rep.DuplicatesFound
	}
	if totalDups == 0 {
		t.Error("40% duplicate injection never detected across 10 runs")
	}
	if totalCorrections == 0 {
		t.Error("correction loop never ran")
	}
}

func TestGenerateTokenizes(t *testing.T) {
	tok := bpe.Train(concept.Builtin().Concepts(), 500)
	opts := DefaultOptions()
	opts.Tokenize = tok.Encode
	g, _, err := Generate(cleanOracle(2), "Stealing", opts, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		if n.Kind != kg.Reasoning {
			continue
		}
		if len(n.TokenIDs) == 0 {
			t.Errorf("node %q has no token ids", n.Concept)
		}
		if got := tok.Decode(n.TokenIDs); got != n.Concept {
			t.Errorf("tokens decode to %q, want %q", got, n.Concept)
		}
	}
}

func TestGenerateDepthOne(t *testing.T) {
	opts := DefaultOptions()
	opts.Depth = 1
	g, _, err := Generate(cleanOracle(3), "Arson", opts, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if issues := g.Validate(true); len(issues) != 0 {
		t.Fatalf("depth-1 graph invalid: %v", issues)
	}
}

func TestGenerateDeepGraph(t *testing.T) {
	opts := DefaultOptions()
	opts.Depth = 5
	g, _, err := Generate(cleanOracle(4), "Robbery", opts, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if issues := g.Validate(true); len(issues) != 0 {
		t.Fatalf("depth-5 graph invalid: %v", issues)
	}
	// Deep levels are reachable from the sensor.
	if len(g.NodesAtLevel(5)) == 0 {
		t.Error("level 5 empty")
	}
}

func TestGenerateBadOptions(t *testing.T) {
	if _, _, err := Generate(cleanOracle(5), "Stealing", Options{Depth: 0, InitialFanout: 3, Fanout: 3}, rand.New(rand.NewSource(5))); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, _, err := Generate(cleanOracle(5), "Stealing", Options{Depth: 2, InitialFanout: 0, Fanout: 3}, rand.New(rand.NewSource(5))); err == nil {
		t.Error("fanout 0 accepted")
	}
}

// scriptedLLM forces specific pathological behaviours the Sim cannot
// guarantee deterministically.
type scriptedLLM struct {
	initial   []string
	nextCalls int
}

func (s *scriptedLLM) InitialNodes(string, int) []string { return s.initial }

func (s *scriptedLLM) NextNodes(_ string, _, existing []string, count int) []string {
	s.nextCalls++
	// Always emit one duplicate of an existing concept plus fresh ones.
	out := []string{existing[0]}
	for i := 1; i < count; i++ {
		out = append(out, "fresh-"+string(rune('a'+s.nextCalls))+string(rune('a'+i)))
	}
	return out
}

func (s *scriptedLLM) ProposeEdges(current, next []string) []oracle.EdgeProposal {
	var out []oracle.EdgeProposal
	for _, n := range next {
		out = append(out, oracle.EdgeProposal{From: current[0], To: n})
	}
	// And one structurally invalid proposal.
	out = append(out, oracle.EdgeProposal{From: "nowhere", To: next[0]})
	return out
}

func (s *scriptedLLM) CorrectDuplicate(dup string, existing []string) string {
	return "" // refuse to help: forces the pruning path
}

func TestUncorrectableErrorsArePruned(t *testing.T) {
	llm := &scriptedLLM{initial: []string{"seed-a", "seed-b"}}
	opts := Options{Depth: 2, InitialFanout: 2, Fanout: 3, MaxCorrectionIters: 2}
	g, rep, err := Generate(llm, "Synthetic", opts, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if issues := g.Validate(true); len(issues) != 0 {
		t.Fatalf("invalid after pruning: %v", issues)
	}
	if rep.PrunedNodes == 0 {
		t.Error("refusing oracle should force node pruning")
	}
	if rep.PrunedEdges == 0 {
		t.Error("invalid proposal should be pruned")
	}
	// The duplicate never landed.
	seen := map[string]int{}
	for _, n := range g.Nodes() {
		seen[n.Concept]++
	}
	for c, count := range seen {
		if count > 1 {
			t.Errorf("concept %q appears %d times", c, count)
		}
	}
}

func TestReportString(t *testing.T) {
	_, rep, err := Generate(cleanOracle(7), "Stealing", DefaultOptions(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "Stealing") || !strings.Contains(s, "levels=3") {
		t.Errorf("report string = %q", s)
	}
}

func TestGenerationDeterministic(t *testing.T) {
	g1, _, err := Generate(cleanOracle(8), "Shooting", DefaultOptions(), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := Generate(cleanOracle(8), "Shooting", DefaultOptions(), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := g1.Nodes(), g2.Nodes()
	if len(n1) != len(n2) {
		t.Fatalf("node counts differ: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i].Concept != n2[i].Concept || n1[i].Level != n2[i].Level {
			t.Fatalf("node %d differs: %q/%d vs %q/%d", i, n1[i].Concept, n1[i].Level, n2[i].Concept, n2[i].Level)
		}
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ")
	}
}
