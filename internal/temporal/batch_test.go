package temporal

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/parallel"
	"edgekg/internal/tensor"
)

// batchConfig builds a config sized so every tested head count divides the
// inner dimension.
func batchConfig(heads int, causal bool) Config {
	return Config{InputDim: 6, InnerDim: 16, Heads: heads, Layers: 2, Window: 4, Causal: causal}
}

// seqReference runs the per-window sequential model over a stacked window
// matrix — the reference ForwardBatch is pinned to.
func seqReference(m *Model, windows *tensor.Tensor, batch int) *tensor.Tensor {
	t := m.Window()
	outs := make([]*tensor.Tensor, batch)
	for k := 0; k < batch; k++ {
		outs[k] = m.ForwardSeq(autograd.Constant(tensor.SliceRows(windows, k*t, (k+1)*t))).Data
	}
	return tensor.ConcatRows(outs...)
}

// TestForwardBatchEquivalence pins the one-tape batched forward to the
// sequential per-window model across batch sizes, head counts, mask modes
// and train/eval mode (dropout is 0, so train mode differs only in the
// layers' mode flags — exactly the paper's configuration).
func TestForwardBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, heads := range []int{1, 8} {
		for _, causal := range []bool{false, true} {
			m, err := New(rng, batchConfig(heads, causal))
			if err != nil {
				t.Fatal(err)
			}
			for _, training := range []bool{false, true} {
				m.SetTraining(training)
				for _, batch := range []int{1, 2, 5} {
					name := fmt.Sprintf("heads=%d causal=%v training=%v batch=%d", heads, causal, training, batch)
					windows := tensor.RandN(rng, 1, batch*m.Window(), 6)
					got := m.ForwardBatch(autograd.Constant(windows), batch)
					if got.Data.Rows() != batch || got.Data.Cols() != 6 {
						t.Fatalf("%s: output shape %v, want (%d,6)", name, got.Shape(), batch)
					}
					want := seqReference(m, windows, batch)
					if !tensor.AllClose(got.Data, want, 1e-12) {
						t.Errorf("%s: batched output diverges from sequential model", name)
					}
				}
			}
		}
	}
}

// TestForwardBatchGradEquivalence checks that one batched backward pass
// produces the same input and parameter gradients as the per-window
// sequential passes summed.
func TestForwardBatchGradEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, causal := range []bool{false, true} {
		m, err := New(rng, batchConfig(2, causal))
		if err != nil {
			t.Fatal(err)
		}
		m.SetTraining(false)
		const batch = 3
		data := tensor.RandN(rng, 1, batch*m.Window(), 6)

		wb := autograd.Param(data.Clone())
		autograd.Sum(m.ForwardBatch(wb, batch)).Backward()
		grads := map[string]*tensor.Tensor{"windows": wb.Grad.Clone()}
		for _, p := range m.Params() {
			grads[p.Name] = p.V.Grad.Clone()
			p.V.ZeroGrad()
		}

		ws := autograd.Param(data.Clone())
		tw := m.Window()
		for k := 0; k < batch; k++ {
			autograd.Sum(m.ForwardSeq(autograd.SliceRows(ws, k*tw, (k+1)*tw))).Backward()
		}
		if !tensor.AllClose(grads["windows"], ws.Grad, 1e-9) {
			t.Errorf("causal=%v: window gradient diverges", causal)
		}
		for _, p := range m.Params() {
			if !tensor.AllClose(grads[p.Name], p.V.Grad, 1e-9) {
				t.Errorf("causal=%v: param %s gradient diverges", causal, p.Name)
			}
			p.V.ZeroGrad()
		}
	}
}

// TestCrossWindowIsolation perturbs one window of a batch and asserts
// every other window's batched output is bit-unchanged — a direct probe
// for block-diagonal mask bugs: any leakage across window boundaries
// changes other windows' floats.
func TestCrossWindowIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, causal := range []bool{false, true} {
		m, err := New(rng, batchConfig(8, causal))
		if err != nil {
			t.Fatal(err)
		}
		m.SetTraining(false)
		const batch = 5
		tw := m.Window()
		base := tensor.RandN(rng, 1, batch*tw, 6)
		for _, workers := range []int{1, 4} {
			prev := parallel.SetWorkers(workers)
			before := m.ForwardBatch(autograd.Constant(base), batch)
			for k := 0; k < batch; k++ {
				bumped := base.Clone()
				for i := 0; i < tw; i++ {
					row := bumped.Row(k*tw + i)
					for j := range row {
						row[j] += 3
					}
				}
				after := m.ForwardBatch(autograd.Constant(bumped), batch)
				for b := 0; b < batch; b++ {
					same := tensor.AllClose(
						tensor.SliceRows(after.Data, b, b+1),
						tensor.SliceRows(before.Data, b, b+1), 0)
					if b == k && same {
						t.Errorf("causal=%v workers=%d: perturbing window %d did not change its own output", causal, workers, k)
					}
					if b != k && !same {
						t.Errorf("causal=%v workers=%d: perturbing window %d leaked into window %d", causal, workers, k, b)
					}
				}
			}
			parallel.SetWorkers(prev)
		}
	}
}

// TestForwardBatchWorkerDeterminism pins forward values and gradients of
// the batched temporal pass to be bit-identical whether the pool runs
// sequentially or with 4 workers (EDGEKG_WORKERS ∈ {1, 4} via its
// programmatic equivalent, parallel.SetWorkers).
func TestForwardBatchWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	m, err := New(rng, batchConfig(8, true))
	if err != nil {
		t.Fatal(err)
	}
	m.SetTraining(false)
	const batch = 6
	data := tensor.RandN(rng, 1, batch*m.Window(), 6)
	run := func() (*tensor.Tensor, *tensor.Tensor) {
		for _, p := range m.Params() {
			p.V.ZeroGrad()
		}
		w := autograd.Param(data.Clone())
		out := m.ForwardBatch(w, batch)
		autograd.Sum(out).Backward()
		return out.Data, w.Grad
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	wantOut, wantGrad := run()
	parallel.SetWorkers(4)
	gotOut, gotGrad := run()
	if !tensor.AllClose(gotOut, wantOut, 0) {
		t.Error("batched forward not bit-identical across worker counts")
	}
	if !tensor.AllClose(gotGrad, wantGrad, 0) {
		t.Error("batched backward not bit-identical across worker counts")
	}
}

// TestGradCheckThroughForwardBatch verifies the full batched tape —
// projection, AddTiled, fused attention, LayerNorm, Gather — against
// finite differences.
func TestGradCheckThroughForwardBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	m, err := New(rng, Config{InputDim: 6, InnerDim: 8, Heads: 2, Layers: 1, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.SetTraining(false)
	windows := autograd.Param(tensor.RandN(rng, 0.5, 2*3, 6))
	f := func() *autograd.Value { return autograd.Mean(m.ForwardBatch(windows, 2)) }
	if err := autograd.GradCheck(f, []*autograd.Value{windows}, 1e-6, 1e-4); err != nil {
		t.Error(err)
	}
}

// TestForwardBatchValidation checks the batch guard and that the row
// mismatch panic reports the expected row count as a product, not a
// formula.
func TestForwardBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	m, err := New(rng, batchConfig(2, false))
	if err != nil {
		t.Fatal(err)
	}
	recovered := func(f func()) (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		f()
		return ""
	}
	if msg := recovered(func() { m.ForwardBatch(autograd.Constant(tensor.New(4, 6)), 0) }); !strings.Contains(msg, "batch 0 must be ≥ 1") {
		t.Errorf("batch=0 panic = %q, want batch validation", msg)
	}
	msg := recovered(func() { m.ForwardBatch(autograd.Constant(tensor.New(9, 6)), 2) })
	if !strings.Contains(msg, "want 8 (batch 2 × window 4)") {
		t.Errorf("row mismatch panic = %q, want product form", msg)
	}
	if msg := recovered(func() { m.ForwardBatch(autograd.Constant(tensor.New(8, 5)), 2) }); !strings.Contains(msg, "input dim") {
		t.Errorf("dim mismatch panic = %q, want input dim validation", msg)
	}
}
