package temporal

import (
	"math/rand"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/nn"
	"edgekg/internal/tensor"
)

func smallConfig() Config {
	return Config{InputDim: 6, InnerDim: 16, Heads: 2, Layers: 1, Window: 4}
}

func TestForwardSeqShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := New(rng, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := autograd.Constant(tensor.RandN(rng, 1, 4, 6))
	out := m.ForwardSeq(seq)
	if out.Data.Rows() != 1 || out.Data.Cols() != 6 {
		t.Errorf("output shape %v, want (1,6)", out.Shape())
	}
}

func TestForwardBatchMatchesSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := New(rng, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.SetTraining(false)
	w1 := tensor.RandN(rng, 1, 4, 6)
	w2 := tensor.RandN(rng, 1, 4, 6)
	batch := tensor.ConcatRows(w1, w2)
	ob := m.ForwardBatch(autograd.Constant(batch), 2)
	o1 := m.ForwardSeq(autograd.Constant(w1))
	o2 := m.ForwardSeq(autograd.Constant(w2))
	if !tensor.AllClose(tensor.SliceRows(ob.Data, 0, 1), o1.Data, 1e-10) {
		t.Error("batch row 0 mismatch")
	}
	if !tensor.AllClose(tensor.SliceRows(ob.Data, 1, 2), o2.Data, 1e-10) {
		t.Error("batch row 1 mismatch")
	}
}

func TestLastFrameSensitivity(t *testing.T) {
	// The output corresponds to the last input; changing the last frame
	// must change the output.
	rng := rand.New(rand.NewSource(3))
	m, err := New(rng, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.SetTraining(false)
	w1 := tensor.RandN(rng, 1, 4, 6)
	w2 := w1.Clone()
	for j := 0; j < 6; j++ {
		w2.Set2(3, j, w2.At2(3, j)+1)
	}
	o1 := m.ForwardSeq(autograd.Constant(w1))
	o2 := m.ForwardSeq(autograd.Constant(w2))
	if tensor.AllClose(o1.Data, o2.Data, 1e-9) {
		t.Error("last-frame change did not affect output")
	}
}

func TestContextSensitivity(t *testing.T) {
	// Full attention: earlier frames influence the last-position output.
	rng := rand.New(rand.NewSource(4))
	m, err := New(rng, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.SetTraining(false)
	w1 := tensor.RandN(rng, 1, 4, 6)
	w2 := w1.Clone()
	for j := 0; j < 6; j++ {
		w2.Set2(0, j, w2.At2(0, j)+1)
	}
	o1 := m.ForwardSeq(autograd.Constant(w1))
	o2 := m.ForwardSeq(autograd.Constant(w2))
	if tensor.AllClose(o1.Data, o2.Data, 1e-9) {
		t.Error("temporal context ignored")
	}
}

func TestGradCheckThroughTemporal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := New(rng, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.SetTraining(false)
	seq := autograd.Param(tensor.RandN(rng, 0.5, 4, 6))
	f := func() *autograd.Value { return autograd.Mean(m.ForwardSeq(seq)) }
	if err := autograd.GradCheck(f, []*autograd.Value{seq}, 1e-6, 1e-4); err != nil {
		t.Error(err)
	}
}

func TestSequenceLengthValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, err := New(rng, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong window length")
		}
	}()
	m.ForwardSeq(autograd.Constant(tensor.New(3, 6)))
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bad := []Config{
		{InputDim: 0, InnerDim: 16, Heads: 2, Window: 4},
		{InputDim: 6, InnerDim: 15, Heads: 2, Window: 4}, // not divisible
		{InputDim: 6, InnerDim: 16, Heads: 2, Window: 0},
	}
	for i, cfg := range bad {
		if _, err := New(rng, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(32)
	if cfg.InnerDim != 128 || cfg.Heads != 8 {
		t.Errorf("paper defaults wrong: inner %d heads %d", cfg.InnerDim, cfg.Heads)
	}
	rng := rand.New(rand.NewSource(8))
	m, err := New(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Window() != 8 || m.InputDim() != 32 {
		t.Errorf("window %d inputDim %d", m.Window(), m.InputDim())
	}
}

func TestParamsNamedUniquely(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := smallConfig()
	cfg.Layers = 2
	m, err := New(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range m.Params() {
		if seen[p.Name] {
			t.Errorf("duplicate param %q", p.Name)
		}
		seen[p.Name] = true
	}
	if nn.NumParams(m) == 0 {
		t.Error("no parameters")
	}
}
