package temporal

import (
	"fmt"

	"edgekg/internal/nn"
	"edgekg/internal/tensor"
)

// modelF32 is the float32 eval snapshot of the temporal stack: every
// weight narrowed once, the positional table included. Immutable after
// construction.
type modelF32 struct {
	inProj *nn.LinearF32
	blocks []*nn.EncoderLayerF32
	norm   *nn.LayerNormF32
	out    *nn.LinearF32
	pos    *tensor.Tensor32
}

// snapshotF32 returns the cached float32 snapshot, building it on first
// use. Concurrent scorers may race to build; the first stored snapshot
// wins and duplicates are dropped — both are narrowed from the same
// frozen weights, so either is correct.
func (m *Model) snapshotF32() *modelF32 {
	if s := m.f32.Load(); s != nil {
		return s
	}
	s := &modelF32{
		inProj: m.inProj.F32(),
		norm:   m.norm.F32(),
		out:    m.out.F32(),
		pos:    tensor.ToF32(m.pos),
	}
	for _, b := range m.blocks {
		s.blocks = append(s.blocks, b.F32())
	}
	m.f32.CompareAndSwap(nil, s)
	if cur := m.f32.Load(); cur != nil {
		return cur
	}
	return s
}

// ForwardBatchEvalF32 is ForwardBatch on the reduced-precision inference
// path: the same batched structure (one projection, tiled positional add,
// block-diagonal batched attention, final norm, last-position gather) run
// entirely at float32 with no tape. The model must be in inference mode.
func (m *Model) ForwardBatchEvalF32(windows *tensor.Tensor32, batch int) *tensor.Tensor32 {
	t := m.cfg.Window
	if batch < 1 {
		panic(fmt.Sprintf("temporal: batch %d must be ≥ 1", batch))
	}
	if windows.Rows() != batch*t {
		panic(fmt.Sprintf("temporal: batch matrix has %d rows, want %d (batch %d × window %d)",
			windows.Rows(), batch*t, batch, t))
	}
	if windows.Cols() != m.cfg.InputDim {
		panic(fmt.Sprintf("temporal: input dim %d != %d", windows.Cols(), m.cfg.InputDim))
	}
	s := m.snapshotF32()
	h := s.inProj.Forward(windows)
	nn.AddTiledF32(h, s.pos)
	for _, b := range s.blocks {
		h = b.ForwardBatch(h, batch)
	}
	h = s.norm.Forward(h)
	last := tensor.New32(batch, h.Cols())
	for k := 0; k < batch; k++ {
		copy(last.Row(k), h.Row((k+1)*t-1))
	}
	return s.out.Forward(last)
}
