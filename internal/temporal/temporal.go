// Package temporal implements the transformer-based short-term temporal
// model T : R^{T×D} → R^D of Sec. III-C: a stack of encoder blocks over
// the last T frame reasoning embeddings, returning the output at the final
// position. The paper uses an inner dimensionality of 128 with 8 attention
// heads; both are configurable.
package temporal

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"edgekg/internal/autograd"
	"edgekg/internal/nn"
	"edgekg/internal/tensor"
)

// Config sizes the temporal model.
type Config struct {
	// InputDim is D, the concatenated multi-KG reasoning embedding width.
	InputDim int
	// InnerDim is the transformer model dimension (paper: 128).
	InnerDim int
	// Heads is the attention head count (paper: 8).
	Heads int
	// Layers is the number of encoder blocks.
	Layers int
	// FFDim is the feed-forward width; 0 defaults to 4×InnerDim.
	FFDim int
	// Window is T, the number of consecutive frame embeddings attended to.
	Window int
	// Dropout applies inside encoder blocks during training.
	Dropout float64
	// Causal restricts attention to past positions. The paper's model
	// reads only the last output, so full attention is equivalent in
	// effect; causal is kept for the ablation benches.
	Causal bool
}

// DefaultConfig returns the paper's settings for a given input width.
func DefaultConfig(inputDim int) Config {
	return Config{InputDim: inputDim, InnerDim: 128, Heads: 8, Layers: 1, Window: 8}
}

// Model is the short-term temporal transformer.
type Model struct {
	cfg    Config
	inProj *nn.Linear
	blocks []*nn.EncoderLayer
	norm   *nn.LayerNorm
	out    *nn.Linear
	pos    *tensor.Tensor

	// f32 caches the float32 eval snapshot of the whole stack, built
	// lazily on the first reduced-precision forward and dropped whenever
	// the model returns to training mode (weights may change). Clones are
	// not taken of temporal models — serving shares one frozen instance —
	// so one snapshot serves every stream.
	f32 atomic.Pointer[modelF32]
}

// New builds a temporal model.
func New(rng *rand.Rand, cfg Config) (*Model, error) {
	if cfg.InputDim < 1 || cfg.InnerDim < 1 || cfg.Window < 1 {
		return nil, fmt.Errorf("temporal: invalid config %+v", cfg)
	}
	if cfg.Heads < 1 || cfg.InnerDim%cfg.Heads != 0 {
		return nil, fmt.Errorf("temporal: inner dim %d not divisible by %d heads", cfg.InnerDim, cfg.Heads)
	}
	if cfg.Layers < 1 {
		cfg.Layers = 1
	}
	ff := cfg.FFDim
	if ff == 0 {
		ff = 4 * cfg.InnerDim
	}
	m := &Model{
		cfg:    cfg,
		inProj: nn.NewLinear(rng, cfg.InputDim, cfg.InnerDim),
		norm:   nn.NewLayerNorm(cfg.InnerDim),
		out:    nn.NewLinear(rng, cfg.InnerDim, cfg.InputDim),
		pos:    nn.PositionalEncoding(cfg.Window, cfg.InnerDim),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.blocks = append(m.blocks, nn.NewEncoderLayer(rng, cfg.InnerDim, cfg.Heads, ff, cfg.Dropout, cfg.Causal))
	}
	return m, nil
}

// Window returns T, the model's attention window length.
func (m *Model) Window() int { return m.cfg.Window }

// InputDim returns D.
func (m *Model) InputDim() int { return m.cfg.InputDim }

// ForwardSeq processes one (T × D) window of frame embeddings and returns
// the (1 × D) output at the last position — f′_t = T(F_t).
func (m *Model) ForwardSeq(seq *autograd.Value) *autograd.Value {
	t := seq.Data.Rows()
	if t != m.cfg.Window {
		panic(fmt.Sprintf("temporal: sequence length %d != window %d", t, m.cfg.Window))
	}
	if seq.Data.Cols() != m.cfg.InputDim {
		panic(fmt.Sprintf("temporal: input dim %d != %d", seq.Data.Cols(), m.cfg.InputDim))
	}
	h := m.inProj.Forward(seq)
	h = autograd.Add(h, autograd.Constant(m.pos))
	for _, b := range m.blocks {
		h = b.Forward(h)
	}
	h = m.norm.Forward(h)
	last := autograd.SliceRows(h, t-1, t)
	return m.out.Forward(last)
}

// ForwardBatch processes a batch of windows stacked row-wise as a
// (batch*T × D) matrix and returns the (batch × D) last-position outputs.
//
// The whole batch runs through one tape: a single input projection over
// the stacked matrix, one AddTiled node for the positional encoding, the
// encoder blocks' batched forward (whose BatchedAttention core is
// block-diagonal over windows, so window k never attends into window j),
// one final LayerNorm, and a single Gather of the last position of every
// window. Row k equals ForwardSeq applied to window k alone — pinned by
// the equivalence and isolation tests — while the tape cost is O(depth)
// nodes instead of O(batch·depth).
func (m *Model) ForwardBatch(windows *autograd.Value, batch int) *autograd.Value {
	t := m.cfg.Window
	if batch < 1 {
		panic(fmt.Sprintf("temporal: batch %d must be ≥ 1", batch))
	}
	if windows.Data.Rows() != batch*t {
		panic(fmt.Sprintf("temporal: batch matrix has %d rows, want %d (batch %d × window %d)",
			windows.Data.Rows(), batch*t, batch, t))
	}
	if windows.Data.Cols() != m.cfg.InputDim {
		panic(fmt.Sprintf("temporal: input dim %d != %d", windows.Data.Cols(), m.cfg.InputDim))
	}
	h := m.inProj.Forward(windows)
	h = autograd.AddTiled(h, m.pos)
	for _, b := range m.blocks {
		h = b.ForwardBatch(h, batch)
	}
	h = m.norm.Forward(h)
	last := make([]int, batch)
	for k := range last {
		last[k] = (k+1)*t - 1
	}
	return m.out.Forward(autograd.GatherRows(h, last))
}

// SetTraining toggles dropout inside the encoder blocks. Entering
// training mode drops the float32 eval snapshot: the weights are about to
// change, and the next reduced-precision forward rebuilds it from the
// post-training values.
func (m *Model) SetTraining(t bool) {
	if t {
		m.f32.Store(nil)
	}
	for _, b := range m.blocks {
		b.SetTraining(t)
	}
}

// Params implements nn.Module.
func (m *Model) Params() []nn.Param {
	var ps []nn.Param
	ps = append(ps, nn.Prefix("inproj", m.inProj.Params())...)
	for i, b := range m.blocks {
		ps = append(ps, nn.Prefix(fmt.Sprintf("block%d", i), b.Params())...)
	}
	ps = append(ps, nn.Prefix("norm", m.norm.Params())...)
	ps = append(ps, nn.Prefix("out", m.out.Params())...)
	return ps
}
