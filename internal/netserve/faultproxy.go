package netserve

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// FaultMode selects how a FaultProxy mistreats a request.
type FaultMode int

const (
	// FaultNone forwards the request untouched.
	FaultNone FaultMode = iota
	// FaultDelay forwards after sleeping the configured delay.
	FaultDelay
	// FaultBlackhole accepts the request and never answers: the caller
	// sits on an open connection until its own deadline fires (the failure
	// mode a missing client timeout turns into a permanent wedge).
	FaultBlackhole
	// FaultReset severs the TCP connection without writing a response —
	// the caller sees an abrupt EOF/reset, exactly what a crashing worker
	// produces mid-flight.
	FaultReset
)

// FaultProxy is a deterministic fault-injection proxy in front of one
// worker. It forwards HTTP requests verbatim and, per configuration,
// delays, blackholes or resets them — and can switch behaviour after a
// fixed number of forwarded requests (KillAfter), which is how failure
// tests get a worker that "dies" at an exact, repeatable point instead of
// an arbitrary timing-dependent one.
//
// Use it as an http.Handler (httptest.NewServer(proxy)) with clients
// pointed at the proxy's address instead of the worker's.
type FaultProxy struct {
	target string // worker base URL, e.g. "http://127.0.0.1:9701"
	client *http.Client

	mu    sync.Mutex
	mode  FaultMode
	delay time.Duration
	// killAfter ≥ 0 arms the kill switch: once served reaches it, every
	// further request gets killMode instead of mode.
	killAfter int64
	killMode  FaultMode

	served atomic.Int64
	closed chan struct{}
	once   sync.Once
}

// NewFaultProxy builds a transparent proxy for the worker at target.
func NewFaultProxy(target string) *FaultProxy {
	return &FaultProxy{
		target:    target,
		client:    &http.Client{},
		killAfter: -1,
		closed:    make(chan struct{}),
	}
}

// SetMode switches the proxy's behaviour for subsequent requests; delay
// is only read in FaultDelay mode.
func (p *FaultProxy) SetMode(mode FaultMode, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mode, p.delay = mode, delay
}

// KillAfter arms the deterministic kill switch: the next n requests
// behave per the current mode, every request after them gets failMode
// (FaultReset models a crash, FaultBlackhole a wedge). Counting is by
// requests reaching the proxy from the moment of arming, so the switch
// point does not depend on timing.
func (p *FaultProxy) KillAfter(n int, failMode FaultMode) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killAfter, p.killMode = p.served.Load()+int64(n), failMode
}

// Served returns how many requests have reached the proxy.
func (p *FaultProxy) Served() int64 { return p.served.Load() }

// Close releases any blackholed requests. The proxy must not be used
// afterwards.
func (p *FaultProxy) Close() { p.once.Do(func() { close(p.closed) }) }

// ServeHTTP implements http.Handler.
func (p *FaultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := p.served.Add(1)
	p.mu.Lock()
	mode, delay := p.mode, p.delay
	if p.killAfter >= 0 && n > p.killAfter {
		mode = p.killMode
	}
	p.mu.Unlock()

	switch mode {
	case FaultDelay:
		select {
		case <-time.After(delay):
		case <-p.closed:
			return
		case <-r.Context().Done():
			return
		}
	case FaultBlackhole:
		// Hold the connection open, answer nothing. The request body stays
		// unread and the response unwritten until the caller's deadline
		// (or the proxy's Close) releases it.
		select {
		case <-p.closed:
		case <-r.Context().Done():
		}
		return
	case FaultReset:
		hj, ok := w.(http.Hijacker)
		if !ok {
			// Fall back to an empty 502; callers still classify it
			// transient.
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
