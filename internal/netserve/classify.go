package netserve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
)

// StatusError is a non-2xx HTTP reply from a worker, carrying the status
// code so callers can classify it: 4xx means the request itself is wrong
// and retrying is pointless, 5xx means the worker (or something between)
// is momentarily unable to answer.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Op names the failed operation ("POST /v1/streams/3/frames",
	// "export slot 3").
	Op string
	// Msg is the worker's ErrorReply text, when the body carried one.
	Msg string
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("netserve: %s: %s", e.Op, e.Msg)
	}
	return fmt.Sprintf("netserve: %s: HTTP %d", e.Op, e.Code)
}

// IsTransient classifies an error from a worker round trip: true when the
// failure is plausibly momentary — the worker died, restarted, wedged, or
// a barrier timed out — so a retry (or a failover) can succeed; false when
// the request itself was rejected (4xx validation, config mismatch) and
// retrying the same request can only fail the same way.
//
// Transient: connection refused/reset, broken pipe, abrupt EOF mid-reply,
// any net.OpError (dial/read/write failures), timeouts (client deadline,
// net.Error timeouts), and 5xx replies — 503 is how observer endpoints
// report a barrier timeout. Terminal: 4xx replies, ErrBusy (429 is load
// shedding, which callers account separately, not a retry loop), and
// context.Canceled (the caller gave up on purpose).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrBusy) || errors.Is(err, context.Canceled) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	// Any other socket-level failure (a net.OpError without a recognised
	// cause) still means the bytes never made it, not that they were
	// rejected.
	var oe *net.OpError
	if errors.As(err, &oe) {
		return true
	}
	// The transport's keep-alive reuse race: the request went out on a
	// pooled connection the server had already torn down, so the bytes
	// were never processed. net/http reports it with an unexported
	// sentinel and only retries it internally for idempotent requests —
	// frame submits are POSTs, so it reaches us raw, and the message is
	// the only handle the stdlib exposes.
	if strings.Contains(err.Error(), "server closed idle connection") {
		return true
	}
	// http.Client surfaces its own Timeout (and the transport's abrupt
	// connection closures) as *url.Error values that unwrap to one of the
	// causes above; http.ErrServerClosed-style shutdowns land here.
	return errors.Is(err, http.ErrServerClosed)
}
