// Package netserve puts a network boundary in front of the multi-stream
// serving runtime: an HTTP/JSON API over serve.Server exposing frame
// submit, score/result retrieval, per-stream and memory/ledger stats,
// checkpoint and evict triggers, and single-stream state export/restore —
// the unit of checkpoint-based migration between worker processes. The
// sibling Client is the typed consumer; internal/shard builds the
// many-process router on top of both.
//
// Frame submits are serialized per stream slot (one camera, one ordered
// feed) behind a bounded gate: when more than MaxPending submits are
// queued on one slot the handler sheds the excess with 429 instead of
// queueing unboundedly — admission control at the worker. Observer
// endpoints (stats, scores, export) run deadline-bound raw barriers on
// the stream's loop, so they neither deadlock against a busy pipeline
// (Server.DoContext) nor join an in-flight adaptation round early —
// polling a live worker does not perturb any stream's trajectory.
package netserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"edgekg/internal/serve"
	"edgekg/internal/snapshot"
	"edgekg/internal/tensor"
)

// Options configures a Handler.
type Options struct {
	// FrameSize is the expected raw frame-feature length (required).
	FrameSize int
	// MaxPending bounds the submits queued per stream slot, the one being
	// scored included; beyond it the handler sheds with 429. Defaults
	// to 8.
	MaxPending int
	// BarrierTimeout bounds how long an observer endpoint waits for a
	// stream's loop to reach its barrier before giving up with 503.
	// Defaults to 10s.
	BarrierTimeout time.Duration
	// CheckpointPath, when set, is where POST /v1/checkpoint writes the
	// full-deployment checkpoint (the -checkpoint-dir wiring).
	CheckpointPath string
}

// Handler serves the HTTP API over one serve.Server.
type Handler struct {
	srv  *serve.Server
	opts Options
	mux  *http.ServeMux
	// gates[i] serializes slot i's submit+result round trips and counts
	// the waiters the MaxPending admission bound applies to.
	gates    []slotGate
	results  []<-chan serve.Result
	shutdown chan struct{}
	shutOnce sync.Once
	kill     chan struct{}
	killOnce sync.Once
}

type slotGate struct {
	mu      sync.Mutex
	waiters int32
}

// NewHandler builds the API over srv. srv must outlive the handler; the
// caller still owns Shutdown.
func NewHandler(srv *serve.Server, opts Options) (*Handler, error) {
	if opts.FrameSize < 1 {
		return nil, fmt.Errorf("netserve: frame size %d must be ≥1", opts.FrameSize)
	}
	if opts.MaxPending < 1 {
		opts.MaxPending = 8
	}
	if opts.BarrierTimeout <= 0 {
		opts.BarrierTimeout = 10 * time.Second
	}
	h := &Handler{
		srv:      srv,
		opts:     opts,
		mux:      http.NewServeMux(),
		gates:    make([]slotGate, srv.NumStreams()),
		results:  make([]<-chan serve.Result, srv.NumStreams()),
		shutdown: make(chan struct{}),
		kill:     make(chan struct{}),
	}
	for i := 0; i < srv.NumStreams(); i++ {
		ch, err := srv.Results(i)
		if err != nil {
			return nil, err
		}
		h.results[i] = ch
	}
	h.mux.HandleFunc("GET /healthz", h.handleHealth)
	h.mux.HandleFunc("POST /v1/streams/{id}/frames", h.handleFrame)
	h.mux.HandleFunc("GET /v1/streams/{id}/stats", h.handleStats)
	h.mux.HandleFunc("GET /v1/streams/{id}/scores", h.handleScores)
	h.mux.HandleFunc("POST /v1/streams/{id}/evict", h.handleEvict)
	h.mux.HandleFunc("POST /v1/streams/{id}/release", h.handleRelease)
	h.mux.HandleFunc("GET /v1/streams/{id}/export", h.handleExport)
	h.mux.HandleFunc("POST /v1/streams/{id}/restore", h.handleRestore)
	h.mux.HandleFunc("GET /v1/mem", h.handleMem)
	h.mux.HandleFunc("POST /v1/checkpoint", h.handleCheckpoint)
	h.mux.HandleFunc("POST /v1/shutdown", h.handleShutdown)
	h.mux.HandleFunc("POST /v1/die", h.handleDie)
	return h, nil
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// ShutdownRequested is closed once a client POSTs /v1/shutdown; the
// process embedding the handler stops its http.Server then.
func (h *Handler) ShutdownRequested() <-chan struct{} { return h.shutdown }

// KillRequested is closed once a client POSTs /v1/die: the embedding
// process must stop abruptly — http.Server.Close, not Shutdown — so
// in-flight connections are severed exactly as a crash would sever them.
// Failover tests and drills use this to kill a worker deterministically.
func (h *Handler) KillRequested() <-chan struct{} { return h.kill }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorReply{Error: fmt.Sprintf(format, args...)})
}

// slot parses the {id} path value against the server's stream count.
func (h *Handler) slot(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= h.srv.NumStreams() {
		writeErr(w, http.StatusNotFound, "no stream %q", r.PathValue("id"))
		return 0, false
	}
	return id, true
}

func (h *Handler) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{OK: true, Streams: h.srv.NumStreams(), FrameSize: h.opts.FrameSize})
}

func (h *Handler) handleFrame(w http.ResponseWriter, r *http.Request) {
	id, ok := h.slot(w, r)
	if !ok {
		return
	}
	var req FrameRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad frame request: %v", err)
		return
	}
	if len(req.Frame) != h.opts.FrameSize {
		writeErr(w, http.StatusBadRequest, "frame length %d, want %d", len(req.Frame), h.opts.FrameSize)
		return
	}
	g := &h.gates[id]
	if int(atomic.AddInt32(&g.waiters, 1)) > h.opts.MaxPending {
		atomic.AddInt32(&g.waiters, -1)
		writeErr(w, http.StatusTooManyRequests, "stream %d overloaded (%d submits pending)", id, h.opts.MaxPending)
		return
	}
	defer atomic.AddInt32(&g.waiters, -1)
	g.mu.Lock()
	defer g.mu.Unlock()
	pix := tensor.FromSlice(req.Frame, len(req.Frame))
	if err := h.srv.Submit(id, pix); err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	res, open := <-h.results[id]
	if !open {
		writeErr(w, http.StatusConflict, "stream %d closed", id)
		return
	}
	rep := FrameReply{
		Stream:       res.Stream,
		Seq:          res.Seq,
		Score:        res.Score,
		AdaptApplied: res.AdaptApplied,
		Triggered:    res.Adapt.Triggered,
		Pruned:       len(res.Adapt.Pruned),
		Created:      len(res.Adapt.Created),
	}
	if res.Err != nil {
		rep.Err = res.Err.Error()
	}
	writeJSON(w, http.StatusOK, rep)
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	id, ok := h.slot(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.BarrierTimeout)
	defer cancel()
	st, err := h.srv.StatsContext(ctx, id)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "stream %d stats: %v", id, err)
		return
	}
	writeJSON(w, http.StatusOK, StatsReply{
		Stream:           st.Stream,
		Frames:           st.Frames,
		AdaptRounds:      st.AdaptRounds,
		TriggeredRounds:  st.TriggeredRounds,
		PrunedNodes:      st.PrunedNodes,
		CreatedNodes:     st.CreatedNodes,
		ScoringOps:       st.ScoringOps,
		AdaptOps:         st.AdaptOps,
		AdaptOpsPerRound: st.AdaptOpsPerRound,
		EnergyPerAdaptJ:  st.EnergyPerAdaptJ,
		AdaptLatencyS:    st.AdaptLatencyS,
		ResidentBytes:    st.ResidentBytes,
		Evictions:        st.Evictions,
		LastErr:          st.LastErr,
	})
}

func (h *Handler) handleScores(w http.ResponseWriter, r *http.Request) {
	id, ok := h.slot(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.BarrierTimeout)
	defer cancel()
	scores, err := h.srv.ScoresContext(ctx, id)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "stream %d scores: %v", id, err)
		return
	}
	writeJSON(w, http.StatusOK, ScoresReply{Stream: id, Scores: scores})
}

func (h *Handler) handleEvict(w http.ResponseWriter, r *http.Request) {
	id, ok := h.slot(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.BarrierTimeout)
	defer cancel()
	ch := make(chan error, 1)
	if err := h.srv.DoRawContext(ctx, id, func(st *serve.Stream) { ch <- st.Evict() }); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "stream %d evict: %v", id, err)
		return
	}
	if err := <-ch; err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (h *Handler) handleRelease(w http.ResponseWriter, r *http.Request) {
	id, ok := h.slot(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.BarrierTimeout)
	defer cancel()
	ch := make(chan error, 1)
	if err := h.srv.DoRawContext(ctx, id, func(st *serve.Stream) { ch <- st.Release() }); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "stream %d release: %v", id, err)
		return
	}
	if err := <-ch; err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (h *Handler) handleExport(w http.ResponseWriter, r *http.Request) {
	id, ok := h.slot(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.BarrierTimeout)
	defer cancel()
	type exported struct {
		ss  *snapshot.StreamState
		err error
	}
	ch := make(chan exported, 1)
	if err := h.srv.DoRawContext(ctx, id, func(st *serve.Stream) {
		ss, err := st.Export()
		ch <- exported{ss, err}
	}); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "stream %d export: %v", id, err)
		return
	}
	ex := <-ch
	if ex.err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", ex.err)
		return
	}
	writeJSON(w, http.StatusOK, ex.ss)
}

func (h *Handler) handleRestore(w http.ResponseWriter, r *http.Request) {
	id, ok := h.slot(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading snapshot: %v", err)
		return
	}
	var ss snapshot.StreamState
	if err := json.Unmarshal(body, &ss); err != nil {
		writeErr(w, http.StatusBadRequest, "bad snapshot: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.BarrierTimeout)
	defer cancel()
	ch := make(chan error, 1)
	if err := h.srv.DoRawContext(ctx, id, func(st *serve.Stream) { ch <- st.Restore(&ss) }); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "stream %d restore: %v", id, err)
		return
	}
	if err := <-ch; err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (h *Handler) handleMem(w http.ResponseWriter, r *http.Request) {
	l := h.srv.MemLedger()
	rep := MemReply{Resident: l.Total(), Budget: l.Budget()}
	for i := 0; i < h.srv.NumStreams(); i++ {
		ctx, cancel := context.WithTimeout(r.Context(), h.opts.BarrierTimeout)
		st, err := h.srv.StatsContext(ctx, i)
		cancel()
		row := MemStreamRow{Stream: i}
		if err != nil {
			row.LastErr = err.Error()
		} else {
			row.Resident = st.ResidentBytes
			row.Evictions = st.Evictions
			row.LastErr = st.LastErr
		}
		rep.Streams = append(rep.Streams, row)
	}
	writeJSON(w, http.StatusOK, rep)
}

func (h *Handler) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if h.opts.CheckpointPath == "" {
		writeErr(w, http.StatusBadRequest, "no checkpoint path configured (start the worker with -checkpoint-dir)")
		return
	}
	cp, err := h.srv.Checkpoint()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	if err := snapshot.Save(h.opts.CheckpointPath, cp); err != nil {
		writeErr(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointReply{Path: h.opts.CheckpointPath})
}

func (h *Handler) handleShutdown(w http.ResponseWriter, r *http.Request) {
	h.shutOnce.Do(func() { close(h.shutdown) })
	writeJSON(w, http.StatusOK, struct{}{})
}

func (h *Handler) handleDie(w http.ResponseWriter, r *http.Request) {
	// Best-effort 200 — the abrupt stop the embedder performs on
	// KillRequested usually cuts this connection before the reply lands,
	// which is why Client.Die tolerates transport errors.
	writeJSON(w, http.StatusOK, struct{}{})
	h.killOnce.Do(func() { close(h.kill) })
}
