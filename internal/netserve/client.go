package netserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ErrBusy reports a 429 from the worker: the target slot's submit queue
// is full and the frame was shed. The shard router counts these as load
// shedding rather than failures.
var ErrBusy = errors.New("netserve: worker busy")

// Client is the typed consumer of one worker's HTTP API.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the worker at base (e.g.
// "http://127.0.0.1:9701"). The underlying HTTP client has no request
// timeout — frame submits queue behind a slot's scoring and adaptation;
// per-call bounds come from the caller's context.
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{}}
}

// do issues one request and decodes the JSON reply into out (when out is
// non-nil). Non-2xx replies decode the ErrorReply body; 429 maps to
// ErrBusy.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return ErrBusy
	}
	if resp.StatusCode/100 != 2 {
		var er ErrorReply
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			return fmt.Errorf("netserve: %s %s: %s", method, path, er.Error)
		}
		return fmt.Errorf("netserve: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health probes the worker, returning its shape.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// WaitReady polls Health until the worker answers or the deadline lapses
// — workers train their backbone before listening, so the first probe can
// trail the process start by a while.
func (c *Client) WaitReady(ctx context.Context) (Health, error) {
	for {
		probe, cancel := context.WithTimeout(ctx, 2*time.Second)
		h, err := c.Health(probe)
		cancel()
		if err == nil && h.OK {
			return h, nil
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
			return Health{}, fmt.Errorf("netserve: worker %s not ready: %w", c.base, err)
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// SubmitFrame scores one frame on a slot, blocking until the result (or
// ErrBusy when the slot's queue is full).
func (c *Client) SubmitFrame(ctx context.Context, slot int, frame []float64) (FrameReply, error) {
	var rep FrameReply
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/streams/%d/frames", slot), FrameRequest{Frame: frame}, &rep)
	return rep, err
}

// Stats fetches one slot's statistics.
func (c *Client) Stats(ctx context.Context, slot int) (StatsReply, error) {
	var rep StatsReply
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/streams/%d/stats", slot), nil, &rep)
	return rep, err
}

// Scores fetches one slot's retained score history.
func (c *Client) Scores(ctx context.Context, slot int) ([]float64, error) {
	var rep ScoresReply
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/streams/%d/scores", slot), nil, &rep)
	return rep.Scores, err
}

// Evict spills one slot's heavy state to the worker's spill directory.
func (c *Client) Evict(ctx context.Context, slot int) error {
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/streams/%d/evict", slot), nil, nil)
}

// ExportRaw captures one slot's complete adaptation state as the
// snapshot JSON bytes — passed to RestoreRaw verbatim, so a migration
// never re-encodes the state it moves.
func (c *Client) ExportRaw(ctx context.Context, slot int) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/streams/%d/export", c.base, slot), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var er ErrorReply
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return nil, fmt.Errorf("netserve: export slot %d: %s", slot, er.Error)
		}
		return nil, fmt.Errorf("netserve: export slot %d: HTTP %d", slot, resp.StatusCode)
	}
	return body, nil
}

// RestoreRaw installs exported snapshot bytes into a slot.
func (c *Client) RestoreRaw(ctx context.Context, slot int, state []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, fmt.Sprintf("%s/v1/streams/%d/restore", c.base, slot), bytes.NewReader(state))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var er ErrorReply
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			return fmt.Errorf("netserve: restore slot %d: %s", slot, er.Error)
		}
		return fmt.Errorf("netserve: restore slot %d: HTTP %d", slot, resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Mem fetches the worker's memory report.
func (c *Client) Mem(ctx context.Context) (MemReply, error) {
	var rep MemReply
	err := c.do(ctx, http.MethodGet, "/v1/mem", nil, &rep)
	return rep, err
}

// Checkpoint asks the worker to write its full-deployment checkpoint,
// returning the path it wrote.
func (c *Client) Checkpoint(ctx context.Context) (string, error) {
	var rep CheckpointReply
	err := c.do(ctx, http.MethodPost, "/v1/checkpoint", nil, &rep)
	return rep.Path, err
}

// Shutdown asks the worker process to drain and exit its serving loop.
func (c *Client) Shutdown(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/shutdown", nil, nil)
}
