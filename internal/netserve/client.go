package netserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ErrBusy reports a 429 from the worker: the target slot's submit queue
// is full and the frame was shed. The shard router counts these as load
// shedding rather than failures.
var ErrBusy = errors.New("netserve: worker busy")

// DefaultTimeout is the per-request deadline a new Client ships with: long
// enough that a frame submit can queue behind a slot's scoring and a full
// adaptation round, short enough that a blackholed worker (accepts, never
// answers) cannot wedge a caller forever. Override with WithTimeout.
const DefaultTimeout = 60 * time.Second

// Client is the typed consumer of one worker's HTTP API.
type Client struct {
	base    string
	http    *http.Client
	retries int
	backoff time.Duration
}

// ClientOption tunes a Client at construction.
type ClientOption func(*Client)

// WithTimeout sets the per-request deadline (connection + full round
// trip). d ≤ 0 removes the bound entirely — callers then own every
// deadline via their contexts. The default is DefaultTimeout.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d <= 0 {
			d = 0
		}
		c.http.Timeout = d
	}
}

// WithRetry retries transiently failed idempotent requests (GETs: health,
// stats, scores, export) up to attempts extra times, sleeping backoff
// between tries. Frame submits and other POSTs are never retried here —
// they are not idempotent, and the shard layer's failover owns their
// redelivery semantics.
func WithRetry(attempts int, backoff time.Duration) ClientOption {
	return func(c *Client) {
		if attempts < 0 {
			attempts = 0
		}
		c.retries = attempts
		c.backoff = backoff
	}
}

// NewClient returns a client for the worker at base (e.g.
// "http://127.0.0.1:9701") with the default per-request timeout.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{base: base, http: &http.Client{Timeout: DefaultTimeout}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// retryGet runs fn (one idempotent round trip), retrying transient
// failures per the client's retry policy.
func (c *Client) retryGet(ctx context.Context, fn func() error) error {
	err := fn()
	for i := 0; i < c.retries && IsTransient(err); i++ {
		select {
		case <-ctx.Done():
			return err
		case <-time.After(c.backoff):
		}
		err = fn()
	}
	return err
}

// do issues one request and decodes the JSON reply into out (when out is
// non-nil). Non-2xx replies decode the ErrorReply body into a typed
// *StatusError; 429 maps to ErrBusy. GETs retry per the client's policy.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return err
		}
	}
	attempt := func() error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(buf)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			return ErrBusy
		}
		if resp.StatusCode/100 != 2 {
			se := &StatusError{Code: resp.StatusCode, Op: method + " " + path}
			var er ErrorReply
			if json.NewDecoder(resp.Body).Decode(&er) == nil {
				se.Msg = er.Error
			}
			return se
		}
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	if method == http.MethodGet {
		return c.retryGet(ctx, attempt)
	}
	return attempt()
}

// Health probes the worker, returning its shape.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// WaitReady polls Health until the worker answers or the deadline lapses
// — workers train their backbone before listening, so the first probe can
// trail the process start by a while.
func (c *Client) WaitReady(ctx context.Context) (Health, error) {
	for {
		probe, cancel := context.WithTimeout(ctx, 2*time.Second)
		h, err := c.Health(probe)
		cancel()
		if err == nil && h.OK {
			return h, nil
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
			return Health{}, fmt.Errorf("netserve: worker %s not ready: %w", c.base, err)
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// SubmitFrame scores one frame on a slot, blocking until the result (or
// ErrBusy when the slot's queue is full). A per-frame processing error the
// worker reports in the reply body (a released slot, a scoring failure)
// surfaces as a non-transient error: the frame was not scored, and
// retrying it verbatim will not help.
func (c *Client) SubmitFrame(ctx context.Context, slot int, frame []float64) (FrameReply, error) {
	var rep FrameReply
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/streams/%d/frames", slot), FrameRequest{Frame: frame}, &rep)
	if err == nil && rep.Err != "" {
		err = fmt.Errorf("netserve: submit slot %d: %s", slot, rep.Err)
	}
	return rep, err
}

// Stats fetches one slot's statistics.
func (c *Client) Stats(ctx context.Context, slot int) (StatsReply, error) {
	var rep StatsReply
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/streams/%d/stats", slot), nil, &rep)
	return rep, err
}

// Scores fetches one slot's retained score history.
func (c *Client) Scores(ctx context.Context, slot int) ([]float64, error) {
	var rep ScoresReply
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/streams/%d/scores", slot), nil, &rep)
	return rep.Scores, err
}

// Evict spills one slot's heavy state to the worker's spill directory.
func (c *Client) Evict(ctx context.Context, slot int) error {
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/streams/%d/evict", slot), nil, nil)
}

// Release permanently drops one slot's stream state on the worker: the
// stream moved elsewhere (migration or failover) and this slot will never
// serve its key again, so its resident bytes must stop being charged.
func (c *Client) Release(ctx context.Context, slot int) error {
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/v1/streams/%d/release", slot), nil, nil)
}

// ExportRaw captures one slot's complete adaptation state as the
// snapshot JSON bytes — passed to RestoreRaw verbatim, so a migration
// never re-encodes the state it moves.
func (c *Client) ExportRaw(ctx context.Context, slot int) ([]byte, error) {
	var body []byte
	attempt := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/streams/%d/export", c.base, slot), nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if body, err = io.ReadAll(resp.Body); err != nil {
			return err
		}
		if resp.StatusCode/100 != 2 {
			se := &StatusError{Code: resp.StatusCode, Op: fmt.Sprintf("export slot %d", slot)}
			var er ErrorReply
			if json.Unmarshal(body, &er) == nil {
				se.Msg = er.Error
			}
			return se
		}
		return nil
	}
	if err := c.retryGet(ctx, attempt); err != nil {
		return nil, err
	}
	return body, nil
}

// RestoreRaw installs exported snapshot bytes into a slot.
func (c *Client) RestoreRaw(ctx context.Context, slot int, state []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, fmt.Sprintf("%s/v1/streams/%d/restore", c.base, slot), bytes.NewReader(state))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		se := &StatusError{Code: resp.StatusCode, Op: fmt.Sprintf("restore slot %d", slot)}
		var er ErrorReply
		if json.NewDecoder(resp.Body).Decode(&er) == nil {
			se.Msg = er.Error
		}
		return se
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Mem fetches the worker's memory report.
func (c *Client) Mem(ctx context.Context) (MemReply, error) {
	var rep MemReply
	err := c.do(ctx, http.MethodGet, "/v1/mem", nil, &rep)
	return rep, err
}

// Checkpoint asks the worker to write its full-deployment checkpoint,
// returning the path it wrote.
func (c *Client) Checkpoint(ctx context.Context) (string, error) {
	var rep CheckpointReply
	err := c.do(ctx, http.MethodPost, "/v1/checkpoint", nil, &rep)
	return rep.Path, err
}

// Shutdown asks the worker process to drain and exit its serving loop.
func (c *Client) Shutdown(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/shutdown", nil, nil)
}

// Die asks the worker to stop abruptly — no drain, in-flight connections
// severed — simulating a crash for failover tests and drills. The worker
// usually cuts the connection before (or while) replying, so transport
// errors count as success.
func (c *Client) Die(ctx context.Context) error {
	err := c.do(ctx, http.MethodPost, "/v1/die", nil, nil)
	if err != nil && IsTransient(err) {
		return nil
	}
	return err
}
