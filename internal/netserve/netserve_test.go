package netserve_test

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/core"
	"edgekg/internal/dataset"
	"edgekg/internal/decision"
	"edgekg/internal/embed"
	"edgekg/internal/gnn"
	"edgekg/internal/kg"
	"edgekg/internal/kggen"
	"edgekg/internal/netserve"
	"edgekg/internal/oracle"
	"edgekg/internal/serve"
	"edgekg/internal/temporal"
	"edgekg/internal/tensor"
)

// buildBackbone assembles the small deployment fixture (the serve test
// fixture's twin): detector + frame generator, fully determined by seed.
func buildBackbone(t *testing.T, seed int64) (*core.Detector, *dataset.Generator) {
	t.Helper()
	ont := concept.Builtin()
	tok := bpe.Train(ont.Concepts(), 600)
	space, err := embed.NewSpace(tok, ont.Concepts(), embed.Config{Dim: 16, PixDim: 32, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	llm := oracle.NewSim(ont, rng, oracle.Config{EdgeProb: 0.9})
	g, _, err := kggen.Generate(llm, "Stealing",
		kggen.Options{Depth: 2, InitialFanout: 4, Fanout: 3, MaxCorrectionIters: 3, Tokenize: tok.Encode}, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(rng, space, []*kg.Graph{g}, core.Config{
		GNN:              gnn.Config{Width: 8},
		Temporal:         temporal.Config{InnerDim: 16, Heads: 2, Layers: 1, Window: 4},
		NumClasses:       2,
		Loss:             decision.DefaultLossConfig(),
		ScoreTemperature: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dataset.DefaultConfig()
	dcfg.FramesPerVideo = 16
	gen, err := dataset.NewGenerator(space, ont, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return det, gen
}

const pixDim = 32

// streamCfg mirrors the serve test configuration: aggressive cadence so
// short runs exercise adaptation rounds, async lag 2.
func streamCfg() serve.StreamConfig {
	cfg := serve.DefaultStreamConfig()
	cfg.MonitorN = 8
	cfg.MonitorLag = 4
	cfg.AdaptEveryFrames = 8
	cfg.AdaptLagFrames = 2
	cfg.Adapt.Patience = 1
	cfg.ScoreHistory = 64
	return cfg
}

// frames synthesises n deterministic raw frames for one stream.
func frames(t *testing.T, gen *dataset.Generator, seed int64, n int) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		cls := concept.Stealing
		if i >= n/2 {
			cls = concept.Robbery
		}
		out[i] = append([]float64(nil), gen.Frame(rng, cls).Data()...)
	}
	return out
}

// worker stands up a serve.Server with a handler on an httptest server,
// returning the typed client. Identical (seed, nstreams) calls produce
// bit-identical workers.
func worker(t *testing.T, seed int64, nstreams int, opts netserve.Options) (*serve.Server, *netserve.Client) {
	t.Helper()
	backbone, _ := buildBackbone(t, seed)
	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg()
	cfg.BaseSeed = 100
	srv, err := serve.NewServer(backbone, nstreams, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	if opts.FrameSize == 0 {
		opts.FrameSize = pixDim
	}
	h, err := netserve.NewHandler(srv, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return srv, netserve.NewClient(ts.URL)
}

// TestFrameRoundTripMatchesDirectServe pins that scoring through the
// HTTP boundary is bit-identical to driving the serve.Server directly:
// same backbone seed, same frames, equal score and adaptation traces.
func TestFrameRoundTripMatchesDirectServe(t *testing.T) {
	const seed, n = 3, 32
	_, gen := buildBackbone(t, seed)
	fs := frames(t, gen, 77, n)

	// Direct run.
	backbone, _ := buildBackbone(t, seed)
	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg()
	cfg.BaseSeed = 100
	direct, err := serve.NewServer(backbone, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Shutdown()
	res, err := direct.Results(0)
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for _, f := range fs {
		if err := direct.Submit(0, tensor.FromSlice(f, len(f))); err != nil {
			t.Fatal(err)
		}
		r := <-res
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want = append(want, r.Score)
	}

	// Networked run.
	_, client := worker(t, seed, 1, netserve.Options{})
	ctx := context.Background()
	h, err := client.Health(ctx)
	if err != nil || !h.OK || h.Streams != 1 || h.FrameSize != pixDim {
		t.Fatalf("health: %+v, %v", h, err)
	}
	for i, f := range fs {
		rep, err := client.SubmitFrame(ctx, 0, f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if rep.Seq != i {
			t.Fatalf("frame %d: seq %d", i, rep.Seq)
		}
		if rep.Score != want[i] {
			t.Fatalf("frame %d: networked score %v != direct %v", i, rep.Score, want[i])
		}
	}

	// Stats and scores agree with the direct run's shape.
	st, err := client.Stats(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != n {
		t.Fatalf("stats frames %d, want %d", st.Frames, n)
	}
	if st.AdaptRounds == 0 {
		t.Fatal("no adaptation rounds over a drifting run")
	}
	scores, err := client.Scores(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("no retained scores")
	}
	tail := want[len(want)-len(scores):]
	for i := range scores {
		if scores[i] != tail[i] {
			t.Fatalf("retained score %d: %v != %v", i, scores[i], tail[i])
		}
	}
}

// TestFrameValidation pins the 4xx surface: bad slot, bad frame length.
func TestFrameValidation(t *testing.T) {
	_, client := worker(t, 5, 1, netserve.Options{})
	ctx := context.Background()
	if _, err := client.SubmitFrame(ctx, 7, make([]float64, pixDim)); err == nil ||
		!strings.Contains(err.Error(), "no stream") {
		t.Fatalf("bad slot: %v", err)
	}
	if _, err := client.SubmitFrame(ctx, 0, []float64{1, 2, 3}); err == nil ||
		!strings.Contains(err.Error(), "frame length") {
		t.Fatalf("bad frame length: %v", err)
	}
	if _, err := client.Stats(ctx, -1); err == nil {
		t.Fatal("negative slot: want error")
	}
}

// TestOverloadSheds429 pins worker-side admission control: with the
// stream's loop parked on a barrier, MaxPending submits queue and the
// next one is shed as ErrBusy — and capacity recovers once the loop
// resumes.
func TestOverloadSheds429(t *testing.T) {
	const maxPending = 2
	srv, client := worker(t, 5, 1, netserve.Options{MaxPending: maxPending})
	ctx := context.Background()

	release := make(chan struct{})
	parked := make(chan struct{})
	go srv.Do(0, func(*serve.Stream) { close(parked); <-release })
	<-parked

	// Fill the gate sequentially: each probe takes a waiters token, blocks
	// behind the parked loop and is abandoned at its client deadline (the
	// server-side handler keeps the token). The (maxPending+1)-th submit
	// must shed immediately with 429.
	frame := make([]float64, pixDim)
	for i := 0; i < maxPending; i++ {
		pctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
		_, err := client.SubmitFrame(pctx, 0, frame)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("gate-filling submit %d: %v, want deadline exceeded", i, err)
		}
	}
	if _, err := client.SubmitFrame(ctx, 0, frame); !errors.Is(err, netserve.ErrBusy) {
		t.Fatalf("submit over the bound: %v, want ErrBusy", err)
	}

	// Resume the loop: the parked handlers drain their frames and free
	// their tokens, and capacity recovers.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := client.SubmitFrame(ctx, 0, frame)
		if err == nil {
			break
		}
		if !errors.Is(err, netserve.ErrBusy) || time.Now().After(deadline) {
			t.Fatalf("submit after recovery: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestObserverTimeout503 pins the deadline-bound barrier path end to
// end: a parked stream loop must turn observer polls into fast 503s, not
// hung connections — the Do/Results deadlock footgun, fenced at the
// network boundary.
func TestObserverTimeout503(t *testing.T) {
	srv, client := worker(t, 5, 1, netserve.Options{BarrierTimeout: 50 * time.Millisecond})
	ctx := context.Background()

	release := make(chan struct{})
	parked := make(chan struct{})
	go srv.Do(0, func(*serve.Stream) { close(parked); <-release })
	<-parked
	defer close(release)

	start := time.Now()
	_, err := client.Stats(ctx, 0)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("stats against a parked loop: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout path hung")
	}
	if _, err := client.Scores(ctx, 0); err == nil {
		t.Fatal("scores against a parked loop: want timeout error")
	}
}

// TestMigrationBitExactOverHTTP is the network twin of the warm-restart
// guarantee: export a live stream from worker A mid-run (with an
// adaptation round's swap still pending), restore it into worker B, and
// the continued trajectory must be bit-identical to a run that never
// moved.
func TestMigrationBitExactOverHTTP(t *testing.T) {
	const seed, n, cut = 9, 40, 19 // cut mid-round: round at 16, swap at 18+lag
	_, gen := buildBackbone(t, seed)
	fs := frames(t, gen, 55, n)
	ctx := context.Background()

	// Baseline: one worker, no migration.
	_, base := worker(t, seed, 1, netserve.Options{})
	var want []float64
	for i, f := range fs {
		rep, err := base.SubmitFrame(ctx, 0, f)
		if err != nil {
			t.Fatalf("baseline frame %d: %v", i, err)
		}
		want = append(want, rep.Score)
	}

	// Migrated: worker A serves frames [0,cut), state moves to B's slot 1
	// (a different slot index — restored RNG state supersedes the slot
	// seed), B serves the rest.
	_, wa := worker(t, seed, 1, netserve.Options{})
	_, wb := worker(t, seed, 2, netserve.Options{})
	var got []float64
	for i := 0; i < cut; i++ {
		rep, err := wa.SubmitFrame(ctx, 0, fs[i])
		if err != nil {
			t.Fatalf("pre-migration frame %d: %v", i, err)
		}
		got = append(got, rep.Score)
	}
	state, err := wa.ExportRaw(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := wb.RestoreRaw(ctx, 1, state); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < n; i++ {
		rep, err := wb.SubmitFrame(ctx, 1, fs[i])
		if err != nil {
			t.Fatalf("post-migration frame %d: %v", i, err)
		}
		got = append(got, rep.Score)
	}

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: migrated score %v != baseline %v", i, got[i], want[i])
		}
	}
}

// TestMemEndpoint pins the memory report: per-stream rows present,
// resident totals consistent with the ledger.
func TestMemEndpoint(t *testing.T) {
	_, gen := buildBackbone(t, 5)
	fs := frames(t, gen, 11, 4)
	_, client := worker(t, 5, 2, netserve.Options{})
	ctx := context.Background()
	for _, f := range fs {
		if _, err := client.SubmitFrame(ctx, 0, f); err != nil {
			t.Fatal(err)
		}
	}
	mem, err := client.Mem(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Streams) != 2 {
		t.Fatalf("mem rows: %d, want 2", len(mem.Streams))
	}
	if mem.Streams[0].Resident <= 0 {
		t.Fatalf("active stream resident %d, want > 0", mem.Streams[0].Resident)
	}
	// Rows are live walks; the process ledger refreshes only at settled
	// points on unbudgeted servers — assert presence, not equality.
	if mem.Resident <= 0 {
		t.Fatalf("ledger resident %d, want > 0", mem.Resident)
	}
	if mem.Budget != 0 {
		t.Fatalf("unbudgeted worker reports budget %d", mem.Budget)
	}
}
