package netserve_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"edgekg/internal/netserve"
	"edgekg/internal/serve"
)

// TestClientTimeoutBoundsBlackholedWorker is the no-deadline regression:
// against a listener that accepts connections and never answers, a client
// call must return at its configured timeout instead of hanging forever.
func TestClientTimeoutBoundsBlackholedWorker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var conns []net.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	accepted := make(chan struct{}, 16)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, c) // hold open, never respond
			accepted <- struct{}{}
		}
	}()

	client := netserve.NewClient("http://"+ln.Addr().String(), netserve.WithTimeout(200*time.Millisecond))
	start := time.Now()
	_, err = client.Health(context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("health against a blackholed worker succeeded")
	}
	if !netserve.IsTransient(err) {
		t.Fatalf("timeout not classified transient: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; the per-request deadline did not bind", elapsed)
	}
	select {
	case <-accepted:
	default:
		t.Fatal("listener never saw the connection (test is vacuous)")
	}
}

// TestIsTransientClassification pins the retryable/terminal split the
// retry and failover layers are built on.
func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		transient bool
	}{
		{"nil", nil, false},
		{"busy", netserve.ErrBusy, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, true},
		{"eof", io.EOF, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"conn-refused", syscall.ECONNREFUSED, true},
		{"conn-reset", syscall.ECONNRESET, true},
		{"http-500", &netserve.StatusError{Code: 500, Op: "GET /x"}, true},
		{"http-503", &netserve.StatusError{Code: 503, Op: "GET /x"}, true},
		{"http-404", &netserve.StatusError{Code: 404, Op: "GET /x"}, false},
		{"http-400", &netserve.StatusError{Code: 400, Op: "GET /x"}, false},
		{"op-error", &net.OpError{Op: "dial", Err: errors.New("down")}, true},
		// The keep-alive reuse race: net/http's unexported sentinel for a
		// request sent on a connection the server had already closed. It
		// reaches POSTs raw (the transport only auto-retries idempotent
		// requests), wrapped in a *url.Error like every transport failure.
		{"closed-idle-conn", &url.Error{Op: "Post", URL: "http://w/v1/streams/0/frames",
			Err: errors.New("http: server closed idle connection")}, true},
	}
	for _, tc := range cases {
		if got := netserve.IsTransient(tc.err); got != tc.transient {
			t.Errorf("IsTransient(%s) = %v, want %v", tc.name, got, tc.transient)
		}
	}
}

// TestRetryPolicyGETsOnly pins the client retry split: transiently failed
// GETs retry per WithRetry; POSTs never retry (they are not idempotent —
// redelivery belongs to the shard failover layer).
func TestRetryPolicyGETsOnly(t *testing.T) {
	var gets, posts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			if gets.Add(1) <= 2 {
				http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
				return
			}
			json.NewEncoder(w).Encode(netserve.Health{OK: true, Streams: 1, FrameSize: 4})
			return
		}
		posts.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	client := netserve.NewClient(ts.URL, netserve.WithRetry(3, time.Millisecond))
	h, err := client.Health(context.Background())
	if err != nil || !h.OK {
		t.Fatalf("health through two 503s: %+v, %v", h, err)
	}
	if got := gets.Load(); got != 3 {
		t.Fatalf("server saw %d GETs, want 3 (two retries)", got)
	}

	if err := client.Evict(context.Background(), 0); err == nil {
		t.Fatal("POST against a 500ing worker succeeded")
	}
	if got := posts.Load(); got != 1 {
		t.Fatalf("server saw %d POSTs, want 1 (POSTs must not retry)", got)
	}
}

// TestFaultProxyModes drives the deterministic fault injector through its
// modes: pass-through, added delay, connection reset, blackhole, and the
// kill-after-N-requests trigger.
func TestFaultProxyModes(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(netserve.Health{OK: true, Streams: 1, FrameSize: 4})
	}))
	defer backend.Close()
	proxy := netserve.NewFaultProxy(backend.URL)
	defer proxy.Close()
	ps := httptest.NewServer(proxy)
	defer ps.Close()
	client := netserve.NewClient(ps.URL, netserve.WithTimeout(300*time.Millisecond))
	ctx := context.Background()

	if h, err := client.Health(ctx); err != nil || !h.OK {
		t.Fatalf("pass-through: %+v, %v", h, err)
	}

	proxy.SetMode(netserve.FaultDelay, 100*time.Millisecond)
	start := time.Now()
	if h, err := client.Health(ctx); err != nil || !h.OK {
		t.Fatalf("delayed: %+v, %v", h, err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("delay mode answered in %v, want ≥100ms", d)
	}

	proxy.SetMode(netserve.FaultReset, 0)
	if _, err := client.Health(ctx); err == nil || !netserve.IsTransient(err) {
		t.Fatalf("reset mode: %v, want a transient transport error", err)
	}

	proxy.SetMode(netserve.FaultBlackhole, 0)
	start = time.Now()
	if _, err := client.Health(ctx); err == nil || !netserve.IsTransient(err) {
		t.Fatalf("blackhole mode: %v, want a transient timeout", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("blackhole answered... in %v (client timeout did not bind)", d)
	}

	proxy.SetMode(netserve.FaultNone, 0)
	proxy.KillAfter(2, netserve.FaultReset)
	for i := 0; i < 2; i++ {
		if h, err := client.Health(ctx); err != nil || !h.OK {
			t.Fatalf("pre-kill request %d: %+v, %v", i, h, err)
		}
	}
	if _, err := client.Health(ctx); err == nil || !netserve.IsTransient(err) {
		t.Fatalf("post-kill request: %v, want a transient transport error", err)
	}
	if proxy.Served() < 3 {
		t.Fatalf("proxy served %d requests, want ≥3", proxy.Served())
	}
}

// TestReleaseFreesResidentBytes is the retained-source-slot regression,
// pinned via the /v1/mem surface: after a slot's stream is released, its
// resident bytes drop to zero, the worker total shrinks, and the slot
// refuses further frames. Releasing again is a no-op.
func TestReleaseFreesResidentBytes(t *testing.T) {
	_, gen := buildBackbone(t, 5)
	fs := frames(t, gen, 11, 4)
	_, client := worker(t, 5, 2, netserve.Options{})
	ctx := context.Background()
	for _, f := range fs {
		for slot := 0; slot < 2; slot++ {
			if _, err := client.SubmitFrame(ctx, slot, f); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := client.Mem(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.Streams[0].Resident <= 0 || before.Streams[1].Resident <= 0 {
		t.Fatalf("active streams resident: %+v", before.Streams)
	}

	if err := client.Release(ctx, 0); err != nil {
		t.Fatal(err)
	}
	after, err := client.Mem(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Streams[0].Resident != 0 {
		t.Fatalf("released slot still resident: %d bytes", after.Streams[0].Resident)
	}
	if after.Streams[1].Resident != before.Streams[1].Resident {
		t.Fatalf("release perturbed the other slot: %d → %d bytes",
			before.Streams[1].Resident, after.Streams[1].Resident)
	}

	if _, err := client.SubmitFrame(ctx, 0, fs[0]); err == nil {
		t.Fatal("released slot accepted a frame")
	}
	if _, err := client.SubmitFrame(ctx, 1, fs[0]); err != nil {
		t.Fatalf("live slot after a neighbour's release: %v", err)
	}
	if err := client.Release(ctx, 0); err != nil {
		t.Fatalf("re-release not idempotent: %v", err)
	}
}

// TestWaitReadyBackoffAndCancellation pins the two WaitReady contracts:
// it polls through a worker's warm-up (refused/503 probes) until the
// first healthy answer, and a cancelled or expired context ends the wait
// promptly with a "not ready" error instead of spinning forever.
func TestWaitReadyBackoffAndCancellation(t *testing.T) {
	var probes atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if probes.Add(1) <= 2 {
			http.Error(w, `{"error":"training backbone"}`, http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(netserve.Health{OK: true, Streams: 1, FrameSize: 4})
	}))
	defer ts.Close()

	client := netserve.NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	h, err := client.WaitReady(ctx)
	if err != nil || !h.OK {
		t.Fatalf("WaitReady through warm-up: %+v, %v", h, err)
	}
	if got := probes.Load(); got < 3 {
		t.Fatalf("worker saw %d probes, want ≥3 (two warm-up refusals)", got)
	}

	// Against a worker that never becomes ready, the caller's deadline must
	// bound the wait.
	never := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"never ready"}`, http.StatusServiceUnavailable)
	}))
	defer never.Close()
	nc := netserve.NewClient(never.URL)
	short, cancel2 := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel2()
	start := time.Now()
	if _, err := nc.WaitReady(short); err == nil {
		t.Fatal("WaitReady against a never-ready worker succeeded")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("WaitReady outlived its context by %v", d)
	}

	// An already-cancelled context returns immediately.
	done, cancel3 := context.WithCancel(context.Background())
	cancel3()
	start = time.Now()
	if _, err := nc.WaitReady(done); err == nil {
		t.Fatal("WaitReady with a cancelled context succeeded")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancelled WaitReady took %v", d)
	}
}

// TestDieEndpointKillsAbruptly pins the crash drill: /v1/die acknowledges,
// the embedder severs every connection, and from then on the worker is
// indistinguishable from a crashed process (transient transport errors).
func TestDieEndpointKillsAbruptly(t *testing.T) {
	backbone, _ := buildBackbone(t, 5)
	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg()
	cfg.BaseSeed = 100
	srv, err := serve.NewServer(backbone, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	h, err := netserve.NewHandler(srv, netserve.Options{FrameSize: pixDim})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	killed := make(chan struct{})
	go func() {
		<-h.KillRequested()
		ts.CloseClientConnections()
		ts.Close()
		close(killed)
	}()

	client := netserve.NewClient(ts.URL, netserve.WithTimeout(2*time.Second))
	if err := client.Die(context.Background()); err != nil {
		t.Fatalf("die: %v", err)
	}
	select {
	case <-killed:
	case <-time.After(5 * time.Second):
		t.Fatal("kill request never reached the embedder")
	}
	_, err = client.Health(context.Background())
	if err == nil {
		t.Fatal("killed worker answered a health probe")
	}
	if !netserve.IsTransient(err) {
		t.Fatalf("dead worker's error not transient (failover would not retry): %v", err)
	}
}
