package netserve

// Wire DTOs of the HTTP/JSON serving API, shared by Handler and Client.
// Heavy payloads (stream snapshots) reuse the internal/snapshot JSON
// encoding verbatim — the same bytes a warm-restart checkpoint writes —
// so a migrated stream round-trips bit-exactly through the network
// boundary without a second codec.

// Health is GET /healthz: the worker's shape, which the router needs to
// allocate slots.
type Health struct {
	OK        bool `json:"ok"`
	Streams   int  `json:"streams"`
	FrameSize int  `json:"frame_size"`
}

// FrameRequest is POST /v1/streams/{id}/frames.
type FrameRequest struct {
	Frame []float64 `json:"frame"`
}

// FrameReply reports one scored frame — the network mirror of
// serve.Result.
type FrameReply struct {
	Stream int     `json:"stream"`
	Seq    int     `json:"seq"`
	Score  float64 `json:"score"`
	// AdaptApplied is true when an adaptation round's effect became
	// visible at this frame; Triggered/Pruned/Created describe that round.
	AdaptApplied bool   `json:"adapt_applied,omitempty"`
	Triggered    bool   `json:"triggered,omitempty"`
	Pruned       int    `json:"pruned,omitempty"`
	Created      int    `json:"created,omitempty"`
	Err          string `json:"err,omitempty"`
}

// StatsReply is GET /v1/streams/{id}/stats — the network mirror of
// serve.Stats.
type StatsReply struct {
	Stream           int     `json:"stream"`
	Frames           int     `json:"frames"`
	AdaptRounds      int     `json:"adapt_rounds"`
	TriggeredRounds  int     `json:"triggered_rounds"`
	PrunedNodes      int     `json:"pruned_nodes"`
	CreatedNodes     int     `json:"created_nodes"`
	ScoringOps       int64   `json:"scoring_ops"`
	AdaptOps         int64   `json:"adapt_ops"`
	AdaptOpsPerRound int64   `json:"adapt_ops_per_round"`
	EnergyPerAdaptJ  float64 `json:"energy_per_adapt_j"`
	AdaptLatencyS    float64 `json:"adapt_latency_s"`
	ResidentBytes    int64   `json:"resident_bytes"`
	Evictions        int     `json:"evictions"`
	LastErr          string  `json:"last_err,omitempty"`
}

// ScoresReply is GET /v1/streams/{id}/scores.
type ScoresReply struct {
	Stream int       `json:"stream"`
	Scores []float64 `json:"scores"`
}

// MemStreamRow is one stream's row in the memory report.
type MemStreamRow struct {
	Stream    int    `json:"stream"`
	Resident  int64  `json:"resident"`
	Evictions int    `json:"evictions"`
	LastErr   string `json:"last_err,omitempty"`
}

// MemReply is GET /v1/mem: the process-wide resident-bytes ledger plus
// per-stream rows, including each stream's retained error so a failed
// background spill is loud at the operational surface.
type MemReply struct {
	Resident int64          `json:"resident"`
	Budget   int64          `json:"budget"`
	Streams  []MemStreamRow `json:"streams"`
}

// CheckpointReply is POST /v1/checkpoint: where the full-deployment
// checkpoint was written.
type CheckpointReply struct {
	Path string `json:"path"`
}

// ErrorReply is any non-2xx response body.
type ErrorReply struct {
	Error string `json:"error"`
}
