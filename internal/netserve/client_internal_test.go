package netserve

import (
	"testing"
	"time"
)

// TestNewClientDefaultDeadline pins the constructor contract: a client
// built without options carries a finite per-request deadline (the
// no-timeout regression: a hung worker must not wedge callers forever),
// and WithTimeout can both tighten and remove it.
func TestNewClientDefaultDeadline(t *testing.T) {
	if DefaultTimeout <= 0 {
		t.Fatalf("DefaultTimeout = %v, want > 0", DefaultTimeout)
	}
	c := NewClient("http://127.0.0.1:1")
	if c.http.Timeout != DefaultTimeout {
		t.Fatalf("default client timeout = %v, want %v", c.http.Timeout, DefaultTimeout)
	}
	c = NewClient("http://127.0.0.1:1", WithTimeout(5*time.Second))
	if c.http.Timeout != 5*time.Second {
		t.Fatalf("WithTimeout(5s) client timeout = %v", c.http.Timeout)
	}
	c = NewClient("http://127.0.0.1:1", WithTimeout(0))
	if c.http.Timeout != 0 {
		t.Fatalf("WithTimeout(0) should remove the bound, got %v", c.http.Timeout)
	}
}
