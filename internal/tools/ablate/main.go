// Command ablate is a scratch tool for tuning the adaptation
// hyper-parameters against the Fig. 5 scenarios.
package main

import (
	"fmt"

	"edgekg/internal/concept"
	"edgekg/internal/experiments"
)

func main() {
	env, err := experiments.NewEnv(experiments.QuickScale())
	if err != nil {
		panic(err)
	}
	for _, sc := range []struct {
		name     string
		from, to concept.Class
	}{
		{"weak(S→R)", concept.Stealing, concept.Robbery},
		{"strong(S→E)", concept.Stealing, concept.Explosion},
	} {
		res, err := experiments.RunFig5(env, sc.from, sc.to)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s gain=%+.3f final=%.3f triggers=%d\n", sc.name, res.PostShiftGain(), res.FinalRecovery(), res.AdaptTriggers)
		for i := range res.Adaptive {
			if res.Adaptive[i].Phase == 1 {
				fmt.Printf("  step %2d adapt %.3f static %.3f\n", res.Adaptive[i].Step, res.Adaptive[i].AUC, res.Static[i].AUC)
			}
		}
	}
}
