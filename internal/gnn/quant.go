package gnn

import (
	"fmt"
	"sort"

	"edgekg/internal/kg"
	"edgekg/internal/tensor"
)

// QuantBank is a frozen int8 snapshot of a TokenBank: every node's token
// matrix quantized row-wise to 8-bit codes with per-row affine
// dequantization. It is read-only lookup state — the trainable float64
// banks stay the source of truth for adaptation, and a QuantBank is taken
// from them at deployment (or after an adaptation round) for consumers
// that only read: retrieval decoding, frozen-backbone embedding lookups,
// memory-tight serving replicas. At 1 byte per element plus 8 bytes per
// row it holds roughly an eighth of the float64 original.
type QuantBank struct {
	dim   int
	gen   uint64
	banks map[kg.NodeID]*tensor.QuantizedMatrix
}

// Quantize snapshots the bank at int8. The snapshot carries the source
// generation so callers can detect staleness after structural mutation.
func (tb *TokenBank) Quantize() *QuantBank {
	qb := &QuantBank{
		dim:   tb.dim,
		gen:   tb.gen,
		banks: make(map[kg.NodeID]*tensor.QuantizedMatrix, len(tb.banks)),
	}
	for id, b := range tb.banks {
		qb.banks[id] = tensor.QuantizeRows(b.Data)
	}
	return qb
}

// Dim returns the embedding dimensionality.
func (qb *QuantBank) Dim() int { return qb.dim }

// Gen returns the source bank's generation at snapshot time.
func (qb *QuantBank) Gen() uint64 { return qb.gen }

// Has reports whether the snapshot tracks node id.
func (qb *QuantBank) Has(id kg.NodeID) bool {
	_, ok := qb.banks[id]
	return ok
}

// Bank returns a node's quantized token matrix.
func (qb *QuantBank) Bank(id kg.NodeID) *tensor.QuantizedMatrix {
	b, ok := qb.banks[id]
	if !ok {
		panic(fmt.Sprintf("gnn: no quantized bank for node %d", id))
	}
	return b
}

// NodeEmbedding returns the node's (dim) float32 feature: the mean of its
// dequantized token rows — the reduced-precision twin of
// TokenBank.NodeEmbedding.
func (qb *QuantBank) NodeEmbedding(id kg.NodeID) []float32 {
	b := qb.Bank(id)
	out := make([]float32, qb.dim)
	r := b.Rows()
	if r == 0 {
		return out
	}
	row := make([]float32, qb.dim)
	for i := 0; i < r; i++ {
		b.DequantRow(i, row)
		for j, v := range row {
			out[j] += v
		}
	}
	inv := 1 / float32(r)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// NodeIDs returns the tracked node ids sorted ascending.
func (qb *QuantBank) NodeIDs() []kg.NodeID {
	ids := make([]kg.NodeID, 0, len(qb.banks))
	for id := range qb.banks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// MemBytes returns the snapshot's resident size: int8 codes plus per-row
// affine parameters across every node.
func (qb *QuantBank) MemBytes() int64 {
	var n int64
	for _, b := range qb.banks {
		n += int64(b.MemBytes())
	}
	return n
}
