package gnn

import (
	"fmt"
	"math"

	"edgekg/internal/autograd"
	"edgekg/internal/flops"
	"edgekg/internal/nn"
	"edgekg/internal/tensor"
	"edgekg/internal/tensor/kernels"
)

// The reduced-precision GNN forward: the same hierarchical layer stack as
// ForwardStats in inference mode, run at float32 with no tape. Frozen
// weights and BatchNorm running statistics are snapshotted per layer
// (cached on the layer structs every clone shares); the per-node token
// bank means are recomputed from the float64 truth on every forward,
// because deployment-time adaptation mutates bank pages in place without
// bumping the structural generation counter.

// layerF32 is one layer's float32 eval snapshot: dense weights plus the
// folded normalisation constants (running mean and 1/√(var+ε)).
type layerF32 struct {
	dense        *nn.LinearF32
	gamma, beta  []float32
	rmean, invSd []float32
}

// snapshotF32 returns the layer's cached float32 snapshot, building it on
// first use. The layer must be in inference mode: batch statistics have
// no frozen snapshot. Concurrent builders race benignly (first store
// wins; both narrow the same frozen weights).
func (ly *layer) snapshotF32() *layerF32 {
	if s := ly.f32.Load(); s != nil {
		return s
	}
	if ly.bn.Training() {
		panic("gnn: float32 forward requires inference mode")
	}
	d := ly.bn.RunningVar.Size()
	s := &layerF32{
		dense: ly.dense.F32(),
		gamma: narrowF32(ly.bn.Gamma.Data.Data()),
		beta:  narrowF32(ly.bn.Beta.Data.Data()),
		rmean: narrowF32(ly.bn.RunningMean.Data()),
		invSd: make([]float32, d),
	}
	for j, v := range ly.bn.RunningVar.Data() {
		s.invSd[j] = float32(1 / math.Sqrt(v+ly.bn.Eps))
	}
	ly.f32.CompareAndSwap(nil, s)
	if cur := ly.f32.Load(); cur != nil {
		return cur
	}
	return s
}

// ForwardEvalF32 reasons over a batch of already-encoded float32 frames
// (batch × space.Dim()) and returns the embedding-node outputs
// (batch × Width) — ForwardStats' inference path at reduced precision.
func (m *Model) ForwardEvalF32(frames *tensor.Tensor32) *tensor.Tensor32 {
	b := frames.Rows()
	if frames.Cols() != m.space.Dim() {
		panic(fmt.Sprintf("gnn: frame dim %d != semantic dim %d", frames.Cols(), m.space.Dim()))
	}

	var feats *tensor.Tensor32
	if len(m.lo.reasonIDs) > 0 {
		feats = bankMeansF32(m.orderedBanks(), m.space.Dim())
	}
	x := assembleBatchF32(frames, feats, m.lo.featRow, m.lo.sensorIdx, 1)

	rep := m.lo.replicated(b)
	for _, ly := range m.layers {
		s := ly.snapshotF32()
		x = s.dense.Forward(x)
		if ly.group >= 0 {
			rg := rep.groups[ly.group]
			x = edgeAggNormActEvalF32(x, s, rg.src, rg.dst, rg.inLevel)
		} else {
			bnEvalF32InPlace(x, s)
			nn.ELUF32InPlace(x)
		}
	}

	out := tensor.New32(b, x.Cols())
	for k, r := range rep.embRows {
		copy(out.Row(k), x.Row(r))
	}
	return out
}

// bankMeansF32 computes the per-node token-bank means in float64 (the
// banks' native width — adaptation updates them in place) and narrows the
// result, one (numNodes × dim) matrix per forward.
func bankMeansF32(banks []*autograd.Value, dim int) *tensor.Tensor32 {
	out := tensor.New32(len(banks), dim)
	for i, bank := range banks {
		bd := bank.Data
		r := bd.Rows()
		row := out.Row(i)
		if r == 0 {
			continue
		}
		inv := 1 / float64(r)
		for j := 0; j < dim; j++ {
			s := 0.0
			for k := 0; k < r; k++ {
				s += bd.At2(k, j)
			}
			row[j] = float32(s * inv)
		}
	}
	flops.Add(int64(out.Size() * 2))
	return out
}

// assembleBatchF32 builds the (b·v × dim) stacked node-feature matrix:
// one template of reasoning-node features and fill values, stamped per
// sample with that sample's frame embedding at the sensor row — the
// float32 twin of autograd.AssembleBatch.
func assembleBatchF32(frames, feats *tensor.Tensor32, featRow []int, frameRow int, fill float32) *tensor.Tensor32 {
	b, d := frames.Rows(), frames.Cols()
	v := len(featRow)
	template := make([]float32, v*d)
	for i := 0; i < v; i++ {
		row := template[i*d : (i+1)*d]
		switch {
		case featRow[i] >= 0:
			copy(row, feats.Row(featRow[i]))
		case i == frameRow:
			// stamped per sample below
		default:
			for j := range row {
				row[j] = fill
			}
		}
	}
	out := tensor.New32(b*v, d)
	od := out.Data()
	for k := 0; k < b; k++ {
		block := od[k*v*d : (k+1)*v*d]
		copy(block, template)
		copy(block[frameRow*d:(frameRow+1)*d], frames.Row(k))
	}
	return out
}

// edgeAggNormActEvalF32 is the fused layer tail at float32: hierarchical
// mean aggregation of product messages over the edge group, BatchNorm
// with frozen running statistics, ELU.
func edgeAggNormActEvalF32(x *tensor.Tensor32, s *layerF32, src, dst []int, inLevel []bool) *tensor.Tensor32 {
	n, d := x.Rows(), x.Cols()
	xd := x.Data()
	counts := make([]float32, n)
	for _, t := range dst {
		counts[t]++
	}
	bk := kernels.Active32()
	tmp := make([]float32, n*d)
	for e, t := range dst {
		if !inLevel[t] {
			continue
		}
		sr := src[e]
		bk.MulAcc(xd[sr*d:(sr+1)*d], xd[t*d:(t+1)*d], tmp[t*d:(t+1)*d])
	}
	for i := 0; i < n; i++ {
		row := tmp[i*d : (i+1)*d]
		if inLevel[i] && counts[i] > 0 {
			bk.Scale(1/counts[i], row, row)
		} else {
			copy(row, xd[i*d:(i+1)*d])
		}
	}
	out := tensor.New32(n, d)
	od := out.Data()
	for i := 0; i < n; i++ {
		trow := tmp[i*d : (i+1)*d]
		orow := od[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			pre := s.gamma[j]*((trow[j]-s.rmean[j])*s.invSd[j]) + s.beta[j]
			if pre > 0 {
				orow[j] = pre
			} else {
				orow[j] = float32(math.Exp(float64(pre)) - 1)
			}
		}
	}
	flops.Add(int64(2*len(dst)*d + 6*n*d))
	return out
}

// bnEvalF32InPlace normalises x with the snapshot's frozen statistics.
func bnEvalF32InPlace(x *tensor.Tensor32, s *layerF32) {
	r, d := x.Rows(), x.Cols()
	for i := 0; i < r; i++ {
		row := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = s.gamma[j]*((row[j]-s.rmean[j])*s.invSd[j]) + s.beta[j]
		}
	}
	flops.Add(int64(4 * r * d))
}

// narrowF32 narrows a float64 slice to a fresh float32 slice.
func narrowF32(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}
