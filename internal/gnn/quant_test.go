package gnn

import (
	"math"
	"testing"

	"edgekg/internal/tensor"
)

// TestQuantBankRoundTrip pins the int8 token-bank snapshot: same node
// set, per-element reconstruction within half a quantization step, and a
// NodeEmbedding mean within that bound of the float64 mean.
func TestQuantBankRoundTrip(t *testing.T) {
	m, space, _ := newTestModel(t)
	tb := m.Tokens()
	qb := tb.Quantize()
	if qb.Dim() != space.Dim() || qb.Gen() != tb.Gen() {
		t.Fatalf("dim/gen mismatch: %d/%d vs %d/%d", qb.Dim(), qb.Gen(), space.Dim(), tb.Gen())
	}
	ids := tb.NodeIDs()
	if got := qb.NodeIDs(); len(got) != len(ids) {
		t.Fatalf("node sets differ: %v vs %v", got, ids)
	}
	for _, id := range ids {
		if !qb.Has(id) {
			t.Fatalf("node %d missing from snapshot", id)
		}
		bank := tb.Bank(id).Data
		q := qb.Bank(id)
		dst := make([]float64, bank.Cols())
		for i := 0; i < bank.Rows(); i++ {
			row := bank.Row(i)
			mn, mx := row[0], row[0]
			for _, v := range row {
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}
			step := (mx - mn) / 255
			q.DequantRowF64(i, dst)
			for j, v := range row {
				if err := math.Abs(dst[j] - v); err > step/2+1e-6 {
					t.Fatalf("node %d row %d col %d: reconstruction error %.2e exceeds %.2e", id, i, j, err, step/2)
				}
			}
		}
		mean64 := tb.NodeEmbedding(id).Data.Data()
		mean32 := qb.NodeEmbedding(id)
		for j := range mean64 {
			if err := math.Abs(mean64[j] - float64(mean32[j])); err > 1e-2 {
				t.Errorf("node %d mean col %d: |%.6f - %.6f| = %.2e", id, j, mean64[j], mean32[j], err)
			}
		}
	}
}

// TestQuantBankFootprint pins that the snapshot is a small fraction of
// the float64 banks it shadows.
func TestQuantBankFootprint(t *testing.T) {
	m, _, _ := newTestModel(t)
	tb := m.Tokens()
	qb := tb.Quantize()
	var f64Bytes int64
	for _, id := range tb.NodeIDs() {
		f64Bytes += int64(tb.Bank(id).Data.Size()) * 8
	}
	if qb.MemBytes()*3 >= f64Bytes {
		t.Errorf("quantized banks %d bytes vs float64 %d — expected <1/3", qb.MemBytes(), f64Bytes)
	}
}

// TestQuantBankUnknownNodePanics mirrors TokenBank.Bank's contract.
func TestQuantBankUnknownNodePanics(t *testing.T) {
	m, _, _ := newTestModel(t)
	qb := m.Tokens().Quantize()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown node")
		}
	}()
	qb.Bank(99999)
}

// TestQuantBankEmptyRowsEmbedding pins the zero-row edge case: a node
// installed with an empty bank yields a zero embedding, not a panic.
func TestQuantBankEmptyRowsEmbedding(t *testing.T) {
	m, space, _ := newTestModel(t)
	tb := m.Tokens()
	id := tb.NodeIDs()[0]
	tb.Install(id, tensor.New(0, space.Dim()))
	qb := tb.Quantize()
	for _, v := range qb.NodeEmbedding(id) {
		if v != 0 {
			t.Fatalf("empty bank embedding has nonzero %v", v)
		}
	}
}
