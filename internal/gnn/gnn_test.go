package gnn

import (
	"math/rand"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/bpe"
	"edgekg/internal/concept"
	"edgekg/internal/embed"
	"edgekg/internal/kg"
	"edgekg/internal/nn"
	"edgekg/internal/tensor"
)

func testSpace(t *testing.T) *embed.Space {
	t.Helper()
	corpus := concept.Builtin().Concepts()
	tok := bpe.Train(corpus, 600)
	s, err := embed.NewSpace(tok, corpus, embed.Config{Dim: 16, PixDim: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testGraph builds sensor → {stealing, sneaky} → {theft, hiding} → emb.
func testGraph(t *testing.T, space *embed.Space) *kg.Graph {
	t.Helper()
	g := kg.New("Stealing", 2)
	tok := space.Tokenizer()
	a, err := g.AddNode("stealing", 1, tok.Encode("stealing"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.AddNode("sneaky", 1, tok.Encode("sneaky"))
	c, _ := g.AddNode("theft", 2, tok.Encode("theft"))
	d, _ := g.AddNode("hiding", 2, tok.Encode("hiding"))
	for _, e := range [][2]kg.NodeID{{a.ID, c.ID}, {b.ID, c.ID}, {b.ID, d.ID}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.AttachTerminals()
	return g
}

func newTestModel(t *testing.T) (*Model, *embed.Space, *kg.Graph) {
	t.Helper()
	space := testSpace(t)
	g := testGraph(t, space)
	m, err := NewModel(rand.New(rand.NewSource(1)), g, space, Config{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m, space, g
}

func TestModelShapeAndLayerCount(t *testing.T) {
	m, space, g := newTestModel(t)
	if m.NumLayers() != g.Depth()+2 {
		t.Errorf("layers = %d, want d+2 = %d", m.NumLayers(), g.Depth()+2)
	}
	rng := rand.New(rand.NewSource(2))
	frames := tensor.RandN(rng, 1, 3, space.Dim())
	out := m.Forward(autograd.Constant(frames))
	if out.Data.Rows() != 3 || out.Data.Cols() != 4 {
		t.Errorf("output shape %v, want (3,4)", out.Shape())
	}
}

func TestForwardDeterministicInEval(t *testing.T) {
	m, space, _ := newTestModel(t)
	m.SetTraining(false)
	rng := rand.New(rand.NewSource(3))
	frames := tensor.RandN(rng, 1, 2, space.Dim())
	o1 := m.Forward(autograd.Constant(frames))
	o2 := m.Forward(autograd.Constant(frames))
	if !tensor.AllClose(o1.Data, o2.Data, 0) {
		t.Error("eval forward not deterministic")
	}
}

func TestBatchMatchesSingleInEval(t *testing.T) {
	m, space, _ := newTestModel(t)
	m.SetTraining(false)
	rng := rand.New(rand.NewSource(4))
	f1 := tensor.RandN(rng, 1, 1, space.Dim())
	f2 := tensor.RandN(rng, 1, 1, space.Dim())
	both := tensor.ConcatRows(f1, f2)
	ob := m.Forward(autograd.Constant(both))
	o1 := m.Forward(autograd.Constant(f1))
	o2 := m.Forward(autograd.Constant(f2))
	if !tensor.AllClose(tensor.SliceRows(ob.Data, 0, 1), o1.Data, 1e-10) {
		t.Error("batch row 0 disagrees with single forward")
	}
	if !tensor.AllClose(tensor.SliceRows(ob.Data, 1, 2), o2.Data, 1e-10) {
		t.Error("batch row 1 disagrees with single forward")
	}
}

func TestSensorSignalReachesOutput(t *testing.T) {
	m, space, _ := newTestModel(t)
	m.SetTraining(false)
	f1 := space.TextEncode("stealing").Reshape(1, space.Dim())
	f2 := space.TextEncode("explosion").Reshape(1, space.Dim())
	o1 := m.Forward(autograd.Constant(f1))
	o2 := m.Forward(autograd.Constant(f2))
	if tensor.AllClose(o1.Data, o2.Data, 1e-9) {
		t.Error("different frames produce identical reasoning embeddings")
	}
}

func TestGradFlowsIntoTokenBankOnly(t *testing.T) {
	m, space, _ := newTestModel(t)
	m.SetTraining(false)
	nn.Freeze(paramsOf(m.Params()))
	rng := rand.New(rand.NewSource(5))
	frames := tensor.RandN(rng, 1, 2, space.Dim())
	out := autograd.Sum(m.Forward(autograd.Constant(frames)))
	out.Backward()
	for _, p := range m.Params() {
		if p.V.Grad != nil {
			t.Errorf("frozen GNN weight %s got gradient", p.Name)
		}
	}
	gotGrad := false
	for _, p := range m.TokenParams() {
		if p.V.Grad != nil {
			gotGrad = true
		}
	}
	if !gotGrad {
		t.Error("no gradient reached any token bank through the frozen GNN")
	}
}

type paramsOf []nn.Param

func (p paramsOf) Params() []nn.Param { return p }

func TestGradCheckThroughGNN(t *testing.T) {
	m, space, g := newTestModel(t)
	m.SetTraining(false) // eval BN: deterministic, differentiable
	rng := rand.New(rand.NewSource(6))
	frames := autograd.Param(tensor.RandN(rng, 0.5, 1, space.Dim()))
	bank := m.Tokens().Bank(g.NodesAtLevel(1)[0].ID)
	f := func() *autograd.Value {
		sem := frames
		outs := m.Forward(sem)
		return autograd.Mean(outs)
	}
	if err := autograd.GradCheck(f, []*autograd.Value{frames, bank}, 1e-6, 1e-4); err != nil {
		t.Error(err)
	}
}

func TestRebindAfterMutation(t *testing.T) {
	m, space, g := newTestModel(t)
	m.SetTraining(false)
	rng := rand.New(rand.NewSource(7))
	victim := g.NodesAtLevel(2)[0]
	fresh, err := g.ReplaceNode(rng, victim.ID, "replacement", nil, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Rebind(); err != nil {
		t.Fatal(err)
	}
	if m.Tokens().Has(victim.ID) {
		t.Error("pruned node still in token bank")
	}
	if !m.Tokens().Has(fresh.ID) {
		t.Error("created node missing from token bank")
	}
	frames := tensor.RandN(rng, 1, 2, space.Dim())
	out := m.Forward(autograd.Constant(frames))
	if out.Data.Rows() != 2 || out.Data.Cols() != m.Width() {
		t.Errorf("post-rebind output shape %v", out.Shape())
	}
}

func TestRebindPreservesSurvivingBanks(t *testing.T) {
	m, _, g := newTestModel(t)
	survivor := g.NodesAtLevel(1)[0]
	// Write a recognisable value into the survivor's bank.
	m.Tokens().Bank(survivor.ID).Data.Fill(0.42)
	rng := rand.New(rand.NewSource(8))
	if _, err := g.ReplaceNode(rng, g.NodesAtLevel(2)[0].ID, "other", nil, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := m.Rebind(); err != nil {
		t.Fatal(err)
	}
	if m.Tokens().Bank(survivor.ID).Data.Data()[0] != 0.42 {
		t.Error("rebind reset an unrelated node's learned embeddings")
	}
}

func TestTokenBankInstallAndSnapshot(t *testing.T) {
	m, _, g := newTestModel(t)
	id := g.NodesAtLevel(1)[0].ID
	snap := m.Tokens().Snapshot(id)
	m.Tokens().Bank(id).Data.Fill(9)
	if snap.Data()[0] == 9 {
		t.Error("snapshot aliases live bank")
	}
	init := tensor.Ones(3, m.Tokens().Dim())
	m.Tokens().Install(id, init)
	if m.Tokens().Bank(id).Data.Rows() != 3 {
		t.Error("install did not replace bank")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong install dims")
		}
	}()
	m.Tokens().Install(id, tensor.Ones(2, m.Tokens().Dim()+1))
}

func TestTokenBankNodeEmbeddingIsMean(t *testing.T) {
	m, _, g := newTestModel(t)
	id := g.NodesAtLevel(1)[0].ID
	bank := m.Tokens().Bank(id)
	want := tensor.MeanAxis0(bank.Data)
	got := m.Tokens().NodeEmbedding(id)
	if !tensor.AllClose(got.Data.Reshape(want.Size()), want, 1e-12) {
		t.Error("NodeEmbedding is not the token mean")
	}
}

func TestNodeInitialEmbeddingAlignsWithConcept(t *testing.T) {
	m, space, g := newTestModel(t)
	for _, n := range g.Nodes() {
		if n.Kind != kg.Reasoning {
			continue
		}
		emb := m.Tokens().NodeEmbedding(n.ID).Data.Reshape(space.Dim())
		cos := tensor.CosineSimilarity(emb, space.WordVector(n.Concept))
		if cos < 0.8 {
			t.Errorf("node %q initial embedding misaligned: cos %v", n.Concept, cos)
		}
	}
}

func TestModelRequiresTerminals(t *testing.T) {
	space := testSpace(t)
	g := kg.New("NoTerminals", 1)
	if _, err := g.AddNode("x", 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewModel(rand.New(rand.NewSource(9)), g, space, DefaultConfig()); err == nil {
		t.Error("model accepted graph without terminals")
	}
}

func TestModelConfigValidation(t *testing.T) {
	space := testSpace(t)
	g := testGraph(t, space)
	if _, err := NewModel(rand.New(rand.NewSource(10)), g, space, Config{Width: 0}); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestParamNamesUnique(t *testing.T) {
	m, _, _ := newTestModel(t)
	seen := map[string]bool{}
	for _, p := range append(m.Params(), m.TokenParams()...) {
		if seen[p.Name] {
			t.Errorf("duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
}
