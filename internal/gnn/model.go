package gnn

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"edgekg/internal/autograd"
	"edgekg/internal/embed"
	"edgekg/internal/kg"
	"edgekg/internal/nn"
)

// Model is the hierarchical GNN over one mission-specific KG. For a KG of
// depth d it applies d+2 layers (Sec. III-C): one per edge group
// (sensor→L1, L1→L2, …, Ld→embedding) plus a final dense refinement layer
// with no message passing, matching the paper's layer count.
type Model struct {
	graph  *kg.Graph
	space  *embed.Space
	tokens *TokenBank
	layers []*layer
	lo     *layout
	width  int

	// bankMu guards bankCache/bankGen: data-parallel training runs
	// concurrent forwards over one model, and the lazy rebuild would
	// otherwise race. The token bank set never changes while forwards are
	// in flight, so contention is a cheap uncontended lock per forward.
	bankMu sync.Mutex
	// bankCache holds the token banks in m.lo.reasonIDs order, rebuilt
	// whenever the token bank set (bankGen) or the layout changes. The
	// cached slice is shared with live computation graphs and never
	// mutated in place.
	bankCache []*autograd.Value
	bankGen   uint64

	// cowUndo, set only on clones produced by CloneCOW, rolls back the
	// shared marks that clone placed on its source (DiscardClone).
	cowUndo func()
}

// layer is one hierarchical GNN layer: φ_l (dense), M_l/A_l (messages and
// aggregation over its edge group), BatchNorm, ELU. group == -1 marks the
// final refinement layer, which skips message passing.
type layer struct {
	dense *nn.Linear
	bn    *nn.BatchNorm1d
	group int

	// f32 caches the layer's float32 eval snapshot (dense weights plus
	// folded BatchNorm running statistics). The layers slice is shared
	// across every clone of a model, so one snapshot serves all streams;
	// it is dropped whenever the layer returns to training mode.
	f32 atomic.Pointer[layerF32]
}

// Config sizes a Model.
type Config struct {
	// Width is the embedding dimensionality D_l of every GNN layer — the
	// paper uses 8 across all layers (Sec. IV-A).
	Width int
}

// DefaultConfig returns the paper's GNN configuration.
func DefaultConfig() Config { return Config{Width: 8} }

// NewModel builds a hierarchical GNN for g with a fresh token bank
// initialised from space.
func NewModel(rng *rand.Rand, g *kg.Graph, space *embed.Space, cfg Config) (*Model, error) {
	if cfg.Width < 1 {
		return nil, fmt.Errorf("gnn: width %d must be ≥1", cfg.Width)
	}
	lo, err := buildLayout(g)
	if err != nil {
		return nil, err
	}
	m := &Model{
		graph:  g,
		space:  space,
		tokens: NewTokenBank(g, space),
		lo:     lo,
		width:  cfg.Width,
	}
	inDim := space.Dim()
	numGroups := g.Depth() + 1
	for l := 0; l < numGroups; l++ {
		m.layers = append(m.layers, &layer{
			dense: nn.NewLinear(rng, inDim, cfg.Width),
			bn:    nn.NewBatchNorm1d(cfg.Width),
			group: l,
		})
		inDim = cfg.Width
	}
	// Final refinement layer (brings the count to d+2).
	m.layers = append(m.layers, &layer{
		dense: nn.NewLinear(rng, inDim, cfg.Width),
		bn:    nn.NewBatchNorm1d(cfg.Width),
		group: -1,
	})
	return m, nil
}

// Graph returns the KG the model reasons over.
func (m *Model) Graph() *kg.Graph { return m.graph }

// Tokens returns the trainable token bank.
func (m *Model) Tokens() *TokenBank { return m.tokens }

// Width returns the output embedding dimensionality.
func (m *Model) Width() int { return m.width }

// NumLayers returns the layer count (depth + 2).
func (m *Model) NumLayers() int { return len(m.layers) }

// CloneShared returns a model over a deep copy of the per-KG mutable
// state — the graph structure and the token bank — while sharing the
// frozen compute backbone: the dense/BatchNorm layers, the embedding
// space and the width. The clone's graph and bank can be mutated (token
// updates, node pruning/creation, Rebind) without affecting the receiver
// or any sibling clone; the shared layers must stay frozen and in
// inference mode for as long as clones are in use, which is exactly the
// deployed-detector contract. This is what gives every serving stream its
// own adaptation state over one resident backbone.
func (m *Model) CloneShared() (*Model, error) {
	if err := m.verifyClonable(); err != nil {
		return nil, err
	}
	g := m.graph.Clone()
	lo, err := buildLayout(g)
	if err != nil {
		return nil, fmt.Errorf("gnn: clone layout: %w", err)
	}
	return &Model{
		graph:  g,
		space:  m.space,
		tokens: m.tokens.Clone(),
		layers: m.layers,
		lo:     lo,
		width:  m.width,
	}, nil
}

// CloneCOW is CloneShared with lazy copy-on-write semantics: the clone
// aliases the receiver's graph storage and token-bank tensors by reference
// and materializes private copies only of what actually mutates — a graph
// faults wholesale on its first structural change, a token page on its
// first in-place write. The layout is shared too: it is immutable between
// Rebinds, Rebind replaces rather than mutates it, and its per-batch
// replication cache is mutex-guarded, so concurrent streams can share one.
// An unadapted clone therefore holds only O(nodes) wrapper state.
//
// Scoring through the clone is bit-identical to a CloneShared deep copy
// (the tensors are the same bits), and the same frozen-backbone contract
// applies. On failure the receiver is left exactly as before the call.
func (m *Model) CloneCOW() (*Model, error) {
	if err := m.verifyClonable(); err != nil {
		return nil, err
	}
	graphWasShared := m.graph.Shared()
	g := m.graph.CloneCOW()
	tokens, undoBanks := m.tokens.CloneCOW()
	c := &Model{
		graph:  g,
		space:  m.space,
		tokens: tokens,
		layers: m.layers,
		lo:     m.lo,
		width:  m.width,
	}
	src := m
	c.cowUndo = func() {
		undoBanks()
		if !graphWasShared {
			src.graph.UnmarkShared()
		}
	}
	return c, nil
}

// DiscardClone rolls back the COW marks a CloneCOW call placed on its
// source. Only valid on a clone that was never used (nothing scored or
// adapted through it), and it releases only marks that clone itself
// introduced — state already shared with older siblings stays shared.
// Multi-GNN clone failure paths use it so an aborted partial clone does
// not leave the source faulting (copying) on every future write. No-op on
// eager clones and on sources.
func (m *Model) DiscardClone() {
	if m.cowUndo != nil {
		m.cowUndo()
		m.cowUndo = nil
	}
}

// verifyClonable checks the clone invariant that every reasoning node in
// the layout has a token bank. A model whose bank set drifted out of sync
// with its graph would otherwise hand out clones that fail much later,
// inside their first forward; failing at clone time lets the caller
// release the partial clone instead of leaking it.
func (m *Model) verifyClonable() error {
	for _, id := range m.lo.reasonIDs {
		if !m.tokens.Has(id) {
			return fmt.Errorf("gnn: clone: reasoning node %d has no token bank", id)
		}
	}
	return nil
}

// Mem reports the model's per-stream resident bytes, split into privately
// owned state and state COW-shared with the backbone or siblings.
type Mem struct {
	BankOwned, BankShared   int64
	GraphOwned, GraphShared int64
}

// Mem returns the model's memory footprint for the serving ledger. Shared
// columns count aliased bytes a stream is not charged for.
func (m *Model) Mem() Mem {
	var mm Mem
	mm.BankOwned, mm.BankShared = m.tokens.PageBytes()
	gb := m.graph.ApproxMemBytes()
	if m.graph.Shared() {
		mm.GraphShared = gb
	} else {
		mm.GraphOwned = gb
	}
	return mm
}

// Rebind re-indexes the model after the KG's structure changed (node
// pruning/creation), synchronising the token bank with the surviving
// node set.
func (m *Model) Rebind() error {
	lo, err := buildLayout(m.graph)
	if err != nil {
		return err
	}
	m.lo = lo
	m.tokens.SyncWith(m.graph, m.space)
	m.bankMu.Lock()
	m.bankCache = nil
	m.bankMu.Unlock()
	return nil
}

// orderedBanks returns the token banks in layout order, cached across
// forwards until the bank set or layout changes. It is safe to call from
// concurrent forwards.
func (m *Model) orderedBanks() []*autograd.Value {
	m.bankMu.Lock()
	defer m.bankMu.Unlock()
	if m.bankCache == nil || m.bankGen != m.tokens.Gen() {
		banks := make([]*autograd.Value, len(m.lo.reasonIDs))
		for i, id := range m.lo.reasonIDs {
			banks[i] = m.tokens.Bank(id)
		}
		m.bankCache = banks
		m.bankGen = m.tokens.Gen()
	}
	return m.bankCache
}

// Forward reasons over a batch of already-image-encoded frames
// (batch × space.Dim()) and returns the embedding-node outputs
// (batch × Width) — the per-KG reasoning embedding r_T of Sec. III-C.
func (m *Model) Forward(frames *autograd.Value) *autograd.Value {
	return m.ForwardStats(frames, nil)
}

// ForwardStats is Forward with deferred BatchNorm statistics: in training
// mode with a non-nil collector each layer's batch mean/variance is
// recorded into stats instead of updating the running statistics in
// place. Data-parallel training runs concurrent ForwardStats calls over
// one model (shared parameters, per-shard tapes) and applies the
// collectors in shard order afterwards; with stats == nil the behaviour
// is the classic immediate update.
func (m *Model) ForwardStats(frames *autograd.Value, stats *nn.BNStats) *autograd.Value {
	b := frames.Data.Rows()
	if frames.Data.Cols() != m.space.Dim() {
		panic(fmt.Sprintf("gnn: frame dim %d != semantic dim %d", frames.Data.Cols(), m.space.Dim()))
	}

	// Assemble the batched node-feature matrix (b*v × dim) in two ops:
	// one batched mean over every reasoning node's token bank, one
	// scatter stamping each graph copy with its sensor row (that sample's
	// frame embedding) and the shared reasoning-node features. The
	// embedding terminal starts at the multiplicative identity: with
	// product messages (eq. 2) a zero row would absorb every incoming
	// message, so ones let the final aggregation carry the upstream
	// reasoning embeddings through unchanged.
	var feats *autograd.Value
	if len(m.lo.reasonIDs) > 0 {
		feats = autograd.MeanRowsBatch(m.orderedBanks())
	}
	x := autograd.AssembleBatch(frames, feats, m.lo.featRow, m.lo.sensorIdx, 1)

	rep := m.lo.replicated(b)
	for _, ly := range m.layers {
		x = ly.dense.Forward(x)
		if ly.group >= 0 {
			// Message passing, BatchNorm and ELU run as one fused tape
			// node over the layer's edge group.
			rg := rep.groups[ly.group]
			if ly.bn.Training() {
				out, mean, variance := autograd.EdgeAggNormActTrain(x, ly.bn.Gamma, ly.bn.Beta, rg.src, rg.dst, rg.inLevel, ly.bn.Eps)
				if stats != nil {
					stats.Defer(ly.bn, mean, variance)
				} else {
					ly.bn.UpdateRunning(mean, variance)
				}
				x = out
			} else {
				x = autograd.EdgeAggNormActEval(x, ly.bn.Gamma, ly.bn.Beta, rg.src, rg.dst, rg.inLevel, ly.bn.RunningMean, ly.bn.RunningVar, ly.bn.Eps)
			}
		} else {
			x = autograd.ELU(ly.bn.ForwardStats(x, stats))
		}
	}

	// Extract the embedding-terminal row of every sample.
	return autograd.GatherRows(x, rep.embRows)
}

// SetTraining switches the BatchNorm layers between batch and running
// statistics. Entering training mode drops each layer's float32 eval
// snapshot — weights and running statistics are about to change.
func (m *Model) SetTraining(t bool) {
	for _, ly := range m.layers {
		if t {
			ly.f32.Store(nil)
		}
		ly.bn.SetTraining(t)
	}
}

// Params returns the GNN weights (dense + BatchNorm), excluding the token
// bank — these are what training updates and deployment freezes.
func (m *Model) Params() []nn.Param {
	var ps []nn.Param
	for i, ly := range m.layers {
		prefix := fmt.Sprintf("layer%d", i)
		ps = append(ps, nn.Prefix(prefix+".dense", ly.dense.Params())...)
		ps = append(ps, nn.Prefix(prefix+".bn", ly.bn.Params())...)
	}
	return ps
}

// TokenParams returns the token-bank parameters — what adaptation updates.
func (m *Model) TokenParams() []nn.Param {
	return nn.Prefix("tokens", m.tokens.Params())
}
