package gnn

import (
	"fmt"
	"sort"

	"edgekg/internal/autograd"
	"edgekg/internal/embed"
	"edgekg/internal/kg"
	"edgekg/internal/nn"
	"edgekg/internal/tensor"
)

// TokenBank holds the continuous token embeddings of every reasoning node
// in one KG — the only parameters deployment-time adaptive learning
// updates (Sec. III-D: "only the embeddings of the KG tokens are
// updated"). Each node owns a (numTokens × dim) trainable matrix
// initialised from the frozen joint model's aligned token table, exactly
// the CoOp-style continuous-prompt setup Sec. III-E decodes.
type TokenBank struct {
	dim   int
	banks map[kg.NodeID]*autograd.Value
	// gen counts structural mutations (Install/Remove/SyncWith), letting
	// callers cache bank lookups and invalidate them cheaply.
	gen uint64
}

// NewTokenBank builds a bank for every reasoning node of g, initialising
// node token rows from the space's token table.
func NewTokenBank(g *kg.Graph, space *embed.Space) *TokenBank {
	tb := &TokenBank{dim: space.Dim(), banks: make(map[kg.NodeID]*autograd.Value)}
	for _, n := range g.Nodes() {
		if n.Kind != kg.Reasoning {
			continue
		}
		tb.banks[n.ID] = autograd.Param(initialTokens(n, space))
	}
	return tb
}

// initialTokens returns the (numTokens × dim) initial embedding matrix of
// a node: its BPE tokens' table rows, or the text encoding of its concept
// when it carries no token ids.
func initialTokens(n *kg.Node, space *embed.Space) *tensor.Tensor {
	if len(n.TokenIDs) == 0 {
		return space.TextEncode(n.Concept).Reshape(1, space.Dim())
	}
	rows := make([]*tensor.Tensor, len(n.TokenIDs))
	for i, id := range n.TokenIDs {
		rows[i] = space.TokenVector(id).Reshape(1, space.Dim())
	}
	return tensor.ConcatRows(rows...)
}

// Dim returns the embedding dimensionality.
func (tb *TokenBank) Dim() int { return tb.dim }

// Has reports whether the bank tracks node id.
func (tb *TokenBank) Has(id kg.NodeID) bool {
	_, ok := tb.banks[id]
	return ok
}

// Bank returns the trainable token matrix of a node.
func (tb *TokenBank) Bank(id kg.NodeID) *autograd.Value {
	b, ok := tb.banks[id]
	if !ok {
		panic(fmt.Sprintf("gnn: no token bank for node %d", id))
	}
	return b
}

// NodeEmbedding returns the node's (1 × dim) feature: the mean of its
// token embeddings, differentiable into the bank.
func (tb *TokenBank) NodeEmbedding(id kg.NodeID) *autograd.Value {
	return autograd.MeanRows(tb.Bank(id))
}

// Snapshot returns a deep copy of a node's token matrix — the "old token
// embeddings" side of the convergence distance test (Fig. 4A).
func (tb *TokenBank) Snapshot(id kg.NodeID) *tensor.Tensor {
	return tb.Bank(id).Data.Clone()
}

// Install sets (or replaces) a node's token matrix. Node creation passes
// the random embedding of Fig. 4C through here.
func (tb *TokenBank) Install(id kg.NodeID, init *tensor.Tensor) {
	if init.Dims() != 2 || init.Cols() != tb.dim {
		panic(fmt.Sprintf("gnn: Install shape %v, want (k × %d)", init.Shape(), tb.dim))
	}
	tb.banks[id] = autograd.Param(init)
	tb.gen++
}

// Remove drops a pruned node's bank.
func (tb *TokenBank) Remove(id kg.NodeID) {
	delete(tb.banks, id)
	tb.gen++
}

// Gen returns the structural-mutation generation; it changes whenever the
// bank set changes, so cached Bank lookups can be invalidated.
func (tb *TokenBank) Gen() uint64 { return tb.gen }

// SyncWith reconciles the bank set with the graph after structural
// mutation: banks for pruned nodes are dropped, new reasoning nodes get
// banks initialised from the space. Existing banks are left untouched so
// learned embeddings survive unrelated mutations.
func (tb *TokenBank) SyncWith(g *kg.Graph, space *embed.Space) {
	live := make(map[kg.NodeID]bool)
	for _, n := range g.Nodes() {
		if n.Kind != kg.Reasoning {
			continue
		}
		live[n.ID] = true
		if _, ok := tb.banks[n.ID]; !ok {
			tb.banks[n.ID] = autograd.Param(initialTokens(n, space))
		}
	}
	for id := range tb.banks {
		if !live[id] {
			delete(tb.banks, id)
		}
	}
	tb.gen++
}

// Clone returns an independent deep copy of the bank: every node's token
// matrix is copied into a fresh trainable leaf (preserving each bank's
// requires-grad flag), so optimiser steps on the clone never touch the
// original. Per-stream serving contexts clone the deployed bank this way
// so each stream's adaptation evolves its own token embeddings.
func (tb *TokenBank) Clone() *TokenBank {
	c := &TokenBank{dim: tb.dim, banks: make(map[kg.NodeID]*autograd.Value, len(tb.banks))}
	for id, b := range tb.banks {
		c.banks[id] = autograd.NewLeaf(b.Data.Clone(), b.RequiresGrad())
	}
	return c
}

// CloneCOW returns a copy-on-write clone of the bank: fresh per-node
// Value wrappers (private requires-grad flags and gradients) aliasing the
// receiver's token tensors. Both sides' pages are marked shared; the first
// in-place write to a page — an optimizer step, renormalization, the
// semantic pull — takes a private copy of just that page via
// autograd.Value.EnsurePrivate, while Install always replaces the map
// entry with a fresh private tensor. An unadapted clone therefore costs
// O(nodes) wrapper overhead instead of a deep copy of every token matrix.
//
// The returned undo function rolls back exactly the shared marks this call
// introduced on the receiver (pages already shared with older siblings
// stay shared) — the release hook for a failed multi-graph detector clone.
func (tb *TokenBank) CloneCOW() (*TokenBank, func()) {
	c := &TokenBank{dim: tb.dim, banks: make(map[kg.NodeID]*autograd.Value, len(tb.banks))}
	var marked []*autograd.Value
	for id, b := range tb.banks {
		cb := autograd.NewLeaf(b.Data, b.RequiresGrad())
		cb.MarkShared()
		if b.MarkShared() {
			marked = append(marked, b)
		}
		c.banks[id] = cb
	}
	return c, func() {
		for _, b := range marked {
			b.UnmarkShared()
		}
	}
}

// PageBytes returns the bank's resident tensor bytes split into pages this
// bank privately owns and pages COW-shared with a sibling or the backbone
// — the memory ledger charges a stream only for the owned part.
func (tb *TokenBank) PageBytes() (owned, shared int64) {
	for _, b := range tb.banks {
		n := int64(b.Data.Size()) * 8
		if b.SharedData() {
			shared += n
		} else {
			owned += n
		}
	}
	return owned, shared
}

// Params implements nn.Module: one named parameter per node, sorted by id
// for deterministic state dictionaries.
func (tb *TokenBank) Params() []nn.Param {
	ids := make([]kg.NodeID, 0, len(tb.banks))
	for id := range tb.banks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]nn.Param, 0, len(ids))
	for _, id := range ids {
		out = append(out, nn.Param{Name: fmt.Sprintf("node%d", id), V: tb.banks[id]})
	}
	return out
}

// NodeIDs returns the tracked node ids sorted ascending.
func (tb *TokenBank) NodeIDs() []kg.NodeID {
	ids := make([]kg.NodeID, 0, len(tb.banks))
	for id := range tb.banks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
