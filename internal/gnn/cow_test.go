package gnn

import (
	"math/rand"
	"testing"

	"edgekg/internal/autograd"
	"edgekg/internal/tensor"
)

func TestTokenBankCloneCOWSharesPages(t *testing.T) {
	m, _, g := newTestModel(t)
	tb := m.Tokens()
	clone, undo := tb.CloneCOW()
	defer undo()

	for _, id := range tb.NodeIDs() {
		src, c := tb.Bank(id), clone.Bank(id)
		if src.Data != c.Data {
			t.Fatalf("node %d: clone does not alias the source tensor", id)
		}
		if !src.SharedData() || !c.SharedData() {
			t.Fatalf("node %d: pages not marked shared on both sides", id)
		}
	}
	_ = g

	// A write fault on one clone page isolates exactly that page.
	id := tb.NodeIDs()[0]
	cb := clone.Bank(id)
	before := tb.Bank(id).Data.Clone()
	cb.EnsurePrivate()
	cb.Data.Row(0)[0] += 1000
	if !tensor.AllClose(tb.Bank(id).Data, before, 0) {
		t.Error("clone-side write reached the source page")
	}
	if cb.SharedData() {
		t.Error("faulted page still marked shared")
	}
	if !tb.Bank(id).SharedData() {
		t.Error("source page lost its mark on a clone-side fault")
	}
}

func TestModelCloneCOWForwardMatchesCloneShared(t *testing.T) {
	m, space, _ := newTestModel(t)
	m.SetTraining(false)
	eager, err := m.CloneShared()
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := m.CloneCOW()
	if err != nil {
		t.Fatal(err)
	}
	eager.SetTraining(false)
	lazy.SetTraining(false)
	rng := rand.New(rand.NewSource(7))
	frames := tensor.RandN(rng, 1, 3, space.Dim())
	oe := eager.Forward(autograd.Constant(frames))
	ol := lazy.Forward(autograd.Constant(frames))
	om := m.Forward(autograd.Constant(frames))
	if !tensor.AllClose(oe.Data, ol.Data, 0) {
		t.Error("COW clone forward differs bitwise from eager clone")
	}
	if !tensor.AllClose(om.Data, ol.Data, 0) {
		t.Error("COW clone forward differs bitwise from source model")
	}
}

func TestModelCloneCOWMemStartsShared(t *testing.T) {
	m, _, _ := newTestModel(t)
	c, err := m.CloneCOW()
	if err != nil {
		t.Fatal(err)
	}
	mem := c.Mem()
	if mem.BankOwned != 0 || mem.GraphOwned != 0 {
		t.Errorf("fresh COW clone owns bytes: banks %d graphs %d", mem.BankOwned, mem.GraphOwned)
	}
	if mem.BankShared == 0 || mem.GraphShared == 0 {
		t.Errorf("fresh COW clone reports no shared bytes: banks %d graphs %d", mem.BankShared, mem.GraphShared)
	}

	// Fault one bank page: owned grows by exactly that page, the rest
	// stays shared.
	id := c.Tokens().NodeIDs()[0]
	b := c.Tokens().Bank(id)
	b.EnsurePrivate()
	after := c.Mem()
	page := int64(b.Data.Size()) * 8
	if after.BankOwned != page {
		t.Errorf("owned bank bytes %d after one fault, want %d", after.BankOwned, page)
	}
	if after.BankShared != mem.BankShared-page {
		t.Errorf("shared bank bytes %d, want %d", after.BankShared, mem.BankShared-page)
	}
}

func TestModelCloneCOWFailureRollsBackMarks(t *testing.T) {
	m, _, _ := newTestModel(t)
	// Break clonability: drop one reasoning node's bank page so
	// verifyClonable fails, then confirm no source page kept a mark that
	// the failed clone placed.
	id := m.Tokens().NodeIDs()[0]
	m.Tokens().Remove(id)
	if _, err := m.CloneCOW(); err == nil {
		t.Fatal("CloneCOW succeeded on a model with a missing bank page")
	}
	for _, nid := range m.Tokens().NodeIDs() {
		if m.Tokens().Bank(nid).SharedData() {
			t.Errorf("node %d: source page left marked shared by a failed clone", nid)
		}
	}
	if m.Graph().Shared() {
		t.Error("source graph left marked shared by a failed clone")
	}
}

func TestDiscardCloneReleasesMarks(t *testing.T) {
	m, _, _ := newTestModel(t)
	c, err := m.CloneCOW()
	if err != nil {
		t.Fatal(err)
	}
	c.DiscardClone()
	for _, id := range m.Tokens().NodeIDs() {
		if m.Tokens().Bank(id).SharedData() {
			t.Errorf("node %d: source page still marked after DiscardClone", id)
		}
	}
	if m.Graph().Shared() {
		t.Error("source graph still marked after DiscardClone")
	}
}
