// Package gnn implements the hierarchical graph neural network of
// Sec. III-C (eqs. 1–4): per-layer dense refinement, hierarchical message
// passing restricted to the edge group E(l), hierarchical mean aggregation
// with pass-through for out-of-level nodes, BatchNorm and ELU. One Model
// reasons over one mission-specific KG; multi-KG reasoning concatenates
// the per-graph embedding-node outputs (handled by the caller).
package gnn

import (
	"fmt"
	"sync"

	"edgekg/internal/kg"
)

// layout caches the index structure of a KG for tensor execution: node
// ordering, per-edge-group source/destination index lists, and per-group
// level membership masks. It must be rebuilt (Model.Rebind) whenever the
// graph's node or edge set changes.
type layout struct {
	nodes []*kg.Node
	index map[kg.NodeID]int
	// groups[l] holds the edges between level l and l+1 (0-based: group 0
	// is sensor→level1, group depth is levelDepth→embedding terminal).
	groups []edgeGroup
	// sensorIdx and embIdx locate the terminals in the node ordering.
	sensorIdx, embIdx int

	// reasonIDs lists the reasoning-node ids in node order, and featRow
	// maps each node index to its row in the batched node-embedding
	// matrix (MeanRowsBatch over the banks of reasonIDs), or -1 for
	// non-reasoning nodes. Both feed AssembleBatch unchanged every
	// forward, so they are built once per layout.
	reasonIDs []kg.NodeID
	featRow   []int

	// repMu guards reps, the per-batch-size cache of replicated index
	// structures. The graph is immutable between rebinds (Rebind builds a
	// fresh layout), so cached entries never go stale; caching removes the
	// O(batch·|E|) slice rebuild from every forward.
	repMu sync.Mutex
	reps  map[int]*replicated
}

// replicated holds the batch-offset index lists for one batch size: per
// group src/dst/inLevel plus the embedding-terminal row of every sample.
// The slices are shared with the autograd graph and must not be mutated.
type replicated struct {
	groups  []edgeGroup
	embRows []int
}

// maxReplicatedCache bounds the per-layout cache of replicated index
// structures. Training and adaptation reuse a handful of batch sizes, but
// deployment scores videos of arbitrary length (batch = frame count), and
// an unbounded map would retain an O(b·|E|) structure per distinct length.
const maxReplicatedCache = 8

// replicated returns (building and caching on first use) the index
// structure for a batch of b stacked graph copies.
func (lo *layout) replicated(b int) *replicated {
	lo.repMu.Lock()
	defer lo.repMu.Unlock()
	if r, ok := lo.reps[b]; ok {
		return r
	}
	if len(lo.reps) >= maxReplicatedCache {
		// Arbitrary-length one-off batches (video scoring) would otherwise
		// pin an entry forever; resetting is cheap and the recurring sizes
		// repopulate within one step.
		lo.reps = nil
	}
	v := lo.numNodes()
	r := &replicated{groups: make([]edgeGroup, len(lo.groups)), embRows: make([]int, b)}
	for gi, g := range lo.groups {
		src, dst, inLevel := g.replicate(b, v)
		r.groups[gi] = edgeGroup{src: src, dst: dst, inLevel: inLevel}
	}
	for k := 0; k < b; k++ {
		r.embRows[k] = k*v + lo.embIdx
	}
	if lo.reps == nil {
		lo.reps = make(map[int]*replicated)
	}
	lo.reps[b] = r
	return r
}

type edgeGroup struct {
	src, dst []int
	// inLevel[i] is true when node i belongs to the group's destination
	// level — the V(l) membership of eq. (3).
	inLevel []bool
}

// buildLayout indexes a strictly valid graph. Node order is (level, id),
// matching kg.Graph.Nodes, so the sensor node is always index 0 and the
// embedding terminal is always the last index.
func buildLayout(g *kg.Graph) (*layout, error) {
	if g.SensorNode() == nil || g.EmbeddingTerminal() == nil {
		return nil, fmt.Errorf("gnn: graph %q lacks terminals; call AttachTerminals first", g.Mission)
	}
	lo := &layout{index: make(map[kg.NodeID]int)}
	lo.nodes = g.Nodes()
	for i, n := range lo.nodes {
		lo.index[n.ID] = i
	}
	lo.sensorIdx = lo.index[g.SensorNode().ID]
	lo.embIdx = lo.index[g.EmbeddingTerminal().ID]
	lo.featRow = make([]int, len(lo.nodes))
	for i, n := range lo.nodes {
		if n.Kind == kg.Reasoning {
			lo.featRow[i] = len(lo.reasonIDs)
			lo.reasonIDs = append(lo.reasonIDs, n.ID)
		} else {
			lo.featRow[i] = -1
		}
	}

	depth := g.Depth()
	lo.groups = make([]edgeGroup, depth+1)
	for l := 0; l <= depth; l++ {
		grp := edgeGroup{inLevel: make([]bool, len(lo.nodes))}
		for i, n := range lo.nodes {
			if n.Level == l+1 {
				grp.inLevel[i] = true
			}
		}
		lo.groups[l] = grp
	}
	for _, e := range g.Edges() {
		srcNode := g.Node(e.Src)
		si, ok1 := lo.index[e.Src]
		di, ok2 := lo.index[e.Dst]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("gnn: edge %d→%d references unindexed node", e.Src, e.Dst)
		}
		l := srcNode.Level
		if l < 0 || l > depth {
			return nil, fmt.Errorf("gnn: edge source level %d outside [0,%d]", l, depth)
		}
		lo.groups[l].src = append(lo.groups[l].src, si)
		lo.groups[l].dst = append(lo.groups[l].dst, di)
	}
	return lo, nil
}

// numNodes returns the node count.
func (lo *layout) numNodes() int { return len(lo.nodes) }

// replicate returns the group's index lists offset for a batch of b graph
// copies stacked row-wise (block-diagonal batching), plus the replicated
// level mask.
func (g edgeGroup) replicate(b, v int) (src, dst []int, inLevel []bool) {
	src = make([]int, 0, b*len(g.src))
	dst = make([]int, 0, b*len(g.dst))
	inLevel = make([]bool, b*v)
	for k := 0; k < b; k++ {
		off := k * v
		for _, s := range g.src {
			src = append(src, s+off)
		}
		for _, d := range g.dst {
			dst = append(dst, d+off)
		}
		for i, in := range g.inLevel {
			inLevel[off+i] = in
		}
	}
	return src, dst, inLevel
}
