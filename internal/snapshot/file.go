package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// Save writes a checkpoint atomically: the document is marshalled, written
// to a temporary file in the target directory, synced to stable storage,
// and renamed over the destination. A crash at any point leaves either the
// previous good checkpoint or the new one — never a torn file — because
// rename within a directory is atomic on POSIX filesystems.
func Save(path string, cp *Checkpoint) error {
	if err := cp.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("snapshot: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: create temp checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file so aborted writes
	// never accumulate next to the checkpoint.
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: install checkpoint: %w", err)
	}
	// Sync the directory so the rename itself is durable: without it a
	// power loss can roll the directory entry back to the previous
	// checkpoint even though Save returned. Best-effort on filesystems
	// that reject directory fsync; real errors surface.
	if d, err := os.Open(dir); err == nil {
		serr := d.Sync()
		d.Close()
		if serr != nil && !errors.Is(serr, syscall.EINVAL) && !errors.Is(serr, syscall.ENOTSUP) {
			return fmt.Errorf("snapshot: sync checkpoint directory: %w", serr)
		}
	}
	return nil
}

// Load reads and validates a checkpoint. It fails loudly on torn or
// foreign files (JSON decode error) and on format/version mismatch; it
// never returns a partially decoded checkpoint.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read checkpoint: %w", err)
	}
	// Probe the header first so a version mismatch is reported as such
	// even if the stream payload of a future version does not decode.
	var header struct {
		Format  string `json:"format"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(data, &header); err != nil {
		return nil, fmt.Errorf("snapshot: corrupt checkpoint %s: %w", path, err)
	}
	probe := &Checkpoint{Format: header.Format, Version: header.Version}
	if err := probe.Validate(); err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("snapshot: corrupt checkpoint %s: %w", path, err)
	}
	return cp, nil
}
