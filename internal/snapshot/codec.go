package snapshot

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"edgekg/internal/tensor"
)

// Floats is a []float64 that marshals as base64-encoded little-endian
// IEEE-754 bit patterns instead of decimal JSON numbers. Checkpoints must
// round-trip bit-exactly — a resumed trajectory is compared bitwise
// against the uninterrupted one — and the bit-pattern encoding guarantees
// that for every value, including negative zero, subnormals, infinities
// and NaN payloads, where decimal formatting either loses the distinction
// or refuses to marshal.
type Floats []float64

// MarshalJSON implements json.Marshaler.
func (f Floats) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 8*len(f))
	for i, v := range f {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return json.Marshal(base64.StdEncoding.EncodeToString(buf))
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Floats) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("snapshot: float payload is not a string: %w", err)
	}
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return fmt.Errorf("snapshot: float payload is not base64: %w", err)
	}
	if len(buf)%8 != 0 {
		return fmt.Errorf("snapshot: float payload length %d is not a multiple of 8", len(buf))
	}
	out := make(Floats, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	*f = out
	return nil
}

// F64 is a float64 scalar that marshals as its 16-hex-digit IEEE-754 bit
// pattern — the scalar counterpart of Floats, for fields that must
// round-trip bit-exactly (and must not abort a checkpoint save when a
// degenerate trajectory leaves a NaN behind, which encoding/json refuses
// to marshal as a number).
type F64 float64

// MarshalJSON implements json.Marshaler.
func (f F64) MarshalJSON() ([]byte, error) {
	return json.Marshal(fmt.Sprintf("%016x", math.Float64bits(float64(f))))
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F64) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("snapshot: float scalar is not a string: %w", err)
	}
	bits, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("snapshot: float scalar %q is not a 64-bit hex pattern: %w", s, err)
	}
	*f = F64(math.Float64frombits(bits))
	return nil
}

// Tensor is the wire form of a tensor.Tensor.
type Tensor struct {
	Shape []int  `json:"shape"`
	Data  Floats `json:"data"`
}

// EncodeTensor converts a tensor to wire form, copying its data.
func EncodeTensor(t *tensor.Tensor) Tensor {
	return Tensor{Shape: t.Shape(), Data: append(Floats(nil), t.Data()...)}
}

// DecodeTensor converts a wire tensor back, validating shape/data
// consistency.
func DecodeTensor(w Tensor) (*tensor.Tensor, error) {
	if len(w.Shape) == 0 {
		return nil, fmt.Errorf("snapshot: tensor has no shape")
	}
	size := 1
	for _, d := range w.Shape {
		if d < 0 {
			return nil, fmt.Errorf("snapshot: tensor has negative dimension in shape %v", w.Shape)
		}
		size *= d
	}
	if size != len(w.Data) {
		return nil, fmt.Errorf("snapshot: tensor shape %v wants %d values, payload has %d", w.Shape, size, len(w.Data))
	}
	return tensor.FromSlice(append([]float64(nil), w.Data...), w.Shape...), nil
}
