// Package snapshot is the warm-restart checkpoint subsystem: a versioned,
// deterministic serialization of everything a serving stream needs to
// resume bit-exactly after a process restart — the adapted per-stream
// knowledge graphs and token banks, the score monitor's window and
// statistics, the adapter's convergence trackers and AdamW moments, the
// RNG state, frame counters, retained score history, the FLOPs ledger
// totals, and any in-flight asynchronous adaptation round (completed
// before snapshot but not yet swapped in, so the swap still lands at its
// configured frame).
//
// The frozen backbone is deliberately NOT serialized: it is a pure
// function of the training seed (the data-parallel trainer is pinned
// bit-reproducible), so a restarting process rebuilds it and a checkpoint
// stays the size of the adaptation delta — exactly the paper's split
// between the static deployed model and the continuously adapted KG
// state.
//
// Wire format: one JSON document (encoding/json emits struct fields in
// declaration order and sorts map keys, so serialization is
// deterministic) with every float64 buffer encoded as base64 IEEE-754
// bit patterns for bit-exact round-trips. Files are written
// temp-then-rename so a crash mid-write never corrupts the previous good
// checkpoint, and a format/version header fails loudly on mismatch.
package snapshot

import (
	"encoding/json"
	"fmt"

	"edgekg/internal/core"
	"edgekg/internal/flops"
	"edgekg/internal/kg"
	"edgekg/internal/tensor"
)

// Format identifies checkpoint files; Version is the wire format version.
// Load rejects anything that does not match exactly — a warm restart must
// never silently reinterpret foreign or stale bytes as adaptation state.
const (
	Format  = "edgekg-checkpoint"
	Version = 1
)

// Checkpoint is one serialized deployment: every stream's complete
// adaptation state.
type Checkpoint struct {
	Format  string        `json:"format"`
	Version int           `json:"version"`
	Streams []StreamState `json:"streams"`
}

// New returns an empty checkpoint with the current format header and n
// stream slots.
func New(n int) *Checkpoint {
	return &Checkpoint{Format: Format, Version: Version, Streams: make([]StreamState, n)}
}

// Validate checks the format header. It is called by Load and by the
// restore entry points, so a checkpoint assembled by hand is checked too.
func (cp *Checkpoint) Validate() error {
	if cp.Format != Format {
		return fmt.Errorf("snapshot: not an %s file (format %q)", Format, cp.Format)
	}
	if cp.Version != Version {
		return fmt.Errorf("snapshot: checkpoint format version %d, this build reads version %d", cp.Version, Version)
	}
	return nil
}

// ConfigPin records the stream configuration a checkpoint was taken under.
// Restore validates it against the target stream's configuration: resuming
// under a different monitor window or adaptation cadence would silently
// change the trajectory, so it fails loudly instead.
type ConfigPin struct {
	MonitorN          int  `json:"monitor_n"`
	MonitorLag        int  `json:"monitor_lag"`
	AnchoredReference bool `json:"anchored_reference"`
	AdaptEveryFrames  int  `json:"adapt_every_frames"`
	AdaptLagFrames    int  `json:"adapt_lag_frames"`
	ScoreHistory      int  `json:"score_history"`
}

// StreamState is one stream's complete serialized adaptation state.
type StreamState struct {
	ID     int       `json:"id"`
	Config ConfigPin `json:"config"`

	// Released marks a tombstone: the slot's stream was migrated or failed
	// over to another worker and its state permanently dropped here. A
	// tombstone carries only the counters (for post-hoc stats); restoring
	// one releases the target slot instead of installing state.
	Released bool `json:"released,omitempty"`

	Frames          int    `json:"frames"`
	AdaptRounds     int    `json:"adapt_rounds"`
	TriggeredRounds int    `json:"triggered_rounds"`
	PrunedNodes     int    `json:"pruned_nodes"`
	CreatedNodes    int    `json:"created_nodes"`
	LastErr         string `json:"last_err,omitempty"`

	// RNG is the stream's SplitMix64 adapter-RNG state.
	RNG uint64 `json:"rng"`
	// Scores is the raw retained score buffer, including the
	// grow-then-compact slack — the compaction schedule depends on the
	// buffer length, so the exact buffer must round-trip for the resumed
	// retention behaviour to match the uninterrupted run.
	Scores Floats `json:"scores"`

	Detector DetectorState                `json:"detector"`
	Monitor  MonitorState                 `json:"monitor"`
	Adapter  *AdapterState                `json:"adapter,omitempty"`
	Pending  *PendingState                `json:"pending,omitempty"`
	Ledger   map[string]flops.PhaseTotals `json:"ledger"`
}

// DetectorState is the per-stream mutable detector state: one graph +
// token bank per mission KG. The shared frozen backbone is not serialized.
type DetectorState struct {
	Graphs []GraphState `json:"graphs"`
}

// GraphState is one mission KG's structure and token bank.
type GraphState struct {
	// Graph is the kg.Graph JSON (the deterministic round-trip of
	// internal/kg/serialize.go).
	Graph json.RawMessage `json:"graph"`
	// Banks holds each reasoning node's token matrix, sorted by node id.
	Banks []BankState `json:"banks"`
}

// BankState is one node's token embedding matrix.
type BankState struct {
	Node   int    `json:"node"`
	Tokens Tensor `json:"tokens"`
}

// MonitorState is the wire form of core.MonitorState.
type MonitorState struct {
	N         int      `json:"n"`
	RefLag    int      `json:"ref_lag"`
	Anchored  bool     `json:"anchored"`
	Reference F64      `json:"reference"`
	HasRef    bool     `json:"has_ref"`
	Seq       int      `json:"seq"`
	Frames    []Tensor `json:"frames"`
	Scores    Floats   `json:"scores"`
	Seqs      []int    `json:"seqs"`
	Means     Floats   `json:"means"`
}

// AdapterState is the wire form of core.AdapterState.
type AdapterState struct {
	Created  int                     `json:"created"`
	Trackers []map[kg.NodeID]Tracker `json:"trackers"`
	RowNorms []map[kg.NodeID]Floats  `json:"row_norms"`
	OptStep  int                     `json:"opt_step"`
	OptM     map[string]Tensor       `json:"opt_m"`
	OptV     map[string]Tensor       `json:"opt_v"`
}

// Tracker is one node's convergence-tracker state.
type Tracker struct {
	LastDist  F64  `json:"last_dist"`
	HasLast   bool `json:"has_last"`
	IncStreak int  `json:"inc_streak"`
}

// Report is the wire form of core.AdaptReport. Its floats are bit-pattern
// encoded like every other float in the format: a diverged round can
// legitimately carry NaN loss or node distances, and a checkpoint save
// must survive that rather than abort on json.Marshal.
type Report struct {
	Triggered     bool                `json:"triggered"`
	K             int                 `json:"k"`
	DeltaM        F64                 `json:"delta_m"`
	Loss          F64                 `json:"loss"`
	NodeDistances []map[kg.NodeID]F64 `json:"node_distances,omitempty"`
	Pruned        []kg.NodeID         `json:"pruned,omitempty"`
	Created       []kg.NodeID         `json:"created,omitempty"`
}

// EncodeReport converts an adaptation report to wire form.
func EncodeReport(r core.AdaptReport) Report {
	w := Report{
		Triggered: r.Triggered,
		K:         r.K,
		DeltaM:    F64(r.DeltaM),
		Loss:      F64(r.Loss),
		Pruned:    append([]kg.NodeID(nil), r.Pruned...),
		Created:   append([]kg.NodeID(nil), r.Created...),
	}
	for _, dists := range r.NodeDistances {
		m := make(map[kg.NodeID]F64, len(dists))
		for id, d := range dists {
			m[id] = F64(d)
		}
		w.NodeDistances = append(w.NodeDistances, m)
	}
	return w
}

// DecodeReport converts a wire report back.
func DecodeReport(w Report) core.AdaptReport {
	r := core.AdaptReport{
		Triggered: w.Triggered,
		K:         w.K,
		DeltaM:    float64(w.DeltaM),
		Loss:      float64(w.Loss),
		Pruned:    append([]kg.NodeID(nil), w.Pruned...),
		Created:   append([]kg.NodeID(nil), w.Created...),
	}
	for _, dists := range w.NodeDistances {
		m := make(map[kg.NodeID]float64, len(dists))
		for id, d := range dists {
			m[id] = float64(d)
		}
		r.NodeDistances = append(r.NodeDistances, m)
	}
	return r
}

// PendingState is an in-flight asynchronous adaptation round at snapshot
// time. The round's computation is completed before the snapshot is taken
// (its effect is already in the live detector state), but its result has
// not been swapped into the scoring path yet: ScoreDet is the pre-round
// state frames are still scored on, and SwapFrame is the processed-frame
// count at which the swap — and the round's report — becomes visible,
// exactly as in the uninterrupted run.
type PendingState struct {
	SwapFrame int           `json:"swap_frame"`
	Report    Report        `json:"report"`
	Err       string        `json:"err,omitempty"`
	ScoreDet  DetectorState `json:"score_det"`
}

// EncodeMonitor converts a monitor's exported state to wire form.
func EncodeMonitor(s core.MonitorState) MonitorState {
	w := MonitorState{
		N:         s.N,
		RefLag:    s.RefLag,
		Anchored:  s.Anchored,
		Reference: F64(s.Reference),
		HasRef:    s.HasRef,
		Seq:       s.Seq,
		Means:     append(Floats(nil), s.Means...),
	}
	for _, smp := range s.Samples {
		w.Frames = append(w.Frames, EncodeTensor(smp.Pix()))
		w.Scores = append(w.Scores, smp.Score)
		w.Seqs = append(w.Seqs, smp.Seq)
	}
	return w
}

// DecodeMonitor converts a wire monitor state back.
func DecodeMonitor(w MonitorState) (core.MonitorState, error) {
	if len(w.Frames) != len(w.Scores) || len(w.Frames) != len(w.Seqs) {
		return core.MonitorState{}, fmt.Errorf("snapshot: monitor sample columns disagree: %d frames, %d scores, %d seqs",
			len(w.Frames), len(w.Scores), len(w.Seqs))
	}
	s := core.MonitorState{
		N:         w.N,
		RefLag:    w.RefLag,
		Anchored:  w.Anchored,
		Reference: float64(w.Reference),
		HasRef:    w.HasRef,
		Seq:       w.Seq,
		Means:     append([]float64(nil), w.Means...),
	}
	for i := range w.Frames {
		frame, err := DecodeTensor(w.Frames[i])
		if err != nil {
			return core.MonitorState{}, fmt.Errorf("snapshot: monitor sample %d: %w", i, err)
		}
		s.Samples = append(s.Samples, core.Sample{Frame: frame, Score: w.Scores[i], Seq: w.Seqs[i]})
	}
	return s, nil
}

// EncodeAdapter converts an adapter's exported state to wire form.
func EncodeAdapter(s core.AdapterState) *AdapterState {
	w := &AdapterState{
		Created: s.Created,
		OptStep: s.OptStep,
		OptM:    make(map[string]Tensor, len(s.OptM)),
		OptV:    make(map[string]Tensor, len(s.OptV)),
	}
	for gi := range s.Trackers {
		trs := make(map[kg.NodeID]Tracker, len(s.Trackers[gi]))
		for id, tr := range s.Trackers[gi] {
			trs[id] = Tracker{LastDist: F64(tr.LastDist), HasLast: tr.HasLast, IncStreak: tr.IncStreak}
		}
		w.Trackers = append(w.Trackers, trs)
	}
	for gi := range s.RowNorms {
		norms := make(map[kg.NodeID]Floats, len(s.RowNorms[gi]))
		for id, ns := range s.RowNorms[gi] {
			norms[id] = append(Floats(nil), ns...)
		}
		w.RowNorms = append(w.RowNorms, norms)
	}
	for name, t := range s.OptM {
		w.OptM[name] = EncodeTensor(t)
	}
	for name, t := range s.OptV {
		w.OptV[name] = EncodeTensor(t)
	}
	return w
}

// DecodeAdapter converts a wire adapter state back.
func DecodeAdapter(w *AdapterState) (core.AdapterState, error) {
	s := core.AdapterState{
		Created: w.Created,
		OptStep: w.OptStep,
	}
	for gi := range w.Trackers {
		trs := make(map[kg.NodeID]core.TrackerState, len(w.Trackers[gi]))
		for id, tr := range w.Trackers[gi] {
			trs[id] = core.TrackerState{LastDist: float64(tr.LastDist), HasLast: tr.HasLast, IncStreak: tr.IncStreak}
		}
		s.Trackers = append(s.Trackers, trs)
	}
	for gi := range w.RowNorms {
		norms := make(map[kg.NodeID][]float64, len(w.RowNorms[gi]))
		for id, ns := range w.RowNorms[gi] {
			norms[id] = append([]float64(nil), ns...)
		}
		s.RowNorms = append(s.RowNorms, norms)
	}
	var err error
	if s.OptM, err = decodeTensorMap(w.OptM, "first moment"); err != nil {
		return core.AdapterState{}, err
	}
	if s.OptV, err = decodeTensorMap(w.OptV, "second moment"); err != nil {
		return core.AdapterState{}, err
	}
	return s, nil
}

// CaptureDetector serializes a detector's per-stream mutable state: every
// mission graph plus its token bank. The shared backbone is untouched.
func CaptureDetector(det *core.Detector) (DetectorState, error) {
	var ds DetectorState
	for gi := 0; gi < det.NumGNNs(); gi++ {
		m := det.GNN(gi)
		raw, err := json.Marshal(m.Graph())
		if err != nil {
			return DetectorState{}, fmt.Errorf("snapshot: graph %d: %w", gi, err)
		}
		gs := GraphState{Graph: raw}
		for _, id := range m.Tokens().NodeIDs() {
			gs.Banks = append(gs.Banks, BankState{
				Node:   int(id),
				Tokens: EncodeTensor(m.Tokens().Bank(id).Data),
			})
		}
		ds.Graphs = append(ds.Graphs, gs)
	}
	return ds, nil
}

// RestoreDetector replaces a detector's per-stream mutable state with the
// serialized one: each graph is rebuilt in place, the model re-indexed
// (Rebind), and every node's token matrix installed. The detector should
// be a fresh clone of the same backbone the checkpoint was taken over.
func RestoreDetector(det *core.Detector, ds DetectorState) error {
	if len(ds.Graphs) != det.NumGNNs() {
		return fmt.Errorf("snapshot: checkpoint has %d graphs, detector has %d", len(ds.Graphs), det.NumGNNs())
	}
	for gi, gs := range ds.Graphs {
		m := det.GNN(gi)
		if err := json.Unmarshal(gs.Graph, m.Graph()); err != nil {
			return fmt.Errorf("snapshot: graph %d: %w", gi, err)
		}
		if err := m.Rebind(); err != nil {
			return fmt.Errorf("snapshot: rebind graph %d: %w", gi, err)
		}
		// Rebind's SyncWith established a bank per reasoning node; the
		// serialized banks must cover exactly that set.
		live := m.Tokens().NodeIDs()
		if len(gs.Banks) != len(live) {
			return fmt.Errorf("snapshot: graph %d has %d token banks, graph wants %d", gi, len(gs.Banks), len(live))
		}
		for _, bs := range gs.Banks {
			id := kg.NodeID(bs.Node)
			if !m.Tokens().Has(id) {
				return fmt.Errorf("snapshot: graph %d token bank for node %d not in restored graph", gi, bs.Node)
			}
			t, err := DecodeTensor(bs.Tokens)
			if err != nil {
				return fmt.Errorf("snapshot: graph %d node %d tokens: %w", gi, bs.Node, err)
			}
			if t.Dims() != 2 || t.Cols() != m.Tokens().Dim() {
				return fmt.Errorf("snapshot: graph %d node %d token shape %v, want (k × %d)",
					gi, bs.Node, t.Shape(), m.Tokens().Dim())
			}
			m.Tokens().Install(id, t)
		}
	}
	return nil
}

func decodeTensorMap(in map[string]Tensor, what string) (map[string]*tensor.Tensor, error) {
	out := make(map[string]*tensor.Tensor, len(in))
	for name, w := range in {
		t, err := DecodeTensor(w)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %s %q: %w", what, name, err)
		}
		out[name] = t
	}
	return out, nil
}
