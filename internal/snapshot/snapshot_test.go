package snapshot

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgekg/internal/flops"
	"edgekg/internal/kg"
	"edgekg/internal/tensor"
)

// TestFloatsBitExactRoundTrip pins the codec guarantee the resume
// equivalence suite stands on: every float64 bit pattern — negative zero,
// subnormals, infinities, NaN payloads — survives the JSON round trip
// unchanged.
func TestFloatsBitExactRoundTrip(t *testing.T) {
	vals := Floats{
		0, math.Copysign(0, -1), 1.0 / 3.0, -math.Pi,
		math.SmallestNonzeroFloat64, math.MaxFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.Float64frombits(0x7FF8DEADBEEF0001), // NaN with payload
	}
	data, err := json.Marshal(vals)
	if err != nil {
		t.Fatal(err)
	}
	var back Floats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(vals) {
		t.Fatalf("round trip changed length: %d -> %d", len(vals), len(back))
	}
	for i := range vals {
		if math.Float64bits(back[i]) != math.Float64bits(vals[i]) {
			t.Errorf("value %d: %x -> %x", i, math.Float64bits(vals[i]), math.Float64bits(back[i]))
		}
	}
}

// TestTensorCodec pins shape validation on the tensor wire form.
func TestTensorCodec(t *testing.T) {
	src := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	w := EncodeTensor(src)
	back, err := DecodeTensor(w)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != 2 || back.Cols() != 3 {
		t.Fatalf("shape %v after round trip", back.Shape())
	}
	for i, v := range back.Data() {
		if v != src.Data()[i] {
			t.Fatalf("data[%d] = %v, want %v", i, v, src.Data()[i])
		}
	}
	// Mutating the decoded tensor must not alias the wire payload.
	back.Data()[0] = 99
	if w.Data[0] == 99 {
		t.Fatal("decoded tensor aliases wire payload")
	}
	if _, err := DecodeTensor(Tensor{Shape: []int{2, 2}, Data: Floats{1, 2, 3}}); err == nil {
		t.Fatal("shape/data mismatch accepted")
	}
	if _, err := DecodeTensor(Tensor{Shape: nil, Data: Floats{1}}); err == nil {
		t.Fatal("missing shape accepted")
	}
	if _, err := DecodeTensor(Tensor{Shape: []int{-1, 2}, Data: Floats{}}); err == nil {
		t.Fatal("negative dimension accepted")
	}
}

// tinyCheckpoint builds a synthetic, structurally plausible checkpoint.
func tinyCheckpoint() *Checkpoint {
	cp := New(1)
	cp.Streams[0] = StreamState{
		ID:     0,
		Frames: 7,
		Scores: Floats{0.25, 0.5},
		Ledger: map[string]flops.PhaseTotals{"scoring": {Ops: 10, Bytes: 20, Events: 7}},
		Monitor: MonitorState{
			N: 4, RefLag: 1, Anchored: true, Reference: 0.9, HasRef: true, Seq: 7,
			Frames: []Tensor{EncodeTensor(tensor.FromSlice([]float64{1, 2}, 1, 2))},
			Scores: Floats{0.5}, Seqs: []int{6}, Means: Floats{0.5},
		},
		Detector: DetectorState{Graphs: []GraphState{{Graph: json.RawMessage(`{}`)}}},
	}
	return cp
}

// TestSaveLoadRoundTrip pins the file layer: save, load, compare.
func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	want := tinyCheckpoint()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != Version || got.Format != Format {
		t.Fatalf("header %q/%d after round trip", got.Format, got.Version)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("checkpoint changed across save/load:\n%s\nvs\n%s", a, b)
	}
	// Determinism: marshalling the same checkpoint twice yields identical
	// bytes (struct field order + sorted map keys).
	c, _ := json.Marshal(want)
	if string(a) != string(c) {
		t.Fatal("serialization is not deterministic")
	}
}

// TestTornWriteFailsCleanlyAndPreviousCheckpointSurvives simulates the
// crash-safety scenario: a checkpoint file truncated mid-stream must fail
// restore with the versioned-format ("corrupt") error — never a panic or a
// partially applied state — and the previous good checkpoint, plus any
// abandoned temp file from a crash before rename, must leave the good
// checkpoint loadable.
func TestTornWriteFailsCleanlyAndPreviousCheckpointSurvives(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "checkpoint.json")
	if err := Save(good, tinyCheckpoint()); err != nil {
		t.Fatal(err)
	}

	// Torn copy: the same bytes truncated mid-document.
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(torn); err == nil {
		t.Fatal("torn checkpoint loaded without error")
	} else if !strings.Contains(err.Error(), "corrupt checkpoint") {
		t.Fatalf("torn checkpoint error %q does not identify corruption", err)
	}

	// Crash before rename: a stale temp file next to the good checkpoint
	// (what a killed Save leaves behind) must not affect loading it.
	if err := os.WriteFile(good+".tmp-123", data[:10], 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(good); err != nil {
		t.Fatalf("previous good checkpoint no longer loads: %v", err)
	}
}

// TestVersionAndFormatMismatchFailLoudly pins the header checks.
func TestVersionAndFormatMismatchFailLoudly(t *testing.T) {
	dir := t.TempDir()

	future := tinyCheckpoint()
	future.Version = Version + 7
	path := filepath.Join(dir, "future.json")
	data, _ := json.Marshal(future)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil {
		t.Fatal("future-version checkpoint loaded")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch error %q does not mention the version", err)
	}

	foreign := filepath.Join(dir, "foreign.json")
	if err := os.WriteFile(foreign, []byte(`{"some":"json"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(foreign); err == nil {
		t.Fatal("foreign JSON loaded as a checkpoint")
	}

	// Save refuses to write a bad header in the first place.
	if err := Save(filepath.Join(dir, "bad.json"), future); err == nil {
		t.Fatal("Save accepted a mismatched version header")
	}
}

// TestSaveIsAtomic pins that Save replaces the destination in one step: a
// reader always sees either the old or the new full document. (The rename
// syscall gives this; the test guards the temp-then-rename structure.)
func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := Save(path, tinyCheckpoint()); err != nil {
		t.Fatal(err)
	}
	second := tinyCheckpoint()
	second.Streams[0].Frames = 99
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Streams[0].Frames != 99 {
		t.Fatalf("second save not visible: frames %d", got.Streams[0].Frames)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("unexpected files after save: %v", names)
	}
}

// TestScalarFloatsSurviveNaN pins that the scalar float fields (monitor
// reference, tracker distances, pending-round report) use the bit-pattern
// codec too: a degenerate trajectory carrying NaN must still checkpoint
// and round-trip bit-exactly instead of aborting json.Marshal.
func TestScalarFloatsSurviveNaN(t *testing.T) {
	cp := tinyCheckpoint()
	cp.Streams[0].Monitor.Reference = F64(math.NaN())
	cp.Streams[0].Adapter = &AdapterState{
		Trackers: []map[kg.NodeID]Tracker{{3: {LastDist: F64(math.Inf(1)), HasLast: true}}},
		RowNorms: []map[kg.NodeID]Floats{{}},
		OptM:     map[string]Tensor{},
		OptV:     map[string]Tensor{},
	}
	cp.Streams[0].Pending = &PendingState{
		SwapFrame: 12,
		Report: Report{
			Triggered:     true,
			K:             2,
			DeltaM:        F64(math.NaN()),
			Loss:          F64(math.Inf(-1)),
			NodeDistances: []map[kg.NodeID]F64{{7: F64(math.NaN())}},
		},
		ScoreDet: DetectorState{Graphs: []GraphState{{Graph: json.RawMessage(`{}`)}}},
	}
	path := filepath.Join(t.TempDir(), "nan.json")
	if err := Save(path, cp); err != nil {
		t.Fatalf("checkpoint with NaN scalars failed to save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(got.Streams[0].Monitor.Reference)) {
		t.Error("NaN reference did not round-trip")
	}
	if !math.IsNaN(float64(got.Streams[0].Pending.Report.DeltaM)) {
		t.Error("NaN report DeltaM did not round-trip")
	}
	if !math.IsInf(float64(got.Streams[0].Pending.Report.Loss), -1) {
		t.Error("-Inf report loss did not round-trip")
	}
	if !math.IsNaN(float64(got.Streams[0].Pending.Report.NodeDistances[0][7])) {
		t.Error("NaN node distance did not round-trip")
	}
	if !math.IsInf(float64(got.Streams[0].Adapter.Trackers[0][3].LastDist), 1) {
		t.Error("+Inf tracker distance did not round-trip")
	}
	dec := DecodeReport(got.Streams[0].Pending.Report)
	if !math.IsNaN(dec.DeltaM) || dec.K != 2 || !dec.Triggered {
		t.Errorf("decoded report %+v lost fields", dec)
	}
}
