package serve_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"edgekg/internal/concept"
	"edgekg/internal/serve"
)

// TestServerConcurrentStreamsSoak is the race shard's soak test: ≥4
// streams scoring concurrently with adaptation rounds firing mid-scoring
// (async, lag 2 < cadence 6, so rounds overlap the following frames), a
// stats prober hammering Do barriers, and frames synthesised on the fly
// from every driver goroutine (exercising the shared embedding space's
// word-vector memo). Run under -race this asserts that stream contexts
// share no mutable state with each other or with the frozen backbone;
// functionally it asserts frame accounting, adaptation engagement, and
// that the backbone's own token banks never move.
func TestServerConcurrentStreamsSoak(t *testing.T) {
	backbone, gen := buildBackbone(t, 6)

	// Fingerprint the backbone's token banks: per-stream adaptation must
	// never write through the clones into the shared model.
	bank := backbone.GNN(0).Tokens()
	before := make(map[int][]float64)
	for _, id := range bank.NodeIDs() {
		before[int(id)] = append([]float64(nil), bank.Bank(id).Data.Data()...)
	}

	const streams = 5
	const frames = 42
	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(2)
	cfg.Stream.AdaptEveryFrames = 6
	cfg.Stream.ScoreHistory = 16
	cfg.QueueDepth = 3
	srv, err := serve.NewServer(backbone, streams, cfg)
	if err != nil {
		t.Fatal(err)
	}

	classes := []concept.Class{concept.Stealing, concept.Robbery, concept.Explosion, concept.Normal, concept.Stealing}
	var wg sync.WaitGroup
	errs := make(chan error, streams*2)

	// One producer per stream: synthesise and submit frames as fast as the
	// queue allows, forcing the monitor reference early (a Do barrier from
	// a non-consuming goroutine — the consumers below keep draining) so
	// adaptation keeps firing mid-scoring.
	for i := 0; i < streams; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(600 + int64(i)))
			for k := 0; k < frames; k++ {
				cls := classes[i]
				if k >= frames/2 {
					cls = classes[(i+1)%len(classes)]
				}
				if err := srv.Submit(i, gen.Frame(rng, cls)); err != nil {
					errs <- err
					return
				}
				if k == 4 {
					if err := srv.Do(i, func(st *serve.Stream) { st.Monitor().SetReference(1.0) }); err != nil {
						errs <- err
						return
					}
				}
			}
			srv.CloseStream(i)
		}()
	}

	// One consumer per stream: validate scores and count frames.
	counts := make([]int, streams)
	applied := make([]int, streams)
	for i := 0; i < streams; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for res := range resultsOf(t, srv, i) {
				if res.Err != nil {
					errs <- res.Err
					return
				}
				if res.Score < 0 || res.Score > 1 {
					t.Errorf("stream %d: score %v out of range", i, res.Score)
					return
				}
				counts[i]++
				if res.AdaptApplied {
					applied[i]++
				}
			}
		}()
	}

	// A prober reading stats through barriers while everything runs.
	stop := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < streams; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := srv.StreamStats(i); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	probeWG.Wait()
	srv.Shutdown()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	totalRounds := 0
	for i := 0; i < streams; i++ {
		if counts[i] != frames {
			t.Errorf("stream %d delivered %d results, want %d", i, counts[i], frames)
		}
		st := streamOf(t, srv, i).Stats()
		if st.Frames != frames {
			t.Errorf("stream %d processed %d frames, want %d", i, st.Frames, frames)
		}
		if err := streamOf(t, srv, i).Err(); err != nil {
			t.Errorf("stream %d: %v", i, err)
		}
		totalRounds += st.AdaptRounds
		if got := len(streamOf(t, srv, i).Scores()); got != cfg.Stream.ScoreHistory {
			t.Errorf("stream %d retained %d scores, want %d", i, got, cfg.Stream.ScoreHistory)
		}
	}
	if totalRounds == 0 {
		t.Error("no adaptation round ran anywhere — soak is vacuous")
	}

	// The shared backbone's token banks are bit-identical to deployment.
	for _, id := range bank.NodeIDs() {
		data := bank.Bank(id).Data.Data()
		want := before[int(id)]
		for j := range data {
			if data[j] != want[j] {
				t.Fatalf("backbone token bank node %d mutated by serving", id)
			}
		}
	}
}

// TestShutdownUnblocksPipelinedProducer pins Shutdown's no-deadlock
// guarantee in the worst case: a producer pipelining frames with nobody
// consuming results. The pipeline fills (results, then inputs), the
// producer blocks inside Submit holding the close lock, and Shutdown from
// another goroutine must drain it loose and close the stream under it.
func TestShutdownUnblocksPipelinedProducer(t *testing.T) {
	backbone, gen := buildBackbone(t, 8)
	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(0)
	cfg.Stream.AdaptEveryFrames = 0
	cfg.QueueDepth = 2
	srv, err := serve.NewServer(backbone, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(80))
	frame := gen.Frame(rng, concept.Normal)
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		for {
			if err := srv.Submit(0, frame); err != nil {
				return // stream closed under us — expected
			}
		}
	}()
	// Let the producer wedge the pipeline (results never consumed).
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown deadlocked against a blocked producer")
	}
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("producer never observed the closed stream")
	}
}

// TestServerUnmetered pins the unmetered mode: no ops recorded, events
// and scores unaffected.
func TestServerUnmetered(t *testing.T) {
	backbone, gen := buildBackbone(t, 9)
	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(2)
	cfg.Unmetered = true
	srv, err := serve.NewServer(backbone, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(90))
	for k := 0; k < 10; k++ {
		for i := 0; i < 2; i++ {
			if err := srv.Submit(i, gen.Frame(rng, concept.Stealing)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2; i++ {
			if res := <-resultsOf(t, srv, i); res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	}
	srv.Shutdown()
	for i := 0; i < 2; i++ {
		st := streamOf(t, srv, i).Stats()
		if st.Frames != 10 {
			t.Errorf("stream %d frames %d, want 10", i, st.Frames)
		}
		if st.ScoringOps != 0 || st.AdaptOps != 0 {
			t.Errorf("stream %d recorded ops while unmetered: %+v", i, st)
		}
	}
	if srv.TotalOps() != 0 {
		t.Errorf("unmetered server counted %d ops", srv.TotalOps())
	}
}

// TestStreamScoreHistoryTrim pins the bounded score-history ring.
func TestStreamScoreHistoryTrim(t *testing.T) {
	backbone, gen := buildBackbone(t, 7)
	cfg := serve.DefaultConfig()
	cfg.Stream = streamCfg(0)
	cfg.Stream.AdaptEveryFrames = 0
	cfg.Stream.ScoreHistory = 4
	srv, err := serve.NewServer(backbone, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(70))
	var all []float64
	for i := 0; i < 9; i++ {
		f := gen.Frame(rng, concept.Normal)
		if err := srv.Submit(0, f); err != nil {
			t.Fatal(err)
		}
		res := <-resultsOf(t, srv, 0)
		all = append(all, res.Score)
	}
	srv.CloseStream(0)
	for range resultsOf(t, srv, 0) {
	}
	srv.Shutdown()
	got := streamOf(t, srv, 0).Scores()
	want := all[len(all)-4:]
	if len(got) != len(want) {
		t.Fatalf("history length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("history[%d] = %v, want %v (last-4 window)", i, got[i], want[i])
		}
	}
}
