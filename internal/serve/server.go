package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"edgekg/internal/core"
	"edgekg/internal/flops"
	"edgekg/internal/rng"
	"edgekg/internal/snapshot"
	"edgekg/internal/tensor"
)

// Config sizes a Server.
type Config struct {
	// Stream is the per-stream deployment template.
	Stream StreamConfig
	// QueueDepth is the per-stream input/result channel capacity
	// (backpressure depth). Defaults to 4.
	QueueDepth int
	// Unmetered disables FLOPs accounting: no process-wide counter is
	// installed and per-stream ledgers record zero ops (events still
	// count). Benchmarks use it so serving ticks run as meter-free as
	// every other timed path.
	Unmetered bool
	// Seeds are the per-stream adapter seeds. When shorter than the
	// stream count, stream i falls back to BaseSeed+i.
	Seeds []int64
	// BaseSeed derives missing per-stream seeds. Defaults to 1.
	BaseSeed int64
	// MemBudgetBytes caps the charged per-stream resident bytes across
	// the process (see flops.MemLedger). When the total exceeds the
	// budget after a frame, the least-recently-active resident stream is
	// spilled to SpillDir and rehydrated bit-exactly at its next frame.
	// 0 disables the budget (the ledger still accounts).
	MemBudgetBytes int64
	// SpillDir is where evicted streams checkpoint their state. Required
	// when MemBudgetBytes > 0; setting it without a budget arms manual
	// eviction (Server.EvictStream) only.
	SpillDir string
}

// DefaultConfig returns a serving configuration with the default
// per-stream settings.
func DefaultConfig() Config {
	return Config{Stream: DefaultStreamConfig()}
}

// item is one unit of per-stream work: a frame to score, or a control
// barrier. raw barriers run without joining an in-flight adaptation round
// first — the checkpoint path uses them, because an early join would move
// the round's swap frame and change the trajectory.
type item struct {
	pix  *tensor.Tensor
	ctl  func(*Stream)
	raw  bool
	done chan struct{}
}

// Server multiplexes N camera streams through one process. It deploys the
// backbone detector frozen, takes one copy-on-write clone
// (core.Detector.CloneCOW — per-stream graphs + token banks aliasing the
// backbone until first write, full deep copies under
// StreamConfig.EagerClone) per stream over the shared read-only compute
// backbone, and runs one processing loop per stream: frames arrive on
// per-stream channels, scoring interleaves across streams on the shared
// worker pool, and each stream's adaptation rounds run asynchronously
// (parallel.Group) with snapshot/swap semantics so no stream's scoring
// ever blocks on another stream — or on its own adaptation.
//
// A memory ledger charges each stream its privately-owned bytes; under a
// configured budget the server spills idle streams to disk and rehydrates
// them bit-exactly on their next frame.
//
// One goroutine submits per stream (Submit/Do are serialised per stream
// by the caller, like a camera feed); results must be consumed from
// Results or the stream's loop blocks once the channel fills.
type Server struct {
	cfg     Config
	streams []*Stream
	in      []chan item
	out     []chan Result
	done    []chan struct{}
	// closed[i] is written under closeMu[i].Lock and read under
	// closeMu[i].RLock; closeMu[i] serialises stream i's input-channel
	// close against in-flight Submit/Do sends (readers), so a late sender
	// sees the closed flag instead of a closed-channel panic.
	closed  []bool
	closeMu []sync.RWMutex

	counter   *flops.Counter
	installed bool
	shutdown  sync.Once

	mem *flops.MemLedger
	// lastActive[i] is the global tick of stream i's most recent frame;
	// evictQueued[i] is nonzero while an eviction request is queued on
	// stream i's loop. Both are touched from every stream loop (atomics).
	lastActive  []int64
	evictQueued []int32
	tick        int64
}

// NewServer deploys backbone and starts n stream loops. The backbone is
// frozen (Deploy) as a side effect; each stream adapts its own clone, so
// the backbone's own token banks and graphs never change while serving.
// The server is running on return — Submit frames, consume Results, then
// Shutdown.
//
// FLOPs accounting uses the single process-wide counter, so at most one
// metered server should exist at a time (a second concurrent server
// cross-attributes ops into the first's counter, and loses its metering
// when the first shuts down); run additional servers with
// Config.Unmetered.
func NewServer(backbone *core.Detector, n int, cfg Config) (*Server, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: stream count %d must be ≥1", n)
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4
	}
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 1
	}
	if cfg.MemBudgetBytes > 0 && cfg.SpillDir == "" {
		return nil, fmt.Errorf("serve: memory budget %d requires a spill directory", cfg.MemBudgetBytes)
	}
	backbone.Deploy()

	s := &Server{
		cfg:         cfg,
		streams:     make([]*Stream, n),
		in:          make([]chan item, n),
		out:         make([]chan Result, n),
		done:        make([]chan struct{}, n),
		closed:      make([]bool, n),
		closeMu:     make([]sync.RWMutex, n),
		mem:         flops.NewMemLedger(cfg.MemBudgetBytes),
		lastActive:  make([]int64, n),
		evictQueued: make([]int32, n),
	}
	// Per-stream FLOPs attribution under concurrency reads deltas of one
	// shared counter (see Stream.meter); a single synchronous stream keeps
	// the classic exact exclusive metering. Unmetered hands the streams a
	// counter nothing reports to, so deltas are zero and no global state
	// is touched.
	exclusive := n == 1 && cfg.Stream.AdaptLagFrames <= 0 && !cfg.Unmetered
	if !exclusive {
		s.counter = &flops.Counter{}
		if !cfg.Unmetered {
			if flops.Active() == nil {
				flops.SetActive(s.counter)
				s.installed = true
			} else {
				// A caller-installed counter (a bench, an outer ledger)
				// keeps receiving; deltas are read from it instead.
				s.counter = flops.Active()
			}
		}
	}
	// A constructor failure below must not leave the process-wide counter
	// installed (Shutdown, which normally restores it, will never run).
	ok := false
	defer func() {
		if !ok && s.installed {
			flops.SetActive(nil)
		}
	}()
	// A constructor failure after some streams are cloned rolls their COW
	// marks back, so the caller's backbone does not keep paying
	// copy-on-write faults for dead aliases.
	discardBuilt := func(n int) {
		for j := 0; j < n; j++ {
			s.streams[j].det.DiscardClone()
		}
	}
	rebuild := func() (*core.Detector, error) {
		if cfg.Stream.EagerClone {
			return backbone.CloneShared()
		}
		return backbone.CloneCOW()
	}
	for i := 0; i < n; i++ {
		seed := cfg.BaseSeed + int64(i)
		if i < len(cfg.Seeds) {
			seed = cfg.Seeds[i]
		}
		det, err := rebuild()
		if err != nil {
			discardBuilt(i)
			return nil, fmt.Errorf("serve: stream %d clone: %w", i, err)
		}
		st, err := NewStream(i, det, cfg.Stream, rng.NewSource(seed), s.counter)
		if err != nil {
			det.DiscardClone()
			discardBuilt(i)
			return nil, fmt.Errorf("serve: stream %d: %w", i, err)
		}
		st.SetMemLedger(s.mem)
		if cfg.SpillDir != "" {
			st.EnableSpill(cfg.SpillDir, rebuild)
		}
		s.streams[i] = st
		s.in[i] = make(chan item, cfg.QueueDepth)
		s.out[i] = make(chan Result, cfg.QueueDepth)
		s.done[i] = make(chan struct{})
	}
	for i := 0; i < n; i++ {
		go s.loop(i)
	}
	ok = true
	return s, nil
}

// loop is one stream's processing goroutine: frames in arrival order,
// control barriers between frames, and a final drain that joins any
// in-flight adaptation round.
func (s *Server) loop(i int) {
	st := s.streams[i]
	defer close(s.done[i])
	defer close(s.out[i])
	for it := range s.in[i] {
		if it.ctl != nil {
			// Barriers observe settled state: join the in-flight round
			// first so token banks, graphs and stats are quiescent. A join
			// error is retained on the stream (Stream.Err) rather than
			// injected as an extra Result, keeping results 1:1 with frames.
			// Raw barriers (checkpointing) skip the join: Stream.Export
			// settles the round's computation itself without disturbing
			// its swap schedule.
			if !it.raw {
				st.Sync()
			}
			it.ctl(st)
			close(it.done)
			continue
		}
		res := st.Process(it.pix)
		atomic.StoreInt64(&s.lastActive[i], atomic.AddInt64(&s.tick, 1))
		s.maybeEvict(i)
		s.out[i] <- res
	}
	st.Sync()
}

// maybeEvict runs after stream self's frame: when the ledger is over
// budget it asks the least-recently-active resident stream — never self,
// which just proved it is live — to spill, via a raw control barrier
// enqueued on the victim's own loop (raw so a pending round's swap
// schedule survives the spill). The enqueue is non-blocking: a full victim
// queue drops the attempt, and a later frame retries while the process
// stays over budget. A single-stream server therefore never evicts.
func (s *Server) maybeEvict(self int) {
	if s.cfg.SpillDir == "" {
		return
	}
	if _, over := s.mem.OverBudget(); !over {
		return
	}
	victim, best := -1, int64(1<<62)
	for j := range s.streams {
		if j == self || atomic.LoadInt32(&s.evictQueued[j]) != 0 {
			continue
		}
		if s.mem.Stream(j).Resident() == 0 {
			continue // already spilled (or never reported)
		}
		if t := atomic.LoadInt64(&s.lastActive[j]); t < best {
			victim, best = j, t
		}
	}
	if victim < 0 {
		return
	}
	if !atomic.CompareAndSwapInt32(&s.evictQueued[victim], 0, 1) {
		return
	}
	it := item{raw: true, done: make(chan struct{}), ctl: func(st *Stream) {
		defer atomic.StoreInt32(&s.evictQueued[st.id], 0)
		if err := st.Evict(); err != nil {
			st.lastErr = err
		}
	}}
	if !s.trySend(victim, it) {
		atomic.StoreInt32(&s.evictQueued[victim], 0)
	}
}

// trySend is send without blocking: false when the stream is closed or
// its queue is full.
func (s *Server) trySend(stream int, it item) bool {
	s.closeMu[stream].RLock()
	defer s.closeMu[stream].RUnlock()
	if s.closed[stream] {
		return false
	}
	select {
	case s.in[stream] <- it:
		return true
	default:
		return false
	}
}

// EvictStream spills stream i's heavy state synchronously through a raw
// barrier on its loop (preserving a pending round's swap schedule): the
// deterministic counterpart to budget-driven eviction, for tests and
// operational tooling. The stream rehydrates bit-exactly at its next
// frame. Requires Config.SpillDir.
func (s *Server) EvictStream(stream int) error {
	var err error
	if berr := s.barrier(stream, func(st *Stream) { err = st.Evict() }, true); berr != nil {
		return berr
	}
	return err
}

// ReleaseStream permanently drops stream i's state through a raw barrier:
// the stream was migrated or failed over to another worker, the slot will
// never serve its key again, and its resident bytes must stop being
// charged here. See Stream.Release.
func (s *Server) ReleaseStream(stream int) error {
	var err error
	if berr := s.barrier(stream, func(st *Stream) { err = st.Release() }, true); berr != nil {
		return berr
	}
	return err
}

// MemLedger exposes the server's resident-bytes ledger.
func (s *Server) MemLedger() *flops.MemLedger { return s.mem }

// NumStreams returns the stream count.
func (s *Server) NumStreams() int { return len(s.streams) }

// Submit enqueues one frame for a stream, blocking when the stream's
// queue is full. It returns an error once the stream is closed.
func (s *Server) Submit(stream int, pix *tensor.Tensor) error {
	if stream < 0 || stream >= len(s.streams) {
		return fmt.Errorf("serve: no stream %d", stream)
	}
	return s.send(stream, item{pix: pix})
}

// send delivers one item to a stream's input under the close lock. The
// read lock is held across the (possibly blocking) channel send; close
// waits for senders, senders never hit a closed channel.
func (s *Server) send(stream int, it item) error {
	s.closeMu[stream].RLock()
	defer s.closeMu[stream].RUnlock()
	if s.closed[stream] {
		return fmt.Errorf("serve: stream %d is closed", stream)
	}
	s.in[stream] <- it
	return nil
}

// Results returns the stream's result channel, or an error for an unknown
// stream id. Results arrive in frame order; the channel closes after
// CloseStream once the last frame and any in-flight adaptation round have
// drained.
func (s *Server) Results(stream int) (<-chan Result, error) {
	if stream < 0 || stream >= len(s.streams) {
		return nil, fmt.Errorf("serve: no stream %d", stream)
	}
	return s.out[stream], nil
}

// Do runs fn on the stream's processing loop, between frames and with any
// in-flight adaptation round joined — the safe way to read a live
// stream's detector, monitor, score history or stats. It blocks until fn
// has run. On a closed (drained) stream fn runs inline, which is equally
// safe because the loop has exited.
//
// Because the barrier joins an in-flight round early, its effect becomes
// visible at the barrier instead of at the configured swap frame, and the
// round's report is folded into the stream stats rather than delivered on
// a Result. Callers wanting frame-deterministic trajectories should issue
// Do at frame-deterministic points (or not at all mid-round).
//
// Do blocks until the loop reaches the barrier, which requires the
// stream's Results to keep draining: calling Do from the goroutine that
// consumes Results while frames are still queued deadlocks.
func (s *Server) Do(stream int, fn func(*Stream)) error {
	return s.barrier(stream, fn, false)
}

// barrier implements Do and the raw (non-joining) checkpoint barrier.
func (s *Server) barrier(stream int, fn func(*Stream), raw bool) error {
	if stream < 0 || stream >= len(s.streams) {
		return fmt.Errorf("serve: no stream %d", stream)
	}
	select {
	case <-s.done[stream]:
		fn(s.streams[stream])
		return nil
	default:
	}
	it := item{ctl: fn, raw: raw, done: make(chan struct{})}
	if err := s.send(stream, it); err != nil {
		// Closed: wait for the loop to drain, then run inline.
		<-s.done[stream]
		fn(s.streams[stream])
		return nil
	}
	<-it.done
	return nil
}

// DoContext is Do with a deadline: it gives up with ctx.Err() instead of
// blocking forever when the stream's loop cannot reach the barrier — the
// variant network handlers must use, because an HTTP goroutine has no
// guarantee the stream's Results are being drained (the Do deadlock
// documented above). When ctx fires after the barrier was already
// enqueued, fn may still run later on the loop; fn must therefore
// communicate through owned channels (as StatsContext does), never by
// writing variables the caller reads after DoContext returns.
func (s *Server) DoContext(ctx context.Context, stream int, fn func(*Stream)) error {
	return s.barrierContext(ctx, stream, fn, false)
}

// DoRawContext is DoContext without the round join: fn observes the
// stream between frames but an in-flight background adaptation round is
// not joined early, so its frame-deterministic swap schedule survives.
// Use it for observers (stats, score history, checkpoint captures) that
// must not perturb a live stream's trajectory.
func (s *Server) DoRawContext(ctx context.Context, stream int, fn func(*Stream)) error {
	return s.barrierContext(ctx, stream, fn, true)
}

// barrierContext is barrier with a context bound on both the enqueue and
// the wait for the loop to run fn.
func (s *Server) barrierContext(ctx context.Context, stream int, fn func(*Stream), raw bool) error {
	if stream < 0 || stream >= len(s.streams) {
		return fmt.Errorf("serve: no stream %d", stream)
	}
	select {
	case <-s.done[stream]:
		fn(s.streams[stream])
		return nil
	default:
	}
	it := item{ctl: fn, raw: raw, done: make(chan struct{})}
	s.closeMu[stream].RLock()
	if s.closed[stream] {
		s.closeMu[stream].RUnlock()
		// Closed: the loop is draining; wait for it (or the deadline) and
		// run inline.
		select {
		case <-s.done[stream]:
			fn(s.streams[stream])
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	select {
	case s.in[stream] <- it:
		s.closeMu[stream].RUnlock()
	case <-ctx.Done():
		s.closeMu[stream].RUnlock()
		return ctx.Err()
	}
	select {
	case <-it.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StreamStats returns one stream's statistics via a Do barrier (or
// directly once the stream has drained).
func (s *Server) StreamStats(stream int) (Stats, error) {
	var st Stats
	err := s.Do(stream, func(sc *Stream) { st = sc.Stats() })
	return st, err
}

// StatsContext returns one stream's statistics through a deadline-bound
// raw barrier: safe to call from a goroutine that is not draining the
// stream's Results (it fails with ctx.Err() instead of deadlocking), and
// safe on a live adaptive stream (the in-flight round is not joined
// early, so the poll does not perturb the trajectory — resident bytes
// come from StatsRaw's settled ledger figure).
func (s *Server) StatsContext(ctx context.Context, stream int) (Stats, error) {
	// Buffered so a barrier that runs after the deadline fired still
	// completes without blocking the loop on an abandoned channel.
	ch := make(chan Stats, 1)
	if err := s.DoRawContext(ctx, stream, func(st *Stream) { ch <- st.StatsRaw() }); err != nil {
		return Stats{}, err
	}
	return <-ch, nil
}

// ScoresContext returns a copy of one stream's retained score history
// through a deadline-bound raw barrier (see StatsContext).
func (s *Server) ScoresContext(ctx context.Context, stream int) ([]float64, error) {
	ch := make(chan []float64, 1)
	if err := s.DoRawContext(ctx, stream, func(st *Stream) { ch <- st.Scores() }); err != nil {
		return nil, err
	}
	return <-ch, nil
}

// CloseStream marks the end of a stream's input. Its loop drains queued
// frames, joins any in-flight adaptation round and closes the result
// channel. Closing twice is a no-op.
func (s *Server) CloseStream(stream int) {
	if stream < 0 || stream >= len(s.streams) {
		return
	}
	s.closeMu[stream].Lock()
	defer s.closeMu[stream].Unlock()
	if !s.closed[stream] {
		s.closed[stream] = true
		close(s.in[stream])
	}
}

// Shutdown closes every stream, waits for all loops to drain, and
// restores the process-wide FLOPs counter if the server installed one.
// Undelivered results are discarded. The result drain starts before the
// closes: a producer blocked in Submit against a full pipeline (its loop
// stuck on an unconsumed result channel) is unblocked by the drain,
// releases the close lock, and then sees the closed stream — so Shutdown
// never deadlocks against absent consumers or lingering producers.
func (s *Server) Shutdown() {
	s.shutdown.Do(func() {
		var drain sync.WaitGroup
		for i := range s.streams {
			i := i
			drain.Add(1)
			go func() {
				defer drain.Done()
				for range s.out[i] {
				}
			}()
		}
		for i := range s.streams {
			s.CloseStream(i)
		}
		for i := range s.streams {
			<-s.done[i]
		}
		drain.Wait()
		// An evicted idle stream that never saw another frame would leak
		// its spill file (rehydration is the only path that deletes it):
		// rehydrate-then-drain, so post-shutdown accessors (Stats, TestAUC
		// probes, Detector) keep working and SpillDir ends empty. The loops
		// have exited, so running inline is safe. On a failed rehydration
		// the spill file is dropped anyway — the process is going away and
		// the error is retained on the stream.
		for _, st := range s.streams {
			if st.Evicted() {
				if err := st.EnsureResident(); err != nil {
					st.lastErr = err
					st.dropSpill()
				}
			}
		}
		// Restore only if the installed counter is still the active one:
		// a counter someone installed over ours (a bench's flops.Count in
		// flight, a newer server) must not be clobbered.
		if s.installed && flops.Active() == s.counter {
			flops.SetActive(nil)
		}
	})
}

// Stream returns the i-th stream context, or an error for an unknown
// stream id. The context is safe to use freely after Shutdown (or
// CloseStream + drained Results); while the stream is live, route access
// through Do.
func (s *Server) Stream(i int) (*Stream, error) {
	if i < 0 || i >= len(s.streams) {
		return nil, fmt.Errorf("serve: no stream %d", i)
	}
	return s.streams[i], nil
}

// Checkpoint serializes every stream's complete adaptation state. Each
// stream is captured on its own processing loop between frames (a raw
// barrier that, unlike Do, does not join an in-flight adaptation round
// early — the round's computation is completed but its swap still lands
// at the configured frame), so a live server can be checkpointed while
// cameras keep submitting: each stream's snapshot is taken at whatever
// frame its loop has reached. Restore the result with Server.Restore on a
// server built over the identical backbone and configuration.
func (s *Server) Checkpoint() (*snapshot.Checkpoint, error) {
	cp := snapshot.New(len(s.streams))
	for i := range s.streams {
		ss, err := s.ExportStream(i)
		if err != nil {
			return nil, err
		}
		cp.Streams[i] = *ss
	}
	return cp, nil
}

// ExportStream captures one stream's complete adaptation state on its
// processing loop (a raw barrier, like Checkpoint — an in-flight round
// keeps its swap schedule). The result is the unit of stream migration:
// restore it into a compatible slot of another server with RestoreStream
// and the stream continues bit-exactly there.
func (s *Server) ExportStream(stream int) (*snapshot.StreamState, error) {
	var ss *snapshot.StreamState
	var err error
	if berr := s.barrier(stream, func(st *Stream) { ss, err = st.Export() }, true); berr != nil {
		return nil, berr
	}
	return ss, err
}

// RestoreStream replaces one stream's state with an exported snapshot,
// applied on its processing loop. The receiving slot must have been built
// over the same backbone with the same per-stream configuration (the
// recorded config pin is validated); the snapshot's own stream id is
// irrelevant — migration restores stream state into whatever local slot
// the receiving shard has free, and the restored RNG state supersedes the
// slot's construction seed, so the continued trajectory is bit-identical
// to one that never moved.
func (s *Server) RestoreStream(stream int, ss *snapshot.StreamState) error {
	var err error
	if berr := s.barrier(stream, func(st *Stream) { err = st.Restore(ss) }, true); berr != nil {
		return berr
	}
	return err
}

// Restore replaces every stream's state with the checkpoint's, applied on
// each stream's processing loop. The server must have been built over the
// same backbone (same training seed) with the same stream count and
// per-stream configuration the checkpoint was taken under; mismatches
// fail loudly and may leave earlier streams restored — restore into a
// fresh server before submitting frames.
func (s *Server) Restore(cp *snapshot.Checkpoint) error {
	if err := cp.Validate(); err != nil {
		return err
	}
	if len(cp.Streams) != len(s.streams) {
		return fmt.Errorf("serve: checkpoint has %d streams, server has %d", len(cp.Streams), len(s.streams))
	}
	for i := range s.streams {
		var err error
		if berr := s.barrier(i, func(st *Stream) { err = st.Restore(&cp.Streams[i]) }, true); berr != nil {
			return berr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// TotalOps returns the ops recorded by the server's shared counter (0 in
// exclusive single-stream metering, where the per-stream ledger is the
// source of truth).
func (s *Server) TotalOps() int64 {
	if s.counter == nil {
		return 0
	}
	return s.counter.Ops()
}
